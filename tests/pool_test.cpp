// Real-thread tests for the resizable pool. These use wall-clock sleeps kept
// short; generous margins avoid flakiness on loaded machines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "pool/dynamic_thread_pool.h"

namespace saex::pool {
namespace {

using namespace std::chrono_literals;

TEST(DynamicThreadPool, ExecutesSubmittedTasks) {
  DynamicThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(DynamicThreadPool, FutureReturnsValue) {
  DynamicThreadPool pool(2);
  auto f = pool.submit_future([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(DynamicThreadPool, FuturePropagatesException) {
  DynamicThreadPool pool(2);
  auto f = pool.submit_future([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(DynamicThreadPool, VoidFuture) {
  DynamicThreadPool pool(1);
  std::atomic<bool> ran{false};
  auto f = pool.submit_future([&] { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(DynamicThreadPool, InitialSizeClampedToOne) {
  DynamicThreadPool pool(0);
  EXPECT_EQ(pool.pool_size(), 1);
  EXPECT_EQ(pool.live_threads(), 1);
}

TEST(DynamicThreadPool, GrowSpawnsImmediately) {
  DynamicThreadPool pool(2);
  pool.set_pool_size(6);
  EXPECT_EQ(pool.pool_size(), 6);
  EXPECT_EQ(pool.live_threads(), 6);
}

TEST(DynamicThreadPool, ShrinkIsLazyButConverges) {
  DynamicThreadPool pool(8);
  pool.set_pool_size(2);
  EXPECT_EQ(pool.pool_size(), 2);
  // Idle workers should exit promptly.
  for (int i = 0; i < 200 && pool.live_threads() > 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(pool.live_threads(), 2);
}

TEST(DynamicThreadPool, ConcurrencyBoundedByPoolSize) {
  DynamicThreadPool pool(3);
  std::atomic<int> concurrent{0}, peak{0}, done{0};
  for (int i = 0; i < 30; ++i) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      std::this_thread::sleep_for(2ms);
      concurrent.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 30);
  EXPECT_LE(peak.load(), 3);
  EXPECT_GE(peak.load(), 2);  // parallelism actually happened
}

TEST(DynamicThreadPool, ShrinkDoesNotStrandQueuedWork) {
  DynamicThreadPool pool(8);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(1ms);
      done.fetch_add(1);
    });
  }
  pool.set_pool_size(1);
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(DynamicThreadPool, GrowWhileBusyIncreasesThroughput) {
  DynamicThreadPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 40; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(2ms);
      done.fetch_add(1);
    });
  }
  pool.set_pool_size(8);
  pool.wait_idle();
  EXPECT_EQ(done.load(), 40);
  EXPECT_EQ(pool.live_threads(), 8);
}

TEST(DynamicThreadPool, ResizeFromWithinATask) {
  DynamicThreadPool pool(2);
  auto f = pool.submit_future([&] {
    pool.set_pool_size(5);
    return pool.pool_size();
  });
  EXPECT_EQ(f.get(), 5);
  pool.wait_idle();
  EXPECT_EQ(pool.live_threads(), 5);
}

TEST(DynamicThreadPool, SubmitAfterShutdownThrows) {
  DynamicThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(DynamicThreadPool, ShutdownDrainsQueue) {
  std::atomic<int> done{0};
  {
    DynamicThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(1ms);
        done.fetch_add(1);
      });
    }
    // Destructor performs shutdown.
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(DynamicThreadPool, StatsCountCompletions) {
  DynamicThreadPool pool(4);
  for (int i = 0; i < 25; ++i) pool.submit([] {});
  pool.wait_idle();
  const auto s = pool.stats();
  EXPECT_EQ(s.submitted, 25u);
  EXPECT_EQ(s.completed, 25u);
  EXPECT_GE(s.total_busy_seconds, 0.0);
}

TEST(DynamicThreadPool, RepeatedResizeStress) {
  DynamicThreadPool pool(4);
  std::atomic<int> done{0};
  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    int sizes[] = {2, 8, 1, 6, 3, 8, 2, 4};
    int i = 0;
    while (!stop.load()) {
      pool.set_pool_size(sizes[i++ % 8]);
      std::this_thread::sleep_for(1ms);
    }
  });
  for (int i = 0; i < 300; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  pool.wait_idle();
  stop = true;
  resizer.join();
  EXPECT_EQ(done.load(), 300);
}

}  // namespace
}  // namespace saex::pool
