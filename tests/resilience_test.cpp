// saex::resilience + the serve layer's resilience wiring: seeded retry
// backoff, the node-health circuit breaker, chaos schedule parsing, the
// kill/rejoin churn path, job deadlines (shed / cancel / SLO accounting),
// and the cancellation tie-break determinism guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/context.h"
#include "fault/fault.h"
#include "resilience/health.h"
#include "resilience/resilience.h"
#include "serve/job_server.h"
#include "serve/trace.h"
#include "shard/sharded_server.h"
#include "sim/simulation.h"

namespace saex {
namespace {

using engine::EventKind;
using engine::SparkContext;
using resilience::HealthOptions;
using resilience::NodeHealthTracker;
using resilience::RetryPolicy;
using serve::Admission;
using serve::JobOutcome;
using serve::JobServer;
using serve::JobServerOptions;
using serve::ServeReport;

// ---------- RetryPolicy ----------

TEST(RetryPolicy, ReadsConfig) {
  conf::Config c;
  c.set_int("saex.serve.maxRetries", 4);
  c.set("saex.serve.retryBackoff", "2s");
  c.set("saex.serve.retryBackoffMax", "40s");
  c.set_double("saex.serve.retryJitter", 0.25);
  const RetryPolicy p = RetryPolicy::from_config(c);
  EXPECT_EQ(p.max_retries, 4);
  EXPECT_DOUBLE_EQ(p.backoff, 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_max, 40.0);
  EXPECT_DOUBLE_EQ(p.jitter, 0.25);
}

TEST(RetryPolicy, DelayIsAPureFunctionOfSeedSubmissionAndAttempt) {
  RetryPolicy p;
  p.backoff = 1.0;
  p.backoff_max = 30.0;
  p.jitter = 0.5;
  // Same inputs, same delay — regardless of call order or interleaving.
  const double d = p.delay(42, 7, 1);
  for (int i = 0; i < 4; ++i) {
    (void)p.delay(42, 99, 2);  // other jobs' draws must not perturb it
    EXPECT_DOUBLE_EQ(p.delay(42, 7, 1), d);
  }
  // Different submission / attempt / seed: independent streams.
  EXPECT_NE(p.delay(42, 8, 1), d);
  EXPECT_NE(p.delay(42, 7, 2), d);
  EXPECT_NE(p.delay(43, 7, 1), d);
}

TEST(RetryPolicy, DelayGrowsExponentiallyWithinJitterBounds) {
  RetryPolicy p;
  p.backoff = 1.0;
  p.backoff_max = 30.0;
  p.jitter = 0.5;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double base = std::min(30.0, std::ldexp(1.0, attempt - 1));
    const double d = p.delay(42, 0, attempt);
    EXPECT_GE(d, base);
    EXPECT_LT(d, base * 1.5);
  }
}

TEST(RetryPolicy, ZeroJitterIsExactAndDrawFree) {
  RetryPolicy p;
  p.backoff = 2.0;
  p.backoff_max = 10.0;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.delay(42, 3, 1), 2.0);
  EXPECT_DOUBLE_EQ(p.delay(42, 3, 2), 4.0);
  EXPECT_DOUBLE_EQ(p.delay(42, 3, 3), 8.0);
  EXPECT_DOUBLE_EQ(p.delay(42, 3, 4), 10.0);  // capped
  EXPECT_DOUBLE_EQ(p.delay(42, 3, 9), 10.0);
}

// ---------- NodeHealthTracker (circuit breaker) ----------

struct BreakerRig {
  explicit BreakerRig(HealthOptions options) {
    NodeHealthTracker::Hooks hooks;
    hooks.quarantine = [this](int n) { quarantined.push_back(n); };
    hooks.reinstate = [this](int n) { reinstated.push_back(n); };
    tracker = std::make_unique<NodeHealthTracker>(4, options, sim, hooks);
  }

  sim::Simulation sim;
  std::unique_ptr<NodeHealthTracker> tracker;
  std::vector<int> quarantined;
  std::vector<int> reinstated;
};

HealthOptions breaker_options() {
  HealthOptions o;
  o.enabled = true;
  o.threshold = 2;
  o.window = 5.0;
  o.cooldown = 10.0;
  return o;
}

TEST(NodeHealthTracker, TripsAtThresholdWithinWindowAndCoolsDown) {
  BreakerRig rig(breaker_options());
  rig.sim.schedule_at(1.0, [&] { rig.tracker->record_fault(0); });
  rig.sim.schedule_at(2.0, [&] {
    rig.tracker->record_fault(0);
    EXPECT_TRUE(rig.tracker->quarantined(0));
    EXPECT_FALSE(rig.tracker->quarantined(1));
  });
  // Probe succeeds after the cooldown half-opens the breaker at t=12.
  rig.sim.schedule_at(13.0, [&] {
    EXPECT_FALSE(rig.tracker->quarantined(0));  // half-open: schedulable
    rig.tracker->record_task_outcome(0, true);
  });
  rig.sim.run();
  EXPECT_EQ(rig.quarantined, (std::vector<int>{0}));
  EXPECT_EQ(rig.reinstated, (std::vector<int>{0}));
  EXPECT_EQ(rig.tracker->quarantines(), 1);
  EXPECT_EQ(rig.tracker->probes(), 1);
  EXPECT_EQ(rig.tracker->reinstatements(), 1);
}

TEST(NodeHealthTracker, OldFaultsOutsideTheWindowDoNotTrip) {
  BreakerRig rig(breaker_options());
  rig.sim.schedule_at(1.0, [&] { rig.tracker->record_fault(2); });
  rig.sim.schedule_at(20.0, [&] {
    rig.tracker->record_fault(2);  // first fault long expired
    EXPECT_FALSE(rig.tracker->quarantined(2));
  });
  rig.sim.run();
  EXPECT_EQ(rig.tracker->quarantines(), 0);
}

TEST(NodeHealthTracker, FailedProbeReopensForAnotherCooldown) {
  BreakerRig rig(breaker_options());
  rig.sim.schedule_at(1.0, [&] { rig.tracker->record_fault(1); });
  rig.sim.schedule_at(2.0, [&] { rig.tracker->record_fault(1); });
  // Half-open at t=12; the probe fails -> open again; half-open at t=23.
  rig.sim.schedule_at(13.0, [&] { rig.tracker->record_task_outcome(1, false); });
  rig.sim.schedule_at(24.0, [&] {
    rig.tracker->record_task_outcome(1, true);
    EXPECT_FALSE(rig.tracker->quarantined(1));
  });
  rig.sim.run();
  EXPECT_EQ(rig.tracker->quarantines(), 2);
  EXPECT_EQ(rig.tracker->probes(), 2);
  EXPECT_EQ(rig.tracker->reinstatements(), 1);
}

TEST(NodeHealthTracker, FaultsWhileOpenAreIgnored) {
  BreakerRig rig(breaker_options());
  rig.sim.schedule_at(1.0, [&] { rig.tracker->record_fault(3); });
  rig.sim.schedule_at(2.0, [&] { rig.tracker->record_fault(3); });
  rig.sim.schedule_at(3.0, [&] { rig.tracker->record_fault(3); });
  rig.sim.schedule_at(4.0, [&] { rig.tracker->record_fault(3); });
  rig.sim.schedule_at(13.0, [&] { rig.tracker->record_task_outcome(3, true); });
  rig.sim.run();
  EXPECT_EQ(rig.tracker->quarantines(), 1);  // not re-tripped while open
}

// ---------- chaos schedule parsing ----------

TEST(ChaosSpec, ParsesSortsAndRoundTrips) {
  const auto events = fault::parse_chaos("rejoin:1@20, kill:1@5 kill:2@5");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, fault::ChaosEvent::Kind::kKill);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_DOUBLE_EQ(events[0].time, 5.0);
  EXPECT_EQ(events[1].node, 2);  // stable order at equal times
  EXPECT_EQ(events[2].kind, fault::ChaosEvent::Kind::kRejoin);
  EXPECT_DOUBLE_EQ(events[2].time, 20.0);

  const std::string canon = fault::format_chaos(events);
  EXPECT_EQ(canon, "kill:1@5,kill:2@5,rejoin:1@20");
  const auto reparsed = fault::parse_chaos(canon);
  ASSERT_EQ(reparsed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(reparsed[i].kind, events[i].kind);
    EXPECT_EQ(reparsed[i].node, events[i].node);
    EXPECT_DOUBLE_EQ(reparsed[i].time, events[i].time);
  }
}

TEST(ChaosSpec, AcceptsNewlinesAndComments) {
  const auto events = fault::parse_chaos(
      "# churn plan\nkill:0@10  # first loss\n\nrejoin:0@30\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].node, 0);
  EXPECT_DOUBLE_EQ(events[1].time, 30.0);
  EXPECT_TRUE(fault::parse_chaos("").empty());
  EXPECT_TRUE(fault::parse_chaos("# only comments\n").empty());
}

TEST(ChaosSpec, RejectsMalformedEntries) {
  EXPECT_THROW(fault::parse_chaos("restart:1@5"), conf::ConfigError);
  EXPECT_THROW(fault::parse_chaos("kill:1"), conf::ConfigError);
  EXPECT_THROW(fault::parse_chaos("kill:x@5"), conf::ConfigError);
  EXPECT_THROW(fault::parse_chaos("kill:-1@5"), conf::ConfigError);
  EXPECT_THROW(fault::parse_chaos("kill:1@oops"), conf::ConfigError);
  EXPECT_THROW(fault::parse_chaos("kill:1@-3"), conf::ConfigError);
}

TEST(FaultSpec, ReadsChaosAndFetchFailNode) {
  conf::Config c;
  c.set_bool("saex.fault.enabled", true);
  c.set("saex.fault.chaos", "kill:2@10,rejoin:2@20");
  c.set_int("saex.fault.fetchFailNode", 3);
  const fault::FaultSpec spec = fault::FaultSpec::from_config(c);
  ASSERT_EQ(spec.chaos.size(), 2u);
  EXPECT_EQ(spec.chaos[0].node, 2);
  EXPECT_EQ(spec.fetch_fail_node, 3);
}

TEST(FaultState, FetchFailNodeRestrictsDropsWithoutConsumingDraws) {
  // Same seed: stream positions must match whether or not unrelated
  // (non-targeted) fetches happened in between.
  fault::FaultState targeted(4, 42, 1.0, /*fetch_fail_node=*/2);
  fault::FaultState reference(4, 42, 1.0, 2);
  EXPECT_FALSE(targeted.drop_fetch(0, 1));  // not the target: never drops
  EXPECT_FALSE(targeted.drop_fetch(3, 1));
  EXPECT_EQ(targeted.drop_fetch(2, 0), reference.drop_fetch(2, 0));
  EXPECT_EQ(targeted.fetch_drops(), reference.fetch_drops());
}

// ---------- FaultPlan: kill re-fire regression + rejoin ----------

struct PlanRig {
  explicit PlanRig(fault::FaultSpec spec) {
    fault::FaultPlan::Hooks hooks;
    hooks.kill_executor = [this](int n) {
      alive[static_cast<size_t>(n)] = false;
      kills.push_back(n);
    };
    hooks.rejoin_executor = [this](int n) {
      alive[static_cast<size_t>(n)] = true;
      rejoins.push_back(n);
    };
    hooks.node_alive = [this](int n) { return alive[static_cast<size_t>(n)]; };
    plan = std::make_unique<fault::FaultPlan>(std::move(spec), sim, hooks);
  }

  sim::Simulation sim;
  std::vector<char> alive = std::vector<char>(8, 1);
  std::unique_ptr<fault::FaultPlan> plan;
  std::vector<int> kills;
  std::vector<int> rejoins;
};

TEST(FaultPlan, KillSpecDoesNotRefireOnAnAlreadyDeadNode) {
  // Chaos kills node 1 at t=2; the single-kill spec targets the same node at
  // t=5. The second trigger must see the node dead and NOT re-fire.
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.kill_node = 1;
  spec.kill_time = 5.0;
  spec.chaos = fault::parse_chaos("kill:1@2");
  PlanRig rig(std::move(spec));
  rig.plan->arm();
  rig.sim.run();
  EXPECT_EQ(rig.kills, (std::vector<int>{1}));
  EXPECT_EQ(rig.plan->kills_fired(), 1);
}

TEST(FaultPlan, TimeAndCountTriggersFireTheSpecKillOnce) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.kill_node = 2;
  spec.kill_time = 3.0;
  spec.kill_after_tasks = 10;
  PlanRig rig(std::move(spec));
  rig.plan->arm();
  rig.sim.run();  // time trigger fires at t=3
  EXPECT_TRUE(rig.plan->kill_fired());
  rig.plan->notify_task_finished(50);  // count trigger must now be inert
  EXPECT_EQ(rig.kills, (std::vector<int>{2}));
  EXPECT_EQ(rig.plan->kills_fired(), 1);
}

TEST(FaultPlan, RejoinRevivesOnlyDeadNodes) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.chaos = fault::parse_chaos("kill:3@1,rejoin:3@4,rejoin:5@6");
  PlanRig rig(std::move(spec));
  rig.plan->arm();
  rig.sim.run();
  EXPECT_EQ(rig.kills, (std::vector<int>{3}));
  // rejoin:5 targets a live node: a no-op.
  EXPECT_EQ(rig.rejoins, (std::vector<int>{3}));
  EXPECT_EQ(rig.plan->rejoins_fired(), 1);
  EXPECT_TRUE(rig.alive[3]);
}

// ---------- serve-layer rig ----------

conf::Config serve_config() {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  return c;
}

struct ServeRig {
  explicit ServeRig(conf::Config config = serve_config(), int nodes = 4,
                    uint64_t seed = 42)
      : spec([&] {
          hw::ClusterSpec s = hw::ClusterSpec::das5(nodes);
          s.seed = seed;
          return s;
        }()),
        cluster(spec),
        ctx(cluster, std::move(config)) {}

  hw::ClusterSpec spec;
  hw::Cluster cluster;
  SparkContext ctx;
};

serve::TraceOptions small_trace_options(uint64_t seed = 7) {
  serve::TraceOptions t;
  t.num_jobs = 12;
  t.mean_interarrival = 1.0;
  t.seed = seed;
  t.small_input = mib(256);
  t.big_input = mib(512);
  t.dim_input = mib(128);
  return t;
}

JobServer::Builder tiny_job(int id) {
  return [id](SparkContext& ctx) {
    return ctx.text_file("/serve/small")
        .filter("where", 0.2, 0.4)
        .save_as_text_file(strfmt::format("/res/out{}", id), 1);
  };
}

int count_events(const engine::EventLog& log, EventKind kind) {
  int n = 0;
  for (const engine::Event& e : log.events()) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// ---------- chaos churn through the engine ----------

TEST(ChaosChurn, KillAndRejoinRestoreClusterCapacity) {
  conf::Config c = serve_config();
  c.set_bool("saex.fault.enabled", true);
  c.set("saex.fault.chaos", "kill:1@2,rejoin:1@10");
  ServeRig rig(std::move(c));
  JobServer server(rig.ctx);
  const ServeReport report =
      server.replay(serve::make_trace(small_trace_options()),
                    small_trace_options());

  EXPECT_EQ(rig.ctx.fault_plan()->kills_fired(), 1);
  EXPECT_EQ(rig.ctx.fault_plan()->rejoins_fired(), 1);
  // The rejoin restored the node: nothing is dead at drain time.
  EXPECT_EQ(rig.ctx.scheduler().dead_executor_count(), 0);
  EXPECT_EQ(report.executors_lost, 0);
  EXPECT_EQ(count_events(rig.ctx.event_log(), EventKind::kExecutorLost), 1);
  EXPECT_EQ(count_events(rig.ctx.event_log(), EventKind::kExecutorRevived), 1);
  EXPECT_EQ(report.finished, report.submitted);
}

TEST(ChaosChurn, RevivedExecutorRunsTasksAgain) {
  ServeRig rig;
  rig.ctx.dfs().load_input("/in", mib(512), 4);
  rig.ctx.kill_executor(1);
  EXPECT_EQ(rig.ctx.scheduler().dead_executor_count(), 1);
  rig.ctx.revive_executor(1);
  rig.ctx.revive_executor(1);  // idempotent
  EXPECT_EQ(rig.ctx.scheduler().dead_executor_count(), 0);

  const engine::JobReport report = rig.ctx.run_job(
      rig.ctx.text_file("/in").map("m", {0.01, 1.0}).count(), "revived");
  EXPECT_FALSE(report.failed);
  // The revived executor participated in the stage.
  ASSERT_FALSE(report.stages.empty());
  bool node1_ran = false;
  for (const engine::ExecutorStageStats& es : report.stages[0].executors) {
    if (es.node == 1 && es.io_bytes > 0) node1_ran = true;
  }
  EXPECT_TRUE(node1_ran);
}

// ---------- deadlines: rejection, shedding, cancellation, SLO ----------

TEST(Deadlines, NonPositiveDeadlineIsRejectedUpFront) {
  ServeRig rig;
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  EXPECT_EQ(server.submit("zero", "c0", "default", tiny_job(0), 0.0),
            Admission::kRejectedDeadlineInfeasible);
  const ServeReport report = server.drain();
  EXPECT_EQ(report.rejected_deadline, 1);
  EXPECT_EQ(report.started, 0);
  EXPECT_NE(report.render().find("1 deadline-rejected"), std::string::npos);
}

TEST(Deadlines, QueuedJobPastItsDeadlineIsShed) {
  ServeRig rig;
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServerOptions o;
  o.max_concurrent_jobs = 1;
  JobServer server(rig.ctx, o);
  // Job 0 occupies the only slot for its whole (multi-second) runtime; job 1
  // has a 0.5 s budget and must be shed while still queued.
  server.submit("long", "c0", "default", tiny_job(0));
  server.submit("tight", "c0", "default", tiny_job(1), 0.5);
  const ServeReport report = server.drain();

  EXPECT_EQ(report.shed, 1);
  EXPECT_EQ(report.cancelled, 0);
  const serve::JobRecord& shed = report.jobs[1];
  EXPECT_EQ(shed.outcome, JobOutcome::kShedDeadline);
  EXPECT_TRUE(shed.failed);
  EXPECT_LT(shed.start_time, 0.0);  // never left the queue
  EXPECT_DOUBLE_EQ(shed.finish_time, shed.deadline);
  EXPECT_EQ(count_events(rig.ctx.event_log(), EventKind::kJobShed), 1);
  // SLO: tracked but not met; job 0 had no deadline so it is not tracked.
  EXPECT_EQ(report.slo_tracked, 1);
  EXPECT_EQ(report.slo_met, 0);
  EXPECT_NE(report.render_jobs().find("shed"), std::string::npos);
}

TEST(Deadlines, RunningJobIsCancelledAtItsDeadline) {
  ServeRig rig;
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  server.submit("doomed", "c0", "default", tiny_job(0), 0.5);
  const ServeReport report = server.drain();

  EXPECT_EQ(report.cancelled, 1);
  EXPECT_EQ(report.finished, 0);
  const serve::JobRecord& rec = report.jobs[0];
  EXPECT_EQ(rec.outcome, JobOutcome::kCancelledDeadline);
  EXPECT_TRUE(rec.report.cancelled);
  EXPECT_GE(rec.finish_time, rec.deadline);  // running copies drain first
  EXPECT_EQ(count_events(rig.ctx.event_log(), EventKind::kJobCancelled), 1);
  EXPECT_NE(report.render_jobs().find("cancelled"), std::string::npos);
}

TEST(Deadlines, GenerousDeadlineCountsTowardSlo) {
  ServeRig rig;
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  server.submit("easy", "c0", "default", tiny_job(0), 600.0);
  const ServeReport report = server.drain();
  EXPECT_EQ(report.finished, 1);
  EXPECT_EQ(report.slo_tracked, 1);
  EXPECT_EQ(report.slo_met, 1);
  EXPECT_EQ(report.shed + report.cancelled, 0);
}

TEST(Deadlines, DefaultDeadlineAppliesWhenSubmissionCarriesNone) {
  conf::Config c = serve_config();
  c.set("saex.serve.defaultDeadline", "600s");
  ServeRig rig(std::move(c));
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  server.submit("default-slo", "c0", "default", tiny_job(0));
  const ServeReport report = server.drain();
  EXPECT_EQ(report.slo_tracked, 1);
  EXPECT_EQ(report.slo_met, 1);
}

TEST(Deadlines, UnenforcedDeadlinesOnlyRecordSlo) {
  conf::Config c = serve_config();
  c.set_bool("saex.serve.enforceDeadlines", false);
  ServeRig rig(std::move(c));
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  // Would be cancelled (or rejected, for the 0-budget one) under
  // enforcement; the baseline lets both run and only scores them.
  server.submit("tight", "c0", "default", tiny_job(0), 0.01);
  const ServeReport report = server.drain();
  EXPECT_EQ(report.finished, 1);
  EXPECT_EQ(report.cancelled + report.shed, 0);
  EXPECT_EQ(report.slo_tracked, 1);
  EXPECT_EQ(report.slo_met, 0);  // ran past the (unenforced) budget
}

// ---------- cancellation edges + tie-break determinism ----------

TEST(CancellationEdges, SameInstantDeadlineAndCompletionResolveToCancel) {
  // Submit a job, measure its natural finish; rerun with the deadline set to
  // exactly that instant. The deadline timer was scheduled at submission, so
  // FIFO tie-break fires it before the completion event: deterministic
  // cancel, bitwise-stable across reruns.
  double natural = -1.0;
  {
    ServeRig rig;
    load_trace_inputs(rig.ctx, small_trace_options());
    JobServer server(rig.ctx);
    server.submit("probe", "c0", "default", tiny_job(0));
    natural = server.drain().jobs[0].finish_time;
  }
  ASSERT_GT(natural, 0.0);
  std::string first_render;
  for (int run = 0; run < 2; ++run) {
    ServeRig rig;
    load_trace_inputs(rig.ctx, small_trace_options());
    JobServer server(rig.ctx);
    server.submit("dead-heat", "c0", "default", tiny_job(0), natural);
    const ServeReport report = server.drain();
    EXPECT_EQ(report.jobs[0].outcome, JobOutcome::kCancelledDeadline);
    EXPECT_EQ(report.cancelled, 1);
    if (run == 0) {
      first_render = report.render() + report.render_jobs();
    } else {
      EXPECT_EQ(report.render() + report.render_jobs(), first_render);
    }
  }
}

TEST(CancellationEdges, ReplayWithDeadlinesIsDeterministicAcrossReruns) {
  serve::TraceOptions t = small_trace_options();
  t.interactive_deadline = 8.0;
  t.batch_deadline = 60.0;
  auto run = [&] {
    conf::Config c = serve_config();
    c.set_int("saex.serve.maxConcurrentJobs", 2);
    ServeRig rig(std::move(c));
    JobServer server(rig.ctx);
    const ServeReport report = server.replay(serve::make_trace(t), t);
    return report.render() + "\n" + report.render_jobs();
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  // The tight interactive budget actually exercised shedding/cancelling.
  EXPECT_TRUE(a.find("shed") != std::string::npos ||
              a.find("cancelled") != std::string::npos);
}

TEST(CancellationEdges, OneShardMatchesSerialWithResilienceEnabled) {
  serve::TraceOptions t = small_trace_options(11);
  t.interactive_deadline = 8.0;
  t.batch_deadline = 90.0;

  auto resilience_config = [] {
    conf::Config c;
    c.set("spark.default.parallelism", "64");
    c.set_int("saex.serve.maxConcurrentJobs", 4);
    c.set_int("saex.serve.maxRetries", 1);
    c.set_bool("saex.resilience.quarantine", true);
    c.set_bool("saex.fault.enabled", true);
    c.set("saex.fault.chaos", "kill:1@4,rejoin:1@30");
    return c;
  };

  hw::ClusterSpec spec = hw::ClusterSpec::das5(8);
  hw::Cluster cluster(spec);
  SparkContext ctx(cluster, resilience_config());
  JobServer server(ctx);
  const ServeReport serial = server.replay(serve::make_trace(t), t);

  conf::Config sharded_config = resilience_config();
  sharded_config.set_int("saex.shard.count", 1);
  sharded_config.set_int("saex.shard.workers", 1);
  shard::ShardedServer sharded(spec, sharded_config);
  const shard::ShardedServeReport report = sharded.replay(serve::make_trace(t), t);

  EXPECT_EQ(report.merged.render() + "\n" + report.render_jobs(),
            serial.render() + "\n" + serial.render_jobs());
}

// ---------- retry with backoff ----------

TEST(Retry, ExhaustedRetriesSettleAsFailedWithBackoffSpacing) {
  conf::Config c = serve_config();
  c.set_double("saex.sim.taskFailureProb", 1.0);  // every attempt dies
  c.set_int("saex.serve.maxRetries", 2);
  c.set("saex.serve.retryBackoff", "2s");
  ServeRig rig(std::move(c));
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  server.submit("hopeless", "c0", "default", tiny_job(0));
  const ServeReport report = server.drain();

  const serve::JobRecord& rec = report.jobs[0];
  EXPECT_EQ(rec.outcome, JobOutcome::kFailed);
  EXPECT_EQ(rec.retries, 2);
  ASSERT_EQ(rec.retry_times.size(), 2u);
  EXPECT_LT(rec.retry_times[0], rec.retry_times[1]);
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(count_events(rig.ctx.event_log(), EventKind::kJobRetried), 2);
  EXPECT_NE(report.render_jobs().find("FAILED (r2)"), std::string::npos);
}

TEST(Retry, FlakyNodeFailureIsRetriedAndCanSucceed) {
  // Node 0 fails most attempts; tasks blacklisted off it still finish the
  // stage unless it aborts first. With a per-(stream-position) draw the
  // retry resamples, so across retries the job eventually completes.
  conf::Config c = serve_config();
  c.set_int("saex.sim.flakyNode", 0);
  c.set_double("saex.sim.flakyNodeFailureProb", 0.97);
  c.set_int("saex.serve.maxRetries", 5);
  c.set("saex.serve.retryBackoff", "1s");
  ServeRig rig(std::move(c));
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  server.submit("flaky", "c0", "default", tiny_job(0));
  const ServeReport report = server.drain();
  const serve::JobRecord& rec = report.jobs[0];
  // Either outcome is legitimate physics; what must hold: the server kept
  // its promise (retries bounded by the budget, settled exactly once).
  EXPECT_LE(rec.retries, 5);
  EXPECT_TRUE(rec.outcome == JobOutcome::kFinished ||
              rec.outcome == JobOutcome::kFailed);
  EXPECT_GE(rec.finish_time, 0.0);
}

TEST(Retry, RetryWaitersAreShedAtTheirDeadline) {
  conf::Config c = serve_config();
  c.set_double("saex.sim.taskFailureProb", 1.0);
  c.set_int("saex.serve.maxRetries", 8);
  c.set("saex.serve.retryBackoff", "64s");  // parks the job in retry-wait
  ServeRig rig(std::move(c));
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServer server(rig.ctx);
  server.submit("parked", "c0", "default", tiny_job(0), 30.0);
  const ServeReport report = server.drain();
  const serve::JobRecord& rec = report.jobs[0];
  // First attempt fails fast, the 64 s backoff crosses the 30 s deadline,
  // and the deadline timer sheds the parked retry.
  EXPECT_EQ(rec.outcome, JobOutcome::kShedDeadline);
  EXPECT_EQ(rec.retries, 1);
  EXPECT_DOUBLE_EQ(rec.finish_time, rec.deadline);
  EXPECT_EQ(report.shed, 1);
}

// ---------- quarantine through the serve layer ----------

TEST(Quarantine, FetchFailuresTripTheBreakerAndExcludeTheNode) {
  conf::Config c = serve_config();
  c.set_bool("saex.fault.enabled", true);
  c.set_double("saex.fault.fetchFailProb", 0.9);
  c.set_int("saex.fault.fetchFailNode", 1);
  c.set_bool("saex.resilience.quarantine", true);
  c.set_int("saex.resilience.quarantineThreshold", 3);
  c.set("saex.resilience.quarantineWindow", "30s");
  c.set("saex.resilience.quarantineCooldown", "15s");
  ServeRig rig(std::move(c));
  JobServer server(rig.ctx);
  const serve::TraceOptions t = small_trace_options();
  const ServeReport report = server.replay(serve::make_trace(t), t);

  EXPECT_GT(report.quarantines, 0);
  EXPECT_EQ(report.quarantines,
            count_events(rig.ctx.event_log(), EventKind::kNodeQuarantined));
  EXPECT_EQ(report.probes,
            count_events(rig.ctx.event_log(), EventKind::kNodeReinstated));
  EXPECT_GE(report.probes, 1);  // cooldown elapsed at least once
  // Every job still finished: quarantine sheds load, it does not lose work.
  EXPECT_EQ(report.finished, report.submitted);
  EXPECT_NE(report.render().find("quarantine:"), std::string::npos);
}

TEST(Quarantine, QuarantinedExecutorReceivesNoOffers) {
  ServeRig rig;
  rig.ctx.dfs().load_input("/in", mib(512), 4);
  rig.ctx.scheduler().set_executor_quarantined(1, true);
  EXPECT_TRUE(rig.ctx.scheduler().executor_quarantined(1));
  EXPECT_EQ(rig.ctx.scheduler().quarantined_executor_count(), 1);

  const engine::JobReport report = rig.ctx.run_job(
      rig.ctx.text_file("/in").map("m", {0.01, 1.0}).count(), "excluded");
  EXPECT_FALSE(report.failed);
  for (const engine::ExecutorStageStats& es : report.stages[0].executors) {
    if (es.node == 1) {
      EXPECT_EQ(es.io_bytes, 0);
    }
  }

  // Lifting the quarantine restores offers.
  rig.ctx.scheduler().set_executor_quarantined(1, false);
  EXPECT_EQ(rig.ctx.scheduler().quarantined_executor_count(), 0);
  const engine::JobReport after = rig.ctx.run_job(
      rig.ctx.text_file("/in").map("m2", {0.01, 1.0}).count(), "restored");
  bool node1_ran = false;
  for (const engine::ExecutorStageStats& es : after.stages[0].executors) {
    if (es.node == 1 && es.io_bytes > 0) node1_ran = true;
  }
  EXPECT_TRUE(node1_ran);
}

}  // namespace
}  // namespace saex
