#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulation.h"

namespace saex::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, FiresInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation s;
  double fired_at = -1;
  s.schedule_at(5.0, [&] {
    s.schedule_after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation s;
  double fired_at = -1;
  s.schedule_at(5.0, [&] {
    s.schedule_at(1.0, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.processed(), 0u);
}

TEST(Simulation, CancelFromWithinEvent) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(2.0, [&] { fired = true; });
  s.schedule_at(1.0, [&] { s.cancel(id); });
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilStopsAtLimit) {
  Simulation s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.schedule_at(t, [&times, &s] { times.push_back(s.now()); });
  }
  EXPECT_TRUE(s.run_until(2.5));
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  EXPECT_FALSE(s.run_until(10.0));
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulation, RunUntilAdvancesTimeWhenQueueEmpty) {
  Simulation s;
  EXPECT_FALSE(s.run_until(42.0));
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulation, StepProcessesOneEvent) {
  Simulation s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, PendingCountsLiveEvents) {
  Simulation s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, CancelOfFiredEventReturnsFalse) {
  Simulation s;
  bool a = false, b = false;
  const EventId first = s.schedule_at(1.0, [&] { a = true; });
  s.schedule_at(2.0, [&] { b = true; });
  EXPECT_TRUE(s.step());  // fires `first`
  EXPECT_TRUE(a);
  EXPECT_EQ(s.pending(), 1u);
  // Regression: cancelling an already-fired id used to push a tombstone that
  // never surfaced and decrement live_events_, corrupting pending().
  EXPECT_FALSE(s.cancel(first));
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(b);
  EXPECT_EQ(s.processed(), 2u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, CancelOfStaleIdAfterSlotReuse) {
  Simulation s;
  const EventId first = s.schedule_at(1.0, [] {});
  s.run();  // `first` fires; its slot is recycled
  bool fired = false;
  s.schedule_at(2.0, [&] { fired = true; });
  EXPECT_FALSE(s.cancel(first));  // stale handle must not hit the new event
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelOfInvalidIdsReturnsFalse) {
  Simulation s;
  EXPECT_FALSE(s.cancel(kInvalidEvent));
  EXPECT_FALSE(s.cancel(987654321));  // never minted
  s.schedule_at(1.0, [] {});
  EXPECT_FALSE(s.cancel(987654321));
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, RunUntilFiresEventExactlyAtLimit) {
  Simulation s;
  bool at_limit = false, past_limit = false;
  s.schedule_at(2.0, [&] { at_limit = true; });
  s.schedule_at(2.0000001, [&] { past_limit = true; });
  EXPECT_TRUE(s.run_until(2.0));  // boundary event fires; later one remains
  EXPECT_TRUE(at_limit);
  EXPECT_FALSE(past_limit);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_FALSE(s.run_until(3.0));
  EXPECT_TRUE(past_limit);
}

TEST(Simulation, CancelThenFireKeepsFifoOfSurvivors) {
  Simulation s;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(s.schedule_at(1.0, [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(s.cancel(ids[0]));
  EXPECT_TRUE(s.cancel(ids[3]));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5}));
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.processed(), 4u);
}

TEST(Simulation, FullyCancelledQueueDrainsWithoutAdvancingTime) {
  Simulation s;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.schedule_at(1.0 + i, [] {}));
  }
  for (const EventId id : ids) EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_EQ(s.processed(), 0u);
  EXPECT_EQ(s.now(), 0.0);  // tombstones must not move the clock
}

TEST(Simulation, RandomScheduleCancelMatchesReference) {
  // Pseudo-random schedule/cancel mix checked against a stable-sort oracle:
  // survivors must fire in (time, schedule order).
  Simulation s;
  struct Ref {
    double t;
    int tag;
    bool cancelled = false;
  };
  std::vector<Ref> refs;
  std::vector<EventId> ids;
  std::vector<int> fired;
  uint64_t rng = 42;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int i = 0; i < 2000; ++i) {
    const double t = static_cast<double>(next() % 97);  // many timestamp ties
    refs.push_back(Ref{t, i});
    ids.push_back(s.schedule_at(t, [&fired, i] { fired.push_back(i); }));
    if (next() % 4 == 0) {
      const size_t victim = next() % refs.size();
      if (!refs[victim].cancelled) {
        EXPECT_TRUE(s.cancel(ids[victim]));
        refs[victim].cancelled = true;
      }
    }
  }
  s.run();
  std::vector<int> expected;
  std::vector<size_t> by_order(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) by_order[i] = i;
  std::stable_sort(by_order.begin(), by_order.end(),
                   [&](size_t a, size_t b) { return refs[a].t < refs[b].t; });
  for (const size_t i : by_order) {
    if (!refs[i].cancelled) expected.push_back(refs[i].tag);
  }
  EXPECT_EQ(fired, expected);
}

TEST(Simulation, CascadingEventsTerminate) {
  Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) s.schedule_after(0.001, chain);
  };
  s.schedule_at(0.0, chain);
  s.run();
  EXPECT_EQ(depth, 1000);
  EXPECT_NEAR(s.now(), 0.999, 1e-9);
}

}  // namespace
}  // namespace saex::sim
