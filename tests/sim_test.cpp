#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace saex::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, FiresInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation s;
  double fired_at = -1;
  s.schedule_at(5.0, [&] {
    s.schedule_after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation s;
  double fired_at = -1;
  s.schedule_at(5.0, [&] {
    s.schedule_at(1.0, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.processed(), 0u);
}

TEST(Simulation, CancelFromWithinEvent) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(2.0, [&] { fired = true; });
  s.schedule_at(1.0, [&] { s.cancel(id); });
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilStopsAtLimit) {
  Simulation s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.schedule_at(t, [&times, &s] { times.push_back(s.now()); });
  }
  EXPECT_TRUE(s.run_until(2.5));
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  EXPECT_FALSE(s.run_until(10.0));
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulation, RunUntilAdvancesTimeWhenQueueEmpty) {
  Simulation s;
  EXPECT_FALSE(s.run_until(42.0));
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulation, StepProcessesOneEvent) {
  Simulation s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, PendingCountsLiveEvents) {
  Simulation s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, CascadingEventsTerminate) {
  Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) s.schedule_after(0.001, chain);
  };
  s.schedule_at(0.0, chain);
  s.run();
  EXPECT_EQ(depth, 1000);
  EXPECT_NEAR(s.now(), 0.999, 1e-9);
}

}  // namespace
}  // namespace saex::sim
