// Workload definitions: stage structure, byte accounting vs Table 2, and
// the headline end-to-end orderings from the paper's evaluation.
#include <gtest/gtest.h>

#include "workloads/workloads.h"

namespace saex::workloads {
namespace {

engine::JobReport run_default(const WorkloadSpec& spec, uint64_t seed = 42) {
  hw::ClusterSpec cs = hw::ClusterSpec::das5(4);
  cs.seed = seed;
  hw::Cluster cluster(cs);
  return run(spec, cluster, conf::Config{});
}

engine::JobReport run_policy(const WorkloadSpec& spec, const char* policy,
                             int io_threads = 8) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config config;
  config.set("saex.executor.policy", policy);
  config.set_int("saex.static.ioThreads", io_threads);
  return run(spec, cluster, std::move(config));
}

TEST(Workloads, Table2SetHasNineApplications) {
  const auto all = table2_workloads();
  EXPECT_EQ(all.size(), 9u);
  for (const auto& w : all) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_GT(w.input_size, 0);
    EXPECT_GT(w.paper_io_ratio, 0.0);
    EXPECT_TRUE(w.build != nullptr);
  }
}

TEST(Workloads, TerasortHasThreeIoTaggedStages) {
  const auto report = run_default(terasort(gib(8)));
  ASSERT_EQ(report.stages.size(), 3u);
  for (const auto& s : report.stages) EXPECT_TRUE(s.io_tagged);
  // Paper §4: stage 0 and 1 read, stage 2 writes the sorted output.
  EXPECT_GT(report.stages[0].disk_read, 0);
  EXPECT_GT(report.stages[2].disk_written, 0);
}

TEST(Workloads, PagerankMiddleStagesAreNotIoTagged) {
  const auto report = run_default(pagerank(gib(2), 4));
  ASSERT_EQ(report.stages.size(), 6u);
  EXPECT_TRUE(report.stages[0].io_tagged);
  for (size_t i = 1; i + 1 < report.stages.size(); ++i) {
    EXPECT_FALSE(report.stages[i].io_tagged) << "stage " << i;
  }
  EXPECT_TRUE(report.stages.back().io_tagged);
}

TEST(Workloads, JoinHasThreeStages) {
  const auto report = run_default(join(gib(2)));
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_TRUE(report.stages[0].io_tagged);
  EXPECT_TRUE(report.stages[1].io_tagged);
  EXPECT_TRUE(report.stages[2].io_tagged);  // writes the join output
}

TEST(Workloads, AggregationHasTwoStages) {
  const auto report = run_default(aggregation(gib(2)));
  ASSERT_EQ(report.stages.size(), 2u);
}

TEST(Workloads, SvmSpillsItsCache) {
  // 107 GiB cached against a ~16.8 GiB/node storage budget must spill.
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config config;
  engine::SparkContext ctx(cluster, config);
  const auto spec = svm();
  const auto actions = spec.build(ctx);
  ASSERT_EQ(actions.size(), 2u);
  (void)ctx.run_job(actions[0], "svm-pass1");
  Bytes spilled = 0;
  for (int n = 0; n < 4; ++n) {
    spilled += ctx.executor(n).storage_used();
  }
  // Storage budgets are full (cache did not fit).
  EXPECT_GT(spilled, gib(60));
}

// Table 2 reproduction: measured I/O-activity multiplier within a factor
// band of the paper's. The multipliers span 1.18x..36.5x, so matching the
// ordering and magnitude (not the decimals) is the meaningful check.
class Table2Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Table2Test, IoActivityRatioNearPaper) {
  const WorkloadSpec spec = table2_workloads()[GetParam()];
  // Scale very large inputs down for test speed; ratios are size-invariant
  // to first order (block counts stay >> node count).
  const Bytes input = std::min(spec.input_size, gib(8));
  WorkloadSpec scaled = spec;
  if (input != spec.input_size) {
    // Rebuild with the scaled size through the named constructors.
    if (spec.name == "terasort") scaled = terasort(input);
    if (spec.name == "svm") scaled = svm(input);
    scaled.paper_io_ratio = spec.paper_io_ratio;
  }
  const auto report = run_default(scaled);
  const double measured = static_cast<double>(report.total_disk_bytes) /
                          static_cast<double>(report.input_bytes);
  EXPECT_GT(measured, spec.paper_io_ratio * 0.5)
      << spec.name << " measured " << measured;
  EXPECT_LT(measured, spec.paper_io_ratio * 2.0)
      << spec.name << " measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(AllApps, Table2Test,
                         ::testing::Range<size_t>(0, 9),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return table2_workloads()[info.param].name;
                         });

// ---- headline orderings from the evaluation (§6.2) ----

TEST(Evaluation, TerasortTunedBeatsDefault) {
  const auto spec = terasort(gib(24));
  const double def = run_policy(spec, "default").total_runtime;
  const double st8 = run_policy(spec, "static", 8).total_runtime;
  const double dyn = run_policy(spec, "dynamic").total_runtime;
  // Paper: static-8 ~39% faster, dynamic ~34% faster.
  EXPECT_LT(st8, 0.75 * def);
  EXPECT_LT(dyn, 0.80 * def);
}

TEST(Evaluation, TerasortTwoThreadsAlsoBad) {
  const auto spec = terasort(gib(24));
  const double def = run_policy(spec, "default").total_runtime;
  const double st2 = run_policy(spec, "static", 2).total_runtime;
  const double st8 = run_policy(spec, "static", 8).total_runtime;
  // U-shape: both extremes lose to the middle.
  EXPECT_GT(st2, st8 * 1.3);
  EXPECT_LT(st2, def * 1.2);
}

TEST(Evaluation, PagerankDynamicBeatsStatic) {
  const auto spec = pagerank(gib(18.56), 4);
  const double def = run_policy(spec, "default").total_runtime;
  const double st = run_policy(spec, "static", 16).total_runtime;
  const double dyn = run_policy(spec, "dynamic").total_runtime;
  // Paper: static gains are small (~19%), dynamic large (~54%) because only
  // the dynamic solution tunes the shuffle stages (L2).
  EXPECT_LT(dyn, 0.8 * def);
  EXPECT_LT(dyn, st);
}

TEST(Evaluation, AggregationStaticDoesNotHelp) {
  const auto spec = aggregation();
  const double def = run_policy(spec, "default").total_runtime;
  const double st8 = run_policy(spec, "static", 8).total_runtime;
  const double st2 = run_policy(spec, "static", 2).total_runtime;
  // Paper Fig. 4a: every reduced static setting is worse than default.
  EXPECT_GT(st8, def);
  EXPECT_GT(st2, st8);
}

TEST(Evaluation, JoinDefaultIsBestStaticSetting) {
  const auto spec = join();
  const double def = run_policy(spec, "default").total_runtime;
  for (int t : {16, 8, 4}) {
    EXPECT_GT(run_policy(spec, "static", t).total_runtime, def) << t;
  }
}

TEST(Evaluation, DynamicSettlesPerStagePerExecutor) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config config;
  config.set("saex.executor.policy", "dynamic");
  const auto report = run(terasort(gib(24)), cluster, std::move(config));
  // Fig. 6: every executor settles within bounds; values may differ across
  // stages (stage 0 read-only vs stage 2 shuffle+write).
  for (const auto& s : report.stages) {
    for (const auto& es : s.executors) {
      EXPECT_GE(es.threads_settled, 2);
      EXPECT_LE(es.threads_settled, 32);
    }
  }
}

TEST(Evaluation, WorkloadRunsAreDeterministic) {
  const auto spec = pagerank(gib(4), 3);
  const double a = run_default(spec, 7).total_runtime;
  const double b = run_default(spec, 7).total_runtime;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace saex::workloads

namespace saex::workloads {
namespace {

TEST(ExtraWorkloads, AllRunToCompletion) {
  for (const auto& spec : extra_workloads()) {
    hw::Cluster cluster(hw::ClusterSpec::das5(4));
    const auto report = run(spec, cluster, conf::Config{});
    EXPECT_GT(report.total_runtime, 0.0) << spec.name;
    EXPECT_GT(report.total_disk_bytes, 0) << spec.name;
    EXPECT_FALSE(report.stages.empty()) << spec.name;
  }
}

TEST(ExtraWorkloads, WordcountShuffleIsTiny) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  engine::SparkContext ctx(cluster, conf::Config{});
  const auto spec = wordcount(gib(8));
  for (const auto& a : spec.build(ctx)) (void)ctx.run_job(a, spec.name);
  // The combiner crushed the data: shuffle 0 carries ~3% of the input.
  EXPECT_LT(ctx.shuffles().total_output(0), gib(8) / 16);
}

TEST(ExtraWorkloads, KmeansIterationsReadFromCache) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  engine::SparkContext ctx(cluster, conf::Config{});
  const auto spec = kmeans(gib(8), 3);
  const auto actions = spec.build(ctx);
  ASSERT_EQ(actions.size(), 3u);
  (void)ctx.run_job(actions[0], "k1");
  const Bytes after_first = cluster.total_disk_bytes();
  (void)ctx.run_job(actions[1], "k2");
  const Bytes after_second = cluster.total_disk_bytes();
  // The second iteration reads the cached vectors: almost no new disk I/O.
  EXPECT_LT(after_second - after_first, (after_first) / 10);
}

}  // namespace
}  // namespace saex::workloads
