#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "hw/disk.h"
#include "sim/simulation.h"

namespace saex::hw {
namespace {

// Runs `k` closed-loop sequential streams, each reading `per_stream` bytes in
// `chunk`-sized blocking requests; returns aggregate throughput (bytes/s).
double measure_throughput(const DiskParams& params, int k, Bytes per_stream,
                          Bytes chunk, bool is_write = false) {
  sim::Simulation sim;
  Disk disk(sim, params, "d");
  int done_streams = 0;

  std::function<void(int, Bytes)> pump = [&](int stream, Bytes remaining) {
    if (remaining <= 0) {
      ++done_streams;
      return;
    }
    const Bytes now_chunk = std::min(chunk, remaining);
    disk.submit(now_chunk, is_write,
                [&pump, stream, remaining, now_chunk] {
                  pump(stream, remaining - now_chunk);
                });
  };
  for (int i = 0; i < k; ++i) pump(i, per_stream);
  const double elapsed = sim.run();
  EXPECT_EQ(done_streams, k);
  return static_cast<double>(per_stream) * k / elapsed;
}

TEST(DiskCapacity, HddUnimodalInConcurrency) {
  const DiskParams hdd = DiskParams::hdd();
  sim::Simulation sim;
  Disk disk(sim, hdd, "d");
  // Rises from 1 toward a 4..8 plateau, falls beyond (Fig. 12a shape).
  EXPECT_GT(disk.capacity_at(2), disk.capacity_at(1));
  EXPECT_GT(disk.capacity_at(4), disk.capacity_at(2));
  EXPECT_NEAR(disk.capacity_at(8), disk.capacity_at(4),
              0.05 * disk.capacity_at(4));
  EXPECT_GT(disk.capacity_at(8), disk.capacity_at(16));
  EXPECT_GT(disk.capacity_at(16), disk.capacity_at(32));
  // The paper's headline: default (32) clearly below the peak.
  EXPECT_LT(disk.capacity_at(32), 0.65 * disk.capacity_at(4));
}

TEST(DiskCapacity, SsdEssentiallyFlatForReads) {
  const DiskParams ssd = DiskParams::ssd();
  sim::Simulation sim;
  Disk disk(sim, ssd, "d");
  const double c1 = disk.capacity_at(1);
  const double c32 = disk.capacity_at(32);
  EXPECT_GT(c32, c1);  // more concurrency never hurts SSD reads
  EXPECT_LT(c32 / c1, 1.4);
}

TEST(DiskCapacity, ZeroConcurrencyIsZero) {
  sim::Simulation sim;
  Disk disk(sim, DiskParams::hdd(), "d");
  EXPECT_EQ(disk.capacity_at(0), 0.0);
}

TEST(DiskThroughput, MeasuredMatchesCapacityWhenSaturated) {
  // Pure-I/O closed loops keep the device saturated, so measured aggregate
  // throughput approximates C(k).
  const DiskParams hdd = DiskParams::hdd();
  sim::Simulation sim;
  Disk ref(sim, hdd, "d");
  for (int k : {1, 4, 16}) {
    const double measured = measure_throughput(hdd, k, mib(256), mib(8));
    EXPECT_NEAR(measured, ref.capacity_at(k), 0.06 * ref.capacity_at(k))
        << "k=" << k;
  }
}

TEST(DiskThroughput, HddDegradesAtHighConcurrency) {
  const DiskParams hdd = DiskParams::hdd();
  const double t4 = measure_throughput(hdd, 4, mib(128), mib(4));
  const double t32 = measure_throughput(hdd, 32, mib(128), mib(4));
  EXPECT_LT(t32, 0.75 * t4);
}

TEST(DiskThroughput, SsdWritesSlowerThanReads) {
  const DiskParams ssd = DiskParams::ssd();
  const double r = measure_throughput(ssd, 4, mib(256), mib(8), false);
  const double w = measure_throughput(ssd, 4, mib(256), mib(8), true);
  EXPECT_LT(w, 0.7 * r);
}

TEST(DiskThroughput, SpeedFactorScales) {
  sim::Simulation sim;
  Disk fast(sim, DiskParams::hdd(), "fast", 1.0);
  Disk slow(sim, DiskParams::hdd(), "slow", 0.5);
  EXPECT_NEAR(slow.capacity_at(4), 0.5 * fast.capacity_at(4), 1e-6);
}

TEST(Disk, ByteCountersTrackSubmissions) {
  sim::Simulation sim;
  Disk disk(sim, DiskParams::hdd(), "d");
  disk.submit(mib(10), false, [] {});
  disk.submit(mib(5), true, [] {});
  sim.run();
  EXPECT_EQ(disk.total_bytes_read(), mib(10));
  EXPECT_EQ(disk.total_bytes_written(), mib(5));
}

TEST(Disk, ZeroByteTransferCompletes) {
  sim::Simulation sim;
  Disk disk(sim, DiskParams::hdd(), "d");
  bool done = false;
  disk.submit(0, false, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Disk, BusyTrackerReflectsActivity) {
  sim::Simulation sim;
  Disk disk(sim, DiskParams::hdd(), "d");
  bool done = false;
  disk.submit(mib(16), false, [&] { done = true; });
  const double end = sim.run();
  ASSERT_TRUE(done);
  // Busy except for the setup latency.
  EXPECT_GT(disk.busy_tracker().utilization(0.0, end), 0.95);
}

TEST(Disk, SharedLatencyGrowsWithConcurrency) {
  // Single-transfer completion time vs the same transfer alongside 7 others:
  // processor sharing must stretch individual latencies.
  auto single_latency = [](int k) {
    sim::Simulation sim;
    Disk disk(sim, DiskParams::hdd(), "d");
    double first_done = -1;
    for (int i = 0; i < k; ++i) {
      disk.submit(mib(32), false, [&sim, &first_done] {
        if (first_done < 0) first_done = sim.now();
      });
    }
    sim.run();
    return first_done;
  };
  EXPECT_GT(single_latency(8), 3.0 * single_latency(1));
}

TEST(Disk, CompletionOrderIsFairUnderEqualWork) {
  // Equal-size transfers submitted together finish together (PS fairness).
  sim::Simulation sim;
  Disk disk(sim, DiskParams::hdd(), "d");
  std::vector<double> finish;
  for (int i = 0; i < 4; ++i) {
    disk.submit(mib(64), false, [&] { finish.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(finish.size(), 4u);
  for (double f : finish) EXPECT_NEAR(f, finish[0], 1e-6);
}

// Parameterized property sweep: for every chunk size and stream count the
// device never exceeds its configured capacity envelope.
class DiskPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DiskPropertyTest, ThroughputNeverExceedsCapacity) {
  const auto [k, chunk_mib] = GetParam();
  const DiskParams hdd = DiskParams::hdd();
  sim::Simulation sim;
  Disk ref(sim, hdd, "d");
  double peak = 0.0;
  for (int i = 1; i <= 64; ++i) peak = std::max(peak, ref.capacity_at(i));
  const double measured =
      measure_throughput(hdd, k, mib(64), mib(chunk_mib));
  EXPECT_LE(measured, peak * 1.01) << "k=" << k << " chunk=" << chunk_mib;
  EXPECT_GT(measured, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiskPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21, 32),
                       ::testing::Values(1, 4, 16)));

}  // namespace
}  // namespace saex::hw
