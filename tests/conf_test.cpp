#include <gtest/gtest.h>

#include "conf/config.h"

namespace saex::conf {
namespace {

// Paper Table 1: the functional-parameter census.
TEST(SparkRegistry, Table1CategoryCounts) {
  const Registry& r = spark_registry();
  EXPECT_EQ(r.count(Category::kShuffle), 19u);
  EXPECT_EQ(r.count(Category::kCompressionSerialization), 16u);
  EXPECT_EQ(r.count(Category::kMemoryManagement), 14u);
  EXPECT_EQ(r.count(Category::kExecutionBehavior), 14u);
  EXPECT_EQ(r.count(Category::kNetwork), 13u);
  EXPECT_EQ(r.count(Category::kScheduling), 32u);
  EXPECT_EQ(r.count(Category::kDynamicAllocation), 9u);
  EXPECT_EQ(r.functional_count(), 117u);
}

TEST(SparkRegistry, ExtensionParamsAreNotFunctional) {
  const Registry& r = spark_registry();
  EXPECT_GT(r.count(Category::kAdaptiveExtension), 0u);
  EXPECT_EQ(r.total_count(),
            r.functional_count() + r.count(Category::kAdaptiveExtension));
}

TEST(SparkRegistry, KeyParametersExist) {
  const Registry& r = spark_registry();
  EXPECT_NE(r.find("spark.executor.cores"), nullptr);
  EXPECT_NE(r.find("spark.default.parallelism"), nullptr);
  EXPECT_NE(r.find("saex.executor.policy"), nullptr);
  EXPECT_EQ(r.find("spark.not.a.real.key"), nullptr);
}

TEST(SparkRegistry, ByCategoryReturnsOnlyThatCategory) {
  const Registry& r = spark_registry();
  for (const ParamDef* def : r.by_category(Category::kShuffle)) {
    EXPECT_EQ(def->category, Category::kShuffle);
  }
  EXPECT_EQ(r.by_category(Category::kShuffle).size(), 19u);
}

TEST(ParseBytes, SuffixesAndBare) {
  EXPECT_EQ(parse_bytes("48m"), 48 * kMiB);
  EXPECT_EQ(parse_bytes("1g"), kGiB);
  EXPECT_EQ(parse_bytes("32k"), 32 * kKiB);
  EXPECT_EQ(parse_bytes("100"), 100);
  EXPECT_EQ(parse_bytes("2gb"), 2 * kGiB);
  EXPECT_THROW(parse_bytes("12q"), ConfigError);
}

TEST(ParseDuration, SuffixesAndBare) {
  EXPECT_DOUBLE_EQ(parse_duration_seconds("120s"), 120.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("100ms"), 0.1);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("30min"), 1800.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("1h"), 3600.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("5"), 5.0);
  EXPECT_THROW(parse_duration_seconds("3y"), ConfigError);
}

TEST(ParseBool, Variants) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("TRUE"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_THROW(parse_bool("maybe"), ConfigError);
}

TEST(Config, DefaultsComeFromRegistry) {
  Config c;
  EXPECT_EQ(c.get_int("spark.executor.cores"), 32);
  EXPECT_EQ(c.get_bytes("spark.reducer.maxSizeInFlight"), 48 * kMiB);
  EXPECT_TRUE(c.get_bool("spark.shuffle.compress"));
  EXPECT_DOUBLE_EQ(c.get_double("spark.memory.fraction"), 0.6);
  EXPECT_DOUBLE_EQ(c.get_duration_seconds("spark.network.timeout"), 120.0);
}

TEST(Config, OverridesApply) {
  Config c;
  c.set("spark.executor.cores", "8");
  EXPECT_EQ(c.get_int("spark.executor.cores"), 8);
  EXPECT_TRUE(c.is_set("spark.executor.cores"));
  EXPECT_FALSE(c.is_set("spark.default.parallelism"));
}

TEST(Config, TypedSetters) {
  Config c;
  c.set_int("saex.static.ioThreads", 4);
  c.set_bool("saex.dynamic.rollback", false);
  c.set_double("saex.dynamic.toleranceUpper", 1.25);
  EXPECT_EQ(c.get_int("saex.static.ioThreads"), 4);
  EXPECT_FALSE(c.get_bool("saex.dynamic.rollback"));
  EXPECT_DOUBLE_EQ(c.get_double("saex.dynamic.toleranceUpper"), 1.25);
}

TEST(Config, UnknownKeyThrows) {
  Config c;
  EXPECT_THROW(c.set("spark.bogus", "1"), ConfigError);
  EXPECT_THROW((void)c.get_string("spark.bogus"), ConfigError);
}

TEST(Config, TypeValidationAtSetTime) {
  Config c;
  EXPECT_THROW(c.set("spark.executor.cores", "not-a-number"), ConfigError);
  EXPECT_THROW(c.set("spark.shuffle.compress", "sometimes"), ConfigError);
  EXPECT_NO_THROW(c.set("spark.shuffle.file.buffer", "64k"));
}

TEST(Registry, DuplicateDefinitionThrows) {
  Registry r;
  r.define({"x", Category::kShuffle, ValueType::kInt, "1", ""});
  EXPECT_THROW(r.define({"x", Category::kNetwork, ValueType::kInt, "2", ""}),
               ConfigError);
}

TEST(Registry, EveryParamHasDocAndParseableDefault) {
  const Registry& r = spark_registry();
  for (const auto& [key, def] : r.all()) {
    EXPECT_FALSE(def.doc.empty()) << key;
    switch (def.type) {
      case ValueType::kBool: EXPECT_NO_THROW(parse_bool(def.default_value)) << key; break;
      case ValueType::kBytes: EXPECT_NO_THROW(parse_bytes(def.default_value)) << key; break;
      case ValueType::kDurationSeconds:
        EXPECT_NO_THROW(parse_duration_seconds(def.default_value)) << key;
        break;
      default: break;
    }
  }
}

}  // namespace
}  // namespace saex::conf
