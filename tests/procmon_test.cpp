#include <gtest/gtest.h>

#include "procmon/procfs.h"
#include "procmon/sampler.h"

namespace saex::procmon {
namespace {

constexpr const char* kProcStat =
    "cpu  10 2 5 100 7 1 1 0 0 0\n"
    "cpu0 5 1 2 50 4 0 0 0 0 0\n"
    "cpu1 5 1 3 50 3 1 1 0 0 0\n"
    "intr 12345\n";

TEST(ProcStat, ParsesAggregateLine) {
  const auto cpu = parse_proc_stat(kProcStat);
  ASSERT_TRUE(cpu.has_value());
  EXPECT_EQ(cpu->user, 10u);
  EXPECT_EQ(cpu->nice, 2u);
  EXPECT_EQ(cpu->system, 5u);
  EXPECT_EQ(cpu->idle, 100u);
  EXPECT_EQ(cpu->iowait, 7u);
  EXPECT_EQ(cpu->total(), 126u);
  EXPECT_EQ(cpu->busy(), 19u);
}

TEST(ProcStat, MissingAggregateReturnsNullopt) {
  EXPECT_FALSE(parse_proc_stat("cpu0 1 2 3 4\n").has_value());
  EXPECT_FALSE(parse_proc_stat("").has_value());
}

constexpr const char* kDiskstats =
    "   8       0 sda 1000 10 200000 500 2000 20 400000 900 0 1500 1400\n"
    "   8       1 sda1 900 9 190000 450 1900 19 390000 850 0 1400 1300\n"
    " 259       0 nvme0n1 500 0 100000 100 600 0 120000 200 2 300 350\n";

TEST(Diskstats, ParsesDevices) {
  const auto disks = parse_diskstats(kDiskstats);
  ASSERT_EQ(disks.size(), 3u);
  const DiskStats& sda = disks.at("sda");
  EXPECT_EQ(sda.reads_completed, 1000u);
  EXPECT_EQ(sda.sectors_read, 200000u);
  EXPECT_EQ(sda.bytes_read(), 200000u * 512);
  EXPECT_EQ(sda.writes_completed, 2000u);
  EXPECT_EQ(sda.bytes_written(), 400000u * 512);
  EXPECT_EQ(sda.io_ticks_ms, 1500u);
  EXPECT_EQ(sda.time_in_queue_ms, 1400u);
  EXPECT_EQ(disks.at("nvme0n1").io_in_progress, 2u);
}

TEST(Diskstats, IgnoresMalformedLines) {
  const auto disks = parse_diskstats("8 0 sda 1 2 3\nnot a line\n");
  EXPECT_TRUE(disks.empty());
}

constexpr const char* kProcIo =
    "rchar: 3000\n"
    "wchar: 2000\n"
    "syscr: 100\n"
    "syscw: 50\n"
    "read_bytes: 1024\n"
    "write_bytes: 512\n"
    "cancelled_write_bytes: 0\n";

TEST(ProcIo, ParsesCounters) {
  const auto io = parse_proc_io(kProcIo);
  ASSERT_TRUE(io.has_value());
  EXPECT_EQ(io->rchar, 3000u);
  EXPECT_EQ(io->wchar, 2000u);
  EXPECT_EQ(io->read_bytes, 1024u);
  EXPECT_EQ(io->write_bytes, 512u);
}

TEST(ProcIo, EmptyReturnsNullopt) {
  EXPECT_FALSE(parse_proc_io("").has_value());
  EXPECT_FALSE(parse_proc_io("nothing: here\n").has_value());
}

TEST(SamplerDelta, ComputesRatesAndFractions) {
  SystemSnapshot a, b;
  a.wall_seconds = 100.0;
  b.wall_seconds = 102.0;  // 2-second interval
  a.cpu = CpuTimes{10, 0, 10, 60, 20, 0, 0, 0};
  b.cpu = CpuTimes{40, 0, 20, 100, 40, 0, 0, 0};
  // delta: busy = (60-20)=40, iowait = 20, total = 100
  DiskStats da, db;
  da.sectors_read = 0;
  da.sectors_written = 0;
  da.io_ticks_ms = 0;
  db.sectors_read = 4096;        // 2 MiB
  db.sectors_written = 2048;     // 1 MiB
  db.io_ticks_ms = 1000;         // busy 1s of 2s
  a.disks["sda"] = da;
  b.disks["sda"] = db;

  const SystemDelta d = Sampler::delta(a, b);
  EXPECT_DOUBLE_EQ(d.interval_seconds, 2.0);
  EXPECT_NEAR(d.cpu_busy_fraction, 0.4, 1e-9);
  EXPECT_NEAR(d.cpu_iowait_fraction, 0.2, 1e-9);
  EXPECT_NEAR(d.disk_read_bps, 4096 * 512 / 2.0, 1e-6);
  EXPECT_NEAR(d.disk_write_bps, 2048 * 512 / 2.0, 1e-6);
  EXPECT_NEAR(d.disk_utilization, 0.5, 1e-9);
}

TEST(SamplerDelta, SkipsPartitionRows) {
  SystemSnapshot a, b;
  a.wall_seconds = 0;
  b.wall_seconds = 1;
  DiskStats zero, one;
  one.sectors_read = 1000;
  a.disks["sda"] = zero;
  b.disks["sda"] = one;
  a.disks["sda1"] = zero;
  b.disks["sda1"] = one;  // partition must not double-count
  const SystemDelta d = Sampler::delta(a, b);
  EXPECT_NEAR(d.disk_read_bps, 1000 * 512.0, 1e-6);
}

TEST(SamplerDelta, ZeroIntervalIsSafe) {
  SystemSnapshot a;
  const SystemDelta d = Sampler::delta(a, a);
  EXPECT_DOUBLE_EQ(d.interval_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.disk_read_bps, 0.0);
}

TEST(SamplerLive, ReadsRealProcWhenAvailable) {
  // On Linux /proc exists; this exercises the live path end-to-end.
  Sampler sampler("/proc");
  const SystemSnapshot snap = sampler.snapshot();
  EXPECT_GT(snap.cpu.total(), 0u);
  EXPECT_GT(snap.wall_seconds, 0.0);
}

TEST(ReadFile, MissingFileYieldsEmpty) {
  EXPECT_TRUE(read_file("/definitely/not/a/file").empty());
}

}  // namespace
}  // namespace saex::procmon

namespace saex::procmon {
namespace {

constexpr const char* kNetDev =
    "Inter-|   Receive                                                |  Transmit\n"
    " face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n"
    "    lo:  123456     789    0    0    0     0          0         0   123456     789    0    0    0     0       0          0\n"
    "  eth0: 99999999   55555    2    1    0     0          0         0  88888888   44444    3    4    0     0       0          0\n";

TEST(NetDev, ParsesInterfaces) {
  const auto ifs = parse_net_dev(kNetDev);
  ASSERT_EQ(ifs.size(), 2u);
  const NetDevStats& eth = ifs.at("eth0");
  EXPECT_EQ(eth.rx_bytes, 99999999u);
  EXPECT_EQ(eth.rx_packets, 55555u);
  EXPECT_EQ(eth.rx_errors, 2u);
  EXPECT_EQ(eth.rx_dropped, 1u);
  EXPECT_EQ(eth.tx_bytes, 88888888u);
  EXPECT_EQ(eth.tx_packets, 44444u);
  EXPECT_EQ(ifs.at("lo").rx_bytes, 123456u);
}

TEST(NetDev, IgnoresHeadersAndEmpty) {
  EXPECT_TRUE(parse_net_dev("").empty());
  EXPECT_TRUE(parse_net_dev("Inter-| Receive\n face |bytes\n").empty());
}

TEST(NetDev, ReadsLiveProcWhenAvailable) {
  const auto ifs = parse_net_dev(read_file("/proc/net/dev"));
  EXPECT_FALSE(ifs.empty());  // at least loopback on any Linux box
}

}  // namespace
}  // namespace saex::procmon
