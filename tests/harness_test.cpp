// saex::harness — ordered parallel runner. The load-bearing guarantee is
// that a parallel sweep is indistinguishable from the serial loop it
// replaced: results in submission order, reports bitwise-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include "harness/harness.h"
#include "workloads/workloads.h"

namespace saex::harness {
namespace {

TEST(Harness, ResolveJobsClampsToAtLeastOne) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_GE(resolve_jobs(0), 1);   // 0 → hardware concurrency
  EXPECT_GE(resolve_jobs(-3), 1);
}

TEST(Harness, ResultsComeBackInSubmissionOrder) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i) tasks.push_back([i] { return i * 7; });
    const std::vector<int> out = run_ordered(std::move(tasks), jobs);
    ASSERT_EQ(out.size(), 64u) << "jobs=" << jobs;
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * 7);
  }
}

TEST(Harness, AllTasksRunExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back([&calls] { return ++calls; });
  }
  const auto out = run_ordered(std::move(tasks), 4);
  EXPECT_EQ(calls.load(), 40);
  EXPECT_EQ(out.size(), 40u);
}

TEST(Harness, ExceptionFromTaskPropagates) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> int {
      if (i == 3) throw std::runtime_error("task 3 failed");
      return i;
    });
  }
  EXPECT_THROW(run_ordered(std::move(tasks), 4), std::runtime_error);
}

// ---- serial vs parallel determinism on real simulations --------------------

engine::JobReport run_one(int io_threads) {
  hw::ClusterSpec cs = hw::ClusterSpec::das5(2);
  cs.seed = 7;
  hw::Cluster cluster(cs);
  conf::Config config;
  config.set("saex.executor.policy", "static");
  config.set_int("saex.static.ioThreads", io_threads);
  return workloads::run(workloads::terasort(gib(4)), cluster,
                        std::move(config));
}

TEST(Harness, ParallelSweepBitwiseIdenticalToSerial) {
  const std::vector<int> thread_counts = {16, 8, 2};
  auto make_tasks = [&] {
    std::vector<std::function<engine::JobReport()>> tasks;
    for (const int t : thread_counts) {
      tasks.push_back([t] { return run_one(t); });
    }
    return tasks;
  };
  const auto serial = run_ordered(make_tasks(), 1);
  const auto par = run_ordered(make_tasks(), 3);
  ASSERT_EQ(serial.size(), par.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const engine::JobReport& a = serial[i];
    const engine::JobReport& b = par[i];
    // Exact (==) double comparisons on purpose: the same computation on
    // another thread must produce the very same bits.
    EXPECT_EQ(a.total_runtime, b.total_runtime) << "sweep point " << i;
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.total_disk_bytes, b.total_disk_bytes);
    ASSERT_EQ(a.stages.size(), b.stages.size());
    for (size_t s = 0; s < a.stages.size(); ++s) {
      EXPECT_EQ(a.stages[s].start_time, b.stages[s].start_time);
      EXPECT_EQ(a.stages[s].end_time, b.stages[s].end_time);
      EXPECT_EQ(a.stages[s].disk_read, b.stages[s].disk_read);
      EXPECT_EQ(a.stages[s].disk_written, b.stages[s].disk_written);
      EXPECT_EQ(a.stages[s].net_bytes, b.stages[s].net_bytes);
      EXPECT_EQ(a.stages[s].cpu_utilization, b.stages[s].cpu_utilization);
    }
    EXPECT_EQ(a.to_csv(), b.to_csv());
    EXPECT_EQ(a.render(), b.render());
  }
}

}  // namespace
}  // namespace saex::harness
