// Subsystem profiler: disabled scopes record nothing, enabled scopes
// attribute inclusive/exclusive time correctly, and turning the profiler on
// does not perturb simulation results (wall-clock only, no sim-time hooks).
#include <gtest/gtest.h>

#include <string>

#include "engine/context.h"
#include "prof/profiler.h"

namespace saex::prof {
namespace {

// The profiler is process-global; every test starts from a clean slate.
struct ProfilerFixture : ::testing::Test {
  void SetUp() override {
    Profiler::set_enabled(false);
    Profiler::reset();
  }
  void TearDown() override {
    Profiler::set_enabled(false);
    Profiler::reset();
  }
};

using Profiler_ = ProfilerFixture;

TEST_F(Profiler_, DisabledScopesRecordNothing) {
  ASSERT_FALSE(Profiler::enabled());
  for (int i = 0; i < 100; ++i) {
    SAEX_PROF_SCOPE(kDisk);
  }
  EXPECT_EQ(Profiler::total_calls(Subsystem::kDisk), 0u);
  EXPECT_TRUE(Profiler::report().empty());
}

TEST_F(Profiler_, EnabledScopesCountCalls) {
  Profiler::set_enabled(true);
  for (int i = 0; i < 7; ++i) {
    SAEX_PROF_SCOPE(kNetwork);
  }
  EXPECT_EQ(Profiler::total_calls(Subsystem::kNetwork), 7u);
  const std::string table = Profiler::report();
  EXPECT_NE(table.find("hw/network"), std::string::npos);
}

TEST_F(Profiler_, NestedScopesSplitExclusiveTime) {
  Profiler::set_enabled(true);
  {
    SAEX_PROF_SCOPE(kSim);
    {
      SAEX_PROF_SCOPE(kDisk);
      // Burn a little real time inside the child so the attribution is
      // observable even on coarse clocks.
      volatile double sink = 0;
      for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
    }
  }
  EXPECT_EQ(Profiler::total_calls(Subsystem::kSim), 1u);
  EXPECT_EQ(Profiler::total_calls(Subsystem::kDisk), 1u);
  // The child's time is charged to kDisk, not double-counted in kSim's
  // exclusive column.
  EXPECT_GT(Profiler::exclusive_ns(Subsystem::kDisk), 0u);
}

TEST_F(Profiler_, RecordAndResetRoundTrip) {
  Profiler::record(Subsystem::kOther, 1000, 600);
  Profiler::record(Subsystem::kOther, 500, 500, 3);
  EXPECT_EQ(Profiler::total_calls(Subsystem::kOther), 4u);
  EXPECT_EQ(Profiler::exclusive_ns(Subsystem::kOther), 1100u);
  EXPECT_NE(Profiler::report().find("other"), std::string::npos);
  Profiler::reset();
  EXPECT_EQ(Profiler::total_calls(Subsystem::kOther), 0u);
  EXPECT_TRUE(Profiler::report().empty());
}

TEST_F(Profiler_, SubsystemNamesCoverEnum) {
  for (int i = 0; i < static_cast<int>(Subsystem::kCount); ++i) {
    const char* name = subsystem_name(static_cast<Subsystem>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST_F(Profiler_, ReportJsonEmptyWithoutSamples) {
  EXPECT_EQ(Profiler::report_json(), "{\"subsystems\": []}\n");
}

TEST_F(Profiler_, ReportJsonListsRecordedSubsystems) {
  Profiler::record(Subsystem::kDisk, 2000, 1500, 3);
  Profiler::record(Subsystem::kNetwork, 500, 500, 1);
  const std::string json = Profiler::report_json();
  // Rows sorted by exclusive time, one object per active subsystem, with
  // the exact fields --profile-json consumers parse.
  EXPECT_NE(json.find("{\"name\": \"hw/disk\", \"calls\": 3, "
                      "\"inclusive_ns\": 2000, \"exclusive_ns\": 1500}"),
            std::string::npos);
  EXPECT_NE(json.find("\"hw/network\""), std::string::npos);
  EXPECT_LT(json.find("hw/disk"), json.find("hw/network"));
  EXPECT_EQ(json.find("sim\""), std::string::npos);  // no idle subsystems
}

// Profiling reads wall clocks only — enabling it must not change what the
// simulation computes.
TEST_F(Profiler_, EnablingDoesNotPerturbJobReports) {
  auto run_once = [] {
    hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
    spec.seed = 42;
    hw::Cluster cluster(spec);
    conf::Config config;
    config.set("spark.default.parallelism", "16");
    engine::SparkContext ctx(cluster, std::move(config));
    ctx.dfs().load_input("/in", gib(1), 4);
    const engine::Rdd out = ctx.text_file("/in")
                                .reduce_by_key("g", {0.02, 1.0}, 1.0)
                                .count();
    const engine::JobReport r = ctx.run_job(out, "prof-identity");
    return std::make_tuple(r.total_runtime, r.events_processed,
                           r.total_disk_bytes, r.stages.size());
  };
  const auto off = run_once();
  Profiler::set_enabled(true);
  const auto on = run_once();
  EXPECT_EQ(off, on);  // bitwise-identical runtime, events, bytes, stages
  // ...and the profiled run actually recorded the instrumented subsystems.
  EXPECT_GT(Profiler::total_calls(Subsystem::kSim), 0u);
  EXPECT_GT(Profiler::total_calls(Subsystem::kScheduler), 0u);
}

}  // namespace
}  // namespace saex::prof
