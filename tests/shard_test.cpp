// saex::shard: topology partitioning, router determinism, conservative
// time-window invariance, and the headline guarantee — an N-shard replay on
// any worker count merges to a report bitwise-identical to fewer workers,
// and a 1-shard replay is bitwise-identical to the serial JobServer path.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>

#include "common/format.h"
#include "serve/job_server.h"
#include "shard/router.h"
#include "shard/sharded_server.h"
#include "shard/sync.h"
#include "shard/topology.h"

namespace saex::shard {
namespace {

conf::Config shard_config(int shards, int workers,
                          const std::string& placement = "hash",
                          double window = 0.0) {
  conf::Config c;
  c.set("spark.default.parallelism", "64");
  c.set_int("saex.shard.count", shards);
  c.set_int("saex.shard.workers", workers);
  c.set("saex.shard.placement", placement);
  c.set("saex.shard.window", strfmt::format("{}", window));
  return c;
}

serve::TraceOptions small_trace(uint64_t seed = 7) {
  serve::TraceOptions t;
  t.num_jobs = 16;
  t.mean_interarrival = 1.0;
  t.num_clients = 8;
  t.seed = seed;
  t.small_input = mib(256);
  t.big_input = mib(512);
  t.dim_input = mib(128);
  return t;
}

hw::ClusterSpec spec_for(int nodes, uint64_t seed = 42) {
  hw::ClusterSpec s = hw::ClusterSpec::das5(nodes);
  s.seed = seed;
  return s;
}

// ---------- topology ----------

TEST(ShardTopology, PartitionsEvenlyWithRemainderUpFront) {
  const ShardTopology topo(10, 4);  // 3,3,2,2
  EXPECT_EQ(topo.shards(), 4);
  EXPECT_EQ(topo.shard_size(0), 3);
  EXPECT_EQ(topo.shard_size(1), 3);
  EXPECT_EQ(topo.shard_size(2), 2);
  EXPECT_EQ(topo.shard_size(3), 2);
  EXPECT_EQ(topo.shard_begin(2), 6);
  int total = 0;
  for (int s = 0; s < topo.shards(); ++s) total += topo.shard_size(s);
  EXPECT_EQ(total, 10);
}

TEST(ShardTopology, NodeMappingRoundTrips) {
  const ShardTopology topo(13, 5);
  for (int node = 0; node < 13; ++node) {
    const int s = topo.shard_of(node);
    const int local = topo.local_node(node);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 5);
    ASSERT_GE(local, 0);
    ASSERT_LT(local, topo.shard_size(s));
    EXPECT_EQ(topo.global_node(s, local), node);
  }
}

TEST(ShardTopology, RejectsBadCounts) {
  EXPECT_THROW(ShardTopology(4, 0), conf::ConfigError);
  EXPECT_THROW(ShardTopology(4, 5), conf::ConfigError);
}

TEST(ShardOptions, ParsesAndValidates) {
  const ShardOptions o = ShardOptions::from_config(shard_config(4, 2, "least"));
  EXPECT_EQ(o.count, 4);
  EXPECT_EQ(o.workers, 2);
  EXPECT_EQ(o.placement, "least");

  conf::Config bad = shard_config(0, 1);
  EXPECT_THROW(ShardOptions::from_config(bad), conf::ConfigError);
  bad = shard_config(2, 1, "random");
  EXPECT_THROW(ShardOptions::from_config(bad), conf::ConfigError);
}

// ---------- router ----------

TEST(JobRouter, HashPlacementIsDeterministicAndClientSticky) {
  const auto trace = serve::make_trace(small_trace());
  const JobRouter router(4, "hash", 99);
  const std::vector<int> a = router.route(trace);
  const std::vector<int> b = router.route(trace);
  EXPECT_EQ(a, b);  // pure function of (trace, shards, seed)

  std::map<std::string, int> client_shard;
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_GE(a[i], 0);
    ASSERT_LT(a[i], 4);
    const auto it = client_shard.find(trace[i].client);
    if (it == client_shard.end()) {
      client_shard.emplace(trace[i].client, a[i]);
    } else {
      EXPECT_EQ(it->second, a[i]) << "client affinity broken";
    }
  }
}

TEST(JobRouter, SeedChangesHashPlacement) {
  serve::TraceOptions t = small_trace();
  t.num_jobs = 64;
  t.num_clients = 64;
  const auto trace = serve::make_trace(t);
  const auto a = JobRouter(4, "hash", 1).route(trace);
  const auto b = JobRouter(4, "hash", 2).route(trace);
  EXPECT_NE(a, b);
}

TEST(JobRouter, LeastLoadedBalancesEstimatedCost) {
  serve::TraceOptions t = small_trace();
  t.num_jobs = 40;
  const auto trace = serve::make_trace(t);
  const auto placement = JobRouter(4, "least", 0).route(trace);
  std::vector<double> load(4, 0.0);
  for (size_t i = 0; i < trace.size(); ++i) {
    load[static_cast<size_t>(placement[i])] +=
        JobRouter::workload_cost(trace[i].workload);
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  // Greedy placement keeps the spread below one max-cost job.
  EXPECT_LE(*hi - *lo, JobRouter::workload_cost("join"));
}

TEST(JobRouter, RoundRobinCyclesByJobId) {
  const auto trace = serve::make_trace(small_trace());
  const auto placement = JobRouter(3, "rr", 0).route(trace);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(placement[i], trace[i].id % 3);
  }
}

TEST(JobRouter, RejectsUnknownPolicy) {
  EXPECT_THROW(JobRouter(2, "banana", 0), conf::ConfigError);
}

// ---------- time-window runner ----------

TEST(TimeWindowRunner, DrainsIndependentKernels) {
  sim::Simulation a, b;
  std::vector<double> fired;
  a.schedule_at(1.0, [&] { fired.push_back(1.0); });
  a.schedule_at(5.0, [&] { fired.push_back(5.0); });
  b.schedule_at(2.0, [&] { fired.push_back(2.0); });

  TimeWindowRunner::Options opts;  // unbounded lookahead
  const auto result = TimeWindowRunner::run({&a, &b}, opts);
  EXPECT_EQ(result.windows, 1);
  EXPECT_EQ(result.events, 3u);
  EXPECT_EQ(a.next_time(), std::numeric_limits<double>::infinity());
}

TEST(TimeWindowRunner, FiniteLookaheadTakesMultipleWindows) {
  sim::Simulation a, b;
  int count = 0;
  for (double t : {0.5, 3.0, 9.0}) a.schedule_at(t, [&] { ++count; });
  b.schedule_at(6.0, [&] { ++count; });

  TimeWindowRunner::Options opts;
  opts.lookahead = 1.0;
  const auto result = TimeWindowRunner::run({&a, &b}, opts);
  EXPECT_EQ(count, 4);
  EXPECT_GE(result.windows, 3);  // 0.5 / 3.0 / 6.0 / 9.0 clusters
}

// ---------- sharded replay: the determinism guarantees ----------

std::string sharded_render(int nodes, int shards, int workers,
                           const serve::TraceOptions& t, double window = 0.0,
                           int kill_node = -1, double kill_time = -1.0) {
  conf::Config config = shard_config(shards, workers, "hash", window);
  if (kill_node >= 0) {
    config.set_bool("saex.fault.enabled", true);
    config.set_int("saex.fault.killNode", kill_node);
    config.set_double("saex.fault.killTime", kill_time);
  }
  ShardedServer server(spec_for(nodes), config);
  const ShardedServeReport report =
      server.replay(serve::make_trace(t), t);
  // Merged render only: the footer prints the worker count, which is
  // execution detail, not scenario semantics.
  return report.merged.render() + "\n" + report.render_jobs();
}

TEST(ShardedServer, OneShardMatchesSerialJobServerBitwise) {
  const serve::TraceOptions t = small_trace();

  conf::Config serial_config;
  serial_config.set("spark.default.parallelism", "64");
  hw::ClusterSpec spec = spec_for(8);
  hw::Cluster cluster(spec);
  engine::SparkContext ctx(cluster, serial_config);
  serve::JobServer server(ctx);
  const serve::ServeReport serial = server.replay(serve::make_trace(t), t);

  const std::string sharded = sharded_render(8, 1, 1, t);
  EXPECT_EQ(sharded, serial.render() + "\n" + serial.render_jobs());
}

TEST(ShardedServer, WorkerCountDoesNotChangeTheMergedReport) {
  const serve::TraceOptions t = small_trace(11);
  const std::string serial = sharded_render(8, 4, 1, t);
  const std::string parallel = sharded_render(8, 4, 4, t);
  EXPECT_EQ(serial, parallel);
}

TEST(ShardedServer, WindowSizeDoesNotChangeTheMergedReport) {
  const serve::TraceOptions t = small_trace(13);
  const std::string unbounded = sharded_render(8, 2, 2, t);
  const std::string windowed = sharded_render(8, 2, 2, t, /*window=*/0.25);
  EXPECT_EQ(unbounded, windowed);
}

TEST(ShardedServer, KillNodeFaultIsIdenticalAcrossWorkerCounts) {
  const serve::TraceOptions t = small_trace(17);
  // Global node 5 lives on shard 1 of a 2x4 split; the fault must land there
  // and only there, independent of worker count.
  const std::string serial =
      sharded_render(8, 2, 1, t, 0.0, /*kill_node=*/5, /*kill_time=*/4.0);
  const std::string parallel =
      sharded_render(8, 2, 2, t, 0.0, /*kill_node=*/5, /*kill_time=*/4.0);
  EXPECT_EQ(serial, parallel);
}

TEST(ShardedServer, KillNodeLandsOnOwningShardOnly) {
  const serve::TraceOptions t = small_trace(17);
  conf::Config config = shard_config(2, 1);
  config.set_bool("saex.fault.enabled", true);
  config.set_int("saex.fault.killNode", 5);
  config.set_double("saex.fault.killTime", 4.0);
  ShardedServer server(spec_for(8), config);
  const ShardedServeReport report = server.replay(serve::make_trace(t), t);
  EXPECT_EQ(report.shards[0].executors_lost, 0);
  EXPECT_EQ(report.shards[1].executors_lost, 1);
  EXPECT_EQ(report.merged.executors_lost, 1);
}

TEST(ShardedServer, RoutesEveryJobAndMergesAllRecords) {
  const serve::TraceOptions t = small_trace(19);
  ShardedServer server(spec_for(9), shard_config(3, 2));
  const auto trace = serve::make_trace(t);
  const ShardedServeReport report = server.replay(trace, t);

  ASSERT_EQ(report.placement.size(), trace.size());
  ASSERT_EQ(report.merged.jobs.size(), trace.size());
  int routed = 0;
  for (const ShardStats& s : report.stats) routed += s.jobs;
  EXPECT_EQ(routed, static_cast<int>(trace.size()));
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(report.merged.jobs[i].submission_id, static_cast<int>(i));
    // Merged record really is the routed shard's job, not a mixup: the name
    // embeds the global trace id.
    EXPECT_EQ(report.merged.jobs[i].name,
              strfmt::format("{}#{}", trace[i].workload, trace[i].id));
  }
  EXPECT_EQ(report.merged.finished, static_cast<int>(trace.size()));
}

TEST(ShardedServer, RejectsMoreShardsThanNodes) {
  EXPECT_THROW(ShardedServer(spec_for(2), shard_config(4, 1)),
               conf::ConfigError);
}

}  // namespace
}  // namespace saex::shard
