// Logical plan construction and DAG scheduling (stage splitting, I/O
// tagging, size propagation).
#include <gtest/gtest.h>

#include "dfs/dfs.h"
#include "engine/dag_scheduler.h"
#include "engine/plan.h"
#include "hw/cluster.h"

namespace saex::engine {
namespace {

class DagTest : public ::testing::Test {
 protected:
  DagTest()
      : cluster_(hw::ClusterSpec::das5(4)),
        dfs_(cluster_, {}),
        dag_(dfs_, /*default_parallelism=*/128) {
    dfs_.load_input("/in", gib(2), 4);          // 16 blocks
    dfs_.load_input("/in2", mib(512), 4);       // 4 blocks
  }

  hw::Cluster cluster_;
  dfs::Dfs dfs_;
  DagScheduler dag_;
  PlanBuilder plans_;
};

TEST_F(DagTest, PlanNodesHaveUniqueIdsAndParents) {
  const Rdd a = plans_.text_file("/in");
  const Rdd b = a.map("m", {0.1, 0.5});
  const Rdd c = b.filter("f", 0.5);
  EXPECT_NE(a.node()->id, b.node()->id);
  EXPECT_EQ(b.node()->parents.front(), a.node());
  EXPECT_EQ(c.node()->kind, OpKind::kNarrow);
  EXPECT_DOUBLE_EQ(c.node()->cost.output_ratio, 0.5);
}

TEST_F(DagTest, SingleStageScan) {
  const Rdd out = plans_.text_file("/in")
                      .map("project", {0.1, 1.2})
                      .save_as_text_file("/out", 2);
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 1u);
  const Stage& s = plan.stages[0];
  EXPECT_EQ(s.source, StageSource::kDfs);
  EXPECT_EQ(s.sink, StageSink::kDfsWrite);
  EXPECT_TRUE(s.io_tagged);
  EXPECT_EQ(s.num_tasks, 16);
  EXPECT_EQ(s.input_bytes, gib(2));
  EXPECT_DOUBLE_EQ(s.output_ratio, 1.2);
  EXPECT_EQ(s.out_replication, 2);
}

TEST_F(DagTest, ShuffleSplitsIntoTwoStages) {
  const Rdd out = plans_.text_file("/in")
                      .map("parse", {0.1, 0.5})
                      .reduce_by_key("group", {0.05, 1.0}, 0.8)
                      .save_as_text_file("/out");
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 2u);

  const Stage& map_stage = plan.stages[0];
  EXPECT_EQ(map_stage.sink, StageSink::kShuffleWrite);
  EXPECT_TRUE(map_stage.io_tagged);  // reads the DFS
  // parse halves the data, shuffle keeps 80% of that.
  EXPECT_NEAR(map_stage.output_ratio, 0.4, 1e-9);

  const Stage& reduce_stage = plan.stages[1];
  EXPECT_EQ(reduce_stage.source, StageSource::kShuffle);
  EXPECT_TRUE(reduce_stage.io_tagged);  // writes the DFS
  EXPECT_EQ(reduce_stage.num_tasks, 128);  // default parallelism
  EXPECT_EQ(reduce_stage.input_bytes, map_stage.output_bytes());
  EXPECT_EQ(reduce_stage.parent_uids.size(), 1u);
  EXPECT_EQ(reduce_stage.parent_uids[0], map_stage.uid);
}

TEST_F(DagTest, ShuffleOnlyStagesAreNotIoTagged) {
  // Paper §4 L2: shuffle stages do not express I/O.
  const Rdd out = plans_.text_file("/in")
                      .reduce_by_key("s1", {0.0, 1.0}, 1.0)
                      .reduce_by_key("s2", {0.0, 1.0}, 1.0)
                      .save_as_text_file("/out");
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_TRUE(plan.stages[0].io_tagged);   // read
  EXPECT_FALSE(plan.stages[1].io_tagged);  // pure shuffle
  EXPECT_TRUE(plan.stages[2].io_tagged);   // write
}

TEST_F(DagTest, ExplicitPartitionCountHonored) {
  const Rdd out = plans_.text_file("/in")
                      .reduce_by_key("g", {0.0, 1.0}, 1.0, 48)
                      .collect();
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[1].num_tasks, 48);
}

TEST_F(DagTest, CollectProducesNoOutputBytes) {
  const Rdd out = plans_.text_file("/in").map("m", {0.1, 1.0}).count();
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].sink, StageSink::kDriver);
  EXPECT_EQ(plan.stages[0].output_bytes(), 0);
}

TEST_F(DagTest, JoinMaterializesBothParents) {
  const Rdd a = plans_.text_file("/in").map("sa", {0.1, 0.2});
  const Rdd b = plans_.text_file("/in2").map("sb", {0.1, 0.5});
  const Rdd out = a.join(b, "j", {0.1, 1.0}, 0.6).save_as_text_file("/out");
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 3u);
  // Two scan stages shuffle-write, the join stage consumes both.
  EXPECT_EQ(plan.stages[0].sink, StageSink::kShuffleWrite);
  EXPECT_EQ(plan.stages[1].sink, StageSink::kShuffleWrite);
  const Stage& join_stage = plan.stages[2];
  EXPECT_EQ(join_stage.in_shuffle_ids.size(), 2u);
  const Bytes expected = plan.stages[0].output_bytes() +
                         plan.stages[1].output_bytes();
  EXPECT_EQ(join_stage.input_bytes, expected);
  EXPECT_NEAR(join_stage.output_ratio, 0.6, 1e-9);
}

TEST_F(DagTest, ShuffleTraitsReachConsumerStage) {
  const Rdd out = plans_.text_file("/in")
                      .reduce_by_key("g", {0.0, 1.0}, 1.0, 0,
                                     ShuffleTraits{0.7, 2.5})
                      .collect();
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.stages[0].spill_fraction, 0.0);  // producer side
  EXPECT_DOUBLE_EQ(plan.stages[1].spill_fraction, 0.7);
  EXPECT_DOUBLE_EQ(plan.stages[1].scatter, 2.5);
}

TEST_F(DagTest, SortByKeyHasNoSpill) {
  const Rdd out = plans_.text_file("/in")
                      .sort_by_key("sort", {0.01, 1.0})
                      .save_as_text_file("/out");
  const JobPlan plan = dag_.build(out);
  EXPECT_DOUBLE_EQ(plan.stages[1].spill_fraction, 0.0);
}

TEST_F(DagTest, CacheMaterializedOnceThenReused) {
  const Rdd cached = plans_.text_file("/in").map("parse", {0.1, 0.5}).cache();
  const Rdd out = cached.map("use1", {0.1, 0.001})
                      .reduce_by_key("agg", {0.0, 1.0}, 1.0)
                      .collect();
  const JobPlan plan = dag_.build(out);
  // Stage 0 reads DFS and caches; its cache output is registered.
  ASSERT_GE(plan.stages.size(), 2u);
  EXPECT_GE(plan.stages[0].cache_out_id, 0);
  EXPECT_NEAR(plan.stages[0].cache_ratio, 0.5, 1e-9);

  // A second job over the same DAG scheduler reuses the cache.
  const Rdd out2 = cached.map("use2", {0.1, 0.001})
                       .reduce_by_key("agg2", {0.0, 1.0}, 1.0)
                       .collect();
  const JobPlan plan2 = dag_.build(out2);
  ASSERT_FALSE(plan2.stages.empty());
  EXPECT_EQ(plan2.stages[0].source, StageSource::kCached);
  EXPECT_EQ(plan2.stages[0].in_cache_id, plan.stages[0].cache_out_id);
}

TEST_F(DagTest, CpuCostAggregatesAlongChain) {
  // 1 MiB input: op1 costs 0.2/MiB at ratio 1 -> op2 sees all bytes at
  // 0.4/MiB but only half ratio -> total 0.2 + 0.4 = 0.6 per input MiB...
  const Rdd out = plans_.text_file("/in")
                      .map("op1", {0.2, 1.0})
                      .map("op2", {0.4, 0.5})
                      .map("op3", {0.8, 1.0})  // sees 50% of input
                      .collect();
  const JobPlan plan = dag_.build(out);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_NEAR(plan.stages[0].cpu_seconds_per_input_mib, 0.2 + 0.4 + 0.8 * 0.5,
              1e-9);
}

TEST_F(DagTest, MissingInputThrows) {
  const Rdd out = plans_.text_file("/does-not-exist").collect();
  EXPECT_THROW((void)dag_.build(out), std::runtime_error);
}

TEST_F(DagTest, EmptyPlanThrows) {
  EXPECT_THROW((void)dag_.build(Rdd{}), std::runtime_error);
}

TEST_F(DagTest, OrdinalsFollowExecutionOrder) {
  const Rdd out = plans_.text_file("/in")
                      .reduce_by_key("g", {0.0, 1.0}, 1.0)
                      .save_as_text_file("/out");
  const JobPlan plan = dag_.build(out);
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    EXPECT_EQ(plan.stages[i].ordinal, static_cast<int>(i));
    for (const int parent : plan.stages[i].parent_uids) {
      const Stage* p = plan.stage_by_uid(parent);
      ASSERT_NE(p, nullptr);
      EXPECT_LT(p->ordinal, plan.stages[i].ordinal);
    }
  }
}

}  // namespace
}  // namespace saex::engine
