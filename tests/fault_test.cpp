// saex::fault — failure injection and recovery: seeded kill replay,
// lineage resubmission of lost shuffle partitions, typed aborts for
// unrecoverable cached data, first-commit-wins shuffle registration, and
// the multi-tenant server surviving an executor loss.
#include <gtest/gtest.h>

#include <string>

#include "common/format.h"
#include "engine/context.h"
#include "fault/fault.h"
#include "serve/job_server.h"
#include "serve/trace.h"

namespace saex {
namespace {

using engine::EventKind;
using engine::JobReport;
using engine::SparkContext;
using engine::StageAbortedError;

conf::Config base_config() {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  return c;
}

// ---------- configuration ----------

TEST(FaultSpec, ReadsEveryKey) {
  conf::Config c;
  c.set_bool("saex.fault.enabled", true);
  c.set_int("saex.fault.seed", 99);
  c.set_int("saex.fault.killNode", 2);
  c.set("saex.fault.killTime", "45s");
  c.set_int("saex.fault.killAfterTasks", 500);
  c.set_int("saex.fault.slowNode", 1);
  c.set_double("saex.fault.slowFactor", 0.4);
  c.set("saex.fault.slowTime", "10s");
  c.set_double("saex.fault.fetchFailProb", 0.02);

  const fault::FaultSpec spec = fault::FaultSpec::from_config(c);
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.kill_node, 2);
  EXPECT_DOUBLE_EQ(spec.kill_time, 45.0);
  EXPECT_EQ(spec.kill_after_tasks, 500);
  EXPECT_EQ(spec.slow_node, 1);
  EXPECT_DOUBLE_EQ(spec.slow_factor, 0.4);
  EXPECT_DOUBLE_EQ(spec.slow_time, 10.0);
  EXPECT_DOUBLE_EQ(spec.fetch_fail_prob, 0.02);
}

TEST(FaultSpec, DisabledIsInert) {
  const fault::FaultSpec spec = fault::FaultSpec::from_config(conf::Config{});
  EXPECT_FALSE(spec.enabled);
  EXPECT_EQ(spec.kill_node, -1);
  EXPECT_DOUBLE_EQ(spec.fetch_fail_prob, 0.0);
}

TEST(FaultState, TracksDeadNodesAndDrawsDeterministically) {
  fault::FaultState a(4, 42, 0.5);
  fault::FaultState b(4, 42, 0.5);
  EXPECT_TRUE(a.node_alive(2));
  EXPECT_TRUE(a.node_alive(-1));   // out of range: treated as alive
  EXPECT_TRUE(a.node_alive(100));
  a.mark_dead(2);
  EXPECT_FALSE(a.node_alive(2));
  EXPECT_EQ(a.dead_executors(), 1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.drop_fetch(0, 1), b.drop_fetch(0, 1));
  }
  EXPECT_GT(a.fetch_drops(), 0);
}

// ---------- lineage recovery ----------

conf::Config kill_config(int node, int64_t after_tasks) {
  conf::Config c = base_config();
  c.set_bool("saex.fault.enabled", true);
  c.set_int("saex.fault.killNode", node);
  c.set_int("saex.fault.killAfterTasks", after_tasks);
  return c;
}

// Two-stage shuffle job; the kill fires after the map stage committed its
// outputs, so reduce tasks hit dead-node fetches and lineage recovery must
// recompute the lost map partitions.
JobReport run_shuffle_with_kill(SparkContext& ctx) {
  ctx.dfs().load_input("/in", gib(2), 4);
  return ctx.run_job(
      ctx.text_file("/in").reduce_by_key("g", {0.01, 1.0}, 1.0).count(),
      "killed");
}

TEST(LineageRecovery, ExecutorKillResubmitsLostMapPartitions) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  // 2 GiB / 128 MiB = 16 map tasks; fire after 18 finished attempts — the
  // reduce stage is underway with map outputs registered on every node.
  SparkContext ctx(cluster, kill_config(1, 18));
  const JobReport report = run_shuffle_with_kill(ctx);

  EXPECT_EQ(ctx.event_log().of_kind(EventKind::kExecutorLost).size(), 1u);
  EXPECT_GE(ctx.event_log().of_kind(EventKind::kStageResubmitted).size(), 1u);
  EXPECT_GT(report.total_runtime, 0.0);
  EXPECT_EQ(ctx.recovering_shuffles(), 0);  // recovery drained before finish

  // Recovery recomputed exactly the lost partitions: the registered shuffle
  // output matches a fault-free run of the same job byte for byte.
  hw::Cluster clean_cluster(hw::ClusterSpec::das5(4));
  SparkContext clean(clean_cluster, base_config());
  (void)run_shuffle_with_kill(clean);
  EXPECT_EQ(ctx.shuffles().total_output(0), clean.shuffles().total_output(0));
  for (int p = 0; p < 16; ++p) {
    EXPECT_TRUE(ctx.shuffles().partition_committed(0, p)) << "partition " << p;
  }
}

TEST(LineageRecovery, KillReplaysBitwiseIdentically) {
  auto run = [](std::string* event_log) {
    hw::Cluster cluster(hw::ClusterSpec::das5(4));
    SparkContext ctx(cluster, kill_config(1, 18));
    const JobReport report = run_shuffle_with_kill(ctx);
    *event_log = ctx.event_log().to_json_lines();
    return report.total_runtime;
  };
  std::string log_a, log_b;
  const double time_a = run(&log_a);
  const double time_b = run(&log_b);
  EXPECT_DOUBLE_EQ(time_a, time_b);
  EXPECT_EQ(log_a, log_b);  // full event stream, bit for bit
}

TEST(LineageRecovery, DeadExecutorReceivesNoFurtherTasks) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  SparkContext ctx(cluster, kill_config(2, 18));
  (void)run_shuffle_with_kill(ctx);

  const auto lost = ctx.event_log().of_kind(EventKind::kExecutorLost);
  ASSERT_EQ(lost.size(), 1u);
  const double kill_time = lost[0].time;
  for (const engine::Event& e :
       ctx.event_log().of_kind(EventKind::kTaskStart)) {
    if (e.node == 2) {
      EXPECT_LT(e.time, kill_time);
    }
  }
  EXPECT_FALSE(ctx.executor(2).alive());
  EXPECT_TRUE(ctx.scheduler().executor_dead(2));
  // A dynamic-allocation style reactivation attempt must be ignored.
  ctx.scheduler().set_executor_active(2, true);
  EXPECT_FALSE(ctx.scheduler().executor_active(2));
}

TEST(LineageRecovery, ExecutorLostAttemptsAreFreeRetries) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  // maxFailures 1: any *charged* failure would abort the stage, so the job
  // only survives the kill if in-flight attempts retry for free.
  conf::Config c = kill_config(1, 10);  // mid map stage
  c.set_int("spark.task.maxFailures", 1);
  SparkContext ctx(cluster, c);
  const JobReport report = run_shuffle_with_kill(ctx);
  EXPECT_GT(ctx.scheduler().executor_lost_failures(), 0);
  EXPECT_GT(report.total_runtime, 0.0);
}

TEST(LineageRecovery, CachedDataLossAbortsWithTypedError) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config c = base_config();
  c.set("spark.locality.wait", "0s");
  SparkContext ctx(cluster, c);
  ctx.dfs().load_input("/in", gib(2), 4);
  const engine::Rdd cached =
      ctx.text_file("/in").map("m", {0.01, 1.0}).cache();
  (void)ctx.run_job(cached.count(), "warmup");  // materialize the cache

  ctx.kill_executor(1);  // its cached partitions are gone, no lineage here
  try {
    (void)ctx.run_job(cached.count(), "doomed");
    FAIL() << "expected StageAbortedError";
  } catch (const StageAbortedError& e) {
    EXPECT_GE(e.stage_ordinal(), 0);
  }
}

TEST(LineageRecovery, OutOfRangeKillTargetIsIgnored) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  SparkContext ctx(cluster, base_config());
  ctx.dfs().load_input("/in", gib(1), 4);
  ctx.kill_executor(9);   // cluster has nodes 0..3
  ctx.kill_executor(-1);
  EXPECT_EQ(ctx.scheduler().dead_executor_count(), 0);
  EXPECT_EQ(ctx.event_log().of_kind(EventKind::kExecutorLost).size(), 0u);
  const JobReport r = ctx.run_job(
      ctx.text_file("/in").map("m", {0.01, 1.0}).count(), "unharmed");
  EXPECT_GT(r.total_runtime, 0.0);
}

// ---------- first-commit-wins shuffle registration ----------

TEST(ShuffleCommits, FirstCommitWinsAndDuplicatesAreCounted) {
  engine::ShuffleManager sm(4);
  EXPECT_TRUE(sm.register_map_output(0, /*node=*/0, /*partition=*/5, 100));
  // A losing speculative copy of partition 5 lands later from another node.
  EXPECT_FALSE(sm.register_map_output(0, /*node=*/3, /*partition=*/5, 100));
  EXPECT_EQ(sm.duplicate_commits(), 1);
  EXPECT_EQ(sm.total_output(0), 100);
  EXPECT_EQ(sm.node_output(0, 0), 100);
  EXPECT_EQ(sm.node_output(0, 3), 0);
  EXPECT_TRUE(sm.partition_committed(0, 5));
}

TEST(ShuffleCommits, NodeLossReturnsExactlyTheLostPartitions) {
  engine::ShuffleManager sm(4);
  sm.register_map_output(0, 0, 0, 100);
  sm.register_map_output(0, 1, 1, 200);
  sm.register_map_output(0, 1, 2, 300);
  sm.register_map_output(1, 1, 0, 50);
  const auto lost = sm.on_node_lost(1);
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(lost.at(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(lost.at(1), (std::vector<int>{0}));
  EXPECT_EQ(sm.total_output(0), 100);  // node 0's commit survives
  EXPECT_EQ(sm.node_output(0, 1), 0);
  EXPECT_FALSE(sm.partition_committed(0, 2));
  // Recomputation re-commits the partition on a healthy node.
  EXPECT_TRUE(sm.register_map_output(0, 2, 2, 300));
  EXPECT_EQ(sm.total_output(0), 400);
}

TEST(ShuffleCommits, SpeculationNeverDoubleCountsMapOutput) {
  auto shuffle_bytes = [](bool speculation) {
    hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
    spec.seed = 1234;
    spec.slow_disk_prob = 0.25;  // a straggler node provokes duplicates
    spec.slow_disk_factor = 0.25;
    hw::Cluster cluster(spec);
    conf::Config c;
    c.set("spark.default.parallelism", "16");
    c.set_bool("spark.speculation", speculation);
    c.set_double("spark.speculation.multiplier", 1.2);
    c.set_double("spark.speculation.quantile", 0.5);
    SparkContext ctx(cluster, c);
    ctx.dfs().load_input("/in", gib(4), 4);
    (void)ctx.run_job(
        ctx.text_file("/in").sort_by_key("s", {0.005, 1.0}).count(), "spec");
    return ctx.shuffles().total_output(0);
  };
  // Map-side bytes are a pure function of the input: speculative duplicate
  // attempts must not inflate the registered shuffle output.
  EXPECT_EQ(shuffle_bytes(true), shuffle_bytes(false));
}

// ---------- straggler injection ----------

TEST(SlowNode, DegradedDiskSlowsTheJobAndLogsTheEvent) {
  auto run = [](bool degrade) {
    hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
    spec.disk_sigma = 0.0;
    spec.slow_disk_prob = 0.0;
    hw::Cluster cluster(spec);
    conf::Config c;
    c.set("spark.default.parallelism", "16");
    if (degrade) {
      c.set_bool("saex.fault.enabled", true);
      c.set_int("saex.fault.slowNode", 1);
      c.set_double("saex.fault.slowFactor", 0.2);
      c.set("saex.fault.slowTime", "5s");
    }
    SparkContext ctx(cluster, c);
    ctx.dfs().load_input("/in", gib(4), 4);
    const JobReport r =
        ctx.run_job(ctx.text_file("/in").save_as_text_file("/out"), "x");
    const size_t events =
        ctx.event_log().of_kind(EventKind::kDiskDegraded).size();
    return std::make_pair(r.total_runtime, events);
  };
  const auto [slow_time, slow_events] = run(true);
  const auto [fast_time, fast_events] = run(false);
  EXPECT_EQ(slow_events, 1u);
  EXPECT_EQ(fast_events, 0u);
  EXPECT_GT(slow_time, fast_time);
}

// ---------- the multi-tenant server under faults ----------

TEST(ServeFaults, ServerSurvivesAnExecutorKill) {
  hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
  spec.seed = 42;
  hw::Cluster cluster(spec);
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  c.set_bool("saex.fault.enabled", true);
  c.set_int("saex.fault.killNode", 3);
  c.set("saex.fault.killTime", "20s");
  SparkContext ctx(cluster, c);
  serve::JobServer server(ctx);

  serve::TraceOptions trace;
  trace.num_jobs = 8;
  trace.mean_interarrival = 2.0;
  trace.seed = 7;
  trace.small_input = mib(256);
  trace.big_input = mib(512);
  trace.dim_input = mib(128);
  const serve::ServeReport report =
      server.replay(serve::make_trace(trace), trace);

  EXPECT_EQ(report.executors_lost, 1);
  EXPECT_EQ(report.finished, report.started);  // every admitted job drained
  EXPECT_EQ(report.failed, 0);  // shuffle losses are all recoverable
  EXPECT_EQ(ctx.event_log().of_kind(EventKind::kExecutorLost).size(), 1u);
  EXPECT_EQ(server.metrics().gauge("serve/fault/dead_executors").value(), 1.0);
}

}  // namespace
}  // namespace saex
