#include <gtest/gtest.h>

#include <cstdio>

#include "engine/context.h"
#include "engine/event_log.h"

namespace saex::engine {
namespace {

TEST(EventLog, RecordsAndFiltersByKind) {
  EventLog log;
  log.record(Event{EventKind::kJobStart, 0.0, 1, -1, -1, -1, 0, "app"});
  log.record(Event{EventKind::kTaskStart, 0.5, 1, 0, 3, 2, 128, ""});
  log.record(Event{EventKind::kTaskEnd, 1.5, 1, 0, 3, 2, 128, ""});
  log.record(Event{EventKind::kJobEnd, 2.0, 1, -1, -1, -1, 0, "app"});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.of_kind(EventKind::kTaskStart).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kPoolResize).size(), 0u);
}

TEST(EventLog, JsonLinesAreOnePerEvent) {
  EventLog log;
  log.record(Event{EventKind::kStageStart, 1.25, 0, 2, -1, -1, 16, "map"});
  log.record(Event{EventKind::kPoolResize, 2.5, -1, -1, -1, 3, 8, ""});
  const std::string json = log.to_json_lines();
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 2);
  EXPECT_NE(json.find(R"("event":"StageStart")"), std::string::npos);
  EXPECT_NE(json.find(R"("value":8)"), std::string::npos);
  EXPECT_NE(json.find(R"("label":"map")"), std::string::npos);
}

TEST(EventLog, JsonEscapesLabels) {
  EventLog log;
  log.record(Event{EventKind::kStageStart, 0, 0, 0, -1, -1, 0,
                   "weird \"name\"\nwith\tstuff"});
  const std::string json = log.to_json_lines();
  EXPECT_NE(json.find(R"(weird \"name\"\nwith\tstuff)"), std::string::npos);
}

TEST(EventLog, ChromeTracePairsTasksAndEmitsCounters) {
  EventLog log;
  log.record(Event{EventKind::kTaskStart, 1.0, 0, 0, 7, 2, 0, ""});
  log.record(Event{EventKind::kPoolResize, 1.5, -1, -1, -1, 2, 4, ""});
  log.record(Event{EventKind::kTaskEnd, 3.0, 0, 0, 7, 2, 0, ""});
  const std::string trace = log.to_chrome_trace();
  EXPECT_EQ(trace.front(), '[');
  // 2-second task -> dur 2000000 us.
  EXPECT_NE(trace.find(R"("dur":2000000.0)"), std::string::npos);
  EXPECT_NE(trace.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(trace.find(R"("name":"s0-p7")"), std::string::npos);
}

TEST(EventLog, WriteFileRoundTrips) {
  EventLog log;
  log.record(Event{EventKind::kJobStart, 0.0, 0, -1, -1, -1, 0, "x"});
  const std::string path = "/tmp/saex-eventlog-test.json";
  ASSERT_TRUE(EventLog::write_file(path, log.to_json_lines()));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(n, 10u);
  EXPECT_NE(std::string(buf).find("JobStart"), std::string::npos);
}

TEST(EventLog, EngineProducesACoherentLog) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  conf::Config config;
  config.set("spark.default.parallelism", "8");
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", mib(512), 2);
  (void)ctx.run_job(ctx.text_file("/in")
                        .reduce_by_key("g", {0.01, 1.0}, 1.0)
                        .count(),
                    "logged");

  const EventLog& log = ctx.event_log();
  EXPECT_EQ(log.of_kind(EventKind::kJobStart).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kJobEnd).size(), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kStageStart).size(), 2u);
  EXPECT_EQ(log.of_kind(EventKind::kStageEnd).size(), 2u);
  // 4 map tasks (512 MiB / 128 MiB blocks) + 8 reduce tasks.
  EXPECT_EQ(log.of_kind(EventKind::kTaskStart).size(), 12u);
  EXPECT_EQ(log.of_kind(EventKind::kTaskEnd).size(), 12u);
  EXPECT_TRUE(log.of_kind(EventKind::kTaskFailed).empty());

  // Starts precede their ends, times are monotone within kinds.
  const auto starts = log.of_kind(EventKind::kTaskStart);
  const auto ends = log.of_kind(EventKind::kTaskEnd);
  for (size_t i = 0; i < starts.size(); ++i) {
    EXPECT_LE(starts[i].time, ends[i].time);
  }
}

TEST(EventLog, DisabledViaConfigRecordsNothing) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  conf::Config config;
  config.set("spark.default.parallelism", "8");
  config.set_bool("saex.eventLog.enabled", false);
  SparkContext ctx(cluster, config);
  EXPECT_FALSE(ctx.event_log().enabled());
  ctx.dfs().load_input("/in", mib(512), 2);
  (void)ctx.run_job(ctx.text_file("/in").count(), "unlogged");
  // Disabled, the log stays empty no matter how much runs — it is the only
  // engine-side state that would otherwise grow per task forever (the knob
  // exists so 100k-job serve replays have bounded memory).
  EXPECT_EQ(ctx.event_log().size(), 0u);
}

TEST(EventLog, DynamicPolicyEmitsResizeEvents) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  conf::Config config;
  config.set("saex.executor.policy", "dynamic");
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", gib(4), 2);
  (void)ctx.run_job(ctx.text_file("/in").save_as_text_file("/out"), "resizes");
  // At minimum: the stage-start reset to c_min on both executors.
  EXPECT_GE(ctx.event_log().of_kind(EventKind::kPoolResize).size(), 2u);
}

}  // namespace
}  // namespace saex::engine
