#include <gtest/gtest.h>

#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace saex {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.2);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng parent(42);
  Rng f1 = parent.fork("alpha");
  Rng f2 = parent.fork("alpha");
  Rng f3 = parent.fork("beta");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());  // same tag → same stream
  Rng f1b = parent.fork("alpha");
  EXPECT_NE(f1b.next_u64(), f3.next_u64());
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 0.5);
    all.add(i * 0.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(TimeWeightedMean, PiecewiseConstant) {
  // value 2 on [0,5), value 4 on [5,10) → mean 3 over [0,10)
  std::vector<std::pair<double, double>> pts{{0.0, 2.0}, {5.0, 4.0}};
  EXPECT_NEAR(time_weighted_mean(pts, 0.0, 10.0), 3.0, 1e-12);
  // Query a sub-window entirely within one segment.
  EXPECT_NEAR(time_weighted_mean(pts, 6.0, 8.0), 4.0, 1e-12);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kMiB), "1.00 MiB");
  EXPECT_EQ(format_bytes(gib(1.5)), "1.50 GiB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(12.34), "12.3s");
  EXPECT_EQ(format_duration(125.0), "2m05s");
  EXPECT_EQ(format_duration(3720.0), "1h02m");
}

TEST(Units, FormatRateAndPercent) {
  EXPECT_EQ(format_rate(213.4e6), "213.4 MB/s");
  EXPECT_EQ(format_percent(0.344), "34.4%");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines equal width.
  size_t first_nl = out.find('\n');
  const size_t width = first_nl;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, width);
    pos = nl + 1;
  }
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("| x "), std::string::npos);
}

TEST(AsciiBar, ScalesAndClamps) {
  EXPECT_EQ(ascii_bar(5, 10, 10), "#####");
  EXPECT_EQ(ascii_bar(20, 10, 10), "##########");
  EXPECT_EQ(ascii_bar(0, 10, 10), "");
}

TEST(Log, ParseLevel) {
  using log::Level;
  EXPECT_EQ(log::parse_level("debug"), Level::kDebug);
  EXPECT_EQ(log::parse_level("WARN"), Level::kWarn);
  EXPECT_EQ(log::parse_level("off"), Level::kOff);
  EXPECT_EQ(log::parse_level("bogus"), Level::kInfo);
}

}  // namespace
}  // namespace saex

namespace saex::strfmt {
namespace {

TEST(StrFmt, BasicPlaceholders) {
  EXPECT_EQ(format("a {} b {} c", 1, "two"), "a 1 b two c");
  EXPECT_EQ(format("{}", 3.5), "3.5");
  EXPECT_EQ(format("{}", true), "true");
  EXPECT_EQ(format("{}", std::string("s")), "s");
}

TEST(StrFmt, FloatSpecs) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.7), "3");
  EXPECT_EQ(format("{:+.1f}", 12.34), "+12.3");
  EXPECT_EQ(format("{:.3g}", 0.00012345), "0.000123");
}

TEST(StrFmt, IntSpecs) {
  EXPECT_EQ(format("{:03}", 7), "007");
  EXPECT_EQ(format("{:02}", 45), "45");
  EXPECT_EQ(format("{}", uint64_t{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(format("{}", int64_t{-5}), "-5");
}

TEST(StrFmt, EscapesAndEdgeCases) {
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("100%%"), "100%%");  // percent is not special
  EXPECT_EQ(format("{} {}", 1), "1 {}");          // missing argument
  EXPECT_EQ(format("{}", 1, 2), "1");             // extra argument ignored
  EXPECT_EQ(format("unterminated {", 9), "unterminated {");
  EXPECT_EQ(format("{}", static_cast<const char*>(nullptr)), "(null)");
}

}  // namespace
}  // namespace saex::strfmt
