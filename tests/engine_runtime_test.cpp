// Shuffle manager, executor runtime (task state machine, ε/µ accounting,
// cache spill) and driver-side task scheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "engine/executor_runtime.h"
#include "engine/shuffle.h"
#include "engine/task_scheduler.h"
#include "hw/cluster.h"

namespace saex::engine {
namespace {

// ---------- ShuffleManager ----------

TEST(ShuffleManager, FetchPlanConservesBytes) {
  ShuffleManager sm(4);
  sm.register_map_output(0, 0, 0, 1000);
  sm.register_map_output(0, 1, 1, 777);
  sm.register_map_output(0, 2, 2, 1);
  const int R = 7;
  std::vector<Bytes> totals(4, 0);
  for (int r = 0; r < R; ++r) {
    const auto plan = sm.fetch_plan(0, r, R);
    for (int n = 0; n < 4; ++n) totals[static_cast<size_t>(n)] += plan[static_cast<size_t>(n)];
  }
  EXPECT_EQ(totals[0], 1000);
  EXPECT_EQ(totals[1], 777);
  EXPECT_EQ(totals[2], 1);
  EXPECT_EQ(totals[3], 0);
  EXPECT_EQ(sm.total_output(0), 1778);
}

TEST(ShuffleManager, AccumulatesMultipleMapTasks) {
  ShuffleManager sm(2);
  sm.register_map_output(3, 0, 0, 100);
  sm.register_map_output(3, 0, 1, 150);
  EXPECT_EQ(sm.node_output(3, 0), 250);
  EXPECT_TRUE(sm.has_shuffle(3));
  EXPECT_FALSE(sm.has_shuffle(4));
}

TEST(ShuffleManager, UnknownShuffleGivesEmptyPlan) {
  ShuffleManager sm(3);
  const auto plan = sm.fetch_plan(9, 0, 4);
  for (const Bytes b : plan) EXPECT_EQ(b, 0);
  EXPECT_EQ(sm.total_output(9), 0);
}

// Reference model of the pre-flattening ShuffleManager: nested maps keyed by
// shuffle -> node byte totals and shuffle -> partition commit records. The
// flat array implementation must be observably identical to it.
struct MapShuffleRef {
  explicit MapShuffleRef(int nodes) : num_nodes(nodes) {}

  bool register_map_output(int shuffle, int node, int partition, Bytes bytes) {
    auto& commits = commits_by_shuffle[shuffle];
    outputs.try_emplace(shuffle);  // shuffle becomes known even on duplicates
    if (commits.count(partition)) return false;
    commits[partition] = {node, bytes};
    outputs[shuffle][node] += bytes;
    return true;
  }

  std::map<int, std::vector<int>> on_node_lost(int node) {
    std::map<int, std::vector<int>> lost;
    for (auto& [shuffle, commits] : commits_by_shuffle) {
      for (auto it = commits.begin(); it != commits.end();) {
        if (it->second.first == node) {
          outputs[shuffle][node] -= it->second.second;
          lost[shuffle].push_back(it->first);
          it = commits.erase(it);
        } else {
          ++it;
        }
      }
    }
    return lost;
  }

  Bytes node_output(int shuffle, int node) const {
    auto it = outputs.find(shuffle);
    if (it == outputs.end()) return 0;
    auto nit = it->second.find(node);
    return nit == it->second.end() ? 0 : nit->second;
  }

  bool partition_committed(int shuffle, int partition) const {
    auto it = commits_by_shuffle.find(shuffle);
    return it != commits_by_shuffle.end() && it->second.count(partition) > 0;
  }

  int num_nodes;
  std::map<int, std::map<int, Bytes>> outputs;
  std::map<int, std::map<int, std::pair<int, Bytes>>> commits_by_shuffle;
};

TEST(ShuffleManager, OnNodeLostMatchesMapReferenceModel) {
  const int kNodes = 4;
  const int kShuffles = 3;
  const int kPartitions = 16;
  ShuffleManager sm(kNodes);
  MapShuffleRef ref(kNodes);

  // Deterministic pseudo-random commit pattern, including duplicate commits
  // (speculative losers) that both implementations must reject identically.
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 200; ++i) {
    const int shuffle = static_cast<int>(next() % kShuffles);
    const int node = static_cast<int>(next() % kNodes);
    const int partition = static_cast<int>(next() % kPartitions);
    const Bytes bytes = static_cast<Bytes>(next() % 10000 + 1);
    EXPECT_EQ(sm.register_map_output(shuffle, node, partition, bytes),
              ref.register_map_output(shuffle, node, partition, bytes));
  }

  auto expect_equivalent = [&] {
    for (int s = 0; s < kShuffles; ++s) {
      for (int n = 0; n < kNodes; ++n) {
        EXPECT_EQ(sm.node_output(s, n), ref.node_output(s, n))
            << "shuffle " << s << " node " << n;
      }
      for (int p = 0; p < kPartitions; ++p) {
        EXPECT_EQ(sm.partition_committed(s, p), ref.partition_committed(s, p))
            << "shuffle " << s << " partition " << p;
      }
    }
  };
  expect_equivalent();

  // Lose a node: same lost {shuffle -> partitions} map (values sorted the
  // same way), same surviving state, and the shuffle itself stays known.
  EXPECT_EQ(sm.on_node_lost(2), ref.on_node_lost(2));
  expect_equivalent();
  for (int s = 0; s < kShuffles; ++s) EXPECT_TRUE(sm.has_shuffle(s));

  // Recommit a few of the lost partitions elsewhere, then lose another node.
  for (int p = 0; p < kPartitions; p += 3) {
    const Bytes bytes = static_cast<Bytes>(next() % 5000 + 1);
    EXPECT_EQ(sm.register_map_output(1, 3, p, bytes),
              ref.register_map_output(1, 3, p, bytes));
  }
  EXPECT_EQ(sm.on_node_lost(3), ref.on_node_lost(3));
  expect_equivalent();

  // Losing a node with no commits reports nothing lost in both models.
  EXPECT_TRUE(sm.on_node_lost(2).empty());
  EXPECT_TRUE(ref.on_node_lost(2).empty());
}

TEST(ShuffleManager, ShuffleStaysKnownAfterLosingEveryCommit) {
  ShuffleManager sm(2);
  sm.register_map_output(0, 1, 0, 500);
  const auto lost = sm.on_node_lost(1);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost.at(0), std::vector<int>{0});
  EXPECT_TRUE(sm.has_shuffle(0));
  EXPECT_EQ(sm.total_output(0), 0);
  EXPECT_FALSE(sm.partition_committed(0, 0));
  // The partition can be recommitted after the loss.
  EXPECT_TRUE(sm.register_map_output(0, 0, 0, 500));
  EXPECT_EQ(sm.node_output(0, 0), 500);
}

// ---------- ExecutorRuntime ----------

struct Rig {
  explicit Rig(int nodes = 2, Bytes storage = 0)
      : cluster(hw::ClusterSpec::das5(nodes)),
        dfs(cluster, {}),
        shuffles(nodes) {
    env.sim = &cluster.sim();
    env.cluster = &cluster;
    env.dfs = &dfs;
    env.shuffles = &shuffles;
    env.caches = &caches;
    env.storage_budget = storage;
    for (int i = 0; i < nodes; ++i) {
      execs.push_back(std::make_unique<ExecutorRuntime>(env, i, 32));
    }
  }

  ExecutorRuntime& exec(int i) { return *execs[static_cast<size_t>(i)]; }

  hw::Cluster cluster;
  dfs::Dfs dfs;
  ShuffleManager shuffles;
  CacheRegistry caches;
  EngineEnv env;
  std::vector<std::unique_ptr<ExecutorRuntime>> execs;
};

Stage dfs_read_stage(const std::string& path, StageSink sink) {
  Stage s;
  s.uid = 1;
  s.source = StageSource::kDfs;
  s.input_path = path;
  s.sink = sink;
  s.out_shuffle_id = sink == StageSink::kShuffleWrite ? 0 : -1;
  return s;
}

TEST(ExecutorRuntime, RunsDfsReadTaskAndAccountsIo) {
  Rig rig;
  rig.dfs.load_input("/f", mib(128), 2);  // one block, replicated everywhere
  const Stage stage = dfs_read_stage("/f", StageSink::kDriver);

  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(128);
  spec.cpu_seconds = 1.0;

  bool done = false;
  rig.exec(0).launch(spec, stage, [&](const TaskSpec&, const TaskOutcome&) { done = true; });
  EXPECT_EQ(rig.exec(0).running(), 1);
  rig.cluster.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.exec(0).running(), 0);

  const auto& io = rig.exec(0).io_counters();
  EXPECT_EQ(io.bytes_read, mib(128));
  EXPECT_EQ(io.bytes_written, 0);
  EXPECT_GT(io.blocked_seconds, 0.0);
  EXPECT_EQ(io.tasks_completed, 1u);
}

TEST(ExecutorRuntime, ShuffleWriteRegistersMapOutput) {
  Rig rig;
  rig.dfs.load_input("/f", mib(64), 2);
  Stage stage = dfs_read_stage("/f", StageSink::kShuffleWrite);
  stage.output_ratio = 0.5;

  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(64);
  spec.output_bytes = mib(32);

  rig.exec(0).launch(spec, stage, nullptr);
  rig.cluster.sim().run();
  EXPECT_EQ(rig.shuffles.node_output(0, 0), mib(32));
  EXPECT_EQ(rig.exec(0).io_counters().bytes_written, mib(32));
}

TEST(ExecutorRuntime, ShuffleFetchReadsLocalAndRemote) {
  Rig rig;
  rig.shuffles.register_map_output(0, 0, 0, mib(40));
  rig.shuffles.register_map_output(0, 1, 1, mib(40));

  Stage stage;
  stage.source = StageSource::kShuffle;
  stage.in_shuffle_ids = {0};
  stage.num_tasks = 1;  // this task fetches everything
  stage.sink = StageSink::kDriver;

  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(80);

  bool done = false;
  rig.exec(0).launch(spec, stage, [&](const TaskSpec&, const TaskOutcome&) { done = true; });
  rig.cluster.sim().run();
  EXPECT_TRUE(done);
  // All but the page-cached slice of the local half count as reads; the
  // remote half crossed the network.
  const Bytes cached = static_cast<Bytes>(static_cast<double>(mib(40)) *
                                          rig.env.shuffle_cache_fraction);
  EXPECT_EQ(rig.exec(0).io_counters().bytes_read, mib(80) - cached);
  EXPECT_EQ(rig.cluster.network().total_bytes(), mib(40));
}

TEST(ExecutorRuntime, ReduceSpillAddsDiskTraffic) {
  Rig rig;
  rig.shuffles.register_map_output(0, 0, 0, mib(64));

  Stage stage;
  stage.source = StageSource::kShuffle;
  stage.in_shuffle_ids = {0};
  stage.num_tasks = 1;
  stage.sink = StageSink::kDriver;
  stage.spill_fraction = 0.5;

  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(64);

  rig.exec(0).launch(spec, stage, nullptr);
  rig.cluster.sim().run();
  const auto& io = rig.exec(0).io_counters();
  // Fetched 64 (minus the page-cached slice, which still counts as read via
  // memory segments? no: memory segments do not count) + spill read-back.
  EXPECT_GT(io.bytes_written, mib(28));  // ~32 MiB spill written
  EXPECT_GT(io.bytes_read, mib(64) * 3 / 4);
}

TEST(ExecutorRuntime, CacheSpillsWhenBudgetExceeded) {
  Rig rig(2, /*storage=*/mib(10));
  rig.dfs.load_input("/f", mib(64), 2);
  rig.caches.init(0, 1);

  Stage stage = dfs_read_stage("/f", StageSink::kDriver);
  stage.cache_out_id = 0;
  stage.cache_ratio = 1.0;

  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(64);
  spec.cache_bytes = mib(64);

  rig.exec(0).launch(spec, stage, nullptr);
  rig.cluster.sim().run();

  const auto& part = rig.caches.partition(0, 0);
  EXPECT_EQ(part.node, 0);
  EXPECT_EQ(part.mem_bytes, mib(10));
  EXPECT_NEAR(static_cast<double>(part.spilled_bytes),
              static_cast<double>(mib(54)), static_cast<double>(mib(1)));
  EXPECT_GE(rig.exec(0).io_counters().bytes_written, part.spilled_bytes);
}

TEST(ExecutorRuntime, CachedReadFromMemoryIsFreeOfIo) {
  Rig rig;
  rig.caches.init(0, 1);
  auto& part = rig.caches.partition(0, 0);
  part.node = 0;
  part.mem_bytes = mib(32);
  part.spilled_bytes = 0;

  Stage stage;
  stage.source = StageSource::kCached;
  stage.in_cache_id = 0;
  stage.sink = StageSink::kDriver;

  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(32);
  spec.cpu_seconds = 0.5;

  bool done = false;
  rig.exec(0).launch(spec, stage, [&](const TaskSpec&, const TaskOutcome&) { done = true; });
  rig.cluster.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.exec(0).io_counters().bytes_read, 0);
  EXPECT_DOUBLE_EQ(rig.exec(0).io_counters().blocked_seconds, 0.0);
}

TEST(ExecutorRuntime, PoolResizeRecordsHistory) {
  Rig rig;
  rig.exec(0).set_pool_size(8);
  rig.exec(0).set_pool_size(16);
  EXPECT_EQ(rig.exec(0).pool_size(), 16);
  // initial + 2 changes
  EXPECT_EQ(rig.exec(0).pool_history().points().size(), 3u);
  rig.exec(0).set_pool_size(0);  // clamped
  EXPECT_EQ(rig.exec(0).pool_size(), 1);
}

TEST(ExecutorRuntime, SensorSampleReflectsCounters) {
  Rig rig;
  rig.dfs.load_input("/f", mib(16), 2);
  const Stage stage = dfs_read_stage("/f", StageSink::kDriver);
  TaskSpec spec;
  spec.partition = 0;
  spec.input_bytes = mib(16);
  rig.exec(0).launch(spec, stage, nullptr);
  rig.cluster.sim().run();

  const adaptive::IoSample s = rig.exec(0).sample();
  EXPECT_EQ(s.bytes_total, mib(16));
  EXPECT_GT(s.epoll_wait_seconds, 0.0);
  EXPECT_EQ(s.tasks_completed, 1u);
}

// ---------- TaskScheduler ----------

struct SchedulerRig : Rig {
  SchedulerRig() : Rig(4) {
    std::vector<ExecutorRuntime*> raw;
    for (auto& e : execs) raw.push_back(e.get());
    scheduler = std::make_unique<TaskScheduler>(cluster.sim(), raw);
    dfs.load_input("/data", mib(128) * 64, 4);  // 64 blocks, full locality
    stage = dfs_read_stage("/data", StageSink::kDriver);
    stage.num_tasks = 64;
  }

  std::vector<TaskSpec> make_tasks(int n) {
    std::vector<TaskSpec> tasks;
    for (int p = 0; p < n; ++p) {
      TaskSpec t;
      t.partition = p;
      t.input_bytes = mib(128);
      t.cpu_seconds = 0.2;
      const auto& block =
          dfs.lookup("/data")->blocks[static_cast<size_t>(p)];
      t.preferred_nodes = block.replicas;
      tasks.push_back(t);
    }
    return tasks;
  }

  std::unique_ptr<TaskScheduler> scheduler;
  Stage stage;
};

TEST(TaskScheduler, RunsAllTasksToCompletion) {
  SchedulerRig rig;
  bool done = false;
  rig.scheduler->run_stage(rig.stage, rig.make_tasks(64), [&] { done = true; });
  rig.cluster.sim().run();
  EXPECT_TRUE(done);
  uint64_t completed = 0;
  for (auto& e : rig.execs) completed += e->io_counters().tasks_completed;
  EXPECT_EQ(completed, 64u);
}

TEST(TaskScheduler, EmptyStageCompletesImmediately) {
  SchedulerRig rig;
  bool done = false;
  rig.scheduler->run_stage(rig.stage, {}, [&] { done = true; });
  rig.cluster.sim().run();
  EXPECT_TRUE(done);
}

TEST(TaskScheduler, RespectsAdvertisedPoolSize) {
  SchedulerRig rig;
  for (auto& e : rig.execs) e->set_pool_size(2);
  for (int n = 0; n < 4; ++n) rig.scheduler->on_executor_resized(n, 2);

  bool done = false;
  rig.scheduler->run_stage(rig.stage, rig.make_tasks(64), [&] { done = true; });
  // Sample concurrency as the simulation progresses.
  int peak = 0;
  while (!done && rig.cluster.sim().step()) {
    for (auto& e : rig.execs) peak = std::max(peak, e->running());
  }
  EXPECT_TRUE(done);
  EXPECT_LE(peak, 2);
}

TEST(TaskScheduler, ResizeMidStageChangesConcurrency) {
  SchedulerRig rig;
  for (auto& e : rig.execs) e->set_pool_size(1);
  for (int n = 0; n < 4; ++n) rig.scheduler->on_executor_resized(n, 1);

  bool done = false;
  rig.scheduler->run_stage(rig.stage, rig.make_tasks(64), [&] { done = true; });

  // Grow executor 0's pool mid-stage through the §5.4 protocol.
  rig.cluster.sim().schedule_at(1.0, [&] {
    rig.exec(0).set_pool_size(8);
    rig.scheduler->on_executor_resized(0, 8);
  });
  int peak0 = 0;
  while (!done && rig.cluster.sim().step()) {
    peak0 = std::max(peak0, rig.exec(0).running());
  }
  EXPECT_TRUE(done);
  EXPECT_GT(peak0, 4);
  EXPECT_EQ(rig.scheduler->advertised_size(0), 8);
}

TEST(TaskScheduler, NotifierDeliversResizeWithLatency) {
  SchedulerRig rig;
  auto notify = rig.scheduler->make_notifier(2);
  notify(5);
  EXPECT_EQ(rig.scheduler->advertised_size(2), 32);  // not yet delivered
  rig.cluster.sim().run();
  EXPECT_EQ(rig.scheduler->advertised_size(2), 5);
}

TEST(TaskScheduler, PrefersLocalTasks) {
  SchedulerRig rig;
  // Replication 1: every block has exactly one home node.
  rig.dfs.load_input("/local", mib(128) * 16, 1);
  Stage stage = dfs_read_stage("/local", StageSink::kDriver);
  stage.num_tasks = 16;
  std::vector<TaskSpec> tasks;
  for (int p = 0; p < 16; ++p) {
    TaskSpec t;
    t.partition = p;
    t.input_bytes = mib(128);
    t.preferred_nodes =
        rig.dfs.lookup("/local")->blocks[static_cast<size_t>(p)].replicas;
    tasks.push_back(t);
  }
  bool done = false;
  rig.scheduler->run_stage(stage, std::move(tasks), [&] { done = true; });
  rig.cluster.sim().run();
  EXPECT_TRUE(done);
  // With locality-first assignment and equal pools, no network traffic.
  EXPECT_EQ(rig.cluster.network().total_bytes(), 0);
}

}  // namespace
}  // namespace saex::engine
