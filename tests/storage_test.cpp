// saex::storage — per-node BlockManager and pluggable eviction policies:
// canned-trace conformance for lru/clock/s3fifo/tinylfu, budget and
// spill/drop accounting, pinning and the same-RDD exclusion rule,
// CacheRegistry re-init semantics, and the engine integration paths
// (spill-then-reload determinism, evicted-block recompute from lineage,
// recompute interplay with executor kills, cache-locality scheduling).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/units.h"
#include "conf/config.h"
#include "engine/context.h"
#include "hw/cluster.h"
#include "metrics/registry.h"
#include "storage/block_manager.h"
#include "storage/eviction.h"
#include "workloads/workloads.h"

namespace saex {
namespace {

using storage::BlockId;
using storage::BlockKind;
using storage::BlockManager;
using storage::EvictionPolicy;
using storage::make_eviction_policy;

// ---------- eviction-policy conformance on canned traces ----------

std::vector<storage::BlockKey> drain(EvictionPolicy& p) {
  std::vector<storage::BlockKey> order;
  while (!p.empty()) order.push_back(p.victim());
  return order;
}

TEST(EvictionPolicy, FactoryKnowsEveryName) {
  EXPECT_EQ(make_eviction_policy("none"), nullptr);
  for (const char* name : {"lru", "clock", "s3fifo", "tinylfu"}) {
    const auto p = make_eviction_policy(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_STREQ(p->name(), name);
    EXPECT_TRUE(p->empty());
  }
  EXPECT_THROW(make_eviction_policy("arc"), std::invalid_argument);
  EXPECT_TRUE(storage::is_valid_eviction_policy("s3fifo"));
  EXPECT_FALSE(storage::is_valid_eviction_policy("fifo2"));
}

TEST(EvictionPolicy, LruEvictsLeastRecentlyUsed) {
  const auto p = make_eviction_policy("lru");
  p->on_insert(1);
  p->on_insert(2);
  p->on_insert(3);
  p->on_access(1);  // 1 becomes most recent
  EXPECT_EQ(drain(*p), (std::vector<storage::BlockKey>{2, 3, 1}));
}

TEST(EvictionPolicy, LruReinsertCountsAsAccess) {
  const auto p = make_eviction_policy("lru");
  p->on_insert(1);
  p->on_insert(2);
  p->on_insert(1);  // duplicate insert = touch
  EXPECT_EQ(p->size(), 2u);
  EXPECT_EQ(p->victim(), 2u);
}

TEST(EvictionPolicy, ClockGivesSecondChanceToReferencedBlocks) {
  const auto p = make_eviction_policy("clock");
  p->on_insert(1);
  p->on_insert(2);
  p->on_insert(3);
  p->on_access(1);  // sets 1's reference bit
  // The hand clears 1's bit, passes it over, and takes 2; then 3; then 1.
  EXPECT_EQ(drain(*p), (std::vector<storage::BlockKey>{2, 3, 1}));
}

TEST(EvictionPolicy, ClockSurvivesRemoveUnderTheHand) {
  const auto p = make_eviction_policy("clock");
  p->on_insert(1);
  p->on_insert(2);
  p->on_insert(3);
  EXPECT_EQ(p->victim(), 1u);  // hand now rests on 2
  p->on_remove(2);
  EXPECT_EQ(p->victim(), 3u);
  EXPECT_TRUE(p->empty());
}

TEST(EvictionPolicy, S3FifoOneHitWondersLeaveThroughSmall) {
  const auto p = make_eviction_policy("s3fifo");
  for (storage::BlockKey k = 1; k <= 4; ++k) p->on_insert(k);
  p->on_access(2);  // 2 proved itself: promoted instead of evicted
  EXPECT_EQ(p->victim(), 1u);
  EXPECT_EQ(p->victim(), 3u);  // 2 moved to main, 3 is next one-hit wonder
  EXPECT_EQ(p->size(), 2u);
}

TEST(EvictionPolicy, S3FifoGhostHitReinsertsIntoMain) {
  const auto p = make_eviction_policy("s3fifo");
  p->on_insert(1);
  EXPECT_EQ(p->victim(), 1u);  // leaves through small, remembered as ghost
  p->on_insert(1);             // ghost hit: admitted straight to main
  p->on_insert(2);             // newcomer in small
  EXPECT_EQ(p->victim(), 2u);  // small is drained before main
  EXPECT_EQ(p->victim(), 1u);
}

TEST(EvictionPolicy, TinyLfuEvictsColdestFifoOnTies) {
  const auto p = make_eviction_policy("tinylfu");
  p->on_insert(1);
  p->on_insert(2);
  p->on_insert(3);
  p->on_access(3);
  p->on_access(3);
  p->on_access(2);
  // Frequencies: 1 -> 1, 2 -> 2, 3 -> 3; coldest first, then by age.
  EXPECT_EQ(drain(*p), (std::vector<storage::BlockKey>{1, 2, 3}));
}

TEST(EvictionPolicy, TinyLfuTiesKeepInsertionOrder) {
  const auto p = make_eviction_policy("tinylfu");
  p->on_insert(7);
  p->on_insert(8);
  p->on_insert(9);
  EXPECT_EQ(drain(*p), (std::vector<storage::BlockKey>{7, 8, 9}));
}

// ---------- BlockManager bookkeeping ----------

BlockId cache_block(int cache_id, int partition) {
  return BlockId{BlockKind::kCachePartition, cache_id, partition};
}

TEST(BlockId, KeyRoundTripsBothKinds) {
  for (const BlockId id : {cache_block(17, 4093),
                           BlockId{BlockKind::kShuffleOutput, 3, 127}}) {
    const BlockId back = BlockId::from_key(id.key());
    EXPECT_EQ(back.kind, id.kind);
    EXPECT_EQ(back.id, id.id);
    EXPECT_EQ(back.partition, id.partition);
  }
}

TEST(BlockManager, PolicyNoneGrantsUpToBudgetAndNeverEvicts) {
  BlockManager bm(0, {mib(100), "none", true}, nullptr);
  const auto r1 = bm.reserve(cache_block(1, 0), mib(60));
  EXPECT_EQ(r1.granted, mib(60));
  bm.commit(cache_block(1, 0));
  const auto r2 = bm.reserve(cache_block(2, 0), mib(60));
  EXPECT_EQ(r2.granted, mib(40));  // the remainder is the caller's to spill
  EXPECT_TRUE(r2.evicted.empty());
  EXPECT_EQ(bm.mem_used(), mib(100));
  EXPECT_EQ(bm.evictions(), 0);
}

TEST(BlockManager, ZeroBudgetMeansUnbounded) {
  BlockManager bm(0, {0, "lru", true}, nullptr);
  EXPECT_EQ(bm.reserve(cache_block(1, 0), gib(50)).granted, gib(50));
  EXPECT_EQ(bm.reserve(cache_block(2, 0), gib(50)).granted, gib(50));
  EXPECT_EQ(bm.evictions(), 0);
}

TEST(BlockManager, LruSpillsCommittedVictimToAdmitNewBlock) {
  BlockManager bm(0, {mib(100), "lru", /*spill_on_evict=*/true}, nullptr);
  bm.reserve(cache_block(1, 0), mib(60));
  bm.commit(cache_block(1, 0));
  const auto r = bm.reserve(cache_block(2, 0), mib(60));
  EXPECT_EQ(r.granted, mib(60));
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].id.id, 1);
  EXPECT_EQ(r.evicted[0].mem_bytes, mib(60));
  EXPECT_TRUE(r.evicted[0].spilled);
  EXPECT_EQ(bm.mem_used(), mib(60));
  EXPECT_EQ(bm.disk_used(), mib(60));  // the victim moved to disk
  EXPECT_EQ(bm.evicted_spill_bytes(), mib(60));
  EXPECT_EQ(bm.num_blocks(), 2u);
}

TEST(BlockManager, SpillOnEvictFalseDropsTheVictimEntirely) {
  BlockManager bm(0, {mib(100), "lru", /*spill_on_evict=*/false}, nullptr);
  bm.reserve(cache_block(1, 0), mib(60));
  bm.commit(cache_block(1, 0));
  const auto r = bm.reserve(cache_block(2, 0), mib(60));
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_FALSE(r.evicted[0].spilled);
  EXPECT_EQ(bm.disk_used(), 0u);
  EXPECT_EQ(bm.evicted_drop_bytes(), mib(60));
  EXPECT_EQ(bm.num_blocks(), 1u);  // only the incoming block remains
}

TEST(BlockManager, UncommittedBlocksArePinnedAgainstEviction) {
  BlockManager bm(0, {mib(100), "lru", true}, nullptr);
  bm.reserve(cache_block(1, 0), mib(60));  // no commit: still pinned
  const auto r = bm.reserve(cache_block(2, 0), mib(60));
  EXPECT_EQ(r.granted, mib(40));  // nothing evictable, partial grant
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_EQ(bm.evictions(), 0);
}

TEST(BlockManager, NeverEvictsPartitionsOfTheRddBeingWritten) {
  BlockManager bm(0, {mib(100), "lru", true}, nullptr);
  bm.reserve(cache_block(1, 0), mib(60));
  bm.commit(cache_block(1, 0));
  // A sibling partition of cache 1 must not sacrifice partition 0 (that
  // recompute would ping-pong); it takes the partial grant instead.
  const auto same = bm.reserve(cache_block(1, 1), mib(60));
  EXPECT_EQ(same.granted, mib(40));
  EXPECT_TRUE(same.evicted.empty());
  bm.commit(cache_block(1, 1));
  // A different cache may evict both of them.
  const auto other = bm.reserve(cache_block(2, 0), mib(100));
  EXPECT_EQ(other.evicted.size(), 2u);
  EXPECT_EQ(other.granted, mib(100));
}

TEST(BlockManager, TouchFeedsHitMissCountersAndMetrics) {
  metrics::Registry reg;
  BlockManager bm(3, {mib(100), "lru", true}, &reg);
  bm.reserve(cache_block(1, 0), mib(10));
  bm.commit(cache_block(1, 0));
  bm.touch(cache_block(1, 0), /*mem_hit=*/true);
  bm.touch(cache_block(1, 0), /*mem_hit=*/true);
  bm.touch(cache_block(1, 0), /*mem_hit=*/false);
  EXPECT_EQ(bm.hits(), 2);
  EXPECT_EQ(bm.misses(), 1);
  EXPECT_DOUBLE_EQ(reg.counter_value("storage/node3/hits"), 2.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("storage/node3/misses"), 1.0);
}

TEST(BlockManager, ShuffleOutputsLiveOnDiskOutsideThePolicy) {
  BlockManager bm(0, {mib(100), "lru", true}, nullptr);
  const BlockId out{BlockKind::kShuffleOutput, 5, 9};
  bm.add_disk(out, mib(32));
  bm.commit(out);  // zero memory bytes: the policy never tracks it
  EXPECT_EQ(bm.disk_used(), mib(32));
  EXPECT_EQ(bm.mem_used(), 0u);
  const auto r = bm.reserve(cache_block(1, 0), mib(100));
  EXPECT_TRUE(r.evicted.empty());  // disk-only blocks are not victims
  EXPECT_EQ(r.granted, mib(100));
}

TEST(BlockManager, DropAllForgetsEverything) {
  BlockManager bm(0, {mib(100), "lru", true}, nullptr);
  bm.reserve(cache_block(1, 0), mib(40));
  bm.commit(cache_block(1, 0));
  bm.add_disk(cache_block(1, 0), mib(8));
  bm.drop_all();
  EXPECT_EQ(bm.mem_used(), 0u);
  EXPECT_EQ(bm.disk_used(), 0u);
  EXPECT_EQ(bm.num_blocks(), 0u);
  // And the policy's tracking is empty: a full-budget write evicts nothing.
  EXPECT_TRUE(bm.reserve(cache_block(2, 0), mib(100)).evicted.empty());
}

// ---------- CacheRegistry re-init semantics ----------

TEST(CacheRegistry, InitIsIdempotentForMatchingPartitionCount) {
  engine::CacheRegistry reg;
  reg.init(1, 8);
  reg.partition(1, 3).node = 2;
  reg.partition(1, 3).mem_bytes = mib(5);
  reg.init(1, 8);  // same shape: keeps live partition state
  EXPECT_EQ(reg.partition(1, 3).node, 2);
  EXPECT_EQ(reg.partition(1, 3).mem_bytes, mib(5));
}

TEST(CacheRegistry, InitWithDifferentPartitionCountThrows) {
  engine::CacheRegistry reg;
  reg.init(1, 8);
  EXPECT_THROW(reg.init(1, 4), std::logic_error);
  EXPECT_THROW(reg.init(1, 16), std::logic_error);
}

// ---------- engine integration ----------

conf::Config storage_config(const std::string& policy, Bytes budget,
                            bool spill_on_evict = true) {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  c.set("saex.storage.policy", policy);
  if (budget > 0) c.set("saex.storage.memory", strfmt::format("{}", budget));
  c.set_bool("saex.storage.spillOnEvict", spill_on_evict);
  return c;
}

// Runs `spec` on a fresh 4-node cluster and returns the concatenated
// per-job reports plus the storage counters.
std::string run_workload(const workloads::WorkloadSpec& spec,
                         conf::Config config, int64_t* evictions = nullptr,
                         double* hit_rate = nullptr) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  engine::SparkContext ctx(cluster, std::move(config));
  std::string out;
  for (const engine::Rdd& action : spec.build(ctx)) {
    out += ctx.run_job(action, spec.name).render();
    out += "\n";
  }
  if (evictions != nullptr) *evictions = ctx.storage().total_evictions();
  if (hit_rate != nullptr) *hit_rate = ctx.storage().hit_rate();
  return out;
}

std::string run_kmeans(conf::Config config) {
  return run_workload(workloads::kmeans(mib(512), 2), std::move(config));
}

// 4 cached RDDs x 128 MiB contending for the per-node budget: the only
// workload shape where eviction policies actually fire (a lone cache can
// never evict itself under the same-RDD exclusion rule).
std::string run_churn(conf::Config config, int64_t* evictions = nullptr,
                      double* hit_rate = nullptr) {
  return run_workload(workloads::cache_churn(mib(128), 4, 2),
                      std::move(config), evictions, hit_rate);
}

TEST(StorageEngine, UnknownPolicyIsATypedConfigError) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  conf::Config c;
  c.set("saex.storage.policy", "mru");
  EXPECT_THROW(engine::SparkContext(cluster, std::move(c)), conf::ConfigError);
}

TEST(StorageEngine, UnboundedLruMatchesPolicyNoneBitwise) {
  // With a budget nothing overflows, an active policy never fires: the run
  // must reproduce the no-BlockManager behavior byte for byte.
  const std::string none = run_kmeans(storage_config("none", gib(1024)));
  const std::string lru = run_kmeans(storage_config("lru", gib(1024)));
  EXPECT_EQ(none, lru);
}

TEST(StorageEngine, SpillThenReloadIsDeterministic) {
  for (const char* policy : {"lru", "clock", "s3fifo", "tinylfu"}) {
    int64_t evictions1 = 0, evictions2 = 0;
    const std::string a =
        run_churn(storage_config(policy, mib(64)), &evictions1);
    const std::string b =
        run_churn(storage_config(policy, mib(64)), &evictions2);
    EXPECT_EQ(a, b) << policy;
    EXPECT_EQ(evictions1, evictions2) << policy;
    EXPECT_GT(evictions1, 0) << policy;  // the budget is genuinely tight
  }
}

TEST(StorageEngine, BoundedRunCountsHitsAndMisses) {
  int64_t evictions = 0;
  double hit_rate = 0.0;
  run_churn(storage_config("lru", mib(64)), &evictions, &hit_rate);
  EXPECT_GT(evictions, 0);
  EXPECT_GT(hit_rate, 0.0);
  EXPECT_LT(hit_rate, 1.0);  // some reads had to go through disk
}

// Two cached RDDs fighting over one tight budget with spillOnEvict=false:
// materializing B drops A's partitions, and the next read of A must rebuild
// them from lineage instead of aborting the job.
TEST(StorageEngine, EvictedBlocksAreRecomputedFromLineage) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config c = storage_config("lru", mib(80), /*spill_on_evict=*/false);
  engine::SparkContext ctx(cluster, std::move(c));
  ctx.dfs().load_input("/A/in", mib(256), 4);
  ctx.dfs().load_input("/B/in", mib(512), 4);
  const engine::Rdd a =
      ctx.text_file("/A/in").map("parseA", {0.05, 1.0}).cache();
  const engine::Rdd b =
      ctx.text_file("/B/in").map("parseB", {0.05, 1.0}).cache();

  ctx.run_job(a.map("scanA1", {0.05, 0.001}).collect(), "warm-a");
  ctx.run_job(b.map("scanB1", {0.05, 0.001}).collect(), "evict-a");
  const engine::JobReport r =
      ctx.run_job(a.map("scanA2", {0.05, 0.001}).collect(), "reload-a");

  EXPECT_FALSE(r.failed);
  EXPECT_GT(ctx.metrics().counter_value("storage/recomputes"), 0.0);
  EXPECT_EQ(ctx.recovering_caches(), 0);  // every rebuild drained
}

// The recompute path composes with executor loss: partitions dropped by
// eviction are rebuilt on the surviving nodes after a kill.
TEST(StorageEngine, RecomputeSurvivesExecutorKill) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config c = storage_config("lru", mib(48), /*spill_on_evict=*/false);
  engine::SparkContext ctx(cluster, std::move(c));
  ctx.dfs().load_input("/A/in", mib(256), 4);
  ctx.dfs().load_input("/B/in", mib(512), 4);
  const engine::Rdd a =
      ctx.text_file("/A/in").map("parseA", {0.05, 1.0}).cache();
  const engine::Rdd b =
      ctx.text_file("/B/in").map("parseB", {0.05, 1.0}).cache();

  ctx.run_job(a.map("scanA1", {0.05, 0.001}).collect(), "warm-a");
  ctx.run_job(b.map("scanB1", {0.05, 0.001}).collect(), "evict-a");
  ctx.kill_executor(0);
  EXPECT_EQ(ctx.storage().node(0).num_blocks(), 0u);  // blocks died with it

  const engine::JobReport r =
      ctx.run_job(a.map("scanA2", {0.05, 0.001}).collect(), "reload-a");
  EXPECT_FALSE(r.failed);
  EXPECT_GT(ctx.metrics().counter_value("storage/recomputes"), 0.0);
}

TEST(StorageEngine, ShuffleLocalityPreferenceIsDeterministic) {
  auto run = [] {
    hw::Cluster cluster(hw::ClusterSpec::das5(4));
    conf::Config c;
    c.set("spark.default.parallelism", "16");
    c.set_bool("saex.storage.shuffleLocality", true);
    engine::SparkContext ctx(cluster, std::move(c));
    const workloads::WorkloadSpec spec = workloads::terasort(gib(2));
    std::string out;
    for (const engine::Rdd& action : spec.build(ctx)) {
      out += ctx.run_job(action, spec.name).render();
    }
    return out;
  };
  const std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

}  // namespace
}  // namespace saex
