#include "metrics/histogram.h"
#include <gtest/gtest.h>

#include "metrics/io_accounting.h"
#include "metrics/registry.h"
#include "metrics/timeseries.h"

namespace saex::metrics {
namespace {

TEST(Registry, CounterAccumulates) {
  Registry r;
  r.counter("a/b").add(2.0);
  r.counter("a/b").increment();
  EXPECT_DOUBLE_EQ(r.counter_value("a/b"), 3.0);
  EXPECT_DOUBLE_EQ(r.counter_value("missing"), 0.0);
}

TEST(Registry, GaugeHoldsLastValue) {
  Registry r;
  r.gauge("g").set(5.0);
  r.gauge("g").set(2.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("g"), 2.0);
}

TEST(Registry, CounterNamesFilterByPrefix) {
  Registry r;
  r.counter("node0/disk/read");
  r.counter("node0/disk/write");
  r.counter("node1/disk/read");
  EXPECT_EQ(r.counter_names("node0/").size(), 2u);
  EXPECT_EQ(r.counter_names().size(), 3u);
}

TEST(TimeSeries, ResampleHoldsLastValue) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  ts.record(2.0, 3.0);
  const auto v = ts.resample(0.0, 4.0, 1.0);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_DOUBLE_EQ(v[3], 3.0);
}

TEST(RateSeries, BinsBytesIntoRates) {
  RateSeries rs(1.0);
  rs.add(0.5, 100);
  rs.add(0.9, 100);
  rs.add(1.5, 300);
  const auto rates = rs.rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 200.0);
  EXPECT_DOUBLE_EQ(rates[1], 300.0);
  EXPECT_DOUBLE_EQ(rs.mean_rate(), 250.0);
}

TEST(RateSeries, EmptyMeanIsZero) {
  RateSeries rs;
  EXPECT_DOUBLE_EQ(rs.mean_rate(), 0.0);
  EXPECT_TRUE(rs.rates().empty());
}

TEST(IoAccounting, AccumulatesMonotonically) {
  IoAccounting io;
  io.add_blocked(1.5);
  io.add_read(100);
  io.add_write(50);
  io.task_completed();
  io.add_blocked(0.5);
  const IoCounters& c = io.snapshot();
  EXPECT_DOUBLE_EQ(c.blocked_seconds, 2.0);
  EXPECT_EQ(c.bytes_read, 100);
  EXPECT_EQ(c.bytes_written, 50);
  EXPECT_EQ(c.bytes_total(), 150);
  EXPECT_EQ(c.tasks_completed, 1u);
}

TEST(UtilizationTracker, SingleUnitBusyFraction) {
  UtilizationTracker u(1.0);
  u.set_active(0.0, 1.0);
  u.set_active(3.0, 0.0);   // busy [0,3)
  u.set_active(5.0, 1.0);   // busy [5,10)
  u.set_active(10.0, 0.0);
  EXPECT_NEAR(u.utilization(0.0, 10.0), 0.8, 1e-12);
  EXPECT_NEAR(u.utilization(0.0, 5.0), 0.6, 1e-12);
  EXPECT_NEAR(u.utilization(3.0, 5.0), 0.0, 1e-12);
}

TEST(UtilizationTracker, MultiUnitCapacity) {
  UtilizationTracker u(4.0);  // e.g. 4 cores
  u.set_active(0.0, 2.0);
  u.set_active(10.0, 4.0);
  u.set_active(20.0, 0.0);
  EXPECT_NEAR(u.utilization(0.0, 20.0), (2.0 * 10 + 4.0 * 10) / (4.0 * 20), 1e-12);
}

TEST(UtilizationTracker, HistoricalWindowQueries) {
  UtilizationTracker u(1.0);
  u.set_active(1.0, 1.0);
  u.set_active(2.0, 0.0);
  u.set_active(4.0, 1.0);
  u.set_active(6.0, 0.0);
  // Query an old window after later updates.
  EXPECT_NEAR(u.utilization(0.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(u.utilization(4.0, 6.0), 1.0, 1e-12);
  EXPECT_NEAR(u.utilization(0.0, 6.0), 3.0 / 6.0, 1e-12);
}

TEST(UtilizationTracker, IntegralExtrapolatesLastState) {
  UtilizationTracker u(1.0);
  u.set_active(0.0, 1.0);
  EXPECT_NEAR(u.integral_at(7.0), 7.0, 1e-12);
}

}  // namespace
}  // namespace saex::metrics

namespace saex::metrics {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, BasicMomentsExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(Histogram, QuantilesWithinBucketError) {
  Histogram h(1e-3, 1.1);
  for (int i = 1; i <= 1000; ++i) h.add(i * 0.01);  // uniform 0.01..10
  // p50 ~ 5.0, p95 ~ 9.5, within one growth factor.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 5.0 * 0.12);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 9.5 * 0.12);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  h.add(7.3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.3);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.3);
}

TEST(Histogram, MergeMatchesCombined) {
  Histogram a(1e-3, 1.2), b(1e-3, 1.2), all(1e-3, 1.2);
  for (int i = 1; i <= 50; ++i) {
    a.add(i * 0.1);
    all.add(i * 0.1);
  }
  for (int i = 1; i <= 80; ++i) {
    b.add(i * 0.03);
    all.add(i * 0.03);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, ZeroAndNegativeClampToFirstBucket) {
  Histogram h;
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

}  // namespace
}  // namespace saex::metrics
