#include "metrics/histogram.h"
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/format.h"
#include "metrics/io_accounting.h"
#include "metrics/registry.h"
#include "metrics/timeseries.h"

namespace saex::metrics {
namespace {

TEST(Registry, CounterAccumulates) {
  Registry r;
  r.counter("a/b").add(2.0);
  r.counter("a/b").increment();
  EXPECT_DOUBLE_EQ(r.counter_value("a/b"), 3.0);
  EXPECT_DOUBLE_EQ(r.counter_value("missing"), 0.0);
}

TEST(Registry, GaugeHoldsLastValue) {
  Registry r;
  r.gauge("g").set(5.0);
  r.gauge("g").set(2.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("g"), 2.0);
}

TEST(Registry, CounterNamesFilterByPrefix) {
  Registry r;
  r.counter("node0/disk/read");
  r.counter("node0/disk/write");
  r.counter("node1/disk/read");
  EXPECT_EQ(r.counter_names("node0/").size(), 2u);
  EXPECT_EQ(r.counter_names().size(), 3u);
}

TEST(Registry, HandleStaysValidAcrossRegistryGrowth) {
  Registry r;
  CounterHandle first = r.counter_handle("first");
  Counter* cell_before = &r.counter("first");
  // Force many slot allocations; deque-backed storage must not move cells.
  for (int i = 0; i < 4096; ++i) {
    r.counter(strfmt::format("grow/{}", i)).increment();
  }
  EXPECT_EQ(&r.counter("first"), cell_before);
  first.add(2.0);
  first.increment();
  EXPECT_DOUBLE_EQ(r.counter_value("first"), 3.0);
  EXPECT_EQ(r.num_counters(), 4097u);
}

TEST(Registry, StringAndHandleApisAliasTheSameCell) {
  Registry r;
  r.counter("jobs").add(2.0);
  CounterHandle h = r.counter_handle("jobs");
  h.increment();
  r.counter("jobs").increment();
  EXPECT_DOUBLE_EQ(h.value(), 4.0);
  EXPECT_DOUBLE_EQ(r.counter_value("jobs"), 4.0);

  GaugeHandle g = r.gauge_handle("depth");
  r.gauge("depth").set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(9.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("depth"), 9.0);
}

TEST(Registry, MetricIdIsStableAndReusedOnReintern) {
  Registry r;
  const MetricId a = r.counter_id("x");
  r.counter_id("y");
  EXPECT_TRUE(a == r.counter_id("x"));
  EXPECT_FALSE(a == r.counter_id("y"));
  r.counter_at(a).increment();
  EXPECT_DOUBLE_EQ(r.counter_value("x"), 1.0);
}

TEST(Registry, DefaultHandleIsNull) {
  CounterHandle c;
  GaugeHandle g;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  Registry r;
  EXPECT_TRUE(static_cast<bool>(r.counter_handle("a")));
  EXPECT_TRUE(static_cast<bool>(r.gauge_handle("b")));
}

TEST(Registry, PrefixQueriesUnchangedByHandleResolution) {
  Registry r;
  // Interleave handle resolution with string-keyed creation in non-sorted
  // order; counter_names() must stay sorted and prefix-filtered exactly as
  // before the handle API existed.
  r.counter_handle("node1/disk/read");
  r.counter("node0/disk/write");
  r.counter_handle("node0/disk/read");
  r.counter("node1/net/tx");
  const auto all = r.counter_names();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(r.counter_names("node0/").size(), 2u);
  EXPECT_EQ(r.counter_names("node1/").size(), 2u);
  EXPECT_EQ(r.counter_names("node1/net/").size(), 1u);
}

TEST(TimeSeries, ResampleHoldsLastValue) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  ts.record(2.0, 3.0);
  const auto v = ts.resample(0.0, 4.0, 1.0);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_DOUBLE_EQ(v[3], 3.0);
}

TEST(RateSeries, BinsBytesIntoRates) {
  RateSeries rs(1.0);
  rs.add(0.5, 100);
  rs.add(0.9, 100);
  rs.add(1.5, 300);
  const auto rates = rs.rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 200.0);
  EXPECT_DOUBLE_EQ(rates[1], 300.0);
  EXPECT_DOUBLE_EQ(rs.mean_rate(), 250.0);
}

TEST(RateSeries, EmptyMeanIsZero) {
  RateSeries rs;
  EXPECT_DOUBLE_EQ(rs.mean_rate(), 0.0);
  EXPECT_TRUE(rs.rates().empty());
}

TEST(TimeSeries, ResampleRejectsDegenerateArguments) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ts.resample(0.0, 10.0, 0.0).empty());
  EXPECT_TRUE(ts.resample(0.0, 10.0, -1.0).empty());
  EXPECT_TRUE(ts.resample(10.0, 10.0, 1.0).empty());
  EXPECT_TRUE(ts.resample(10.0, 0.0, 1.0).empty());
  EXPECT_TRUE(ts.resample(nan, 10.0, 1.0).empty());
  EXPECT_TRUE(ts.resample(0.0, nan, 1.0).empty());
  EXPECT_TRUE(ts.resample(0.0, 10.0, nan).empty());
  EXPECT_TRUE(ts.resample(0.0, inf, 1.0).empty());
  EXPECT_TRUE(ts.resample(0.0, 10.0, inf).empty());
}

TEST(TimeSeries, ResampleTerminatesWhenDtIsBelowUlp) {
  // With the old accumulating loop (t += dt), a dt smaller than t0's ulp
  // never advances t and the call spins forever. The index-based loop is
  // bounded by construction.
  TimeSeries ts;
  ts.record(0.0, 5.0);
  const double t0 = 1e12;
  const double t1 = std::nextafter(t0, std::numeric_limits<double>::max());
  const auto v = ts.resample(t0, t1, 1e-9);
  ASSERT_FALSE(v.empty());
  EXPECT_LE(v.size(), TimeSeries::kMaxResampleBins);
  EXPECT_DOUBLE_EQ(v.front(), 5.0);
  EXPECT_DOUBLE_EQ(v.back(), 5.0);
}

TEST(TimeSeries, ResampleCapsPathologicalBinCounts) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  // 1e9 seconds at nanosecond bins would be 1e18 bins; the cap keeps the
  // request bounded instead of exhausting memory.
  const auto v = ts.resample(0.0, 1e9, 1e-9);
  EXPECT_EQ(v.size(), TimeSeries::kMaxResampleBins);
}

TEST(RateSeries, NonPositiveBinFallsBackToDefault) {
  EXPECT_DOUBLE_EQ(RateSeries(0.0).bin_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(RateSeries(-2.5).bin_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(
      RateSeries(std::numeric_limits<double>::quiet_NaN()).bin_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(
      RateSeries(std::numeric_limits<double>::infinity()).bin_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(RateSeries(0.5).bin_seconds(), 0.5);

  // A sanitized series still bins correctly (1.0s bins).
  RateSeries rs(0.0);
  rs.add(0.25, 100);
  rs.add(std::numeric_limits<double>::quiet_NaN(), 50);  // clamped to t=0
  const auto rates = rs.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 150.0);
}

TEST(IoAccounting, AccumulatesMonotonically) {
  IoAccounting io;
  io.add_blocked(1.5);
  io.add_read(100);
  io.add_write(50);
  io.task_completed();
  io.add_blocked(0.5);
  const IoCounters& c = io.snapshot();
  EXPECT_DOUBLE_EQ(c.blocked_seconds, 2.0);
  EXPECT_EQ(c.bytes_read, 100);
  EXPECT_EQ(c.bytes_written, 50);
  EXPECT_EQ(c.bytes_total(), 150);
  EXPECT_EQ(c.tasks_completed, 1u);
}

TEST(UtilizationTracker, SingleUnitBusyFraction) {
  UtilizationTracker u(1.0);
  u.set_active(0.0, 1.0);
  u.set_active(3.0, 0.0);   // busy [0,3)
  u.set_active(5.0, 1.0);   // busy [5,10)
  u.set_active(10.0, 0.0);
  EXPECT_NEAR(u.utilization(0.0, 10.0), 0.8, 1e-12);
  EXPECT_NEAR(u.utilization(0.0, 5.0), 0.6, 1e-12);
  EXPECT_NEAR(u.utilization(3.0, 5.0), 0.0, 1e-12);
}

TEST(UtilizationTracker, MultiUnitCapacity) {
  UtilizationTracker u(4.0);  // e.g. 4 cores
  u.set_active(0.0, 2.0);
  u.set_active(10.0, 4.0);
  u.set_active(20.0, 0.0);
  EXPECT_NEAR(u.utilization(0.0, 20.0), (2.0 * 10 + 4.0 * 10) / (4.0 * 20), 1e-12);
}

TEST(UtilizationTracker, HistoricalWindowQueries) {
  UtilizationTracker u(1.0);
  u.set_active(1.0, 1.0);
  u.set_active(2.0, 0.0);
  u.set_active(4.0, 1.0);
  u.set_active(6.0, 0.0);
  // Query an old window after later updates.
  EXPECT_NEAR(u.utilization(0.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(u.utilization(4.0, 6.0), 1.0, 1e-12);
  EXPECT_NEAR(u.utilization(0.0, 6.0), 3.0 / 6.0, 1e-12);
}

TEST(UtilizationTracker, IntegralExtrapolatesLastState) {
  UtilizationTracker u(1.0);
  u.set_active(0.0, 1.0);
  EXPECT_NEAR(u.integral_at(7.0), 7.0, 1e-12);
}

}  // namespace
}  // namespace saex::metrics

namespace saex::metrics {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, BasicMomentsExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(Histogram, QuantilesWithinBucketError) {
  Histogram h(1e-3, 1.1);
  for (int i = 1; i <= 1000; ++i) h.add(i * 0.01);  // uniform 0.01..10
  // p50 ~ 5.0, p95 ~ 9.5, within one growth factor.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 5.0 * 0.12);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 9.5 * 0.12);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  h.add(7.3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.3);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.3);
}

TEST(Histogram, MergeMatchesCombined) {
  Histogram a(1e-3, 1.2), b(1e-3, 1.2), all(1e-3, 1.2);
  for (int i = 1; i <= 50; ++i) {
    a.add(i * 0.1);
    all.add(i * 0.1);
  }
  for (int i = 1; i <= 80; ++i) {
    b.add(i * 0.03);
    all.add(i * 0.03);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, ZeroAndNegativeClampToFirstBucket) {
  Histogram h;
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

}  // namespace
}  // namespace saex::metrics
