#include <gtest/gtest.h>

#include <vector>

#include "hw/network.h"
#include "sim/simulation.h"

namespace saex::hw {
namespace {

NetworkParams small_net() {
  NetworkParams p;
  p.up_bw = 100e6;
  p.down_bw = 100e6;
  p.incast_src_threshold = 4;
  p.incast_flow_threshold = 4;
  p.incast_coeff = 0.1;
  p.per_flow_cap = 1e12;  // uncapped: these tests exercise link sharing
  p.latency = 0.0001;
  return p;
}

TEST(Network, SingleFlowRunsAtLinkRate) {
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  bool done = false;
  net.transfer(0, 1, static_cast<Bytes>(100e6), [&] { done = true; });
  const double end = sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(end, 1.0, 0.01);  // 100 MB at 100 MB/s (+latency)
}

TEST(Network, UplinkSharedBetweenFlows) {
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  int done = 0;
  // Two flows from node 0 to distinct destinations: each gets half the up bw.
  net.transfer(0, 1, static_cast<Bytes>(50e6), [&] { ++done; });
  net.transfer(0, 2, static_cast<Bytes>(50e6), [&] { ++done; });
  const double end = sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(end, 1.0, 0.02);
}

TEST(Network, DisjointPairsDoNotInterfere) {
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  int done = 0;
  net.transfer(0, 1, static_cast<Bytes>(100e6), [&] { ++done; });
  net.transfer(2, 3, static_cast<Bytes>(100e6), [&] { ++done; });
  const double end = sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(end, 1.0, 0.02);
}

TEST(Network, IncastPenaltyNeedsBothSendersAndConcurrency) {
  sim::Simulation sim;
  Network net(sim, 16, small_net());
  // Below either threshold: full capacity.
  EXPECT_DOUBLE_EQ(net.down_capacity_eff(4, 100), 100e6);
  EXPECT_DOUBLE_EQ(net.down_capacity_eff(100, 4), 100e6);
  // Beyond both: collapse, monotone in each factor.
  EXPECT_LT(net.down_capacity_eff(10, 10), 100e6);
  EXPECT_LT(net.down_capacity_eff(14, 10), net.down_capacity_eff(10, 10));
  EXPECT_LT(net.down_capacity_eff(10, 20), net.down_capacity_eff(10, 10));
}

TEST(Network, FetchRegistrationCountsSendersAndRequests) {
  sim::Simulation sim;
  Network net(sim, 8, small_net());
  net.register_fetch(1, 0);
  net.register_fetch(1, 0);
  net.register_fetch(2, 0);
  EXPECT_EQ(net.fetches_to(0), 3);
  EXPECT_EQ(net.senders_to(0), 2);
  net.unregister_fetch(1, 0);
  net.unregister_fetch(1, 0);
  EXPECT_EQ(net.senders_to(0), 1);
  net.unregister_fetch(2, 0);
  EXPECT_EQ(net.fetches_to(0), 0);
}

TEST(Network, ManyToOneSlowerThanAggregateBandwidthSuggests) {
  // 12 sources -> 1 destination with threshold 4: incast inflates completion
  // beyond the no-penalty bound of total_bytes/down_bw.
  sim::Simulation sim;
  Network net(sim, 16, small_net());
  int done = 0;
  const Bytes each = static_cast<Bytes>(10e6);
  for (int src = 1; src <= 12; ++src) {
    net.transfer(src, 0, each, [&] { ++done; });
  }
  const double end = sim.run();
  EXPECT_EQ(done, 12);
  const double ideal = 12.0 * 10e6 / 100e6;  // 1.2 s without penalty
  EXPECT_GT(end, ideal * 1.3);
}

TEST(Network, FlowCountersTrackActiveFlows) {
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  net.transfer(0, 1, static_cast<Bytes>(1e6), [] {});
  net.transfer(0, 2, static_cast<Bytes>(1e6), [] {});
  sim.run_until(0.001);
  EXPECT_EQ(net.flows_from(0), 2);
  EXPECT_EQ(net.flows_to(1), 1);
  EXPECT_EQ(net.active_flows(), 2);
  sim.run();
  EXPECT_EQ(net.active_flows(), 0);
  EXPECT_EQ(net.flows_from(0), 0);
}

TEST(Network, BytesAccounting) {
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  net.transfer(0, 1, 1000, [] {});
  net.transfer(2, 1, 500, [] {});
  sim.run();
  EXPECT_EQ(net.bytes_sent(0), 1000);
  EXPECT_EQ(net.bytes_sent(2), 500);
  EXPECT_EQ(net.total_bytes(), 1500);
}

TEST(Network, PerFlowCapLimitsSingleStream) {
  NetworkParams p = small_net();
  p.per_flow_cap = 10e6;  // a lone stream cannot saturate the 100 MB/s link
  sim::Simulation sim;
  Network net(sim, 4, p);
  bool done = false;
  net.transfer(0, 1, static_cast<Bytes>(10e6), [&] { done = true; });
  const double end = sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(end, 1.0, 0.02);  // 10 MB at 10 MB/s, not at 100 MB/s
}

TEST(Network, ManyFlowsStillFillTheLink) {
  NetworkParams p = small_net();
  p.per_flow_cap = 10e6;
  p.incast_src_threshold = 16;  // below the knee: pure aggregation
  sim::Simulation sim;
  Network net(sim, 16, p);
  int done = 0;
  // 10 sources to one sink: 10 x 10 MB/s = link rate 100 MB/s.
  for (int src = 1; src <= 10; ++src) {
    net.transfer(src, 0, static_cast<Bytes>(10e6), [&] { ++done; });
  }
  const double end = sim.run();
  EXPECT_EQ(done, 10);
  EXPECT_NEAR(end, 1.0, 0.05);
}

TEST(Network, ZeroByteTransferCompletes) {
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  bool done = false;
  net.transfer(0, 1, 0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Network, StaggeredArrivalsAdjustRates) {
  // Second flow arrives halfway through the first; the first must slow down
  // and finish later than it would alone.
  sim::Simulation sim;
  Network net(sim, 4, small_net());
  double first_done = -1;
  net.transfer(0, 1, static_cast<Bytes>(100e6), [&] { first_done = sim.now(); });
  sim.schedule_at(0.5, [&] {
    net.transfer(0, 2, static_cast<Bytes>(100e6), [] {});
  });
  sim.run();
  EXPECT_GT(first_done, 1.2);  // alone it would finish at ~1.0
}

}  // namespace
}  // namespace saex::hw
