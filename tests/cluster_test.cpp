#include <gtest/gtest.h>

#include <set>

#include "hw/cluster.h"

namespace saex::hw {
namespace {

TEST(Cluster, BuildsRequestedTopology) {
  Cluster c(ClusterSpec::das5(4));
  EXPECT_EQ(c.size(), 4);
  EXPECT_EQ(c.node(0).cpu().cores(), 32);
  EXPECT_EQ(c.node(0).memory().capacity(), gib(56));
  EXPECT_EQ(c.node(0).hostname(), "node303");
  EXPECT_EQ(c.node(3).hostname(), "node306");
}

TEST(Cluster, SsdSpecUsesSsdDisks) {
  Cluster c(ClusterSpec::das5_ssd(2));
  EXPECT_GT(c.node(0).disk().params().base_bw, 400e6);
  EXPECT_GT(c.node(0).disk().params().write_cost_factor, 1.2);
}

TEST(Cluster, HeterogeneityIsDeterministicInSeed) {
  ClusterSpec spec = ClusterSpec::das5(8);
  spec.seed = 99;
  Cluster a(spec), b(spec);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.node(i).disk_speed_factor(), b.node(i).disk_speed_factor());
  }
  spec.seed = 100;
  Cluster c(spec);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    any_diff |= a.node(i).disk_speed_factor() != c.node(i).disk_speed_factor();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cluster, DiskSpeedFactorsVaryAcrossNodes) {
  ClusterSpec spec = ClusterSpec::das5(44);  // Fig. 3 population size
  Cluster c(spec);
  std::set<double> factors;
  double lo = 1e9, hi = 0;
  for (int i = 0; i < c.size(); ++i) {
    const double f = c.node(i).disk_speed_factor();
    factors.insert(f);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_GT(factors.size(), 30u);  // essentially all distinct
  EXPECT_GT(hi / lo, 1.15);        // visible spread, as in Fig. 3
}

TEST(MemoryPool, ReserveAndRelease) {
  MemoryPool m(1000);
  EXPECT_EQ(m.reserve_up_to(600), 600);
  EXPECT_EQ(m.available(), 400);
  EXPECT_EQ(m.reserve_up_to(600), 400);  // partial grant
  EXPECT_EQ(m.available(), 0);
  m.release(500);
  EXPECT_EQ(m.used(), 500);
  m.release(10000);  // over-release clamps
  EXPECT_EQ(m.used(), 0);
}

TEST(Cluster, TotalDiskBytesAggregates) {
  Cluster c(ClusterSpec::das5(2));
  bool done = false;
  c.node(0).disk().submit(mib(3), false, [] {});
  c.node(1).disk().submit(mib(2), true, [&] { done = true; });
  c.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.total_disk_bytes(), mib(5));
}

}  // namespace
}  // namespace saex::hw
