// saex::aqe: slice-aware fetch-plan exactness, the coalesce/split planner,
// the per-stage tuner, and the engine-level guarantees — AQE off is
// bitwise-identical to the legacy path, AQE on is deterministic (including
// under the sharded serve path), and the re-plan actually pays on the skew
// and tiny-partition shapes.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "aqe/aqe.h"
#include "aqe/tuner.h"
#include "conf/config.h"
#include "engine/shuffle.h"
#include "serve/job_server.h"
#include "shard/sharded_server.h"
#include "workloads/workloads.h"

namespace saex {
namespace {

using engine::ReduceSlice;
using engine::ShuffleManager;

// ---------- fetch-plan slices (the exactness AQE depends on) ----------

ShuffleManager make_manager(int nodes, int maps, double skew = 0.0) {
  ShuffleManager sm(nodes);
  if (skew > 0.0) sm.set_reduce_skew(0, skew);
  // Uneven map outputs across nodes so remainder handling is exercised.
  for (int m = 0; m < maps; ++m) {
    sm.register_map_output(0, m % nodes, m, mib(7) + m * 1337);
  }
  return sm;
}

Bytes plan_total(const std::vector<Bytes>& plan) {
  return std::accumulate(plan.begin(), plan.end(), Bytes{0});
}

TEST(AqeFetchPlan, TrivialSliceMatchesLegacyPlan) {
  for (const double skew : {0.0, 1.2}) {
    const ShuffleManager sm = make_manager(4, 13, skew);
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(sm.fetch_plan_slice(0, p, p, 0, 1, 8), sm.fetch_plan(0, p, 8))
          << "skew " << skew << " partition " << p;
    }
  }
}

TEST(AqeFetchPlan, RangeSliceSumsItsPartitions) {
  for (const double skew : {0.0, 1.2}) {
    const ShuffleManager sm = make_manager(4, 13, skew);
    const std::vector<Bytes> merged = sm.fetch_plan_slice(0, 2, 5, 0, 1, 8);
    std::vector<Bytes> expect(4, 0);
    for (int p = 2; p <= 5; ++p) {
      const std::vector<Bytes> one = sm.fetch_plan(0, p, 8);
      for (size_t n = 0; n < one.size(); ++n) expect[n] += one[n];
    }
    EXPECT_EQ(merged, expect) << "skew " << skew;
  }
}

TEST(AqeFetchPlan, SubSplitsReassembleTheirPartitionExactly) {
  for (const double skew : {0.0, 1.2}) {
    const ShuffleManager sm = make_manager(4, 13, skew);
    const std::vector<Bytes> whole = sm.fetch_plan(0, 3, 8);
    std::vector<Bytes> sum(4, 0);
    for (int j = 0; j < 5; ++j) {
      const std::vector<Bytes> part = sm.fetch_plan_slice(0, 3, 3, j, 5, 8);
      for (size_t n = 0; n < part.size(); ++n) sum[n] += part[n];
    }
    EXPECT_EQ(sum, whole) << "skew " << skew;
  }
}

TEST(AqeFetchPlan, FullTilingConservesTotalOutput) {
  const ShuffleManager sm = make_manager(4, 16, 1.2);
  // [0,2] merged, 3 split x3, [4,7] merged — a full tiling of R = 8.
  Bytes covered = plan_total(sm.fetch_plan_slice(0, 0, 2, 0, 1, 8)) +
                  plan_total(sm.fetch_plan_slice(0, 4, 7, 0, 1, 8));
  for (int j = 0; j < 3; ++j) {
    covered += plan_total(sm.fetch_plan_slice(0, 3, 3, j, 3, 8));
  }
  EXPECT_EQ(covered, sm.total_output(0));
}

TEST(AqeFetchPlan, ReducePartitionBytesMatchesPerPartitionPlans) {
  for (const double skew : {0.0, 1.4}) {
    const ShuffleManager sm = make_manager(4, 13, skew);
    const std::vector<Bytes> stats = sm.reduce_partition_bytes(0, 8);
    ASSERT_EQ(stats.size(), 8u);
    for (int p = 0; p < 8; ++p) {
      EXPECT_EQ(stats[static_cast<size_t>(p)],
                plan_total(sm.fetch_plan(0, p, 8)))
          << "skew " << skew << " partition " << p;
    }
  }
}

// Satellite: the stats accessors are a pure function of the committed
// outputs — two identical replays expose identical statistics.
TEST(AqeFetchPlan, StatsAreStableAcrossIdenticalReplays) {
  const ShuffleManager a = make_manager(4, 13, 1.2);
  const ShuffleManager b = make_manager(4, 13, 1.2);
  EXPECT_EQ(a.reduce_partition_bytes(0, 8), b.reduce_partition_bytes(0, 8));
  EXPECT_EQ(a.map_partition_bytes(0), b.map_partition_bytes(0));
  EXPECT_EQ(a.total_output(0), b.total_output(0));
}

TEST(AqeFetchPlan, MapPartitionBytesExposesCommits) {
  ShuffleManager sm(2);
  sm.register_map_output(0, 0, 0, 100);
  sm.register_map_output(0, 1, 2, 300);
  const std::vector<Bytes> stats = sm.map_partition_bytes(0);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0], 100);
  EXPECT_EQ(stats[1], 0);  // uncommitted
  EXPECT_EQ(stats[2], 300);
}

// ---------- the coalesce/split planner ----------

TEST(AqePlanner, CoalescesTinyPartitionsToTarget) {
  aqe::AqeOptions opt;
  opt.target_partition_bytes = mib(8);
  const std::vector<Bytes> bytes(64, mib(1));
  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  EXPECT_FALSE(plan.identity);
  ASSERT_EQ(plan.slices.size(), 8u);
  for (const ReduceSlice& s : plan.slices) {
    EXPECT_EQ(s.last - s.first + 1, 8);
    EXPECT_EQ(s.num_splits, 1);
  }
  EXPECT_EQ(plan.split_partitions, 0);
  EXPECT_EQ(plan.merged_partitions, 56);
}

TEST(AqePlanner, SplitsTheSkewedPartition) {
  aqe::AqeOptions opt;
  opt.target_partition_bytes = mib(16);
  opt.skew_factor = 4.0;
  std::vector<Bytes> bytes(64, mib(1));
  bytes[10] = mib(100);  // 100x the median, well over 4x
  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  EXPECT_FALSE(plan.identity);
  EXPECT_EQ(plan.split_partitions, 1);
  int sub_tasks = 0;
  for (const ReduceSlice& s : plan.slices) {
    if (s.first == 10 && s.last == 10) {
      EXPECT_EQ(s.num_splits, 7);  // ceil(100 MiB / 16 MiB)
      ++sub_tasks;
    }
  }
  EXPECT_EQ(sub_tasks, 7);
}

TEST(AqePlanner, SplitCountIsCappedByMaxSplits) {
  aqe::AqeOptions opt;
  opt.target_partition_bytes = mib(1);
  opt.max_splits = 4;
  std::vector<Bytes> bytes(16, mib(1) / 2);
  bytes[0] = mib(100);
  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  int subs = 0;
  for (const ReduceSlice& s : plan.slices) {
    if (s.first == 0) {
      EXPECT_EQ(s.num_splits, 4);
      ++subs;
    }
  }
  EXPECT_EQ(subs, 4);
}

TEST(AqePlanner, EvenPartitionsAtTargetAreIdentity) {
  aqe::AqeOptions opt;
  opt.target_partition_bytes = mib(64);
  const std::vector<Bytes> bytes(32, mib(64));
  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  EXPECT_TRUE(plan.identity);
  EXPECT_EQ(plan.slices.size(), 32u);
  EXPECT_EQ(plan.merged_partitions, 0);
  EXPECT_EQ(plan.split_partitions, 0);
}

TEST(AqePlanner, MinPartitionsCapsTheEffectiveTarget) {
  aqe::AqeOptions opt;
  opt.target_partition_bytes = mib(64);
  opt.min_partitions = 8;
  const std::vector<Bytes> bytes(64, mib(1));  // total 64 MiB
  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  // Without the cap everything would collapse into one 64 MiB task; the
  // floor keeps at least 8 tasks alive.
  EXPECT_GE(plan.slices.size(), 8u);
}

TEST(AqePlanner, TinyUniformStageIsNotSplit) {
  // Median ~0: the skew threshold alone would split everything; the
  // target-bytes clause must keep tiny uniform partitions split-free.
  aqe::AqeOptions opt;
  std::vector<Bytes> bytes(64, 1024);
  bytes[5] = 64 * 1024;  // 64x median but far below the 64 MiB target
  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  EXPECT_EQ(plan.split_partitions, 0);
}

TEST(AqeOptions, ValidatesConfigKeys) {
  conf::Config good;
  const aqe::AqeOptions opt = aqe::AqeOptions::from_config(good);
  EXPECT_FALSE(opt.enabled);
  EXPECT_EQ(opt.target_partition_bytes, 64 * kMiB);
  EXPECT_EQ(opt.min_partitions, 0);

  conf::Config bad_target;
  bad_target.set("saex.aqe.targetPartitionBytes", "0");
  EXPECT_THROW(aqe::AqeOptions::from_config(bad_target), conf::ConfigError);

  conf::Config bad_skew;
  bad_skew.set_double("saex.aqe.skewFactor", 0.5);
  EXPECT_THROW(aqe::AqeOptions::from_config(bad_skew), conf::ConfigError);

  conf::Config bad_splits;
  bad_splits.set_int("saex.aqe.maxSplits", 0);
  EXPECT_THROW(aqe::AqeOptions::from_config(bad_splits), conf::ConfigError);

  conf::Config bad_min;
  bad_min.set_int("saex.aqe.minPartitions", -1);
  EXPECT_THROW(aqe::AqeOptions::from_config(bad_min), conf::ConfigError);
}

// ---------- the per-stage tuner ----------

TEST(AqeTuner, RecoversAPlantedCostModel) {
  aqe::StageTuner tuner;
  aqe::StageObservation obs;
  for (int i = 1; i <= 8; ++i) {
    const Bytes b = i * mib(8);
    obs.bytes.push_back(b);
    obs.durations.push_back(0.5 + 2e-8 * static_cast<double>(b));
  }
  obs.pool_size = 8;
  obs.makespan = 10.0;
  obs.total_bytes = 8 * mib(8);
  tuner.observe_stage(obs);
  ASSERT_TRUE(tuner.ready());
  EXPECT_NEAR(tuner.fixed_cost(), 0.5, 1e-6);
  EXPECT_NEAR(tuner.per_byte(), 2e-8, 1e-12);
}

TEST(AqeTuner, HigherFixedCostPrefersLargerTargets) {
  const auto fit = [](double fixed) {
    aqe::StageTuner tuner;
    aqe::StageObservation obs;
    for (int i = 1; i <= 8; ++i) {
      const Bytes b = i * mib(8);
      obs.bytes.push_back(b);
      obs.durations.push_back(fixed + 1e-8 * static_cast<double>(b));
    }
    obs.pool_size = 8;
    obs.makespan = 10.0;
    obs.total_bytes = 8 * mib(8);
    tuner.observe_stage(obs);
    return tuner.choose_target(gib(64), /*slots=*/128, /*fallback=*/mib(64));
  };
  EXPECT_GE(fit(5.0), fit(0.001));
}

TEST(AqeTuner, NotReadyFallsBackAndHintsCurrentPool) {
  const aqe::StageTuner tuner;
  EXPECT_FALSE(tuner.ready());
  EXPECT_EQ(tuner.choose_target(gib(1), 128, mib(32)), mib(32));
  EXPECT_EQ(tuner.choose_pool_hint(16), 16);
}

TEST(AqeTuner, PoolHintExploresAroundTheBestObserved) {
  aqe::StageTuner tuner;
  aqe::StageObservation obs;
  obs.bytes = {mib(1), mib(2)};
  obs.durations = {1.0, 2.0};
  obs.pool_size = 8;
  obs.makespan = 4.0;
  obs.total_bytes = gib(1);
  tuner.observe_stage(obs);
  // Only pool 8 has been observed: the hint explores one step up.
  EXPECT_EQ(tuner.choose_pool_hint(8), 9);
}

// ---------- engine-level guarantees ----------

engine::JobReport run_sized(const workloads::WorkloadSpec& spec,
                            conf::Config config) {
  hw::ClusterSpec cs = hw::ClusterSpec::das5(4);
  cs.seed = 42;
  hw::Cluster cluster(cs);
  return workloads::run(spec, cluster, std::move(config));
}

std::string render(const engine::JobReport& r) {
  return r.render() + "\n" + r.to_csv();
}

conf::Config aqe_config(bool tuner = false) {
  conf::Config c;
  c.set_bool("saex.aqe.enabled", true);
  if (tuner) c.set_bool("saex.aqe.tuner", true);
  return c;
}

// AQE off (the default) stays bitwise-identical whether the keys are absent
// or explicitly disabled, across the whole preset catalogue at test sizes.
TEST(AqeGolden, ExplicitOffMatchesAbsentKeysOnEveryPreset) {
  std::vector<workloads::WorkloadSpec> presets = {
      workloads::terasort(gib(4)),   workloads::pagerank(gib(1), 2),
      workloads::aggregation(gib(2)), workloads::join(gib(2)),
      workloads::scan(gib(2)),        workloads::bayes(gib(1)),
      workloads::lda(gib(0.25)),      workloads::nweight(gib(0.25)),
      workloads::svm(gib(4)),         workloads::wordcount(gib(2)),
      workloads::sort(gib(2)),        workloads::kmeans(gib(2), 2),
  };
  for (const auto& spec : presets) {
    const std::string base = render(run_sized(spec, conf::Config{}));
    conf::Config off;
    off.set_bool("saex.aqe.enabled", false);
    EXPECT_EQ(render(run_sized(spec, std::move(off))), base) << spec.name;
  }
}

TEST(AqeGolden, UniformShapeIsIdentityEvenWithAqeOn) {
  const workloads::WorkloadSpec spec = workloads::sort(gib(2));
  const std::string off = render(run_sized(spec, conf::Config{}));
  const std::string on = render(run_sized(spec, aqe_config()));
  EXPECT_EQ(on, off);
}

TEST(AqeGolden, AqeOnRunsAreDeterministic) {
  const workloads::WorkloadSpec spec = workloads::skewshuffle(gib(2), 64, 1.2);
  const std::string first = render(run_sized(spec, aqe_config(true)));
  const std::string second = render(run_sized(spec, aqe_config(true)));
  EXPECT_EQ(first, second);
}

TEST(AqeEndToEnd, SkewSplittingBeatsBaselineByAQuarter) {
  const workloads::WorkloadSpec spec = workloads::skewshuffle(gib(2), 64, 1.2);
  const double off = run_sized(spec, conf::Config{}).total_runtime;
  const double on = run_sized(spec, aqe_config()).total_runtime;
  EXPECT_LE(on, 0.75 * off) << "off " << off << "s vs aqe " << on << "s";
}

TEST(AqeEndToEnd, CoalescingBeatsDynamicBaselineOnTinyPartitions) {
  const workloads::WorkloadSpec spec = workloads::tinyparts(gib(2), 8192);
  conf::Config dyn;
  dyn.set("saex.executor.policy", "dynamic");
  const double off = run_sized(spec, std::move(dyn)).total_runtime;
  conf::Config dyn_aqe = aqe_config();
  dyn_aqe.set("saex.executor.policy", "dynamic");
  const double on = run_sized(spec, std::move(dyn_aqe)).total_runtime;
  EXPECT_LE(on, 0.85 * off) << "off " << off << "s vs aqe " << on << "s";
}

TEST(AqeEndToEnd, ReplanShrinksTinyStageTaskCount) {
  const workloads::WorkloadSpec spec = workloads::tinyparts(gib(2), 8192);
  const engine::JobReport off = run_sized(spec, conf::Config{});
  const engine::JobReport on = run_sized(spec, aqe_config());
  ASSERT_EQ(off.stages.size(), on.stages.size());
  // The reduce stage collapses from 8192 micro-tasks to O(parallelism).
  EXPECT_EQ(off.stages.back().num_tasks, 8192);
  EXPECT_LT(on.stages.back().num_tasks, 1024);
  EXPECT_GE(on.stages.back().num_tasks, 128);
}

// ---------- sharded serve path with AQE on ----------

conf::Config shard_aqe_config(int shards, int workers) {
  conf::Config c;
  c.set("spark.default.parallelism", "64");
  c.set_int("saex.shard.count", shards);
  c.set_int("saex.shard.workers", workers);
  c.set_bool("saex.aqe.enabled", true);
  return c;
}

serve::TraceOptions aqe_trace(uint64_t seed = 7) {
  serve::TraceOptions t;
  t.num_jobs = 12;
  t.mean_interarrival = 1.0;
  t.num_clients = 6;
  t.seed = seed;
  t.small_input = mib(256);
  t.big_input = mib(512);
  t.dim_input = mib(128);
  return t;
}

std::string sharded_aqe_render(int shards, int workers,
                               const serve::TraceOptions& t) {
  hw::ClusterSpec spec = hw::ClusterSpec::das5(8);
  spec.seed = 42;
  shard::ShardedServer server(spec, shard_aqe_config(shards, workers));
  const shard::ShardedServeReport report =
      server.replay(serve::make_trace(t), t);
  return report.merged.render() + "\n" + report.render_jobs();
}

TEST(AqeSharded, WorkerCountDoesNotChangeTheMergedReport) {
  const serve::TraceOptions t = aqe_trace();
  const std::string w1 = sharded_aqe_render(4, 1, t);
  const std::string w2 = sharded_aqe_render(4, 2, t);
  const std::string w4 = sharded_aqe_render(4, 4, t);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w4);
}

TEST(AqeSharded, OneShardMatchesSerialJobServerWithAqe) {
  const serve::TraceOptions t = aqe_trace(11);
  conf::Config serial_config;
  serial_config.set("spark.default.parallelism", "64");
  serial_config.set_bool("saex.aqe.enabled", true);
  hw::ClusterSpec spec = hw::ClusterSpec::das5(8);
  spec.seed = 42;
  hw::Cluster cluster(spec);
  engine::SparkContext ctx(cluster, serial_config);
  serve::JobServer server(ctx);
  const serve::ServeReport serial = server.replay(serve::make_trace(t), t);

  EXPECT_EQ(sharded_aqe_render(1, 1, t),
            serial.render() + "\n" + serial.render_jobs());
}

}  // namespace
}  // namespace saex
