// SparkContext end-to-end: job execution, reports, policies, determinism.
#include <gtest/gtest.h>

#include "engine/context.h"

namespace saex::engine {
namespace {

conf::Config small_config() {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  return c;
}

struct ContextRig {
  explicit ContextRig(conf::Config config = small_config(), int nodes = 4,
                      uint64_t seed = 42)
      : spec([&] {
          hw::ClusterSpec s = hw::ClusterSpec::das5(nodes);
          s.seed = seed;
          return s;
        }()),
        cluster(spec),
        ctx(cluster, std::move(config)) {}

  hw::ClusterSpec spec;
  hw::Cluster cluster;
  SparkContext ctx;
};

TEST(SparkContext, RunsSingleStageJob) {
  ContextRig rig;
  rig.ctx.dfs().load_input("/in", gib(1), 4);
  const Rdd out = rig.ctx.text_file("/in").map("m", {0.01, 1.0}).count();
  const JobReport report = rig.ctx.run_job(out, "tiny");

  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(report.app_name, "tiny");
  EXPECT_GT(report.total_runtime, 0.0);
  EXPECT_EQ(report.input_bytes, gib(1));
  EXPECT_EQ(report.stages[0].num_tasks, 8);
  EXPECT_EQ(report.stages[0].disk_read, gib(1));
  EXPECT_EQ(report.stages[0].disk_written, 0);
  EXPECT_GT(report.stages[0].disk_utilization, 0.0);
  EXPECT_EQ(report.stages[0].threads_total, 4 * 32);  // default policy
}

TEST(SparkContext, ShuffleBytesConserved) {
  ContextRig rig;
  rig.ctx.dfs().load_input("/in", gib(1), 4);
  const Rdd out = rig.ctx.text_file("/in")
                      .reduce_by_key("g", {0.01, 1.0}, 0.5, 0,
                                     ShuffleTraits{0.0, 1.0})
                      .count();
  const JobReport report = rig.ctx.run_job(out);
  ASSERT_EQ(report.stages.size(), 2u);

  // Everything the map stage wrote is fetched by the reduce stage.
  EXPECT_EQ(rig.ctx.shuffles().total_output(0), gib(0.5));
  Bytes fetched = 0;
  for (const auto& es : report.stages[1].executors) fetched += es.io_bytes;
  EXPECT_NEAR(static_cast<double>(fetched), static_cast<double>(gib(0.5)),
              static_cast<double>(gib(0.5)) * 0.2);  // page-cache slice is free
}

TEST(SparkContext, OutputFileRegisteredInDfs) {
  ContextRig rig;
  rig.ctx.dfs().load_input("/in", mib(256), 4);
  const Rdd out =
      rig.ctx.text_file("/in").map("m", {0.0, 0.5}).save_as_text_file("/out");
  (void)rig.ctx.run_job(out);
  const dfs::FileInfo* f = rig.ctx.dfs().lookup("/out");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->size, mib(128));
}

TEST(SparkContext, DeterministicAcrossRuns) {
  auto run_once = [] {
    ContextRig rig;
    rig.ctx.dfs().load_input("/in", gib(2), 4);
    const Rdd out = rig.ctx.text_file("/in")
                        .reduce_by_key("g", {0.02, 1.0}, 1.0)
                        .save_as_text_file("/out");
    return rig.ctx.run_job(out).total_runtime;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SparkContext, SeedChangesHeterogeneityAndRuntime) {
  auto run_seed = [](uint64_t seed) {
    ContextRig rig(small_config(), 4, seed);
    rig.ctx.dfs().load_input("/in", gib(2), 4);
    const Rdd out = rig.ctx.text_file("/in").count();
    return rig.ctx.run_job(out).total_runtime;
  };
  EXPECT_NE(run_seed(1), run_seed(2));
}

TEST(SparkContext, StaticPolicyFromConfig) {
  conf::Config config = small_config();
  config.set("saex.executor.policy", "static");
  config.set_int("saex.static.ioThreads", 8);
  ContextRig rig(std::move(config));
  rig.ctx.dfs().load_input("/in", gib(1), 4);

  const Rdd out = rig.ctx.text_file("/in")
                      .reduce_by_key("g", {0.01, 1.0}, 1.0, 0,
                                     ShuffleTraits{0.0, 1.0})
                      .count();
  const JobReport report = rig.ctx.run_job(out);
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.policy_name, "static");
  // Stage 0 reads the DFS (I/O-tagged) -> 8 threads per executor.
  EXPECT_EQ(report.stages[0].threads_total, 4 * 8);
  // Stage 1 is a pure shuffle->driver stage: default threads.
  EXPECT_EQ(report.stages[1].threads_total, 4 * 32);
}

TEST(SparkContext, DynamicPolicyTunesAndReports) {
  conf::Config config;  // full default parallelism for enough tasks
  config.set("saex.executor.policy", "dynamic");
  ContextRig rig(std::move(config));
  rig.ctx.dfs().load_input("/in", gib(8), 4);

  const Rdd out = rig.ctx.text_file("/in").save_as_text_file("/copy");
  const JobReport report = rig.ctx.run_job(out);
  EXPECT_EQ(report.policy_name, "dynamic");
  // The controller settled somewhere within [c_min, c_max] on each executor.
  for (const auto& es : report.stages[0].executors) {
    EXPECT_GE(es.threads_settled, 2);
    EXPECT_LE(es.threads_settled, 32);
  }
  // Knowledge base recorded intervals for the stage.
  const auto* ctrl = rig.ctx.executor(0).policy().controller();
  ASSERT_NE(ctrl, nullptr);
  EXPECT_FALSE(ctrl->knowledge().stages().empty());
}

TEST(SparkContext, CustomPolicyFactoryInstalls) {
  ContextRig rig;
  rig.ctx.set_policy_factory([](adaptive::Sensor&, adaptive::PoolEffector& pool,
                                adaptive::SchedulerNotifier notifier, int) {
    return std::make_unique<adaptive::PerStagePolicy>(
        pool, std::move(notifier), std::map<int, int>{{0, 4}}, 32);
  });
  rig.ctx.dfs().load_input("/in", gib(1), 4);
  const Rdd out = rig.ctx.text_file("/in").count();
  const JobReport report = rig.ctx.run_job(out);
  EXPECT_EQ(report.stages[0].threads_total, 4 * 4);
  EXPECT_EQ(report.policy_name, "per-stage");
}

TEST(SparkContext, UnknownPolicyThrows) {
  conf::Config config;
  config.set("saex.executor.policy", "wizard");
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  EXPECT_THROW(SparkContext(cluster, std::move(config)), conf::ConfigError);
}

TEST(SparkContext, MultiJobStageOrdinalsContinue) {
  conf::Config config = small_config();
  config.set("saex.executor.policy", "static");
  config.set_int("saex.static.ioThreads", 4);
  ContextRig rig(std::move(config));
  rig.ctx.dfs().load_input("/in", gib(1), 4);

  (void)rig.ctx.run_job(rig.ctx.text_file("/in").count(), "job1");
  // Second job: its first stage is application-stage 1, not 0. A PerStage
  // policy keyed on ordinal 1 must fire (verified via the static policy's
  // I/O tagging instead: both stages are tagged, both get 4 threads).
  const JobReport r2 = rig.ctx.run_job(rig.ctx.text_file("/in").count(), "job2");
  EXPECT_EQ(r2.stages[0].threads_total, 4 * 4);
}

TEST(SparkContext, ReportRenderContainsStages) {
  ContextRig rig;
  rig.ctx.dfs().load_input("/in", mib(256), 4);
  const JobReport report = rig.ctx.run_job(rig.ctx.text_file("/in").count());
  const std::string text = report.render();
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("textFile(/in)"), std::string::npos);
  EXPECT_NE(text.find("runtime"), std::string::npos);
}

TEST(SparkContext, IowaitBoundedByIdleFraction) {
  ContextRig rig;
  rig.ctx.dfs().load_input("/in", gib(4), 4);
  const JobReport report = rig.ctx.run_job(rig.ctx.text_file("/in").count());
  for (const auto& s : report.stages) {
    EXPECT_GE(s.iowait_fraction, 0.0);
    EXPECT_LE(s.iowait_fraction + s.cpu_utilization, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace saex::engine
