// saex::serve: admission control, FAIR/FIFO arbitration, dynamic executor
// allocation, slot-accounting invariants, and replay determinism.
#include <gtest/gtest.h>

#include <map>

#include "common/format.h"
#include "serve/job_server.h"
#include "serve/trace.h"

namespace saex::serve {
namespace {

using engine::Rdd;
using engine::SchedulingMode;
using engine::SparkContext;

conf::Config serve_config() {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  return c;
}

struct ServeRig {
  explicit ServeRig(conf::Config config = serve_config(), int nodes = 4,
                    uint64_t seed = 42)
      : spec([&] {
          hw::ClusterSpec s = hw::ClusterSpec::das5(nodes);
          s.seed = seed;
          return s;
        }()),
        cluster(spec),
        ctx(cluster, std::move(config)) {}

  hw::ClusterSpec spec;
  hw::Cluster cluster;
  SparkContext ctx;
};

TraceOptions small_trace_options(uint64_t seed = 7) {
  TraceOptions t;
  t.num_jobs = 12;
  t.mean_interarrival = 1.0;
  t.seed = seed;
  t.small_input = mib(256);
  t.big_input = mib(512);
  t.dim_input = mib(128);
  return t;
}

// ---------- pool-definition parsing ----------

TEST(ParsePools, ParsesWeightAndMinShare) {
  const auto pools = parse_pools("interactive:3:32,batch:1:0,plain");
  ASSERT_EQ(pools.size(), 3u);
  EXPECT_EQ(pools[0].name, "interactive");
  EXPECT_EQ(pools[0].weight, 3);
  EXPECT_EQ(pools[0].min_share, 32);
  EXPECT_EQ(pools[1].name, "batch");
  EXPECT_EQ(pools[2].name, "plain");
  EXPECT_EQ(pools[2].weight, 1);
  EXPECT_EQ(pools[2].min_share, 0);
}

TEST(ParsePools, RejectsMalformedEntries) {
  EXPECT_THROW(parse_pools("interactive:x"), conf::ConfigError);
  EXPECT_THROW(parse_pools("interactive:0:1"), conf::ConfigError);
  EXPECT_THROW(parse_pools(":2:1"), conf::ConfigError);
  EXPECT_TRUE(parse_pools("").empty());
}

TEST(JobServerOptions, ReadsConfig) {
  conf::Config c = serve_config();
  c.set("saex.scheduler.mode", "fair");
  c.set("saex.scheduler.pools", "interactive:3:32,batch:1:0");
  c.set("saex.serve.maxConcurrentJobs", "5");
  const auto o = JobServerOptions::from_config(c);
  EXPECT_EQ(o.mode, SchedulingMode::kFair);
  ASSERT_EQ(o.pools.size(), 2u);
  EXPECT_EQ(o.max_concurrent_jobs, 5);

  c.set("saex.scheduler.mode", "lottery");
  EXPECT_THROW(JobServerOptions::from_config(c), conf::ConfigError);
}

// ---------- admission control ----------

JobServer::Builder tiny_job(int id) {
  return [id](SparkContext& ctx) {
    return ctx.text_file("/serve/small")
        .filter("where", 0.2, 0.4)
        .save_as_text_file(strfmt::format("/adm/out{}", id), 1);
  };
}

TEST(JobServer, AdmissionQueueAndBackpressure) {
  ServeRig rig;
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServerOptions o;
  o.max_concurrent_jobs = 1;
  o.max_queued_jobs = 1;
  JobServer server(rig.ctx, o);

  EXPECT_EQ(server.submit("a", "c0", "default", tiny_job(0)),
            Admission::kAccepted);
  EXPECT_EQ(server.submit("b", "c0", "default", tiny_job(1)),
            Admission::kQueued);
  EXPECT_EQ(server.submit("c", "c0", "default", tiny_job(2)),
            Admission::kRejectedQueueFull);
  EXPECT_EQ(server.running_jobs(), 1);
  EXPECT_EQ(server.queued_jobs(), 1);

  const ServeReport report = server.drain();
  EXPECT_EQ(report.submitted, 3);
  EXPECT_EQ(report.started, 2);
  EXPECT_EQ(report.finished, 2);
  EXPECT_EQ(report.rejected_queue_full, 1);
  // The queued job waited for the first one's concurrency slot.
  EXPECT_GT(report.jobs[1].start_time, report.jobs[0].start_time);
  EXPECT_GE(report.jobs[1].queue_wait(), report.jobs[0].queue_wait());
  // Admission decisions land in the event log.
  EXPECT_EQ(rig.ctx.event_log().of_kind(engine::EventKind::kJobRejected).size(),
            1u);
  EXPECT_EQ(rig.ctx.event_log().of_kind(engine::EventKind::kJobDequeued).size(),
            1u);
}

TEST(JobServer, PerClientQuota) {
  ServeRig rig;
  load_trace_inputs(rig.ctx, small_trace_options());
  JobServerOptions o;
  o.max_concurrent_jobs = 1;
  o.max_queued_jobs = 8;
  o.max_jobs_per_client = 2;
  JobServer server(rig.ctx, o);

  EXPECT_EQ(server.submit("a", "c0", "default", tiny_job(0)),
            Admission::kAccepted);
  EXPECT_EQ(server.submit("b", "c0", "default", tiny_job(1)),
            Admission::kQueued);
  EXPECT_EQ(server.submit("c", "c0", "default", tiny_job(2)),
            Admission::kRejectedClientQuota);
  // A different tenant still gets in.
  EXPECT_EQ(server.submit("d", "c1", "default", tiny_job(3)),
            Admission::kQueued);
  const ServeReport report = server.drain();
  EXPECT_EQ(report.rejected_client_quota, 1);
  EXPECT_EQ(report.finished, 3);
}

// ---------- scheduling + invariants over a full trace ----------

ServeReport run_trace(conf::Config config, const TraceOptions& trace_options,
                      int64_t* dispatched = nullptr,
                      int64_t* finished = nullptr,
                      int64_t* overcommits = nullptr, int nodes = 4) {
  ServeRig rig(std::move(config), nodes);
  JobServer server(rig.ctx);
  const ServeReport report =
      server.replay(make_trace(trace_options), trace_options);
  if (dispatched != nullptr) {
    *dispatched = rig.ctx.scheduler().tasks_dispatched();
  }
  if (finished != nullptr) *finished = rig.ctx.scheduler().tasks_finished();
  if (overcommits != nullptr) {
    *overcommits = rig.ctx.scheduler().dispatch_overcommits();
  }
  return report;
}

TEST(JobServer, NoLostTasksAcrossSeeds) {
  for (const uint64_t seed : {7ull, 8ull, 9ull}) {
    conf::Config c = serve_config();
    c.set("saex.serve.maxConcurrentJobs", "4");
    int64_t dispatched = 0, finished = 0, overcommits = 0;
    const ServeReport report = run_trace(c, small_trace_options(seed),
                                         &dispatched, &finished, &overcommits);
    EXPECT_EQ(report.finished, report.started) << "seed " << seed;
    EXPECT_EQ(report.failed, 0) << "seed " << seed;
    EXPECT_EQ(dispatched, finished) << "seed " << seed;
    EXPECT_EQ(overcommits, 0) << "seed " << seed;
    for (const JobRecord& rec : report.jobs) {
      EXPECT_FALSE(rec.failed);
      EXPECT_GE(rec.queue_wait(), 0.0);
      for (const engine::StageStats& s : rec.report.stages) {
        EXPECT_EQ(static_cast<int>(s.num_tasks), s.num_tasks);
      }
    }
  }
}

// Adaptive policies resize executor pools mid-stage while several jobs share
// them; the §5.4 resize notifications must keep the driver's slot accounting
// exact (no dispatch may exceed an executor's advertised size).
TEST(JobServer, SlotAccountingExactUnderConcurrentResize) {
  conf::Config c = serve_config();
  c.set("saex.executor.policy", "dynamic");
  c.set("saex.scheduler.mode", "FAIR");
  c.set("saex.scheduler.pools", "interactive:3:16,batch:1:0");
  c.set("saex.serve.maxConcurrentJobs", "6");
  int64_t dispatched = 0, finished = 0, overcommits = 0;
  const ServeReport report = run_trace(c, small_trace_options(11), &dispatched,
                                       &finished, &overcommits);
  EXPECT_EQ(overcommits, 0);
  EXPECT_EQ(dispatched, finished);
  EXPECT_EQ(report.finished, report.started);
  EXPECT_EQ(report.policy, "dynamic");
}

// FAIR with a weighted interactive pool must cut the small jobs' queue wait
// relative to FIFO on the same trace (the batch sorts monopolize FIFO order).
// Two nodes with 8 cores each: 16 slots, so overlapping jobs genuinely
// contend and the offer order decides who waits.
TEST(JobServer, FairReducesInteractiveQueueWait) {
  TraceOptions t = small_trace_options(13);
  t.num_jobs = 16;
  t.mean_interarrival = 0.5;  // heavy contention

  conf::Config fifo = serve_config();
  fifo.set("spark.executor.cores", "8");
  fifo.set("saex.serve.maxConcurrentJobs", "16");
  conf::Config fair = fifo;
  fair.set("saex.scheduler.mode", "FAIR");
  fair.set("saex.scheduler.pools", "interactive:4:8,batch:1:0");

  const ServeReport r_fifo =
      run_trace(fifo, t, nullptr, nullptr, nullptr, /*nodes=*/2);
  const ServeReport r_fair =
      run_trace(fair, t, nullptr, nullptr, nullptr, /*nodes=*/2);
  const PoolStats* fifo_small = r_fifo.pool("interactive");
  const PoolStats* fair_small = r_fair.pool("interactive");
  ASSERT_NE(fifo_small, nullptr);
  ASSERT_NE(fair_small, nullptr);
  EXPECT_LT(fair_small->queue_wait_p95, fifo_small->queue_wait_p95);
  EXPECT_LT(fair_small->queue_wait_mean, fifo_small->queue_wait_mean);
}

// minShare: a pool below its minimum share outranks every satisfied pool.
// Four sorts oversubscribe the cluster (32 pending map tasks on 16 slots),
// so freed slots are contended: FIFO hands them to the earlier sort jobs,
// FAIR+minShare hands them to the needy interactive pool. Note neither mode
// preempts running tasks — only slot handoff differs, as in Spark.
TEST(JobServer, MinShareGrantsSlotsUnderSaturation) {
  auto scan_wait = [](const std::string& mode) {
    conf::Config c = serve_config();
    c.set("spark.executor.cores", "8");
    c.set("saex.scheduler.mode", mode);
    c.set("saex.scheduler.pools", "interactive:1:4,batch:1:0");
    c.set("saex.serve.maxConcurrentJobs", "8");
    ServeRig rig(c, /*nodes=*/2);
    load_trace_inputs(rig.ctx, small_trace_options());
    JobServer server(rig.ctx);

    auto submit = [&](const TraceJob& job) {
      server.submit(job.workload, job.client, job.pool,
                    [job](SparkContext& ctx) {
                      return build_trace_job(ctx, job);
                    });
    };
    for (int i = 0; i < 4; ++i) {
      submit(TraceJob{i, "c0", "batch", "sort", 0.0});
    }
    TraceJob scan{4, "c1", "interactive", "scan", 0.0};
    rig.cluster.sim().schedule_at(1.0, [&] { submit(scan); });
    const ServeReport report = server.drain();
    EXPECT_EQ(report.finished, 5);
    return report.jobs[4].queue_wait();
  };

  const double fifo_wait = scan_wait("FIFO");
  const double fair_wait = scan_wait("FAIR");
  EXPECT_LT(fair_wait, fifo_wait);
}

// ---------- dynamic allocation ----------

TEST(JobServer, DynamicAllocationGrowsAndShrinks) {
  conf::Config c = serve_config();
  c.set("spark.dynamicAllocation.enabled", "true");
  c.set("spark.dynamicAllocation.minExecutors", "1");
  c.set("spark.dynamicAllocation.initialExecutors", "1");
  c.set("spark.dynamicAllocation.executorIdleTimeout", "2s");
  c.set("spark.dynamicAllocation.schedulerBacklogTimeout", "500ms");
  c.set("spark.dynamicAllocation.sustainedSchedulerBacklogTimeout", "500ms");
  ServeRig rig(c);
  JobServer server(rig.ctx);
  EXPECT_EQ(rig.ctx.scheduler().active_executor_count(), 1);

  TraceOptions t = small_trace_options(17);
  t.num_jobs = 8;
  const ServeReport report = server.replay(make_trace(t), t);

  EXPECT_EQ(report.finished, report.started);
  EXPECT_GT(report.executors_granted, 0);   // backlog forced growth
  EXPECT_GT(report.executors_released, 0);  // idle timeout shrank it back
  EXPECT_EQ(rig.ctx.scheduler().dispatch_overcommits(), 0);
  // Released executors stop receiving offers; the floor holds.
  EXPECT_GE(rig.ctx.scheduler().active_executor_count(), 1);
  const auto granted =
      rig.ctx.event_log().of_kind(engine::EventKind::kExecutorGranted);
  EXPECT_EQ(static_cast<int>(granted.size()), report.executors_granted);
}

// ---------- determinism ----------

TEST(JobServer, ReplayIsDeterministic) {
  conf::Config c = serve_config();
  c.set("saex.scheduler.mode", "FAIR");
  c.set("saex.scheduler.pools", "interactive:3:32,batch:1:0");
  c.set("saex.executor.policy", "dynamic");
  c.set("spark.dynamicAllocation.enabled", "true");
  c.set("spark.dynamicAllocation.minExecutors", "1");

  const TraceOptions t = small_trace_options(23);
  const ServeReport a = run_trace(c, t);
  const ServeReport b = run_trace(c, t);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].admission, b.jobs[i].admission) << "job " << i;
    EXPECT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time) << "job " << i;
    EXPECT_EQ(a.jobs[i].start_time, b.jobs[i].start_time) << "job " << i;
    EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << "job " << i;
    EXPECT_EQ(a.jobs[i].report.first_launch_time,
              b.jobs[i].report.first_launch_time)
        << "job " << i;
    ASSERT_EQ(a.jobs[i].report.stages.size(), b.jobs[i].report.stages.size());
    for (size_t s = 0; s < a.jobs[i].report.stages.size(); ++s) {
      EXPECT_EQ(a.jobs[i].report.stages[s].end_time,
                b.jobs[i].report.stages[s].end_time)
          << "job " << i << " stage " << s;
    }
  }
  EXPECT_EQ(a.fairness_index, b.fairness_index);
  EXPECT_EQ(a.total_time, b.total_time);
}

// Same seed must also give the same trace (pure function of options).
TEST(Trace, DeterministicAndSorted) {
  const TraceOptions t = small_trace_options(29);
  const auto a = make_trace(t);
  const auto b = make_trace(t);
  ASSERT_EQ(a.size(), b.size());
  double prev = 0.0;
  std::map<std::string, int> by_pool;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_GE(a[i].arrival_time, prev);
    prev = a[i].arrival_time;
    ++by_pool[a[i].pool];
  }
  EXPECT_GT(by_pool["interactive"], 0);
  EXPECT_GT(by_pool["batch"], 0);
}

}  // namespace
}  // namespace saex::serve
