#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "adaptive/analyzer.h"
#include "common/rng.h"
#include "adaptive/controller.h"
#include "adaptive/monitor.h"
#include "adaptive/planner.h"
#include "adaptive/policies.h"
#include "conf/config.h"

namespace saex::adaptive {
namespace {

// ---------- fakes ----------

class FakePool final : public PoolEffector {
 public:
  void set_pool_size(int threads) override {
    size_ = threads;
    history.push_back(threads);
  }
  int pool_size() const override { return size_; }

  int size_ = 32;
  std::vector<int> history;
};

// A sensor whose per-interval ε and bytes follow a configurable landscape
// over the *current pool size* (set externally by the test driver).
class LandscapeSensor final : public Sensor {
 public:
  // epoll seconds accrued per simulated second and bytes/sec, per pool size.
  std::map<int, double> epoll_rate;
  std::map<int, double> byte_rate;
  double now = 0.0;
  int current_threads = 2;

  void advance(double dt, bool completion = true) {
    accum_epoll_ += epoll_rate.at(current_threads) * dt;
    accum_bytes_ += byte_rate.at(current_threads) * dt;
    now += dt;
    if (completion) ++tasks_;
  }

  IoSample sample() override {
    return IoSample{accum_epoll_, static_cast<Bytes>(accum_bytes_), 0.9,
                    tasks_};
  }

 private:
  double accum_epoll_ = 0.0;
  double accum_bytes_ = 0.0;
  uint64_t tasks_ = 0;
};

ControllerConfig test_config() {
  ControllerConfig c;
  c.min_threads = 2;
  c.max_threads = 32;
  return c;
}

// Drives one stage: each "interval" lasts 1 simulated second per completed
// task; completes `threads` tasks to close each interval, until frozen.
void run_stage(AdaptiveController& ctrl, LandscapeSensor& sensor,
               FakePool& pool, int64_t stage_key, int max_steps = 1000) {
  ctrl.on_stage_start(stage_key, sensor.now);
  sensor.current_threads = pool.pool_size();
  for (int step = 0; step < max_steps && !ctrl.frozen(); ++step) {
    // With j threads a wave of j tasks completes in ~constant wall time, so
    // each completion advances 1/j seconds.
    sensor.advance(1.0 / sensor.current_threads);
    ctrl.on_task_complete(sensor.now);
    sensor.current_threads = pool.pool_size();
  }
  ctrl.on_stage_end(sensor.now);
}

// ---------- IntervalReport ----------

TEST(IntervalReport, ThroughputAndZeta) {
  IntervalReport r;
  r.start_time = 10.0;
  r.end_time = 20.0;
  r.epoll_wait = 5.0;
  r.bytes = 100 * kMiB;
  EXPECT_DOUBLE_EQ(r.duration(), 10.0);
  EXPECT_DOUBLE_EQ(r.throughput(), 10.0 * kMiB);
  EXPECT_DOUBLE_EQ(r.congestion_index(), 5.0 / (10.0 * kMiB));
}

TEST(IntervalReport, ZeroIoGivesZeroZeta) {
  IntervalReport r;
  r.start_time = 0;
  r.end_time = 1;
  r.epoll_wait = 0.0;
  r.bytes = 0;
  EXPECT_DOUBLE_EQ(r.congestion_index(), 0.0);
}

// ---------- Monitor ----------

TEST(Monitor, DiffsAccumulators) {
  LandscapeSensor sensor;
  sensor.epoll_rate[4] = 2.0;
  sensor.byte_rate[4] = 50e6;
  sensor.current_threads = 4;
  Monitor m(sensor);
  m.begin_interval(0.0, 4);
  sensor.advance(3.0);
  const IntervalReport r = m.end_interval(sensor.now);
  EXPECT_EQ(r.threads, 4);
  EXPECT_NEAR(r.epoll_wait, 6.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(r.bytes), 150e6, 1.0);
  EXPECT_NEAR(r.duration(), 3.0, 1e-9);
}

// ---------- Analyzer ----------

TEST(Analyzer, AscendingStepsDoubleAndClamp) {
  Analyzer a(test_config());
  EXPECT_EQ(a.first_threads(), 2);
  EXPECT_EQ(a.next_threads(2), 4);
  EXPECT_EQ(a.next_threads(8), 16);
  EXPECT_EQ(a.next_threads(32), 32);
  EXPECT_TRUE(a.at_bound(32));
  EXPECT_FALSE(a.at_bound(16));
}

TEST(Analyzer, DescendingAblationHalves) {
  ControllerConfig c = test_config();
  c.descending = true;
  Analyzer a(c);
  EXPECT_EQ(a.first_threads(), 32);
  EXPECT_EQ(a.next_threads(32), 16);
  EXPECT_EQ(a.next_threads(2), 2);
  EXPECT_TRUE(a.at_bound(2));
}

IntervalReport make_report(int threads, double epoll, Bytes bytes,
                           double dur = 10.0) {
  IntervalReport r;
  r.threads = threads;
  r.start_time = 0;
  r.end_time = dur;
  r.epoll_wait = epoll;
  r.bytes = bytes;
  // Busy disk: the L3 idle-disk guard must not mask zeta comparisons here.
  r.disk_utilization = 0.9;
  return r;
}

TEST(Analyzer, FirstIntervalAlwaysClimbs) {
  Analyzer a(test_config());
  const Decision d = a.decide(std::nullopt, make_report(2, 1.0, gib(1)));
  EXPECT_EQ(d.action, Decision::Action::kContinueClimb);
  EXPECT_EQ(d.target_threads, 4);
}

TEST(Analyzer, ImprovementKeepsClimbing) {
  Analyzer a(test_config());
  const auto prev = make_report(2, 10.0, gib(1));
  const auto cur = make_report(4, 5.0, gib(2));  // much lower zeta
  const Decision d = a.decide(prev, cur);
  EXPECT_EQ(d.action, Decision::Action::kContinueClimb);
  EXPECT_EQ(d.target_threads, 8);
}

TEST(Analyzer, WorseningRollsBack) {
  Analyzer a(test_config());
  const auto prev = make_report(4, 5.0, gib(2));
  const auto cur = make_report(8, 20.0, gib(1));  // zeta jumped
  const Decision d = a.decide(prev, cur);
  EXPECT_EQ(d.action, Decision::Action::kRollback);
  EXPECT_EQ(d.target_threads, 4);
}

TEST(Analyzer, RollbackDisabledAblationKeepsClimbing) {
  ControllerConfig c = test_config();
  c.rollback = false;
  Analyzer a(c);
  const auto prev = make_report(4, 5.0, gib(2));
  const auto cur = make_report(8, 20.0, gib(1));
  const Decision d = a.decide(prev, cur);
  EXPECT_EQ(d.action, Decision::Action::kContinueClimb);
  EXPECT_EQ(d.target_threads, 16);
}

TEST(Analyzer, LowIoStageClimbsDespiteWorseZeta) {
  // Limitation L3: almost no I/O traffic → prefer parallelism regardless.
  Analyzer a(test_config());
  const auto prev = make_report(4, 0.001, kKiB);
  const auto cur = make_report(8, 0.010, kKiB);
  const Decision d = a.decide(prev, cur);
  EXPECT_EQ(d.action, Decision::Action::kContinueClimb);
}

TEST(Analyzer, IndifferentZetaClimbs) {
  Analyzer a(test_config());
  const auto prev = make_report(4, 10.0, gib(2));
  const auto cur = make_report(8, 10.2, gib(2));  // within tolerance band
  const Decision d = a.decide(prev, cur);
  EXPECT_EQ(d.action, Decision::Action::kContinueClimb);
}

TEST(Analyzer, HoldsAtBound) {
  Analyzer a(test_config());
  const auto prev = make_report(16, 10.0, gib(2));
  const auto cur = make_report(32, 9.0, gib(2));
  const Decision d = a.decide(prev, cur);
  EXPECT_EQ(d.action, Decision::Action::kHold);
  EXPECT_EQ(d.target_threads, 32);
}

TEST(Analyzer, EpollOnlyMetricAblation) {
  ControllerConfig c = test_config();
  c.metric = Metric::kEpollOnly;
  Analyzer a(c);
  // zeta identical, epoll worse → rollback under epoll-only.
  const auto prev = make_report(4, 5.0, gib(1));
  const auto cur = make_report(8, 10.0, gib(2));
  EXPECT_EQ(a.decide(prev, cur).action, Decision::Action::kRollback);
}

// ---------- Planner ----------

TEST(Planner, ClimbPlanOpensIntervalAndNotifies) {
  Planner p;
  Decision d;
  d.action = Decision::Action::kContinueClimb;
  d.target_threads = 8;
  const Plan plan = p.plan(d, 4);
  EXPECT_TRUE(plan.resize);
  EXPECT_TRUE(plan.notify_scheduler);
  EXPECT_FALSE(plan.freeze);
  EXPECT_TRUE(plan.open_new_interval);
}

TEST(Planner, RollbackFreezes) {
  Planner p;
  Decision d;
  d.action = Decision::Action::kRollback;
  d.target_threads = 4;
  const Plan plan = p.plan(d, 8);
  EXPECT_TRUE(plan.resize);
  EXPECT_TRUE(plan.freeze);
  EXPECT_FALSE(plan.open_new_interval);
}

TEST(Planner, HoldNeitherResizesNorNotifies) {
  Planner p;
  Decision d;
  d.action = Decision::Action::kHold;
  d.target_threads = 32;
  const Plan plan = p.plan(d, 32);
  EXPECT_FALSE(plan.resize);
  EXPECT_FALSE(plan.notify_scheduler);
  EXPECT_TRUE(plan.freeze);
}

// ---------- Controller end-to-end on synthetic landscapes ----------

struct Landscape {
  const char* name;
  std::map<int, double> epoll;       // per-second ε accrual at size j
  std::map<int, double> throughput;  // bytes/sec at size j
  int expected_settle;
};

class ControllerLandscapeTest : public ::testing::TestWithParam<Landscape> {};

TEST_P(ControllerLandscapeTest, SettlesAtExpectedSize) {
  const Landscape& land = GetParam();
  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = land.epoll;
  sensor.byte_rate = land.throughput;
  int notified = -1;
  AdaptiveController ctrl(test_config(), sensor, pool,
                          [&](int n) { notified = n; });
  run_stage(ctrl, sensor, pool, 1);
  EXPECT_EQ(pool.pool_size(), land.expected_settle) << land.name;
  EXPECT_EQ(notified, land.expected_settle) << land.name;
}

INSTANTIATE_TEST_SUITE_P(
    Landscapes, ControllerLandscapeTest,
    ::testing::Values(
        // HDD-like valley at 8: zeta = eps/mu minimized there.
        Landscape{"valley-at-8",
                  {{2, 0.9}, {4, 0.8}, {8, 0.9}, {16, 6.0}, {32, 20.0}},
                  {{2, 90e6}, {4, 170e6}, {8, 210e6}, {16, 160e6}, {32, 110e6}},
                  8},
        // Monotonically better with threads (CPU-bound-ish): climbs to 32.
        Landscape{"flat-improving",
                  {{2, 1.0}, {4, 0.9}, {8, 0.8}, {16, 0.7}, {32, 0.6}},
                  {{2, 50e6}, {4, 100e6}, {8, 200e6}, {16, 400e6}, {32, 800e6}},
                  32},
        // Contention from the start: 4 already worse than 2 → settle at 2.
        Landscape{"valley-at-2",
                  {{2, 0.5}, {4, 4.0}, {8, 10.0}, {16, 20.0}, {32, 40.0}},
                  {{2, 150e6}, {4, 140e6}, {8, 120e6}, {16, 90e6}, {32, 60e6}},
                  2},
        // Negligible I/O everywhere → prefers max parallelism.
        Landscape{"no-io",
                  {{2, 0.0}, {4, 0.0}, {8, 0.0}, {16, 0.0}, {32, 0.0}},
                  {{2, 10.0}, {4, 10.0}, {8, 10.0}, {16, 10.0}, {32, 10.0}},
                  32}));

TEST(Controller, RecordsKnowledgePerStage) {
  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = {{2, 0.9}, {4, 0.8}, {8, 0.9}, {16, 6.0}, {32, 20.0}};
  sensor.byte_rate = {{2, 90e6}, {4, 170e6}, {8, 210e6}, {16, 160e6}, {32, 110e6}};
  AdaptiveController ctrl(test_config(), sensor, pool, nullptr);
  run_stage(ctrl, sensor, pool, 7);

  const StageRecord* rec = ctrl.knowledge().stage(7);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->settled_threads, 8);
  EXPECT_TRUE(rec->rolled_back);
  // Explored 2, 4, 8, 16 → 4 intervals recorded.
  ASSERT_EQ(rec->intervals.size(), 4u);
  EXPECT_EQ(rec->intervals[0].threads, 2);
  EXPECT_EQ(rec->intervals[3].threads, 16);
}

TEST(Controller, EachStageRetunesFromScratch) {
  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = {{2, 0.9}, {4, 0.8}, {8, 0.9}, {16, 6.0}, {32, 20.0}};
  sensor.byte_rate = {{2, 90e6}, {4, 170e6}, {8, 210e6}, {16, 160e6}, {32, 110e6}};
  AdaptiveController ctrl(test_config(), sensor, pool, nullptr);
  run_stage(ctrl, sensor, pool, 1);
  EXPECT_EQ(pool.pool_size(), 8);

  // Change the landscape between stages; the controller must re-explore.
  sensor.epoll_rate = {{2, 0.1}, {4, 0.1}, {8, 0.1}, {16, 0.1}, {32, 0.1}};
  sensor.byte_rate = {{2, 50e6}, {4, 100e6}, {8, 200e6}, {16, 400e6}, {32, 800e6}};
  run_stage(ctrl, sensor, pool, 2);
  EXPECT_EQ(pool.pool_size(), 32);
  EXPECT_EQ(pool.history.front(), 2);  // each stage starts at c_min
}

TEST(Controller, StageEndMidIntervalRecordsPartial) {
  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = {{2, 0.5}, {4, 0.8}};
  sensor.byte_rate = {{2, 90e6}, {4, 170e6}};
  AdaptiveController ctrl(test_config(), sensor, pool, nullptr);
  ctrl.on_stage_start(3, sensor.now);
  sensor.current_threads = pool.pool_size();
  sensor.advance(1.0);
  ctrl.on_task_complete(sensor.now);  // 1 of 2 completions, interval open
  sensor.advance(0.5);
  ctrl.on_stage_end(sensor.now);
  const StageRecord* rec = ctrl.knowledge().stage(3);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->intervals.size(), 1u);
  EXPECT_EQ(rec->settled_threads, 2);
}

TEST(Controller, FixedIntervalModeUsesTicks) {
  ControllerConfig c = test_config();
  c.interval_mode = IntervalMode::kFixedTime;
  c.fixed_interval_seconds = 2.0;
  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = {{2, 0.9}, {4, 0.8}, {8, 0.9}, {16, 6.0}, {32, 20.0}};
  sensor.byte_rate = {{2, 90e6}, {4, 170e6}, {8, 210e6}, {16, 160e6}, {32, 110e6}};
  AdaptiveController ctrl(c, sensor, pool, nullptr);
  ctrl.on_stage_start(1, sensor.now);
  sensor.current_threads = pool.pool_size();
  for (int i = 0; i < 100 && !ctrl.frozen(); ++i) {
    sensor.advance(0.5);
    ctrl.on_task_complete(sensor.now);  // ignored in fixed mode
    ctrl.on_tick(sensor.now);
    sensor.current_threads = pool.pool_size();
  }
  EXPECT_TRUE(ctrl.frozen());
  EXPECT_EQ(pool.pool_size(), 8);
}

TEST(ControllerConfig, FromConfigReadsKeysAndResolvesCores) {
  conf::Config config;
  config.set("saex.dynamic.maxThreads", "0");
  config.set("saex.dynamic.metric", "epoll");
  config.set("saex.dynamic.descending", "true");
  const ControllerConfig c = ControllerConfig::from_config(config, 48);
  EXPECT_EQ(c.max_threads, 48);
  EXPECT_EQ(c.metric, Metric::kEpollOnly);
  EXPECT_TRUE(c.descending);
  EXPECT_EQ(c.min_threads, 2);
}

// ---------- Policies ----------

TEST(Policies, DefaultPolicyAlwaysUsesDefault) {
  FakePool pool;
  pool.size_ = 4;
  DefaultPolicy policy(pool, nullptr, 32);
  policy.on_stage_start({1, 0, true}, 0.0);
  EXPECT_EQ(pool.pool_size(), 32);
  policy.on_stage_start({2, 1, false}, 1.0);
  EXPECT_EQ(pool.pool_size(), 32);
}

TEST(Policies, StaticIoPolicySwitchesOnTag) {
  FakePool pool;
  int notified = 0;
  StaticIoPolicy policy(pool, [&](int) { ++notified; }, 8, 32);
  policy.on_stage_start({1, 0, true}, 0.0);
  EXPECT_EQ(pool.pool_size(), 8);
  policy.on_stage_start({2, 1, false}, 1.0);
  EXPECT_EQ(pool.pool_size(), 32);
  policy.on_stage_start({3, 2, true}, 2.0);
  EXPECT_EQ(pool.pool_size(), 8);
  EXPECT_EQ(notified, 3);
}

TEST(Policies, StaticIoPolicySkipsRedundantResize) {
  FakePool pool;
  pool.size_ = 8;
  int notified = 0;
  StaticIoPolicy policy(pool, [&](int) { ++notified; }, 8, 32);
  policy.on_stage_start({1, 0, true}, 0.0);
  EXPECT_EQ(notified, 0);  // already at 8
}

TEST(Policies, PerStagePolicyUsesOrdinalMap) {
  FakePool pool;
  PerStagePolicy policy(pool, nullptr, {{0, 4}, {2, 8}}, 32);
  policy.on_stage_start({10, 0, true}, 0.0);
  EXPECT_EQ(pool.pool_size(), 4);
  policy.on_stage_start({11, 1, false}, 1.0);
  EXPECT_EQ(pool.pool_size(), 32);
  policy.on_stage_start({12, 2, true}, 2.0);
  EXPECT_EQ(pool.pool_size(), 8);
}

TEST(Policies, DynamicPolicyExposesController) {
  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = {{2, 0.5}, {4, 4.0}, {8, 10.0}, {16, 20.0}, {32, 40.0}};
  sensor.byte_rate = {{2, 150e6}, {4, 140e6}, {8, 120e6}, {16, 90e6}, {32, 60e6}};
  DynamicPolicy policy(test_config(), sensor, pool, nullptr);
  ASSERT_NE(policy.controller(), nullptr);
  policy.on_stage_start({5, 0, true}, 0.0);
  EXPECT_EQ(pool.pool_size(), 2);
}

}  // namespace
}  // namespace saex::adaptive

namespace saex::adaptive {
namespace {

// Property sweep: on randomized unimodal zeta landscapes the controller must
// settle within one doubling of the best thread count, for any seed.
class ClimberPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClimberPropertyTest, SettlesNearTheLandscapeOptimum) {
  saex::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);

  // Build a unimodal throughput curve peaking at a random power of two and a
  // latency curve rising superlinearly past the peak (the disk-model shape).
  const int options[] = {2, 4, 8, 16, 32};
  const int peak = options[rng.uniform_int(0, 4)];
  std::map<int, double> epoll, bytes;
  for (const int j : {2, 4, 8, 16, 32}) {
    const double ratio = static_cast<double>(j) / peak;
    const double mu =
        200e6 * std::min(1.0, ratio) / (1.0 + 0.8 * std::max(0.0, ratio - 1.0));
    const double latency = 0.02 * (1.0 + 3.0 * std::max(0.0, ratio - 1.0));
    bytes[j] = mu * rng.uniform(0.95, 1.05);
    epoll[j] = latency * j * rng.uniform(0.95, 1.05);
  }

  FakePool pool;
  LandscapeSensor sensor;
  sensor.epoll_rate = epoll;
  sensor.byte_rate = bytes;
  AdaptiveController ctrl(test_config(), sensor, pool, nullptr);
  run_stage(ctrl, sensor, pool, GetParam());

  const int settled = pool.pool_size();
  EXPECT_TRUE(settled == peak || settled == peak / 2 || settled == peak * 2 ||
              (peak == 32 && settled == 32))
      << "seed " << GetParam() << ": settled " << settled << " vs peak "
      << peak;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClimberPropertyTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace saex::adaptive
