// Flow-batched network data plane (saex.net.flowBatch): hw::Network
// transfer_flow semantics (stream weighting, chunked-goodput cap, event
// counters) and the engine-level invariants the batched fetch pipeline must
// preserve — byte totals, determinism, seeded fetch-drop handling, and
// open-stream accounting balance under fetch failures and chaos churn in
// BOTH fetch modes.
#include <gtest/gtest.h>

#include <string>

#include "common/format.h"
#include "engine/context.h"
#include "hw/network.h"
#include "sim/simulation.h"

namespace saex {
namespace {

using engine::JobReport;
using engine::SparkContext;

// ---------- hw::Network flow semantics ----------

hw::NetworkParams small_net() {
  hw::NetworkParams p;
  p.up_bw = 100e6;
  p.down_bw = 100e6;
  p.incast_src_threshold = 4;
  p.incast_flow_threshold = 4;
  p.incast_coeff = 0.1;
  p.per_flow_cap = 1e12;  // uncapped unless a test says otherwise
  p.latency = 0.0001;
  return p;
}

TEST(NetFlow, UnbatchedFlowMatchesPlainTransfer) {
  // streams == 1 with the derating disabled must reproduce transfer()
  // exactly: same rate resolution, same completion time.
  double plain_end = 0.0;
  {
    sim::Simulation sim;
    hw::Network net(sim, 4, small_net());
    net.transfer(0, 1, static_cast<Bytes>(50e6), [] {});
    plain_end = sim.run();
  }
  sim::Simulation sim;
  hw::Network net(sim, 4, small_net());
  net.transfer_flow(0, 1, static_cast<Bytes>(50e6), /*streams=*/1,
                    /*chunk_bytes=*/0, [] {});
  EXPECT_DOUBLE_EQ(sim.run(), plain_end);
  EXPECT_EQ(net.transfers_started(), 1);
  EXPECT_EQ(net.flow_transfers(), 1);
}

TEST(NetFlow, WeightedFlowClaimsProportionalShare) {
  // A 2-stream flow sharing an uplink with a 1-stream flow gets 2/3 of the
  // bandwidth: 60 MB at 66.7 MB/s and 40 MB at 33.3 MB/s finish together.
  sim::Simulation sim;
  hw::Network net(sim, 4, small_net());
  double big_done = -1.0, small_done = -1.0;
  net.transfer_flow(0, 1, static_cast<Bytes>(60e6), /*streams=*/2, 0,
                    [&] { big_done = sim.now(); });
  net.transfer_flow(0, 2, static_cast<Bytes>(30e6), /*streams=*/1, 0,
                    [&] { small_done = sim.now(); });
  sim.run();
  EXPECT_NEAR(big_done, 0.9, 0.02);
  EXPECT_NEAR(small_done, 0.9, 0.02);
}

TEST(NetFlow, ChunkedGoodputCapDeratesBatchedFlow) {
  // per_flow_cap 10 MB/s, latency 20 ms, 1 MB chunks: goodput is
  // 1 / (0.02/1e6 + 1/10e6) = 8.33 MB/s. A batched flow on an otherwise
  // idle link must move at that derated rate, not at the raw cap.
  hw::NetworkParams p = small_net();
  p.per_flow_cap = 10e6;
  p.latency = 0.02;
  sim::Simulation sim;
  hw::Network net(sim, 4, p);
  bool done = false;
  net.transfer_flow(0, 1, static_cast<Bytes>(8.333e6), /*streams=*/1,
                    /*chunk_bytes=*/static_cast<Bytes>(1e6),
                    [&] { done = true; });
  const double end = sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(end, 1.0, 0.03);
}

TEST(NetFlow, TransferCountersDistinguishBatchedFlows) {
  sim::Simulation sim;
  hw::Network net(sim, 4, small_net());
  net.transfer(0, 1, 1000, [] {});
  net.transfer(2, 1, 1000, [] {});
  net.transfer_flow(3, 1, 1000, /*streams=*/4, 0, [] {});
  sim.run();
  EXPECT_EQ(net.transfers_started(), 3);
  EXPECT_EQ(net.flow_transfers(), 1);
}

TEST(NetFlow, StreamWeightedLinkCountsDrainToZero) {
  sim::Simulation sim;
  hw::Network net(sim, 4, small_net());
  net.transfer_flow(0, 1, static_cast<Bytes>(10e6), /*streams=*/3, 0, [] {});
  net.transfer(0, 2, static_cast<Bytes>(10e6), [] {});
  sim.run_until(0.001);
  EXPECT_EQ(net.flows_from(0), 4);  // 3 weighted + 1 plain
  EXPECT_EQ(net.flows_to(1), 3);
  EXPECT_EQ(net.active_flows(), 2);
  sim.run();
  EXPECT_EQ(net.flows_from(0), 0);
  EXPECT_EQ(net.flows_to(1), 0);
  EXPECT_EQ(net.fetches_to(1), 0);
  EXPECT_EQ(net.senders_to(1), 0);
}

TEST(NetFlow, OpenStreamAccountingBalancesAcrossFlowCompletion) {
  // register_fetch holds a request open while the server reads the block;
  // the flow itself adds one more open request for its duration. Everything
  // must unwind to zero, including the distinct-sender rollup.
  sim::Simulation sim;
  hw::Network net(sim, 8, small_net());
  net.register_fetch(1, 0);
  net.register_fetch(1, 0);
  net.register_fetch(2, 0);
  net.transfer_flow(1, 0, static_cast<Bytes>(1e6), /*streams=*/2, 0, [] {});
  sim.run_until(0.001);
  EXPECT_EQ(net.fetches_to(0), 4);  // 3 registered + 1 active flow
  EXPECT_EQ(net.senders_to(0), 2);
  sim.run();
  net.unregister_fetch(1, 0);
  net.unregister_fetch(1, 0);
  net.unregister_fetch(2, 0);
  EXPECT_EQ(net.fetches_to(0), 0);
  EXPECT_EQ(net.senders_to(0), 0);
}

// ---------- engine-level invariants ----------

conf::Config engine_config(bool flow) {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  if (flow) c.set_bool("saex.net.flowBatch", true);
  return c;
}

struct ShuffleRun {
  double makespan = 0.0;
  Bytes net_bytes = 0;
  int64_t transfers = 0;
  int64_t flow_transfers = 0;
  int64_t dropped = 0;
  int open_fetches = 0;  // Σ fetches_to at job end — must be 0
};

ShuffleRun run_shuffle(conf::Config config) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  SparkContext ctx(cluster, std::move(config));
  ctx.dfs().load_input("/in", gib(2), 4);
  const JobReport report = ctx.run_job(
      ctx.text_file("/in").reduce_by_key("g", {0.01, 1.0}, 1.0).count(),
      "netflow");
  ShuffleRun out;
  out.makespan = report.total_runtime;
  out.net_bytes = cluster.network().total_bytes();
  out.transfers = cluster.network().transfers_started();
  out.flow_transfers = cluster.network().flow_transfers();
  out.dropped = cluster.network().dropped_fetches();
  for (int n = 0; n < cluster.size(); ++n) {
    out.open_fetches += cluster.network().fetches_to(n);
    out.open_fetches += cluster.network().senders_to(n);
  }
  return out;
}

TEST(NetFlowEngine, FlowModeMovesIdenticalBytesWithFewerTransfers) {
  const ShuffleRun chunk = run_shuffle(engine_config(false));
  const ShuffleRun flow = run_shuffle(engine_config(true));
  EXPECT_EQ(chunk.net_bytes, flow.net_bytes);
  EXPECT_EQ(chunk.flow_transfers, 0);
  EXPECT_GT(flow.flow_transfers, 0);
  EXPECT_LT(flow.transfers, chunk.transfers);
  // The coarse flow model may run a stage somewhat fast (large continuous
  // disk requests instead of a closed 2-request pipeline); the calibrated
  // band lives in bench/net_flow, this is the sanity rail.
  EXPECT_GT(flow.makespan, 0.6 * chunk.makespan);
  EXPECT_LT(flow.makespan, 1.2 * chunk.makespan);
}

TEST(NetFlowEngine, FlowModeDeterministicGivenSeed) {
  const ShuffleRun a = run_shuffle(engine_config(true));
  const ShuffleRun b = run_shuffle(engine_config(true));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.transfers, b.transfers);
}

TEST(NetFlowEngine, DroppedFetchesUnregisterInBothModes) {
  // Seeded fetch drops force the abort/retry path; afterwards every
  // register_fetch must have been matched by unregister_fetch (the
  // open-request and distinct-sender rollups read zero) in BOTH fetch
  // modes, or the incast model would degrade for the rest of the run.
  for (const bool flow : {false, true}) {
    conf::Config c = engine_config(flow);
    c.set_bool("saex.fault.enabled", true);
    c.set_double("saex.fault.fetchFailProb", 0.05);
    const ShuffleRun run = run_shuffle(std::move(c));
    EXPECT_GT(run.dropped, 0) << "flow=" << flow;
    EXPECT_EQ(run.open_fetches, 0) << "flow=" << flow;
    EXPECT_GT(run.makespan, 0.0) << "flow=" << flow;
  }
}

TEST(NetFlowEngine, OpenStreamsBalanceUnderChaosChurnInBothModes) {
  // Kill an executor mid-shuffle (in-flight fetches to/from it die with
  // lineage recovery) and rejoin it later; the open-stream ledger must
  // still unwind to zero in both fetch modes.
  for (const bool flow : {false, true}) {
    conf::Config c = engine_config(flow);
    c.set_bool("saex.fault.enabled", true);
    c.set("saex.fault.chaos", "kill:1@40,rejoin:1@120");
    const ShuffleRun run = run_shuffle(std::move(c));
    EXPECT_EQ(run.open_fetches, 0) << "flow=" << flow;
    EXPECT_GT(run.makespan, 0.0) << "flow=" << flow;
  }
}

TEST(NetFlowEngine, ChaosMakespanIdenticalAcrossRepeatRuns) {
  // Chaos + flow batching together must stay a pure function of the seed.
  auto run = [] {
    conf::Config c = engine_config(true);
    c.set_bool("saex.fault.enabled", true);
    c.set("saex.fault.chaos", "kill:2@40,rejoin:2@120");
    return run_shuffle(std::move(c)).makespan;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace saex
