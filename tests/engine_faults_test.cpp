// Fault tolerance: task failure injection, retries, stage abort, and
// speculative execution.
#include <gtest/gtest.h>

#include "common/format.h"
#include "engine/context.h"

namespace saex::engine {
namespace {

conf::Config faulty_config(double failure_prob, int max_failures = 4) {
  conf::Config c;
  c.set("spark.default.parallelism", "16");
  c.set_double("saex.sim.taskFailureProb", failure_prob);
  c.set_int("spark.task.maxFailures", max_failures);
  return c;
}

TEST(FaultTolerance, RetriesMakeTheJobSucceed) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  SparkContext ctx(cluster, faulty_config(0.15));
  ctx.dfs().load_input("/in", gib(4), 4);
  const JobReport report =
      ctx.run_job(ctx.text_file("/in").map("m", {0.01, 1.0}).count(), "flaky");

  // With a 15% per-attempt failure rate over 32 tasks, failures are certain
  // under this seed; every one must have been retried transparently.
  const auto failures = ctx.event_log().of_kind(EventKind::kTaskFailed);
  EXPECT_GT(failures.size(), 0u);
  // Every partition eventually succeeded exactly once.
  EXPECT_EQ(ctx.event_log().of_kind(EventKind::kTaskEnd).size(), 32u);
  EXPECT_GT(report.total_runtime, 0.0);
}

TEST(FaultTolerance, FailedAttemptsCostTime) {
  auto run = [](double prob) {
    hw::Cluster cluster(hw::ClusterSpec::das5(4));
    SparkContext ctx(cluster, faulty_config(prob, /*max_failures=*/8));
    ctx.dfs().load_input("/in", gib(4), 4);
    return ctx.run_job(ctx.text_file("/in").count(), "x").total_runtime;
  };
  EXPECT_GT(run(0.22), run(0.0));
}

TEST(FaultTolerance, ExhaustedAttemptsAbortTheJob) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  // Every attempt fails and only one attempt is allowed.
  SparkContext ctx(cluster, faulty_config(1.0, /*max_failures=*/1));
  ctx.dfs().load_input("/in", mib(256), 2);
  EXPECT_THROW((void)ctx.run_job(ctx.text_file("/in").count(), "doomed"),
               std::runtime_error);
}

TEST(FaultTolerance, FailedAttemptsDoNotAdvanceTheTuningInterval) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  conf::Config config = faulty_config(1.0, /*max_failures=*/1);
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", mib(256), 2);
  try {
    (void)ctx.run_job(ctx.text_file("/in").count(), "doomed");
  } catch (const std::runtime_error&) {
  }
  // No attempt succeeded, so the executors report zero completions.
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(ctx.executor(n).io_counters().tasks_completed, 0u);
  }
}

TEST(FaultTolerance, DeterministicGivenSeed) {
  auto run = [] {
    hw::Cluster cluster(hw::ClusterSpec::das5(4));
    SparkContext ctx(cluster, faulty_config(0.2));
    ctx.dfs().load_input("/in", gib(2), 4);
    return ctx.run_job(ctx.text_file("/in").count(), "x").total_runtime;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Speculation, DuplicatesStragglersOnSlowNodes) {
  // One pathologically slow disk; speculation should re-run its tasks
  // elsewhere and beat the no-speculation run.
  auto run = [](bool speculation) {
    hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
    spec.seed = 1234;
    spec.slow_disk_prob = 0.0;
    hw::Cluster cluster(spec);
    // Manually: the cluster spec draws factors near 1; emulate a straggler
    // node by giving node 3's tasks a huge cpu cost? Simpler: rely on the
    // built-in outlier by forcing the probability.
    (void)cluster;
    hw::ClusterSpec slow = spec;
    slow.slow_disk_prob = 0.25;  // likely exactly one slow disk at 44% speed
    slow.slow_disk_factor = 0.25;
    hw::Cluster c2(slow);
    conf::Config config;
    config.set("spark.default.parallelism", "16");
    config.set_bool("spark.speculation", speculation);
    config.set_double("spark.speculation.multiplier", 1.4);
    config.set_double("spark.speculation.quantile", 0.5);
    SparkContext ctx(c2, config);
    ctx.dfs().load_input("/in", gib(8), 4);
    const JobReport r = ctx.run_job(ctx.text_file("/in").count(), "spec");
    return std::make_pair(r.total_runtime,
                          ctx.scheduler().speculative_launches());
  };
  const auto [with_time, with_launches] = run(true);
  const auto [without_time, without_launches] = run(false);
  EXPECT_EQ(without_launches, 0);
  EXPECT_GT(with_launches, 0);
  EXPECT_LT(with_time, without_time);
}

TEST(Speculation, NoStragglersNoSpeculation) {
  hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
  spec.disk_sigma = 0.0;  // perfectly homogeneous
  spec.slow_disk_prob = 0.0;
  spec.cpu_sigma = 0.0;
  hw::Cluster cluster(spec);
  conf::Config config;
  config.set("spark.default.parallelism", "16");
  config.set_bool("spark.speculation", true);
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", gib(4), 4);
  (void)ctx.run_job(ctx.text_file("/in").count(), "uniform");
  EXPECT_EQ(ctx.scheduler().speculative_launches(), 0);
}

}  // namespace
}  // namespace saex::engine

namespace saex::engine {
namespace {

TEST(Blacklisting, FlakyExecutorGetsExcluded) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config config;
  config.set("spark.default.parallelism", "16");
  config.set_int("saex.sim.flakyNode", 2);
  config.set_double("saex.sim.flakyNodeFailureProb", 1.0);  // always fails
  config.set_bool("spark.blacklist.enabled", true);
  config.set_int("spark.task.maxFailures", 12);
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", gib(4), 4);
  const JobReport report = ctx.run_job(ctx.text_file("/in").count(), "flaky2");
  // The job succeeds: node 2's work moved elsewhere once it was blacklisted.
  EXPECT_EQ(ctx.event_log().of_kind(EventKind::kTaskEnd).size(), 32u);
  EXPECT_GT(report.total_runtime, 0.0);
  // Node 2 never completed anything.
  EXPECT_EQ(ctx.executor(2).io_counters().tasks_completed, 0u);
}

TEST(Blacklisting, CutsWastedAttemptsOnAFullyFlakyNode) {
  auto failed_attempts = [](bool blacklist) {
    hw::Cluster cluster(hw::ClusterSpec::das5(4));
    conf::Config config;
    config.set("spark.default.parallelism", "16");
    config.set_int("saex.sim.flakyNode", 2);
    config.set_double("saex.sim.flakyNodeFailureProb", 1.0);
    config.set_bool("spark.blacklist.enabled", blacklist);
    config.set_int("spark.task.maxFailures", 16);
    SparkContext ctx(cluster, config);
    // Replication 1: node 2's blocks are local only to node 2, so without
    // blacklisting it keeps re-picking (and killing) its own tasks until
    // delay scheduling lets healthy nodes steal them.
    ctx.dfs().load_input("/in", gib(4), 1);
    (void)ctx.run_job(ctx.text_file("/in").count(), "x");
    return ctx.event_log().of_kind(EventKind::kTaskFailed).size();
  };
  // With blacklisting node 2 is cut off after its second failure; without
  // it, the node keeps drawing and killing attempts until the stage ends.
  const size_t with = failed_attempts(true);
  const size_t without = failed_attempts(false);
  // The first wave (8 concurrent attempts on node 2) is already in flight
  // when the blacklist trips; everything after it is saved.
  EXPECT_LE(with, 10u);
  EXPECT_GT(without, with);
}

TEST(DelayScheduling, LocalityWaitKeepsTasksLocal) {
  auto net_bytes = [](double wait_seconds) {
    hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
    // One markedly slow node: fast nodes drain their local tasks first and
    // would steal the slow node's blocks unless delay scheduling holds them.
    spec.disk_sigma = 0.0;
    spec.slow_disk_prob = 0.0;
    hw::Cluster cluster(spec);
    cluster.sim();  // (cluster unused; the slow variant below is what runs)
    hw::ClusterSpec slow = spec;
    slow.seed = 5;
    slow.slow_disk_prob = 0.25;
    slow.slow_disk_factor = 0.3;
    hw::Cluster c2(slow);
    conf::Config config;
    config.set("spark.default.parallelism", "16");
    config.set_int("spark.executor.cores", 8);  // 2+ waves of tasks
    config.set("spark.locality.wait",
               strfmt::format("{:.1f}s", wait_seconds));
    SparkContext ctx(c2, config);
    // Replication 1: every block has exactly one home.
    ctx.dfs().load_input("/in", gib(8), 1, mib(64));
    (void)ctx.run_job(ctx.text_file("/in").count(), "local");
    return c2.network().total_bytes();
  };
  // A generous wait keeps everything node-local; no wait lets idle nodes
  // steal remote blocks (some cross-node traffic appears).
  EXPECT_EQ(net_bytes(600.0), 0);
  EXPECT_GT(net_bytes(0.0), 0);
}

TEST(AimdPolicy, RunsAndStaysInBounds) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config config;
  config.set("saex.executor.policy", "aimd");
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", gib(8), 4);
  const JobReport report =
      ctx.run_job(ctx.text_file("/in").save_as_text_file("/out"), "aimd");
  for (const auto& s : report.stages) {
    for (const auto& es : s.executors) {
      EXPECT_GE(es.threads_settled, 2);
      EXPECT_LE(es.threads_settled, 32);
    }
  }
  EXPECT_EQ(report.policy_name, "aimd");
}

TEST(Report, CsvHasHeaderAndOneRowPerStage) {
  hw::Cluster cluster(hw::ClusterSpec::das5(2));
  conf::Config config;
  config.set("spark.default.parallelism", "8");
  SparkContext ctx(cluster, config);
  ctx.dfs().load_input("/in", mib(512), 2);
  const JobReport report = ctx.run_job(
      ctx.text_file("/in").reduce_by_key("g", {0.01, 1.0}, 1.0).count(), "csv");
  const std::string csv = report.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 stages
  EXPECT_NE(csv.find("app,policy,stage"), std::string::npos);
  EXPECT_NE(csv.find("csv,default,0"), std::string::npos);
}

}  // namespace
}  // namespace saex::engine
