#include <gtest/gtest.h>

#include <set>

#include "dfs/dfs.h"

namespace saex::dfs {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : cluster_(hw::ClusterSpec::das5(4)), dfs_(cluster_, {}) {}

  hw::Cluster cluster_;
  Dfs dfs_;
};

TEST_F(DfsTest, SplitsFileIntoBlocks) {
  const FileInfo& f = dfs_.load_input("/in/data", mib(300), 3);
  EXPECT_EQ(f.blocks.size(), 3u);  // 128 + 128 + 44
  EXPECT_EQ(f.blocks[0].size, mib(128));
  EXPECT_EQ(f.blocks[2].size, mib(44));
  Bytes total = 0;
  for (const auto& b : f.blocks) total += b.size;
  EXPECT_EQ(total, mib(300));
}

TEST_F(DfsTest, ReplicationClampedToClusterSize) {
  const FileInfo& f = dfs_.load_input("/in/full", mib(10), 10);
  ASSERT_EQ(f.blocks.size(), 1u);
  EXPECT_EQ(f.blocks[0].replicas.size(), 4u);
}

TEST_F(DfsTest, ReplicasAreDistinctNodes) {
  const FileInfo& f = dfs_.load_input("/in/r3", gib(2), 3);
  for (const auto& b : f.blocks) {
    std::set<int> uniq(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(uniq.size(), b.replicas.size());
    for (int n : b.replicas) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 4);
    }
  }
}

TEST_F(DfsTest, FullReplicationMeansAlwaysLocal) {
  // The paper sets replication = cluster size so read stages are fully local.
  const FileInfo& f = dfs_.load_input("/in/local", gib(1), 4);
  for (const auto& b : f.blocks) {
    for (int node = 0; node < 4; ++node) {
      EXPECT_TRUE(b.is_local_to(node));
      EXPECT_EQ(dfs_.choose_read_source(b, node), node);
    }
  }
}

TEST_F(DfsTest, PrimariesRotateAcrossBlocks) {
  const FileInfo& f = dfs_.load_input("/in/rot", mib(128 * 8), 1);
  ASSERT_EQ(f.blocks.size(), 8u);
  std::set<int> primaries;
  for (const auto& b : f.blocks) primaries.insert(b.replicas[0]);
  EXPECT_EQ(primaries.size(), 4u);  // round-robin covers all nodes
}

TEST_F(DfsTest, OutputPrefersWriterNode) {
  const FileInfo& f = dfs_.create_output("/out/part0", mib(256), 2, 2);
  for (const auto& b : f.blocks) {
    EXPECT_EQ(b.replicas[0], 2);
    EXPECT_EQ(b.replicas.size(), 2u);
  }
}

TEST_F(DfsTest, RemoteReadPicksAReplica) {
  const FileInfo& f = dfs_.load_input("/in/r1", mib(10), 1);
  ASSERT_EQ(f.blocks.size(), 1u);
  const Block& b = f.blocks[0];
  const int owner = b.replicas[0];
  for (int node = 0; node < 4; ++node) {
    if (node == owner) continue;
    EXPECT_EQ(dfs_.choose_read_source(b, node), owner);
  }
}

TEST_F(DfsTest, LookupAndRemove) {
  dfs_.load_input("/a", mib(1), 1);
  EXPECT_TRUE(dfs_.exists("/a"));
  EXPECT_NE(dfs_.lookup("/a"), nullptr);
  dfs_.remove("/a");
  EXPECT_FALSE(dfs_.exists("/a"));
  EXPECT_EQ(dfs_.lookup("/a"), nullptr);
  dfs_.remove("/never-existed");  // no-op
}

TEST_F(DfsTest, EmptyFileHasNoBlocks) {
  const FileInfo& f = dfs_.load_input("/empty", 0, 3);
  EXPECT_TRUE(f.blocks.empty());
  EXPECT_EQ(f.size, 0);
}

TEST(PlacementPolicy, DeterministicGivenSeed) {
  PlacementPolicy a(8, Rng(5)), b(8, Rng(5));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.place(3), b.place(3));
  }
}

}  // namespace
}  // namespace saex::dfs
