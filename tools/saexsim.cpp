// saexsim — command-line front end for the simulator.
//
// Run any workload under any executor policy on a parameterized cluster,
// print the per-stage report, and optionally export the event log:
//
//   saexsim --workload terasort --policy dynamic
//   saexsim --workload pagerank --policy sweep            # static {32..2}
//   saexsim --workload pagerank --policy sweep --jobs 0   # sweep on all cores
//   saexsim --workload join --nodes 16 --ssd --seed 7
//   saexsim --workload terasort --policy dynamic --trace /tmp/run.json
//   saexsim serve --jobs 50 --mode FAIR --dynalloc       # multi-tenant server
//   saexsim --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/log.h"
#include "fault/fault.h"
#include "prof/profiler.h"
#include "storage/eviction.h"
#include "harness/harness.h"
#include "serve/job_server.h"
#include "shard/sharded_server.h"
#include "workloads/workloads.h"

namespace {

using namespace saex;

const char* kWorkloadChoices =
    "terasort pagerank aggregation join scan bayes lda nweight svm "
    "wordcount sort kmeans skewshuffle tinyparts";
const char* kPolicyChoices = "default static dynamic aimd sweep";
const char* kStoragePolicyChoices = "none lru clock s3fifo tinylfu";
const char* kModeChoices = "FIFO FAIR";

struct Args {
  bool serve = false;  // "serve" subcommand
  std::string workload = "terasort";
  std::string policy = "dynamic";
  int nodes = 4;
  bool ssd = false;
  uint64_t seed = 42;
  int io_threads = 8;
  double size_gib = 0.0;  // 0 = workload preset
  int parallelism = 0;    // 0 = nodes * 32
  double failure_prob = 0.0;
  bool speculation = false;

  // Storage layer (saex.storage.*).
  double storage_mem_gib = -1.0;  // <0 = config default (node memory fraction)
  std::string storage_policy;     // empty = config default ("none")

  // Network data plane (saex.net.*).
  bool flow_batch = false;

  // Adaptive query execution (saex.aqe.*).
  bool aqe = false;
  std::string aqe_target;          // empty = config default ("64m")
  double aqe_skew_factor = -1.0;   // <0 = config default (4.0)
  int aqe_min_partitions = -1;     // <0 = config default (1)
  bool aqe_tuner = false;

  // Fault injection (saex.fault.*).
  int kill_node = -1;
  double kill_time = -1.0;
  int64_t kill_after_tasks = -1;
  int slow_node = -1;
  double slow_factor = 0.3;
  double slow_time = 0.0;
  double fetch_fail_prob = 0.0;
  int fetch_fail_node = -1;
  std::string chaos;  // --chaos: file path or inline kill/rejoin spec
  std::string eventlog_path;
  std::string trace_path;
  bool list = false;
  bool help = false;
  bool profile = false;
  std::string profile_json_path;
  // Harness parallelism for multi-run modes (policy sweep). In the serve
  // subcommand --jobs means trace length instead (kept for compatibility).
  int par_jobs = 1;

  // serve subcommand
  int serve_jobs = 50;
  double arrival_mean = 3.0;
  std::string arrival = "exp";
  double pareto_shape = 1.5;
  std::string mode = "FAIR";
  std::string pools = "interactive:3:16,batch:1:0";
  int max_concurrent = 8;
  int max_queued = 64;
  int max_per_client = 0;
  bool dynalloc = false;
  bool jobs_table = false;

  // serve resilience (saex.serve.* / saex.resilience.*).
  double deadline = -1.0;    // default relative SLO deadline, seconds
  bool deadline_set = false;
  int max_retries = -1;      // -1 = config default (0)
  bool max_retries_set = false;
  bool quarantine = false;

  // serve sharding (saex.shard.*): any of these flags selects the sharded
  // path even at --shards 1 (useful to demo the 1-shard identity).
  bool sharded = false;
  int shards = 1;
  int shard_workers = 1;
  std::string placement = "hash";
  double shard_window = 0.0;
};

void usage() {
  std::printf(
      "saexsim — self-adaptive-executor simulator\n"
      "\n"
      "  --workload NAME     one of: %s\n"
      "                      (default terasort); --list shows details\n"
      "  --policy P          one of: %s (default dynamic);\n"
      "                      sweep runs the static {32,16,8,4,2} series\n"
      "  --io-threads N      static policy thread count (default 8)\n"
      "  --nodes N           cluster size (default 4)\n"
      "  --ssd               SSDs instead of HDDs\n"
      "  --seed S            cluster heterogeneity seed (default 42)\n"
      "  --size-gib X        override the workload's input size\n"
      "  --parallelism P     shuffle partitions (default nodes*32)\n"
      "  --failures P        per-attempt task failure probability\n"
      "  --speculation       enable speculative execution\n"
      "  --storage-mem GIB   per-node cache-storage budget in GiB\n"
      "                      (default: spark.memory.fraction x\n"
      "                      spark.memory.storageFraction x node memory)\n"
      "  --storage-policy P  block eviction policy, one of: %s\n"
      "  --flow-batch        flow-batched shuffle data plane: one network\n"
      "                      flow per (source, reducer) pair instead of one\n"
      "                      transfer per chunk per block (saex.net.flowBatch)\n"
      "  --aqe               adaptive query execution: re-plan reduce stages\n"
      "                      from actual map-output sizes (coalesce tiny\n"
      "                      partitions, split skewed ones)\n"
      "  --aqe-target B      coalesce target bytes, e.g. 64m (default 64m)\n"
      "  --aqe-skew-factor F split partitions above F x median (default 4)\n"
      "  --aqe-min-parts N   never coalesce below N tasks (default 0 =\n"
      "                      spark.default.parallelism)\n"
      "  --aqe-tuner         per-stage multi-knob tuner: fitted cost model\n"
      "                      picks the coalesce target and seeds pool sizes\n"
      "  --kill-node N       fault: kill executor N (with --kill-time or\n"
      "                      --kill-after-tasks)\n"
      "  --kill-time T       fault: kill trigger, simulated seconds\n"
      "  --kill-after-tasks K  fault: kill after K finished task attempts\n"
      "  --slow-node N       fault: degrade node N's disk (straggler)\n"
      "  --slow-factor F     fault: degraded disk speed factor (default 0.3)\n"
      "  --slow-time T       fault: when the degradation hits (default 0)\n"
      "  --fetch-fail P      fault: transient shuffle-fetch drop probability\n"
      "  --fetch-fail-node N fault: only fetches FROM node N can drop\n"
      "  --chaos SPEC        fault: scripted churn timeline — a file path or\n"
      "                      an inline 'kill:<node>@<sec>,rejoin:<node>@<sec>'\n"
      "                      list ('#' comments; ',' or whitespace separated)\n"
      "  --eventlog FILE     write the event log as JSON lines\n"
      "  --trace FILE        write a chrome://tracing file\n"
      "  --jobs N            run the sweep's 5 simulations on N worker\n"
      "                      threads (0 = all cores); results are identical\n"
      "                      to the serial run. Sweep eventlog/trace files\n"
      "                      get a .<threads> suffix per run.\n"
      "  --profile           record per-subsystem wall time; print the\n"
      "                      profiler table after the run (SAEX_PROFILE=1\n"
      "                      in the environment does the same)\n"
      "  --profile-json FILE record per-subsystem wall time and write it as\n"
      "                      JSON ({name, calls, inclusive_ns, exclusive_ns}\n"
      "                      per subsystem) after the run\n"
      "  --verbose           INFO-level engine logging\n"
      "\n"
      "saexsim serve — multi-tenant job server replaying an arrival trace\n"
      "\n"
      "  --jobs N            trace length (default 50)\n"
      "  --arrival-mean X    mean inter-arrival seconds, exponential (default 3)\n"
      "  --arrival LAW       inter-arrival law: exp | pareto (heavy-tailed\n"
      "                      Lomax gaps, same mean; default exp)\n"
      "  --pareto-shape A    Lomax tail index, > 1 (default 1.5)\n"
      "  --shards S          split the cluster across S drivers/event kernels\n"
      "                      with a cross-shard job router (default 1)\n"
      "  --workers W         OS threads advancing the shard kernels (0 = all\n"
      "                      cores); the merged report is identical for any W\n"
      "  --placement P       shard router policy: hash | least | rr\n"
      "                      (default hash)\n"
      "  --window T          force a finite lookahead window of T simulated\n"
      "                      seconds (default: derived — unbounded, since\n"
      "                      jobs never span shards)\n"
      "  --mode M            one of: %s (default FAIR)\n"
      "  --pools SPEC        name:weight:minShare,... (default\n"
      "                      interactive:3:16,batch:1:0)\n"
      "  --max-concurrent N  admission: jobs running at once (default 8)\n"
      "  --max-queued N      admission: queue capacity (default 64)\n"
      "  --max-per-client N  admission: per-client quota, 0=off (default 0)\n"
      "  --dynalloc          enable dynamic executor allocation\n"
      "  --deadline T        default per-job SLO deadline in seconds (> 0);\n"
      "                      queued jobs past it are shed, running jobs\n"
      "                      cancelled\n"
      "  --max-retries N     re-run failed jobs up to N times with seeded\n"
      "                      exponential backoff (default 0)\n"
      "  --quarantine        enable the node-health circuit breaker\n"
      "  --jobs-table        also print the per-submission table\n"
      "  (--policy, --nodes, --ssd, --seed, --parallelism, --eventlog,\n"
      "   --trace apply here too)\n",
      kWorkloadChoices, kPolicyChoices, kStoragePolicyChoices, kModeChoices);
}

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    args.serve = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--workload") {
      args.workload = value();
    } else if (a == "--policy") {
      args.policy = value();
    } else if (a == "--io-threads") {
      args.io_threads = std::atoi(value());
    } else if (a == "--nodes") {
      args.nodes = std::atoi(value());
    } else if (a == "--ssd") {
      args.ssd = true;
    } else if (a == "--seed") {
      args.seed = std::strtoull(value(), nullptr, 10);
    } else if (a == "--size-gib") {
      args.size_gib = std::atof(value());
    } else if (a == "--parallelism") {
      args.parallelism = std::atoi(value());
    } else if (a == "--failures") {
      args.failure_prob = std::atof(value());
    } else if (a == "--speculation") {
      args.speculation = true;
    } else if (a == "--storage-mem") {
      args.storage_mem_gib = std::atof(value());
    } else if (a == "--storage-policy") {
      args.storage_policy = value();
    } else if (a == "--flow-batch") {
      args.flow_batch = true;
    } else if (a == "--aqe") {
      args.aqe = true;
    } else if (a == "--aqe-target") {
      args.aqe_target = value();
      args.aqe = true;
    } else if (a == "--aqe-skew-factor") {
      args.aqe_skew_factor = std::atof(value());
      args.aqe = true;
    } else if (a == "--aqe-min-parts") {
      args.aqe_min_partitions = std::atoi(value());
      args.aqe = true;
    } else if (a == "--aqe-tuner") {
      args.aqe_tuner = true;
      args.aqe = true;
    } else if (a == "--kill-node") {
      args.kill_node = std::atoi(value());
    } else if (a == "--kill-time") {
      args.kill_time = std::atof(value());
    } else if (a == "--kill-after-tasks") {
      args.kill_after_tasks = std::atoll(value());
    } else if (a == "--slow-node") {
      args.slow_node = std::atoi(value());
    } else if (a == "--slow-factor") {
      args.slow_factor = std::atof(value());
    } else if (a == "--slow-time") {
      args.slow_time = std::atof(value());
    } else if (a == "--fetch-fail") {
      args.fetch_fail_prob = std::atof(value());
    } else if (a == "--fetch-fail-node") {
      args.fetch_fail_node = std::atoi(value());
    } else if (a == "--chaos") {
      args.chaos = value();
    } else if (a == "--eventlog") {
      args.eventlog_path = value();
    } else if (a == "--trace") {
      args.trace_path = value();
    } else if (a == "--jobs") {
      if (args.serve) {
        args.serve_jobs = std::atoi(value());
      } else {
        args.par_jobs = harness::resolve_jobs(std::atoi(value()));
      }
    } else if (a == "--arrival-mean") {
      args.arrival_mean = std::atof(value());
    } else if (a == "--arrival") {
      args.arrival = value();
    } else if (a == "--pareto-shape") {
      args.pareto_shape = std::atof(value());
    } else if (a == "--shards") {
      args.shards = std::atoi(value());
      args.sharded = true;
    } else if (a == "--workers") {
      args.shard_workers = harness::resolve_jobs(std::atoi(value()));
      args.sharded = true;
    } else if (a == "--placement") {
      args.placement = value();
      args.sharded = true;
    } else if (a == "--window") {
      args.shard_window = std::atof(value());
      args.sharded = true;
    } else if (a == "--mode") {
      args.mode = value();
    } else if (a == "--pools") {
      args.pools = value();
    } else if (a == "--max-concurrent") {
      args.max_concurrent = std::atoi(value());
    } else if (a == "--max-queued") {
      args.max_queued = std::atoi(value());
    } else if (a == "--max-per-client") {
      args.max_per_client = std::atoi(value());
    } else if (a == "--dynalloc") {
      args.dynalloc = true;
    } else if (a == "--deadline") {
      args.deadline = std::atof(value());
      args.deadline_set = true;
    } else if (a == "--max-retries") {
      args.max_retries = std::atoi(value());
      args.max_retries_set = true;
    } else if (a == "--quarantine") {
      args.quarantine = true;
    } else if (a == "--jobs-table") {
      args.jobs_table = true;
    } else if (a == "--profile") {
      args.profile = true;
    } else if (a == "--profile-json") {
      args.profile_json_path = value();
    } else if (a == "--verbose") {
      log::set_level(log::Level::kInfo);
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--help" || a == "-h") {
      args.help = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a.c_str());
      return std::nullopt;
    }
  }
  return args;
}

std::optional<workloads::WorkloadSpec> find_workload(const std::string& name,
                                                     double size_gib) {
  const Bytes size = size_gib > 0 ? gib(size_gib) : 0;
  auto sized = [&](workloads::WorkloadSpec preset,
                   auto remake) -> workloads::WorkloadSpec {
    return size > 0 ? remake(size) : preset;
  };
  if (name == "terasort")
    return sized(workloads::terasort(), [](Bytes b) { return workloads::terasort(b); });
  if (name == "pagerank")
    return sized(workloads::pagerank(), [](Bytes b) { return workloads::pagerank(b); });
  if (name == "aggregation")
    return sized(workloads::aggregation(), [](Bytes b) { return workloads::aggregation(b); });
  if (name == "join")
    return sized(workloads::join(), [](Bytes b) { return workloads::join(b); });
  if (name == "scan")
    return sized(workloads::scan(), [](Bytes b) { return workloads::scan(b); });
  if (name == "bayes")
    return sized(workloads::bayes(), [](Bytes b) { return workloads::bayes(b); });
  if (name == "lda")
    return sized(workloads::lda(), [](Bytes b) { return workloads::lda(b); });
  if (name == "nweight")
    return sized(workloads::nweight(), [](Bytes b) { return workloads::nweight(b); });
  if (name == "svm")
    return sized(workloads::svm(), [](Bytes b) { return workloads::svm(b); });
  if (name == "wordcount")
    return sized(workloads::wordcount(), [](Bytes b) { return workloads::wordcount(b); });
  if (name == "sort")
    return sized(workloads::sort(), [](Bytes b) { return workloads::sort(b); });
  if (name == "kmeans")
    return sized(workloads::kmeans(), [](Bytes b) { return workloads::kmeans(b); });
  if (name == "skewshuffle")
    return sized(workloads::skewshuffle(), [](Bytes b) { return workloads::skewshuffle(b); });
  if (name == "tinyparts")
    return sized(workloads::tinyparts(), [](Bytes b) { return workloads::tinyparts(b); });
  return std::nullopt;
}

void apply_aqe_flags(conf::Config& config, const Args& args) {
  if (!args.aqe) return;
  config.set_bool("saex.aqe.enabled", true);
  if (!args.aqe_target.empty()) {
    config.set("saex.aqe.targetPartitionBytes", args.aqe_target);
  }
  if (args.aqe_skew_factor >= 0.0) {
    config.set_double("saex.aqe.skewFactor", args.aqe_skew_factor);
  }
  if (args.aqe_min_partitions >= 0) {
    config.set_int("saex.aqe.minPartitions", args.aqe_min_partitions);
  }
  if (args.aqe_tuner) config.set_bool("saex.aqe.tuner", true);
}

void apply_fault_flags(conf::Config& config, const Args& args) {
  if (args.kill_node < 0 && args.slow_node < 0 &&
      args.fetch_fail_prob <= 0.0 && args.chaos.empty()) {
    return;
  }
  config.set_bool("saex.fault.enabled", true);
  config.set_int("saex.fault.killNode", args.kill_node);
  config.set("saex.fault.killTime", strfmt::format("{}", args.kill_time));
  config.set_int("saex.fault.killAfterTasks", args.kill_after_tasks);
  config.set_int("saex.fault.slowNode", args.slow_node);
  config.set_double("saex.fault.slowFactor", args.slow_factor);
  config.set("saex.fault.slowTime", strfmt::format("{}", args.slow_time));
  config.set_double("saex.fault.fetchFailProb", args.fetch_fail_prob);
  config.set_int("saex.fault.fetchFailNode", args.fetch_fail_node);
  config.set("saex.fault.chaos", args.chaos);
}

// Resolves --chaos: a readable file's contents, otherwise the argument
// itself as an inline spec. Either way the result must parse; a typed
// ConfigError is reported in the usual saexsim style (rc 2 at the caller).
bool resolve_chaos_flag(std::string& chaos) {
  if (std::ifstream file(chaos); file.good()) {
    std::ostringstream contents;
    contents << file.rdbuf();
    chaos = contents.str();
  }
  try {
    (void)fault::parse_chaos(chaos);
  } catch (const conf::ConfigError& e) {
    std::fprintf(stderr, "invalid --chaos spec: %s\n", e.what());
    return false;
  }
  return true;
}

conf::Config make_config(const Args& args, const std::string& policy) {
  conf::Config config;
  config.set("saex.executor.policy", policy == "sweep" ? "static" : policy);
  config.set_int("saex.static.ioThreads", args.io_threads);
  config.set_int("spark.default.parallelism",
                 args.parallelism > 0 ? args.parallelism : args.nodes * 32);
  config.set_double("saex.sim.taskFailureProb", args.failure_prob);
  config.set_bool("spark.speculation", args.speculation);
  if (args.storage_mem_gib >= 0) {
    config.set("saex.storage.memory",
               strfmt::format("{}", gib(args.storage_mem_gib)));
  }
  if (!args.storage_policy.empty()) {
    config.set("saex.storage.policy", args.storage_policy);
  }
  if (args.flow_batch) config.set_bool("saex.net.flowBatch", true);
  apply_aqe_flags(config, args);
  apply_fault_flags(config, args);
  return config;
}

struct RunResult {
  int rc = 0;
  std::string text;  // rendered report + file-write notices
};

// One full simulation, rendered into a string so sweep runs can execute on
// harness worker threads and still print in deterministic order.
RunResult simulate_once(const Args& args, const workloads::WorkloadSpec& spec,
                        const std::string& policy, int io_threads,
                        const std::string& eventlog_path,
                        const std::string& trace_path) {
  hw::ClusterSpec cs = args.ssd ? hw::ClusterSpec::das5_ssd(args.nodes)
                                : hw::ClusterSpec::das5(args.nodes);
  cs.seed = args.seed;
  hw::Cluster cluster(cs);

  conf::Config config = make_config(args, policy);
  config.set_int("saex.static.ioThreads", io_threads);

  RunResult res;
  engine::SparkContext ctx(cluster, std::move(config));
  engine::JobReport report;
  bool first = true;
  for (const engine::Rdd& action : spec.build(ctx)) {
    engine::JobReport r;
    try {
      r = ctx.run_job(action, spec.name);
    } catch (const engine::StageAbortedError& e) {
      res.text += strfmt::format("job failed: {}\n", e.what());
      res.rc = 1;
      return res;
    }
    if (first) {
      report = std::move(r);
      first = false;
    } else {
      report.total_runtime += r.total_runtime;
      report.total_disk_bytes += r.total_disk_bytes;
      report.events_processed = r.events_processed;
      for (auto& s : r.stages) report.stages.push_back(std::move(s));
    }
  }
  for (size_t i = 0; i < report.stages.size(); ++i) {
    report.stages[i].ordinal = static_cast<int>(i);
  }
  report.input_bytes = spec.input_size;
  res.text += report.render() + "\n";

  if (!eventlog_path.empty()) {
    const bool ok = engine::EventLog::write_file(
        eventlog_path, ctx.event_log().to_json_lines());
    res.text += strfmt::format("{} event log -> {}\n",
                               ok ? "wrote" : "FAILED to write", eventlog_path);
  }
  if (!trace_path.empty()) {
    const bool ok = engine::EventLog::write_file(
        trace_path, ctx.event_log().to_chrome_trace());
    res.text += strfmt::format(
        "{} chrome trace -> {} (open in chrome://tracing)\n",
        ok ? "wrote" : "FAILED to write", trace_path);
  }
  return res;
}

int run_once(const Args& args, const workloads::WorkloadSpec& spec,
             const std::string& policy, int io_threads) {
  const RunResult res = simulate_once(args, spec, policy, io_threads,
                                      args.eventlog_path, args.trace_path);
  std::fputs(res.text.c_str(), res.rc == 0 ? stdout : stderr);
  return res.rc;
}

// The static {32,16,8,4,2} sweep: 5 independent simulations run on
// args.par_jobs harness workers. Output order (and every number in it) is
// identical to the serial loop; per-run eventlog/trace files get a
// .<threads> suffix so parallel runs never race on one path.
int run_sweep(const Args& args, const workloads::WorkloadSpec& spec) {
  const std::vector<int> threads = {32, 16, 8, 4, 2};
  std::vector<std::function<RunResult()>> tasks;
  for (const int t : threads) {
    const std::string suffix = strfmt::format(".{}", t);
    const std::string eventlog =
        args.eventlog_path.empty() ? "" : args.eventlog_path + suffix;
    const std::string trace =
        args.trace_path.empty() ? "" : args.trace_path + suffix;
    tasks.push_back([&args, &spec, t, eventlog, trace] {
      return simulate_once(args, spec, "static", t, eventlog, trace);
    });
  }
  std::vector<RunResult> results =
      harness::run_ordered(std::move(tasks), args.par_jobs);
  int rc = 0;
  for (size_t i = 0; i < threads.size(); ++i) {
    std::printf("==== static, %d threads on I/O stages ====\n", threads[i]);
    std::fputs(results[i].text.c_str(), stdout);
    rc = rc != 0 ? rc : results[i].rc;
  }
  return rc;
}

// Sharded serve: S driver/kernel stacks behind the job router, advanced on
// W worker threads. Event logs are per shard (".<shard>" suffix when S > 1).
int run_serve_sharded(const Args& args, const hw::ClusterSpec& cs,
                      conf::Config config,
                      const serve::TraceOptions& trace_options) {
  config.set_int("saex.shard.count", args.shards);
  config.set_int("saex.shard.workers", args.shard_workers);
  config.set("saex.shard.placement", args.placement);
  config.set("saex.shard.window", strfmt::format("{}", args.shard_window));

  shard::ShardedServer server(cs, config);
  const shard::ShardedServeReport report =
      server.replay(serve::make_trace(trace_options), trace_options);

  std::printf("%s\n", report.render().c_str());
  if (args.jobs_table) std::printf("\n%s\n", report.render_jobs().c_str());

  for (int s = 0; s < server.topology().shards(); ++s) {
    const std::string suffix =
        server.topology().shards() > 1 ? strfmt::format(".{}", s) : "";
    if (!args.eventlog_path.empty()) {
      const std::string path = args.eventlog_path + suffix;
      const bool ok = engine::EventLog::write_file(
          path, server.context(s).event_log().to_json_lines());
      std::printf("%s event log -> %s\n", ok ? "wrote" : "FAILED to write",
                  path.c_str());
    }
    if (!args.trace_path.empty()) {
      const std::string path = args.trace_path + suffix;
      const bool ok = engine::EventLog::write_file(
          path, server.context(s).event_log().to_chrome_trace());
      std::printf("%s chrome trace -> %s (open in chrome://tracing)\n",
                  ok ? "wrote" : "FAILED to write", path.c_str());
    }
  }
  return 0;
}

int run_serve(const Args& args) {
  hw::ClusterSpec cs = args.ssd ? hw::ClusterSpec::das5_ssd(args.nodes)
                                : hw::ClusterSpec::das5(args.nodes);
  cs.seed = args.seed;

  conf::Config config;
  config.set("saex.executor.policy", args.policy);
  config.set_int("saex.static.ioThreads", args.io_threads);
  config.set_int("spark.default.parallelism",
                 args.parallelism > 0 ? args.parallelism : args.nodes * 32);
  config.set_double("saex.sim.taskFailureProb", args.failure_prob);
  config.set_bool("spark.speculation", args.speculation);
  config.set("saex.scheduler.mode", args.mode);
  config.set("saex.scheduler.pools", args.pools);
  config.set_int("saex.serve.maxConcurrentJobs", args.max_concurrent);
  config.set_int("saex.serve.maxQueuedJobs", args.max_queued);
  config.set_int("saex.serve.maxJobsPerClient", args.max_per_client);
  if (args.deadline > 0.0) {
    config.set("saex.serve.defaultDeadline",
               strfmt::format("{}", args.deadline));
  }
  if (args.max_retries >= 0) {
    config.set_int("saex.serve.maxRetries", args.max_retries);
  }
  if (args.quarantine) {
    config.set_bool("saex.resilience.quarantine", true);
  }
  if (args.flow_batch) config.set_bool("saex.net.flowBatch", true);
  apply_aqe_flags(config, args);
  apply_fault_flags(config, args);
  if (args.dynalloc) {
    config.set_bool("spark.dynamicAllocation.enabled", true);
    config.set_int("spark.dynamicAllocation.minExecutors", 1);
    config.set_int("spark.dynamicAllocation.initialExecutors", 1);
    config.set("spark.dynamicAllocation.executorIdleTimeout", "10s");
  }

  try {
    serve::TraceOptions trace_options;
    trace_options.num_jobs = args.serve_jobs;
    trace_options.mean_interarrival = args.arrival_mean;
    trace_options.arrival = args.arrival;
    trace_options.pareto_shape = args.pareto_shape;
    trace_options.seed = args.seed;

    if (args.sharded) {
      return run_serve_sharded(args, cs, std::move(config), trace_options);
    }

    hw::Cluster cluster(cs);
    engine::SparkContext ctx(cluster, std::move(config));
    serve::JobServer server(ctx);
    const serve::ServeReport report =
        server.replay(serve::make_trace(trace_options), trace_options);

    std::printf("%s\n", report.render().c_str());
    if (args.jobs_table) std::printf("\n%s\n", report.render_jobs().c_str());

    if (!args.eventlog_path.empty()) {
      const bool ok = engine::EventLog::write_file(
          args.eventlog_path, ctx.event_log().to_json_lines());
      std::printf("%s event log -> %s\n", ok ? "wrote" : "FAILED to write",
                  args.eventlog_path.c_str());
    }
    if (!args.trace_path.empty()) {
      const bool ok = engine::EventLog::write_file(
          args.trace_path, ctx.event_log().to_chrome_trace());
      std::printf("%s chrome trace -> %s (open in chrome://tracing)\n",
                  ok ? "wrote" : "FAILED to write", args.trace_path.c_str());
    }
  } catch (const conf::ConfigError& e) {
    std::fprintf(stderr, "invalid serve configuration: %s\n", e.what());
    return 2;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid serve trace options: %s\n", e.what());
    return 2;
  }
  return 0;
}

// Prints the profiler table and/or writes the JSON breakdown at exit,
// whichever of --profile / --profile-json asked for it.
void finish_profiling(const Args& args) {
  if (prof::Profiler::enabled()) {
    std::printf("\n%s", prof::Profiler::report().c_str());
  }
  if (args.profile_json_path.empty()) return;
  std::ofstream out(args.profile_json_path);
  if (out.good()) {
    out << prof::Profiler::report_json();
    std::printf("wrote profile json -> %s\n", args.profile_json_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED to write profile json -> %s\n",
                 args.profile_json_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  prof::Profiler::init_from_env();
  const auto parsed = parse(argc, argv);
  if (!parsed) return 2;
  Args args = *parsed;
  if (!args.chaos.empty() && !resolve_chaos_flag(args.chaos)) return 2;
  if (args.deadline_set && args.deadline <= 0.0) {
    std::fprintf(stderr, "--deadline must be > 0 (seconds, got %g)\n",
                 args.deadline);
    return 2;
  }
  if (args.max_retries_set && args.max_retries < 0) {
    std::fprintf(stderr, "--max-retries must be >= 0 (got %d)\n",
                 args.max_retries);
    return 2;
  }
  if (args.profile || !args.profile_json_path.empty()) {
    prof::Profiler::set_enabled(true);
  }
  if (args.help) {
    usage();
    return 0;
  }
  if (args.list) {
    std::printf("%-12s %-10s %-12s %s\n", "name", "type", "input", "paper I/O ratio");
    for (const auto& w : workloads::table2_workloads()) {
      std::printf("%-12s %-10s %-12s %.2fx\n", w.name.c_str(), w.type.c_str(),
                  format_bytes(w.input_size).c_str(), w.paper_io_ratio);
    }
    for (const auto& w : workloads::extra_workloads()) {
      std::printf("%-12s %-10s %-12s (extension)\n", w.name.c_str(),
                  w.type.c_str(), format_bytes(w.input_size).c_str());
    }
    return 0;
  }

  if (!args.storage_policy.empty() &&
      !storage::is_valid_eviction_policy(args.storage_policy)) {
    std::fprintf(stderr, "unknown storage policy '%s' (valid: %s)\n",
                 args.storage_policy.c_str(), kStoragePolicyChoices);
    return 2;
  }
  if (args.storage_mem_gib < 0 && args.storage_mem_gib != -1.0) {
    std::fprintf(stderr, "--storage-mem must be >= 0 (GiB)\n");
    return 2;
  }

  const bool serve_policy_ok =
      args.policy == "default" || args.policy == "static" ||
      args.policy == "dynamic" || args.policy == "aimd";
  if (args.serve) {
    if (!serve_policy_ok) {
      std::fprintf(stderr,
                   "unknown policy '%s' for serve (valid: default static "
                   "dynamic aimd)\n",
                   args.policy.c_str());
      return 2;
    }
    if (args.mode != "FIFO" && args.mode != "FAIR") {
      std::fprintf(stderr, "unknown scheduling mode '%s' (valid: %s)\n",
                   args.mode.c_str(), kModeChoices);
      return 2;
    }
    const int rc = run_serve(args);
    finish_profiling(args);
    return rc;
  }

  const auto spec = find_workload(args.workload, args.size_gib);
  if (!spec) {
    std::fprintf(stderr, "unknown workload '%s' (valid: %s; --list shows details)\n",
                 args.workload.c_str(), kWorkloadChoices);
    return 2;
  }

  if (args.policy == "sweep") {
    const int rc = run_sweep(args, *spec);
    finish_profiling(args);
    return rc;
  }
  if (!serve_policy_ok) {
    std::fprintf(stderr, "unknown policy '%s' (valid: %s)\n",
                 args.policy.c_str(), kPolicyChoices);
    return 2;
  }
  const int rc = run_once(args, *spec, args.policy, args.io_threads);
  finish_profiling(args);
  return rc;
}
