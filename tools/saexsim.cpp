// saexsim — command-line front end for the simulator.
//
// Run any workload under any executor policy on a parameterized cluster,
// print the per-stage report, and optionally export the event log:
//
//   saexsim --workload terasort --policy dynamic
//   saexsim --workload pagerank --policy sweep            # static {32..2}
//   saexsim --workload join --nodes 16 --ssd --seed 7
//   saexsim --workload terasort --policy dynamic --trace /tmp/run.json
//   saexsim --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/log.h"
#include "workloads/workloads.h"

namespace {

using namespace saex;

struct Args {
  std::string workload = "terasort";
  std::string policy = "dynamic";
  int nodes = 4;
  bool ssd = false;
  uint64_t seed = 42;
  int io_threads = 8;
  double size_gib = 0.0;  // 0 = workload preset
  int parallelism = 0;    // 0 = nodes * 32
  double failure_prob = 0.0;
  bool speculation = false;
  std::string eventlog_path;
  std::string trace_path;
  bool list = false;
  bool help = false;
};

void usage() {
  std::puts(
      "saexsim — self-adaptive-executor simulator\n"
      "\n"
      "  --workload NAME     terasort|pagerank|aggregation|join|scan|bayes|\n"
      "                      lda|nweight|svm (default terasort); --list shows all\n"
      "  --policy P          default|static|dynamic|sweep (default dynamic);\n"
      "                      sweep runs the static {32,16,8,4,2} series\n"
      "  --io-threads N      static policy thread count (default 8)\n"
      "  --nodes N           cluster size (default 4)\n"
      "  --ssd               SSDs instead of HDDs\n"
      "  --seed S            cluster heterogeneity seed (default 42)\n"
      "  --size-gib X        override the workload's input size\n"
      "  --parallelism P     shuffle partitions (default nodes*32)\n"
      "  --failures P        per-attempt task failure probability\n"
      "  --speculation       enable speculative execution\n"
      "  --eventlog FILE     write the event log as JSON lines\n"
      "  --trace FILE        write a chrome://tracing file\n"
      "  --verbose           INFO-level engine logging\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--workload") {
      args.workload = value();
    } else if (a == "--policy") {
      args.policy = value();
    } else if (a == "--io-threads") {
      args.io_threads = std::atoi(value());
    } else if (a == "--nodes") {
      args.nodes = std::atoi(value());
    } else if (a == "--ssd") {
      args.ssd = true;
    } else if (a == "--seed") {
      args.seed = std::strtoull(value(), nullptr, 10);
    } else if (a == "--size-gib") {
      args.size_gib = std::atof(value());
    } else if (a == "--parallelism") {
      args.parallelism = std::atoi(value());
    } else if (a == "--failures") {
      args.failure_prob = std::atof(value());
    } else if (a == "--speculation") {
      args.speculation = true;
    } else if (a == "--eventlog") {
      args.eventlog_path = value();
    } else if (a == "--trace") {
      args.trace_path = value();
    } else if (a == "--verbose") {
      log::set_level(log::Level::kInfo);
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--help" || a == "-h") {
      args.help = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a.c_str());
      return std::nullopt;
    }
  }
  return args;
}

std::optional<workloads::WorkloadSpec> find_workload(const std::string& name,
                                                     double size_gib) {
  const Bytes size = size_gib > 0 ? gib(size_gib) : 0;
  auto sized = [&](workloads::WorkloadSpec preset,
                   auto remake) -> workloads::WorkloadSpec {
    return size > 0 ? remake(size) : preset;
  };
  if (name == "terasort")
    return sized(workloads::terasort(), [](Bytes b) { return workloads::terasort(b); });
  if (name == "pagerank")
    return sized(workloads::pagerank(), [](Bytes b) { return workloads::pagerank(b); });
  if (name == "aggregation")
    return sized(workloads::aggregation(), [](Bytes b) { return workloads::aggregation(b); });
  if (name == "join")
    return sized(workloads::join(), [](Bytes b) { return workloads::join(b); });
  if (name == "scan")
    return sized(workloads::scan(), [](Bytes b) { return workloads::scan(b); });
  if (name == "bayes")
    return sized(workloads::bayes(), [](Bytes b) { return workloads::bayes(b); });
  if (name == "lda")
    return sized(workloads::lda(), [](Bytes b) { return workloads::lda(b); });
  if (name == "nweight")
    return sized(workloads::nweight(), [](Bytes b) { return workloads::nweight(b); });
  if (name == "svm")
    return sized(workloads::svm(), [](Bytes b) { return workloads::svm(b); });
  if (name == "wordcount")
    return sized(workloads::wordcount(), [](Bytes b) { return workloads::wordcount(b); });
  if (name == "sort")
    return sized(workloads::sort(), [](Bytes b) { return workloads::sort(b); });
  if (name == "kmeans")
    return sized(workloads::kmeans(), [](Bytes b) { return workloads::kmeans(b); });
  return std::nullopt;
}

conf::Config make_config(const Args& args, const std::string& policy) {
  conf::Config config;
  config.set("saex.executor.policy", policy == "sweep" ? "static" : policy);
  config.set_int("saex.static.ioThreads", args.io_threads);
  config.set_int("spark.default.parallelism",
                 args.parallelism > 0 ? args.parallelism : args.nodes * 32);
  config.set_double("saex.sim.taskFailureProb", args.failure_prob);
  config.set_bool("spark.speculation", args.speculation);
  return config;
}

int run_once(const Args& args, const workloads::WorkloadSpec& spec,
             const std::string& policy, int io_threads) {
  hw::ClusterSpec cs = args.ssd ? hw::ClusterSpec::das5_ssd(args.nodes)
                                : hw::ClusterSpec::das5(args.nodes);
  cs.seed = args.seed;
  hw::Cluster cluster(cs);

  conf::Config config = make_config(args, policy);
  config.set_int("saex.static.ioThreads", io_threads);

  engine::SparkContext ctx(cluster, std::move(config));
  engine::JobReport report;
  bool first = true;
  for (const engine::Rdd& action : spec.build(ctx)) {
    engine::JobReport r = ctx.run_job(action, spec.name);
    if (first) {
      report = std::move(r);
      first = false;
    } else {
      report.total_runtime += r.total_runtime;
      report.total_disk_bytes += r.total_disk_bytes;
      for (auto& s : r.stages) report.stages.push_back(std::move(s));
    }
  }
  for (size_t i = 0; i < report.stages.size(); ++i) {
    report.stages[i].ordinal = static_cast<int>(i);
  }
  report.input_bytes = spec.input_size;
  std::printf("%s\n", report.render().c_str());

  if (!args.eventlog_path.empty()) {
    const bool ok = engine::EventLog::write_file(
        args.eventlog_path, ctx.event_log().to_json_lines());
    std::printf("%s event log -> %s\n", ok ? "wrote" : "FAILED to write",
                args.eventlog_path.c_str());
  }
  if (!args.trace_path.empty()) {
    const bool ok = engine::EventLog::write_file(
        args.trace_path, ctx.event_log().to_chrome_trace());
    std::printf("%s chrome trace -> %s (open in chrome://tracing)\n",
                ok ? "wrote" : "FAILED to write", args.trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 2;
  const Args& args = *parsed;
  if (args.help) {
    usage();
    return 0;
  }
  if (args.list) {
    std::printf("%-12s %-10s %-12s %s\n", "name", "type", "input", "paper I/O ratio");
    for (const auto& w : workloads::table2_workloads()) {
      std::printf("%-12s %-10s %-12s %.2fx\n", w.name.c_str(), w.type.c_str(),
                  format_bytes(w.input_size).c_str(), w.paper_io_ratio);
    }
    for (const auto& w : workloads::extra_workloads()) {
      std::printf("%-12s %-10s %-12s (extension)\n", w.name.c_str(),
                  w.type.c_str(), format_bytes(w.input_size).c_str());
    }
    return 0;
  }

  const auto spec = find_workload(args.workload, args.size_gib);
  if (!spec) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 args.workload.c_str());
    return 2;
  }

  if (args.policy == "sweep") {
    for (const int t : {32, 16, 8, 4, 2}) {
      std::printf("==== static, %d threads on I/O stages ====\n", t);
      run_once(args, *spec, "static", t);
    }
    return 0;
  }
  if (args.policy != "default" && args.policy != "static" &&
      args.policy != "dynamic") {
    std::fprintf(stderr, "unknown policy '%s'\n", args.policy.c_str());
    return 2;
  }
  return run_once(args, *spec, args.policy, args.io_threads);
}
