#!/usr/bin/env python3
"""Wall-clock regression guard for the BENCH_*.json perf trajectories.

Usage: check_bench.py <smoke.json> <snapshot.json> [slack]
       check_bench.py --self-check

Two layers of checking:

1. Throughput comparison — a fresh --smoke run against the checked-in
   full-run snapshot by events/sec (throughput is roughly scale-invariant
   between the smoke and full problem sizes; wall seconds are not). For
   every scenario present in both files, the smoke throughput must be at
   least snapshot/slack. The default slack of 3x absorbs CI-runner noise and
   the smoke sizes' worse fixed-cost amortization while still catching
   order-of-magnitude regressions (e.g. an accidentally reintroduced
   per-event allocation).

2. Guards — each file may carry a "guards" array declaring invariants over
   its OWN rows (simulated metrics such as makespan_seconds are
   deterministic, so these are exact, not noise-budgeted):
     {"type": "min_ratio", "metric": M, "numerator": A, "denominator": B,
      "min": X}   -> rows[A][M] / rows[B][M] >= X
     {"type": "min_value", "metric": M, "row": A, "min": X}
                  -> rows[A][M] >= X
   Guards in the smoke file validate the fresh run; guards in the snapshot
   validate the checked-in record.

Every failure line carries the measured value, the bound it violated, and
the percent delta between them, so a red CI log answers "how far off?"
without a rerun.

`--self-check` runs the built-in unit tests (synthetic documents through
both checking layers, asserting which must pass and which must fail) and is
wired into CI + ctest so the checker itself cannot silently rot.

Exit code 0 = all scenarios within budget, 1 = regression, 2 = bad input.
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return parse(doc)


def parse(doc):
    rows = {row["name"]: row for row in doc.get("benchmarks", [])}
    return rows, doc.get("guards", [])


def pct_delta(measured, bound):
    """Signed percent distance of `measured` from `bound` (negative = below)."""
    if bound == 0:
        return 0.0
    return 100.0 * (measured - bound) / bound


def check_throughput(smoke, snapshot, slack, smoke_path="smoke"):
    failed = False
    for name, snap in sorted(snapshot.items()):
        if name not in smoke:
            print(f"check_bench: FAIL {name}: missing from {smoke_path}")
            failed = True
            continue
        budget = snap["events_per_sec"] / slack
        got = smoke[name]["events_per_sec"]
        ok = got >= budget
        line = (
            f"check_bench: {'ok  ' if ok else 'FAIL'} {name}: {got:,.0f} events/s "
            f"(budget {budget:,.0f} = snapshot {snap['events_per_sec']:,.0f} / {slack:g}"
        )
        if not ok:
            line += f"; {pct_delta(got, budget):+.1f}% vs budget"
            failed = True
        print(line + ")")
    return failed


def check_guards(label, rows, guards):
    failed = False
    for g in guards:
        metric = g.get("metric", "?")
        if g.get("type") == "min_ratio":
            num, den = rows.get(g["numerator"]), rows.get(g["denominator"])
            if num is None or den is None or metric not in num or metric not in den:
                print(f"check_bench: FAIL {label} guard: missing row/metric in "
                      f"{g['numerator']}/{g['denominator']} ({metric})")
                failed = True
                continue
            ratio = num[metric] / den[metric] if den[metric] else float("inf")
            ok = ratio >= g["min"]
            line = (f"check_bench: {'ok  ' if ok else 'FAIL'} {label} guard "
                    f"{g['numerator']}/{g['denominator']} {metric}: "
                    f"{ratio:.3f} (min {g['min']:g}")
            if not ok:
                line += (f"; measured {num[metric]:g} / {den[metric]:g}, "
                         f"{pct_delta(ratio, g['min']):+.1f}% vs bound")
            print(line + ")")
            failed |= not ok
        elif g.get("type") == "min_value":
            row = rows.get(g["row"])
            if row is None or metric not in row:
                print(f"check_bench: FAIL {label} guard: missing {g['row']}.{metric}")
                failed = True
                continue
            ok = row[metric] >= g["min"]
            line = (f"check_bench: {'ok  ' if ok else 'FAIL'} {label} guard "
                    f"{g['row']}.{metric}: {row[metric]:.3f} (min {g['min']:g}")
            if not ok:
                line += f"; {pct_delta(row[metric], g['min']):+.1f}% vs bound"
            print(line + ")")
            failed |= not ok
        else:
            print(f"check_bench: FAIL {label} guard: unknown type {g.get('type')!r}")
            failed = True
    return failed


def self_check():
    """Unit tests: synthetic documents through both layers, asserting which
    configurations must pass and which must fail."""
    def doc(rows, guards=None):
        d = {"benchmarks": rows}
        if guards:
            d["guards"] = guards
        return parse(d)

    fast = [{"name": "a", "events_per_sec": 900.0, "m": 10.0}]
    slow = [{"name": "a", "events_per_sec": 250.0, "m": 10.0}]
    snap = [{"name": "a", "events_per_sec": 1000.0, "m": 30.0},
            {"name": "b", "events_per_sec": 1.0, "m": 3.0}]

    cases = [
        # (description, expect_failed, thunk)
        ("within-slack throughput passes", False,
         lambda: check_throughput(doc(fast)[0], doc(fast)[0], 3.0)),
        ("3.3x-below-budget throughput fails", True,
         lambda: check_throughput(doc(slow)[0], doc(snap[:1])[0], 3.0)),
        ("missing scenario fails", True,
         lambda: check_throughput(doc(fast)[0], doc(snap)[0], 3.0)),
        ("satisfied min_ratio passes", False,
         lambda: check_guards("t", *doc(snap, [
             {"type": "min_ratio", "metric": "m", "numerator": "a",
              "denominator": "b", "min": 3.0}]))),
        ("violated min_ratio fails", True,
         lambda: check_guards("t", *doc(snap, [
             {"type": "min_ratio", "metric": "m", "numerator": "b",
              "denominator": "a", "min": 3.0}]))),
        ("satisfied min_value passes", False,
         lambda: check_guards("t", *doc(fast, [
             {"type": "min_value", "metric": "m", "row": "a", "min": 5.0}]))),
        ("violated min_value fails", True,
         lambda: check_guards("t", *doc(fast, [
             {"type": "min_value", "metric": "m", "row": "a", "min": 50.0}]))),
        ("guard on missing row fails", True,
         lambda: check_guards("t", *doc(fast, [
             {"type": "min_value", "metric": "m", "row": "zz", "min": 1.0}]))),
        ("unknown guard type fails", True,
         lambda: check_guards("t", *doc(fast, [{"type": "max_value"}]))),
    ]
    bad = 0
    for desc, expect_failed, thunk in cases:
        got_failed = thunk()
        verdict = "ok" if got_failed == expect_failed else "SELF-CHECK FAIL"
        print(f"check_bench: {verdict}: {desc}")
        bad += got_failed != expect_failed
    if bad:
        print(f"check_bench: self-check: {bad}/{len(cases)} case(s) wrong")
        return 1
    print(f"check_bench: self-check passed ({len(cases)} cases)")
    return 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-check":
        return self_check()
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    smoke_path, snapshot_path = sys.argv[1], sys.argv[2]
    slack = float(sys.argv[3]) if len(sys.argv) == 4 else 3.0

    smoke, smoke_guards = load(smoke_path)
    snapshot, snapshot_guards = load(snapshot_path)
    if not smoke or not snapshot:
        print(f"check_bench: empty benchmark list in {smoke_path} or {snapshot_path}")
        return 2

    failed = check_throughput(smoke, snapshot, slack, smoke_path)
    failed |= check_guards("smoke", smoke, smoke_guards)
    failed |= check_guards("snapshot", snapshot, snapshot_guards)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
