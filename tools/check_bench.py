#!/usr/bin/env python3
"""Wall-clock regression guard for the BENCH_*.json perf trajectories.

Usage: check_bench.py <smoke.json> <snapshot.json> [slack]

Two layers of checking:

1. Throughput comparison — a fresh --smoke run against the checked-in
   full-run snapshot by events/sec (throughput is roughly scale-invariant
   between the smoke and full problem sizes; wall seconds are not). For
   every scenario present in both files, the smoke throughput must be at
   least snapshot/slack. The default slack of 3x absorbs CI-runner noise and
   the smoke sizes' worse fixed-cost amortization while still catching
   order-of-magnitude regressions (e.g. an accidentally reintroduced
   per-event allocation).

2. Guards — each file may carry a "guards" array declaring invariants over
   its OWN rows (simulated metrics such as makespan_seconds are
   deterministic, so these are exact, not noise-budgeted):
     {"type": "min_ratio", "metric": M, "numerator": A, "denominator": B,
      "min": X}   -> rows[A][M] / rows[B][M] >= X
     {"type": "min_value", "metric": M, "row": A, "min": X}
                  -> rows[A][M] >= X
   Guards in the smoke file validate the fresh run; guards in the snapshot
   validate the checked-in record.

Exit code 0 = all scenarios within budget, 1 = regression, 2 = bad input.
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {row["name"]: row for row in doc.get("benchmarks", [])}
    return rows, doc.get("guards", [])


def check_guards(label, rows, guards):
    failed = False
    for g in guards:
        metric = g["metric"]
        if g["type"] == "min_ratio":
            num, den = rows.get(g["numerator"]), rows.get(g["denominator"])
            if num is None or den is None or metric not in num or metric not in den:
                print(f"check_bench: FAIL {label} guard: missing row/metric in "
                      f"{g['numerator']}/{g['denominator']} ({metric})")
                failed = True
                continue
            ratio = num[metric] / den[metric] if den[metric] else float("inf")
            ok = ratio >= g["min"]
            print(f"check_bench: {'ok  ' if ok else 'FAIL'} {label} guard "
                  f"{g['numerator']}/{g['denominator']} {metric}: "
                  f"{ratio:.3f} (min {g['min']:g})")
            failed |= not ok
        elif g["type"] == "min_value":
            row = rows.get(g["row"])
            if row is None or metric not in row:
                print(f"check_bench: FAIL {label} guard: missing {g['row']}.{metric}")
                failed = True
                continue
            ok = row[metric] >= g["min"]
            print(f"check_bench: {'ok  ' if ok else 'FAIL'} {label} guard "
                  f"{g['row']}.{metric}: {row[metric]:.3f} (min {g['min']:g})")
            failed |= not ok
        else:
            print(f"check_bench: FAIL {label} guard: unknown type {g['type']!r}")
            failed = True
    return failed


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    smoke_path, snapshot_path = sys.argv[1], sys.argv[2]
    slack = float(sys.argv[3]) if len(sys.argv) == 4 else 3.0

    smoke, smoke_guards = load(smoke_path)
    snapshot, snapshot_guards = load(snapshot_path)
    if not smoke or not snapshot:
        print(f"check_bench: empty benchmark list in {smoke_path} or {snapshot_path}")
        return 2

    failed = False
    for name, snap in sorted(snapshot.items()):
        if name not in smoke:
            print(f"check_bench: FAIL {name}: missing from {smoke_path}")
            failed = True
            continue
        budget = snap["events_per_sec"] / slack
        got = smoke[name]["events_per_sec"]
        verdict = "ok" if got >= budget else "FAIL"
        print(
            f"check_bench: {verdict:4} {name}: {got:,.0f} events/s "
            f"(budget {budget:,.0f} = snapshot {snap['events_per_sec']:,.0f} / {slack:g})"
        )
        if got < budget:
            failed = True

    failed |= check_guards("smoke", smoke, smoke_guards)
    failed |= check_guards("snapshot", snapshot, snapshot_guards)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
