#!/usr/bin/env python3
"""Wall-clock regression guard for the BENCH_*.json perf trajectories.

Usage: check_bench.py <smoke.json> <snapshot.json> [slack]

Compares a fresh --smoke run against the checked-in full-run snapshot by
events/sec (throughput is roughly scale-invariant between the smoke and full
problem sizes; wall seconds are not). For every scenario present in both
files, the smoke throughput must be at least snapshot/slack. The default
slack of 3x absorbs CI-runner noise and the smoke sizes' worse fixed-cost
amortization while still catching order-of-magnitude regressions (e.g. an
accidentally reintroduced per-event allocation).

Exit code 0 = all scenarios within budget, 1 = regression, 2 = bad input.
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {row["name"]: row for row in doc.get("benchmarks", [])}


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    smoke_path, snapshot_path = sys.argv[1], sys.argv[2]
    slack = float(sys.argv[3]) if len(sys.argv) == 4 else 3.0

    smoke = load(smoke_path)
    snapshot = load(snapshot_path)
    if not smoke or not snapshot:
        print(f"check_bench: empty benchmark list in {smoke_path} or {snapshot_path}")
        return 2

    failed = False
    for name, snap in sorted(snapshot.items()):
        if name not in smoke:
            print(f"check_bench: FAIL {name}: missing from {smoke_path}")
            failed = True
            continue
        budget = snap["events_per_sec"] / slack
        got = smoke[name]["events_per_sec"]
        verdict = "ok" if got >= budget else "FAIL"
        print(
            f"check_bench: {verdict:4} {name}: {got:,.0f} events/s "
            f"(budget {budget:,.0f} = snapshot {snap['events_per_sec']:,.0f} / {slack:g})"
        )
        if got < budget:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
