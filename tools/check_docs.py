#!/usr/bin/env python3
"""Documentation checks run by the CI docs job (stdlib only).

1. Link check: every relative markdown link in *.md (repo root and docs/)
   resolves to an existing file.
2. Fault-key sync: the saex.fault.* / spark.speculation.* keys documented in
   docs/FAULT_MODEL.md and the ones defined in conf::spark_registry()
   (src/conf/spark_params.cpp) are exactly the same set.
3. Bench freshness: every `bench binary` EXPERIMENTS.md names in backticks
   has a matching bench/<name>.cpp.
4. Module freshness: every module docs/ARCHITECTURE.md bolds as
   **`src/<name>/`** exists, and every directory under src/ is documented.
5. Bench-snapshot sync: BENCH_kernel.json, BENCH_engine.json,
   BENCH_storage.json, BENCH_serve.json, BENCH_aqe.json, and BENCH_net.json
   parse and every scenario they record is discussed in
   docs/PERFORMANCE.md.
6. Scaling story: docs/SCALING.md exists and is linked from README.md and
   docs/ARCHITECTURE.md.
7. Test-count agreement: the test count README.md claims matches the one
   EXPERIMENTS.md records.

Exit code 0 iff everything holds; each violation prints one line.
"""
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
failures = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL: {msg}")


def md_files():
    out = []
    for d in (ROOT, os.path.join(ROOT, "docs")):
        if not os.path.isdir(d):
            continue
        for name in sorted(os.listdir(d)):
            if name.endswith(".md"):
                out.append(os.path.join(d, name))
    return out


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def check_links():
    link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    for path in md_files():
        for target in link_re.findall(read(path)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            if not os.path.exists(resolved):
                fail(f"{os.path.relpath(path, ROOT)}: broken link -> {target}")


def registry_keys():
    src = read(os.path.join(ROOT, "src/conf/spark_params.cpp"))
    return set(re.findall(r'"((?:saex\.fault|spark\.speculation)[\w.]*)"', src))


def documented_keys():
    doc = read(os.path.join(ROOT, "docs/FAULT_MODEL.md"))
    keys = set(re.findall(r"`((?:saex\.fault|spark\.speculation)[\w.]*)`", doc))
    return {k for k in keys if not k.endswith(".")}


def check_fault_keys():
    reg, doc = registry_keys(), documented_keys()
    for k in sorted(reg - doc):
        fail(f"docs/FAULT_MODEL.md: registry key `{k}` is undocumented")
    for k in sorted(doc - reg):
        fail(f"docs/FAULT_MODEL.md: documents `{k}` which is not in the registry")


def check_bench_references():
    text = read(os.path.join(ROOT, "EXPERIMENTS.md"))
    benches = {
        os.path.splitext(n)[0]
        for n in os.listdir(os.path.join(ROOT, "bench"))
        if n.endswith(".cpp")
    }
    # Headings name their binary in backticks: `(`fig8_endtoend`)`.
    for name in re.findall(r"`([a-z0-9_]+)`\)", text):
        if name not in benches:
            fail(f"EXPERIMENTS.md: names bench `{name}` but bench/{name}.cpp is missing")


def check_architecture_modules():
    doc = read(os.path.join(ROOT, "docs/ARCHITECTURE.md"))
    documented = set(re.findall(r"\*\*`src/([a-z]+)/`\*\*", doc))
    actual = {
        n for n in os.listdir(os.path.join(ROOT, "src"))
        if os.path.isdir(os.path.join(ROOT, "src", n))
    }
    for m in sorted(documented - actual):
        fail(f"docs/ARCHITECTURE.md: documents src/{m}/ which does not exist")
    for m in sorted(actual - documented):
        fail(f"docs/ARCHITECTURE.md: src/{m}/ exists but has no module paragraph")


def check_bench_snapshot(json_name, bench_binary):
    """A checked-in BENCH_*.json snapshot must stay in sync with
    docs/PERFORMANCE.md: every scenario it records is discussed there."""
    import json

    path = os.path.join(ROOT, json_name)
    if not os.path.exists(path):
        fail(f"{json_name}: missing (run ./build/bench/{bench_binary} --json {json_name})")
        return
    try:
        data = json.loads(read(path))
    except ValueError as e:
        fail(f"{json_name}: invalid JSON ({e})")
        return
    doc = read(os.path.join(ROOT, "docs/PERFORMANCE.md"))
    for entry in data.get("benchmarks", []):
        name = entry.get("name", "")
        if f"`{name}`" not in doc:
            fail(f"docs/PERFORMANCE.md: {json_name} scenario `{name}` is undocumented")


def check_kernel_bench():
    check_bench_snapshot("BENCH_kernel.json", "kernel_perf")


def check_engine_bench():
    check_bench_snapshot("BENCH_engine.json", "engine_perf")


def check_storage_bench():
    check_bench_snapshot("BENCH_storage.json", "cache_policies")


def check_serve_bench():
    check_bench_snapshot("BENCH_serve.json", "serve_shard")


def check_fault_bench():
    check_bench_snapshot("BENCH_fault.json", "fault_recovery")


def check_resilience_bench():
    check_bench_snapshot("BENCH_resilience.json", "serve_resilience")


def check_aqe_bench():
    check_bench_snapshot("BENCH_aqe.json", "aqe_ablation")


def check_net_bench():
    check_bench_snapshot("BENCH_net.json", "net_flow")


def check_scaling_doc():
    """docs/SCALING.md must exist and be reachable from README.md and
    docs/ARCHITECTURE.md (the scaling story is load-bearing docs, not an
    orphan page)."""
    path = os.path.join(ROOT, "docs/SCALING.md")
    if not os.path.exists(path):
        fail("docs/SCALING.md: missing")
        return
    for source, link in (("README.md", "docs/SCALING.md"),
                         ("docs/ARCHITECTURE.md", "SCALING.md")):
        if link not in read(os.path.join(ROOT, source)):
            fail(f"{source}: no link to {link}")


def check_test_count():
    readme = re.search(r"#\s*(\d+)\s+tests", read(os.path.join(ROOT, "README.md")))
    exp = re.search(r"(\d+)/\1 tests pass", read(os.path.join(ROOT, "EXPERIMENTS.md")))
    if not readme:
        fail("README.md: no '# <N> tests' claim found next to the ctest command")
        return
    if not exp:
        fail("EXPERIMENTS.md: no '<N>/<N> tests pass' claim found")
        return
    if readme.group(1) != exp.group(1):
        fail(
            f"test-count drift: README.md says {readme.group(1)}, "
            f"EXPERIMENTS.md says {exp.group(1)}"
        )


def main():
    check_links()
    check_fault_keys()
    check_bench_references()
    check_architecture_modules()
    check_kernel_bench()
    check_engine_bench()
    check_storage_bench()
    check_serve_bench()
    check_fault_bench()
    check_resilience_bench()
    check_aqe_bench()
    check_net_bench()
    check_scaling_doc()
    check_test_count()
    if failures:
        print(f"\n{len(failures)} documentation check(s) failed")
        return 1
    print("all documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
