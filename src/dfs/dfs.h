// Block-based distributed filesystem (the engine's HDFS substitute).
//
// Files are split into fixed-size blocks with replicated placement across
// cluster nodes. The DFS owns the namespace and placement; actual byte
// movement is performed by whoever reads/writes (the engine's executor
// runtime drives disk and network transfers from the locations returned
// here). Matches the paper's setup: HDFS 2.9, 128 MB blocks, input
// replication = cluster size so read stages achieve full locality (§6.1).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "dfs/placement.h"
#include "hw/cluster.h"

namespace saex::dfs {

struct Block {
  Bytes size = 0;
  std::vector<int> replicas;  // node ids; first is the primary

  bool is_local_to(int node) const noexcept;
};

struct FileInfo {
  std::string path;
  Bytes size = 0;
  std::vector<Block> blocks;
};

class Dfs {
 public:
  struct Options {
    Bytes block_size = mib(128);
    int default_replication = 3;
    uint64_t seed = 7;
  };

  Dfs(hw::Cluster& cluster, Options options);

  /// Registers a pre-existing input file (the HiBench "prepare" step): the
  /// data is assumed on disk already, so no simulated I/O happens here.
  /// `block_size` of 0 uses the filesystem default; smaller values model
  /// inputs stored as many small files (e.g. HiBench's SQL tables).
  const FileInfo& load_input(std::string path, Bytes size, int replication,
                             Bytes block_size = 0);

  /// Registers an output file created by a writer on `writer_node`; the
  /// caller is responsible for simulating the write transfers. Returns the
  /// replica pipeline for each block.
  const FileInfo& create_output(std::string path, Bytes size, int writer_node,
                                int replication);

  const FileInfo* lookup(std::string_view path) const noexcept;
  bool exists(std::string_view path) const noexcept { return lookup(path) != nullptr; }
  void remove(std::string_view path);

  Bytes block_size() const noexcept { return options_.block_size; }
  int cluster_size() const noexcept { return cluster_.size(); }

  /// Picks the source node for reading `block` from `reader_node`:
  /// the reader itself when local, otherwise a deterministic-random replica.
  int choose_read_source(const Block& block, int reader_node);

 private:
  FileInfo make_file(std::string path, Bytes size, int replication,
                     int preferred_node, Bytes block_size);

  hw::Cluster& cluster_;
  Options options_;
  PlacementPolicy placement_;
  Rng read_rng_;
  std::map<std::string, FileInfo, std::less<>> files_;
};

}  // namespace saex::dfs
