// Block placement policy for the simulated DFS.
//
// Mirrors HDFS defaults: the first replica lands on the writer (or a
// rotating primary for pre-loaded input data), the remaining replicas on
// distinct random nodes. Deterministic given the seed.
#pragma once

#include <vector>

#include "common/rng.h"

namespace saex::dfs {

class PlacementPolicy {
 public:
  PlacementPolicy(int num_nodes, Rng rng);

  /// Chooses `replication` distinct nodes; `preferred` (>= 0) becomes the
  /// first replica. Replication is clamped to the cluster size.
  std::vector<int> place(int replication, int preferred = -1);

  /// Rotating primary used when loading input data with no writer affinity.
  int next_primary() noexcept;

 private:
  int num_nodes_;
  int rr_cursor_ = 0;
  Rng rng_;
};

}  // namespace saex::dfs
