#include "dfs/placement.h"

#include <algorithm>
#include <cassert>

namespace saex::dfs {

PlacementPolicy::PlacementPolicy(int num_nodes, Rng rng)
    : num_nodes_(num_nodes), rng_(rng) {
  assert(num_nodes > 0);
}

int PlacementPolicy::next_primary() noexcept {
  const int node = rr_cursor_;
  rr_cursor_ = (rr_cursor_ + 1) % num_nodes_;
  return node;
}

std::vector<int> PlacementPolicy::place(int replication, int preferred) {
  replication = std::clamp(replication, 1, num_nodes_);
  std::vector<int> replicas;
  replicas.reserve(static_cast<size_t>(replication));
  const int first = preferred >= 0 ? preferred % num_nodes_ : next_primary();
  replicas.push_back(first);
  while (static_cast<int>(replicas.size()) < replication) {
    const int candidate = static_cast<int>(rng_.uniform_int(0, num_nodes_ - 1));
    if (std::find(replicas.begin(), replicas.end(), candidate) == replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

}  // namespace saex::dfs
