#include "dfs/dfs.h"
#include "common/format.h"

#include <algorithm>
#include <cassert>

namespace saex::dfs {

bool Block::is_local_to(int node) const noexcept {
  return std::find(replicas.begin(), replicas.end(), node) != replicas.end();
}

Dfs::Dfs(hw::Cluster& cluster, Options options)
    : cluster_(cluster),
      options_(options),
      placement_(cluster.size(), Rng(options.seed).fork("placement")),
      read_rng_(Rng(options.seed).fork("read-source")) {}

FileInfo Dfs::make_file(std::string path, Bytes size, int replication,
                        int preferred_node, Bytes block_size) {
  if (block_size <= 0) block_size = options_.block_size;
  FileInfo info;
  info.path = std::move(path);
  info.size = size;
  Bytes remaining = size;
  while (remaining > 0) {
    Block b;
    b.size = std::min(remaining, block_size);
    b.replicas = placement_.place(replication, preferred_node);
    remaining -= b.size;
    info.blocks.push_back(std::move(b));
  }
  return info;
}

const FileInfo& Dfs::load_input(std::string path, Bytes size, int replication,
                                Bytes block_size) {
  assert(!exists(path) && "file already exists");
  FileInfo info =
      make_file(path, size, replication, /*preferred_node=*/-1, block_size);
  auto [it, inserted] = files_.emplace(info.path, std::move(info));
  assert(inserted);
  return it->second;
}

const FileInfo& Dfs::create_output(std::string path, Bytes size,
                                   int writer_node, int replication) {
  assert(!exists(path) && "file already exists");
  FileInfo info = make_file(path, size, replication, writer_node, 0);
  auto [it, inserted] = files_.emplace(info.path, std::move(info));
  assert(inserted);
  return it->second;
}

const FileInfo* Dfs::lookup(std::string_view path) const noexcept {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

void Dfs::remove(std::string_view path) {
  const auto it = files_.find(path);
  if (it != files_.end()) files_.erase(it);
}

int Dfs::choose_read_source(const Block& block, int reader_node) {
  assert(!block.replicas.empty());
  if (block.is_local_to(reader_node)) return reader_node;
  const auto idx = static_cast<size_t>(
      read_rng_.uniform_int(0, static_cast<int64_t>(block.replicas.size()) - 1));
  return block.replicas[idx];
}

}  // namespace saex::dfs
