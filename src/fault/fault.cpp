#include "fault/fault.h"

#include <cassert>

#include "common/log.h"

namespace saex::fault {

FaultSpec FaultSpec::from_config(const conf::Config& config) {
  FaultSpec s;
  s.enabled = config.get_bool("saex.fault.enabled");
  if (!s.enabled) return s;
  s.seed = static_cast<uint64_t>(config.get_int("saex.fault.seed"));
  s.kill_node = static_cast<int>(config.get_int("saex.fault.killNode"));
  s.kill_time = config.get_duration_seconds("saex.fault.killTime");
  s.kill_after_tasks = config.get_int("saex.fault.killAfterTasks");
  s.slow_node = static_cast<int>(config.get_int("saex.fault.slowNode"));
  s.slow_factor = config.get_double("saex.fault.slowFactor");
  s.slow_time = config.get_duration_seconds("saex.fault.slowTime");
  s.fetch_fail_prob = config.get_double("saex.fault.fetchFailProb");
  return s;
}

FaultState::FaultState(int num_nodes, uint64_t seed, double fetch_fail_prob)
    : alive_(static_cast<size_t>(num_nodes), 1),
      fetch_fail_prob_(fetch_fail_prob),
      rng_(Rng(seed).fork("fetch-drops")) {}

void FaultState::mark_dead(int node) {
  assert(node >= 0 && node < static_cast<int>(alive_.size()));
  if (!alive_[static_cast<size_t>(node)]) return;
  alive_[static_cast<size_t>(node)] = 0;
  ++dead_;
}

bool FaultState::drop_fetch(int src_node, int dst_node) {
  (void)src_node;
  (void)dst_node;
  if (fetch_fail_prob_ <= 0.0) return false;
  if (!rng_.chance(fetch_fail_prob_)) return false;
  ++fetch_drops_;
  return true;
}

FaultPlan::FaultPlan(FaultSpec spec, sim::Simulation& sim, Hooks hooks)
    : spec_(spec), sim_(sim), hooks_(std::move(hooks)) {}

void FaultPlan::arm() {
  if (!spec_.enabled) return;
  if (spec_.slow_node >= 0 && hooks_.degrade_disk) {
    const int node = spec_.slow_node;
    const double factor = spec_.slow_factor;
    sim_.schedule_at(std::max(spec_.slow_time, sim_.now()),
                     [this, node, factor] { hooks_.degrade_disk(node, factor); });
  }
  if (spec_.kill_node >= 0 && spec_.kill_time >= 0.0) {
    sim_.schedule_at(std::max(spec_.kill_time, sim_.now()),
                     [this] { fire_kill(); });
  }
}

void FaultPlan::notify_task_finished(int64_t total_finished) {
  if (!spec_.enabled || kill_fired_) return;
  if (spec_.kill_node < 0 || spec_.kill_after_tasks < 0) return;
  if (total_finished >= spec_.kill_after_tasks) fire_kill();
}

void FaultPlan::fire_kill() {
  if (kill_fired_) return;  // time and count triggers may both be armed
  kill_fired_ = true;
  SAEX_INFO("fault plan: killing executor {} at {:.3f}s", spec_.kill_node,
            sim_.now());
  if (hooks_.kill_executor) hooks_.kill_executor(spec_.kill_node);
}

}  // namespace saex::fault
