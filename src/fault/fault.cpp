#include "fault/fault.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdlib>

#include "common/log.h"

namespace saex::fault {

namespace {

// One chaos entry: `kill:<node>@<seconds>` or `rejoin:<node>@<seconds>`.
ChaosEvent parse_chaos_entry(std::string_view entry) {
  const auto bad = [entry](const char* why) -> conf::ConfigError {
    return conf::ConfigError(strfmt::format(
        "saex.fault.chaos: bad entry '{}' ({}); want "
        "kill:<node>@<seconds> or rejoin:<node>@<seconds>",
        std::string(entry), why));
  };
  const size_t colon = entry.find(':');
  if (colon == std::string_view::npos) throw bad("missing ':'");
  const std::string_view verb = entry.substr(0, colon);
  ChaosEvent ev;
  if (verb == "kill") {
    ev.kind = ChaosEvent::Kind::kKill;
  } else if (verb == "rejoin") {
    ev.kind = ChaosEvent::Kind::kRejoin;
  } else {
    throw bad("unknown verb");
  }
  const size_t at = entry.find('@', colon + 1);
  if (at == std::string_view::npos) throw bad("missing '@'");
  const std::string node_text(entry.substr(colon + 1, at - colon - 1));
  const std::string time_text(entry.substr(at + 1));
  if (node_text.empty() || time_text.empty()) throw bad("empty field");
  char* end = nullptr;
  const long node = std::strtol(node_text.c_str(), &end, 10);
  if (end == node_text.c_str() || *end != '\0' || node < 0)
    throw bad("node must be a non-negative integer");
  ev.node = static_cast<int>(node);
  end = nullptr;
  const double time = std::strtod(time_text.c_str(), &end);
  if (end == time_text.c_str() || *end != '\0' || !(time >= 0.0))
    throw bad("time must be a non-negative number of seconds");
  ev.time = time;
  return ev;
}

}  // namespace

std::vector<ChaosEvent> parse_chaos(std::string_view spec) {
  std::vector<ChaosEvent> events;
  std::string entry;
  bool in_comment = false;
  const auto flush = [&] {
    if (!entry.empty()) {
      events.push_back(parse_chaos_entry(entry));
      entry.clear();
    }
  };
  for (const char ch : spec) {
    if (ch == '\n') {
      in_comment = false;
      flush();
    } else if (in_comment) {
      continue;
    } else if (ch == '#') {
      in_comment = true;
    } else if (ch == ',' || std::isspace(static_cast<unsigned char>(ch))) {
      flush();
    } else {
      entry.push_back(ch);
    }
  }
  flush();
  // Sorted by (time, input order) so arm() schedules them in replay order.
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::string format_chaos(const std::vector<ChaosEvent>& events) {
  std::string out;
  for (const ChaosEvent& ev : events) {
    if (!out.empty()) out.push_back(',');
    out += strfmt::format(
        "{}:{}@{}", ev.kind == ChaosEvent::Kind::kKill ? "kill" : "rejoin",
        ev.node, ev.time);
  }
  return out;
}

FaultSpec FaultSpec::from_config(const conf::Config& config) {
  FaultSpec s;
  s.enabled = config.get_bool("saex.fault.enabled");
  if (!s.enabled) return s;
  s.seed = static_cast<uint64_t>(config.get_int("saex.fault.seed"));
  s.kill_node = static_cast<int>(config.get_int("saex.fault.killNode"));
  s.kill_time = config.get_duration_seconds("saex.fault.killTime");
  s.kill_after_tasks = config.get_int("saex.fault.killAfterTasks");
  s.slow_node = static_cast<int>(config.get_int("saex.fault.slowNode"));
  s.slow_factor = config.get_double("saex.fault.slowFactor");
  s.slow_time = config.get_duration_seconds("saex.fault.slowTime");
  s.fetch_fail_prob = config.get_double("saex.fault.fetchFailProb");
  s.fetch_fail_node = static_cast<int>(config.get_int("saex.fault.fetchFailNode"));
  s.chaos = parse_chaos(config.get_string("saex.fault.chaos"));
  return s;
}

FaultState::FaultState(int num_nodes, uint64_t seed, double fetch_fail_prob,
                       int fetch_fail_node)
    : alive_(static_cast<size_t>(num_nodes), 1),
      fetch_fail_prob_(fetch_fail_prob),
      fetch_fail_node_(fetch_fail_node),
      rng_(Rng(seed).fork("fetch-drops")) {}

void FaultState::mark_dead(int node) {
  assert(node >= 0 && node < static_cast<int>(alive_.size()));
  if (!alive_[static_cast<size_t>(node)]) return;
  alive_[static_cast<size_t>(node)] = 0;
  ++dead_;
}

void FaultState::mark_alive(int node) {
  assert(node >= 0 && node < static_cast<int>(alive_.size()));
  if (alive_[static_cast<size_t>(node)]) return;
  alive_[static_cast<size_t>(node)] = 1;
  --dead_;
}

bool FaultState::drop_fetch(int src_node, int dst_node) {
  (void)dst_node;
  if (fetch_fail_prob_ <= 0.0) return false;
  // With a target source node, other sources draw no randomness — enabling
  // the restriction must not shift the drop stream of the targeted node.
  if (fetch_fail_node_ >= 0 && src_node != fetch_fail_node_) return false;
  if (!rng_.chance(fetch_fail_prob_)) return false;
  ++fetch_drops_;
  return true;
}

FaultPlan::FaultPlan(FaultSpec spec, sim::Simulation& sim, Hooks hooks)
    : spec_(spec), sim_(sim), hooks_(std::move(hooks)) {}

void FaultPlan::arm() {
  if (!spec_.enabled) return;
  if (spec_.slow_node >= 0 && hooks_.degrade_disk) {
    const int node = spec_.slow_node;
    const double factor = spec_.slow_factor;
    sim_.schedule_at(std::max(spec_.slow_time, sim_.now()),
                     [this, node, factor] { hooks_.degrade_disk(node, factor); });
  }
  if (spec_.kill_node >= 0 && spec_.kill_time >= 0.0) {
    sim_.schedule_at(std::max(spec_.kill_time, sim_.now()),
                     [this] { fire_kill(spec_.kill_node); });
  }
  for (const ChaosEvent& ev : spec_.chaos) {
    const int node = ev.node;
    if (ev.kind == ChaosEvent::Kind::kKill) {
      sim_.schedule_at(std::max(ev.time, sim_.now()),
                       [this, node] { fire_kill(node); });
    } else {
      sim_.schedule_at(std::max(ev.time, sim_.now()),
                       [this, node] { fire_rejoin(node); });
    }
  }
}

void FaultPlan::notify_task_finished(int64_t total_finished) {
  if (!spec_.enabled || kill_fired_) return;
  if (spec_.kill_node < 0 || spec_.kill_after_tasks < 0) return;
  if (total_finished >= spec_.kill_after_tasks) fire_kill(spec_.kill_node);
}

void FaultPlan::fire_kill(int node) {
  if (node == spec_.kill_node) {
    if (kill_fired_) return;  // time and count triggers may both be armed
    kill_fired_ = true;
  }
  // A node that is already dead (killed by an earlier trigger or a chaos
  // event) must not be re-killed: re-firing would double-count the loss and
  // re-run recovery against an executor that holds nothing.
  if (hooks_.node_alive && !hooks_.node_alive(node)) return;
  ++kills_fired_;
  SAEX_INFO("fault plan: killing executor {} at {:.3f}s", node, sim_.now());
  if (hooks_.kill_executor) hooks_.kill_executor(node);
}

void FaultPlan::fire_rejoin(int node) {
  if (hooks_.node_alive && hooks_.node_alive(node)) return;  // already live
  ++rejoins_fired_;
  SAEX_INFO("fault plan: rejoining executor {} at {:.3f}s", node, sim_.now());
  if (hooks_.rejoin_executor) hooks_.rejoin_executor(node);
}

}  // namespace saex::fault
