// saex::fault — seeded fault injection for the simulated cluster.
//
// Three ingredients, all configured through the `saex.fault.*` keys (see
// docs/FAULT_MODEL.md) and all riding the deterministic simulation clock, so
// a faulty run replays bitwise-identically from its seed:
//
//  * FaultSpec   — the parsed plan: which executor dies (at a wall-clock
//    time or after N finished task attempts), which node's disk degrades
//    into a straggler, and the per-fetch drop probability.
//  * FaultState  — live fault truth shared with the executors: which nodes
//    are dead (their shuffle data is gone, fetches from them fail) and the
//    seeded RNG deciding transient shuffle-fetch drops.
//  * FaultPlan   — arms the triggers. Time triggers are simulation events;
//    the task-count trigger is fed by the scheduler's task-finish hook. The
//    plan itself only decides *when*; *what happens* is delegated to hooks
//    (SparkContext::kill_executor, Node::set_disk_speed_factor) so this
//    module depends on nothing above the simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "conf/config.h"
#include "sim/simulation.h"

namespace saex::fault {

/// One entry of a chaos churn schedule (saex.fault.chaos): an executor is
/// killed or rejoins (a fresh, empty replacement on the same node id) at an
/// absolute simulated time.
struct ChaosEvent {
  enum class Kind { kKill, kRejoin };
  Kind kind = Kind::kKill;
  int node = -1;
  double time = 0.0;  // absolute simulated seconds
};

/// Parses a chaos schedule. Entries are `kill:<node>@<seconds>` or
/// `rejoin:<node>@<seconds>`, separated by commas, whitespace, or newlines;
/// `#` starts a comment running to end of line (the file form). Entries are
/// returned sorted by (time, input order). Throws conf::ConfigError on a
/// malformed entry.
std::vector<ChaosEvent> parse_chaos(std::string_view spec);

/// Re-serializes a schedule into the canonical comma-separated inline form
/// (parse_chaos(format_chaos(v)) == v). Used by the sharded serve path to
/// rewrite global node ids into each shard's local ids.
std::string format_chaos(const std::vector<ChaosEvent>& events);

struct FaultSpec {
  bool enabled = false;
  uint64_t seed = 0;           // XORed into the cluster seed
  int kill_node = -1;          // executor to kill (-1: no kill)
  double kill_time = -1.0;     // time trigger (<0: disabled)
  int64_t kill_after_tasks = -1;  // task-count trigger (<0: disabled)
  int slow_node = -1;          // node whose disk degrades (-1: none)
  double slow_factor = 0.3;    // new disk speed factor
  double slow_time = 0.0;      // when the degradation hits
  double fetch_fail_prob = 0.0;  // transient shuffle-fetch drop probability
  int fetch_fail_node = -1;    // restrict drops to this source node (-1: any)
  std::vector<ChaosEvent> chaos;  // scripted kill/rejoin timeline

  /// Reads every `saex.fault.*` key; inert (enabled=false) by default.
  static FaultSpec from_config(const conf::Config& config);
};

/// Runtime fault truth, shared by reference with every ExecutorRuntime
/// (EngineEnv::fault). Exists even when injection is disabled — with no dead
/// nodes and drop probability 0 it is entirely passive.
class FaultState {
 public:
  FaultState(int num_nodes, uint64_t seed, double fetch_fail_prob,
             int fetch_fail_node = -1);

  bool node_alive(int node) const noexcept {
    return node < 0 || node >= static_cast<int>(alive_.size()) ||
           alive_[static_cast<size_t>(node)];
  }
  void mark_dead(int node);
  /// Chaos rejoin: the node id is live again (a fresh executor with empty
  /// storage and no shuffle outputs). Idempotent.
  void mark_alive(int node);
  int dead_executors() const noexcept { return dead_; }

  /// Seeded Bernoulli draw: should this remote shuffle fetch be dropped?
  /// Consumes randomness only when the probability is non-zero, so enabling
  /// an unrelated injection does not shift other streams.
  bool drop_fetch(int src_node, int dst_node);
  int64_t fetch_drops() const noexcept { return fetch_drops_; }

 private:
  std::vector<char> alive_;
  int dead_ = 0;
  double fetch_fail_prob_;
  int fetch_fail_node_ = -1;
  Rng rng_;
  int64_t fetch_drops_ = 0;
};

/// Arms the spec's triggers against the simulation clock.
class FaultPlan {
 public:
  struct Hooks {
    /// Kill an executor (SparkContext::kill_executor): fail its running
    /// attempts, stop offers, drop its shuffle outputs, start recovery.
    std::function<void(int node)> kill_executor;
    /// Rejoin an executor (SparkContext::revive_executor): a fresh, empty
    /// executor becomes schedulable again on the same node id. Chaos
    /// schedules with rejoin events require this hook.
    std::function<void(int node)> rejoin_executor;
    /// Degrade a node's disk (Node::set_disk_speed_factor + event log).
    std::function<void(int node, double factor)> degrade_disk;
    /// Liveness predicate (FaultState::node_alive): a kill trigger for a
    /// node that is already dead must not re-fire, and a rejoin for a live
    /// node is a no-op.
    std::function<bool(int node)> node_alive;
  };

  FaultPlan(FaultSpec spec, sim::Simulation& sim, Hooks hooks);

  /// Schedules the time triggers (single kill spec + chaos timeline).
  /// Call once, before the first job.
  void arm();

  /// Task-count trigger feed (TaskScheduler's task-finish hook).
  void notify_task_finished(int64_t total_finished);

  bool kill_fired() const noexcept { return kill_fired_; }
  /// Kill-hook invocations (spec + chaos). A node that is already dead when
  /// its trigger fires is NOT re-killed and does not count.
  int64_t kills_fired() const noexcept { return kills_fired_; }
  int64_t rejoins_fired() const noexcept { return rejoins_fired_; }
  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  void fire_kill(int node);
  void fire_rejoin(int node);

  FaultSpec spec_;
  sim::Simulation& sim_;
  Hooks hooks_;
  bool kill_fired_ = false;
  int64_t kills_fired_ = 0;
  int64_t rejoins_fired_ = 0;
};

}  // namespace saex::fault
