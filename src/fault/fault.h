// saex::fault — seeded fault injection for the simulated cluster.
//
// Three ingredients, all configured through the `saex.fault.*` keys (see
// docs/FAULT_MODEL.md) and all riding the deterministic simulation clock, so
// a faulty run replays bitwise-identically from its seed:
//
//  * FaultSpec   — the parsed plan: which executor dies (at a wall-clock
//    time or after N finished task attempts), which node's disk degrades
//    into a straggler, and the per-fetch drop probability.
//  * FaultState  — live fault truth shared with the executors: which nodes
//    are dead (their shuffle data is gone, fetches from them fail) and the
//    seeded RNG deciding transient shuffle-fetch drops.
//  * FaultPlan   — arms the triggers. Time triggers are simulation events;
//    the task-count trigger is fed by the scheduler's task-finish hook. The
//    plan itself only decides *when*; *what happens* is delegated to hooks
//    (SparkContext::kill_executor, Node::set_disk_speed_factor) so this
//    module depends on nothing above the simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "conf/config.h"
#include "sim/simulation.h"

namespace saex::fault {

struct FaultSpec {
  bool enabled = false;
  uint64_t seed = 0;           // XORed into the cluster seed
  int kill_node = -1;          // executor to kill (-1: no kill)
  double kill_time = -1.0;     // time trigger (<0: disabled)
  int64_t kill_after_tasks = -1;  // task-count trigger (<0: disabled)
  int slow_node = -1;          // node whose disk degrades (-1: none)
  double slow_factor = 0.3;    // new disk speed factor
  double slow_time = 0.0;      // when the degradation hits
  double fetch_fail_prob = 0.0;  // transient shuffle-fetch drop probability

  /// Reads every `saex.fault.*` key; inert (enabled=false) by default.
  static FaultSpec from_config(const conf::Config& config);
};

/// Runtime fault truth, shared by reference with every ExecutorRuntime
/// (EngineEnv::fault). Exists even when injection is disabled — with no dead
/// nodes and drop probability 0 it is entirely passive.
class FaultState {
 public:
  FaultState(int num_nodes, uint64_t seed, double fetch_fail_prob);

  bool node_alive(int node) const noexcept {
    return node < 0 || node >= static_cast<int>(alive_.size()) ||
           alive_[static_cast<size_t>(node)];
  }
  void mark_dead(int node);
  int dead_executors() const noexcept { return dead_; }

  /// Seeded Bernoulli draw: should this remote shuffle fetch be dropped?
  /// Consumes randomness only when the probability is non-zero, so enabling
  /// an unrelated injection does not shift other streams.
  bool drop_fetch(int src_node, int dst_node);
  int64_t fetch_drops() const noexcept { return fetch_drops_; }

 private:
  std::vector<char> alive_;
  int dead_ = 0;
  double fetch_fail_prob_;
  Rng rng_;
  int64_t fetch_drops_ = 0;
};

/// Arms the spec's triggers against the simulation clock.
class FaultPlan {
 public:
  struct Hooks {
    /// Kill an executor (SparkContext::kill_executor): fail its running
    /// attempts, stop offers, drop its shuffle outputs, start recovery.
    std::function<void(int node)> kill_executor;
    /// Degrade a node's disk (Node::set_disk_speed_factor + event log).
    std::function<void(int node, double factor)> degrade_disk;
  };

  FaultPlan(FaultSpec spec, sim::Simulation& sim, Hooks hooks);

  /// Schedules the time triggers. Call once, before the first job.
  void arm();

  /// Task-count trigger feed (TaskScheduler's task-finish hook).
  void notify_task_finished(int64_t total_finished);

  bool kill_fired() const noexcept { return kill_fired_; }
  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  void fire_kill();

  FaultSpec spec_;
  sim::Simulation& sim_;
  Hooks hooks_;
  bool kill_fired_ = false;
};

}  // namespace saex::fault
