// Built-in subsystem profiler: scoped wall-clock timers with near-zero
// disabled overhead.
//
// Hot engine paths mark themselves with SAEX_PROF_SCOPE(<subsystem>); when
// profiling is off (the default) each scope costs one load and one
// well-predicted branch. When enabled — via SAEX_PROFILE=1 in the
// environment or `saexsim --profile` — every scope records wall time per
// subsystem, and report() renders a table of calls, inclusive and exclusive
// time (exclusive = inclusive minus time spent in nested profiled scopes, so
// the columns sum sensibly even though e.g. the simulation loop contains the
// disk and network models).
//
// Counters are process-global and use relaxed atomics: the harness runs
// whole simulations on worker threads, and per-subsystem totals across a
// sweep are exactly what one wants to see. The nesting stack is
// thread-local, so concurrent simulations never corrupt each other's
// exclusive-time attribution.
#pragma once

#include <cstdint>
#include <string>

namespace saex::prof {

enum class Subsystem : uint8_t {
  kSim = 0,    // event loop dispatch (sim::Simulation)
  kDisk,       // hw::Disk processor-sharing model
  kNetwork,    // hw::Network flow model
  kScheduler,  // engine::TaskScheduler offer loop + status updates
  kShuffle,    // engine::ShuffleManager bookkeeping
  kDfs,        // block placement and lookup
  kAdaptive,   // MAPE-K policy evaluation
  kMetrics,    // time-series recording
  kStorage,    // per-node BlockManager bookkeeping
  kOther,
  kCount,
};

const char* subsystem_name(Subsystem s) noexcept;

/// True while scopes are recording. A plain global read: this sits on paths
/// hot enough that even an acquire fence would show up.
extern bool g_enabled;

class Profiler {
 public:
  /// Reads SAEX_PROFILE from the environment ("1"/"true" enables) once;
  /// later calls are no-ops. Called from main()s and lazily by enable().
  static void init_from_env();
  static void set_enabled(bool enabled) noexcept;
  static bool enabled() noexcept { return g_enabled; }

  /// Adds a sample directly (used by ScopedTimer; public for tests).
  static void record(Subsystem s, uint64_t inclusive_ns, uint64_t exclusive_ns,
                     uint64_t calls = 1) noexcept;

  /// Renders the per-subsystem table (sorted by exclusive time, descending).
  /// Empty string when nothing was recorded.
  static std::string report();
  /// Machine-readable variant (saexsim --profile-json): a JSON object with a
  /// "subsystems" array of {name, calls, inclusive_ns, exclusive_ns}, same
  /// rows and order as report(). "{\"subsystems\": []}" when nothing was
  /// recorded, so consumers always get valid JSON.
  static std::string report_json();
  static void reset() noexcept;
  static uint64_t total_calls(Subsystem s) noexcept;
  static uint64_t exclusive_ns(Subsystem s) noexcept;
};

/// RAII scope timer. All work is behind the enabled check: constructing one
/// with profiling off touches nothing but g_enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Subsystem s) noexcept {
    if (g_enabled) open(s);
  }
  ~ScopedTimer() {
    if (open_) close();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void open(Subsystem s) noexcept;
  void close() noexcept;
  bool open_ = false;
};

#define SAEX_PROF_CONCAT_INNER(a, b) a##b
#define SAEX_PROF_CONCAT(a, b) SAEX_PROF_CONCAT_INNER(a, b)
#define SAEX_PROF_SCOPE(subsystem)                       \
  ::saex::prof::ScopedTimer SAEX_PROF_CONCAT(            \
      saex_prof_scope_, __LINE__)(::saex::prof::Subsystem::subsystem)

}  // namespace saex::prof
