#include "prof/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.h"

namespace saex::prof {

bool g_enabled = false;

namespace {

constexpr size_t kN = static_cast<size_t>(Subsystem::kCount);

struct Totals {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> inclusive_ns{0};
  std::atomic<uint64_t> exclusive_ns{0};
};

Totals g_totals[kN];

struct Frame {
  Subsystem subsystem;
  uint64_t start_ns;
  uint64_t child_ns;  // time spent in nested profiled scopes
};

// One nesting stack per thread: the harness runs independent simulations on
// worker threads, and frames must never interleave across them.
thread_local std::vector<Frame> t_stack;

uint64_t now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string format_ns(uint64_t ns) {
  char buf[32];
  const double s = static_cast<double>(ns) * 1e-9;
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

}  // namespace

const char* subsystem_name(Subsystem s) noexcept {
  switch (s) {
    case Subsystem::kSim: return "sim";
    case Subsystem::kDisk: return "hw/disk";
    case Subsystem::kNetwork: return "hw/network";
    case Subsystem::kScheduler: return "engine/scheduler";
    case Subsystem::kShuffle: return "engine/shuffle";
    case Subsystem::kDfs: return "dfs";
    case Subsystem::kAdaptive: return "adaptive";
    case Subsystem::kMetrics: return "metrics";
    case Subsystem::kStorage: return "storage";
    case Subsystem::kOther: return "other";
    case Subsystem::kCount: break;
  }
  return "?";
}

void Profiler::init_from_env() {
  static const bool once = [] {
    const char* v = std::getenv("SAEX_PROFILE");
    if (v != nullptr &&
        (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0)) {
      g_enabled = true;
    }
    return true;
  }();
  (void)once;
}

void Profiler::set_enabled(bool enabled) noexcept { g_enabled = enabled; }

void Profiler::record(Subsystem s, uint64_t inclusive_ns, uint64_t exclusive_ns,
                      uint64_t calls) noexcept {
  Totals& t = g_totals[static_cast<size_t>(s)];
  t.calls.fetch_add(calls, std::memory_order_relaxed);
  t.inclusive_ns.fetch_add(inclusive_ns, std::memory_order_relaxed);
  t.exclusive_ns.fetch_add(exclusive_ns, std::memory_order_relaxed);
}

void Profiler::reset() noexcept {
  for (Totals& t : g_totals) {
    t.calls.store(0, std::memory_order_relaxed);
    t.inclusive_ns.store(0, std::memory_order_relaxed);
    t.exclusive_ns.store(0, std::memory_order_relaxed);
  }
}

uint64_t Profiler::total_calls(Subsystem s) noexcept {
  return g_totals[static_cast<size_t>(s)].calls.load(std::memory_order_relaxed);
}

uint64_t Profiler::exclusive_ns(Subsystem s) noexcept {
  return g_totals[static_cast<size_t>(s)].exclusive_ns.load(
      std::memory_order_relaxed);
}

std::string Profiler::report() {
  struct Row {
    Subsystem s;
    uint64_t calls, incl, excl;
  };
  std::vector<Row> rows;
  uint64_t total_excl = 0;
  for (size_t i = 0; i < kN; ++i) {
    const uint64_t calls = g_totals[i].calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    const Row row{static_cast<Subsystem>(i),
                  calls,
                  g_totals[i].inclusive_ns.load(std::memory_order_relaxed),
                  g_totals[i].exclusive_ns.load(std::memory_order_relaxed)};
    total_excl += row.excl;
    rows.push_back(row);
  }
  if (rows.empty()) return "";
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.excl > b.excl; });

  TextTable table({"subsystem", "calls", "inclusive", "exclusive", "excl %"});
  for (const Row& r : rows) {
    char calls[32], pct[16];
    std::snprintf(calls, sizeof(calls), "%llu",
                  static_cast<unsigned long long>(r.calls));
    std::snprintf(pct, sizeof(pct), "%5.1f%%",
                  total_excl > 0
                      ? 100.0 * static_cast<double>(r.excl) /
                            static_cast<double>(total_excl)
                      : 0.0);
    table.add_row({subsystem_name(r.s), calls, format_ns(r.incl),
                   format_ns(r.excl), pct});
  }
  return table.render();
}

std::string Profiler::report_json() {
  struct Row {
    Subsystem s;
    uint64_t calls, incl, excl;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < kN; ++i) {
    const uint64_t calls = g_totals[i].calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    rows.push_back(Row{static_cast<Subsystem>(i), calls,
                       g_totals[i].inclusive_ns.load(std::memory_order_relaxed),
                       g_totals[i].exclusive_ns.load(std::memory_order_relaxed)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.excl > b.excl; });

  std::string out = "{\"subsystems\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"calls\": %llu, "
                  "\"inclusive_ns\": %llu, \"exclusive_ns\": %llu}",
                  i == 0 ? "" : ",", subsystem_name(r.s),
                  static_cast<unsigned long long>(r.calls),
                  static_cast<unsigned long long>(r.incl),
                  static_cast<unsigned long long>(r.excl));
    out += buf;
  }
  out += rows.empty() ? "]}\n" : "\n]}\n";
  return out;
}

void ScopedTimer::open(Subsystem s) noexcept {
  open_ = true;
  t_stack.push_back(Frame{s, now_ns(), 0});
}

void ScopedTimer::close() noexcept {
  const Frame frame = t_stack.back();
  t_stack.pop_back();
  const uint64_t elapsed = now_ns() - frame.start_ns;
  const uint64_t excl = elapsed >= frame.child_ns ? elapsed - frame.child_ns : 0;
  Profiler::record(frame.subsystem, elapsed, excl);
  if (!t_stack.empty()) t_stack.back().child_ns += elapsed;
}

}  // namespace saex::prof
