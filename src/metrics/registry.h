// Named counters and gauges.
//
// Components register counters under hierarchical names
// ("node3/disk/bytes_read"); benches and tests read them back by name.
// Single-threaded (simulation runs on one event loop), so no atomics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace saex::metrics {

class Counter {
 public:
  void add(double v) noexcept { value_ += v; }
  void increment() noexcept { value_ += 1.0; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Owns counters/gauges by name; references remain valid for the registry's
/// lifetime (node-based map).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Value of a counter/gauge, or 0 if it does not exist.
  double counter_value(std::string_view name) const noexcept;
  double gauge_value(std::string_view name) const noexcept;

  /// Sorted names, optionally filtered by prefix.
  std::vector<std::string> counter_names(std::string_view prefix = "") const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
};

}  // namespace saex::metrics
