// Named counters and gauges.
//
// Components register counters under hierarchical names
// ("node3/disk/bytes_read"); benches and tests read them back by name.
// Single-threaded (simulation runs on one event loop), so no atomics.
//
// Hot paths do not pay for the name: a metric name is interned once into a
// dense MetricId (an index into a stable slot vector), and call sites hold a
// pre-resolved CounterHandle/GaugeHandle — an increment through a handle is
// a pointer deref + add. The string-keyed counter()/gauge() API remains as
// the cold-path shim (one map lookup per call) and aliases the same cell:
//
//   CounterHandle done = registry.counter_handle("serve/jobs/finished");
//   ...per-job hot path...
//   done.increment();                        // no lookup, no allocation
//   registry.counter_value("serve/jobs/finished");  // same cell
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace saex::metrics {

class Counter {
 public:
  void add(double v) noexcept { value_ += v; }
  void increment() noexcept { value_ += 1.0; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Interned metric identity: a dense index into the owning Registry's slot
/// vector. Ids are assigned in interning order, never reused, and stay valid
/// for the registry's lifetime (slots are never removed).
class MetricId {
 public:
  constexpr MetricId() = default;
  constexpr explicit MetricId(uint32_t index) : index_(index) {}
  constexpr uint32_t index() const noexcept { return index_; }
  constexpr bool valid() const noexcept { return index_ != UINT32_MAX; }
  friend constexpr bool operator==(MetricId a, MetricId b) noexcept {
    return a.index_ == b.index_;
  }

 private:
  uint32_t index_ = UINT32_MAX;
};

/// Pre-resolved pointer to a counter cell. Cheap to copy; valid for the
/// registry's lifetime. Default-constructed handles are null — resolve via
/// Registry::counter_handle before use.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* cell) : cell_(cell) {}
  void add(double v) noexcept { assert(cell_); cell_->add(v); }
  void increment() noexcept { assert(cell_); cell_->increment(); }
  double value() const noexcept { assert(cell_); return cell_->value(); }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  Counter* cell_ = nullptr;
};

/// Pre-resolved pointer to a gauge cell; same lifetime rules as CounterHandle.
class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* cell) : cell_(cell) {}
  void set(double v) noexcept { assert(cell_); cell_->set(v); }
  double value() const noexcept { assert(cell_); return cell_->value(); }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  Gauge* cell_ = nullptr;
};

/// Owns counters/gauges by name; cells live in stable-index slot storage
/// (std::deque), so references, handles, and MetricIds remain valid as the
/// registry grows.
class Registry {
 public:
  // --- interning + handles (resolve once, use on the hot path) -----------
  MetricId counter_id(std::string_view name);
  MetricId gauge_id(std::string_view name);
  CounterHandle counter_handle(std::string_view name) {
    return CounterHandle(&counter_slots_[counter_id(name).index()]);
  }
  GaugeHandle gauge_handle(std::string_view name) {
    return GaugeHandle(&gauge_slots_[gauge_id(name).index()]);
  }
  Counter& counter_at(MetricId id) noexcept {
    assert(id.valid() && id.index() < counter_slots_.size());
    return counter_slots_[id.index()];
  }
  Gauge& gauge_at(MetricId id) noexcept {
    assert(id.valid() && id.index() < gauge_slots_.size());
    return gauge_slots_[id.index()];
  }

  // --- string-keyed shim (cold path: one map lookup per call) ------------
  Counter& counter(std::string_view name) { return counter_at(counter_id(name)); }
  Gauge& gauge(std::string_view name) { return gauge_at(gauge_id(name)); }

  /// Value of a counter/gauge, or 0 if it does not exist.
  double counter_value(std::string_view name) const noexcept;
  double gauge_value(std::string_view name) const noexcept;

  /// Sorted names, optionally filtered by prefix.
  std::vector<std::string> counter_names(std::string_view prefix = "") const;

  size_t num_counters() const noexcept { return counter_slots_.size(); }
  size_t num_gauges() const noexcept { return gauge_slots_.size(); }

 private:
  // name -> slot index. std::map keeps counter_names() sorted for free; the
  // lookup cost only matters on the cold interning/shim path.
  std::map<std::string, uint32_t, std::less<>> counter_index_;
  std::map<std::string, uint32_t, std::less<>> gauge_index_;
  std::deque<Counter> counter_slots_;
  std::deque<Gauge> gauge_slots_;
};

}  // namespace saex::metrics
