#include "metrics/registry.h"

namespace saex::metrics {

MetricId Registry::counter_id(std::string_view name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return MetricId(it->second);
  const uint32_t index = static_cast<uint32_t>(counter_slots_.size());
  counter_slots_.emplace_back();
  counter_index_.emplace(std::string(name), index);
  return MetricId(index);
}

MetricId Registry::gauge_id(std::string_view name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return MetricId(it->second);
  const uint32_t index = static_cast<uint32_t>(gauge_slots_.size());
  gauge_slots_.emplace_back();
  gauge_index_.emplace(std::string(name), index);
  return MetricId(index);
}

double Registry::counter_value(std::string_view name) const noexcept {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0.0 : counter_slots_[it->second].value();
}

double Registry::gauge_value(std::string_view name) const noexcept {
  const auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? 0.0 : gauge_slots_[it->second].value();
}

std::vector<std::string> Registry::counter_names(std::string_view prefix) const {
  std::vector<std::string> names;
  for (const auto& [name, index] : counter_index_) {
    if (name.rfind(prefix, 0) == 0) names.push_back(name);
  }
  return names;
}

}  // namespace saex::metrics
