#include "metrics/registry.h"

namespace saex::metrics {

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

double Registry::counter_value(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value();
}

double Registry::gauge_value(std::string_view name) const noexcept {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

std::vector<std::string> Registry::counter_names(std::string_view prefix) const {
  std::vector<std::string> names;
  for (const auto& [name, counter] : counters_) {
    if (name.rfind(prefix, 0) == 0) names.push_back(name);
  }
  return names;
}

}  // namespace saex::metrics
