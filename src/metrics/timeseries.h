// Time-series recording for figure-style outputs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/units.h"

namespace saex::metrics {

/// Append-only (time, value) series.
class TimeSeries {
 public:
  void record(double t, double value) { points_.emplace_back(t, value); }
  const std::vector<std::pair<double, double>>& points() const noexcept {
    return points_;
  }
  bool empty() const noexcept { return points_.empty(); }

  /// Values resampled onto fixed bins [t0, t0+dt), last-value-holds.
  /// Returns an empty vector for non-finite or non-positive dt and for
  /// empty/reversed spans; the bin count is capped at kMaxResampleBins so a
  /// tiny-but-positive dt cannot request unbounded memory.
  std::vector<double> resample(double t0, double t1, double dt) const;

  /// Upper bound on bins produced by a single resample() call.
  static constexpr size_t kMaxResampleBins = size_t{1} << 24;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// Accumulates byte events into fixed-width bins; reads back as a rate
/// series (bytes/sec per bin). This is how Fig. 12's throughput-over-time
/// curves are produced.
class RateSeries {
 public:
  /// bin_seconds must be finite and positive; anything else (0, negative,
  /// NaN, inf) falls back to the 1.0s default so add()/rates() can never
  /// divide by zero or index off a garbage bin number.
  explicit RateSeries(double bin_seconds = 1.0)
      : bin_(bin_seconds > 0 && bin_seconds <= kMaxBinSeconds ? bin_seconds
                                                              : 1.0) {}

  /// Largest accepted bin width (~31 years); also rejects +inf.
  static constexpr double kMaxBinSeconds = 1e9;

  void add(double t, Bytes bytes);

  double bin_seconds() const noexcept { return bin_; }
  /// Rate per bin in bytes/sec from t=0 through the last recorded event.
  std::vector<double> rates() const;
  /// Mean rate over the recorded span (0 if empty).
  double mean_rate() const;

 private:
  double bin_;
  std::vector<double> bytes_per_bin_;
};

}  // namespace saex::metrics
