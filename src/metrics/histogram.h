// Log-bucketed histogram for latency/duration distributions.
//
// Buckets grow geometrically (each ×growth), so the histogram covers many
// orders of magnitude with bounded memory and ~±(growth-1)/2 relative
// quantile error — the standard HDR-style tradeoff. Used for per-stage task
// duration distributions in reports and by the straggler analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace saex::metrics {

class Histogram {
 public:
  /// `min_value` is the lower bound of the first bucket; values below it
  /// land in bucket 0. `growth` must be > 1.
  explicit Histogram(double min_value = 1e-3, double growth = 1.25);

  void add(double value) noexcept;
  void merge(const Histogram& other);

  uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Quantile estimate (bucket upper bound interpolation), q in [0,1].
  double quantile(double q) const noexcept;

  size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  size_t bucket_index(double value) const noexcept;
  double bucket_upper(size_t index) const noexcept;

  double min_value_;
  double growth_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace saex::metrics
