#include "metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace saex::metrics {

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth) {
  assert(min_value > 0.0 && growth > 1.0);
}

size_t Histogram::bucket_index(double value) const noexcept {
  if (value <= min_value_) return 0;
  return static_cast<size_t>(
             std::ceil(std::log(value / min_value_) / std::log(growth_)));
}

double Histogram::bucket_upper(size_t index) const noexcept {
  return min_value_ * std::pow(growth_, static_cast<double>(index));
}

void Histogram::add(double value) noexcept {
  value = std::max(value, 0.0);
  const size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  assert(min_value_ == other.min_value_ && growth_ == other.growth_);
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ ? std::min(min_, other.min_) : other.min_;
  max_ = count_ ? std::max(max_, other.max_) : other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

}  // namespace saex::metrics
