#include "metrics/timeseries.h"

#include <algorithm>
#include <cmath>

namespace saex::metrics {

std::vector<double> TimeSeries::resample(double t0, double t1, double dt) const {
  std::vector<double> out;
  if (!std::isfinite(t0) || !std::isfinite(t1) || !std::isfinite(dt)) {
    return out;
  }
  if (dt <= 0 || t1 <= t0) return out;
  // Bin count is computed up front and the loop indexes `t0 + i*dt` rather
  // than accumulating `t += dt`: with a dt below t0's ulp the accumulated
  // form never advances and loops forever. The cap bounds memory when the
  // caller passes a pathologically small (but positive) dt.
  const double raw_bins = std::ceil((t1 - t0) / dt);
  const size_t n = raw_bins < static_cast<double>(kMaxResampleBins)
                       ? static_cast<size_t>(raw_bins)
                       : kMaxResampleBins;
  out.reserve(n);
  double value = points_.empty() ? 0.0 : points_.front().second;
  size_t idx = 0;
  for (size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) * dt;
    while (idx < points_.size() && points_[idx].first <= t) {
      value = points_[idx].second;
      ++idx;
    }
    out.push_back(value);
  }
  return out;
}

void RateSeries::add(double t, Bytes bytes) {
  if (!(t >= 0)) t = 0;  // also catches NaN
  const size_t bin = static_cast<size_t>(t / bin_);
  if (bin >= bytes_per_bin_.size()) bytes_per_bin_.resize(bin + 1, 0.0);
  bytes_per_bin_[bin] += static_cast<double>(bytes);
}

std::vector<double> RateSeries::rates() const {
  std::vector<double> out(bytes_per_bin_.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = bytes_per_bin_[i] / bin_;
  return out;
}

double RateSeries::mean_rate() const {
  if (bytes_per_bin_.empty()) return 0.0;
  double total = 0.0;
  for (double b : bytes_per_bin_) total += b;
  return total / (static_cast<double>(bytes_per_bin_.size()) * bin_);
}

}  // namespace saex::metrics
