// The sensor data the MAPE-K loop consumes.
//
// Paper §5.1: the monitor tracks (1) epoll wait time ε — accumulated time
// tasks spend blocked waiting for I/O completions (the paper measures it
// with strace; our simulated executors account blocked time directly, and
// procmon/ provides the live-Linux equivalent) — and (2) I/O throughput µ —
// bytes moved by the tasks (disk AND shuffle/network, per the paper's
// argument for why ζ also works for network-bound stages).
#pragma once

#include <utility>
#include <vector>

#include "common/units.h"

namespace saex::metrics {

/// Monotone accumulators; the Monitor takes deltas between snapshots.
struct IoCounters {
  double blocked_seconds = 0.0;  // ε accumulator
  Bytes bytes_read = 0;          // disk + shuffle reads
  Bytes bytes_written = 0;       // disk + shuffle writes
  uint64_t tasks_completed = 0;

  Bytes bytes_total() const noexcept { return bytes_read + bytes_written; }
};

class IoAccounting {
 public:
  void add_blocked(double seconds) noexcept { counters_.blocked_seconds += seconds; }
  void add_read(Bytes b) noexcept { counters_.bytes_read += b; }
  void add_write(Bytes b) noexcept { counters_.bytes_written += b; }
  void task_completed() noexcept { ++counters_.tasks_completed; }

  const IoCounters& snapshot() const noexcept { return counters_; }
  void reset() noexcept { counters_ = IoCounters{}; }

 private:
  IoCounters counters_;
};

/// Integral of "active units" over time for a capacity-k resource; answers
/// "average utilization over [t0, t1]" queries for disk-busy (Fig. 5),
/// CPU-busy and iowait (Fig. 1) rollups.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(double capacity = 1.0) : capacity_(capacity) {}

  /// Records that `active` units are busy from sim-time `t` onward.
  /// Times must be non-decreasing.
  void set_active(double t, double active);

  /// Busy-unit-seconds accumulated up to time t.
  double integral_at(double t) const;

  /// Mean utilization (0..1) over [t0, t1].
  double utilization(double t0, double t1) const;

  double capacity() const noexcept { return capacity_; }

 private:
  double capacity_;
  double last_t_ = 0.0;
  double active_ = 0.0;
  double integral_ = 0.0;
  // Change points for historical queries: (t, integral_at_t, active_after_t).
  struct Point {
    double t;
    double integral;
    double active;
  };
  std::vector<Point> history_{{0.0, 0.0, 0.0}};
};

}  // namespace saex::metrics
