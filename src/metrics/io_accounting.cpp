#include "metrics/io_accounting.h"

#include <algorithm>
#include <cassert>

#include "prof/profiler.h"

namespace saex::metrics {

void UtilizationTracker::set_active(double t, double active) {
  SAEX_PROF_SCOPE(kMetrics);
  assert(t + 1e-12 >= last_t_ && "time went backwards");
  t = std::max(t, last_t_);
  // Same instant, same level: the new change point would be an exact
  // duplicate of the last one (identical t, integral, active), so queries
  // are unaffected by skipping it. Bursts of transfers joining an already
  // busy device at one timestamp otherwise grow history_ by one point each.
  if (t == last_t_ && active == active_) return;
  integral_ += active_ * (t - last_t_);
  last_t_ = t;
  active_ = active;
  history_.push_back({t, integral_, active});
}

double UtilizationTracker::integral_at(double t) const {
  // Binary search the last change point at or before t.
  auto it = std::upper_bound(
      history_.begin(), history_.end(), t,
      [](double value, const Point& p) { return value < p.t; });
  assert(it != history_.begin());
  --it;
  return it->integral + it->active * (t - it->t);
}

double UtilizationTracker::utilization(double t0, double t1) const {
  if (t1 <= t0 || capacity_ <= 0.0) return 0.0;
  return (integral_at(t1) - integral_at(t0)) / (capacity_ * (t1 - t0));
}

}  // namespace saex::metrics
