// Discrete-event simulation kernel.
//
// All cluster hardware (disks, NICs, cores) and the engine's executors run
// on a single-threaded event loop over simulated seconds. Determinism:
// events with equal timestamps fire in scheduling order (FIFO tiebreak), so
// a run is a pure function of (configuration, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace saex::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Opaque handle for a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` `delay` seconds from now (negative delays clamp to 0).
  EventId schedule_after(Time delay, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// Returns true if the event was pending.
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final time.
  Time run();

  /// Runs all events with timestamp <= limit; advances now() to
  /// min(limit, last event time). Returns true if events remain.
  bool run_until(Time limit);

  /// Processes exactly one event if any is pending; returns false when the
  /// queue is empty.
  bool step();

  size_t pending() const noexcept { return live_events_; }
  uint64_t processed() const noexcept { return processed_; }

 private:
  struct Event {
    Time t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  bool fire_next();

  Time now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t processed_ = 0;
  size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Cancelled ids; lazily dropped when they reach the queue head.
  std::vector<EventId> cancelled_;
  bool is_cancelled(EventId id) const noexcept;
};

}  // namespace saex::sim
