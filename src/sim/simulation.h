// Discrete-event simulation kernel.
//
// All cluster hardware (disks, NICs, cores) and the engine's executors run
// on a single-threaded event loop over simulated seconds. Determinism:
// events with equal timestamps fire in scheduling order (FIFO tiebreak), so
// a run is a pure function of (configuration, seed).
//
// Hot-path layout: the priority queue (a hand-rolled 4-ary heap) holds
// 24-byte POD keys only; callbacks live in a generation-stamped slot table
// and are moved out exactly once, when their event fires. cancel() is O(1):
// it flips the slot's tombstone flag, and the key is dropped when it
// surfaces at the queue head. The generation stamp makes stale handles —
// including ids of already-fired events — detectably invalid, so cancel()
// never tombstones an event that is no longer pending.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/callback.h"
#include "sim/event_heap.h"

namespace saex::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Opaque handle for a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now()).
  EventId schedule_at(Time t, Callback fn);

  /// Schedules `fn` `delay` seconds from now (negative delays clamp to 0).
  EventId schedule_after(Time delay, Callback fn);

  /// Cancels a pending event. Returns true if the event was pending; false
  /// for double-cancels, already-fired events, and invalid handles.
  bool cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final time.
  Time run();

  /// Runs all events with timestamp <= limit; advances now() to
  /// min(limit, last event time). Returns true if events remain.
  bool run_until(Time limit);

  /// Processes exactly one event if any is pending; returns false when the
  /// queue is empty.
  bool step();

  /// Timestamp of the earliest pending event, or +infinity when the queue
  /// is empty. Pops tombstoned (cancelled) entries sitting at the head, so
  /// the answer reflects the next event that will actually fire. Used by the
  /// shard layer to compute conservative time-window horizons.
  Time next_time();

  size_t pending() const noexcept { return live_events_; }
  uint64_t processed() const noexcept { return processed_; }

 private:
  // One scheduled (or tombstoned) event's payload. The generation counter
  // increments every time the slot is released, so an EventId minted for an
  // earlier occupancy no longer matches.
  struct Slot {
    Callback cb;
    uint32_t generation = 0;
    bool cancelled = false;
  };

  static EventId make_id(uint32_t generation, uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  uint32_t alloc_slot();
  void release_slot(uint32_t index) noexcept;
  bool fire_next();
  /// Pops tombstoned entries sitting at the queue head.
  void drop_cancelled_head();

  Time now_ = 0.0;
  uint64_t seq_ = 0;  // total schedule_* calls; FIFO tiebreak key
  uint64_t processed_ = 0;
  size_t live_events_ = 0;
  EventHeap queue_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace saex::sim
