// Move-only type-erased void() callable with small-buffer optimization.
//
// The event kernel stores one callback per scheduled event, so the callback
// representation is on the hottest path in the system. std::function is the
// wrong tool there: it must stay copyable (forcing captured state onto the
// heap beyond ~16 bytes) and its copy is taken once more when an event is
// read back out of a container. Callback is move-only — scheduling transfers
// ownership — and inlines captures up to kInlineSize bytes, which covers
// every completion lambda the engine and hardware models create (this
// pointer + a few ids/sizes). Larger or throwing-move callables fall back to
// a single heap allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace saex::sim {

class Callback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Callback() noexcept {}

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      inline_ = true;
      relocate_or_destroy_ = [](void* dst, void* src) noexcept {
        D* s = static_cast<D*>(src);
        if (dst != nullptr) ::new (dst) D(std::move(*s));
        s->~D();
      };
    } else {
      ptr_ = new D(std::forward<F>(f));
      inline_ = false;
      relocate_or_destroy_ = [](void* dst, void* src) noexcept {
        (void)dst;  // heap targets move by pointer steal, never relocate
        delete static_cast<D*>(src);
      };
    }
    invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
  }

  Callback(Callback&& other) noexcept { steal(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(target()); }

  void reset() noexcept {
    if (invoke_ == nullptr) return;
    relocate_or_destroy_(nullptr, target());
    invoke_ = nullptr;
    relocate_or_destroy_ = nullptr;
  }

 private:
  void* target() noexcept {
    return inline_ ? static_cast<void*>(buf_) : ptr_;
  }

  void steal(Callback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_or_destroy_ = other.relocate_or_destroy_;
    inline_ = other.inline_;
    if (invoke_ != nullptr) {
      if (inline_) {
        other.relocate_or_destroy_(buf_, other.buf_);
      } else {
        ptr_ = other.ptr_;
      }
      other.invoke_ = nullptr;
      other.relocate_or_destroy_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    void* ptr_;
  };
  void (*invoke_)(void*) = nullptr;
  // dst == nullptr: destroy/delete src. dst != nullptr (inline targets
  // only): move-construct into dst, then destroy src.
  void (*relocate_or_destroy_)(void* dst, void* src) noexcept = nullptr;
  bool inline_ = false;
};

}  // namespace saex::sim
