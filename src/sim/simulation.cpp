#include "sim/simulation.h"

#include "prof/profiler.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace saex::sim {

uint32_t Simulation::alloc_slot() {
  if (!free_slots_.empty()) {
    const uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  assert(slots_.size() < std::numeric_limits<uint32_t>::max() &&
         "slot table exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulation::release_slot(uint32_t index) noexcept {
  Slot& slot = slots_[index];
  slot.cb.reset();
  slot.cancelled = false;
  ++slot.generation;
  free_slots_.push_back(index);
}

EventId Simulation::schedule_at(Time t, Callback fn) {
  const uint32_t index = alloc_slot();
  Slot& slot = slots_[index];
  slot.cb = std::move(fn);
  queue_.push(EventKey{std::max(t, now_), seq_++, index});
  ++live_events_;
  return make_id(slot.generation, index);
}

EventId Simulation::schedule_after(Time delay, Callback fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const uint64_t raw_index = (id & 0xffffffffull) - 1;
  if (raw_index >= slots_.size()) return false;
  Slot& slot = slots_[static_cast<uint32_t>(raw_index)];
  // A generation mismatch means the event already fired (or was cancelled
  // and collected) and the slot moved on; the handle is stale.
  if (slot.generation != static_cast<uint32_t>(id >> 32)) return false;
  if (slot.cancelled || !slot.cb) return false;
  slot.cancelled = true;
  slot.cb.reset();  // captured state is released eagerly, not at pop time
  assert(live_events_ > 0);
  --live_events_;
  return true;
}

void Simulation::drop_cancelled_head() {
  while (!queue_.empty() && slots_[queue_.top().slot].cancelled) {
    release_slot(queue_.pop().slot);
  }
}

bool Simulation::fire_next() {
  while (!queue_.empty()) {
    const EventKey key = queue_.pop();
    Slot& slot = slots_[key.slot];
    if (slot.cancelled) {
      release_slot(key.slot);
      continue;
    }
    assert(key.t >= now_ && "event scheduled in the past");
    now_ = key.t;
    // Move the callback out before invoking: the callback may schedule new
    // events, growing slots_ and invalidating `slot`.
    Callback cb = std::move(slot.cb);
    release_slot(key.slot);
    --live_events_;
    ++processed_;
    {
      SAEX_PROF_SCOPE(kSim);
      cb();
    }
    return true;
  }
  return false;
}

Time Simulation::run() {
  while (fire_next()) {
  }
  return now_;
}

bool Simulation::run_until(Time limit) {
  for (;;) {
    drop_cancelled_head();
    if (queue_.empty()) break;
    if (queue_.top().t > limit) {
      now_ = limit;
      return true;
    }
    fire_next();
  }
  now_ = std::max(now_, limit);
  return false;
}

bool Simulation::step() { return fire_next(); }

Time Simulation::next_time() {
  drop_cancelled_head();
  return queue_.empty() ? std::numeric_limits<Time>::infinity()
                        : queue_.top().t;
}

}  // namespace saex::sim
