#include "sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace saex::sim {

EventId Simulation::schedule_at(Time t, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), id, std::move(fn)});
  ++live_events_;
  return id;
}

EventId Simulation::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

bool Simulation::is_cancelled(EventId id) const noexcept {
  return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

bool Simulation::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the middle of a priority_queue; record the id and
  // drop the event when it surfaces. live_events_ is decremented now so that
  // pending() reflects the logical queue.
  cancelled_.push_back(id);
  if (live_events_ > 0) --live_events_;
  return true;
}

bool Simulation::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), ev.id));
      continue;
    }
    assert(ev.t >= now_ && "event scheduled in the past");
    now_ = ev.t;
    --live_events_;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

Time Simulation::run() {
  while (fire_next()) {
  }
  return now_;
}

bool Simulation::run_until(Time limit) {
  while (!queue_.empty()) {
    // Peek through cancelled events without firing.
    if (is_cancelled(queue_.top().id)) {
      const EventId id = queue_.top().id;
      queue_.pop();
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), id));
      continue;
    }
    if (queue_.top().t > limit) {
      now_ = limit;
      return true;
    }
    fire_next();
  }
  now_ = std::max(now_, limit);
  return false;
}

bool Simulation::step() { return fire_next(); }

}  // namespace saex::sim
