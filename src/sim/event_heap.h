// Hand-rolled 4-ary min-heap over plain-old-data event keys.
//
// The kernel keeps callbacks out of the heap entirely (they live in the
// Simulation's slot table), so heap entries are 24-byte PODs and every sift
// step is a trivial copy — no allocator traffic, no move-constructor calls
// through type-erasure, and a 4-way branching factor that halves the tree
// depth and keeps sibling groups on one cache line compared to the binary
// std::priority_queue it replaces. pop() moves the top entry out by value;
// there is no copying of whole events through top().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace saex::sim {

struct EventKey {
  double t;       // absolute firing time
  uint64_t seq;   // schedule order; breaks timestamp ties FIFO
  uint32_t slot;  // index into the Simulation's slot table
};

inline bool earlier(const EventKey& a, const EventKey& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  return a.seq < b.seq;
}

class EventHeap {
 public:
  bool empty() const noexcept { return v_.empty(); }
  std::size_t size() const noexcept { return v_.size(); }
  const EventKey& top() const noexcept { return v_[0]; }

  void push(EventKey e) {
    std::size_t i = v_.size();
    v_.push_back(e);  // reserve the hole; overwritten below
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  EventKey pop() {
    const EventKey out = v_[0];
    const EventKey last = v_.back();
    v_.pop_back();
    if (!v_.empty()) sift_down(last);
    return out;
  }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_down(EventKey e) {
    const std::size_t n = v_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end =
          first_child + kArity < n ? first_child + kArity : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (earlier(v_[c], v_[best])) best = c;
      }
      if (!earlier(v_[best], e)) break;
      v_[i] = v_[best];
      i = best;
    }
    v_[i] = e;
  }

  std::vector<EventKey> v_;
};

}  // namespace saex::sim
