#include "aqe/tuner.h"

#include <algorithm>
#include <cmath>

namespace saex::aqe {
namespace {

constexpr int kMaxPoolHint = 64;

}  // namespace

void StageTuner::observe_stage(const StageObservation& obs) {
  ++stages_observed_;

  if (!obs.durations.empty() && obs.durations.size() == obs.bytes.size()) {
    // Rank-pair: completion order is scheduler-dependent detail, but the
    // k-th smallest task almost surely processed the k-th smallest input.
    std::vector<double> d(obs.durations);
    std::vector<Bytes> b(obs.bytes);
    std::sort(d.begin(), d.end());
    std::sort(b.begin(), b.end());
    for (size_t i = 0; i < d.size(); ++i) {
      const double x = static_cast<double>(b[i]);
      sum_x_ += x;
      sum_y_ += d[i];
      sum_xx_ += x * x;
      sum_xy_ += x * d[i];
      n_ += 1.0;
      if (n_ == 1.0) {
        min_x_ = max_x_ = b[i];
      } else {
        min_x_ = std::min(min_x_, b[i]);
        max_x_ = std::max(max_x_, b[i]);
      }
    }
  }

  if (obs.pool_size > 0 && obs.makespan > 0.0) {
    const double throughput =
        static_cast<double>(obs.total_bytes) / obs.makespan;
    auto [it, inserted] = pool_throughput_.emplace(obs.pool_size, throughput);
    if (!inserted) it->second = std::max(it->second, throughput);
  }
}

bool StageTuner::ready() const noexcept {
  return n_ >= 2.0 && max_x_ > min_x_;
}

double StageTuner::per_byte() const noexcept {
  if (!ready()) return 0.0;
  const double denom = n_ * sum_xx_ - sum_x_ * sum_x_;
  if (denom <= 0.0) return 0.0;
  return std::max(0.0, (n_ * sum_xy_ - sum_x_ * sum_y_) / denom);
}

double StageTuner::fixed_cost() const noexcept {
  if (n_ < 1.0) return 0.0;
  return std::max(0.0, (sum_y_ - per_byte() * sum_x_) / n_);
}

Bytes StageTuner::choose_target(Bytes total_bytes, int slots,
                                Bytes fallback) const {
  if (!ready() || total_bytes <= 0 || slots <= 0) return fallback;
  const double a = fixed_cost();
  const double b = per_byte();
  if (a <= 0.0 && b <= 0.0) return fallback;

  Bytes best = fallback;
  double best_makespan = -1.0;
  for (Bytes t = kMiB; t <= kGiB; t *= 2) {
    const Bytes tasks = std::max<Bytes>(1, (total_bytes + t - 1) / t);
    const Bytes waves = (tasks + slots - 1) / slots;
    const double makespan =
        static_cast<double>(waves) * (a + b * static_cast<double>(t));
    if (best_makespan < 0.0 || makespan < best_makespan) {
      best_makespan = makespan;
      best = t;
    }
  }
  return best;
}

int StageTuner::choose_pool_hint(int current) const {
  if (pool_throughput_.empty()) return current;
  auto best = pool_throughput_.begin();
  for (auto it = pool_throughput_.begin(); it != pool_throughput_.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  const int p = best->first;
  // One-step deterministic exploration around the incumbent: prefer the
  // untried upward neighbor, then downward, else exploit.
  if (p < kMaxPoolHint && pool_throughput_.count(p + 1) == 0) return p + 1;
  if (p > 1 && pool_throughput_.count(p - 1) == 0) return p - 1;
  return p;
}

}  // namespace saex::aqe
