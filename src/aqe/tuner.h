// Per-stage multi-knob tuner: an online cost model over observed reduce-task
// bytes and service times that jointly suggests (coalesce target, reduce
// parallelism, pool-size hint) for the NEXT shuffle stage.
//
// The model is the classic two-parameter task-time fit
//
//     service_seconds ≈ fixed_cost + per_byte × input_bytes
//
// updated by accumulated least squares across stages (durations and bytes
// are sorted ascending and paired rank-to-rank, which is deterministic and
// robust to the scheduler reporting completions out of task order). Given W
// total shuffle bytes and S cluster task slots, the tuner picks the coalesce
// target t on a geometric grid that minimizes the modeled makespan
//
//     waves(W, t, S) × (fixed_cost + per_byte × t),
//
// i.e. it trades per-task overhead (favors large t) against wave granularity
// (favors small t). The pool-size hint is a stage-granularity hill-climb
// over observed per-pool throughputs: it *seeds* each executor's pool before
// the stage starts, and the paper's per-interval MAPE-K controller
// (src/adaptive/) keeps climbing from that seed within the stage — the two
// loops compose rather than compete.
#pragma once

#include <map>
#include <vector>

#include "common/units.h"

namespace saex::aqe {

/// One finished shuffle stage, as observed by the driver.
struct StageObservation {
  std::vector<double> durations;  // per-task service seconds
  std::vector<Bytes> bytes;       // per-task input bytes
  int pool_size = 0;              // thread-pool width the stage settled at
  double makespan = 0.0;          // stage wall-clock seconds
  Bytes total_bytes = 0;          // stage input bytes
};

class StageTuner {
 public:
  /// Folds one finished stage into the cost model and pool statistics.
  void observe_stage(const StageObservation& obs);

  /// True once at least two distinct task sizes have been fitted (the model
  /// is under-determined before that).
  bool ready() const noexcept;

  double fixed_cost() const noexcept;  // seconds per task
  double per_byte() const noexcept;    // seconds per input byte

  /// Modeled-makespan argmin over a geometric grid of coalesce targets
  /// (1 MiB … 1 GiB, ×2). `slots` is the cluster-wide task slot count;
  /// returns `fallback` until the model is ready. Deterministic.
  Bytes choose_target(Bytes total_bytes, int slots, Bytes fallback) const;

  /// Pool-size hint for the next stage: the best observed pool so far, with
  /// one-step exploration to an untried neighbor (bounded to [1, 64]).
  /// Returns `current` until any stage has been observed.
  int choose_pool_hint(int current) const;

  int stages_observed() const noexcept { return stages_observed_; }

 private:
  // Accumulated least-squares sums over (bytes, seconds) pairs.
  double sum_x_ = 0.0, sum_y_ = 0.0, sum_xx_ = 0.0, sum_xy_ = 0.0;
  double n_ = 0.0;
  Bytes min_x_ = 0, max_x_ = 0;  // spread guard for ready()
  int stages_observed_ = 0;

  // pool size -> best observed throughput (bytes per makespan second).
  std::map<int, double> pool_throughput_;
};

}  // namespace saex::aqe
