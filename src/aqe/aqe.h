// Adaptive query execution (AQE): runtime re-planning of shuffle consumer
// stages from the *actual* map-output statistics the ShuffleManager holds
// once every producer task has committed.
//
// Spark 3.x introduced this loop on top of the DAG scheduler; here it
// composes with the paper's self-adaptive executors: AQE fixes the task
// *shapes* (how many reduce tasks, over which partition ranges) while the
// per-interval MAPE-K hill-climb in src/adaptive/ fixes the thread-pool
// width that executes them.
//
// Two re-plan rules, applied at the shuffle-stage boundary:
//
//   * Partition coalescing — adjacent logical reduce partitions are merged
//     until each physical task fetches at least saex.aqe.targetPartitionBytes
//     (amortizes per-task fixed costs on tiny-partition shapes).
//   * Skew splitting — a partition larger than saex.aqe.skewFactor × the
//     median partition size is split into up to saex.aqe.maxSplits range
//     sub-tasks (breaks the one-hot-partition critical path). The sub-task
//     byte apportionment is exact (floor-difference), so the split re-merges
//     deterministically to the original partition's bytes.
//
// The identity plan is represented by an EMPTY slice list: with AQE off (or
// when re-planning changes nothing) the Stage is untouched and the engine
// takes the legacy fetch path verbatim — bitwise-identical schedules.
#pragma once

#include <vector>

#include "common/units.h"
#include "engine/stage.h"

namespace saex::conf {
class Config;
}

namespace saex::aqe {

/// Typed view of the saex.aqe.* configuration keys.
struct AqeOptions {
  bool enabled = false;
  Bytes target_partition_bytes = 64 * kMiB;
  double skew_factor = 4.0;
  int max_splits = 16;
  // Coalescing floor; 0 = the driver substitutes spark.default.parallelism
  // (Spark's own minPartitionNum default), so coalescing never starves the
  // cluster's task slots.
  int min_partitions = 0;
  bool tuner = false;

  /// Reads and validates the saex.aqe.* keys; throws conf::ConfigError on
  /// out-of-range values (non-positive target, skewFactor < 1, ...).
  static AqeOptions from_config(const conf::Config& config);
};

/// Result of re-planning one shuffle consumer stage.
struct AqePlan {
  std::vector<engine::ReduceSlice> slices;
  bool identity = true;      // one task per partition, no splits
  int merged_partitions = 0; // partitions absorbed into a wider neighbor task
  int split_partitions = 0;  // partitions broken into sub-tasks
};

/// Plans the physical reduce tiling for a stage whose logical partitions
/// received `partition_bytes` (from ShuffleManager::reduce_partition_bytes,
/// summed over the stage's input shuffles). Deterministic: depends only on
/// the byte vector and options.
AqePlan plan_reduce_stage(const std::vector<Bytes>& partition_bytes,
                          const AqeOptions& opt);

}  // namespace saex::aqe
