#include "aqe/aqe.h"

#include <algorithm>

#include "common/format.h"
#include "conf/config.h"

namespace saex::aqe {

AqeOptions AqeOptions::from_config(const conf::Config& config) {
  AqeOptions opt;
  opt.enabled = config.get_bool("saex.aqe.enabled");
  opt.target_partition_bytes = config.get_bytes("saex.aqe.targetPartitionBytes");
  opt.skew_factor = config.get_double("saex.aqe.skewFactor");
  opt.max_splits = static_cast<int>(config.get_int("saex.aqe.maxSplits"));
  opt.min_partitions = static_cast<int>(config.get_int("saex.aqe.minPartitions"));
  opt.tuner = config.get_bool("saex.aqe.tuner");

  if (opt.target_partition_bytes <= 0) {
    throw conf::ConfigError(strfmt::format(
        "saex.aqe.targetPartitionBytes must be positive, got {}",
        opt.target_partition_bytes));
  }
  if (opt.skew_factor < 1.0) {
    throw conf::ConfigError(strfmt::format(
        "saex.aqe.skewFactor must be >= 1, got {:.3f}", opt.skew_factor));
  }
  if (opt.max_splits < 1) {
    throw conf::ConfigError(strfmt::format(
        "saex.aqe.maxSplits must be >= 1, got {}", opt.max_splits));
  }
  if (opt.min_partitions < 0) {
    throw conf::ConfigError(strfmt::format(
        "saex.aqe.minPartitions must be >= 0 (0 = default parallelism), "
        "got {}", opt.min_partitions));
  }
  return opt;
}

AqePlan plan_reduce_stage(const std::vector<Bytes>& partition_bytes,
                          const AqeOptions& opt) {
  AqePlan plan;
  const int R = static_cast<int>(partition_bytes.size());
  if (R == 0) return plan;

  Bytes total = 0;
  for (const Bytes b : partition_bytes) total += b;

  // Median partition size anchors the skew threshold (Spark's rule: a
  // partition is skewed when it exceeds BOTH skewFactor × median and the
  // coalesce target — the second clause stops us splitting uniformly tiny
  // stages whose median is near zero).
  std::vector<Bytes> sorted(partition_bytes);
  std::sort(sorted.begin(), sorted.end());
  const Bytes median = sorted[static_cast<size_t>(R) / 2];
  const double skew_threshold =
      opt.skew_factor * static_cast<double>(median);

  // Never coalesce below min_partitions tasks: cap the effective target at
  // an even share of the total.
  Bytes target = opt.target_partition_bytes;
  if (opt.min_partitions > 1 && total > 0) {
    target = std::min<Bytes>(
        target, std::max<Bytes>(1, total / opt.min_partitions));
  }

  int run_first = -1;     // open coalesce run [run_first, p)
  Bytes run_bytes = 0;
  const auto flush_run = [&](int upto) {
    if (run_first < 0) return;
    plan.slices.push_back(engine::ReduceSlice{run_first, upto - 1, 0, 1});
    plan.merged_partitions += (upto - 1) - run_first;
    run_first = -1;
    run_bytes = 0;
  };

  for (int p = 0; p < R; ++p) {
    const Bytes b = partition_bytes[static_cast<size_t>(p)];
    const bool skewed = opt.max_splits > 1 &&
                        static_cast<double>(b) > skew_threshold &&
                        b > opt.target_partition_bytes;
    if (skewed) {
      flush_run(p);
      const int splits = static_cast<int>(std::min<Bytes>(
          opt.max_splits,
          (b + opt.target_partition_bytes - 1) / opt.target_partition_bytes));
      const int m = std::max(2, splits);
      for (int j = 0; j < m; ++j) {
        plan.slices.push_back(engine::ReduceSlice{p, p, j, m});
      }
      ++plan.split_partitions;
      continue;
    }
    if (run_first < 0) run_first = p;
    run_bytes += b;
    if (run_bytes >= target) flush_run(p + 1);
  }
  flush_run(R);

  plan.identity = plan.split_partitions == 0 &&
                  static_cast<int>(plan.slices.size()) == R;
  return plan;
}

}  // namespace saex::aqe
