#include "hw/disk.h"

#include "prof/profiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace saex::hw {

// Calibrated against the paper's Fig. 12a per-thread-count series on the
// DAS-5 7'200 rpm SATA drives: ~110 MB/s with one outstanding request,
// peaking at ~210 MB/s around queue depth 4 (NCQ + elevator), collapsing
// toward ~100 MB/s at 32 concurrent streams (readahead fragmentation).
DiskParams DiskParams::hdd() {
  DiskParams p;
  p.base_bw = 112e6;
  p.ncq_gain = 1.0;
  p.ncq_pow = 1.3;
  p.frag_coeff = 0.05;
  p.k_sat = 7.0;  // capacity plateaus over ~4-8 streams, collapses beyond
  p.ssd_ramp = 0.0;
  p.write_cost_factor = 1.05;
  return p;
}

DiskParams DiskParams::ssd() {
  DiskParams p;
  p.base_bw = 510e6;
  p.ncq_gain = 0.0;
  p.frag_coeff = 0.0;
  p.ssd_ramp = 0.35;       // tiny ramp: a single stream nearly saturates
  p.wear_coeff = 0.012;    // erase-before-write pressure at high concurrency
  p.k_wear = 16.0;
  p.write_cost_factor = 1.7;  // ~300 MB/s effective sequential write
  p.latency = 0.00008;
  return p;
}

Disk::Disk(sim::Simulation& sim, DiskParams params, std::string name,
           double speed_factor)
    : sim_(sim),
      params_(params),
      name_(std::move(name)),
      speed_factor_(speed_factor) {}

void Disk::set_speed_factor(double factor) {
  assert(factor > 0.0);
  advance_and_reschedule();  // settle in-flight work at the old rate
  speed_factor_ = factor;
  cap_cache_.clear();  // memoized capacities embed the old factor
  advance_and_reschedule();  // recompute the next completion at the new rate
}

double Disk::capacity_uncached(double kd) const noexcept {
  const double base = params_.base_bw * speed_factor_;
  if (params_.ssd_ramp > 0.0) {
    const double ramp = kd / (kd + params_.ssd_ramp);
    const double wear =
        1.0 + params_.wear_coeff * std::max(0.0, kd - params_.k_wear);
    return base * ramp / wear;
  }
  const double queue_gain =
      1.0 + params_.ncq_gain * (1.0 - std::pow(kd, -params_.ncq_pow));
  const double fragmentation =
      1.0 + params_.frag_coeff * std::max(0.0, kd - params_.k_sat);
  return base * queue_gain / fragmentation;
}

double Disk::capacity_eff(double kd) const noexcept {
  if (kd <= 0.0) return 0.0;
  if (kd < 1.0) kd = 1.0;  // a lone (even write-weighted) stream gets base bw
  // On the hot path kd is reads + write_stream_weight*writes — with the
  // default quarter weight, an exact multiple of 0.25 — so the std::pow in
  // the HDD curve is memoized per quarter-stream step. Off-grid arguments
  // (tests probing arbitrary k) fall through to the direct computation.
  constexpr size_t kCacheMax = 16384;  // quarter-steps: up to 4096 streams
  const double q = kd * 4.0;
  const size_t idx = static_cast<size_t>(q);
  if (static_cast<double>(idx) == q && idx < kCacheMax) {
    if (idx >= cap_cache_.size()) cap_cache_.resize(idx + 1, -1.0);
    double& slot = cap_cache_[idx];
    if (slot < 0.0) slot = capacity_uncached(kd);
    return slot;
  }
  return capacity_uncached(kd);
}

double Disk::effective_streams() const noexcept {
  // Exact for the default quarter write weight: both terms are dyadic, so
  // this matches the old per-transfer summation bit for bit.
  return static_cast<double>(read_streams_) +
         params_.write_stream_weight * static_cast<double>(write_streams_);
}

double Disk::current_rate_per_transfer() const noexcept {
  const int k = active_transfers();
  if (k == 0) return 0.0;
  return capacity_eff(effective_streams()) / static_cast<double>(k);
}

void Disk::submit(Bytes bytes, bool is_write, sim::Callback done,
                  double work_factor) {
  assert(bytes >= 0);
  assert(work_factor > 0.0);
  if (bytes == 0) {
    // Zero-byte transfers complete after the setup latency only.
    sim_.schedule_after(params_.latency, std::move(done));
    return;
  }
  const double work = static_cast<double>(bytes) * work_factor *
                      (is_write ? params_.write_cost_factor : 1.0);
  // The fixed setup latency is modeled as a delay before joining the
  // processor-sharing pool (controller/syscall time; device is free).
  sim_.schedule_after(params_.latency, [this, work, bytes, is_write,
                                        done = std::move(done)]() mutable {
    advance_and_reschedule();  // settle other transfers up to 'now' first
    transfers_.push_back(Transfer{work, is_write, std::move(done)});
    if (is_write) {
      ++write_streams_;
      bytes_written_ += bytes;
    } else {
      ++read_streams_;
      bytes_read_ += bytes;
    }
    busy_.set_active(sim_.now(), 1.0);
    advance_and_reschedule();
  });
}

void Disk::advance_and_reschedule() {
  SAEX_PROF_SCOPE(kDisk);
  const double now = sim_.now();
  const double dt = now - last_advance_;
  const double rate = current_rate_per_transfer();
  if (dt > 0.0 && rate > 0.0) {
    for (auto& tr : transfers_) tr.remaining_work -= rate * dt;
  }
  last_advance_ = now;

  if (pending_completion_ != sim::kInvalidEvent) {
    sim_.cancel(pending_completion_);
    pending_completion_ = sim::kInvalidEvent;
  }

  // Complete everything that has (numerically) finished, compacting the
  // survivors in place, and find their minimum remaining work in the same
  // pass. The threshold is half a byte: below that, scheduling another
  // wake-up can produce a dt too small to advance the clock at large sim
  // times (t + dt == t in doubles), which would spin the event loop forever.
  std::vector<sim::Callback> finished = std::move(finished_scratch_);
  finished.clear();
  double min_work = std::numeric_limits<double>::infinity();
  size_t out = 0;
  for (size_t i = 0; i < transfers_.size(); ++i) {
    Transfer& tr = transfers_[i];
    if (tr.remaining_work <= 0.5) {
      if (tr.is_write) {
        --write_streams_;
      } else {
        --read_streams_;
      }
      finished.push_back(std::move(tr.done));
    } else {
      min_work = std::min(min_work, tr.remaining_work);
      if (out != i) transfers_[out] = std::move(tr);
      ++out;
    }
  }
  transfers_.resize(out);

  if (transfers_.empty()) {
    busy_.set_active(now, 0.0);
  } else {
    const double next_rate = current_rate_per_transfer();
    // Floor the wake-up so time strictly advances even for sub-byte tails.
    const double dt = std::max(min_work / next_rate, 1e-9);
    pending_completion_ = sim_.schedule_after(dt, [this] {
      pending_completion_ = sim::kInvalidEvent;
      advance_and_reschedule();
    });
  }

  // Callbacks run last: they may submit new transfers reentrantly (a nested
  // advance sees an empty finished_scratch_ and allocates its own buffer).
  for (auto& fn : finished) fn();
  finished.clear();
  finished_scratch_ = std::move(finished);
}

}  // namespace saex::hw
