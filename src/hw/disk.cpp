#include "hw/disk.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace saex::hw {

// Calibrated against the paper's Fig. 12a per-thread-count series on the
// DAS-5 7'200 rpm SATA drives: ~110 MB/s with one outstanding request,
// peaking at ~210 MB/s around queue depth 4 (NCQ + elevator), collapsing
// toward ~100 MB/s at 32 concurrent streams (readahead fragmentation).
DiskParams DiskParams::hdd() {
  DiskParams p;
  p.base_bw = 112e6;
  p.ncq_gain = 1.0;
  p.ncq_pow = 1.3;
  p.frag_coeff = 0.05;
  p.k_sat = 7.0;  // capacity plateaus over ~4-8 streams, collapses beyond
  p.ssd_ramp = 0.0;
  p.write_cost_factor = 1.05;
  return p;
}

DiskParams DiskParams::ssd() {
  DiskParams p;
  p.base_bw = 510e6;
  p.ncq_gain = 0.0;
  p.frag_coeff = 0.0;
  p.ssd_ramp = 0.35;       // tiny ramp: a single stream nearly saturates
  p.wear_coeff = 0.012;    // erase-before-write pressure at high concurrency
  p.k_wear = 16.0;
  p.write_cost_factor = 1.7;  // ~300 MB/s effective sequential write
  p.latency = 0.00008;
  return p;
}

Disk::Disk(sim::Simulation& sim, DiskParams params, std::string name,
           double speed_factor)
    : sim_(sim),
      params_(params),
      name_(std::move(name)),
      speed_factor_(speed_factor) {}

void Disk::set_speed_factor(double factor) {
  assert(factor > 0.0);
  advance_and_reschedule();  // settle in-flight work at the old rate
  speed_factor_ = factor;
  advance_and_reschedule();  // recompute the next completion at the new rate
}

double Disk::capacity_eff(double kd) const noexcept {
  if (kd <= 0.0) return 0.0;
  if (kd < 1.0) kd = 1.0;  // a lone (even write-weighted) stream gets base bw
  const double base = params_.base_bw * speed_factor_;
  if (params_.ssd_ramp > 0.0) {
    const double ramp = kd / (kd + params_.ssd_ramp);
    const double wear =
        1.0 + params_.wear_coeff * std::max(0.0, kd - params_.k_wear);
    return base * ramp / wear;
  }
  const double queue_gain =
      1.0 + params_.ncq_gain * (1.0 - std::pow(kd, -params_.ncq_pow));
  const double fragmentation =
      1.0 + params_.frag_coeff * std::max(0.0, kd - params_.k_sat);
  return base * queue_gain / fragmentation;
}

double Disk::effective_streams() const noexcept {
  double k = 0.0;
  for (const auto& [id, tr] : transfers_) {
    k += tr.is_write ? params_.write_stream_weight : 1.0;
  }
  return k;
}

double Disk::current_rate_per_transfer() const noexcept {
  const int k = active_transfers();
  if (k == 0) return 0.0;
  return capacity_eff(effective_streams()) / static_cast<double>(k);
}

void Disk::submit(Bytes bytes, bool is_write, sim::Callback done,
                  double work_factor) {
  assert(bytes >= 0);
  assert(work_factor > 0.0);
  if (bytes == 0) {
    // Zero-byte transfers complete after the setup latency only.
    sim_.schedule_after(params_.latency, std::move(done));
    return;
  }
  const double work = static_cast<double>(bytes) * work_factor *
                      (is_write ? params_.write_cost_factor : 1.0);
  // The fixed setup latency is modeled as a delay before joining the
  // processor-sharing pool (controller/syscall time; device is free).
  const uint64_t id = next_transfer_id_++;
  sim_.schedule_after(params_.latency, [this, id, work, bytes, is_write,
                                        done = std::move(done)]() mutable {
    advance_and_reschedule();  // settle other transfers up to 'now' first
    transfers_.emplace(id, Transfer{work, bytes, is_write, std::move(done)});
    if (is_write) {
      bytes_written_ += bytes;
    } else {
      bytes_read_ += bytes;
    }
    busy_.set_active(sim_.now(), 1.0);
    advance_and_reschedule();
  });
}

void Disk::advance_and_reschedule() {
  const double now = sim_.now();
  const double dt = now - last_advance_;
  const double rate = current_rate_per_transfer();
  if (dt > 0.0 && rate > 0.0) {
    for (auto& [id, tr] : transfers_) tr.remaining_work -= rate * dt;
  }
  last_advance_ = now;

  if (pending_completion_ != sim::kInvalidEvent) {
    sim_.cancel(pending_completion_);
    pending_completion_ = sim::kInvalidEvent;
  }

  // Complete everything that has (numerically) finished. The threshold is
  // half a byte: below that, scheduling another wake-up can produce a dt too
  // small to advance the clock at large sim times (t + dt == t in doubles),
  // which would spin the event loop forever.
  std::vector<sim::Callback> finished;
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    if (it->second.remaining_work <= 0.5) {
      finished.push_back(std::move(it->second.done));
      it = transfers_.erase(it);
    } else {
      ++it;
    }
  }

  if (transfers_.empty()) {
    busy_.set_active(now, 0.0);
  } else {
    const double next_rate = current_rate_per_transfer();
    double min_work = transfers_.begin()->second.remaining_work;
    for (const auto& [id, tr] : transfers_) {
      min_work = std::min(min_work, tr.remaining_work);
    }
    // Floor the wake-up so time strictly advances even for sub-byte tails.
    const double dt = std::max(min_work / next_rate, 1e-9);
    pending_completion_ = sim_.schedule_after(dt, [this] {
      pending_completion_ = sim::kInvalidEvent;
      advance_and_reschedule();
    });
  }

  // Callbacks run last: they may submit new transfers reentrantly.
  for (auto& fn : finished) fn();
}

}  // namespace saex::hw
