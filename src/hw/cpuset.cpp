#include "hw/cpuset.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace saex::hw {

CpuSet::CpuSet(sim::Simulation& sim, int cores, double speed_factor)
    : sim_(sim),
      cores_(cores),
      speed_factor_(speed_factor),
      busy_tracker_(static_cast<double>(cores)) {
  assert(cores > 0);
}

void CpuSet::execute(double seconds, sim::Callback done) {
  assert(seconds >= 0.0);
  Request req{seconds / speed_factor_, std::move(done)};
  if (busy_ < cores_) {
    start(std::move(req));
  } else {
    queue_.push_back(std::move(req));
  }
}

void CpuSet::start(Request req) {
  ++busy_;
  busy_tracker_.set_active(sim_.now(), static_cast<double>(busy_));
  sim_.schedule_after(req.seconds, [this, done = std::move(req.done)]() mutable {
    finish(std::move(done));
  });
}

void CpuSet::finish(sim::Callback done) {
  --busy_;
  busy_tracker_.set_active(sim_.now(), static_cast<double>(busy_));
  if (!queue_.empty()) {
    Request next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
  done();
}

}  // namespace saex::hw
