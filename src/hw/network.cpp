#include "hw/network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace saex::hw {

Network::Network(sim::Simulation& sim, int num_nodes, NetworkParams params)
    : sim_(sim),
      params_(params),
      up_count_(static_cast<size_t>(num_nodes), 0),
      down_count_(static_cast<size_t>(num_nodes), 0),
      open_(static_cast<size_t>(num_nodes),
            std::vector<int>(static_cast<size_t>(num_nodes), 0)),
      sent_(static_cast<size_t>(num_nodes), 0) {}

void Network::register_fetch(NodeId src, NodeId dst) {
  ++open_[static_cast<size_t>(dst)][static_cast<size_t>(src)];
}

void Network::unregister_fetch(NodeId src, NodeId dst) {
  --open_[static_cast<size_t>(dst)][static_cast<size_t>(src)];
}

int Network::fetches_to(NodeId dst) const noexcept {
  int total = 0;
  for (const int n : open_[static_cast<size_t>(dst)]) total += n;
  return total;
}

int Network::senders_to(NodeId dst) const noexcept {
  int senders = 0;
  for (const int n : open_[static_cast<size_t>(dst)]) senders += n > 0 ? 1 : 0;
  return senders;
}

double Network::down_capacity_eff(int senders, int open_requests) const noexcept {
  const double src_excess = std::max(
      0.0, static_cast<double>(senders) - params_.incast_src_threshold);
  const double flow_excess = std::max(
      0.0, static_cast<double>(open_requests) - params_.incast_flow_threshold);
  return params_.down_bw /
         (1.0 + params_.incast_coeff * src_excess * flow_excess);
}

double Network::flow_rate(const Flow& f) const noexcept {
  const int n_up = up_count_[static_cast<size_t>(f.src)];
  const int n_down = down_count_[static_cast<size_t>(f.dst)];
  assert(n_up > 0 && n_down > 0);
  const double up_share = params_.up_bw / static_cast<double>(n_up);
  const double down_share =
      down_capacity_eff(senders_to(f.dst),
                        std::max(n_down, fetches_to(f.dst))) /
      static_cast<double>(n_down);
  return std::min({up_share, down_share, params_.per_flow_cap});
}

void Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                       sim::Callback done) {
  assert(src != dst && "local data must not cross the network");
  assert(bytes >= 0);
  if (bytes == 0) {
    sim_.schedule_after(params_.latency, std::move(done));
    return;
  }
  const uint64_t id = next_flow_id_++;
  sim_.schedule_after(params_.latency, [this, id, src, dst, bytes,
                                        done = std::move(done)]() mutable {
    advance_and_reschedule();
    flows_.emplace(id, Flow{src, dst, static_cast<double>(bytes), std::move(done)});
    ++up_count_[static_cast<size_t>(src)];
    ++down_count_[static_cast<size_t>(dst)];
    ++open_[static_cast<size_t>(dst)][static_cast<size_t>(src)];
    sent_[static_cast<size_t>(src)] += bytes;
    total_bytes_ += bytes;
    advance_and_reschedule();
  });
}

void Network::advance_and_reschedule() {
  const double now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0.0) {
    for (auto& [id, f] : flows_) f.remaining -= flow_rate(f) * dt;
  }
  last_advance_ = now;

  if (pending_completion_ != sim::kInvalidEvent) {
    sim_.cancel(pending_completion_);
    pending_completion_ = sim::kInvalidEvent;
  }

  // Half-byte completion threshold + floored wake-up: see Disk for why
  // sub-byte tails must not schedule zero-advance events.
  std::vector<sim::Callback> finished;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= 0.5) {
      --up_count_[static_cast<size_t>(it->second.src)];
      --down_count_[static_cast<size_t>(it->second.dst)];
      --open_[static_cast<size_t>(it->second.dst)][static_cast<size_t>(it->second.src)];
      finished.push_back(std::move(it->second.done));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  if (!flows_.empty()) {
    double min_time = std::numeric_limits<double>::infinity();
    for (const auto& [id, f] : flows_) {
      min_time = std::min(min_time, f.remaining / flow_rate(f));
    }
    pending_completion_ = sim_.schedule_after(std::max(min_time, 1e-9), [this] {
      pending_completion_ = sim::kInvalidEvent;
      advance_and_reschedule();
    });
  }

  for (auto& fn : finished) fn();
}

}  // namespace saex::hw
