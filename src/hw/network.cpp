#include "hw/network.h"

#include "prof/profiler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace saex::hw {

Network::Network(sim::Simulation& sim, int num_nodes, NetworkParams params)
    : sim_(sim),
      params_(params),
      up_count_(static_cast<size_t>(num_nodes), 0),
      down_count_(static_cast<size_t>(num_nodes), 0),
      open_count_(static_cast<size_t>(num_nodes), 0),
      open_senders_(static_cast<size_t>(num_nodes), 0),
      sent_(static_cast<size_t>(num_nodes), 0) {}

void Network::register_fetch(NodeId src, NodeId dst) { open_inc(src, dst); }

void Network::unregister_fetch(NodeId src, NodeId dst) { open_dec(src, dst); }

double Network::down_capacity_eff(int senders, int open_requests) const noexcept {
  const double src_excess = std::max(
      0.0, static_cast<double>(senders) - params_.incast_src_threshold);
  const double flow_excess = std::max(
      0.0, static_cast<double>(open_requests) - params_.incast_flow_threshold);
  return params_.down_bw /
         (1.0 + params_.incast_coeff * src_excess * flow_excess);
}

double Network::flow_rate(const Flow& f) const noexcept {
  const int n_up = up_count_[static_cast<size_t>(f.src)];
  const int n_down = down_count_[static_cast<size_t>(f.dst)];
  assert(n_up > 0 && n_down > 0);
  // A batched flow holds `streams` fair shares on each link and carries its
  // own rate cap. streams == 1 multiplies by 1.0 — exact in IEEE arithmetic —
  // and an unbatched flow's cap IS per_flow_cap, so plain transfers settle
  // bitwise-identically to the pre-flow-mode model.
  const double w = static_cast<double>(f.streams);
  const double up_share = params_.up_bw / static_cast<double>(n_up) * w;
  const double down_share =
      down_capacity_eff(senders_to(f.dst),
                        std::max(n_down, fetches_to(f.dst))) /
      static_cast<double>(n_down) * w;
  return std::min({up_share, down_share, f.cap});
}

void Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                       sim::Callback done) {
  start_flow(src, dst, bytes, 1, params_.per_flow_cap, std::move(done));
}

void Network::transfer_flow(NodeId src, NodeId dst, Bytes bytes, int streams,
                            Bytes chunk_bytes, sim::Callback done) {
  assert(streams >= 1);
  ++flow_transfers_;
  streams = std::max(streams, 1);
  // Chunked-goodput cap: a per-chunk stream pays the setup latency before
  // every chunk_bytes request, so its steady-state rate is below
  // per_flow_cap. Folding that protocol overhead into the cap keeps the
  // batched flow's finish time aligned with the per-chunk pipeline it
  // replaces.
  double per_stream = params_.per_flow_cap;
  if (chunk_bytes > 0 && params_.latency > 0.0) {
    per_stream = 1.0 / (params_.latency / static_cast<double>(chunk_bytes) +
                        1.0 / params_.per_flow_cap);
  }
  start_flow(src, dst, bytes, streams, per_stream * streams, std::move(done));
}

void Network::start_flow(NodeId src, NodeId dst, Bytes bytes, int streams,
                         double cap, sim::Callback done) {
  assert(src != dst && "local data must not cross the network");
  assert(bytes >= 0);
  ++transfers_started_;
  if (bytes == 0) {
    sim_.schedule_after(params_.latency, std::move(done));
    return;
  }
  sim_.schedule_after(params_.latency, [this, src, dst, bytes, streams, cap,
                                        done = std::move(done)]() mutable {
    advance_and_reschedule();
    flows_.push_back(Flow{src, dst, static_cast<double>(bytes), streams, cap,
                          std::move(done)});
    up_count_[static_cast<size_t>(src)] += streams;
    down_count_[static_cast<size_t>(dst)] += streams;
    open_inc(src, dst);
    sent_[static_cast<size_t>(src)] += bytes;
    total_bytes_ += bytes;
    advance_and_reschedule();
  });
}

void Network::advance_and_reschedule() {
  SAEX_PROF_SCOPE(kNetwork);
  const double now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0.0) {
    // Settle every flow at the rates implied by the *current* counts; the
    // completion sweep below must not decrement counts until all flows have
    // been settled, or later flows would settle at post-completion rates.
    for (auto& f : flows_) f.remaining -= flow_rate(f) * dt;
  }
  last_advance_ = now;

  if (pending_completion_ != sim::kInvalidEvent) {
    sim_.cancel(pending_completion_);
    pending_completion_ = sim::kInvalidEvent;
  }

  // Half-byte completion threshold + floored wake-up: see Disk for why
  // sub-byte tails must not schedule zero-advance events.
  std::vector<sim::Callback> finished = std::move(finished_scratch_);
  finished.clear();
  size_t out = 0;
  for (size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    if (f.remaining <= 0.5) {
      up_count_[static_cast<size_t>(f.src)] -= f.streams;
      down_count_[static_cast<size_t>(f.dst)] -= f.streams;
      open_dec(f.src, f.dst);
      finished.push_back(std::move(f.done));
    } else {
      if (out != i) flows_[out] = std::move(f);
      ++out;
    }
  }
  flows_.resize(out);

  if (!flows_.empty()) {
    // Survivor rates reflect the post-completion counts, so this pass must
    // run after the sweep above.
    double min_time = std::numeric_limits<double>::infinity();
    for (const auto& f : flows_) {
      min_time = std::min(min_time, f.remaining / flow_rate(f));
    }
    pending_completion_ = sim_.schedule_after(std::max(min_time, 1e-9), [this] {
      pending_completion_ = sim::kInvalidEvent;
      advance_and_reschedule();
    });
  }

  for (auto& fn : finished) fn();
  finished.clear();
  finished_scratch_ = std::move(finished);
}

}  // namespace saex::hw
