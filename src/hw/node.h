// A cluster node: cores + memory + one storage device.
#pragma once

#include <memory>
#include <string>

#include "common/units.h"
#include "hw/cpuset.h"
#include "hw/disk.h"
#include "sim/simulation.h"

namespace saex::hw {

/// Executor-side memory accounting; overflow forces disk spills in the
/// engine's cache/shuffle paths.
class MemoryPool {
 public:
  explicit MemoryPool(Bytes capacity) : capacity_(capacity) {}

  Bytes capacity() const noexcept { return capacity_; }
  Bytes used() const noexcept { return used_; }
  Bytes available() const noexcept { return capacity_ - used_; }

  /// Reserves up to `bytes`; returns how much actually fit (the remainder
  /// must spill).
  Bytes reserve_up_to(Bytes bytes) noexcept;
  void release(Bytes bytes) noexcept;

 private:
  Bytes capacity_;
  Bytes used_ = 0;
};

class Node {
 public:
  Node(sim::Simulation& sim, int id, int cores, Bytes memory,
       DiskParams disk_params, double disk_speed_factor,
       double cpu_speed_factor);

  int id() const noexcept { return id_; }
  const std::string& hostname() const noexcept { return hostname_; }

  CpuSet& cpu() noexcept { return cpu_; }
  const CpuSet& cpu() const noexcept { return cpu_; }
  Disk& disk() noexcept { return disk_; }
  const Disk& disk() const noexcept { return disk_; }
  MemoryPool& memory() noexcept { return memory_; }
  const MemoryPool& memory() const noexcept { return memory_; }

  double disk_speed_factor() const noexcept { return disk_speed_factor_; }

  /// Runtime degradation hook (fault injection): rescales the disk's
  /// bandwidth, turning this node into a straggler mid-run.
  void set_disk_speed_factor(double factor) {
    disk_speed_factor_ = factor;
    disk_.set_speed_factor(factor);
  }

 private:
  int id_;
  std::string hostname_;
  CpuSet cpu_;
  Disk disk_;
  MemoryPool memory_;
  double disk_speed_factor_;
};

}  // namespace saex::hw
