#include "hw/node.h"
#include "common/format.h"

#include <algorithm>

namespace saex::hw {

Bytes MemoryPool::reserve_up_to(Bytes bytes) noexcept {
  const Bytes granted = std::min(bytes, available());
  used_ += std::max<Bytes>(granted, 0);
  return std::max<Bytes>(granted, 0);
}

void MemoryPool::release(Bytes bytes) noexcept {
  used_ = std::max<Bytes>(0, used_ - bytes);
}

Node::Node(sim::Simulation& sim, int id, int cores, Bytes memory,
           DiskParams disk_params, double disk_speed_factor,
           double cpu_speed_factor)
    : id_(id),
      // DAS-5 naming convention from the paper's Fig. 3.
      hostname_(saex::strfmt::format("node{:03}", 303 + id)),
      cpu_(sim, cores, cpu_speed_factor),
      disk_(sim, disk_params, hostname_ + "/disk", disk_speed_factor),
      memory_(memory),
      disk_speed_factor_(disk_speed_factor) {}

}  // namespace saex::hw
