// Cluster interconnect model.
//
// Flows between nodes share per-node uplink/downlink capacity. A flow's rate
// is min(fair uplink share at the source, fair downlink share at the
// destination, a per-stream cap). Downlinks additionally suffer an *incast*
// goodput collapse when MANY DISTINCT SENDERS converge at HIGH request
// concurrency (synchronized bursts overflowing the switch port buffer):
//
//   penalty = 1 + coeff * max(0, senders - src_threshold)
//                       * max(0, open_requests - flow_threshold)
//
// Both factors are required: a 4-node cluster can never exceed 3 senders
// per port (no collapse at any thread count), while a 16-node cluster at
// the default 32 threads has ~15 senders x ~30 open fetches and collapses —
// the paper's Fig. 9 observation that the default configuration does not
// scale while the tuned ones do.
//
// Like the disk, the model is event-driven: rates are piecewise constant
// between flow arrivals/departures.
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "sim/simulation.h"

namespace saex::hw {

struct NetworkParams {
  double up_bw = 1.25e9;    // 10 GbE per node
  double down_bw = 1.25e9;
  double incast_src_threshold = 6.0;    // distinct senders before collapse
  double incast_flow_threshold = 12.0;  // open requests before collapse
  double incast_coeff = 0.15;           // collapse slope (product form)
  // A single request-response stream cannot saturate the link (TCP windows,
  // shuffle-server round trips); it tops out here. Makes low-thread-count
  // fetch stages latency-bound, as measured in the paper's Fig. 7c.
  double per_flow_cap = 30e6;
  // Per-transfer setup cost: connection/request round trips plus the
  // shuffle server's block lookup. Significant for small chunked fetches.
  double latency = 0.02;
};

class Network {
 public:
  using NodeId = int;

  Network(sim::Simulation& sim, int num_nodes, NetworkParams params);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Starts a flow; `done` fires at completion. src == dst is invalid
  /// (local data never crosses the network).
  void transfer(NodeId src, NodeId dst, Bytes bytes, sim::Callback done);

  /// Flow-batched data plane (saex.net.flowBatch): one aggregated flow
  /// standing in for `streams` parallel chunked fetch streams between the
  /// same (src, dst) pair. Pays the setup latency ONCE as a scheduled event,
  /// then settles through the same progressive-filling loop as every other
  /// flow, but weighted: it claims `streams` fair shares of the
  /// uplink/downlink, and its rate cap is streams x the *chunked goodput*
  ///
  ///   1 / (latency/chunk_bytes + 1/per_flow_cap)
  ///
  /// — the steady-state rate a per-chunk stream reaches when every
  /// chunk_bytes request pays the setup latency before moving at
  /// per_flow_cap. The batched flow therefore keeps the per-chunk model's
  /// makespan (the latency cost is folded into the cap) while collapsing
  /// O(chunks) simulation events into one. chunk_bytes <= 0 disables the
  /// derating (cap = streams x per_flow_cap).
  void transfer_flow(NodeId src, NodeId dst, Bytes bytes, int streams,
                     Bytes chunk_bytes, sim::Callback done);

  /// Fetch-connection accounting: a shuffle/remote-read request holds its
  /// connection open while the server reads the block from disk, so the
  /// congestion (incast) level of a downlink counts registered fetches, not
  /// just in-flight byte transfers.
  void register_fetch(NodeId src, NodeId dst);
  void unregister_fetch(NodeId src, NodeId dst);
  int fetches_to(NodeId dst) const noexcept {
    return open_count_[static_cast<size_t>(dst)];
  }
  int senders_to(NodeId dst) const noexcept {
    return open_senders_[static_cast<size_t>(dst)];
  }

  /// Stream-weighted flow counts: a coalesced flow of k streams counts k
  /// (equal to the plain flow count when nothing is batched).
  int flows_from(NodeId n) const noexcept { return up_count_[static_cast<size_t>(n)]; }
  int flows_to(NodeId n) const noexcept { return down_count_[static_cast<size_t>(n)]; }
  int active_flows() const noexcept { return static_cast<int>(flows_.size()); }

  Bytes bytes_sent(NodeId n) const noexcept { return sent_[static_cast<size_t>(n)]; }
  Bytes total_bytes() const noexcept { return total_bytes_; }

  /// Data-plane event accounting: transfer requests issued (one per
  /// transfer()/transfer_flow() call) — the quantity the flow-batched data
  /// plane collapses from O(chunks x segments) to O(distinct sources), and
  /// the metric bench/net_flow's >=3x reduction guard reads.
  int64_t transfers_started() const noexcept { return transfers_started_; }
  /// Subset of transfers_started() that were coalesced flows (streams > 1 or
  /// issued via transfer_flow).
  int64_t flow_transfers() const noexcept { return flow_transfers_; }

  /// Fault-injection accounting: a shuffle fetch that was dropped before any
  /// bytes moved (saex.fault.fetchFailProb, or the source executor died).
  void record_dropped_fetch(NodeId src, NodeId dst) noexcept {
    (void)src;
    (void)dst;
    ++dropped_fetches_;
  }
  int64_t dropped_fetches() const noexcept { return dropped_fetches_; }

  /// Effective downlink capacity with `senders` distinct sources holding
  /// `open_requests` concurrent requests (for tests).
  double down_capacity_eff(int senders, int open_requests) const noexcept;

  const NetworkParams& params() const noexcept { return params_; }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    double remaining;  // bytes
    int streams;       // fair-share weight (1 = plain per-chunk transfer)
    double cap;        // this flow's rate cap, bytes/s
    sim::Callback done;
  };

  void start_flow(NodeId src, NodeId dst, Bytes bytes, int streams, double cap,
                  sim::Callback done);

  double flow_rate(const Flow& f) const noexcept;
  void advance_and_reschedule();
  static uint64_t open_key(NodeId src, NodeId dst) noexcept {
    return (static_cast<uint64_t>(static_cast<uint32_t>(dst)) << 32) |
           static_cast<uint32_t>(src);
  }
  void open_inc(NodeId src, NodeId dst) {
    if (open_[open_key(src, dst)]++ == 0) {
      ++open_senders_[static_cast<size_t>(dst)];
    }
    ++open_count_[static_cast<size_t>(dst)];
  }
  void open_dec(NodeId src, NodeId dst) {
    const auto it = open_.find(open_key(src, dst));
    // An unbalanced dec (no prior open_inc) is an invariant violation; fail
    // loudly under debug instead of dereferencing end().
    assert(it != open_.end() && it->second > 0);
    if (it == open_.end()) return;
    if (--it->second == 0) {
      --open_senders_[static_cast<size_t>(dst)];
      open_.erase(it);
    }
    --open_count_[static_cast<size_t>(dst)];
  }

  sim::Simulation& sim_;
  NetworkParams params_;
  // Active flows in start (FIFO) order; settled with contiguous scans, like
  // Disk::transfers_.
  std::vector<Flow> flows_;
  // Stream-weighted per-node link loads (Σ streams over active flows); with
  // no batched flows these are the plain flow counts.
  std::vector<int> up_count_;
  std::vector<int> down_count_;
  // open_[(dst,src)]: open requests (registered fetches + active transfers),
  // stored sparsely so a 10k-node cluster does not pay O(nodes^2) memory for
  // a matrix that is almost entirely zero. Entries are erased when they drop
  // back to zero. The per-dst rollups (total requests + distinct senders)
  // are maintained incrementally so flow_rate() is O(1), not O(nodes).
  std::unordered_map<uint64_t, int> open_;
  std::vector<int> open_count_;    // Σ_src open_[dst][src]
  std::vector<int> open_senders_;  // #{src : open_[dst][src] > 0}
  std::vector<sim::Callback> finished_scratch_;
  std::vector<Bytes> sent_;
  Bytes total_bytes_ = 0;
  int64_t transfers_started_ = 0;
  int64_t flow_transfers_ = 0;
  int64_t dropped_fetches_ = 0;
  double last_advance_ = 0.0;
  sim::EventId pending_completion_ = sim::kInvalidEvent;
};

}  // namespace saex::hw
