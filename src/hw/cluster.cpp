#include "hw/cluster.h"

#include <cmath>

namespace saex::hw {

ClusterSpec ClusterSpec::das5(int nodes) {
  ClusterSpec spec;
  spec.num_nodes = nodes;
  return spec;
}

ClusterSpec ClusterSpec::das5_ssd(int nodes) {
  ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.disk = DiskParams::ssd();
  return spec;
}

Cluster::Cluster(ClusterSpec spec) : spec_(spec) {
  Rng rng(spec.seed);
  Rng disk_rng = rng.fork("disk-heterogeneity");
  Rng cpu_rng = rng.fork("cpu-heterogeneity");

  nodes_.reserve(static_cast<size_t>(spec.num_nodes));
  for (int i = 0; i < spec.num_nodes; ++i) {
    double disk_factor = disk_rng.lognormal(0.0, spec.disk_sigma);
    if (disk_rng.chance(spec.slow_disk_prob)) {
      disk_factor *= spec.slow_disk_factor;
    }
    const double cpu_factor = cpu_rng.lognormal(0.0, spec.cpu_sigma);
    nodes_.push_back(std::make_unique<Node>(sim_, i, spec.cores_per_node,
                                            spec.memory_per_node, spec.disk,
                                            disk_factor, cpu_factor));
  }
  network_ = std::make_unique<Network>(sim_, spec.num_nodes, spec.network);
}

Bytes Cluster::total_disk_bytes() const noexcept {
  Bytes total = 0;
  for (const auto& n : nodes_) {
    total += n->disk().total_bytes_read() + n->disk().total_bytes_written();
  }
  return total;
}

}  // namespace saex::hw
