// Storage device model.
//
// The device is a work-conserving processor-sharing server: at any instant
// the k active transfers progress at equal shares of a total capacity C(k)
// that depends on concurrency.
//
//   HDD:  C(k) = B * (1 + ncq_gain*(1 - k^-ncq_pow))
//                  / (1 + frag_coeff*max(0, k-k_sat))
//
// The numerator models command-queue/elevator gains (more pending requests →
// shorter average seeks, up to +ncq_gain); the denominator models stream
// fragmentation: with k sequential streams the effective readahead window per
// stream shrinks, so an increasing fraction of device time is positional
// (head movement) rather than transfer. This yields the unimodal
// throughput-vs-threads curve the paper measures (Fig. 5/7/12): a single
// blocked-on-CPU stream under-utilizes the device, a handful of streams
// saturate it near peak, and dozens of streams collapse throughput.
//
//   SSD:  C(k) = B * k/(k + ramp) / (1 + wear_coeff*max(0, k-k_wear))
//
// — essentially flat (full random access), with a mild penalty at very high
// concurrency that only matters for writes (erase-before-write, §6.3).
//
// Writes cost more device work per byte (write_cost_factor); a transfer's
// remaining work is tracked in *work units* = bytes × cost factor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "metrics/io_accounting.h"
#include "sim/simulation.h"

namespace saex::hw {

struct DiskParams {
  double base_bw = 112e6;          // bytes/sec, single outstanding request
  double ncq_gain = 1.0;           // peak capacity gain from request queueing
  double ncq_pow = 1.3;            // how fast the queueing gain saturates
  double frag_coeff = 0.045;       // per-stream degradation beyond k_sat
  double k_sat = 4.0;              // streams the device handles at peak
  double ssd_ramp = 0.0;           // >0 selects the SSD capacity curve
  double wear_coeff = 0.0;         // SSD high-concurrency write penalty
  double k_wear = 16.0;            // concurrency where the wear penalty starts
  double write_cost_factor = 1.0;  // device work per written byte vs read
  // Write-back caching coalesces writes into large sequential batches, so a
  // write stream fragments readahead far less than a read stream; it counts
  // into the concurrency level k with this weight.
  double write_stream_weight = 0.25;
  double latency = 0.0004;         // fixed per-transfer setup latency (s)

  /// 7'200 rpm SATA HDD as in the paper's main testbed (§6.1).
  static DiskParams hdd();
  /// SATA SSD as in §6.3.
  static DiskParams ssd();
};

class Disk {
 public:
  /// `speed_factor` scales base bandwidth; models node heterogeneity (Fig. 3).
  Disk(sim::Simulation& sim, DiskParams params, std::string name,
       double speed_factor = 1.0);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Starts a transfer of `bytes`; `done` fires when it completes. Transfers
  /// are independent streams (one per blocked task chunk). `work_factor`
  /// scales the device work per byte: scattered access patterns (many small
  /// records, e.g. hash-shuffle spill files) cost more positioning time per
  /// byte than large sequential runs.
  void submit(Bytes bytes, bool is_write, sim::Callback done,
              double work_factor = 1.0);

  int active_transfers() const noexcept { return static_cast<int>(transfers_.size()); }

  /// Changes the bandwidth scale at runtime (fault injection: a degraded
  /// device turns the node into a straggler). In-flight transfers are
  /// settled at the old rate up to now, then continue at the new one.
  void set_speed_factor(double factor);
  double speed_factor() const noexcept { return speed_factor_; }

  /// Device capacity (bytes of read-equivalent work per second) at
  /// concurrency k; exposed for tests and calibration tools.
  double capacity_at(int k) const noexcept { return capacity_eff(static_cast<double>(k)); }
  /// Same over the effective (write-weighted, fractional) concurrency.
  double capacity_eff(double k) const noexcept;

  Bytes total_bytes_read() const noexcept { return bytes_read_; }
  Bytes total_bytes_written() const noexcept { return bytes_written_; }

  /// Busy tracker: 1 while any transfer is active (iostat %util semantics).
  const metrics::UtilizationTracker& busy_tracker() const noexcept { return busy_; }
  metrics::UtilizationTracker& busy_tracker() noexcept { return busy_; }

  const std::string& name() const noexcept { return name_; }
  const DiskParams& params() const noexcept { return params_; }

 private:
  struct Transfer {
    double remaining_work;  // bytes × cost factor
    bool is_write;
    sim::Callback done;
  };

  void advance_and_reschedule();
  double current_rate_per_transfer() const noexcept;
  double effective_streams() const noexcept;
  double capacity_uncached(double kd) const noexcept;

  sim::Simulation& sim_;
  DiskParams params_;
  std::string name_;
  double speed_factor_;

  // Active transfers in submission (FIFO) order. The settle loop touches
  // every element on every device event, so contiguous storage matters; the
  // old std::unordered_map iteration dominated terasort_e2e profiles.
  std::vector<Transfer> transfers_;
  int read_streams_ = 0;   // active read transfers
  int write_streams_ = 0;  // active write transfers
  // capacity_eff(kd) memo over quarter-stream steps (kd is always
  // reads + 0.25*writes on the hot path); invalidated by set_speed_factor.
  mutable std::vector<double> cap_cache_;
  // Scratch buffer recycled across advance calls (reentrancy-safe: each
  // activation moves it out, so a nested advance simply allocates afresh).
  std::vector<sim::Callback> finished_scratch_;
  double last_advance_ = 0.0;
  sim::EventId pending_completion_ = sim::kInvalidEvent;

  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;
  metrics::UtilizationTracker busy_{1.0};
};

}  // namespace saex::hw
