// The simulated cluster: nodes + interconnect + the shared event loop.
//
// Mirrors the paper's DAS-5 testbed (§6.1): N nodes, 32 virtual cores and
// 56 GB each, one 7'200 rpm HDD (or SSD for §6.3), connected by 10 GbE.
// Per-node speed factors model the I/O performance variability the paper
// measures across physically identical machines (Fig. 3, limitation L4).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "hw/network.h"
#include "hw/node.h"
#include "sim/simulation.h"

namespace saex::hw {

struct ClusterSpec {
  int num_nodes = 4;
  int cores_per_node = 32;  // 16 physical, 32 with SMT
  Bytes memory_per_node = gib(56);
  DiskParams disk = DiskParams::hdd();
  NetworkParams network = {};

  // Heterogeneity: disk speed factors ~ LogNormal(0, sigma), plus a small
  // probability of a markedly slow device (aging disk / remapped sectors),
  // which reproduces the outliers in Fig. 3.
  double disk_sigma = 0.09;
  double slow_disk_prob = 0.05;
  double slow_disk_factor = 0.62;
  double cpu_sigma = 0.015;

  uint64_t seed = 42;

  static ClusterSpec das5(int nodes = 4);
  static ClusterSpec das5_ssd(int nodes = 4);
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation& sim() noexcept { return sim_; }
  Network& network() noexcept { return *network_; }

  int size() const noexcept { return static_cast<int>(nodes_.size()); }
  Node& node(int id) noexcept { return *nodes_[static_cast<size_t>(id)]; }
  const Node& node(int id) const noexcept { return *nodes_[static_cast<size_t>(id)]; }

  const ClusterSpec& spec() const noexcept { return spec_; }

  /// Aggregate disk traffic across nodes (Table 2's "I/O activity").
  Bytes total_disk_bytes() const noexcept;

 private:
  ClusterSpec spec_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Network> network_;
};

}  // namespace saex::hw
