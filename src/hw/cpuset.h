// Per-node CPU model: a fixed number of cores serving compute requests FIFO.
//
// A compute request occupies one core for its duration; if all cores are
// busy it queues. The busy tracker feeds the per-stage CPU% rollups (Fig. 1).
#pragma once

#include <deque>

#include "metrics/io_accounting.h"
#include "sim/simulation.h"

namespace saex::hw {

class CpuSet {
 public:
  /// `speed_factor` scales compute durations (heterogeneity).
  CpuSet(sim::Simulation& sim, int cores, double speed_factor = 1.0);
  CpuSet(const CpuSet&) = delete;
  CpuSet& operator=(const CpuSet&) = delete;

  /// Runs `seconds` of compute on one core; `done` fires at completion.
  void execute(double seconds, sim::Callback done);

  int cores() const noexcept { return cores_; }
  int busy_cores() const noexcept { return busy_; }
  int queued() const noexcept { return static_cast<int>(queue_.size()); }

  const metrics::UtilizationTracker& busy_tracker() const noexcept { return busy_tracker_; }
  metrics::UtilizationTracker& busy_tracker() noexcept { return busy_tracker_; }

  double total_busy_seconds() const noexcept { return busy_tracker_.integral_at(sim_.now()); }

 private:
  struct Request {
    double seconds;
    sim::Callback done;
  };

  void start(Request req);
  void finish(sim::Callback done);

  sim::Simulation& sim_;
  int cores_;
  double speed_factor_;
  int busy_ = 0;
  std::deque<Request> queue_;
  metrics::UtilizationTracker busy_tracker_;
};

}  // namespace saex::hw
