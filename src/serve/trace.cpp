#include "serve/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/format.h"
#include "common/rng.h"

namespace saex::serve {

const std::vector<std::string>& trace_workload_names() {
  static const std::vector<std::string> kNames{"scan", "aggregation", "sort",
                                              "join"};
  return kNames;
}

std::vector<TraceJob> make_trace(const TraceOptions& options) {
  Rng rng = Rng(options.seed).fork("serve.trace");
  Rng arrivals = rng.fork("arrivals");
  Rng mix = rng.fork("mix");
  Rng clients = rng.fork("clients");

  const bool pareto = options.arrival == "pareto";
  if (!pareto && options.arrival != "exp") {
    throw std::invalid_argument(strfmt::format(
        "unknown arrival distribution '{}' (valid: exp, pareto)",
        options.arrival));
  }
  if (pareto && options.pareto_shape <= 1.0) {
    throw std::invalid_argument(
        "pareto arrival shape must be > 1 (finite mean)");
  }
  // Lomax(alpha, lambda) via inverse CDF with mean lambda / (alpha - 1);
  // lambda is solved from the requested mean gap.
  const double alpha = options.pareto_shape;
  const double lambda = options.mean_interarrival * (alpha - 1.0);
  auto next_gap = [&]() {
    if (!pareto) return arrivals.exponential(options.mean_interarrival);
    const double u = arrivals.next_double();  // in [0, 1)
    return lambda * (std::pow(1.0 - u, -1.0 / alpha) - 1.0);
  };

  std::vector<TraceJob> trace;
  trace.reserve(static_cast<size_t>(options.num_jobs));
  double t = 0.0;
  for (int i = 0; i < options.num_jobs; ++i) {
    t += next_gap();
    TraceJob job;
    job.id = i;
    job.arrival_time = t;
    job.client = strfmt::format(
        "client{}", clients.uniform_int(0, std::max(options.num_clients, 1) - 1));
    if (mix.chance(options.small_fraction)) {
      job.pool = "interactive";
      job.workload = mix.chance(0.5) ? "scan" : "aggregation";
      job.deadline = options.interactive_deadline;
    } else {
      job.pool = "batch";
      job.workload = mix.chance(0.5) ? "sort" : "join";
      job.deadline = options.batch_deadline;
    }
    trace.push_back(std::move(job));
  }
  return trace;
}

void load_trace_inputs(engine::SparkContext& ctx, const TraceOptions& options) {
  auto& dfs = ctx.dfs();
  const int repl = std::min(ctx.cluster().size(), 3);
  if (!dfs.exists("/serve/small")) {
    dfs.load_input("/serve/small", options.small_input, repl, mib(32));
  }
  if (!dfs.exists("/serve/big")) {
    dfs.load_input("/serve/big", options.big_input, repl, mib(64));
  }
  if (!dfs.exists("/serve/dim")) {
    dfs.load_input("/serve/dim", options.dim_input, repl, mib(32));
  }
}

engine::Rdd build_trace_job(engine::SparkContext& ctx, const TraceJob& job) {
  const std::string out = strfmt::format("/serve/out/job{}", job.id);
  // Stage CPU densities follow the paper's HiBench measurements (Fig. 1:
  // 6-15% CPU on the I/O-tagged stages, terasort 0.018-0.045 s/MiB) — the
  // trace is disk-dominated, which is the regime where adaptive executors
  // pay off by shrinking pools below the congestion knee.
  if (job.workload == "scan") {
    // Selective SELECT over the shared small table: one I/O-tagged stage.
    return ctx.text_file("/serve/small")
        .filter("where", 0.2, 0.02)
        .save_as_text_file(out, 1);
  }
  if (job.workload == "aggregation") {
    // GROUP BY over the small table: scan with partial aggregation, then a
    // spilling hash aggregate.
    return ctx.text_file("/serve/small")
        .map("scan+partialAgg", {0.06, 0.5})
        .reduce_by_key("groupBy", {0.02, 1.0}, 1.0, 0, {0.35, 1.3})
        .save_as_text_file(out, 1);
  }
  if (job.workload == "sort") {
    // Full sort of the big table: terasort's profile — every byte through
    // the shuffle, cheap streaming merge, disk-bound throughout.
    return ctx.text_file("/serve/big")
        .sort_by_key("sort", {0.045, 1.0})
        .map("merge", {0.028, 1.0})
        .save_as_text_file(out, 1);
  }
  if (job.workload == "join") {
    // Fact ⋈ dimension: two independent map sides, then the shuffle join —
    // the map sides run concurrently on the event-driven path.
    const engine::Rdd fact =
        ctx.text_file("/serve/big").map("scanFact", {0.05, 0.2});
    const engine::Rdd dim =
        ctx.text_file("/serve/dim").map("scanDim", {0.04, 0.5});
    return fact.join(dim, "hashJoin", {0.06, 1.0}, /*output_ratio=*/0.5, 0,
                     {0.3, 1.5})
        .save_as_text_file(out, 1);
  }
  throw std::invalid_argument(
      strfmt::format("unknown trace workload '{}'", job.workload));
}

}  // namespace saex::serve
