// Multi-tenant job server: long-running Spark-style scheduling of concurrent
// jobs on one shared simulated cluster.
//
// Layers, submission to execution:
//
//   submit() → admission control (bounded in-flight jobs, bounded queue,
//   per-client quota; typed Admission result) → FIFO dequeue as slots free →
//   SparkContext::submit_job() (event-driven runnable stage set) → shared
//   TaskScheduler arbitrating slots across jobs in FIFO or FAIR pool order →
//   optional dynamic executor allocation growing/shrinking the active
//   executor set with the backlog.
//
// The server installs the scheduler's executor-engaged hook so an executor's
// adaptive policy restarts its MAPE-K hill climb (at c_min) whenever the
// executor picks up work after being idle — including right after a dynamic
// allocation grant.
//
// Everything runs on the cluster's simulation clock; replay() of a fixed
// trace with a fixed seed is deterministic down to the per-job reports.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/context.h"
#include "metrics/registry.h"
#include "resilience/health.h"
#include "resilience/resilience.h"
#include "serve/allocation.h"
#include "serve/trace.h"

namespace saex::serve {

/// Typed admission outcome of submit().
enum class Admission {
  kAccepted,            // started immediately
  kQueued,              // waiting for a concurrency slot
  kRejectedQueueFull,   // backpressure: queue at saex.serve.maxQueuedJobs
  kRejectedClientQuota, // client exceeded saex.serve.maxJobsPerClient
  kRejectedDeadlineInfeasible,  // non-positive relative deadline: no
                                // schedule can meet it, reject up front
};

std::string_view admission_name(Admission a) noexcept;
inline bool admitted(Admission a) noexcept {
  return a == Admission::kAccepted || a == Admission::kQueued;
}

/// How an admitted submission settled.
enum class JobOutcome {
  kNone,       // not settled yet (or never admitted)
  kFinished,   // ran to completion
  kFailed,     // failed terminally (retry budget exhausted or zero)
  kShedDeadline,       // deadline lapsed while queued / awaiting retry
  kCancelledDeadline,  // cancelled mid-run at its deadline
};

std::string_view outcome_name(JobOutcome o) noexcept;

/// Parses "name:weight:minShare,..." (weight and minShare optional, e.g.
/// "interactive:3:32,batch"). Throws conf::ConfigError on malformed input.
std::vector<engine::PoolSpec> parse_pools(const std::string& spec);

struct JobServerOptions {
  int max_concurrent_jobs = 8;
  int max_queued_jobs = 64;
  int max_jobs_per_client = 0;  // 0 = unlimited
  engine::SchedulingMode mode = engine::SchedulingMode::kFifo;
  std::vector<engine::PoolSpec> pools;
  AllocationOptions allocation;

  /// Relative deadline applied to submissions that carry none (<0: none).
  double default_deadline = -1.0;
  /// When false, deadlines are recorded for SLO accounting but never
  /// enforced (no shedding, no cancellation) — the bench baseline.
  bool enforce_deadlines = true;
  resilience::RetryPolicy retry;
  resilience::HealthOptions health;

  /// Reads saex.scheduler.* / saex.serve.* / saex.resilience.* /
  /// spark.dynamicAllocation.*.
  static JobServerOptions from_config(const conf::Config& config);
};

/// One submission's lifecycle, rejected or finished.
struct JobRecord {
  int submission_id = -1;  // server-side id, dense in submission order
  int job_id = -1;         // engine job id (−1 until started)
  std::string name;
  std::string client;
  std::string pool;
  Admission admission = Admission::kAccepted;
  double submit_time = 0.0;
  double start_time = -1.0;   // left the queue (−1: rejected)
  double finish_time = -1.0;  // report delivered (−1: not finished)
  bool failed = false;
  JobOutcome outcome = JobOutcome::kNone;
  double deadline = -1.0;  // absolute sim time (−1: none)
  int retries = 0;         // completed retry attempts (0 = first try only)
  // Sim time each failed attempt was retried at (size == retries).
  std::vector<double> retry_times;
  engine::JobReport report;  // last attempt's report

  /// Submission → first task actually running (the user-visible queue wait:
  /// admission queue + slot wait inside the scheduler).
  double queue_wait() const noexcept;
  double makespan() const noexcept {
    return finish_time >= 0.0 ? finish_time - submit_time : 0.0;
  }
};

struct PoolStats {
  std::string pool;
  int weight = 1;
  int min_share = 0;
  int jobs = 0;
  int failed = 0;
  double queue_wait_mean = 0.0;
  double queue_wait_p95 = 0.0;
  double makespan_mean = 0.0;
  double makespan_p95 = 0.0;
  double slot_seconds = 0.0;  // Σ successful task durations
};

struct ServeReport {
  std::string mode;    // FIFO | FAIR
  std::string policy;  // executor thread policy name
  std::vector<JobRecord> jobs;  // by submission id (incl. rejected)
  std::vector<PoolStats> pools;

  int submitted = 0;
  int started = 0;
  int finished = 0;
  int failed = 0;
  int rejected_queue_full = 0;
  int rejected_client_quota = 0;
  int rejected_deadline = 0;  // non-positive deadline: infeasible up front
  int shed = 0;       // deadline lapsed while queued / awaiting retry
  int cancelled = 0;  // cancelled mid-run at the deadline
  int64_t retries = 0;  // Σ retry attempts across all jobs
  // SLO attainment: jobs carrying a deadline (and not rejected) vs those
  // that finished successfully within it.
  int slo_tracked = 0;
  int slo_met = 0;
  int executors_granted = 0;
  int executors_released = 0;
  int executors_lost = 0;  // fault injection: executors dead at drain time
  // Node-health circuit breaker (caller-filled, like the executor counters:
  // not derivable from job records; the sharded merge sums them).
  int quarantines = 0;
  int probes = 0;
  int reinstatements = 0;

  double total_time = 0.0;      // first submission → last finish
  double makespan_sum = 0.0;    // Σ per-job makespans (aggregate latency)
  double queue_wait_p95 = 0.0;  // across all finished jobs
  /// Jain index over per-pool weight-normalized slot-seconds: 1 = every pool
  /// received service exactly proportional to its weight.
  double fairness_index = 1.0;

  const PoolStats* pool(const std::string& name) const noexcept;
  /// Admission counts, fairness, and the per-pool table.
  std::string render() const;
  /// One row per submission (id, pool, workload, waits, makespan, outcome).
  std::string render_jobs() const;
};

/// Builds the record-derived part of a ServeReport (admission counts,
/// per-pool rollups, percentiles, Jain fairness) from finished job records.
/// Shared by JobServer::drain() and the sharded merge (src/shard/), so a
/// merged multi-shard report aggregates byte-for-byte like a serial one.
/// Executor counters (granted/released/lost) are the caller's to fill.
ServeReport build_serve_report(std::vector<JobRecord> records,
                               engine::SchedulingMode mode,
                               const std::vector<engine::PoolSpec>& pool_specs);

class JobServer {
 public:
  using Builder = std::function<engine::Rdd(engine::SparkContext&)>;

  JobServer(engine::SparkContext& ctx, JobServerOptions options);
  /// Options from ctx.config().
  explicit JobServer(engine::SparkContext& ctx);

  /// Admission-controlled submission. `build` is invoked when the job
  /// actually starts (and again on every retry attempt). Returns the typed
  /// admission decision; rejected submissions are recorded but never run.
  /// `deadline` is relative to the submission instant (<0: fall back to
  /// saex.serve.defaultDeadline; still <0: no deadline). With deadlines
  /// enforced a non-positive relative deadline is rejected as infeasible.
  Admission submit(std::string name, std::string client, std::string pool,
                   Builder build, double deadline = -1.0);

  /// Schedules every trace job's submission at its arrival time (loading the
  /// shared inputs first), then drains the simulation and reports.
  ServeReport replay(const std::vector<TraceJob>& trace,
                     const TraceOptions& trace_options = {});

  /// Runs the simulation until all admitted jobs finished; builds the report.
  ServeReport drain();

  int running_jobs() const noexcept { return static_cast<int>(running_.size()); }
  int queued_jobs() const noexcept { return static_cast<int>(queue_.size()); }
  const std::vector<JobRecord>& records() const noexcept { return records_; }
  metrics::Registry& metrics() noexcept { return metrics_; }
  ExecutorAllocationManager& allocation() noexcept { return *allocation_; }
  const JobServerOptions& options() const noexcept { return options_; }

 private:
  /// The three per-pool rollup counters, resolved once per pool (declared
  /// pools at construction, undeclared ones on their first finished job)
  /// instead of formatting a "serve/pool/<name>/..." key on every finish.
  struct PoolRollups {
    metrics::CounterHandle jobs;
    metrics::CounterHandle slot_seconds;
    metrics::CounterHandle queue_wait;
  };

  void start_job(int submission_id);
  void on_job_finished(int submission_id, engine::JobReport report);
  void on_deadline(int submission_id);
  void shed_job(JobRecord& rec);
  void settle(JobRecord& rec, double finish_time);
  void requeue_retry(int submission_id);
  void pump_queue();
  bool has_work() const noexcept;
  int client_load(const std::string& client) const noexcept;
  PoolRollups& pool_rollups(const std::string& pool);

  engine::SparkContext* ctx_;
  JobServerOptions options_;
  metrics::Registry metrics_;
  // Handles into metrics_, resolved once in the constructor; the submit/
  // finish paths run per job and must not pay a map lookup per event.
  metrics::CounterHandle jobs_submitted_;
  metrics::CounterHandle jobs_rejected_;
  metrics::CounterHandle jobs_queued_;
  metrics::CounterHandle jobs_finished_;
  metrics::CounterHandle jobs_failed_;
  metrics::CounterHandle jobs_shed_;
  metrics::CounterHandle jobs_cancelled_;
  metrics::CounterHandle jobs_retried_;
  metrics::GaugeHandle queue_length_;
  std::map<std::string, PoolRollups, std::less<>> pool_rollups_;
  std::unique_ptr<ExecutorAllocationManager> allocation_;
  std::unique_ptr<resilience::NodeHealthTracker> health_;
  uint64_t retry_seed_ = 0;  // cluster seed: retry jitter is replayable

  std::vector<JobRecord> records_;      // by submission id
  std::map<int, Builder> builders_;     // pending builds by submission id
  std::deque<int> queue_;               // queued submission ids (FIFO)
  std::vector<int> running_;            // running submission ids
  std::set<int> retry_wait_;            // in retry backoff, not yet requeued
};

}  // namespace saex::serve
