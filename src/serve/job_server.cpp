#include "serve/job_server.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/format.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"

namespace saex::serve {

std::string_view admission_name(Admission a) noexcept {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kQueued: return "queued";
    case Admission::kRejectedQueueFull: return "rejected:queue-full";
    case Admission::kRejectedClientQuota: return "rejected:client-quota";
    case Admission::kRejectedDeadlineInfeasible:
      return "rejected:deadline-infeasible";
  }
  return "?";
}

std::string_view outcome_name(JobOutcome o) noexcept {
  switch (o) {
    case JobOutcome::kNone: return "none";
    case JobOutcome::kFinished: return "ok";
    case JobOutcome::kFailed: return "FAILED";
    case JobOutcome::kShedDeadline: return "shed";
    case JobOutcome::kCancelledDeadline: return "cancelled";
  }
  return "?";
}

std::vector<engine::PoolSpec> parse_pools(const std::string& spec) {
  std::vector<engine::PoolSpec> pools;
  std::istringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    engine::PoolSpec pool;
    std::istringstream fields(entry);
    std::string name, weight, min_share;
    std::getline(fields, name, ':');
    std::getline(fields, weight, ':');
    std::getline(fields, min_share, ':');
    if (name.empty()) {
      throw conf::ConfigError(
          strfmt::format("saex.scheduler.pools: empty pool name in '{}'", spec));
    }
    pool.name = name;
    try {
      if (!weight.empty()) pool.weight = std::stoi(weight);
      if (!min_share.empty()) pool.min_share = std::stoi(min_share);
    } catch (const std::exception&) {
      throw conf::ConfigError(strfmt::format(
          "saex.scheduler.pools: malformed entry '{}' (want name:weight:minShare)",
          entry));
    }
    if (pool.weight < 1 || pool.min_share < 0) {
      throw conf::ConfigError(strfmt::format(
          "saex.scheduler.pools: '{}' needs weight >= 1 and minShare >= 0",
          entry));
    }
    pools.push_back(std::move(pool));
  }
  return pools;
}

JobServerOptions JobServerOptions::from_config(const conf::Config& config) {
  JobServerOptions o;
  o.max_concurrent_jobs =
      static_cast<int>(config.get_int("saex.serve.maxConcurrentJobs"));
  o.max_queued_jobs =
      static_cast<int>(config.get_int("saex.serve.maxQueuedJobs"));
  o.max_jobs_per_client =
      static_cast<int>(config.get_int("saex.serve.maxJobsPerClient"));

  std::string mode = config.get_string("saex.scheduler.mode");
  std::transform(mode.begin(), mode.end(), mode.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (mode == "FIFO") {
    o.mode = engine::SchedulingMode::kFifo;
  } else if (mode == "FAIR") {
    o.mode = engine::SchedulingMode::kFair;
  } else {
    throw conf::ConfigError(strfmt::format(
        "saex.scheduler.mode '{}' (valid: FIFO, FAIR)", mode));
  }
  o.pools = parse_pools(config.get_string("saex.scheduler.pools"));
  o.allocation = AllocationOptions::from_config(config);
  o.default_deadline = config.get_duration_seconds("saex.serve.defaultDeadline");
  o.enforce_deadlines = config.get_bool("saex.serve.enforceDeadlines");
  o.retry = resilience::RetryPolicy::from_config(config);
  o.health = resilience::HealthOptions::from_config(config);
  return o;
}

double JobRecord::queue_wait() const noexcept {
  if (report.first_launch_time >= 0.0) {
    return report.first_launch_time - submit_time;
  }
  return start_time >= 0.0 ? start_time - submit_time : 0.0;
}

JobServer::JobServer(engine::SparkContext& ctx, JobServerOptions options)
    : ctx_(&ctx), options_(std::move(options)) {
  jobs_submitted_ = metrics_.counter_handle("serve/jobs/submitted");
  jobs_rejected_ = metrics_.counter_handle("serve/jobs/rejected");
  jobs_queued_ = metrics_.counter_handle("serve/jobs/queued");
  jobs_finished_ = metrics_.counter_handle("serve/jobs/finished");
  jobs_failed_ = metrics_.counter_handle("serve/jobs/failed");
  jobs_shed_ = metrics_.counter_handle("serve/jobs/shed");
  jobs_cancelled_ = metrics_.counter_handle("serve/jobs/cancelled");
  jobs_retried_ = metrics_.counter_handle("serve/jobs/retried");
  queue_length_ = metrics_.gauge_handle("serve/queue_length");
  retry_seed_ = ctx_->cluster().spec().seed;

  engine::TaskScheduler& sched = ctx_->scheduler();
  sched.set_scheduling_mode(options_.mode);
  for (const engine::PoolSpec& pool : options_.pools) {
    sched.define_pool(pool);
    pool_rollups(pool.name);  // resolve the rollup handles up front
  }

  // An idle executor picking up work restarts its policy's climb at c_min —
  // both between jobs and right after a dynamic-allocation grant.
  sched.set_executor_engaged_hook([this](int node, const engine::Stage& s) {
    ctx_->executor(node).policy().on_stage_start(
        {static_cast<int64_t>(s.uid), s.ordinal, s.io_tagged},
        ctx_->cluster().sim().now());
  });

  allocation_ = std::make_unique<ExecutorAllocationManager>(
      ctx_->cluster().sim(), sched, ctx_->num_executors(), options_.allocation,
      [this] { return has_work(); }, &metrics_, &ctx_->event_log());
  allocation_->start();

  if (options_.health.enabled) {
    resilience::NodeHealthTracker::Hooks hooks;
    hooks.quarantine = [this](int node) {
      ctx_->scheduler().set_executor_quarantined(node, true);
      ctx_->event_log().record(engine::Event{
          engine::EventKind::kNodeQuarantined, ctx_->cluster().sim().now(), -1,
          -1, -1, node, ctx_->scheduler().quarantined_executor_count(), {}});
    };
    hooks.reinstate = [this](int node) {
      ctx_->scheduler().set_executor_quarantined(node, false);
      ctx_->event_log().record(engine::Event{
          engine::EventKind::kNodeReinstated, ctx_->cluster().sim().now(), -1,
          -1, -1, node, ctx_->scheduler().quarantined_executor_count(), {}});
    };
    health_ = std::make_unique<resilience::NodeHealthTracker>(
        ctx_->num_executors(), options_.health, ctx_->cluster().sim(),
        std::move(hooks));
    ctx_->set_node_fault_hook([this](int node) { health_->record_fault(node); });
    sched.set_task_outcome_hook([this](int node, bool success) {
      health_->record_task_outcome(node, success);
    });
  }
}

JobServer::JobServer(engine::SparkContext& ctx)
    : JobServer(ctx, JobServerOptions::from_config(ctx.config())) {}

bool JobServer::has_work() const noexcept {
  return !running_.empty() || !queue_.empty() || !retry_wait_.empty();
}

JobServer::PoolRollups& JobServer::pool_rollups(const std::string& pool) {
  const auto it = pool_rollups_.find(pool);
  if (it != pool_rollups_.end()) return it->second;
  PoolRollups handles;
  handles.jobs = metrics_.counter_handle(strfmt::format("serve/pool/{}/jobs", pool));
  handles.slot_seconds =
      metrics_.counter_handle(strfmt::format("serve/pool/{}/slot_seconds", pool));
  handles.queue_wait =
      metrics_.counter_handle(strfmt::format("serve/pool/{}/queue_wait", pool));
  return pool_rollups_.emplace(pool, handles).first->second;
}

int JobServer::client_load(const std::string& client) const noexcept {
  int load = 0;
  for (const int sid : queue_) {
    if (records_[static_cast<size_t>(sid)].client == client) ++load;
  }
  for (const int sid : running_) {
    if (records_[static_cast<size_t>(sid)].client == client) ++load;
  }
  return load;
}

Admission JobServer::submit(std::string name, std::string client,
                            std::string pool, Builder build, double deadline) {
  const double now = ctx_->cluster().sim().now();
  const int sid = static_cast<int>(records_.size());
  // Relative deadline: explicit beats the configured default; <0 means none.
  const double relative = deadline >= 0.0 ? deadline : options_.default_deadline;

  Admission admission;
  if (options_.enforce_deadlines && relative >= 0.0 && relative <= 0.0) {
    // A zero-second budget cannot be met by any schedule: reject up front
    // instead of admitting a job we would shed at this very instant.
    admission = Admission::kRejectedDeadlineInfeasible;
  } else if (options_.max_jobs_per_client > 0 &&
             client_load(client) >= options_.max_jobs_per_client) {
    admission = Admission::kRejectedClientQuota;
  } else if (static_cast<int>(running_.size()) < options_.max_concurrent_jobs) {
    admission = Admission::kAccepted;
  } else if (static_cast<int>(queue_.size()) < options_.max_queued_jobs) {
    admission = Admission::kQueued;
  } else {
    admission = Admission::kRejectedQueueFull;
  }

  JobRecord rec;
  rec.submission_id = sid;
  rec.name = std::move(name);
  rec.client = std::move(client);
  rec.pool = std::move(pool);
  rec.admission = admission;
  rec.submit_time = now;
  if (relative >= 0.0) rec.deadline = now + relative;
  ctx_->event_log().record(engine::Event{
      engine::EventKind::kJobSubmitted, now, sid, -1, -1, -1,
      static_cast<int64_t>(admission), rec.name});
  jobs_submitted_.increment();
  records_.push_back(std::move(rec));

  if (!admitted(admission)) {
    ctx_->event_log().record(engine::Event{
        engine::EventKind::kJobRejected, now, sid, -1, -1, -1,
        static_cast<int64_t>(admission), records_.back().name});
    jobs_rejected_.increment();
    SAEX_DEBUG("serve: submission {} '{}' {}", sid, records_.back().name,
               admission_name(admission));
    return admission;
  }

  builders_.emplace(sid, std::move(build));
  // Deadline enforcement: one timer per deadlined submission. At the
  // deadline the job is shed (still queued / in retry backoff) or cancelled
  // (running); a settled job makes the timer a no-op. The timer is scheduled
  // at submission, so under the kernel's FIFO tie-break it fires BEFORE any
  // completion event landing at the exact same instant: a dead-heat job is
  // deterministically cancelled, never racily finished.
  if (options_.enforce_deadlines && records_.back().deadline >= 0.0) {
    ctx_->cluster().sim().schedule_at(records_.back().deadline,
                                      [this, sid] { on_deadline(sid); });
  }
  if (admission == Admission::kQueued) {
    queue_.push_back(sid);
    jobs_queued_.increment();
    queue_length_.set(static_cast<double>(queue_.size()));
  } else {
    start_job(sid);
  }
  allocation_->notify_work();
  return admission;
}

void JobServer::start_job(int submission_id) {
  JobRecord& rec = records_[static_cast<size_t>(submission_id)];
  const double now = ctx_->cluster().sim().now();
  rec.start_time = now;
  running_.push_back(submission_id);
  if (rec.admission == Admission::kQueued) {
    ctx_->event_log().record(engine::Event{engine::EventKind::kJobDequeued,
                                           now, submission_id, -1, -1, -1, 0,
                                           rec.name});
  }

  // The builder stays in builders_ until the submission settles — a retry
  // attempt rebuilds the plan from it.
  const auto it = builders_.find(submission_id);
  assert(it != builders_.end());
  const engine::Rdd action = (it->second)(*ctx_);
  rec.job_id = ctx_->submit_job(
      action, rec.name, rec.pool, [this, submission_id](engine::JobReport r) {
        on_job_finished(submission_id, std::move(r));
      });
}

void JobServer::on_job_finished(int submission_id, engine::JobReport report) {
  JobRecord& rec = records_[static_cast<size_t>(submission_id)];
  const double now = ctx_->cluster().sim().now();
  running_.erase(std::find(running_.begin(), running_.end(), submission_id));
  rec.failed = report.failed;
  const bool was_cancelled = report.cancelled;
  rec.report = std::move(report);  // kept per attempt: last attempt's report

  // Seeded retry: a failed (not deadline-cancelled) attempt with budget left
  // re-enters admission after an exponential-backoff delay. The jitter draw
  // is a pure function of (seed, submission, attempt) — see RetryPolicy.
  if (rec.failed && !was_cancelled &&
      rec.retries < options_.retry.max_retries) {
    ++rec.retries;
    rec.retry_times.push_back(now);
    retry_wait_.insert(submission_id);
    jobs_retried_.increment();
    ctx_->event_log().record(engine::Event{
        engine::EventKind::kJobRetried, now, submission_id, -1, -1, -1,
        rec.retries, rec.name});
    const double delay =
        options_.retry.delay(retry_seed_, submission_id, rec.retries);
    SAEX_DEBUG("serve: submission {} '{}' retry {} in {:.3f}s", submission_id,
               rec.name, rec.retries, delay);
    ctx_->cluster().sim().schedule_after(
        delay, [this, submission_id] { requeue_retry(submission_id); });
    pump_queue();  // the failed attempt freed a concurrency slot
    return;
  }

  if (was_cancelled) {
    rec.outcome = JobOutcome::kCancelledDeadline;
    jobs_cancelled_.increment();
    ctx_->event_log().record(engine::Event{
        engine::EventKind::kJobCancelled, now, submission_id, -1, -1, -1,
        rec.retries, rec.name});
  } else {
    rec.outcome = rec.failed ? JobOutcome::kFailed : JobOutcome::kFinished;
  }
  settle(rec, now);

  jobs_finished_.increment();
  if (rec.failed) jobs_failed_.increment();
  double slot_seconds = 0.0;
  for (const engine::StageStats& s : rec.report.stages) {
    slot_seconds += s.task_seconds;
  }
  PoolRollups& pool = pool_rollups(rec.pool);
  pool.jobs.increment();
  pool.slot_seconds.add(slot_seconds);
  pool.queue_wait.add(rec.queue_wait());

  pump_queue();
}

/// Final bookkeeping shared by every way a submission can end.
void JobServer::settle(JobRecord& rec, double finish_time) {
  rec.finish_time = finish_time;
  builders_.erase(rec.submission_id);
}

void JobServer::pump_queue() {
  while (!queue_.empty() &&
         static_cast<int>(running_.size()) < options_.max_concurrent_jobs) {
    const int next = queue_.front();
    queue_.pop_front();
    start_job(next);
  }
  queue_length_.set(static_cast<double>(queue_.size()));
}

void JobServer::on_deadline(int submission_id) {
  JobRecord& rec = records_[static_cast<size_t>(submission_id)];
  if (rec.outcome != JobOutcome::kNone) return;  // already settled

  const auto queued = std::find(queue_.begin(), queue_.end(), submission_id);
  if (queued != queue_.end()) {
    queue_.erase(queued);
    queue_length_.set(static_cast<double>(queue_.size()));
    shed_job(rec);
    return;
  }
  if (retry_wait_.erase(submission_id) > 0) {
    shed_job(rec);
    return;
  }
  // Running: cancel through the engine; on_job_finished settles it (the
  // callback may fire synchronously when no task copies are in flight).
  if (std::find(running_.begin(), running_.end(), submission_id) !=
      running_.end()) {
    SAEX_DEBUG("serve: submission {} '{}' cancelled at deadline {:.3f}s",
               submission_id, rec.name, rec.deadline);
    ctx_->cancel_job(rec.job_id);
  }
}

/// Load shedding: the deadline lapsed before the job (re)started — it can no
/// longer meet its SLO, so drop it instead of burning cluster time.
void JobServer::shed_job(JobRecord& rec) {
  const double now = ctx_->cluster().sim().now();
  rec.failed = true;
  rec.outcome = JobOutcome::kShedDeadline;
  settle(rec, now);
  jobs_shed_.increment();
  ctx_->event_log().record(engine::Event{
      engine::EventKind::kJobShed, now, rec.submission_id, -1, -1, -1,
      rec.retries, rec.name});
  SAEX_DEBUG("serve: submission {} '{}' shed at deadline {:.3f}s",
             rec.submission_id, rec.name, rec.deadline);
}

void JobServer::requeue_retry(int submission_id) {
  if (retry_wait_.erase(submission_id) == 0) return;  // shed meanwhile
  JobRecord& rec = records_[static_cast<size_t>(submission_id)];
  // A retry re-enters admission like a fresh arrival, but its original
  // admission decision stands — only capacity is re-checked.
  if (static_cast<int>(running_.size()) < options_.max_concurrent_jobs) {
    start_job(submission_id);
  } else if (static_cast<int>(queue_.size()) < options_.max_queued_jobs) {
    queue_.push_back(submission_id);
    queue_length_.set(static_cast<double>(queue_.size()));
  } else {
    // No capacity for the retry: the last attempt's failure is final.
    rec.outcome = JobOutcome::kFailed;
    settle(rec, ctx_->cluster().sim().now());
    jobs_finished_.increment();
    jobs_failed_.increment();
    return;
  }
  allocation_->notify_work();
}

ServeReport JobServer::replay(const std::vector<TraceJob>& trace,
                              const TraceOptions& trace_options) {
  load_trace_inputs(*ctx_, trace_options);
  sim::Simulation& sim = ctx_->cluster().sim();
  for (const TraceJob& job : trace) {
    const TraceJob copy = job;
    sim.schedule_at(job.arrival_time, [this, copy] {
      submit(strfmt::format("{}#{}", copy.workload, copy.id), copy.client,
             copy.pool,
             [copy](engine::SparkContext& ctx) {
               return build_trace_job(ctx, copy);
             },
             copy.deadline);
    });
  }
  return drain();
}

ServeReport JobServer::drain() {
  sim::Simulation& sim = ctx_->cluster().sim();
  sim.run();
  assert(running_.empty() && queue_.empty() && retry_wait_.empty() &&
         "drained simulation with jobs still outstanding");

  ServeReport out =
      build_serve_report(records_, options_.mode, ctx_->scheduler().pools());
  out.executors_granted = allocation_->granted_total();
  out.executors_released = allocation_->released_total();
  out.executors_lost = ctx_->scheduler().dead_executor_count();
  if (health_ != nullptr) {
    out.quarantines = static_cast<int>(health_->quarantines());
    out.probes = static_cast<int>(health_->probes());
    out.reinstatements = static_cast<int>(health_->reinstatements());
  }

  // Resilience rollup: how much the deadline/retry/quarantine machinery
  // intervened in this run.
  metrics_.gauge("serve/resilience/shed").set(static_cast<double>(out.shed));
  metrics_.gauge("serve/resilience/cancelled")
      .set(static_cast<double>(out.cancelled));
  metrics_.gauge("serve/resilience/retries")
      .set(static_cast<double>(out.retries));
  metrics_.gauge("serve/resilience/slo_tracked")
      .set(static_cast<double>(out.slo_tracked));
  metrics_.gauge("serve/resilience/slo_met")
      .set(static_cast<double>(out.slo_met));
  metrics_.gauge("serve/resilience/quarantines")
      .set(static_cast<double>(out.quarantines));
  metrics_.gauge("serve/resilience/reinstatements")
      .set(static_cast<double>(out.reinstatements));

  // Fault-recovery rollup (saex::fault): how perturbed the run was.
  engine::TaskScheduler& sched = ctx_->scheduler();
  metrics_.gauge("serve/fault/dead_executors")
      .set(static_cast<double>(sched.dead_executor_count()));
  metrics_.gauge("serve/fault/fetch_failures")
      .set(static_cast<double>(sched.fetch_failures()));
  metrics_.gauge("serve/fault/executor_lost_tasks")
      .set(static_cast<double>(sched.executor_lost_failures()));
  metrics_.gauge("serve/fault/speculative_launches")
      .set(static_cast<double>(sched.speculative_launches()));
  return out;
}

ServeReport build_serve_report(
    std::vector<JobRecord> records, engine::SchedulingMode mode,
    const std::vector<engine::PoolSpec>& pool_specs) {
  ServeReport out;
  out.mode = mode == engine::SchedulingMode::kFair ? "FAIR" : "FIFO";
  out.jobs = std::move(records);
  out.submitted = static_cast<int>(out.jobs.size());

  double first_submit = 0.0, last_finish = 0.0;
  std::vector<double> all_waits;
  std::map<std::string, PoolStats> pools;
  std::map<std::string, std::vector<double>> pool_waits, pool_spans;
  bool first = true;
  for (const JobRecord& rec : out.jobs) {
    switch (rec.admission) {
      case Admission::kRejectedQueueFull: ++out.rejected_queue_full; continue;
      case Admission::kRejectedClientQuota: ++out.rejected_client_quota; continue;
      case Admission::kRejectedDeadlineInfeasible:
        ++out.rejected_deadline;
        continue;
      default: break;
    }
    out.retries += rec.retries;
    if (rec.deadline >= 0.0) ++out.slo_tracked;
    if (rec.outcome == JobOutcome::kShedDeadline) {
      // Shed before (re)starting: never ran, nothing to roll up.
      ++out.shed;
      continue;
    }
    ++out.started;
    if (rec.finish_time < 0.0) continue;
    if (rec.outcome == JobOutcome::kCancelledDeadline) {
      ++out.cancelled;
    } else {
      ++out.finished;
      if (rec.failed) ++out.failed;
      if (rec.deadline >= 0.0 && !rec.failed && rec.finish_time <= rec.deadline) {
        ++out.slo_met;
      }
    }
    if (out.policy.empty()) out.policy = rec.report.policy_name;
    if (first || rec.submit_time < first_submit) first_submit = rec.submit_time;
    if (first || rec.finish_time > last_finish) last_finish = rec.finish_time;
    first = false;

    PoolStats& pool = pools[rec.pool];
    pool.pool = rec.pool;
    ++pool.jobs;
    if (rec.failed) ++pool.failed;
    for (const engine::StageStats& s : rec.report.stages) {
      pool.slot_seconds += s.task_seconds;
    }
    pool_waits[rec.pool].push_back(rec.queue_wait());
    pool_spans[rec.pool].push_back(rec.makespan());
    all_waits.push_back(rec.queue_wait());
    out.makespan_sum += rec.makespan();
  }
  out.total_time = last_finish - first_submit;
  if (!all_waits.empty()) out.queue_wait_p95 = percentile(all_waits, 0.95);

  // Per-pool rollup + Jain fairness over weight-normalized service.
  double share_sum = 0.0, share_sq = 0.0;
  for (auto& [name, pool] : pools) {
    for (const engine::PoolSpec& spec : pool_specs) {
      if (spec.name == name) {
        pool.weight = spec.weight;
        pool.min_share = spec.min_share;
      }
    }
    const auto& waits = pool_waits[name];
    const auto& spans = pool_spans[name];
    for (const double w : waits) pool.queue_wait_mean += w;
    pool.queue_wait_mean /= static_cast<double>(waits.size());
    pool.queue_wait_p95 = percentile(waits, 0.95);
    for (const double s : spans) pool.makespan_mean += s;
    pool.makespan_mean /= static_cast<double>(spans.size());
    pool.makespan_p95 = percentile(spans, 0.95);

    const double share = pool.slot_seconds / static_cast<double>(pool.weight);
    share_sum += share;
    share_sq += share * share;
    out.pools.push_back(pool);
  }
  if (out.pools.size() > 1 && share_sq > 0.0) {
    out.fairness_index = share_sum * share_sum /
                         (static_cast<double>(out.pools.size()) * share_sq);
  }
  return out;
}

const PoolStats* ServeReport::pool(const std::string& name) const noexcept {
  for (const PoolStats& p : pools) {
    if (p.pool == name) return &p;
  }
  return nullptr;
}

std::string ServeReport::render() const {
  std::ostringstream out;
  out << strfmt::format(
      "mode {}  policy {}  jobs: {} submitted, {} started, {} finished"
      " ({} failed), {} rejected (queue-full {}, client-quota {})\n",
      mode, policy, submitted, started, finished, failed,
      rejected_queue_full + rejected_client_quota, rejected_queue_full,
      rejected_client_quota);
  out << strfmt::format(
      "total {}  aggregate makespan {}  queue-wait p95 {}  fairness {:.3f}",
      format_duration(total_time), format_duration(makespan_sum),
      format_duration(queue_wait_p95), fairness_index);
  if (executors_granted + executors_released > 0) {
    out << strfmt::format("  dynalloc: +{} / -{} executors", executors_granted,
                          executors_released);
  }
  if (executors_lost > 0) {
    out << strfmt::format("  faults: {} executor(s) lost", executors_lost);
  }
  out << "\n";
  // Only rendered when the resilience machinery did anything, so reports of
  // runs without deadlines/retries/quarantine are byte-identical to before.
  if (slo_tracked + shed + cancelled + rejected_deadline + quarantines > 0 ||
      retries > 0) {
    out << strfmt::format(
        "resilience: SLO {}/{} met  {} shed, {} cancelled, {} retries,"
        " {} deadline-rejected  quarantine: {} opened, {} probed,"
        " {} reinstated\n",
        slo_met, slo_tracked, shed, cancelled, retries, rejected_deadline,
        quarantines, probes, reinstatements);
  }
  out << "\n";

  TextTable table({"pool", "w", "minShare", "jobs", "qwait mean", "qwait p95",
                   "makespan mean", "makespan p95", "slot-secs"});
  for (const PoolStats& p : pools) {
    table.add_row({p.pool, strfmt::format("{}", p.weight),
                   strfmt::format("{}", p.min_share),
                   strfmt::format("{}", p.jobs),
                   format_duration(p.queue_wait_mean),
                   format_duration(p.queue_wait_p95),
                   format_duration(p.makespan_mean),
                   format_duration(p.makespan_p95),
                   strfmt::format("{:.1f}", p.slot_seconds)});
  }
  out << table.render();
  return out.str();
}

std::string ServeReport::render_jobs() const {
  TextTable table({"id", "client", "pool", "job", "admission", "qwait",
                   "makespan", "outcome"});
  for (const JobRecord& rec : jobs) {
    const bool ran = rec.finish_time >= 0.0;
    std::string outcome;
    if (!admitted(rec.admission)) {
      outcome = "rejected";
    } else if (!ran) {
      outcome = "-";
    } else {
      outcome = std::string(outcome_name(rec.outcome));
      if (rec.retries > 0) {
        outcome += strfmt::format(" (r{})", rec.retries);
      }
    }
    table.add_row({strfmt::format("{}", rec.submission_id), rec.client,
                   rec.pool, rec.name, std::string(admission_name(rec.admission)),
                   ran ? format_duration(rec.queue_wait()) : "-",
                   ran ? format_duration(rec.makespan()) : "-",
                   std::move(outcome)});
  }
  return table.render();
}

}  // namespace saex::serve
