// Dynamic executor allocation (spark.dynamicAllocation.*) for the job
// server.
//
// Spark's ExecutorAllocationManager, mapped onto the simulator: the cluster
// owns a fixed set of executors, and "allocation" toggles which of them are
// schedulable. A sustained task backlog requests executors in exponentially
// growing batches (1, 2, 4, ...); an executor idle past the idle timeout is
// released (its running tasks, if any, always finish first — deactivation
// only stops new offers). A freshly granted executor re-enters the offer
// loop cold, so the first task it receives fires the scheduler's
// executor-engaged hook and its adaptive policy restarts the hill climb at
// c_min.
//
// The manager evaluates on a fixed tick (saex.serve.allocationTick) driven by
// the simulation clock; the tick re-arms only while the server reports
// outstanding work, so a drained simulation still terminates.
#pragma once

#include <functional>
#include <vector>

#include "conf/config.h"
#include "engine/event_log.h"
#include "engine/task_scheduler.h"
#include "metrics/registry.h"
#include "sim/simulation.h"

namespace saex::serve {

struct AllocationOptions {
  bool enabled = false;
  int min_executors = 0;
  int max_executors = 1 << 30;
  int initial_executors = 0;
  double idle_timeout = 60.0;              // executorIdleTimeout
  double backlog_timeout = 1.0;            // schedulerBacklogTimeout
  double sustained_backlog_timeout = 1.0;  // sustainedSchedulerBacklogTimeout
  double tick = 0.25;                      // saex.serve.allocationTick

  static AllocationOptions from_config(const conf::Config& config);
};

class ExecutorAllocationManager {
 public:
  /// `has_work` reports whether the server still has running or queued jobs;
  /// while it returns true the evaluation tick keeps re-arming.
  ExecutorAllocationManager(sim::Simulation& sim,
                            engine::TaskScheduler& scheduler, int num_executors,
                            AllocationOptions options,
                            std::function<bool()> has_work,
                            metrics::Registry* metrics = nullptr,
                            engine::EventLog* event_log = nullptr);

  /// Applies the initial allocation (deactivates executors beyond
  /// max(initial, min)). Call once before the first submission.
  void start();

  /// (Re)arms the evaluation tick; called by the server whenever new work
  /// arrives. Idempotent while a tick is pending.
  void notify_work();

  int granted_total() const noexcept { return granted_total_; }
  int released_total() const noexcept { return released_total_; }

 private:
  void tick();
  void grant(int count);
  void release(int node_id);

  sim::Simulation& sim_;
  engine::TaskScheduler& scheduler_;
  int num_executors_;
  AllocationOptions options_;
  std::function<bool()> has_work_;
  metrics::Registry* metrics_;
  engine::EventLog* event_log_;
  // Resolved once at construction (null handles when metrics_ == nullptr);
  // tick()/grant()/release() run on the simulation clock and stay lookup-free.
  metrics::GaugeHandle active_executors_;
  metrics::CounterHandle granted_;
  metrics::CounterHandle released_;

  bool timer_armed_ = false;
  double backlog_since_ = -1.0;  // <0: no current backlog
  double last_grant_time_ = -1.0;
  int next_batch_ = 1;                 // doubles per consecutive grant
  std::vector<double> idle_since_;     // per node; <0 when busy/inactive
  int granted_total_ = 0;
  int released_total_ = 0;
};

}  // namespace saex::serve
