#include "serve/allocation.h"

#include <algorithm>

#include "common/log.h"

namespace saex::serve {

AllocationOptions AllocationOptions::from_config(const conf::Config& config) {
  AllocationOptions o;
  o.enabled = config.get_bool("spark.dynamicAllocation.enabled");
  o.min_executors =
      static_cast<int>(config.get_int("spark.dynamicAllocation.minExecutors"));
  o.max_executors =
      static_cast<int>(std::min<int64_t>(
          config.get_int("spark.dynamicAllocation.maxExecutors"), 1 << 30));
  o.initial_executors = static_cast<int>(
      config.get_int("spark.dynamicAllocation.initialExecutors"));
  o.idle_timeout =
      config.get_duration_seconds("spark.dynamicAllocation.executorIdleTimeout");
  o.backlog_timeout = config.get_duration_seconds(
      "spark.dynamicAllocation.schedulerBacklogTimeout");
  o.sustained_backlog_timeout = config.get_duration_seconds(
      "spark.dynamicAllocation.sustainedSchedulerBacklogTimeout");
  o.tick = config.get_duration_seconds("saex.serve.allocationTick");
  return o;
}

ExecutorAllocationManager::ExecutorAllocationManager(
    sim::Simulation& sim, engine::TaskScheduler& scheduler, int num_executors,
    AllocationOptions options, std::function<bool()> has_work,
    metrics::Registry* metrics, engine::EventLog* event_log)
    : sim_(sim),
      scheduler_(scheduler),
      num_executors_(num_executors),
      options_(options),
      has_work_(std::move(has_work)),
      metrics_(metrics),
      event_log_(event_log),
      idle_since_(static_cast<size_t>(num_executors), -1.0) {
  if (metrics_ != nullptr) {
    active_executors_ = metrics_->gauge_handle("serve/alloc/active_executors");
    granted_ = metrics_->counter_handle("serve/alloc/granted");
    released_ = metrics_->counter_handle("serve/alloc/released");
  }
}

void ExecutorAllocationManager::start() {
  if (!options_.enabled) return;
  const int floor = std::max(options_.min_executors, 0);
  const int initial = std::clamp(
      std::max(options_.initial_executors, floor), 0, num_executors_);
  // Executors [initial, N) start deallocated; the backlog timeout grants
  // them back as demand materializes.
  for (int n = initial; n < num_executors_; ++n) {
    scheduler_.set_executor_active(n, false);
  }
  if (active_executors_) {
    active_executors_.set(scheduler_.active_executor_count());
  }
}

void ExecutorAllocationManager::notify_work() {
  if (!options_.enabled || timer_armed_) return;
  timer_armed_ = true;
  sim_.schedule_after(options_.tick, [this] { tick(); });
}

void ExecutorAllocationManager::tick() {
  timer_armed_ = false;
  const double now = sim_.now();

  // --- backlog: grant executors in exponentially growing batches ----------
  const int pending = scheduler_.pending_task_count();
  if (pending > 0) {
    if (backlog_since_ < 0.0) backlog_since_ = now;
    const bool first = last_grant_time_ < backlog_since_;
    const double since = first ? backlog_since_ : last_grant_time_;
    const double timeout =
        first ? options_.backlog_timeout : options_.sustained_backlog_timeout;
    const int active = scheduler_.active_executor_count();
    const int headroom =
        std::min(options_.max_executors, num_executors_) - active;
    if (now - since >= timeout && headroom > 0) {
      grant(std::min({next_batch_, headroom, pending}));
      last_grant_time_ = now;
      next_batch_ *= 2;
    }
  } else {
    backlog_since_ = -1.0;
    next_batch_ = 1;
  }

  // --- idle timeout: release executors down to minExecutors ---------------
  // Highest node ids first, so release and grant orders mirror each other.
  for (int n = num_executors_ - 1; n >= 0; --n) {
    const size_t i = static_cast<size_t>(n);
    if (!scheduler_.executor_active(n)) {
      idle_since_[i] = -1.0;
      continue;
    }
    if (scheduler_.assigned_count(n) > 0) {
      idle_since_[i] = -1.0;
      continue;
    }
    if (idle_since_[i] < 0.0) idle_since_[i] = now;
    if (now - idle_since_[i] >= options_.idle_timeout &&
        scheduler_.active_executor_count() >
            std::max(options_.min_executors, 0)) {
      release(n);
    }
  }

  if (active_executors_) {
    active_executors_.set(scheduler_.active_executor_count());
  }
  // Keep evaluating while the server has work, or while idle executors above
  // the floor remain to be released (Spark keeps releasing after the last
  // job); once both are false the tick stops and the simulation can drain.
  const bool can_release = scheduler_.active_executor_count() >
                           std::max(options_.min_executors, 0);
  if ((has_work_ && has_work_()) || can_release) {
    timer_armed_ = true;
    sim_.schedule_after(options_.tick, [this] { tick(); });
  }
}

void ExecutorAllocationManager::grant(int count) {
  // Lowest inactive node first (deterministic). Dead executors (fault
  // injection) are gone until a chaos rejoin revives them, and quarantined
  // nodes (health breaker open) must not be granted either — a grant would
  // just hand tasks to the flapping node the breaker excluded.
  for (int n = 0; n < num_executors_ && count > 0; ++n) {
    if (scheduler_.executor_dead(n) || scheduler_.executor_quarantined(n) ||
        scheduler_.executor_active(n)) {
      continue;
    }
    scheduler_.set_executor_active(n, true);
    idle_since_[static_cast<size_t>(n)] = -1.0;
    ++granted_total_;
    --count;
    SAEX_DEBUG("dynalloc: granted executor {} at {:.3f}s", n, sim_.now());
    if (granted_) granted_.increment();
    if (event_log_ != nullptr) {
      event_log_->record(engine::Event{engine::EventKind::kExecutorGranted,
                                       sim_.now(), -1, -1, -1, n,
                                       scheduler_.active_executor_count(),
                                       {}});
    }
  }
}

void ExecutorAllocationManager::release(int node_id) {
  scheduler_.set_executor_active(node_id, false);
  idle_since_[static_cast<size_t>(node_id)] = -1.0;
  ++released_total_;
  SAEX_DEBUG("dynalloc: released executor {} at {:.3f}s", node_id, sim_.now());
  if (released_) released_.increment();
  if (event_log_ != nullptr) {
    event_log_->record(engine::Event{engine::EventKind::kExecutorReleased,
                                     sim_.now(), -1, -1, -1, node_id,
                                     scheduler_.active_executor_count(),
                                     {}});
  }
}

}  // namespace saex::serve
