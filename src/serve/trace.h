// Seeded multi-tenant arrival traces for the job server.
//
// A trace is a list of (arrival time, client, pool, workload template) rows
// drawn from a single Rng seed: exponential or heavy-tailed (Pareto/Lomax)
// inter-arrival times (bursty, as in production Spark clusters) and a
// small/large workload mix. Small
// interactive jobs (scan / aggregation over a shared small table) go to the
// "interactive" pool; heavy batch jobs (sort / join over a shared big table)
// go to "batch". Inputs are shared DFS files loaded once; each job writes a
// unique output path.
#pragma once

#include <string>
#include <vector>

#include "engine/context.h"

namespace saex::serve {

struct TraceJob {
  int id = 0;
  std::string client;    // submitting tenant ("client0"..)
  std::string pool;      // "interactive" | "batch"
  std::string workload;  // "scan" | "aggregation" | "sort" | "join"
  double arrival_time = 0.0;
  // Relative SLO deadline (<0: none / server default). Assigned per pool
  // from TraceOptions, deterministically — no extra RNG draws, so traces
  // with deadlines share arrivals/mix with the same-seed trace without.
  double deadline = -1.0;
};

struct TraceOptions {
  int num_jobs = 50;
  double mean_interarrival = 3.0;  // seconds (mean of the chosen law)
  // Inter-arrival law: "exp" (memoryless bursts) or "pareto" (heavy-tailed
  // Lomax gaps — long quiet spells punctuated by dense arrival storms, the
  // shape production multi-tenant traces show). Both laws are scaled so the
  // mean gap equals mean_interarrival.
  std::string arrival = "exp";
  double pareto_shape = 1.5;       // Lomax alpha (> 1 so the mean exists)
  double small_fraction = 0.6;     // share of interactive jobs
  int num_clients = 4;
  uint64_t seed = 42;

  // Per-pool relative deadlines stamped onto trace jobs (<0: none).
  double interactive_deadline = -1.0;
  double batch_deadline = -1.0;

  // Shared input sizes (loaded once per context).
  Bytes small_input = gib(1.0);  // scan/aggregation table
  Bytes big_input = gib(4.0);    // sort/join fact table
  Bytes dim_input = gib(0.5);    // join dimension table
};

/// Names of the workload templates build_trace_job understands, in the order
/// they are documented (small-pool templates first).
const std::vector<std::string>& trace_workload_names();

/// Draws a deterministic trace (sorted by arrival time).
std::vector<TraceJob> make_trace(const TraceOptions& options);

/// Loads the shared input files into the context's DFS (idempotent).
void load_trace_inputs(engine::SparkContext& ctx, const TraceOptions& options);

/// Builds the plan for one trace job on the shared context. Output paths are
/// unique per job id ("/serve/out/job<N>"). Throws std::invalid_argument for
/// an unknown workload template.
engine::Rdd build_trace_job(engine::SparkContext& ctx, const TraceJob& job);

}  // namespace saex::serve
