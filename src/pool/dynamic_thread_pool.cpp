#include "pool/dynamic_thread_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

namespace saex::pool {

using Clock = std::chrono::steady_clock;

namespace {
double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

DynamicThreadPool::DynamicThreadPool(int initial_size) {
  std::unique_lock lock(mutex_);
  target_ = std::max(initial_size, 1);
  spawn_locked(lock, target_);
}

DynamicThreadPool::~DynamicThreadPool() { shutdown(); }

void DynamicThreadPool::spawn_locked(std::unique_lock<std::mutex>& lock,
                                     int count) {
  assert(lock.owns_lock());
  for (int i = 0; i < count; ++i) {
    const uint64_t id = next_worker_id_++;
    ++live_;
    workers_.emplace(id, std::thread([this, id] { worker_loop(id); }));
  }
}

void DynamicThreadPool::reap_exited_locked() {
  for (const uint64_t id : exited_) {
    const auto it = workers_.find(id);
    if (it != workers_.end()) {
      it->second.join();
      workers_.erase(it);
    }
  }
  exited_.clear();
}

void DynamicThreadPool::worker_loop(uint64_t worker_id) {
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return !queue_.empty() || shutting_down_ || live_ > target_;
    });

    // Excess workers exit when idle; remaining workers still own the queue.
    if (live_ > target_ && !shutting_down_) {
      break;
    }
    if (queue_.empty()) {
      if (shutting_down_) break;
      continue;
    }

    QueuedTask task = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    const auto started = Clock::now();
    stats_.total_queue_wait_seconds += seconds_between(task.enqueued_at, started);

    lock.unlock();
    task.fn();  // exceptions from tasks are a programming error; let them fly
    lock.lock();

    stats_.total_busy_seconds += seconds_between(started, Clock::now());
    ++stats_.completed;
    --busy_;
    if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
  }

  --live_;
  exited_.push_back(worker_id);
  // A shrink below the busy count can leave queued work with no awake
  // worker; hand the baton to a peer before exiting.
  work_cv_.notify_one();
  idle_cv_.notify_all();
}

void DynamicThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    if (shutting_down_) throw std::runtime_error("pool is shut down");
    queue_.push_back(QueuedTask{std::move(task), Clock::now()});
    ++stats_.submitted;
  }
  work_cv_.notify_one();
}

void DynamicThreadPool::set_pool_size(int target) {
  std::unique_lock lock(mutex_);
  if (shutting_down_) return;
  target = std::max(target, 1);
  const int old_target = target_;
  target_ = target;
  reap_exited_locked();
  if (target > live_) {
    spawn_locked(lock, target - live_);
  } else if (target < old_target) {
    lock.unlock();
    work_cv_.notify_all();  // wake idle workers so excess ones exit
    return;
  }
}

int DynamicThreadPool::pool_size() const {
  const std::lock_guard lock(mutex_);
  return target_;
}

int DynamicThreadPool::live_threads() const {
  const std::lock_guard lock(mutex_);
  return live_;
}

int DynamicThreadPool::busy_threads() const {
  const std::lock_guard lock(mutex_);
  return busy_;
}

size_t DynamicThreadPool::queued() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

void DynamicThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void DynamicThreadPool::shutdown() {
  std::unique_lock lock(mutex_);
  if (!shutting_down_) {
    shutting_down_ = true;
    work_cv_.notify_all();
  }
  idle_cv_.wait(lock, [this] { return live_ == 0; });
  reap_exited_locked();
  // Join any stragglers that exited before registering (none expected, but
  // keep the map empty for a clean destructor).
  for (auto& [id, thread] : workers_) {
    if (thread.joinable()) thread.join();
  }
  workers_.clear();
}

DynamicThreadPool::Stats DynamicThreadPool::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace saex::pool
