// A real, dynamically resizable worker thread pool.
//
// This is the C++ counterpart of the JDK ThreadPoolExecutor the paper
// resizes through setMaximumPoolSize() (§5.4): growing spawns workers
// eagerly; shrinking is lazy — running tasks finish, and excess workers
// exit when they next become idle. The adaptive controller drives it
// through the adaptive::PoolEffector interface; see
// examples/adaptive_file_processor.cpp for the live demonstration.
//
// Thread-safety: all public members may be called from any thread,
// including from within tasks (except the destructor).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace saex::pool {

class DynamicThreadPool {
 public:
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    double total_queue_wait_seconds = 0.0;  // enqueue → start
    double total_busy_seconds = 0.0;        // start → finish
  };

  explicit DynamicThreadPool(int initial_size);

  /// Waits for queued and running tasks to finish, then joins all workers.
  ~DynamicThreadPool();

  DynamicThreadPool(const DynamicThreadPool&) = delete;
  DynamicThreadPool& operator=(const DynamicThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error after shutdown() began.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto submit_future(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    submit([promise, fn = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          promise->set_value();
        } else {
          promise->set_value(fn());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    return future;
  }

  /// The paper's effector: sets the target worker count (clamped to >= 1).
  /// Growth takes effect immediately; shrink happens as workers go idle.
  void set_pool_size(int target);

  /// Current target size.
  int pool_size() const;
  /// Workers currently alive (may exceed the target briefly after a shrink).
  int live_threads() const;
  /// Workers currently executing a task.
  int busy_threads() const;
  size_t queued() const;

  /// Blocks until the queue is empty and no worker is busy.
  void wait_idle();

  /// Stops accepting tasks; drains the queue and joins workers.
  void shutdown();

  Stats stats() const;

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void worker_loop(uint64_t worker_id);
  void spawn_locked(std::unique_lock<std::mutex>& lock, int count);
  void reap_exited_locked();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait here
  std::condition_variable idle_cv_;   // wait_idle()/shutdown wait here
  std::deque<QueuedTask> queue_;
  std::unordered_map<uint64_t, std::thread> workers_;
  std::vector<uint64_t> exited_;  // ids ready to join
  uint64_t next_worker_id_ = 1;
  int target_ = 0;
  int live_ = 0;
  int busy_ = 0;
  bool shutting_down_ = false;
  Stats stats_;
};

}  // namespace saex::pool
