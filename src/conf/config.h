// Typed configuration registry and per-run configuration values.
//
// Mirrors Spark's configuration surface: parameters are registered once with
// a key, category, type, default and documentation; a Config instance holds
// overrides for one application run. The registry is what regenerates the
// paper's Table 1 (117 functional parameters across seven categories), and
// the engine reads its knobs (block size, shuffle buffers, locality wait,
// adaptive-controller settings, ...) through it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace saex::conf {

enum class Category {
  kShuffle,
  kCompressionSerialization,
  kMemoryManagement,
  kExecutionBehavior,
  kNetwork,
  kScheduling,
  kDynamicAllocation,
  // Parameters added by this project (adaptive executors); not part of the
  // 117 functional Spark parameters counted in Table 1.
  kAdaptiveExtension,
};

/// Human-readable category name as used in the paper's Table 1.
std::string_view category_name(Category c) noexcept;

enum class ValueType { kBool, kInt, kDouble, kBytes, kDurationSeconds, kString };

struct ParamDef {
  std::string key;
  Category category;
  ValueType type;
  std::string default_value;
  std::string doc;
};

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable-after-build set of parameter definitions.
class Registry {
 public:
  /// Registers a parameter; throws ConfigError on duplicate key.
  void define(ParamDef def);

  const ParamDef* find(std::string_view key) const noexcept;
  const ParamDef& at(std::string_view key) const;  // throws if unknown

  std::vector<const ParamDef*> by_category(Category c) const;
  size_t count(Category c) const noexcept;
  /// Count of functional parameters (all categories except the extension).
  size_t functional_count() const noexcept;
  size_t total_count() const noexcept { return defs_.size(); }

  const std::map<std::string, ParamDef, std::less<>>& all() const noexcept {
    return defs_;
  }

 private:
  std::map<std::string, ParamDef, std::less<>> defs_;
};

/// The process-wide registry preloaded with the Spark 2.4 functional
/// parameters and the saex.* extension parameters.
const Registry& spark_registry();

/// Parses "48m", "1g", "512k", "128" (bytes) into a byte count.
Bytes parse_bytes(std::string_view text);
/// Parses "120s", "30000ms", "2min", "1h", bare seconds.
double parse_duration_seconds(std::string_view text);
bool parse_bool(std::string_view text);

/// Per-run configuration: overrides on top of registry defaults.
class Config {
 public:
  /// Uses spark_registry() by default.
  Config();
  explicit Config(const Registry* registry);

  /// Sets an override; throws ConfigError for unknown keys or values that do
  /// not parse as the parameter's declared type.
  Config& set(std::string_view key, std::string_view value);
  Config& set_int(std::string_view key, int64_t value);
  Config& set_bool(std::string_view key, bool value);
  Config& set_double(std::string_view key, double value);

  bool is_set(std::string_view key) const noexcept;

  std::string get_string(std::string_view key) const;
  int64_t get_int(std::string_view key) const;
  double get_double(std::string_view key) const;
  bool get_bool(std::string_view key) const;
  Bytes get_bytes(std::string_view key) const;
  double get_duration_seconds(std::string_view key) const;

  const Registry& registry() const noexcept { return *registry_; }

 private:
  std::string raw(std::string_view key) const;

  const Registry* registry_;
  std::map<std::string, std::string, std::less<>> overrides_;
};

}  // namespace saex::conf
