// Registers the 117 functional Spark 2.4 parameters (paper Table 1) plus the
// saex.* extension parameters that configure the adaptive executors.
//
// Category counts must match Table 1 exactly:
//   Shuffle 19, Compression and Serialization 16, Memory Management 14,
//   Execution Behavior 14, Network 13, Scheduling 32, Dynamic Allocation 9
//   = 117 total. tests/conf_test.cpp asserts these counts.

#include "conf/config.h"

namespace saex::conf {
namespace {

void define_shuffle(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kShuffle;
  r.define({"spark.reducer.maxSizeInFlight", c, V::kBytes, "48m",
            "Max map output fetched simultaneously per reduce task."});
  r.define({"spark.reducer.maxReqsInFlight", c, V::kInt, "2147483647",
            "Max remote fetch requests in flight per reduce task."});
  r.define({"spark.reducer.maxBlocksInFlightPerAddress", c, V::kInt, "2147483647",
            "Max shuffle blocks fetched concurrently from one host."});
  r.define({"spark.maxRemoteBlockSizeFetchToMem", c, V::kBytes, "2147483135",
            "Remote blocks above this size are streamed to disk."});
  r.define({"spark.shuffle.compress", c, V::kBool, "true",
            "Compress map output files."});
  r.define({"spark.shuffle.file.buffer", c, V::kBytes, "32k",
            "In-memory buffer per shuffle file output stream."});
  r.define({"spark.shuffle.io.maxRetries", c, V::kInt, "3",
            "Fetch retry count for IO-related exceptions."});
  r.define({"spark.shuffle.io.numConnectionsPerPeer", c, V::kInt, "1",
            "Connections reused across hosts for shuffle fetch."});
  r.define({"spark.shuffle.io.preferDirectBufs", c, V::kBool, "true",
            "Prefer off-heap buffers in shuffle block transfer."});
  r.define({"spark.shuffle.io.retryWait", c, V::kDurationSeconds, "5s",
            "Wait between shuffle fetch retries."});
  r.define({"spark.shuffle.service.enabled", c, V::kBool, "false",
            "Use the external shuffle service."});
  r.define({"spark.shuffle.service.port", c, V::kInt, "7337",
            "External shuffle service port."});
  r.define({"spark.shuffle.service.index.cache.size", c, V::kBytes, "100m",
            "Cache for shuffle index files in the external service."});
  r.define({"spark.shuffle.maxChunksBeingTransferred", c, V::kInt, "9223372036854775807",
            "Max chunks allowed in transfer on the shuffle service."});
  r.define({"spark.shuffle.sort.bypassMergeThreshold", c, V::kInt, "200",
            "Below this many reduce partitions, skip merge-sort."});
  r.define({"spark.shuffle.spill.compress", c, V::kBool, "true",
            "Compress data spilled during shuffles."});
  r.define({"spark.shuffle.accurateBlockThreshold", c, V::kBytes, "100m",
            "Record accurate sizes for shuffle blocks above this size."});
  r.define({"spark.shuffle.registration.timeout", c, V::kDurationSeconds, "5s",
            "Timeout for registration to the external shuffle service."});
  r.define({"spark.shuffle.registration.maxAttempts", c, V::kInt, "3",
            "Retries for registration to the external shuffle service."});
}

void define_compression_serialization(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kCompressionSerialization;
  r.define({"spark.broadcast.compress", c, V::kBool, "true",
            "Compress broadcast variables."});
  r.define({"spark.checkpoint.compress", c, V::kBool, "false",
            "Compress RDD checkpoints."});
  r.define({"spark.io.compression.codec", c, V::kString, "lz4",
            "Codec for internal data (RDDs, shuffle, broadcast)."});
  r.define({"spark.io.compression.lz4.blockSize", c, V::kBytes, "32k",
            "LZ4 block size."});
  r.define({"spark.io.compression.snappy.blockSize", c, V::kBytes, "32k",
            "Snappy block size."});
  r.define({"spark.io.compression.zstd.level", c, V::kInt, "1",
            "Zstd compression level."});
  r.define({"spark.io.compression.zstd.bufferSize", c, V::kBytes, "32k",
            "Zstd buffer size."});
  r.define({"spark.kryo.classesToRegister", c, V::kString, "",
            "Classes to register with Kryo."});
  r.define({"spark.kryo.referenceTracking", c, V::kBool, "true",
            "Track references to the same object in Kryo."});
  r.define({"spark.kryo.registrationRequired", c, V::kBool, "false",
            "Require explicit Kryo registration."});
  r.define({"spark.kryo.registrator", c, V::kString, "",
            "Custom Kryo registrator classes."});
  r.define({"spark.kryo.unsafe", c, V::kBool, "false",
            "Use unsafe-based Kryo serializer."});
  r.define({"spark.kryoserializer.buffer.max", c, V::kBytes, "64m",
            "Max Kryo buffer size."});
  r.define({"spark.kryoserializer.buffer", c, V::kBytes, "64k",
            "Initial Kryo buffer size."});
  r.define({"spark.rdd.compress", c, V::kBool, "false",
            "Compress serialized cached partitions."});
  r.define({"spark.serializer", c, V::kString,
            "org.apache.spark.serializer.JavaSerializer",
            "Serializer for objects sent over the network or cached."});
}

void define_memory(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kMemoryManagement;
  r.define({"spark.memory.fraction", c, V::kDouble, "0.6",
            "Fraction of heap used for execution and storage."});
  r.define({"spark.memory.storageFraction", c, V::kDouble, "0.5",
            "Storage share of the unified region immune to eviction."});
  r.define({"spark.memory.offHeap.enabled", c, V::kBool, "false",
            "Use off-heap memory for certain operations."});
  r.define({"spark.memory.offHeap.size", c, V::kBytes, "0",
            "Absolute off-heap memory size."});
  r.define({"spark.memory.useLegacyMode", c, V::kBool, "false",
            "Use the pre-1.6 static memory manager."});
  r.define({"spark.shuffle.memoryFraction", c, V::kDouble, "0.2",
            "(legacy) Heap fraction for shuffle aggregation."});
  r.define({"spark.storage.memoryFraction", c, V::kDouble, "0.6",
            "(legacy) Heap fraction for the storage region."});
  r.define({"spark.storage.unrollFraction", c, V::kDouble, "0.2",
            "(legacy) Storage fraction for unrolling blocks."});
  r.define({"spark.storage.replication.proactive", c, V::kBool, "false",
            "Proactively re-replicate cached blocks on executor loss."});
  r.define({"spark.cleaner.periodicGC.interval", c, V::kDurationSeconds, "30min",
            "How often to trigger GC for cleanup."});
  r.define({"spark.cleaner.referenceTracking", c, V::kBool, "true",
            "Enable context cleaning."});
  r.define({"spark.cleaner.referenceTracking.blocking", c, V::kBool, "true",
            "Block on cleanup tasks (except shuffle)."});
  r.define({"spark.cleaner.referenceTracking.blocking.shuffle", c, V::kBool, "false",
            "Block on shuffle cleanup tasks."});
  r.define({"spark.cleaner.referenceTracking.cleanCheckpoints", c, V::kBool, "false",
            "Clean checkpoint files when the reference goes away."});
}

void define_execution(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kExecutionBehavior;
  r.define({"spark.broadcast.blockSize", c, V::kBytes, "4m",
            "Block size for TorrentBroadcastFactory."});
  r.define({"spark.broadcast.checksum", c, V::kBool, "true",
            "Checksum broadcast blocks."});
  r.define({"spark.executor.cores", c, V::kInt, "32",
            "Number of task threads per executor. THE parameter this paper "
            "makes adaptive; the engine uses it as the default pool size."});
  r.define({"spark.default.parallelism", c, V::kInt, "128",
            "Default number of partitions for distributed shuffle ops."});
  r.define({"spark.executor.heartbeatInterval", c, V::kDurationSeconds, "10s",
            "Executor-to-driver heartbeat interval."});
  r.define({"spark.files.fetchTimeout", c, V::kDurationSeconds, "60s",
            "Timeout for fetching files added through addFile."});
  r.define({"spark.files.useFetchCache", c, V::kBool, "true",
            "Share a local cache of fetched files between executors."});
  r.define({"spark.files.overwrite", c, V::kBool, "false",
            "Overwrite files added through addFile."});
  r.define({"spark.files.maxPartitionBytes", c, V::kBytes, "128m",
            "Max bytes packed into one partition when reading files."});
  r.define({"spark.files.openCostInBytes", c, V::kBytes, "4m",
            "Estimated cost to open a file, in bytes scanned."});
  r.define({"spark.hadoop.cloneConf", c, V::kBool, "false",
            "Clone a Hadoop configuration per task."});
  r.define({"spark.hadoop.validateOutputSpecs", c, V::kBool, "true",
            "Validate output directories in saveAsHadoopFile."});
  r.define({"spark.storage.memoryMapThreshold", c, V::kBytes, "2m",
            "Memory-map blocks above this size when reading from disk."});
  r.define({"spark.hadoop.mapreduce.fileoutputcommitter.algorithm.version", c,
            V::kInt, "1", "File output committer algorithm version."});
}

void define_network(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kNetwork;
  r.define({"spark.rpc.message.maxSize", c, V::kInt, "128",
            "Max RPC message size in MiB (map output status etc.)."});
  r.define({"spark.blockManager.port", c, V::kInt, "0",
            "Port for all block managers to listen on."});
  r.define({"spark.driver.blockManager.port", c, V::kInt, "0",
            "Driver-specific block manager port."});
  r.define({"spark.driver.bindAddress", c, V::kString, "",
            "Address the driver binds listen sockets to."});
  r.define({"spark.driver.host", c, V::kString, "localhost",
            "Driver hostname advertised to executors."});
  r.define({"spark.driver.port", c, V::kInt, "0",
            "Driver RPC port."});
  r.define({"spark.network.timeout", c, V::kDurationSeconds, "120s",
            "Default timeout for all network interactions."});
  r.define({"spark.port.maxRetries", c, V::kInt, "16",
            "Retries when binding to a port."});
  r.define({"spark.rpc.numRetries", c, V::kInt, "3",
            "Times to retry an RPC before failing."});
  r.define({"spark.rpc.retry.wait", c, V::kDurationSeconds, "3s",
            "Wait between RPC retries."});
  r.define({"spark.rpc.askTimeout", c, V::kDurationSeconds, "120s",
            "Timeout for RPC ask operations."});
  r.define({"spark.rpc.lookupTimeout", c, V::kDurationSeconds, "120s",
            "Timeout for RPC remote endpoint lookup."});
  r.define({"spark.core.connection.ack.wait.timeout", c, V::kDurationSeconds,
            "60s", "Timeout waiting for connection acks."});
}

void define_scheduling(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kScheduling;
  r.define({"spark.cores.max", c, V::kInt, "-1",
            "Max total cores for the application (standalone/Mesos)."});
  r.define({"spark.locality.wait", c, V::kDurationSeconds, "3s",
            "Wait before giving up a locality level."});
  r.define({"spark.locality.wait.node", c, V::kDurationSeconds, "3s",
            "Locality wait for node locality."});
  r.define({"spark.locality.wait.process", c, V::kDurationSeconds, "3s",
            "Locality wait for process locality."});
  r.define({"spark.locality.wait.rack", c, V::kDurationSeconds, "3s",
            "Locality wait for rack locality."});
  r.define({"spark.scheduler.maxRegisteredResourcesWaitingTime", c,
            V::kDurationSeconds, "30s",
            "Max wait for resources to register before scheduling."});
  r.define({"spark.scheduler.minRegisteredResourcesRatio", c, V::kDouble, "0.8",
            "Resource ratio to reach before scheduling begins."});
  r.define({"spark.scheduler.mode", c, V::kString, "FIFO",
            "Job scheduling mode: FIFO or FAIR."});
  r.define({"spark.scheduler.revive.interval", c, V::kDurationSeconds, "1s",
            "Interval for the scheduler to revive worker offers."});
  r.define({"spark.scheduler.listenerbus.eventqueue.capacity", c, V::kInt,
            "10000", "Capacity of the listener bus event queue."});
  r.define({"spark.blacklist.enabled", c, V::kBool, "false",
            "Enable executor/node blacklisting."});
  r.define({"spark.blacklist.timeout", c, V::kDurationSeconds, "1h",
            "How long a blacklisted executor stays excluded."});
  r.define({"spark.blacklist.task.maxTaskAttemptsPerExecutor", c, V::kInt, "1",
            "Task retries on one executor before blacklisting it."});
  r.define({"spark.blacklist.task.maxTaskAttemptsPerNode", c, V::kInt, "2",
            "Task retries on one node before blacklisting it."});
  r.define({"spark.blacklist.stage.maxFailedTasksPerExecutor", c, V::kInt, "2",
            "Failed tasks per executor before stage-level blacklist."});
  r.define({"spark.blacklist.stage.maxFailedExecutorsPerNode", c, V::kInt, "2",
            "Blacklisted executors per node before node-level blacklist."});
  r.define({"spark.blacklist.application.maxFailedTasksPerExecutor", c, V::kInt,
            "2", "Failed tasks before app-level executor blacklist."});
  r.define({"spark.blacklist.application.maxFailedExecutorsPerNode", c, V::kInt,
            "2", "Blacklisted executors before app-level node blacklist."});
  r.define({"spark.blacklist.killBlacklistedExecutors", c, V::kBool, "false",
            "Kill executors when blacklisted for the whole application."});
  r.define({"spark.blacklist.application.fetchFailure.enabled", c, V::kBool,
            "false", "Blacklist executors immediately on fetch failure."});
  r.define({"spark.speculation", c, V::kBool, "false",
            "Enable speculative execution of slow tasks."});
  r.define({"spark.speculation.interval", c, V::kDurationSeconds, "100ms",
            "How often to check for speculatable tasks."});
  r.define({"spark.speculation.multiplier", c, V::kDouble, "1.5",
            "How many times slower than median before speculation."});
  r.define({"spark.speculation.quantile", c, V::kDouble, "0.75",
            "Fraction of tasks finished before speculation starts."});
  r.define({"spark.task.cpus", c, V::kInt, "1",
            "Cores allocated per task."});
  r.define({"spark.task.maxFailures", c, V::kInt, "4",
            "Task failures before giving up on the job."});
  r.define({"spark.task.reaper.enabled", c, V::kBool, "false",
            "Monitor killed tasks until they actually finish."});
  r.define({"spark.task.reaper.pollingInterval", c, V::kDurationSeconds, "10s",
            "Polling interval for the task reaper."});
  r.define({"spark.task.reaper.threadDump", c, V::kBool, "true",
            "Log thread dumps during task reaping."});
  r.define({"spark.task.reaper.killTimeout", c, V::kDurationSeconds, "-1",
            "Deadline after which the JVM is killed for a stuck task."});
  r.define({"spark.stage.maxConsecutiveAttempts", c, V::kInt, "4",
            "Consecutive stage attempts before aborting."});
  r.define({"spark.scheduler.blacklist.unschedulableTaskSetTimeout", c,
            V::kDurationSeconds, "120s",
            "Timeout before aborting an unschedulable task set."});
}

void define_dynamic_allocation(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kDynamicAllocation;
  r.define({"spark.dynamicAllocation.enabled", c, V::kBool, "false",
            "Scale executor count with workload."});
  r.define({"spark.dynamicAllocation.executorIdleTimeout", c,
            V::kDurationSeconds, "60s",
            "Remove an executor idle for this long."});
  r.define({"spark.dynamicAllocation.cachedExecutorIdleTimeout", c,
            V::kDurationSeconds, "-1",
            "Idle timeout for executors holding cached blocks."});
  r.define({"spark.dynamicAllocation.initialExecutors", c, V::kInt, "0",
            "Initial executor count with dynamic allocation."});
  r.define({"spark.dynamicAllocation.maxExecutors", c, V::kInt, "2147483647",
            "Upper bound on executors."});
  r.define({"spark.dynamicAllocation.minExecutors", c, V::kInt, "0",
            "Lower bound on executors."});
  r.define({"spark.dynamicAllocation.executorAllocationRatio", c, V::kDouble,
            "1.0", "Target executors relative to full parallelism."});
  r.define({"spark.dynamicAllocation.schedulerBacklogTimeout", c,
            V::kDurationSeconds, "1s",
            "Backlog duration before requesting executors."});
  r.define({"spark.dynamicAllocation.sustainedSchedulerBacklogTimeout", c,
            V::kDurationSeconds, "1s",
            "Backlog duration before subsequent executor requests."});
}

// saex.* extension parameters — the knobs of this paper's contribution.
// Registered in their own category so functional_count() still reports 117.
void define_adaptive_extension(Registry& r) {
  using C = Category;
  using V = ValueType;
  const C c = C::kAdaptiveExtension;
  r.define({"saex.executor.policy", c, V::kString, "default",
            "Thread-pool policy: default | static | dynamic."});
  r.define({"saex.static.ioThreads", c, V::kInt, "8",
            "Static solution: thread count used in I/O-tagged stages."});
  r.define({"saex.dynamic.minThreads", c, V::kInt, "2",
            "Hill climber lower bound c_min (paper: 2)."});
  r.define({"saex.dynamic.maxThreads", c, V::kInt, "0",
            "Hill climber upper bound c_max; 0 = number of virtual cores."});
  r.define({"saex.dynamic.toleranceLower", c, V::kDouble, "0.98",
            "Keep climbing while zeta_j <= toleranceLower * zeta_prev "
            "(strict improvement with 2% slack)."});
  r.define({"saex.dynamic.toleranceUpper", c, V::kDouble, "1.10",
            "Indifference band: zeta within [lower,upper]*prev with low I/O "
            "activity still climbs (CPU-bound stages prefer more threads)."});
  r.define({"saex.dynamic.minThroughput", c, V::kBytes, "1m",
            "Below this per-interval I/O throughput a stage is treated as "
            "CPU-bound and the climber keeps doubling."});
  r.define({"saex.dynamic.minDiskUtil", c, V::kDouble, "0.55",
            "Below this windowed disk utilization the stage is not "
            "I/O-constrained and the climber keeps doubling (L3 guard)."});
  r.define({"saex.dynamic.rollback", c, V::kBool, "true",
            "Roll back to the previous size and freeze when zeta worsens "
            "(ablation: keep climbing instead)."});
  r.define({"saex.dynamic.descending", c, V::kBool, "false",
            "Ablation: start at c_max and halve instead of ascending."});
  r.define({"saex.dynamic.metric", c, V::kString, "zeta",
            "Analyzed metric: zeta | epoll | diskutil (ablation)."});
  r.define({"saex.dynamic.intervalMode", c, V::kString, "completions",
            "Interval definition: completions (I_j = j task completions) | "
            "fixed (wall-clock seconds; ablation)."});
  r.define({"saex.dynamic.fixedIntervalSeconds", c, V::kDurationSeconds, "5s",
            "Interval length when intervalMode=fixed."});
  r.define({"saex.scheduler.mode", c, V::kString, "FIFO",
            "Multi-job slot arbitration in saex::serve: FIFO | FAIR."});
  r.define({"saex.scheduler.pools", c, V::kString, "",
            "FAIR pool definitions: 'name:weight:minShare,...' (e.g. "
            "'interactive:3:32,batch:1:0'). Unlisted pools get weight 1, "
            "minShare 0."});
  r.define({"saex.serve.maxConcurrentJobs", c, V::kInt, "8",
            "Admission control: jobs running at once; excess submissions "
            "queue."});
  r.define({"saex.serve.maxQueuedJobs", c, V::kInt, "64",
            "Admission control: queue capacity; submissions beyond it are "
            "rejected with a typed result (backpressure)."});
  r.define({"saex.serve.maxJobsPerClient", c, V::kInt, "0",
            "Admission control: per-client cap on queued+running jobs "
            "(0 = unlimited)."});
  r.define({"saex.serve.allocationTick", c, V::kDurationSeconds, "250ms",
            "Dynamic-allocation evaluation period (backlog and idle-timeout "
            "checks)."});
  r.define({"saex.serve.defaultDeadline", c, V::kDurationSeconds, "-1",
            "Relative deadline (from submit) applied to trace jobs that "
            "carry none of their own; negative disables deadlines."});
  r.define({"saex.serve.enforceDeadlines", c, V::kBool, "true",
            "Act on deadlines: shed queued jobs whose deadline lapses, "
            "cancel running jobs past deadline. False still records SLO "
            "attainment (observe-only baseline)."});
  r.define({"saex.serve.maxRetries", c, V::kInt, "0",
            "Failed/aborted jobs re-enter the admission queue up to this "
            "many times (0 = a failure settles immediately)."});
  r.define({"saex.serve.retryBackoff", c, V::kDurationSeconds, "1s",
            "Base retry delay; retry k waits backoff*2^(k-1) (plus jitter), "
            "capped by retryBackoffMax."});
  r.define({"saex.serve.retryBackoffMax", c, V::kDurationSeconds, "30s",
            "Upper bound on the exponential retry delay."});
  r.define({"saex.serve.retryJitter", c, V::kDouble, "0.5",
            "Jitter fraction: the delay is scaled by (1 + jitter*u), u drawn "
            "per (submission, attempt) from the server seed."});
  r.define({"saex.resilience.quarantine", c, V::kBool, "false",
            "Node health circuit breaker: quarantine nodes accumulating "
            "executor-lost/fetch-failure faults out of offers and dynamic "
            "allocation (see docs/FAULT_MODEL.md)."});
  r.define({"saex.resilience.quarantineThreshold", c, V::kInt, "3",
            "Faults within quarantineWindow that trip a node's breaker."});
  r.define({"saex.resilience.quarantineWindow", c, V::kDurationSeconds, "30s",
            "Sliding window over which node faults are counted."});
  r.define({"saex.resilience.quarantineCooldown", c, V::kDurationSeconds, "60s",
            "Quarantine duration before a half-open probe; the first task "
            "outcome on the probed node closes or re-opens the breaker."});
  r.define({"saex.sim.taskFailureProb", c, V::kDouble, "0",
            "Fault injection: probability a task attempt dies partway "
            "through (exercises spark.task.maxFailures retries)."});
  r.define({"saex.sim.flakyNode", c, V::kInt, "-1",
            "Fault injection: node id with its own failure probability "
            "(exercises spark.blacklist.*)."});
  r.define({"saex.sim.flakyNodeFailureProb", c, V::kDouble, "0",
            "Per-attempt failure probability on the flaky node."});
  r.define({"saex.fault.enabled", c, V::kBool, "false",
            "Master switch for the seeded FaultPlan (saex::fault); when "
            "false every other saex.fault.* key is inert."});
  r.define({"saex.fault.seed", c, V::kInt, "0",
            "Extra seed XORed into the cluster seed for fault randomness "
            "(shuffle-fetch drops); same seed => bitwise-identical replay."});
  r.define({"saex.fault.killNode", c, V::kInt, "-1",
            "Executor (node id) the kill trigger targets; -1 disables the "
            "kill injection."});
  r.define({"saex.fault.killTime", c, V::kDurationSeconds, "-1",
            "Simulated time at which the target executor dies; negative "
            "disables the time trigger."});
  r.define({"saex.fault.killAfterTasks", c, V::kInt, "-1",
            "Kill the target executor once this many task attempts finished "
            "cluster-wide; negative disables the count trigger."});
  r.define({"saex.fault.slowNode", c, V::kInt, "-1",
            "Node whose disk degrades at slowTime (straggler injection); "
            "-1 disables."});
  r.define({"saex.fault.slowFactor", c, V::kDouble, "0.3",
            "Disk speed factor applied to the slow node (fraction of its "
            "configured bandwidth)."});
  r.define({"saex.fault.slowTime", c, V::kDurationSeconds, "0s",
            "Simulated time at which the slow node's disk degrades."});
  r.define({"saex.fault.fetchFailProb", c, V::kDouble, "0",
            "Probability an individual remote shuffle fetch is dropped "
            "(transient network fault); the attempt fails and is retried."});
  r.define({"saex.fault.fetchFailNode", c, V::kInt, "-1",
            "Restrict fetchFailProb drops to fetches whose SOURCE is this "
            "node (a flaky NIC); -1 applies the probability to every "
            "remote fetch."});
  r.define({"saex.fault.chaos", c, V::kString, "",
            "Chaos churn schedule: comma/whitespace-separated "
            "kill:<node>@<seconds> and rejoin:<node>@<seconds> events "
            "(# comments allowed); empty disables. See docs/FAULT_MODEL.md."});
  r.define({"saex.storage.policy", c, V::kString, "none",
            "Per-node BlockManager eviction policy: none (no active "
            "eviction; an overflowing write spills its own tail) | lru | "
            "clock | s3fifo | tinylfu."});
  r.define({"saex.storage.memory", c, V::kBytes, "0",
            "Per-node storage budget override; 0 derives it from "
            "spark.memory.fraction x spark.memory.storageFraction (or "
            "spark.storage.memoryFraction under spark.memory.useLegacyMode) "
            "x node memory."});
  r.define({"saex.storage.spillOnEvict", c, V::kBool, "true",
            "Evicted blocks spill to the node's disk (charged to the "
            "simulated device); false drops them, forcing lineage "
            "recompute on the next read."});
  r.define({"saex.storage.shuffleLocality", c, V::kBool, "false",
            "Cache-locality-aware scheduling for reduce tasks: prefer the "
            "node holding the largest share of a task's shuffle fetch plan "
            "(delay scheduling falls back after spark.locality.wait)."});
  r.define({"saex.shard.count", c, V::kInt, "1",
            "Sharded serve path: number of independent driver/scheduler "
            "shards the cluster's nodes are partitioned into (1 = the "
            "single-driver path)."});
  r.define({"saex.shard.workers", c, V::kInt, "1",
            "Worker threads advancing shard kernels; execution-only (any "
            "worker count produces bitwise-identical reports for a fixed "
            "shard count)."});
  r.define({"saex.shard.placement", c, V::kString, "hash",
            "Cross-shard job router: hash (by client id) | least (greedy "
            "least-estimated-load in arrival order) | rr (round-robin)."});
  r.define({"saex.shard.window", c, V::kDurationSeconds, "0s",
            "Conservative synchronization lookahead override; 0 derives it "
            "from the minimum cross-shard network latency (with no "
            "cross-shard channels, shards run to completion independently)."});
  r.define({"saex.aqe.enabled", c, V::kBool, "false",
            "Adaptive query execution (src/aqe/): re-plan shuffle consumer "
            "stages at submission from actual map-output statistics "
            "(partition coalescing + skew splitting). Off keeps every "
            "schedule bitwise identical to the pre-AQE engine."});
  r.define({"saex.aqe.targetPartitionBytes", c, V::kBytes, "64m",
            "Coalesce target: adjacent reduce partitions merge until each "
            "physical task fetches at least this many bytes; also the split "
            "granularity for skewed partitions."});
  r.define({"saex.aqe.skewFactor", c, V::kDouble, "4.0",
            "A reduce partition larger than skewFactor x the median "
            "partition size (and larger than targetPartitionBytes) is split "
            "into range sub-tasks."});
  r.define({"saex.aqe.maxSplits", c, V::kInt, "16",
            "Upper bound on sub-tasks a skewed partition splits into."});
  r.define({"saex.aqe.minPartitions", c, V::kInt, "0",
            "Coalescing never reduces a stage below this many tasks "
            "(0 = spark.default.parallelism)."});
  r.define({"saex.aqe.tuner", c, V::kBool, "false",
            "Per-stage multi-knob tuner: fit service_time = a + b*bytes from "
            "observed tasks, pick the coalesce target minimizing modeled "
            "makespan, and seed executor pool sizes from the best observed "
            "width (composes with saex.executor.policy=dynamic)."});
  r.define({"saex.net.flowBatch", c, V::kBool, "false",
            "Flow-batched shuffle data plane: coalesce every remote block a "
            "reduce task pulls from one source node into a single "
            "network flow (one setup latency, one completion event) instead "
            "of one transfer per chunk per block. Off reproduces the "
            "per-chunk model bitwise; fault drop rolls and open-stream "
            "accounting stay block-granular either way."});
  r.define({"saex.eventLog.enabled", c, V::kBool, "true",
            "Application event log (the spark.eventLog analogue exported by "
            "saexsim --eventlog/--trace). Disable for very long serve "
            "replays: the log grows by several events per task and is "
            "unbounded live memory."});
}

Registry build_registry() {
  Registry r;
  define_shuffle(r);
  define_compression_serialization(r);
  define_memory(r);
  define_execution(r);
  define_network(r);
  define_scheduling(r);
  define_dynamic_allocation(r);
  define_adaptive_extension(r);
  return r;
}

}  // namespace

const Registry& spark_registry() {
  static const Registry registry = build_registry();
  return registry;
}

}  // namespace saex::conf
