#include "conf/config.h"
#include "common/format.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace saex::conf {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

double parse_number(std::string_view text, std::string_view what) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ConfigError(saex::strfmt::format("cannot parse {} from '{}'", what, text));
  }
  return value;
}

// Splits "<number><suffix>" into parts; suffix may be empty.
std::pair<double, std::string> split_suffixed(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '-' || text[i] == '+')) {
    ++i;
  }
  const double num = parse_number(text.substr(0, i), "number");
  return {num, to_lower(text.substr(i))};
}

}  // namespace

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kShuffle: return "Shuffle";
    case Category::kCompressionSerialization: return "Compression and Serialization";
    case Category::kMemoryManagement: return "Memory Management";
    case Category::kExecutionBehavior: return "Execution Behavior";
    case Category::kNetwork: return "Network";
    case Category::kScheduling: return "Scheduling";
    case Category::kDynamicAllocation: return "Dynamic Allocation";
    case Category::kAdaptiveExtension: return "Adaptive Executors (saex extension)";
  }
  return "?";
}

void Registry::define(ParamDef def) {
  auto [it, inserted] = defs_.emplace(def.key, def);
  if (!inserted) throw ConfigError(saex::strfmt::format("duplicate parameter '{}'", def.key));
}

const ParamDef* Registry::find(std::string_view key) const noexcept {
  const auto it = defs_.find(key);
  return it == defs_.end() ? nullptr : &it->second;
}

const ParamDef& Registry::at(std::string_view key) const {
  const ParamDef* def = find(key);
  if (def == nullptr) throw ConfigError(saex::strfmt::format("unknown parameter '{}'", key));
  return *def;
}

std::vector<const ParamDef*> Registry::by_category(Category c) const {
  std::vector<const ParamDef*> out;
  for (const auto& [key, def] : defs_) {
    if (def.category == c) out.push_back(&def);
  }
  return out;
}

size_t Registry::count(Category c) const noexcept {
  size_t n = 0;
  for (const auto& [key, def] : defs_) n += def.category == c ? 1 : 0;
  return n;
}

size_t Registry::functional_count() const noexcept {
  return total_count() - count(Category::kAdaptiveExtension);
}

Bytes parse_bytes(std::string_view text) {
  const auto [num, suffix] = split_suffixed(text);
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "k" || suffix == "kb") {
    mult = 1024.0;
  } else if (suffix == "m" || suffix == "mb") {
    mult = 1024.0 * 1024.0;
  } else if (suffix == "g" || suffix == "gb") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "t" || suffix == "tb") {
    mult = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    throw ConfigError(saex::strfmt::format("unknown byte suffix in '{}'", text));
  }
  return static_cast<Bytes>(num * mult);
}

double parse_duration_seconds(std::string_view text) {
  const auto [num, suffix] = split_suffixed(text);
  if (suffix.empty() || suffix == "s") return num;
  if (suffix == "ms") return num / 1000.0;
  if (suffix == "us") return num / 1e6;
  if (suffix == "min" || suffix == "m") return num * 60.0;
  if (suffix == "h") return num * 3600.0;
  if (suffix == "d") return num * 86400.0;
  throw ConfigError(saex::strfmt::format("unknown duration suffix in '{}'", text));
}

bool parse_bool(std::string_view text) {
  const std::string t = to_lower(text);
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw ConfigError(saex::strfmt::format("cannot parse bool from '{}'", text));
}

Config::Config() : registry_(&spark_registry()) {}
Config::Config(const Registry* registry) : registry_(registry) {}

Config& Config::set(std::string_view key, std::string_view value) {
  const ParamDef& def = registry_->at(key);
  // Validate eagerly so misconfigurations fail at set() time, not mid-run.
  switch (def.type) {
    case ValueType::kBool: parse_bool(value); break;
    case ValueType::kInt: parse_number(value, "int"); break;
    case ValueType::kDouble: parse_number(value, "double"); break;
    case ValueType::kBytes: parse_bytes(value); break;
    case ValueType::kDurationSeconds: parse_duration_seconds(value); break;
    case ValueType::kString: break;
  }
  overrides_.insert_or_assign(std::string(key), std::string(value));
  return *this;
}

Config& Config::set_int(std::string_view key, int64_t value) {
  return set(key, saex::strfmt::format("{}", value));
}
Config& Config::set_bool(std::string_view key, bool value) {
  return set(key, value ? "true" : "false");
}
Config& Config::set_double(std::string_view key, double value) {
  return set(key, saex::strfmt::format("{}", value));
}

bool Config::is_set(std::string_view key) const noexcept {
  return overrides_.find(key) != overrides_.end();
}

std::string Config::raw(std::string_view key) const {
  const auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second;
  return registry_->at(key).default_value;
}

std::string Config::get_string(std::string_view key) const { return raw(key); }

int64_t Config::get_int(std::string_view key) const {
  return static_cast<int64_t>(parse_number(raw(key), "int"));
}

double Config::get_double(std::string_view key) const {
  return parse_number(raw(key), "double");
}

bool Config::get_bool(std::string_view key) const { return parse_bool(raw(key)); }

Bytes Config::get_bytes(std::string_view key) const { return parse_bytes(raw(key)); }

double Config::get_duration_seconds(std::string_view key) const {
  return parse_duration_seconds(raw(key));
}

}  // namespace saex::conf
