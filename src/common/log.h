// Minimal leveled logger.
//
// The library is used both from deterministic simulations (where logging is
// normally off) and from interactive examples (where INFO-level progress is
// useful), so the level is a process-global runtime switch.
#pragma once

#include <string_view>
#include "common/format.h"

namespace saex::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the process-wide minimum level that is emitted.
void set_level(Level level) noexcept;
Level level() noexcept;

/// Emits one line to stderr; used by the macros below.
void emit(Level level, std::string_view msg);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns kInfo for unknown strings.
Level parse_level(std::string_view name) noexcept;

}  // namespace saex::log

#define SAEX_LOG(lvl, ...)                                       \
  do {                                                           \
    if (static_cast<int>(lvl) >=                                 \
        static_cast<int>(::saex::log::level())) {                \
      ::saex::log::emit((lvl), saex::strfmt::format(__VA_ARGS__));        \
    }                                                            \
  } while (0)

#define SAEX_TRACE(...) SAEX_LOG(::saex::log::Level::kTrace, __VA_ARGS__)
#define SAEX_DEBUG(...) SAEX_LOG(::saex::log::Level::kDebug, __VA_ARGS__)
#define SAEX_INFO(...) SAEX_LOG(::saex::log::Level::kInfo, __VA_ARGS__)
#define SAEX_WARN(...) SAEX_LOG(::saex::log::Level::kWarn, __VA_ARGS__)
#define SAEX_ERROR(...) SAEX_LOG(::saex::log::Level::kError, __VA_ARGS__)
