#include "common/units.h"
#include "common/format.h"

#include <cmath>

namespace saex {

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b);
  if (std::llabs(b) >= kGiB) return saex::strfmt::format("{:.2f} GiB", v / static_cast<double>(kGiB));
  if (std::llabs(b) >= kMiB) return saex::strfmt::format("{:.2f} MiB", v / static_cast<double>(kMiB));
  if (std::llabs(b) >= kKiB) return saex::strfmt::format("{:.2f} KiB", v / static_cast<double>(kKiB));
  return saex::strfmt::format("{} B", b);
}

std::string format_rate(double bytes_per_sec) {
  if (bytes_per_sec >= 1e9) return saex::strfmt::format("{:.2f} GB/s", bytes_per_sec / 1e9);
  if (bytes_per_sec >= 1e6) return saex::strfmt::format("{:.1f} MB/s", bytes_per_sec / 1e6);
  if (bytes_per_sec >= 1e3) return saex::strfmt::format("{:.1f} KB/s", bytes_per_sec / 1e3);
  return saex::strfmt::format("{:.0f} B/s", bytes_per_sec);
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 60.0) return saex::strfmt::format("{:.1f}s", seconds);
  const int64_t total = static_cast<int64_t>(std::llround(seconds));
  if (total < 3600) return saex::strfmt::format("{}m{:02}s", total / 60, total % 60);
  return saex::strfmt::format("{}h{:02}m", total / 3600, (total % 3600) / 60);
}

std::string format_percent(double fraction) {
  return saex::strfmt::format("{:.1f}%", fraction * 100.0);
}

}  // namespace saex
