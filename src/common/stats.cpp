#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace saex {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double time_weighted_mean(const std::vector<std::pair<double, double>>& points,
                          double t0, double t1) {
  if (points.empty() || t1 <= t0) return 0.0;
  double area = 0.0;
  double prev_t = t0;
  double prev_v = points.front().second;
  for (const auto& [t, v] : points) {
    if (t <= t0) {
      prev_v = v;
      continue;
    }
    const double seg_end = std::min(t, t1);
    if (seg_end > prev_t) area += prev_v * (seg_end - prev_t);
    prev_t = seg_end;
    prev_v = v;
    if (t >= t1) break;
  }
  if (prev_t < t1) area += prev_v * (t1 - prev_t);
  return area / (t1 - t0);
}

}  // namespace saex
