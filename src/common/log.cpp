#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <string>

namespace saex::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;

constexpr const char* kLevelNames[] = {"TRACE", "DEBUG", "INFO",
                                       "WARN",  "ERROR", "OFF"};

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void emit(Level level, std::string_view msg) {
  const std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", kLevelNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

Level parse_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return Level::kTrace;
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  return Level::kInfo;
}

}  // namespace saex::log
