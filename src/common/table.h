// ASCII table / bar-chart rendering for bench harness output.
//
// The bench binaries regenerate the paper's tables and figures as text; this
// keeps the output self-contained and diff-able (EXPERIMENTS.md records it).
#pragma once

#include <string>
#include <vector>

namespace saex {

/// Simple column-aligned table. Column count is fixed by the header row;
/// rows with fewer cells are padded with empty strings.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector encodes a rule
};

/// Horizontal ASCII bar: value scaled against max onto `width` cells.
std::string ascii_bar(double value, double max_value, int width = 40,
                      char fill = '#');

/// One-line sparkline over the series using block characters.
std::string sparkline(const std::vector<double>& series);

}  // namespace saex
