// Small statistics helpers used by metrics rollups and bench reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace saex {

/// Streaming mean/variance (Welford). O(1) memory; numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a stored sample (copies + sorts on query).
/// q in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double q);

/// Time-weighted average of a piecewise-constant signal described by
/// (timestamp, value) change points over [t0, t1]. The signal holds its last
/// value until the next change point.
double time_weighted_mean(const std::vector<std::pair<double, double>>& points,
                          double t0, double t1);

}  // namespace saex
