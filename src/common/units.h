// Byte/time unit helpers and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>

namespace saex {

using Bytes = int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes kib(double v) noexcept { return static_cast<Bytes>(v * static_cast<double>(kKiB)); }
constexpr Bytes mib(double v) noexcept { return static_cast<Bytes>(v * static_cast<double>(kMiB)); }
constexpr Bytes gib(double v) noexcept { return static_cast<Bytes>(v * static_cast<double>(kGiB)); }

/// "1.25 GiB", "640.00 MiB", ...
std::string format_bytes(Bytes b);

/// Bytes-per-second as "213.4 MB/s" (decimal MB, matching iostat style).
std::string format_rate(double bytes_per_sec);

/// Seconds as "12.3s" / "3m42s" / "1h02m".
std::string format_duration(double seconds);

/// Percent with one decimal: "34.4%".
std::string format_percent(double fraction);

}  // namespace saex
