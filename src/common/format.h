// Minimal {}-style string formatting (std::format subset).
//
// The toolchain (GCC 12) predates std::format, so this header provides the
// subset the project uses: positional "{}" placeholders with optional
// printf-like specs — "{:.2f}", "{:.4g}", "{:03}", "{:5}" — plus "{{"/"}}"
// escapes. Unknown specs fall back to the type's default rendering rather
// than throwing: formatting is used in logging/reporting paths where a
// best-effort string beats an exception.
#pragma once

#include <array>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace saex::strfmt {
namespace detail {

inline std::string printf_str(const char* spec, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string printf_str(const char* spec, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, spec);
  const int n = vsnprintf(buf, sizeof(buf), spec, ap);
  va_end(ap);
  if (n < 0) return {};
  if (static_cast<size_t>(n) < sizeof(buf)) return std::string(buf, static_cast<size_t>(n));
  std::string out(static_cast<size_t>(n), '\0');
  va_start(ap, spec);
  vsnprintf(out.data(), out.size() + 1, spec, ap);
  va_end(ap);
  return out;
}

// spec is the part after ':' (may be empty). [flags][width][.prec][f|g|e]
// is honored for floats; [flags][width] for integers, where flags are the
// printf sign/zero-pad flags.
inline bool spec_is(std::string_view spec, std::string_view allowed_tail) {
  if (spec.empty()) return false;
  bool leading = true;
  for (char c : spec.substr(0, spec.size() - 1)) {
    if (leading && (c == '+' || c == '-' || c == ' ')) continue;
    leading = false;
    if ((c < '0' || c > '9') && c != '.') return false;
  }
  return allowed_tail.find(spec.back()) != std::string_view::npos;
}

inline bool spec_numeric_only(std::string_view spec) {
  if (spec.empty()) return false;
  bool leading = true;
  for (char c : spec) {
    if (leading && (c == '+' || c == '-' || c == ' ')) continue;
    leading = false;
    if (c < '0' || c > '9') return false;
  }
  return true;
}

inline std::string format_arg(double v, std::string_view spec) {
  if (spec_is(spec, "fgeFGE")) {
    const std::string s = "%" + std::string(spec);
    return printf_str(s.c_str(), v);
  }
  return printf_str("%g", v);
}

inline std::string format_arg(float v, std::string_view spec) {
  return format_arg(static_cast<double>(v), spec);
}

inline std::string format_arg(bool v, std::string_view /*spec*/) {
  return v ? "true" : "false";
}

template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
inline std::string format_arg(T v, std::string_view spec) {
  std::string pf = "%";
  if (spec_numeric_only(spec)) pf += std::string(spec);
  if constexpr (std::is_signed_v<T>) {
    pf += "lld";
    return printf_str(pf.c_str(), static_cast<long long>(v));
  } else {
    pf += "llu";
    return printf_str(pf.c_str(), static_cast<unsigned long long>(v));
  }
}

inline std::string format_arg(const std::string& v, std::string_view) { return v; }
inline std::string format_arg(std::string_view v, std::string_view) {
  return std::string(v);
}
inline std::string format_arg(const char* v, std::string_view) {
  return v != nullptr ? std::string(v) : std::string("(null)");
}

}  // namespace detail

/// Formats `fmt` with "{}"-style placeholders. Extra placeholders render as
/// "{}"; extra arguments are ignored (best-effort semantics).
template <typename... Args>
std::string format(std::string_view fmt, const Args&... args) {
  std::array<std::string (*)(const void*, std::string_view), sizeof...(Args)>
      fns{+[](const void* p, std::string_view spec) {
        return detail::format_arg(*static_cast<const Args*>(p), spec);
      }...};
  std::array<const void*, sizeof...(Args)> ptrs{static_cast<const void*>(&args)...};

  std::string out;
  out.reserve(fmt.size() + sizeof...(Args) * 8);
  size_t arg_idx = 0;
  for (size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        ++i;
        continue;
      }
      const size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        out.append(fmt.substr(i));
        break;
      }
      std::string_view inner = fmt.substr(i + 1, close - i - 1);
      std::string_view spec;
      if (const size_t colon = inner.find(':'); colon != std::string_view::npos) {
        spec = inner.substr(colon + 1);
      }
      if (arg_idx < sizeof...(Args)) {
        out += fns[arg_idx](ptrs[arg_idx], spec);
        ++arg_idx;
      } else {
        out += "{}";
      }
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out.push_back('}');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace saex::strfmt
