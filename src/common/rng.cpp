#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace saex {
namespace {

uint64_t splitmix64(uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

// FNV-1a, used to turn fork tags into seed perturbations.
uint64_t fnv1a(std::string_view s) noexcept {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(uint64_t seed) noexcept {
  uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
}

uint64_t Rng::next_u64() noexcept {
  // xoshiro256**
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) noexcept {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::chance(double p) noexcept { return next_double() < p; }

Rng Rng::fork(std::string_view tag) const noexcept { return fork(fnv1a(tag)); }

Rng Rng::fork(uint64_t tag) const noexcept {
  // Mix the current state with the tag; const_cast-free by copying.
  uint64_t x = state_[0] ^ rotl(state_[2], 13) ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(x));
}

}  // namespace saex
