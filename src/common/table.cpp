#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace saex {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }

  auto render_rule = [&](std::ostringstream& out) {
    out << '+';
    for (size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto render_cells = [&](std::ostringstream& out, const std::vector<std::string>& cells) {
    out << '|';
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out << ' ' << c << std::string(widths[i] - c.size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  render_rule(out);
  render_cells(out, header_);
  render_rule(out);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(out);
    } else {
      render_cells(out, row);
    }
  }
  render_rule(out);
  return out.str();
}

std::string ascii_bar(double value, double max_value, int width, char fill) {
  if (max_value <= 0.0 || width <= 0) return {};
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int n = static_cast<int>(std::lround(frac * width));
  return std::string(static_cast<size_t>(n), fill);
}

std::string sparkline(const std::vector<double>& series) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty()) return {};
  double lo = series.front(), hi = series.front();
  for (double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : series) {
    int idx = 0;
    if (hi > lo) idx = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
    out += kBlocks[std::clamp(idx, 0, 7)];
  }
  return out;
}

}  // namespace saex
