// Deterministic random source used throughout the simulator.
//
// All stochastic behaviour (node heterogeneity, workload skew, arrival
// jitter) flows through SplitMix64-seeded xoshiro256**, so a run is fully
// reproducible from a single 64-bit seed. Child generators derived with
// fork(tag) are independent streams, which keeps module-level randomness
// stable when unrelated modules add or remove draws.
#pragma once

#include <cstdint>
#include <string_view>

namespace saex {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t uniform_int(int64_t lo, int64_t hi) noexcept;

  /// Standard normal via Box-Muller (no cached second value, to keep the
  /// stream position independent of call pattern).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given mean (not rate).
  double exponential(double mean) noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Independent child stream identified by a tag; deterministic in
  /// (parent seed, tag).
  Rng fork(std::string_view tag) const noexcept;
  Rng fork(uint64_t tag) const noexcept;

 private:
  uint64_t state_[4];
};

}  // namespace saex
