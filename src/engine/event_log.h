// Application event log — the engine's analogue of Spark's event log
// (gated by saex.eventLog.enabled): a flat record of job/stage/task/resize
// events that tools can post-process. Two export formats:
//
//  * JSON lines, one event per line (Spark-history-server style)
//  * Chrome trace format (chrome://tracing / Perfetto), with one process
//    per node and tasks as complete ("X") events — the quickest way to *see*
//    an adaptive executor throttle its concurrency mid-job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace saex::engine {

enum class EventKind {
  kJobStart,
  kJobEnd,
  kStageStart,
  kStageEnd,
  kTaskStart,
  kTaskEnd,
  kTaskFailed,
  kPoolResize,
  kSpeculativeLaunch,
  // saex::serve (multi-tenant job server) events.
  kJobSubmitted,       // value = admission outcome (serve::Admission)
  kJobRejected,        // value = admission outcome
  kJobDequeued,        // left the admission queue and started running
  kExecutorGranted,    // dynamic allocation activated this executor
  kExecutorReleased,   // dynamic allocation idle-timed-out this executor
  // saex::fault (failure injection and recovery) events.
  kExecutorLost,       // executor killed; node = victim
  kFetchFailed,        // shuffle fetch failed; node = source, value = shuffle
  kStageResubmitted,   // lineage recovery; value = recomputed partitions
  // saex::aqe (adaptive query execution) events.
  kStageReplanned,     // AQE re-tiled a reduce stage; value = new task count
  kDiskDegraded,       // slow-node injection; value = factor in percent
  // saex::resilience (deadlines, retries, node health) events.
  kExecutorRevived,    // chaos rejoin; node = fresh executor's node id
  kNodeQuarantined,    // health breaker opened; node = quarantined node
  kNodeReinstated,     // breaker half-open; node is schedulable (probing)
  kJobShed,            // queued job's deadline lapsed before it started
  kJobCancelled,       // running job cancelled at its deadline
  kJobRetried,         // failed job re-enqueued; value = retry attempt
};

std::string_view event_kind_name(EventKind kind) noexcept;

struct Event {
  EventKind kind{};
  double time = 0.0;     // simulated seconds
  int job = -1;
  int stage = -1;        // application stage ordinal
  int partition = -1;
  int node = -1;
  int64_t value = 0;     // kind-specific: threads for resizes, bytes for tasks
  std::string label;     // stage/app name where useful
};

class EventLog {
 public:
  void record(Event event) {
    if (enabled_) events_.push_back(std::move(event));
  }

  /// saex.eventLog.enabled. Disabled, record() is a no-op: the log grows by
  /// several task/stage events per task, which is unbounded live memory on a
  /// long serve replay (a 100k-job trace accumulates ~10^8 events).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  const std::vector<Event>& events() const noexcept { return events_; }
  size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events of one kind, in order.
  std::vector<Event> of_kind(EventKind kind) const;

  /// One JSON object per line.
  std::string to_json_lines() const;

  /// Chrome trace JSON (array form). Tasks become duration events grouped
  /// by node; pool resizes become counter events so the thread-count
  /// staircase is visible on the timeline.
  std::string to_chrome_trace() const;

  /// Writes `content` produced by either exporter; returns false on I/O
  /// failure.
  static bool write_file(const std::string& path, const std::string& content);

 private:
  std::vector<Event> events_;
  bool enabled_ = true;
};

}  // namespace saex::engine
