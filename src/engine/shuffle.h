// Shuffle bookkeeping: map-output registry and reduce-side fetch planning.
//
// Map tasks write their shuffle output to the local disk (like Spark's
// sort-based shuffle) and register the byte count here. A reduce task for
// partition r fetches 1/R of every map node's output: the local share is a
// disk read, remote shares are a remote disk read + network transfer.
//
// Registration is per map partition with first-commit-wins semantics, as in
// Spark's MapOutputTracker: when speculation races two copies of the same
// map task, only the first StatusUpdate commits its output — the loser's
// bytes are discarded, never double-counted. Losing a node loses every
// partition committed there (on_node_lost), which is what drives
// lineage-based resubmission of the producing stage.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/units.h"

namespace saex::engine {

class ShuffleManager {
 public:
  explicit ShuffleManager(int num_nodes) : num_nodes_(num_nodes) {}

  /// Commits map `partition`'s output bytes on `node`. Returns false (and
  /// changes nothing) if that partition already has a committed copy — a
  /// losing speculative duplicate.
  bool register_map_output(int shuffle_id, int node, int partition,
                           Bytes bytes);

  /// Bytes reduce partition `partition` (of `num_partitions`) must fetch
  /// from each node. Deterministic: remainder bytes go to low partitions.
  std::vector<Bytes> fetch_plan(int shuffle_id, int partition,
                                int num_partitions) const;

  /// Drops every partition committed on `node` (executor loss). Returns
  /// shuffle id -> the map partitions that must be recomputed, for the
  /// driver's lineage-based stage resubmission.
  std::map<int, std::vector<int>> on_node_lost(int node);

  Bytes total_output(int shuffle_id) const noexcept;
  Bytes node_output(int shuffle_id, int node) const noexcept;
  bool has_shuffle(int shuffle_id) const noexcept {
    return outputs_.find(shuffle_id) != outputs_.end();
  }
  bool partition_committed(int shuffle_id, int partition) const noexcept;
  /// Commits rejected because the partition was already committed (always 0
  /// unless speculation raced two copies past the driver's cancellation).
  int64_t duplicate_commits() const noexcept { return duplicate_commits_; }

 private:
  int num_nodes_;
  std::map<int, std::vector<Bytes>> outputs_;  // shuffle id -> per-node bytes
  // shuffle id -> partition -> (node, bytes) of the committed copy.
  std::map<int, std::map<int, std::pair<int, Bytes>>> commits_;
  int64_t duplicate_commits_ = 0;
};

}  // namespace saex::engine
