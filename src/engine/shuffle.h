// Shuffle bookkeeping: map-output registry and reduce-side fetch planning.
//
// Map tasks write their shuffle output to the local disk (like Spark's
// sort-based shuffle) and register the byte count here. A reduce task for
// partition r fetches 1/R of every map node's output: the local share is a
// disk read, remote shares are a remote disk read + network transfer.
#pragma once

#include <map>
#include <vector>

#include "common/units.h"

namespace saex::engine {

class ShuffleManager {
 public:
  explicit ShuffleManager(int num_nodes) : num_nodes_(num_nodes) {}

  /// Accumulates shuffle bytes written by map tasks on `node`.
  void register_map_output(int shuffle_id, int node, Bytes bytes);

  /// Bytes reduce partition `partition` (of `num_partitions`) must fetch
  /// from each node. Deterministic: remainder bytes go to low partitions.
  std::vector<Bytes> fetch_plan(int shuffle_id, int partition,
                                int num_partitions) const;

  Bytes total_output(int shuffle_id) const noexcept;
  Bytes node_output(int shuffle_id, int node) const noexcept;
  bool has_shuffle(int shuffle_id) const noexcept {
    return outputs_.find(shuffle_id) != outputs_.end();
  }

 private:
  int num_nodes_;
  std::map<int, std::vector<Bytes>> outputs_;  // shuffle id -> per-node bytes
};

}  // namespace saex::engine
