// Shuffle bookkeeping: map-output registry and reduce-side fetch planning.
//
// Map tasks write their shuffle output to the local disk (like Spark's
// sort-based shuffle) and register the byte count here. A reduce task for
// partition r fetches 1/R of every map node's output: the local share is a
// disk read, remote shares are a remote disk read + network transfer.
//
// Registration is per map partition with first-commit-wins semantics, as in
// Spark's MapOutputTracker: when speculation races two copies of the same
// map task, only the first StatusUpdate commits its output — the loser's
// bytes are discarded, never double-counted. Losing a node loses every
// partition committed there (on_node_lost), which is what drives
// lineage-based resubmission of the producing stage.
//
// Reduce-partition weights: by default every reduce partition gets an equal
// share of each node's output (remainder bytes to low partitions). A shuffle
// may instead carry a Zipf skew exponent (ShuffleTraits::skew, registered by
// the driver via set_reduce_skew), under which partition r's weight is
// 1/(r+1)^alpha. Both cases share one cumulative-share formulation, so range
// (coalesced) and sub-range (skew-split) fetch plans are exact: bytes never
// appear or vanish when the AQE layer re-tiles a reduce stage.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/units.h"

namespace saex::engine {

/// One entry of a rotation-ordered fetch plan: `bytes` to pull from `src`.
struct FetchShare {
  int src;
  Bytes bytes;
};

/// Rotation-ordered view of a per-node fetch plan: the non-empty
/// (source node, bytes) pairs a reducer running on `node_id` visits, local
/// share first, then remote nodes in rotating order (node_id + i) % n so
/// fetch load spreads evenly. The single ordering both the per-chunk and
/// the flow-batched (saex.net.flowBatch) fetch paths share — plans, fault
/// rolls, and byte totals agree between the two modes by construction.
std::vector<FetchShare> rotate_fetch_plan(const std::vector<Bytes>& plan,
                                          int node_id);

class ShuffleManager {
 public:
  explicit ShuffleManager(int num_nodes) : num_nodes_(num_nodes) {}

  /// Commits map `partition`'s output bytes on `node`. Returns false (and
  /// changes nothing) if that partition already has a committed copy — a
  /// losing speculative duplicate.
  bool register_map_output(int shuffle_id, int node, int partition,
                           Bytes bytes);

  /// Declares the shuffle's reduce-partition weight profile: partition r
  /// weighs 1/(r+1)^alpha (alpha <= 0 keeps the uniform default). Idempotent;
  /// must be set before the first fetch_plan/stats call for the shuffle.
  void set_reduce_skew(int shuffle_id, double alpha);
  double reduce_skew(int shuffle_id) const noexcept;

  /// Bytes reduce partition `partition` (of `num_partitions`) must fetch
  /// from each node. Deterministic: remainder bytes go to low partitions.
  std::vector<Bytes> fetch_plan(int shuffle_id, int partition,
                                int num_partitions) const;

  /// Slice-aware fetch plan for an AQE-re-tiled reduce stage: the bytes a
  /// task covering original partitions [first, last] — sub-split
  /// `split_index` of `num_splits` when first == last — must fetch from each
  /// node. `num_partitions` is the stage's LOGICAL reduce partition count
  /// (the pre-AQE R). With first == last and num_splits == 1 this is exactly
  /// fetch_plan(first).
  std::vector<Bytes> fetch_plan_slice(int shuffle_id, int first, int last,
                                      int split_index, int num_splits,
                                      int num_partitions) const;

  /// Per-reduce-partition fetch totals (summed over nodes) — the map-output
  /// statistics the AQE planner re-plans from. O(nodes * R), no commit-array
  /// rescans; deterministic for a deterministic replay.
  std::vector<Bytes> reduce_partition_bytes(int shuffle_id,
                                            int num_partitions) const;

  /// Per-MAP-partition committed output bytes (index = map partition,
  /// 0 for uncommitted). A copy of the commit registry exposed as a stats
  /// accessor so callers never walk commit arrays themselves.
  std::vector<Bytes> map_partition_bytes(int shuffle_id) const;

  /// Drops every partition committed on `node` (executor loss). Returns
  /// shuffle id -> the map partitions that must be recomputed, for the
  /// driver's lineage-based stage resubmission.
  std::map<int, std::vector<int>> on_node_lost(int node);

  Bytes total_output(int shuffle_id) const noexcept;
  Bytes node_output(int shuffle_id, int node) const noexcept;
  bool has_shuffle(int shuffle_id) const noexcept {
    // True once any commit was ever registered — node loss may later remove
    // every commit, but the shuffle itself stays known (as with the old
    // outputs_ map, whose entry survived on_node_lost).
    return shuffle_id >= 0 &&
           static_cast<size_t>(shuffle_id) < shuffles_.size() &&
           shuffles_[static_cast<size_t>(shuffle_id)].created;
  }
  bool partition_committed(int shuffle_id, int partition) const noexcept;
  /// Commits rejected because the partition was already committed (always 0
  /// unless speculation raced two copies past the driver's cancellation).
  int64_t duplicate_commits() const noexcept { return duplicate_commits_; }

 private:
  // Shuffle ids are handed out densely from 0 (DagScheduler's counter), so
  // everything is directly indexed: no map hops on the per-task commit and
  // fetch-plan paths.
  struct ShuffleState {
    bool created = false;
    double skew = 0.0;                 // reduce-weight Zipf exponent (0=uniform)
    std::vector<Bytes> per_node;       // committed bytes per node
    std::vector<int32_t> commit_node;  // partition -> node (-1: uncommitted)
    std::vector<Bytes> commit_bytes;   // partition -> committed copy's bytes
    // Lazily built cumulative weight prefix for the skewed case: cum_w[r] =
    // (sum of w_0..w_{r-1}) / (sum of all R weights), size R+1. Rebuilt when
    // a different R is requested (R is fixed per shuffle in practice).
    mutable std::vector<double> cum_w;
  };

  ShuffleState& state_for(int shuffle_id);
  // Bytes of `total` assigned to reduce partitions [0, upto) of R. Exact
  // (cum_share(R) == total), monotone, and for the uniform case bitwise
  // equal to the historical base+remainder split.
  static Bytes cum_share(const ShuffleState& s, Bytes total, int upto, int R);
  static void ensure_weights(const ShuffleState& s, int R);

  int num_nodes_;
  std::vector<ShuffleState> shuffles_;  // indexed by shuffle id
  int64_t duplicate_commits_ = 0;
};

}  // namespace saex::engine
