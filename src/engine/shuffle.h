// Shuffle bookkeeping: map-output registry and reduce-side fetch planning.
//
// Map tasks write their shuffle output to the local disk (like Spark's
// sort-based shuffle) and register the byte count here. A reduce task for
// partition r fetches 1/R of every map node's output: the local share is a
// disk read, remote shares are a remote disk read + network transfer.
//
// Registration is per map partition with first-commit-wins semantics, as in
// Spark's MapOutputTracker: when speculation races two copies of the same
// map task, only the first StatusUpdate commits its output — the loser's
// bytes are discarded, never double-counted. Losing a node loses every
// partition committed there (on_node_lost), which is what drives
// lineage-based resubmission of the producing stage.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/units.h"

namespace saex::engine {

class ShuffleManager {
 public:
  explicit ShuffleManager(int num_nodes) : num_nodes_(num_nodes) {}

  /// Commits map `partition`'s output bytes on `node`. Returns false (and
  /// changes nothing) if that partition already has a committed copy — a
  /// losing speculative duplicate.
  bool register_map_output(int shuffle_id, int node, int partition,
                           Bytes bytes);

  /// Bytes reduce partition `partition` (of `num_partitions`) must fetch
  /// from each node. Deterministic: remainder bytes go to low partitions.
  std::vector<Bytes> fetch_plan(int shuffle_id, int partition,
                                int num_partitions) const;

  /// Drops every partition committed on `node` (executor loss). Returns
  /// shuffle id -> the map partitions that must be recomputed, for the
  /// driver's lineage-based stage resubmission.
  std::map<int, std::vector<int>> on_node_lost(int node);

  Bytes total_output(int shuffle_id) const noexcept;
  Bytes node_output(int shuffle_id, int node) const noexcept;
  bool has_shuffle(int shuffle_id) const noexcept {
    // True once any commit was ever registered — node loss may later remove
    // every commit, but the shuffle itself stays known (as with the old
    // outputs_ map, whose entry survived on_node_lost).
    return shuffle_id >= 0 &&
           static_cast<size_t>(shuffle_id) < shuffles_.size() &&
           shuffles_[static_cast<size_t>(shuffle_id)].created;
  }
  bool partition_committed(int shuffle_id, int partition) const noexcept;
  /// Commits rejected because the partition was already committed (always 0
  /// unless speculation raced two copies past the driver's cancellation).
  int64_t duplicate_commits() const noexcept { return duplicate_commits_; }

 private:
  // Shuffle ids are handed out densely from 0 (DagScheduler's counter), so
  // everything is directly indexed: no map hops on the per-task commit and
  // fetch-plan paths.
  struct ShuffleState {
    bool created = false;
    std::vector<Bytes> per_node;       // committed bytes per node
    std::vector<int32_t> commit_node;  // partition -> node (-1: uncommitted)
    std::vector<Bytes> commit_bytes;   // partition -> committed copy's bytes
  };

  ShuffleState& state_for(int shuffle_id);

  int num_nodes_;
  std::vector<ShuffleState> shuffles_;  // indexed by shuffle id
  int64_t duplicate_commits_ = 0;
};

}  // namespace saex::engine
