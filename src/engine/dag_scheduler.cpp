#include "engine/dag_scheduler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/format.h"
#include "common/log.h"

namespace saex::engine {
namespace {

constexpr double kBytesPerMib = static_cast<double>(kMiB);

struct Chain {
  // source → sink order after collection.
  std::vector<RddNodeRef> nodes;
  // What feeds the chain from below.
  StageSource source = StageSource::kNone;
  RddNodeRef boundary = nullptr;  // shuffle node (or join parents via
                                  // nodes.front())
  int cached_id = -1;
};

}  // namespace

DagScheduler::DagScheduler(const dfs::Dfs& dfs, int default_parallelism)
    : dfs_(&dfs), default_parallelism_(default_parallelism) {}

JobPlan DagScheduler::build(const Rdd& final) {
  if (!final.valid()) throw std::runtime_error("empty plan");
  JobPlan plan;
  build_stage_for(final.node(), plan.stages);
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    plan.stages[i].ordinal = static_cast<int>(i);
  }
  return plan;
}

// Collects the narrow chain that ends (at the top) in `top`, stopping at a
// stage boundary below. Returns nodes in source→sink order.
static Chain collect_chain(const RddNodeRef& top,
                           const std::map<int, int>& cache_by_node) {
  Chain chain;
  RddNodeRef cur = top;
  while (true) {
    if (cur->kind == OpKind::kCache) {
      const auto it = cache_by_node.find(cur->id);
      if (it != cache_by_node.end()) {
        // Already materialized by an earlier stage: read from cache.
        chain.source = StageSource::kCached;
        chain.cached_id = it->second;
        break;
      }
    }
    chain.nodes.push_back(cur);
    if (cur->kind == OpKind::kTextFile) {
      chain.source = StageSource::kDfs;
      break;
    }
    if (cur->kind == OpKind::kJoin) {
      chain.source = StageSource::kShuffle;  // both parents shuffled
      break;
    }
    assert(!cur->parents.empty());
    const RddNodeRef& parent = cur->parents.front();
    if (parent->kind == OpKind::kShuffle) {
      chain.source = StageSource::kShuffle;
      chain.boundary = parent;
      break;
    }
    cur = parent;
  }
  std::reverse(chain.nodes.begin(), chain.nodes.end());
  return chain;
}

int DagScheduler::materialize_shuffle(const RddNodeRef& node,
                                      std::vector<Stage>& out, double skew) {
  const auto it = shuffle_by_node_.find(node->id);
  if (it != shuffle_by_node_.end()) return it->second;

  const int shuffle_id = next_shuffle_id_++;
  shuffle_by_node_.emplace(node->id, shuffle_id);

  // Build the producing stage: the chain that ends in `node`. For an
  // explicit kShuffle node the chain includes it (map-side cost); for any
  // other node (a join input that is not pre-shuffled) we create an implicit
  // full shuffle of its output.
  const int producer_uid = build_stage_for(node, out);
  Stage& producer = *std::find_if(out.begin(), out.end(), [&](const Stage& s) {
    return s.uid == producer_uid;
  });
  producer.sink = StageSink::kShuffleWrite;
  producer.out_shuffle_id = shuffle_id;
  producer.out_skew = skew;
  shuffle_producer_.emplace(shuffle_id, producer_uid);
  shuffle_bytes_.emplace(shuffle_id, producer.output_bytes());
  return shuffle_id;
}

int DagScheduler::build_stage_for(const RddNodeRef& node,
                                  std::vector<Stage>& out) {
  const auto existing = stage_by_node_.find(node->id);
  if (existing != stage_by_node_.end()) return existing->second;

  Chain chain = collect_chain(node, cache_by_node_);

  Stage stage;
  stage.uid = next_stage_uid_++;
  stage.source = chain.source;

  if (chain.nodes.empty()) {
    // Pure passthrough of an already-cached RDD (e.g. a cached join input
    // being re-shuffled): no operators, all bytes forwarded.
    assert(chain.source == StageSource::kCached);
    const CacheInfo& info = caches_.at(chain.cached_id);
    stage.in_cache_id = chain.cached_id;
    stage.input_bytes = info.bytes;
    stage.num_tasks = info.partitions;
    stage.parent_uids.push_back(info.producer_uid);
    stage.name = "cached..shuffleWrite";
    stage_by_node_.emplace(node->id, stage.uid);
    out.push_back(stage);
    return stage.uid;
  }

  // Resolve the stage's input before aggregating costs.
  switch (chain.source) {
    case StageSource::kDfs: {
      const RddNodeRef& src = chain.nodes.front();
      const dfs::FileInfo* file = dfs_->lookup(src->input_path);
      if (file == nullptr) {
        throw std::runtime_error(
            strfmt::format("input file '{}' does not exist", src->input_path));
      }
      stage.input_path = src->input_path;
      stage.input_bytes = file->size;
      stage.num_tasks = static_cast<int>(file->blocks.size());
      break;
    }
    case StageSource::kShuffle: {
      const RddNodeRef& bottom = chain.nodes.front();
      int partitions = bottom->num_partitions;
      if (bottom->kind == OpKind::kJoin) {
        for (const RddNodeRef& parent : bottom->parents) {
          const int sid =
              materialize_shuffle(parent, out, bottom->shuffle_traits.skew);
          stage.in_shuffle_ids.push_back(sid);
        }
        stage.spill_fraction = bottom->shuffle_traits.spill_fraction;
        stage.scatter = bottom->shuffle_traits.scatter;
      } else {
        assert(chain.boundary && chain.boundary->kind == OpKind::kShuffle);
        stage.in_shuffle_ids.push_back(materialize_shuffle(
            chain.boundary, out, chain.boundary->shuffle_traits.skew));
        partitions = chain.boundary->num_partitions;
        stage.spill_fraction = chain.boundary->shuffle_traits.spill_fraction;
        stage.scatter = chain.boundary->shuffle_traits.scatter;
      }
      Bytes total = 0;
      for (const int sid : stage.in_shuffle_ids) {
        // The producer may belong to an earlier job (memoized shuffle);
        // its output size was recorded at materialization time.
        total += shuffle_bytes_.at(sid);
        stage.parent_uids.push_back(shuffle_producer_.at(sid));
      }
      stage.input_bytes = total;
      stage.num_tasks = partitions > 0 ? partitions : default_parallelism_;
      stage.reduce_partitions = stage.num_tasks;
      break;
    }
    case StageSource::kCached: {
      const CacheInfo& info = caches_.at(chain.cached_id);
      stage.in_cache_id = chain.cached_id;
      stage.input_bytes = info.bytes;
      stage.num_tasks = info.partitions;
      stage.parent_uids.push_back(info.producer_uid);
      break;
    }
    case StageSource::kNone:
      throw std::runtime_error("plan chain has no data source");
  }

  // Fold the narrow chain into stage aggregates.
  double ratio = 1.0;
  double cpu = 0.0;
  for (const RddNodeRef& op : chain.nodes) {
    switch (op->kind) {
      case OpKind::kTextFile:
        stage.io_tagged = true;
        break;
      case OpKind::kNarrow:
      case OpKind::kShuffle:  // map-side cost of the terminating shuffle
      case OpKind::kJoin:     // reduce-side cost of the originating join
        cpu += op->cost.cpu_seconds_per_mib * ratio;
        ratio *= op->cost.output_ratio;
        break;
      case OpKind::kCache: {
        const int cache_id = next_cache_id_++;
        cache_by_node_.emplace(op->id, cache_id);
        stage.cache_out_id = cache_id;
        stage.cache_ratio = ratio;
        caches_.emplace(
            cache_id,
            CacheInfo{stage.num_tasks,
                      static_cast<Bytes>(static_cast<double>(stage.input_bytes) * ratio),
                      stage.uid});
        break;
      }
      case OpKind::kSaveFile:
        stage.io_tagged = true;
        stage.sink = StageSink::kDfsWrite;
        stage.out_path = op->output_path;
        stage.out_replication = op->output_replication;
        break;
      case OpKind::kCollect:
        stage.sink = StageSink::kDriver;
        ratio = 0.0;  // negligible result returned to the driver
        break;
    }
  }
  stage.cpu_seconds_per_input_mib = cpu;
  stage.output_ratio = ratio;
  stage.name = strfmt::format("{}..{}", chain.nodes.front()->name,
                              chain.nodes.back()->name);

  stage_by_node_.emplace(node->id, stage.uid);
  out.push_back(stage);
  SAEX_DEBUG("stage uid={} '{}' tasks={} in={} ratio={:.3f} io={}", stage.uid,
             stage.name, stage.num_tasks, stage.input_bytes, stage.output_ratio,
             stage.io_tagged);
  return stage.uid;
}

}  // namespace saex::engine
