// Simulated Spark executor: one per node, owning a resizable pool of task
// slots, the task execution state machine, the I/O accounting the MAPE-K
// loop senses, and the thread policy that resizes the pool.
//
// A running task alternates chunked blocking I/O (DFS reads, shuffle
// fetches, shuffle/DFS writes) with compute on the node's cores — the
// closed-loop structure that makes thread count interact with disk
// contention. Time spent blocked on I/O completions accumulates as the
// paper's "epoll wait time" ε; bytes moved accumulate as the numerator
// of throughput µ.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "adaptive/policies.h"
#include "adaptive/types.h"
#include "dfs/dfs.h"
#include "engine/shuffle.h"
#include "fault/fault.h"
#include "engine/stage.h"
#include "hw/cluster.h"
#include "metrics/io_accounting.h"
#include "common/rng.h"
#include "engine/event_log.h"
#include "metrics/timeseries.h"
#include "storage/block_manager.h"

namespace saex::engine {

/// Where cached RDD partitions live at runtime (the cluster-wide block
/// directory; per-node budgets and eviction live in storage::BlockManager).
class CacheRegistry {
 public:
  struct Partition {
    int node = -1;
    Bytes mem_bytes = 0;
    Bytes spilled_bytes = 0;
    // Evicted without spilling (saex.storage.spillOnEvict=false): the data
    // is gone and the partition must be recomputed from lineage before the
    // next read.
    bool dropped = false;
  };

  /// Registers a cache. Idempotent for a matching partition count; a
  /// *different* count for an existing id throws std::logic_error (silently
  /// resizing would drop live partition state).
  void init(int cache_id, int partitions);
  bool has(int cache_id) const noexcept {
    return parts_.find(cache_id) != parts_.end();
  }
  Partition& partition(int cache_id, int p) {
    return parts_.at(cache_id).at(static_cast<size_t>(p));
  }
  const Partition& partition(int cache_id, int p) const {
    return parts_.at(cache_id).at(static_cast<size_t>(p));
  }

 private:
  std::map<int, std::vector<Partition>> parts_;
};

/// Shared references every executor needs.
struct EngineEnv {
  sim::Simulation* sim = nullptr;
  hw::Cluster* cluster = nullptr;
  dfs::Dfs* dfs = nullptr;
  ShuffleManager* shuffles = nullptr;
  CacheRegistry* caches = nullptr;
  Bytes io_chunk = mib(4);  // granularity of blocking I/O requests
  // Per-node storage budget for cached RDDs (spark.memory.fraction ×
  // spark.memory.storageFraction × node memory); overflow spills to disk.
  // Used directly only when `storage` is null (legacy path, unit rigs).
  Bytes storage_budget = 0;
  // Per-node BlockManagers (budget + eviction policy + hit/miss counters).
  // Null falls back to the legacy storage_budget arithmetic above.
  storage::StorageManager* storage = nullptr;
  // Fraction of local shuffle reads served by the OS page cache (the map
  // output was just written); the rest hits the disk.
  double shuffle_cache_fraction = 0.15;
  // Concurrent in-flight fetches per reduce task (Spark fetches shuffle
  // blocks from several hosts at once, spark.reducer.maxSizeInFlight).
  int fetch_parallelism = 2;
  // Flow-batched network data plane (saex.net.flowBatch): coalesce every
  // shuffle block a reduce task pulls from one source node into a single
  // hw::Network flow (one setup latency, one completion) instead of one
  // transfer per io_chunk per block; up to fetch_parallelism flow segments
  // stay in flight per task, as in per-chunk mode. Off reproduces the
  // per-chunk model bitwise; fault rolls and open-stream accounting stay
  // block-granular either way.
  bool net_flow_batch = false;
  // Fault injection: probability that a task attempt fails partway through
  // (saex.sim.taskFailureProb). Deterministic per (cluster seed, node, task).
  double task_failure_prob = 0.0;
  // One pathologically flaky node (saex.sim.flakyNode >= 0) with its own
  // failure probability; exercises blacklisting.
  int flaky_node = -1;
  double flaky_node_failure_prob = 0.0;
  // Fault truth shared across the cluster (saex::fault): dead executors and
  // seeded shuffle-fetch drops. Null disables every fault check.
  fault::FaultState* fault = nullptr;
  // Optional application event log (owned by the SparkContext).
  EventLog* event_log = nullptr;
};

/// Why a task attempt failed; drives the driver's recovery decision.
enum class TaskFailure {
  kNone,          // success
  kInjected,      // the attempt itself died (saex.sim.taskFailureProb):
                  // charged against spark.task.maxFailures
  kExecutorLost,  // the executor died under it: free retry elsewhere
  kFetchFailed,   // a shuffle/cache fetch failed: the driver decides whether
                  // the source data is gone (lineage recovery) or the drop
                  // was transient (charged retry)
};

struct TaskOutcome {
  bool success = true;
  TaskFailure failure = TaskFailure::kNone;
  int fetch_src = -1;      // kFetchFailed: node the fetch targeted
  int fetch_shuffle = -1;  // kFetchFailed: shuffle id (-1: cached data)
};

class ExecutorRuntime final : public adaptive::PoolEffector,
                              public adaptive::Sensor {
 public:
  /// Completion callback; `outcome.success` is false when the attempt
  /// failed and the driver should decide how (whether) to retry it.
  using TaskDone = std::function<void(const TaskSpec&, const TaskOutcome&)>;

  ExecutorRuntime(EngineEnv env, int node_id, int virtual_cores);
  ~ExecutorRuntime() override;
  ExecutorRuntime(const ExecutorRuntime&) = delete;
  ExecutorRuntime& operator=(const ExecutorRuntime&) = delete;

  // adaptive::PoolEffector — the [E]xecute phase's effector.
  void set_pool_size(int threads) override;
  int pool_size() const override { return pool_target_; }

  // adaptive::Sensor — the [M]onitor phase's sensor.
  adaptive::IoSample sample() override;

  void set_policy(std::unique_ptr<adaptive::ThreadPolicy> policy);
  adaptive::ThreadPolicy& policy() { return *policy_; }
  const adaptive::ThreadPolicy& policy() const { return *policy_; }

  int node_id() const noexcept { return node_id_; }
  int virtual_cores() const noexcept { return virtual_cores_; }
  int running() const noexcept { return running_; }
  bool has_free_slot() const noexcept { return running_ < pool_target_; }

  /// Starts a task; `on_done` fires (executor-side) at completion.
  void launch(const TaskSpec& spec, const Stage& stage, TaskDone on_done);

  /// Kills running attempts of stage `stage_uid`'s `partition` (speculation
  /// losers). The attempt drains its in-flight I/O and reports failure; the
  /// driver ignores the result since the partition is already done. Keyed by
  /// (stage, partition) because concurrent jobs share the executor.
  void cancel_task(int stage_uid, int partition);

  /// Fault injection: the executor process dies. Every running attempt
  /// drains and reports TaskFailure::kExecutorLost; tasks launched at a dead
  /// executor (messages in flight at kill time) fail the same way. The
  /// executor never comes back — mark it dead in the scheduler too.
  void kill();
  /// Chaos rejoin: a fresh, empty executor process replaces the killed one
  /// on the same node id (storage and shuffle state were dropped at kill
  /// time). No-op on a live executor.
  void revive();
  bool alive() const noexcept { return alive_; }

  /// Reserves cache-storage memory for one chunk of `(cache_id, partition)`;
  /// returns the granted amount (the rest must spill to disk through the
  /// caller's write channel). When a BlockManager is attached, the eviction
  /// policy may free committed blocks to make room — victims move to disk
  /// (a background write charged to this node's device) or are dropped for
  /// lineage recompute, and the CacheRegistry is updated either way.
  Bytes reserve_storage(int cache_id, int partition, Bytes bytes);
  Bytes storage_used() const noexcept { return storage_used_; }

  const metrics::IoCounters& io_counters() const noexcept {
    return io_.snapshot();
  }
  /// Per-second I/O throughput series (Fig. 12).
  const metrics::RateSeries& io_series() const noexcept { return io_series_; }
  /// Pool-size change history (Fig. 6 timelines).
  const metrics::TimeSeries& pool_history() const noexcept {
    return pool_history_;
  }

 private:
  struct TaskRun;

  void finish_task(TaskRun* run, const TaskOutcome& outcome);
  hw::Node& node() noexcept { return env_.cluster->node(node_id_); }

  EngineEnv env_;
  int node_id_;
  int virtual_cores_;
  int pool_target_;
  int running_ = 0;
  bool alive_ = true;
  Bytes storage_used_ = 0;
  std::unique_ptr<adaptive::ThreadPolicy> policy_;
  metrics::IoAccounting io_;
  metrics::RateSeries io_series_{1.0};
  metrics::TimeSeries pool_history_;
  Rng failure_rng_{0};
  std::list<std::unique_ptr<TaskRun>> active_;
};

}  // namespace saex::engine
