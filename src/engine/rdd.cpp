#include "engine/plan.h"

#include <cassert>
#include <utility>

namespace saex::engine {

Rdd PlanBuilder::text_file(std::string path) {
  RddNode node;
  node.kind = OpKind::kTextFile;
  node.name = "textFile(" + path + ")";
  node.input_path = std::move(path);
  return wrap(std::move(node));
}

Rdd PlanBuilder::wrap(RddNode node) {
  node.id = next_id_++;
  arena_.push_back(std::make_unique<RddNode>(std::move(node)));
  return Rdd(this, arena_.back().get());
}

namespace {

RddNode child_of(const Rdd& parent, OpKind kind, std::string name) {
  assert(parent.valid());
  RddNode node;
  node.kind = kind;
  node.name = std::move(name);
  node.parents = {parent.node()};
  return node;
}

}  // namespace

Rdd Rdd::map(std::string name, OpCost cost) const {
  RddNode node = child_of(*this, OpKind::kNarrow, std::move(name));
  node.cost = cost;
  return builder_->wrap(std::move(node));
}

Rdd Rdd::filter(std::string name, double selectivity,
                double cpu_seconds_per_mib) const {
  RddNode node = child_of(*this, OpKind::kNarrow, std::move(name));
  node.cost = OpCost{cpu_seconds_per_mib, selectivity};
  return builder_->wrap(std::move(node));
}

Rdd Rdd::flat_map(std::string name, OpCost cost) const {
  return map(std::move(name), cost);
}

Rdd Rdd::reduce_by_key(std::string name, OpCost map_side, double shuffle_ratio,
                       int num_partitions, ShuffleTraits traits) const {
  RddNode node = child_of(*this, OpKind::kShuffle, std::move(name));
  // The shuffle node's cost is charged to the *producing* stage: map-side
  // combine CPU plus the fraction of input bytes that get shuffled.
  node.cost = OpCost{map_side.cpu_seconds_per_mib,
                     map_side.output_ratio * shuffle_ratio};
  node.num_partitions = num_partitions;
  node.shuffle_traits = traits;
  return builder_->wrap(std::move(node));
}

Rdd Rdd::sort_by_key(std::string name, OpCost map_side,
                     int num_partitions) const {
  // Range-partitioning shuffle; all bytes move. The reduce side merges
  // already-sorted runs as a stream: no spill, large sequential I/O.
  return reduce_by_key(std::move(name), map_side, 1.0, num_partitions,
                       ShuffleTraits{0.0, 1.0});
}

Rdd Rdd::join(const Rdd& other, std::string name, OpCost cost,
              double output_ratio, int num_partitions,
              ShuffleTraits traits) const {
  assert(valid() && other.valid());
  RddNode node;
  node.kind = OpKind::kJoin;
  node.name = std::move(name);
  node.parents = {this->node(), other.node()};
  // Reduce-side cost; output_ratio applies to the total co-partitioned input.
  node.cost = OpCost{cost.cpu_seconds_per_mib, output_ratio};
  node.num_partitions = num_partitions;
  node.shuffle_traits = traits;
  return builder_->wrap(std::move(node));
}

Rdd Rdd::cache() const {
  RddNode node = child_of(*this, OpKind::kCache, "cache");
  return builder_->wrap(std::move(node));
}

Rdd Rdd::save_as_text_file(std::string path, int replication) const {
  RddNode node = child_of(*this, OpKind::kSaveFile, "saveAsTextFile(" + path + ")");
  node.output_path = std::move(path);
  node.output_replication = replication;
  return builder_->wrap(std::move(node));
}

Rdd Rdd::save_as_hadoop_file(std::string path, int replication) const {
  RddNode node =
      child_of(*this, OpKind::kSaveFile, "saveAsHadoopFile(" + path + ")");
  node.output_path = std::move(path);
  node.output_replication = replication;
  return builder_->wrap(std::move(node));
}

Rdd Rdd::collect(std::string name) const {
  RddNode node = child_of(*this, OpKind::kCollect, std::move(name));
  return builder_->wrap(std::move(node));
}

}  // namespace saex::engine
