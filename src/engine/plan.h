// Logical RDD plan (the engine's dataflow language).
//
// Workloads build a DAG of RDD nodes through the Rdd handle API (textFile →
// map/filter/... → reduceByKey/join/sortByKey → saveAsTextFile). Narrow ops
// carry a cost model (CPU seconds per MiB processed, output-size ratio)
// instead of user functions: the engine is a performance simulator, so what
// matters downstream is how many bytes move and how much compute each byte
// costs. Wide ops mark shuffle boundaries for the DAG scheduler.
//
// Per the paper's static solution (§4), source and sink ops mark their stage
// as I/O-tagged: textFile(), saveAsTextFile(), saveAsHadoopFile().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace saex::engine {

enum class OpKind {
  kTextFile,   // read a DFS file; partitions = blocks
  kNarrow,     // map/filter/flatMap/...: pipelined into the stage
  kShuffle,    // wide dependency: stage boundary
  kJoin,       // wide dependency with two parents
  kCache,      // persist this RDD in executor memory
  kSaveFile,   // write a DFS file (action)
  kCollect,    // action returning (negligible) data to the driver
};

/// Cost of one logical operator, applied to its input bytes.
struct OpCost {
  double cpu_seconds_per_mib = 0.0;  // per MiB of operator input
  double output_ratio = 1.0;         // operator output bytes / input bytes
};

/// Physical characteristics of a shuffle's reduce side.
struct ShuffleTraits {
  // Fraction of fetched data sort-spilled to disk and re-read while merging
  // (hash aggregations spill; streaming merges like TeraSort's do not).
  double spill_fraction = 0.5;
  // Device work per byte for the shuffle's on-disk data relative to a large
  // sequential run; >1 models scattered small-record access.
  double scatter = 1.0;
  // Reduce-partition weight skew: partition r receives a 1/(r+1)^skew weight
  // share of every map output (0 = uniform). Models hot keys hashing into a
  // few partitions — the shape AQE's skew splitting exists for.
  double skew = 0.0;
};

struct RddNode;
// Plan nodes live in the PlanBuilder's arena (stable addresses, owned by the
// SparkContext); handles and parent edges are plain pointers — building and
// walking a plan does no shared_ptr refcount traffic.
using RddNodeRef = const RddNode*;

struct RddNode {
  int id = 0;
  OpKind kind = OpKind::kNarrow;
  std::string name;
  OpCost cost;
  std::vector<RddNodeRef> parents;

  // kTextFile
  std::string input_path;

  // kSaveFile
  std::string output_path;
  int output_replication = 1;

  // kShuffle / kJoin: number of output partitions (0 = default parallelism)
  int num_partitions = 0;
  ShuffleTraits shuffle_traits;
};

class PlanBuilder;

/// Value handle over an immutable plan node; all transformations return new
/// handles (RDDs are immutable, as in Spark).
class Rdd {
 public:
  Rdd() = default;

  /// Generic narrow transformation with an explicit cost model.
  Rdd map(std::string name, OpCost cost) const;
  Rdd filter(std::string name, double selectivity,
             double cpu_seconds_per_mib = 0.001) const;
  Rdd flat_map(std::string name, OpCost cost) const;

  /// Wide transformations (stage boundaries). `map_side`/`reduce_side` costs
  /// attach to the producing and consuming stages respectively via the
  /// shuffle node's cost (map side) and a follow-on narrow node.
  Rdd reduce_by_key(std::string name, OpCost map_side, double shuffle_ratio,
                    int num_partitions = 0, ShuffleTraits traits = {}) const;
  Rdd sort_by_key(std::string name, OpCost map_side,
                  int num_partitions = 0) const;
  Rdd join(const Rdd& other, std::string name, OpCost cost,
           double output_ratio, int num_partitions = 0,
           ShuffleTraits traits = {}) const;

  /// Marks this RDD persisted in executor memory.
  Rdd cache() const;

  /// Actions.
  Rdd save_as_text_file(std::string path, int replication = 1) const;
  Rdd save_as_hadoop_file(std::string path, int replication = 1) const;
  Rdd collect(std::string name = "collect") const;
  Rdd count() const { return collect("count"); }

  RddNodeRef node() const noexcept { return node_; }
  bool valid() const noexcept { return node_ != nullptr; }

 private:
  friend class PlanBuilder;
  Rdd(PlanBuilder* builder, RddNodeRef node) : builder_(builder), node_(node) {}

  PlanBuilder* builder_ = nullptr;
  RddNodeRef node_ = nullptr;
};

/// Allocates plan nodes with unique ids into an arena; owned by the
/// SparkContext, which outlives every Rdd handle and JobPlan built from it.
class PlanBuilder {
 public:
  Rdd text_file(std::string path);
  Rdd wrap(RddNode node);

  int num_nodes() const noexcept { return next_id_; }

 private:
  int next_id_ = 0;
  // unique_ptr elements: node addresses stay stable as the arena grows.
  std::vector<std::unique_ptr<RddNode>> arena_;
};

}  // namespace saex::engine
