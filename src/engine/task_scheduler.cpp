#include "engine/task_scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "common/stats.h"

namespace saex::engine {

TaskScheduler::TaskScheduler(sim::Simulation& sim,
                             std::vector<ExecutorRuntime*> executors,
                             Options options)
    : sim_(sim), options_(options) {
  execs_.reserve(executors.size());
  for (ExecutorRuntime* e : executors) {
    execs_.push_back(ExecState{e, e->pool_size(), 0});
  }
}

int TaskScheduler::total_assigned() const noexcept {
  int total = 0;
  for (const ExecState& es : execs_) total += es.assigned;
  return total;
}

void TaskScheduler::run_stage(const Stage& stage, std::vector<TaskSpec> tasks,
                              std::function<void()> on_done) {
  assert(stage_ == nullptr && "a stage is already in flight");
  stage_ = &stage;
  tasks_ = std::move(tasks);
  state_.assign(tasks_.size(), TaskState{});
  completed_durations_.clear();
  remaining_ = tasks_.size();
  stage_failed_ = false;
  on_done_ = std::move(on_done);

  stage_start_time_ = sim_.now();
  locality_timer_armed_ = false;

  // Refresh advertised sizes: stage-start policies resized synchronously
  // before the stage was submitted.
  for (ExecState& es : execs_) {
    es.advertised = es.exec->pool_size();
    es.assigned = 0;
    es.stage_failures = 0;
    es.blacklisted = false;
  }

  if (remaining_ == 0) {
    stage_ = nullptr;
    auto done = std::move(on_done_);
    sim_.schedule_after(0.0, std::move(done));
    return;
  }
  try_assign();
  schedule_speculation_check();
}

// Stragglers are detected by polling (spark.speculation.interval), not only
// at task completions — at the end of a wave there may be no completions
// left to trigger the check.
void TaskScheduler::schedule_speculation_check() {
  if (!options_.speculation || stage_ == nullptr) return;
  sim_.schedule_after(options_.speculation_interval, [this] {
    if (stage_ == nullptr) return;
    try_assign();
    schedule_speculation_check();
  });
}

int TaskScheduler::blacklisted_executors() const noexcept {
  int n = 0;
  for (const ExecState& es : execs_) n += es.blacklisted ? 1 : 0;
  return n;
}

std::optional<size_t> TaskScheduler::pick_task_for(size_t exec_idx) {
  // Locality first: a pending task preferring this node. Tasks preferring
  // *other* nodes are stolen only after the delay-scheduling window
  // (spark.locality.wait) expires; preference-free tasks are always fair
  // game. Finally, a speculative duplicate of a straggler.
  const int node_id = execs_[exec_idx].exec->node_id();
  const bool wait_over =
      sim_.now() - stage_start_time_ >= options_.locality_wait;
  std::optional<size_t> any;
  bool deferred = false;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const TaskState& st = state_[i];
    if (st.done || st.running_copies > 0) continue;
    const auto& pref = tasks_[i].preferred_nodes;
    if (pref.empty()) {
      if (!any) any = i;
      continue;
    }
    if (std::find(pref.begin(), pref.end(), node_id) != pref.end()) return i;
    if (wait_over) {
      if (!any) any = i;
    } else {
      deferred = true;
    }
  }
  if (!any && deferred && !locality_timer_armed_) {
    // Re-offer once the locality window closes, or nothing would wake us.
    locality_timer_armed_ = true;
    const double remaining =
        stage_start_time_ + options_.locality_wait - sim_.now();
    sim_.schedule_after(std::max(remaining, 0.0), [this] {
      locality_timer_armed_ = false;
      try_assign();
    });
  }
  if (any) return any;

  if (options_.speculation &&
      completed_durations_.size() >=
          options_.speculation_quantile * static_cast<double>(tasks_.size())) {
    const double median = percentile(completed_durations_, 0.5);
    const double now = sim_.now();
    for (size_t i = 0; i < tasks_.size(); ++i) {
      const TaskState& st = state_[i];
      if (st.done || st.running_copies != 1) continue;
      // Never duplicate onto the executor already running the straggler —
      // typically the slow node itself.
      if (std::find(st.copy_execs.begin(), st.copy_execs.end(), exec_idx) !=
          st.copy_execs.end()) {
        continue;
      }
      if (now - st.launch_time > options_.speculation_multiplier * median) {
        return i;
      }
    }
  }
  return std::nullopt;
}

void TaskScheduler::try_assign() {
  if (stage_ == nullptr) return;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t e = 0; e < execs_.size(); ++e) {
      ExecState& es = execs_[e];
      if (es.blacklisted || es.assigned >= es.advertised) continue;
      const auto task = pick_task_for(e);
      if (!task) continue;  // nothing pending or speculatable for this one
      dispatch(*task, e, state_[*task].running_copies > 0);
      progress = true;
    }
  }
}

void TaskScheduler::dispatch(size_t task_idx, size_t exec_idx,
                             bool speculative) {
  TaskState& st = state_[task_idx];
  if (st.running_copies == 0) st.launch_time = sim_.now();
  ++st.running_copies;
  ++st.attempts;
  st.copy_execs.push_back(exec_idx);
  if (speculative) {
    ++speculative_launches_;
    if (options_.event_log != nullptr) {
      options_.event_log->record(
          Event{EventKind::kSpeculativeLaunch, sim_.now(), -1,
                stage_->ordinal, static_cast<int>(task_idx),
                execs_[exec_idx].exec->node_id(), 0, {}});
    }
    SAEX_DEBUG("speculative copy of task {} on executor {}", task_idx,
               execs_[exec_idx].exec->node_id());
  }

  ExecState& es = execs_[exec_idx];
  ++es.assigned;
  const TaskSpec spec = tasks_[task_idx];
  const Stage* stage = stage_;
  // LaunchTask message: driver → executor.
  sim_.schedule_after(options_.message_latency, [this, spec, stage, exec_idx] {
    execs_[exec_idx].exec->launch(
        spec, *stage, [this, exec_idx](const TaskSpec& s, bool success) {
          // StatusUpdate message: executor → driver.
          sim_.schedule_after(options_.message_latency, [this, s, exec_idx,
                                                         success] {
            on_task_finished(s, exec_idx, success);
          });
        });
  });
}

void TaskScheduler::on_task_finished(const TaskSpec& spec, size_t exec_idx,
                                     bool success) {
  ExecState& es = execs_[exec_idx];
  --es.assigned;

  // Stage may have been aborted while this copy was in flight.
  if (stage_ == nullptr) return;

  TaskState& st = state_[static_cast<size_t>(spec.partition)];
  --st.running_copies;
  if (const auto it = std::find(st.copy_execs.begin(), st.copy_execs.end(),
                                exec_idx);
      it != st.copy_execs.end()) {
    st.copy_execs.erase(it);
  }

  if (st.done) {
    // A speculative duplicate finished after the winner: ignore the result.
    maybe_finish_stage();
    try_assign();
    return;
  }

  if (success) {
    st.done = true;
    completed_durations_.push_back(sim_.now() - st.launch_time);
    assert(remaining_ > 0);
    --remaining_;
    // Kill losing speculative copies so the stage does not wait for them.
    for (const size_t e : st.copy_execs) {
      execs_[e].exec->cancel_task(spec.partition);
    }
  } else if (options_.blacklist_enabled &&
             ++es.stage_failures >= options_.max_failed_tasks_per_executor &&
             !es.blacklisted && st.attempts < options_.max_task_failures) {
    es.blacklisted = true;
    SAEX_WARN("executor {} blacklisted for stage {} after {} failures",
              es.exec->node_id(), stage_->ordinal, es.stage_failures);
  } else if (st.attempts >= options_.max_task_failures &&
             st.running_copies == 0) {
    SAEX_WARN("task {} of stage {} failed {} times; aborting stage",
              spec.partition, stage_->ordinal, st.attempts);
    stage_failed_ = true;
    // Drain: remaining copies of other tasks finish, then on_done fires.
    remaining_ = 0;
    for (TaskState& other : state_) {
      if (!other.done) other.done = true;
    }
  }
  // else: attempt failed with budget left — the task is pending again
  // (running_copies just returned to 0) and try_assign re-launches it.

  maybe_finish_stage();
  try_assign();
}

void TaskScheduler::maybe_finish_stage() {
  if (stage_ == nullptr || remaining_ > 0 || total_assigned() > 0) return;
  stage_ = nullptr;
  auto done = std::move(on_done_);
  on_done_ = nullptr;
  if (done) done();
}

void TaskScheduler::on_executor_resized(int node_id, int new_size) {
  for (ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) {
      SAEX_TRACE("scheduler: executor {} advertised {} -> {}", node_id,
                 es.advertised, new_size);
      es.advertised = new_size;
      break;
    }
  }
  try_assign();
}

adaptive::SchedulerNotifier TaskScheduler::make_notifier(int node_id) {
  return [this, node_id](int new_size) {
    // ThreadPoolResized message: executor → driver.
    sim_.schedule_after(options_.message_latency, [this, node_id, new_size] {
      on_executor_resized(node_id, new_size);
    });
  };
}

int TaskScheduler::advertised_size(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.advertised;
  }
  return -1;
}

int TaskScheduler::assigned_count(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.assigned;
  }
  return -1;
}

}  // namespace saex::engine
