#include "engine/task_scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

#include "common/log.h"
#include "common/stats.h"
#include "prof/profiler.h"

namespace saex::engine {

TaskScheduler::TaskScheduler(sim::Simulation& sim,
                             std::vector<ExecutorRuntime*> executors,
                             Options options)
    : sim_(sim), options_(options) {
  execs_.reserve(executors.size());
  for (ExecutorRuntime* e : executors) {
    execs_.push_back(ExecState{e, e->pool_size(), 0, true});
  }
  free_bits_.assign((execs_.size() + 63) / 64, 0);
  int max_node = -1;
  for (const ExecState& es : execs_) {
    max_node = std::max(max_node, es.exec->node_id());
  }
  node_to_exec_.assign(static_cast<size_t>(max_node + 1), -1);
  for (size_t e = 0; e < execs_.size(); ++e) {
    const int node = execs_[e].exec->node_id();
    if (node >= 0 && node_to_exec_[static_cast<size_t>(node)] < 0) {
      node_to_exec_[static_cast<size_t>(node)] = static_cast<int32_t>(e);
    }
    update_free_bit(e);
  }
  if (options_.metrics != nullptr) {
    m_dispatched_ = options_.metrics->counter_handle("engine/tasks/dispatched");
    m_finished_ = options_.metrics->counter_handle("engine/tasks/finished");
    m_failed_ = options_.metrics->counter_handle("engine/tasks/failed");
    m_speculative_ =
        options_.metrics->counter_handle("engine/tasks/speculative");
    m_resizes_ = options_.metrics->counter_handle("engine/executor_resizes");
  }
}

void TaskScheduler::pending_remove(TaskSet& set, size_t task_idx) noexcept {
  const auto it = std::lower_bound(set.pending.begin(), set.pending.end(),
                                   static_cast<int32_t>(task_idx));
  assert(it != set.pending.end() && *it == static_cast<int32_t>(task_idx));
  set.pending.erase(it);
  if (set.tasks[task_idx].preferred_nodes.empty()) --set.pref_free_pending;
  --pending_total_;
}

void TaskScheduler::pending_insert(TaskSet& set, size_t task_idx) {
  const auto it = std::lower_bound(set.pending.begin(), set.pending.end(),
                                   static_cast<int32_t>(task_idx));
  assert(it == set.pending.end() || *it != static_cast<int32_t>(task_idx));
  set.pending.insert(it, static_cast<int32_t>(task_idx));
  if (set.tasks[task_idx].preferred_nodes.empty()) ++set.pref_free_pending;
  ++pending_total_;
}

void TaskScheduler::pending_clear(TaskSet& set) noexcept {
  pending_total_ -= static_cast<int64_t>(set.pending.size());
  set.pending.clear();
  set.pref_free_pending = 0;
}

void TaskScheduler::update_free_bit(size_t exec_idx) noexcept {
  const ExecState& es = execs_[exec_idx];
  const uint64_t mask = uint64_t{1} << (exec_idx & 63);
  uint64_t& word = free_bits_[exec_idx >> 6];
  if (es.active && !es.quarantined && es.assigned < es.advertised) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

size_t TaskScheduler::next_free_exec(size_t from) const noexcept {
  const size_t n = execs_.size();
  if (from >= n) return n;
  size_t w = from >> 6;
  uint64_t word = free_bits_[w] & (~uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w >= free_bits_.size()) return n;
    word = free_bits_[w];
  }
  return (w << 6) + static_cast<size_t>(std::countr_zero(word));
}

int TaskScheduler::exec_index_of(int node_id) const noexcept {
  if (node_id < 0 ||
      static_cast<size_t>(node_id) >= node_to_exec_.size()) {
    return -1;
  }
  return node_to_exec_[static_cast<size_t>(node_id)];
}

void TaskScheduler::define_pool(PoolSpec spec) {
  for (PoolSpec& existing : pool_specs_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  pool_specs_.push_back(std::move(spec));
}

const PoolSpec& TaskScheduler::pool_spec(
    const std::string& name) const noexcept {
  for (const PoolSpec& p : pool_specs_) {
    if (p.name == name) return p;
  }
  // Unknown pool: Spark logs a warning and uses default parameters.
  static const PoolSpec kFallback{};
  return kFallback;
}

int TaskScheduler::pool_running(const std::string& name) const noexcept {
  int running = 0;
  for (const auto& set : sets_) {
    if (set->pool == name) running += set->running;
  }
  return running;
}

int TaskScheduler::running_in_pool(const std::string& pool) const noexcept {
  return pool_running(pool);
}

int TaskScheduler::pending_task_count() const noexcept {
  int pending = 0;
  for (const auto& set : sets_) {
    pending += static_cast<int>(set->pending.size());
  }
  return pending;
}

void TaskScheduler::set_executor_active(int node_id, bool active) {
  if (const int e = exec_index_of(node_id); e >= 0) {
    ExecState& es = execs_[static_cast<size_t>(e)];
    if (es.dead) return;  // dead executors never come back
    es.active = active;
    update_free_bit(static_cast<size_t>(e));
  }
  if (active) try_assign();
}

void TaskScheduler::kill_executor(int node_id) {
  if (const int e = exec_index_of(node_id); e >= 0) {
    ExecState& es = execs_[static_cast<size_t>(e)];
    es.dead = true;
    es.active = false;
    update_free_bit(static_cast<size_t>(e));
  }
}

void TaskScheduler::revive_executor(int node_id) {
  if (const int e = exec_index_of(node_id); e >= 0) {
    ExecState& es = execs_[static_cast<size_t>(e)];
    if (!es.dead) return;
    es.dead = false;
    es.active = true;
    update_free_bit(static_cast<size_t>(e));
    try_assign();
  }
}

void TaskScheduler::set_executor_quarantined(int node_id, bool quarantined) {
  if (const int e = exec_index_of(node_id); e >= 0) {
    ExecState& es = execs_[static_cast<size_t>(e)];
    if (es.dead) return;
    if (es.quarantined == quarantined) return;
    es.quarantined = quarantined;
    update_free_bit(static_cast<size_t>(e));
    if (!quarantined) try_assign();
  }
}

bool TaskScheduler::executor_quarantined(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.quarantined;
  }
  return false;
}

int TaskScheduler::quarantined_executor_count() const noexcept {
  int n = 0;
  for (const ExecState& es : execs_) n += es.quarantined ? 1 : 0;
  return n;
}

bool TaskScheduler::executor_dead(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.dead;
  }
  return false;
}

int TaskScheduler::dead_executor_count() const noexcept {
  int n = 0;
  for (const ExecState& es : execs_) n += es.dead ? 1 : 0;
  return n;
}

void TaskScheduler::hold_set(uint64_t id, bool held) {
  TaskSet* set = find_set(id);
  if (set == nullptr) return;
  set->held = held;
  if (!held) try_assign();
}

void TaskScheduler::abort_set(uint64_t id) {
  TaskSet* set = find_set(id);
  if (set == nullptr) return;
  set->failed = true;
  set->remaining = 0;
  for (TaskState& st : set->state) st.done = true;
  pending_clear(*set);
  // In-flight copies still drain; on_done fires once running hits zero.
  maybe_finish_set(*set);
}

std::vector<uint64_t> TaskScheduler::hold_sets_reading(int shuffle_id) {
  std::vector<uint64_t> held;
  for (const auto& set : sets_) {
    if (set->failed) continue;  // already-held sets are still recorded: the
                                // caller tracks holds per recovering shuffle
    for (const int sid : set->stage.in_shuffle_ids) {
      if (sid == shuffle_id) {
        set->held = true;
        held.push_back(set->id);
        break;
      }
    }
  }
  return held;
}

bool TaskScheduler::executor_active(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.active;
  }
  return false;
}

int TaskScheduler::active_executor_count() const noexcept {
  int n = 0;
  for (const ExecState& es : execs_) n += es.active ? 1 : 0;
  return n;
}

TaskScheduler::TaskSet* TaskScheduler::find_set(uint64_t id) noexcept {
  // sets_ is sorted by ascending id (monotone assignment).
  const auto it = std::lower_bound(
      sets_.begin(), sets_.end(), id,
      [](const std::unique_ptr<TaskSet>& s, uint64_t v) { return s->id < v; });
  return it == sets_.end() || (*it)->id != id ? nullptr : it->get();
}

void TaskScheduler::erase_set(uint64_t id) noexcept {
  const auto it = std::lower_bound(
      sets_.begin(), sets_.end(), id,
      [](const std::unique_ptr<TaskSet>& s, uint64_t v) { return s->id < v; });
  if (it != sets_.end() && (*it)->id == id) sets_.erase(it);
}

uint64_t TaskScheduler::submit_stage(const Stage& stage,
                                     std::vector<TaskSpec> tasks, int job_id,
                                     std::string pool, TaskSetDone on_done) {
  const uint64_t id = next_set_id_++;
  TaskSet set;
  set.id = id;
  set.job_id = job_id;
  set.pool = std::move(pool);
  set.stage = stage;
  set.tasks = std::move(tasks);
  set.state.assign(set.tasks.size(), TaskState{});
  int max_partition = -1;
  for (const TaskSpec& t : set.tasks) {
    max_partition = std::max(max_partition, t.partition);
  }
  set.task_index.assign(static_cast<size_t>(max_partition + 1), -1);
  set.pending.reserve(set.tasks.size());
  for (size_t i = 0; i < set.tasks.size(); ++i) {
    set.task_index[static_cast<size_t>(set.tasks[i].partition)] =
        static_cast<int32_t>(i);
    set.pending.push_back(static_cast<int32_t>(i));
  }
  set.remaining = set.tasks.size();
  set.result.num_tasks = static_cast<int>(set.tasks.size());
  set.result.submit_time = sim_.now();
  set.exec_failures.assign(execs_.size(), 0);
  set.exec_blacklisted.assign(execs_.size(), false);
  set.on_done = std::move(on_done);

  if (set.remaining == 0) {
    // Degenerate empty stage: complete on the next event, never entering the
    // offer loop.
    set.result.finish_time = sim_.now();
    TaskSetResult result = set.result;
    TaskSetDone done = std::move(set.on_done);
    sim_.schedule_after(0.0, [done = std::move(done), result] {
      if (done) done(result);
    });
    return id;
  }

  sets_.push_back(std::make_unique<TaskSet>(std::move(set)));
  TaskSet& pushed = *sets_.back();
  pending_total_ += static_cast<int64_t>(pushed.pending.size());
  for (const TaskSpec& t : pushed.tasks) {
    if (t.preferred_nodes.empty()) ++pushed.pref_free_pending;
  }
  try_assign();
  schedule_speculation_check();
  return id;
}

void TaskScheduler::run_stage(const Stage& stage, std::vector<TaskSpec> tasks,
                              std::function<void()> on_done) {
  // Refresh advertised sizes: stage-start policies resized synchronously
  // before the stage was submitted. With recovery sets in flight (lineage
  // resubmission after an executor loss) the assigned counts are live and
  // must not be zeroed.
  for (size_t e = 0; e < execs_.size(); ++e) {
    ExecState& es = execs_[e];
    es.advertised = es.exec->pool_size();
    if (sets_.empty()) es.assigned = 0;
    update_free_bit(e);
  }
  completed_durations_.clear();
  stage_failed_ = false;
  auto done = std::move(on_done);
  submit_stage(stage, std::move(tasks), /*job_id=*/0, "default",
               [this, done = std::move(done)](const TaskSetResult& result) {
                 stage_failed_ = result.failed;
                 if (done) done();
               });
}

// Stragglers are detected by polling (spark.speculation.interval), not only
// at task completions — at the end of a wave there may be no completions
// left to trigger the check.
void TaskScheduler::schedule_speculation_check() {
  if (!options_.speculation || speculation_timer_armed_ || sets_.empty()) {
    return;
  }
  speculation_timer_armed_ = true;
  sim_.schedule_after(options_.speculation_interval, [this] {
    speculation_timer_armed_ = false;
    if (sets_.empty()) return;
    try_assign();
    schedule_speculation_check();
  });
}

int TaskScheduler::blacklisted_executors() const noexcept {
  std::vector<bool> blacklisted(execs_.size(), false);
  for (const auto& set : sets_) {
    for (size_t e = 0; e < execs_.size(); ++e) {
      if (set->exec_blacklisted[e]) blacklisted[e] = true;
    }
  }
  int n = 0;
  for (const bool b : blacklisted) n += b ? 1 : 0;
  return n;
}

const std::vector<TaskScheduler::TaskSet*>& TaskScheduler::offer_order() {
  std::vector<TaskSet*>& order = offer_scratch_;
  order.clear();
  order.reserve(sets_.size());
  for (const auto& set : sets_) order.push_back(set.get());
  if (order.size() < 2) return order;

  // Pool running counts for the FAIR comparison.
  std::map<std::string, int> running;
  if (mode_ == SchedulingMode::kFair) {
    for (const auto& set : sets_) running[set->pool] += set->running;
  }

  std::stable_sort(order.begin(), order.end(), [&](TaskSet* a, TaskSet* b) {
    const TaskSet& sa = *a;
    const TaskSet& sb = *b;
    if (mode_ == SchedulingMode::kFair && sa.pool != sb.pool) {
      // Spark's FairSchedulingAlgorithm over the two pools.
      const PoolSpec& pa = pool_spec(sa.pool);
      const PoolSpec& pb = pool_spec(sb.pool);
      const int ra = running.at(sa.pool);
      const int rb = running.at(sb.pool);
      const bool needy_a = ra < pa.min_share;
      const bool needy_b = rb < pb.min_share;
      if (needy_a != needy_b) return needy_a;
      if (needy_a) {
        const double share_a =
            static_cast<double>(ra) / std::max(pa.min_share, 1);
        const double share_b =
            static_cast<double>(rb) / std::max(pb.min_share, 1);
        if (share_a != share_b) return share_a < share_b;
      } else {
        const double ratio_a =
            static_cast<double>(ra) / std::max(pa.weight, 1);
        const double ratio_b =
            static_cast<double>(rb) / std::max(pb.weight, 1);
        if (ratio_a != ratio_b) return ratio_a < ratio_b;
      }
      return sa.pool < sb.pool;
    }
    // FIFO (and within one pool): earlier job, then earlier submission.
    if (sa.job_id != sb.job_id) return sa.job_id < sb.job_id;
    return sa.id < sb.id;
  });
  return order;
}

std::optional<size_t> TaskScheduler::pick_task_for(TaskSet& set,
                                                   size_t exec_idx) {
  // Locality first: a pending task preferring this node. Tasks preferring
  // *other* nodes are stolen only after the delay-scheduling window
  // (spark.locality.wait) expires; preference-free tasks are always fair
  // game. Finally, a speculative duplicate of a straggler.
  const int node_id = execs_[exec_idx].exec->node_id();
  const bool wait_over =
      sim_.now() - set.result.submit_time >= options_.locality_wait;
  std::optional<size_t> any;
  bool deferred = false;
  // `pending` holds exactly the indices with !done && running_copies == 0,
  // in ascending order — the same visit order as the full scan it replaces.
  for (const int32_t idx : set.pending) {
    const size_t i = static_cast<size_t>(idx);
    const auto& pref = set.tasks[i].preferred_nodes;
    if (pref.empty()) {
      if (!any) any = i;
      continue;
    }
    if (std::find(pref.begin(), pref.end(), node_id) != pref.end()) return i;
    if (wait_over) {
      if (!any) any = i;
    } else {
      deferred = true;
    }
  }
  if (!any && deferred) arm_locality_timer(set);
  if (any) return any;

  if (options_.speculation &&
      set.result.durations.size() >=
          options_.speculation_quantile *
              static_cast<double>(set.tasks.size())) {
    const double median = percentile(set.result.durations, 0.5);
    const double now = sim_.now();
    for (size_t i = 0; i < set.tasks.size(); ++i) {
      const TaskState& st = set.state[i];
      if (st.done || st.running_copies != 1) continue;
      // Never duplicate onto the executor already running the straggler —
      // typically the slow node itself.
      if (std::find(st.copy_execs.begin(), st.copy_execs.end(), exec_idx) !=
          st.copy_execs.end()) {
        continue;
      }
      if (now - st.launch_time > options_.speculation_multiplier * median) {
        return i;
      }
    }
  }
  return std::nullopt;
}

// Re-offer once the locality window closes, or nothing would wake us.
void TaskScheduler::arm_locality_timer(TaskSet& set) {
  if (set.locality_timer_armed) return;
  set.locality_timer_armed = true;
  const double remaining =
      set.result.submit_time + options_.locality_wait - sim_.now();
  const uint64_t set_id = set.id;
  sim_.schedule_after(std::max(remaining, 0.0), [this, set_id] {
    if (TaskSet* s = find_set(set_id)) s->locality_timer_armed = false;
    try_assign();
  });
}

bool TaskScheduler::set_wait_over(const TaskSet& set) const noexcept {
  return sim_.now() - set.result.submit_time >= options_.locality_wait;
}

// True when some offerable set could hand a task to an *arbitrary* free
// executor: it has a preference-free pending task, or its delay-scheduling
// window expired so preferring tasks may be stolen. Both only decrease
// within one try_assign call (no events fire mid-call), so a false answer
// stays false until the call returns.
bool TaskScheduler::any_generic_set() const noexcept {
  for (const auto& set : sets_) {
    if (set->held || set->pending.empty()) continue;
    if (set->pref_free_pending > 0 || set_wait_over(*set)) return true;
  }
  return false;
}

const std::vector<int>& TaskScheduler::pref_union(TaskSet& set) {
  if (set.pref_epoch != offer_epoch_) {
    set.pref_epoch = offer_epoch_;
    set.pref_nodes.clear();
    for (const int32_t idx : set.pending) {
      const auto& pref = set.tasks[static_cast<size_t>(idx)].preferred_nodes;
      set.pref_nodes.insert(set.pref_nodes.end(), pref.begin(), pref.end());
    }
    std::sort(set.pref_nodes.begin(), set.pref_nodes.end());
    set.pref_nodes.erase(
        std::unique(set.pref_nodes.begin(), set.pref_nodes.end()),
        set.pref_nodes.end());
  }
  return set.pref_nodes;
}

// Executors that some deferred set's pending tasks prefer — with no generic
// set in flight these are the only executors an offer pass can dispatch to.
void TaskScheduler::build_candidates() {
  cand_scratch_.clear();
  for (const auto& up : sets_) {
    TaskSet& set = *up;
    if (set.held || set.pending.empty()) continue;
    if (set.pref_free_pending > 0 || set_wait_over(set)) continue;
    for (const int node : pref_union(set)) {
      if (const int e = exec_index_of(node); e >= 0) {
        cand_scratch_.push_back(static_cast<size_t>(e));
      }
    }
  }
  std::sort(cand_scratch_.begin(), cand_scratch_.end());
  cand_scratch_.erase(
      std::unique(cand_scratch_.begin(), cand_scratch_.end()),
      cand_scratch_.end());
}

// What a fruitless pass of the exhaustive scan does as a side effect: every
// offerable set whose pending tasks are all waiting out the delay-scheduling
// window gets its re-offer timer armed (idempotently), in offer order so
// event creation order matches the scan's failed picks.
void TaskScheduler::arm_deferred_timers() {
  // Cheap order-free pre-check so the per-event common case (nothing
  // deferred) never pays for an offer_order() sort.
  bool any = false;
  for (const auto& set : sets_) {
    if (set->held || set->pending.empty() || set->locality_timer_armed) {
      continue;
    }
    if (set->pref_free_pending > 0 || set_wait_over(*set)) continue;
    any = true;
    break;
  }
  if (!any) return;
  for (TaskSet* set_ptr : offer_order()) {
    TaskSet& set = *set_ptr;
    if (set.held || set.pending.empty() || set.locality_timer_armed) continue;
    if (set.pref_free_pending > 0 || set_wait_over(set)) continue;
    arm_locality_timer(set);
  }
}

// Offers executor `exec_idx` one slot: walks sets in FIFO/FAIR order and
// dispatches from the first that has a task for it. Mirrors one iteration of
// the exhaustive scan's executor loop, including its side effects: deferred
// sets passed on the way are armed exactly where their failed pick would be.
bool TaskScheduler::offer_to(size_t exec_idx) {
  const int node_id = execs_[exec_idx].exec->node_id();
  for (TaskSet* set_ptr : offer_order()) {
    TaskSet& set = *set_ptr;
    if (set.held) continue;
    if (set.pending.empty()) continue;  // a pick would fail with no effects
    const bool generic = set.pref_free_pending > 0 || set_wait_over(set);
    if (!generic) {
      const std::vector<int>& pref = pref_union(set);
      if (!std::binary_search(pref.begin(), pref.end(), node_id)) {
        // pick_task_for would walk the pending list, match nothing, and
        // defer — its only side effect being this timer.
        arm_locality_timer(set);
        continue;
      }
    }
    if (const auto task = pick_task_for(set, exec_idx)) {
      dispatch(set, *task, exec_idx, set.state[*task].running_copies > 0);
      return true;
    }
    // pref_nodes over-approximated (the preferring task dispatched earlier
    // in this call); the failed pick armed the timer itself. Keep walking.
  }
  return false;
}

void TaskScheduler::try_assign() {
  SAEX_PROF_SCOPE(kScheduler);
  if (sets_.empty()) return;
  if (options_.speculation || options_.blacklist_enabled) {
    try_assign_scan();
  } else {
    try_assign_fast();
  }
}

void TaskScheduler::try_assign_scan() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t e = 0; e < execs_.size(); ++e) {
      ExecState& es = execs_[e];
      if (!es.active || es.quarantined || es.assigned >= es.advertised) continue;
      // Offer the slot to task sets in FIFO/FAIR order; the order is
      // recomputed after every dispatch since running counts moved.
      for (TaskSet* set_ptr : offer_order()) {
        TaskSet& set = *set_ptr;
        if (set.held || set.exec_blacklisted[e]) continue;
        const auto task = pick_task_for(set, e);
        if (!task) continue;
        dispatch(set, *task, e, set.state[*task].running_copies > 0);
        progress = true;
        break;
      }
    }
  }
}

void TaskScheduler::try_assign_fast() {
  // Nothing pending means no dispatch AND no deferred set to arm: the whole
  // offer pass is a no-op. This is the per-task-completion common case on a
  // large, underloaded cluster.
  if (pending_total_ == 0) return;
  ++offer_epoch_;
  const size_t n = execs_.size();
  bool progress = true;
  while (progress) {
    progress = false;
    if (pending_total_ == 0) break;
    // One pass: each executor with a free slot is offered at most one task,
    // in ascending index order — the scan's visit order restricted to the
    // executors that can actually receive something.
    bool cand_only = false;
    size_t cand_pos = 0;
    size_t e = 0;
    while (pending_total_ > 0) {
      if (!cand_only && !any_generic_set()) {
        build_candidates();
        cand_only = true;
        cand_pos = 0;
      }
      size_t next;
      if (cand_only) {
        while (cand_pos < cand_scratch_.size() && cand_scratch_[cand_pos] < e) {
          ++cand_pos;
        }
        size_t c = n;
        for (size_t p = cand_pos; p < cand_scratch_.size(); ++p) {
          if (exec_free(cand_scratch_[p])) {
            c = cand_scratch_[p];
            break;
          }
        }
        // A free non-candidate executor ahead of the next candidate would
        // walk every set without dispatching; its only effect is arming the
        // deferred timers, which must land *before* the candidate's dispatch
        // to keep the event sequence identical to the scan.
        if (next_free_exec(e) < c) arm_deferred_timers();
        if (c >= n) break;
        next = c;
      } else {
        next = next_free_exec(e);
        if (next >= n) break;
      }
      if (offer_to(next)) progress = true;
      e = next + 1;
    }
  }
  // The scan's final no-progress pass arms the deferred timers of sets its
  // failed picks reach — but only if some free executor exists to do the
  // walking.
  if (next_free_exec(0) < n) arm_deferred_timers();
}

void TaskScheduler::dispatch(TaskSet& set, size_t task_idx, size_t exec_idx,
                             bool speculative) {
  ExecState& es = execs_[exec_idx];
  if (!es.active || es.quarantined || es.assigned >= es.advertised) {
    ++dispatch_overcommits_;
  }
  if (es.assigned == 0 && engaged_hook_) {
    engaged_hook_(es.exec->node_id(), set.stage);
    // The hook may have resized the pool synchronously; keep offering
    // against the advertised size the notification protocol maintains.
  }

  TaskState& st = set.state[task_idx];
  if (st.running_copies == 0) {
    st.launch_time = sim_.now();
    pending_remove(set, task_idx);  // first copy: the task leaves the pending
                                    // list until it fails back to zero copies
  }
  ++st.running_copies;
  ++st.attempts;
  st.copy_execs.push_back(exec_idx);
  if (set.result.first_launch_time < 0.0) {
    set.result.first_launch_time = sim_.now();
  }
  if (m_dispatched_) m_dispatched_.increment();
  if (speculative) {
    if (m_speculative_) m_speculative_.increment();
    ++speculative_launches_;
    ++set.result.speculative_launches;
    if (options_.event_log != nullptr) {
      options_.event_log->record(
          Event{EventKind::kSpeculativeLaunch, sim_.now(), set.job_id,
                set.stage.ordinal, static_cast<int>(task_idx),
                es.exec->node_id(), 0, {}});
    }
    SAEX_DEBUG("speculative copy of task {} on executor {}", task_idx,
               es.exec->node_id());
  }

  ++es.assigned;
  update_free_bit(exec_idx);
  ++set.running;
  ++tasks_dispatched_;
  const TaskSpec spec = set.tasks[task_idx];
  const uint64_t set_id = set.id;
  // LaunchTask message: driver → executor.
  sim_.schedule_after(options_.message_latency, [this, spec, set_id,
                                                 exec_idx] {
    const TaskSet* s = find_set(set_id);
    assert(s != nullptr && "task set vanished with a launch in flight");
    execs_[exec_idx].exec->launch(
        spec, s->stage,
        [this, set_id, exec_idx](const TaskSpec& sp,
                                 const TaskOutcome& outcome) {
          // StatusUpdate message: executor → driver.
          sim_.schedule_after(options_.message_latency,
                              [this, set_id, sp, exec_idx, outcome] {
                                on_task_finished(set_id, sp, exec_idx,
                                                 outcome);
                              });
        });
  });
}

void TaskScheduler::on_task_finished(uint64_t set_id, const TaskSpec& spec,
                                     size_t exec_idx,
                                     const TaskOutcome& outcome) {
  ExecState& es = execs_[exec_idx];
  --es.assigned;
  update_free_bit(exec_idx);
  ++tasks_finished_;
  if (task_finish_hook_) task_finish_hook_(tasks_finished_);
  if (task_outcome_hook_ &&
      (outcome.success || outcome.failure != TaskFailure::kExecutorLost)) {
    task_outcome_hook_(es.exec->node_id(), outcome.success);
  }

  TaskSet* set_ptr = find_set(set_id);
  assert(set_ptr != nullptr && "status update for a vanished task set");
  TaskSet& set = *set_ptr;
  --set.running;

  const size_t task_idx = set.state_index(spec.partition);
  TaskState& st = set.state[task_idx];
  --st.running_copies;
  if (const auto it = std::find(st.copy_execs.begin(), st.copy_execs.end(),
                                exec_idx);
      it != st.copy_execs.end()) {
    st.copy_execs.erase(it);
  }

  if (st.done) {
    // A speculative duplicate finished after the winner (or the set was
    // aborted while this copy was in flight): ignore the result.
    maybe_finish_set(set);
    try_assign();
    return;
  }

  if (outcome.success) {
    st.done = true;
    if (m_finished_) m_finished_.increment();
    const double duration = sim_.now() - st.launch_time;
    set.result.durations.push_back(duration);
    completed_durations_.push_back(duration);
    assert(set.remaining > 0);
    --set.remaining;
    // Kill losing speculative copies so the stage does not wait for them.
    for (const size_t e : st.copy_execs) {
      execs_[e].exec->cancel_task(spec.stage_uid, spec.partition);
    }
    maybe_finish_set(set);
    try_assign();
    return;
  }

  // Decide whether the failure charges against spark.task.maxFailures.
  // Executor loss is never the task's fault; fetch failures are the
  // driver's call (it knows whether the source data is gone).
  if (m_failed_) m_failed_.increment();
  bool charged = true;
  if (outcome.failure == TaskFailure::kExecutorLost) {
    ++executor_lost_failures_;
    --st.attempts;
    charged = false;
  } else if (outcome.failure == TaskFailure::kFetchFailed) {
    ++fetch_failures_;
    if (options_.event_log != nullptr) {
      options_.event_log->record(Event{EventKind::kFetchFailed, sim_.now(),
                                       set.job_id, set.stage.ordinal,
                                       spec.partition, outcome.fetch_src,
                                       outcome.fetch_shuffle, {}});
    }
    FetchFailureAction action = FetchFailureAction::kCharge;
    if (fetch_hook_) {
      action = fetch_hook_(set_id, set.stage, outcome.fetch_shuffle,
                           outcome.fetch_src, spec);
    }
    if (action != FetchFailureAction::kCharge) {
      --st.attempts;
      charged = false;
      if (action == FetchFailureAction::kHold) set.held = true;
    }
  }

  if (!charged) {
    // Free retry: the task is pending again and try_assign re-launches it
    // (once the set is unheld, for kHold).
  } else if (options_.blacklist_enabled &&
             ++set.exec_failures[exec_idx] >=
                 options_.max_failed_tasks_per_executor &&
             !set.exec_blacklisted[exec_idx] &&
             st.attempts < options_.max_task_failures) {
    set.exec_blacklisted[exec_idx] = true;
    SAEX_WARN("executor {} blacklisted for stage {} after {} failures",
              es.exec->node_id(), set.stage.ordinal,
              set.exec_failures[exec_idx]);
  } else if (st.attempts >= options_.max_task_failures &&
             st.running_copies == 0) {
    SAEX_WARN("task {} of stage {} failed {} times; aborting stage",
              spec.partition, set.stage.ordinal, st.attempts);
    set.failed = true;
    // Drain: remaining copies of other tasks finish, then on_done fires.
    set.remaining = 0;
    for (TaskState& other : set.state) {
      if (!other.done) other.done = true;
    }
    pending_clear(set);
  }
  // else: attempt failed with budget left — the task is pending again
  // (running_copies just returned to 0) and try_assign re-launches it.

  if (!st.done && st.running_copies == 0) pending_insert(set, task_idx);
  maybe_finish_set(set);
  try_assign();
}

void TaskScheduler::maybe_finish_set(TaskSet& set) {
  if (set.remaining > 0 || set.running > 0) return;
  set.result.failed = set.failed;
  set.result.finish_time = sim_.now();
  TaskSetResult result = std::move(set.result);
  TaskSetDone done = std::move(set.on_done);
  erase_set(set.id);  // `set` is dangling from here on
  if (done) done(result);
}

void TaskScheduler::on_executor_resized(int node_id, int new_size) {
  if (const int e = exec_index_of(node_id); e >= 0) {
    ExecState& es = execs_[static_cast<size_t>(e)];
    SAEX_TRACE("scheduler: executor {} advertised {} -> {}", node_id,
               es.advertised, new_size);
    es.advertised = new_size;
    update_free_bit(static_cast<size_t>(e));
    if (m_resizes_) m_resizes_.increment();
  }
  try_assign();
}

adaptive::SchedulerNotifier TaskScheduler::make_notifier(int node_id) {
  return [this, node_id](int new_size) {
    // ThreadPoolResized message: executor → driver.
    sim_.schedule_after(options_.message_latency, [this, node_id, new_size] {
      on_executor_resized(node_id, new_size);
    });
  };
}

int TaskScheduler::advertised_size(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.advertised;
  }
  return -1;
}

int TaskScheduler::assigned_count(int node_id) const {
  for (const ExecState& es : execs_) {
    if (es.exec->node_id() == node_id) return es.assigned;
  }
  return -1;
}

}  // namespace saex::engine
