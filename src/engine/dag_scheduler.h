// DAG scheduler: splits a logical plan into pipelined stages at shuffle
// boundaries, exactly as Spark's DAGScheduler does.
//
//  * Narrow ops (map/filter/flatMap) are fused into their stage; their CPU
//    cost and size ratios are folded into stage-level aggregates.
//  * kShuffle/kJoin nodes end the producing stage (whose sink becomes a
//    shuffle write) and start a consuming stage.
//  * Stages whose source is textFile or whose sink is saveAs*File are
//    I/O-tagged (paper §4's structural heuristic).
//  * Total byte sizes are propagated statically through the deterministic
//    cost model, so the scheduler can size every task before execution.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "engine/plan.h"
#include "engine/stage.h"

namespace saex::engine {

struct JobPlan {
  std::vector<Stage> stages;  // in execution (topological) order

  const Stage* stage_by_uid(int uid) const noexcept {
    for (const auto& s : stages) {
      if (s.uid == uid) return &s;
    }
    return nullptr;
  }
};

class DagScheduler {
 public:
  /// `default_parallelism` sizes shuffles whose node left partitions at 0.
  DagScheduler(const dfs::Dfs& dfs, int default_parallelism);

  /// Builds the stage DAG for the action `final` (throws std::runtime_error
  /// on malformed plans, e.g. reading a missing input file).
  JobPlan build(const Rdd& final);

 private:
  struct ChainInfo {
    std::vector<RddNodeRef> nodes;  // source..sink order
    RddNodeRef boundary = nullptr;  // shuffle/join/cache source below chain
  };

  // Returns the uid of the stage that materializes `node`'s output, creating
  // it (and its ancestors) if necessary. `out` collects stages in topo order.
  int build_stage_for(const RddNodeRef& node, std::vector<Stage>& out);
  // `skew`: reduce-partition weight exponent of the shuffle being produced
  // (from the consuming wide op's ShuffleTraits; joins pass their traits to
  // both implicit input shuffles).
  int materialize_shuffle(const RddNodeRef& node, std::vector<Stage>& out,
                          double skew);

  const dfs::Dfs* dfs_;
  int default_parallelism_;
  int next_stage_uid_ = 0;
  int next_shuffle_id_ = 0;
  int next_cache_id_ = 0;
  // node id -> shuffle id already materialized (plans can share subtrees)
  std::map<int, int> shuffle_by_node_;
  std::map<int, int> stage_by_node_;
  std::map<int, int> cache_by_node_;
  // shuffle id -> producing stage uid / statically propagated output bytes.
  // Both persist across build() calls: later jobs reuse shuffle outputs that
  // earlier jobs materialized (as Spark does).
  std::map<int, int> shuffle_producer_;
  std::map<int, Bytes> shuffle_bytes_;
  // cache id -> (partitions, bytes) of the cached RDD
  struct CacheInfo {
    int partitions;
    Bytes bytes;
    int producer_uid;
  };
  std::map<int, CacheInfo> caches_;

 public:
  const std::map<int, CacheInfo>& caches() const noexcept { return caches_; }
  int shuffle_producer(int shuffle_id) const { return shuffle_producer_.at(shuffle_id); }
};

}  // namespace saex::engine
