// SparkContext: the engine's public entry point.
//
// Owns the DFS, the shuffle and cache registries, one ExecutorRuntime per
// node (as in the paper's deployment: one executor per machine using all 32
// virtual cores), the driver-side TaskScheduler, and the thread-policy
// wiring. run_job() builds the stage DAG and executes stages sequentially,
// returning the measured JobReport.
//
//   hw::Cluster cluster(hw::ClusterSpec::das5(4));
//   engine::SparkContext ctx(cluster, conf::Config{});
//   ctx.dfs().load_input("/in", gib(120), 4);
//   auto out = ctx.text_file("/in").sort_by_key("sort", {0.001, 1.0})
//                 .save_as_text_file("/out");
//   engine::JobReport report = ctx.run_job(out, "terasort");
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "adaptive/policies.h"
#include "aqe/aqe.h"
#include "aqe/tuner.h"
#include "conf/config.h"
#include "dfs/dfs.h"
#include "engine/dag_scheduler.h"
#include "engine/event_log.h"
#include "engine/executor_runtime.h"
#include "engine/plan.h"
#include "engine/report.h"
#include "engine/shuffle.h"
#include "engine/task_scheduler.h"
#include "fault/fault.h"
#include "hw/cluster.h"
#include "metrics/registry.h"

namespace saex::engine {

/// run_job() throws this when a stage exhausts its retry budget (instead of
/// a bare runtime_error, so callers can tell a typed job failure from an
/// engine bug). Derives from runtime_error: pre-existing catch sites hold.
class StageAbortedError : public std::runtime_error {
 public:
  StageAbortedError(int stage_ordinal, const std::string& what)
      : std::runtime_error(what), stage_ordinal_(stage_ordinal) {}
  int stage_ordinal() const noexcept { return stage_ordinal_; }

 private:
  int stage_ordinal_;
};

class SparkContext {
 public:
  /// Creates a policy for one executor. Arguments: the executor's sensor,
  /// effector, the driver notifier, and the node's virtual core count.
  using PolicyFactory = std::function<std::unique_ptr<adaptive::ThreadPolicy>(
      adaptive::Sensor&, adaptive::PoolEffector&, adaptive::SchedulerNotifier,
      int virtual_cores)>;

  SparkContext(hw::Cluster& cluster, conf::Config config);
  ~SparkContext();  // out of line: JobRun is incomplete here
  SparkContext(const SparkContext&) = delete;
  SparkContext& operator=(const SparkContext&) = delete;

  dfs::Dfs& dfs() noexcept { return *dfs_; }
  const conf::Config& config() const noexcept { return config_; }
  hw::Cluster& cluster() noexcept { return *cluster_; }

  /// Overrides the policy chosen from saex.executor.policy. Must be called
  /// before run_job; replaces every executor's policy.
  void set_policy_factory(PolicyFactory factory);

  /// Plan construction.
  Rdd text_file(const std::string& path) { return plans_.text_file(path); }
  PlanBuilder& plan_builder() noexcept { return plans_; }

  /// Builds the DAG for `action`, runs its stages in order, returns metrics.
  JobReport run_job(const Rdd& action, std::string app_name = "app");

  /// Event-driven concurrent submission (the saex::serve path). Builds the
  /// DAG, then drives a *runnable stage set*: a stage is submitted to the
  /// shared TaskScheduler the moment its parents within the job complete, so
  /// stages of independent jobs (and independent stages of one job, e.g. the
  /// two map sides of a join) run concurrently. `on_done` fires when the
  /// job's last stage drains (report.failed set if a stage aborted). The
  /// caller drives the simulation loop (sim().step()); returns the job id.
  ///
  /// Executor thread policies are NOT reset per stage on this path — with
  /// concurrent jobs there is no single "current stage" per executor.
  /// Install the TaskScheduler's executor-engaged hook (serve::JobServer
  /// does) to restart each executor's MAPE-K climb when it picks up work.
  int submit_job(const Rdd& action, std::string app_name, std::string pool,
                 std::function<void(JobReport)> on_done);

  /// Jobs submitted via submit_job that have not finished yet.
  int active_jobs() const noexcept { return static_cast<int>(jobs_.size()); }

  /// Cancels an in-flight submit_job run (deadline enforcement): its live
  /// task sets are aborted (pending tasks dropped, running copies drain and
  /// their slots are reclaimed) and `on_done` fires with report.failed and
  /// report.cancelled set. Returns false if the job already finished. The
  /// completion callback may fire synchronously (no copies in flight).
  bool cancel_job(int job_id);

  ExecutorRuntime& executor(int node_id) {
    return *executors_[static_cast<size_t>(node_id)];
  }
  /// Application event log (job/stage/task/resize events; see EventLog for
  /// the JSON-lines and Chrome-trace exporters).
  EventLog& event_log() noexcept { return event_log_; }
  const EventLog& event_log() const noexcept { return event_log_; }
  int num_executors() const noexcept { return static_cast<int>(executors_.size()); }
  TaskScheduler& scheduler() noexcept { return *scheduler_; }
  ShuffleManager& shuffles() noexcept { return *shuffles_; }
  /// Engine-level rollup counters (task dispatch/finish/failure, resizes,
  /// lineage recoveries). Handle-based: hot paths resolve names once.
  metrics::Registry& metrics() noexcept { return metrics_; }

  // --- fault tolerance -----------------------------------------------------

  /// Kills the executor on `node`: its running attempts drain as
  /// kExecutorLost, it receives no further offers, its shuffle map outputs
  /// and cached partitions are gone, and lineage recovery resubmits the
  /// producing stages for the lost shuffle partitions. Idempotent. Called by
  /// the armed FaultPlan (saex.fault.killNode) or directly by tests.
  void kill_executor(int node_id);

  /// Reverses kill_executor for a chaos rejoin (saex.fault.chaos): a fresh,
  /// empty executor becomes schedulable again on the same node id. Its old
  /// shuffle outputs and cached partitions stay lost — recovery already ran
  /// at kill time. Idempotent (no-op on a live node). Called by the armed
  /// FaultPlan or directly by tests.
  void revive_executor(int node_id);

  /// Observes node-attributed faults: an executor loss, or a shuffle fetch
  /// failure blamed on its source node. Feeds the serve layer's node-health
  /// circuit breaker (resilience::NodeHealthTracker).
  using NodeFaultHook = std::function<void(int node)>;
  void set_node_fault_hook(NodeFaultHook hook) {
    node_fault_hook_ = std::move(hook);
  }

  fault::FaultState& fault_state() noexcept { return *fault_state_; }
  /// Non-null only when saex.fault.enabled is true.
  fault::FaultPlan* fault_plan() noexcept { return fault_plan_.get(); }
  /// Shuffles whose lost partitions are being recomputed right now.
  int recovering_shuffles() const noexcept {
    return static_cast<int>(recovering_.size());
  }

  // --- storage layer -------------------------------------------------------

  /// Per-node BlockManagers (saex.storage.*): budget, eviction policy,
  /// hit/miss/spill/evict counters.
  storage::StorageManager& storage() noexcept { return *storage_; }
  const storage::StorageManager& storage() const noexcept { return *storage_; }
  /// Caches whose dropped partitions are being recomputed right now.
  int recovering_caches() const noexcept {
    return static_cast<int>(recovering_caches_.size());
  }

 private:
  struct JobRun;

  void install_policies();
  std::vector<TaskSpec> make_tasks(const Stage& stage) const;
  // AQE (saex.aqe.*): re-tiles a shuffle consumer stage from the observed
  // per-partition map-output bytes — partition coalescing + skew splitting —
  // just before the stage is submitted. No-op with AQE off, for non-shuffle
  // stages, and when the plan comes back as the identity tiling, so disabled
  // runs stay bitwise identical to the pre-AQE engine.
  void maybe_replan_stage(Stage& stage);
  // Feeds the per-stage tuner with the finished stage's task durations/bytes
  // and applies its pool-size hint before the next stage (run_job path only).
  void tuner_observe_stage(const Stage& stage, const std::vector<double>& durations,
                           const std::vector<Bytes>& task_bytes,
                           double makespan);
  void apply_tuner_pool_hint(const Stage& stage);
  void submit_ready_stages(JobRun& run);
  void submit_stage_of(JobRun& run, Stage& stage);
  void on_stage_finished(JobRun& run, Stage& stage,
                         const TaskScheduler::TaskSetResult& result);
  void maybe_finish_job(JobRun& run);

  FetchFailureAction on_fetch_failure(uint64_t set_id, int shuffle_id,
                                      int src_node, int cache_id,
                                      int partition);
  void record_shuffle_producer(const Stage& stage);
  void recover_shuffle(int shuffle_id, const std::vector<int>& partitions);
  void on_recovery_done(int shuffle_id, bool failed);
  bool input_recovering(const Stage& stage) const;

  // Lineage recompute for cache partitions dropped by eviction
  // (saex.storage.spillOnEvict=false). Mirrors the shuffle recovery path:
  // the producing stage is resubmitted for exactly the dropped partitions
  // at job_id -1 while consumer sets are parked.
  std::vector<int> dropped_cache_partitions(int cache_id) const;
  void maybe_recover_cache(const Stage& stage);
  bool cache_recovering(const Stage& stage) const;
  void recover_cache(int cache_id, const std::vector<int>& partitions);
  void on_cache_recovery_done(int cache_id, bool failed);

  hw::Cluster* cluster_;
  conf::Config config_;
  std::unique_ptr<dfs::Dfs> dfs_;
  std::unique_ptr<ShuffleManager> shuffles_;
  std::unique_ptr<CacheRegistry> caches_;
  metrics::Registry metrics_;  // before storage_/scheduler_: handles point in
  std::unique_ptr<storage::StorageManager> storage_;
  std::vector<std::unique_ptr<ExecutorRuntime>> executors_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<DagScheduler> dag_;
  EventLog event_log_;
  PlanBuilder plans_;
  PolicyFactory policy_factory_;
  std::string policy_name_;
  int job_counter_ = 0;
  int app_stage_counter_ = 0;
  std::map<int, std::unique_ptr<JobRun>> jobs_;  // in-flight submit_job runs

  // Fault injection + lineage recovery.
  std::unique_ptr<fault::FaultState> fault_state_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  NodeFaultHook node_fault_hook_;
  std::map<int, Stage> shuffle_producers_;  // shuffle id -> producing stage
  std::map<int, int> recovering_;           // shuffle id -> in-flight recoveries
  std::map<int, std::vector<uint64_t>> held_sets_;  // parked on recovery

  // Cache lineage (evicted-block recompute).
  std::map<int, Stage> cache_producers_;    // cache id -> producing stage
  std::map<int, int> recovering_caches_;    // cache id -> in-flight recoveries
  std::map<int, std::vector<uint64_t>> cache_held_sets_;
  bool shuffle_locality_ = false;  // saex.storage.shuffleLocality
  metrics::CounterHandle m_recomputes_;

  // Adaptive query execution (src/aqe/).
  aqe::AqeOptions aqe_;
  std::unique_ptr<aqe::StageTuner> tuner_;  // non-null iff saex.aqe.tuner
  metrics::CounterHandle m_replans_;
};

/// Builds the PolicyFactory implied by `config` ("saex.executor.policy" =
/// default | static | dynamic). Exposed so benches can construct sweep
/// variants (e.g. PerStagePolicy for static BestFit) the same way.
SparkContext::PolicyFactory policy_factory_from_config(const conf::Config& config);

}  // namespace saex::engine
