#include "engine/executor_runtime.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

#include "common/format.h"
#include "common/log.h"

namespace saex::engine {

void CacheRegistry::init(int cache_id, int partitions) {
  const auto [it, inserted] = parts_.try_emplace(cache_id);
  if (inserted) {
    it->second.resize(static_cast<size_t>(partitions));
    return;
  }
  // Re-registration of a known cache is a no-op; silently resizing here used
  // to truncate (or zero-extend) live partition state.
  if (static_cast<int>(it->second.size()) != partitions) {
    throw std::logic_error(strfmt::format(
        "CacheRegistry::init({}, {}): cache already registered with {} "
        "partitions",
        cache_id, partitions, it->second.size()));
  }
}

// ---------------------------------------------------------------------------
// Task execution state machine.
//
// A task pumps fixed-size chunks through read → compute → write, with one
// outstanding read and one outstanding write overlapping the computation —
// the effect of OS readahead and write-behind in a real executor.
//
// ε (epoll wait) accounts the full issue→completion latency of every I/O
// request, which is what strace's epoll_wait aggregation measures in the
// paper (§5.1): the NIO threads wait out the whole request regardless of
// whether the compute thread overlapped it. Under light load ε per byte is
// the device's unloaded latency; past saturation shared-queue latencies blow
// up — the signal the congestion index is built from.
// ---------------------------------------------------------------------------

struct ExecutorRuntime::TaskRun {
  enum class SegmentKind {
    kMemory,     // cached partition in local memory: instant
    kLocalDisk,  // read from this node's disk
    kRemote,     // remote disk read + network transfer
    kNetOnly,    // network transfer only (remote cached memory)
  };
  struct Segment {
    SegmentKind kind;
    int src_node;
    Bytes bytes;
    // >= 0 for shuffle fetches: eligible for seeded fetch drops.
    int shuffle_id = -1;
    // Data held by the source *executor process* (shuffle blocks, cached
    // partitions) — gone when that executor dies. DFS blocks live in the
    // datanode and survive executor kills.
    bool from_executor = false;
    // Flow-batched fetch (saex.net.flowBatch): every shuffle block this task
    // pulls from src_node, moved as ONE coalesced network flow. Each entry is
    // a (shuffle_id, bytes) constituent block — fault drop rolls and
    // open-stream registration stay block-granular even though the bytes
    // travel together. Empty = ordinary per-chunk segment.
    std::vector<std::pair<int, Bytes>> flow_blocks = {};
  };
  enum class Waiting { kNone, kRead, kWrite, kWriteDrain };

  ExecutorRuntime* exec = nullptr;
  TaskSpec spec;
  TaskDone on_done;

  // Input plan.
  std::vector<Segment> segments;
  size_t seg_idx = 0;
  Bytes seg_left = 0;  // remaining bytes of segments[seg_idx]

  // Stage-derived rates.
  double cpu_per_byte = 0.0;
  double out_per_byte = 0.0;
  double cache_per_byte = 0.0;

  // Sink description.
  StageSink sink = StageSink::kDriver;
  int out_shuffle_id = -1;
  std::vector<int> out_replica_nodes;  // DFS replicas beyond the local one

  // Cache output bookkeeping.
  int cache_out_id = -1;
  Bytes cache_mem_written = 0;
  Bytes cache_spilled = 0;

  // Read channel: up to fetch_cap outstanding reads (shuffle fetches mirror
  // Spark's spark.reducer.maxSizeInFlight parallel fetching; sequential DFS
  // scans keep one outstanding request, i.e. plain readahead).
  int fetch_cap = 1;
  int reads_outstanding = 0;
  int compute_outstanding = 0;  // CPU grants whose callback has not fired
  std::deque<Bytes> ready_chunks;

  // Write channel.
  bool write_in_flight = false;
  Bytes pending_write_local = 0;
  Bytes pending_write_replicated = 0;
  Bytes pending_write_readback = 0;

  // Reduce-side sort spill (shuffle-source tasks only).
  double spill_per_byte = 0.0;
  double spill_acc = 0.0;
  // Device work multiplier for the consumed shuffle's on-disk data.
  double scatter = 1.0;

  // Consumer state.
  Waiting waiting = Waiting::kNone;
  double stall_start = 0.0;
  double out_acc = 0.0;
  double cache_acc = 0.0;
  Bytes shuffle_written = 0;

  // Fault injection: the attempt dies after consuming fail_after bytes.
  bool will_fail = false;
  Bytes fail_after = 0;
  Bytes consumed = 0;
  bool aborting = false;
  // How the abort will be reported (cancel/injected failures keep the
  // default; executor kills and fetch failures override it).
  TaskFailure fail_kind = TaskFailure::kInjected;
  int fail_fetch_src = -1;
  int fail_fetch_sid = -1;

  sim::Simulation& sim() { return *exec->env_.sim; }
  double now() { return exec->env_.sim->now(); }

  void account_bytes(Bytes bytes, bool is_write) {
    if (is_write) {
      exec->io_.add_write(bytes);
    } else {
      exec->io_.add_read(bytes);
    }
    exec->io_series_.add(now(), bytes);
  }

  void account_latency(double issued_at) {
    exec->io_.add_blocked(now() - issued_at);
  }

  void begin_stall(Waiting w) {
    waiting = w;
    stall_start = now();
  }
  void end_stall() { waiting = Waiting::kNone; }

  void start() {
    issue_reads();
    consume();
  }

  // ---- read channel ----

  bool reads_remaining() {
    while (seg_idx < segments.size() && seg_left == 0) {
      if (segments[seg_idx].bytes > 0) break;
      ++seg_idx;
    }
    if (seg_idx < segments.size() && seg_left == 0) {
      seg_left = segments[seg_idx].bytes;
    }
    return seg_idx < segments.size() && seg_left > 0;
  }

  void issue_reads() {
    while (!aborting && reads_outstanding < fetch_cap && reads_remaining()) {
      issue_one_read();
    }
  }

  void issue_one_read() {
    const Segment& seg = segments[seg_idx];
    if (!seg.flow_blocks.empty()) {
      issue_flow_read(seg);
      return;
    }

    // Fault checks before any bytes move: a dead source executor cannot
    // serve its shuffle/cache data, and a transient seeded drop kills the
    // fetch too. Either way the attempt aborts and reports kFetchFailed so
    // the driver can tell data loss (lineage recovery) from a blip (retry).
    if (seg.from_executor && exec->env_.fault != nullptr && !aborting) {
      fault::FaultState& fs = *exec->env_.fault;
      const bool source_dead = !fs.node_alive(seg.src_node);
      // Transient drops are per fetched block (one roll per segment, on its
      // first chunk), mirroring Spark's per-block fetch failures — rolling
      // per chunk would doom every large fetch at any non-zero probability.
      const bool dropped = !source_dead && seg.shuffle_id >= 0 &&
                           seg_left == seg.bytes &&
                           fs.drop_fetch(seg.src_node, exec->node_id_);
      if (source_dead || dropped) {
        exec->env_.cluster->network().record_dropped_fetch(seg.src_node,
                                                           exec->node_id_);
        fail_kind = TaskFailure::kFetchFailed;
        fail_fetch_src = seg.src_node;
        fail_fetch_sid = seg.shuffle_id;
        aborting = true;
        // The failure surfaces after the fetch round-trip latency, riding
        // the read channel so the normal drain logic applies.
        ++reads_outstanding;
        sim().schedule_after(exec->env_.cluster->network().params().latency,
                             [this] {
                               --reads_outstanding;
                               maybe_finish_abort();
                             });
        return;
      }
    }

    const Bytes chunk = std::min(exec->env_.io_chunk, seg_left);
    seg_left -= chunk;
    if (seg_left == 0) ++seg_idx;
    ++reads_outstanding;
    const double issued = now();

    switch (seg.kind) {
      case SegmentKind::kMemory:
        sim().schedule_after(0.0, [this, chunk] { on_read_done(chunk, -1.0); });
        return;
      case SegmentKind::kLocalDisk:
        exec->node().disk().submit(
            chunk, false,
            [this, chunk, issued] { on_read_done(chunk, issued); }, scatter);
        return;
      case SegmentKind::kRemote: {
        // Remote disk read (contending with the source node's own tasks),
        // then the transfer across the network. The fetch connection is open
        // for the whole request — server-side disk time included — which is
        // what piles up on a downlink during wide shuffles (incast).
        const int src = seg.src_node;
        hw::Network& net = exec->env_.cluster->network();
        net.register_fetch(src, exec->node_id_);
        exec->env_.cluster->node(src).disk().submit(
            chunk, false,
            [this, chunk, src, issued, &net] {
              net.transfer(src, exec->node_id_, chunk,
                           [this, chunk, issued, src, &net] {
                             net.unregister_fetch(src, exec->node_id_);
                             on_read_done(chunk, issued);
                           });
            },
            scatter);
        return;
      }
      case SegmentKind::kNetOnly:
        exec->env_.cluster->network().transfer(
            seg.src_node, exec->node_id_, chunk,
            [this, chunk, issued] { on_read_done(chunk, issued); });
        return;
    }
  }

  // ---- flow-batched fetch (saex.net.flowBatch) ----

  // Moves a whole flow segment — every shuffle block this task pulls from
  // one source — as a single network flow instead of one transfer per
  // io_chunk. Per-block semantics survive the coalescing: the source
  // executor must be alive, every constituent block takes its own seeded
  // drop roll (stopping at the first drop, one record_dropped_fetch per
  // failed fetch, as in the per-chunk path), and each block registers its
  // own open stream for the incast model.
  void issue_flow_read(const Segment& seg) {
    const int src = seg.src_node;
    hw::Network& net = exec->env_.cluster->network();

    if (exec->env_.fault != nullptr && !aborting) {
      fault::FaultState& fs = *exec->env_.fault;
      bool failed = !fs.node_alive(src);
      if (!failed) {
        for (size_t b = 0; b < seg.flow_blocks.size() && !failed; ++b) {
          failed = fs.drop_fetch(src, exec->node_id_);
        }
      }
      if (failed) {
        net.record_dropped_fetch(src, exec->node_id_);
        fail_kind = TaskFailure::kFetchFailed;
        fail_fetch_src = src;
        fail_fetch_sid = seg.flow_blocks.front().first;
        aborting = true;
        ++reads_outstanding;
        sim().schedule_after(net.params().latency, [this] {
          --reads_outstanding;
          maybe_finish_abort();
        });
        return;
      }
    }

    const Bytes total = seg.bytes;
    const int nblocks = static_cast<int>(seg.flow_blocks.size());
    seg_left = 0;  // the whole segment moves in one request
    ++seg_idx;
    ++reads_outstanding;
    const double issued = now();
    for (int b = 0; b < nblocks; ++b) net.register_fetch(src, exec->node_id_);

    // Server-side disk read, then the wire flow — the same request structure
    // as one per-chunk fetch, at segment granularity. The flow claims
    // fetch_parallelism fair shares (the concurrency the per-chunk model
    // reaches with fetch_cap outstanding chunk streams).
    const auto finish = [this, total, src, nblocks, issued] {
      hw::Network& n = exec->env_.cluster->network();
      for (int b = 0; b < nblocks; ++b) n.unregister_fetch(src, exec->node_id_);
      on_flow_done(total, issued);
    };
    exec->env_.cluster->node(src).disk().submit(
        total, false,
        [this, src, total, finish] {
          exec->env_.cluster->network().transfer_flow(
              src, exec->node_id_, total,
              /*streams=*/1, exec->env_.io_chunk, finish);
        },
        scatter);
  }

  void on_flow_done(Bytes total, double issued_at) {
    --reads_outstanding;
    account_bytes(total, false);
    account_latency(issued_at);
    // Deliver the flow's bytes at io_chunk granularity so compute and the
    // write channel pipeline exactly as in per-chunk mode — only the network
    // events were coalesced.
    for (Bytes left = total; left > 0;) {
      const Bytes chunk = std::min(exec->env_.io_chunk, left);
      left -= chunk;
      ready_chunks.push_back(chunk);
    }
    if (aborting) {
      maybe_finish_abort();
      return;
    }
    if (waiting == Waiting::kRead) {
      end_stall();
      consume();
    }
  }

  void on_read_done(Bytes chunk, double issued_at) {
    --reads_outstanding;
    ready_chunks.push_back(chunk);
    if (issued_at >= 0.0) {  // memory reads cost no I/O wait and no bytes
      account_bytes(chunk, false);
      account_latency(issued_at);
    }
    if (aborting) {
      maybe_finish_abort();
      return;
    }
    if (waiting == Waiting::kRead) {
      end_stall();
      consume();
    }
  }

  // A failing attempt stops consuming but must drain its in-flight I/O and
  // CPU grants before it can be destroyed (callbacks hold pointers into
  // this object).
  void maybe_finish_abort() {
    if (reads_outstanding == 0 && compute_outstanding == 0 &&
        !write_in_flight) {
      TaskOutcome outcome;
      outcome.success = false;
      outcome.failure = fail_kind;
      outcome.fetch_src = fail_fetch_src;
      outcome.fetch_shuffle = fail_fetch_sid;
      exec->finish_task(this, outcome);
    }
  }

  // ---- consumer ----

  void consume() {
    if (aborting) {
      maybe_finish_abort();
      return;
    }
    if (!ready_chunks.empty()) {
      const Bytes chunk = ready_chunks.front();
      ready_chunks.pop_front();
      consumed += chunk;
      if (will_fail && consumed >= fail_after) {
        aborting = true;
        maybe_finish_abort();
        return;
      }
      issue_reads();  // keep the fetch pipeline full while computing
      const double cpu = cpu_per_byte * static_cast<double>(chunk);
      if (cpu > 0.0) {
        ++compute_outstanding;
        exec->node().cpu().execute(cpu, [this, chunk] {
          --compute_outstanding;
          on_compute_done(chunk);
        });
      } else {
        on_compute_done(chunk);
      }
      return;
    }
    if (reads_outstanding > 0) {
      begin_stall(Waiting::kRead);
      return;
    }
    // Input fully consumed: drain the write channel, then finish.
    if (write_in_flight) {
      begin_stall(Waiting::kWriteDrain);
      return;
    }
    flush_and_finish();
  }

  void on_compute_done(Bytes chunk) {
    if (aborting) {
      maybe_finish_abort();
      return;
    }
    Bytes local = 0;       // bytes written to the local disk
    Bytes replicated = 0;  // subset forwarded to DFS replicas
    Bytes readback = 0;    // spill bytes re-read during the merge

    if (spill_per_byte > 0.0) {
      spill_acc += spill_per_byte * static_cast<double>(chunk);
      const Bytes spill_chunk = static_cast<Bytes>(spill_acc);
      spill_acc -= static_cast<double>(spill_chunk);
      local += spill_chunk;
      readback = spill_chunk;
    }

    if (cache_out_id >= 0) {
      cache_acc += cache_per_byte * static_cast<double>(chunk);
      const Bytes cache_chunk = static_cast<Bytes>(cache_acc);
      cache_acc -= static_cast<double>(cache_chunk);
      if (cache_chunk > 0) {
        const Bytes granted =
            exec->reserve_storage(cache_out_id, spec.partition, cache_chunk);
        cache_mem_written += granted;
        const Bytes spill = cache_chunk - granted;
        cache_spilled += spill;
        local += spill;  // spill shares the write channel
      }
    }

    if (sink != StageSink::kDriver) {
      out_acc += out_per_byte * static_cast<double>(chunk);
      const Bytes out_chunk = static_cast<Bytes>(out_acc);
      out_acc -= static_cast<double>(out_chunk);
      local += out_chunk;
      if (sink == StageSink::kShuffleWrite) shuffle_written += out_chunk;
      if (sink == StageSink::kDfsWrite) replicated = out_chunk;
    }

    if (local == 0) {
      consume();
      return;
    }
    if (write_in_flight) {
      pending_write_local = local;
      pending_write_replicated = replicated;
      pending_write_readback = readback;
      begin_stall(Waiting::kWrite);
      return;
    }
    issue_write(local, replicated, readback);
    consume();
  }

  // ---- write channel ----

  void issue_write(Bytes local, Bytes replicated, Bytes readback) {
    write_in_flight = true;
    const double issued = now();
    // Spill writes inherit the shuffle's scattered layout; ordinary output
    // writes are large sequential runs (factor folded below is the bytes-
    // weighted blend when a chunk carries both).
    const double wf = readback > 0 ? scatter : 1.0;
    exec->node().disk().submit(
        local, true,
        [this, local, replicated, readback, issued] {
          account_bytes(local, true);
          account_latency(issued);
          if (readback > 0) {
            // Merge pass: the spilled run is read back from the local disk.
            const double rb_issued = now();
            exec->node().disk().submit(
                readback, false,
                [this, replicated, readback, rb_issued] {
                  account_bytes(readback, false);
                  account_latency(rb_issued);
                  replicate(replicated, 0);
                },
                scatter);
          } else {
            replicate(replicated, 0);
          }
        },
        wf);
  }

  // DFS replication pipeline: forward the chunk to each extra replica
  // (network + remote disk write), sequentially, as HDFS does.
  void replicate(Bytes bytes, size_t replica_idx) {
    if (bytes == 0 || replica_idx >= out_replica_nodes.size()) {
      on_write_done();
      return;
    }
    const int target = out_replica_nodes[replica_idx];
    exec->env_.cluster->network().transfer(
        exec->node_id_, target, bytes, [this, bytes, replica_idx, target] {
          exec->env_.cluster->node(target).disk().submit(
              bytes, true, [this, bytes, replica_idx] {
                account_bytes(bytes, true);
                replicate(bytes, replica_idx + 1);
              });
        });
  }

  void on_write_done() {
    write_in_flight = false;
    if (aborting) {
      maybe_finish_abort();
      return;
    }
    if (waiting == Waiting::kWrite) {
      end_stall();
      const Bytes local = pending_write_local;
      const Bytes repl = pending_write_replicated;
      const Bytes rb = pending_write_readback;
      pending_write_local = pending_write_replicated = pending_write_readback = 0;
      issue_write(local, repl, rb);
      consume();
    } else if (waiting == Waiting::kWriteDrain) {
      end_stall();
      flush_and_finish();
    }
  }

  void flush_and_finish() {
    storage::StorageManager* storage = exec->env_.storage;
    if (sink == StageSink::kShuffleWrite && out_shuffle_id >= 0) {
      // First commit wins: a losing speculative copy that raced past the
      // driver's cancellation must not double-count the partition's output.
      const bool committed = exec->env_.shuffles->register_map_output(
          out_shuffle_id, exec->node_id_, spec.partition, shuffle_written);
      if (committed && storage != nullptr) {
        // Track the map output file in the node's block accounting (disk
        // tier only; shuffle blocks are never memory-resident here).
        storage->node(exec->node_id_)
            .add_disk(storage::BlockId{storage::BlockKind::kShuffleOutput,
                                       out_shuffle_id, spec.partition},
                      shuffle_written);
      }
    }
    if (cache_out_id >= 0) {
      auto& part = exec->env_.caches->partition(cache_out_id, spec.partition);
      part.node = exec->node_id_;
      part.mem_bytes = cache_mem_written;
      part.spilled_bytes = cache_spilled;
      part.dropped = false;
      if (storage != nullptr) {
        const storage::BlockId bid{storage::BlockKind::kCachePartition,
                                   cache_out_id, spec.partition};
        auto& bm = storage->node(exec->node_id_);
        bm.add_disk(bid, cache_spilled);
        bm.commit(bid);  // unpin: the block is now fair game for eviction
      }
    }
    exec->finish_task(this, TaskOutcome{});
  }
};

// ---------------------------------------------------------------------------
// ExecutorRuntime
// ---------------------------------------------------------------------------

namespace {
uint64_t cluster_seed_of(const EngineEnv& env, int node_id) {
  return env.cluster->spec().seed ^ (0x9e3779b97f4a7c15ULL * (node_id + 1));
}
}  // namespace

ExecutorRuntime::ExecutorRuntime(EngineEnv env, int node_id, int virtual_cores)
    : env_(env),
      node_id_(node_id),
      virtual_cores_(virtual_cores),
      pool_target_(virtual_cores),
      failure_rng_(Rng(cluster_seed_of(env, node_id)).fork("task-failures")) {
  assert(env_.sim && env_.cluster && env_.dfs && env_.shuffles && env_.caches);
  pool_history_.record(0.0, static_cast<double>(pool_target_));
}

ExecutorRuntime::~ExecutorRuntime() = default;

void ExecutorRuntime::set_pool_size(int threads) {
  pool_target_ = std::max(1, threads);
  pool_history_.record(env_.sim->now(), static_cast<double>(pool_target_));
  if (env_.event_log != nullptr) {
    env_.event_log->record(Event{EventKind::kPoolResize, env_.sim->now(), -1,
                                 -1, -1, node_id_, pool_target_, {}});
  }
}

adaptive::IoSample ExecutorRuntime::sample() {
  const metrics::IoCounters& c = io_.snapshot();
  const double now = env_.sim->now();
  const double window = 5.0;
  const double util =
      env_.cluster->node(node_id_).disk().busy_tracker().utilization(
          std::max(0.0, now - window), std::max(now, 1e-9));
  return adaptive::IoSample{c.blocked_seconds, c.bytes_total(), util,
                            c.tasks_completed};
}

void ExecutorRuntime::set_policy(std::unique_ptr<adaptive::ThreadPolicy> policy) {
  policy_ = std::move(policy);
}

void ExecutorRuntime::cancel_task(int stage_uid, int partition) {
  for (auto& run : active_) {
    if (run->spec.stage_uid == stage_uid && run->spec.partition == partition &&
        !run->aborting) {
      run->aborting = true;
      // If the attempt is parked in a stall, no callback will come; finish
      // the abort directly. Otherwise the pending I/O/compute callback
      // observes `aborting` and drains.
      if (run->waiting != TaskRun::Waiting::kNone) {
        run->maybe_finish_abort();
      }
    }
  }
}

void ExecutorRuntime::kill() {
  if (!alive_) return;
  alive_ = false;
  // The dead process's block manager loses everything it held (cached
  // partitions, spilled runs, shuffle files — the directory-side loss is
  // applied by the driver via ShuffleManager::on_node_lost).
  if (env_.storage != nullptr) {
    env_.storage->node(node_id_).drop_all();
    storage_used_ = 0;
  }
  // Snapshot first: a drained abort removes the run from active_.
  std::vector<TaskRun*> runs;
  runs.reserve(active_.size());
  for (auto& run : active_) runs.push_back(run.get());
  for (TaskRun* run : runs) {
    if (run->aborting) {
      // Already dying (cancelled loser / injected failure); keep its kind.
      continue;
    }
    run->aborting = true;
    run->fail_kind = TaskFailure::kExecutorLost;
    if (run->waiting != TaskRun::Waiting::kNone) {
      run->maybe_finish_abort();
    }
  }
}

void ExecutorRuntime::revive() {
  if (alive_) return;
  // kill() already dropped the storage and drained (or is draining) the
  // active runs as kExecutorLost; the replacement process starts empty on
  // the same node id.
  alive_ = true;
}

Bytes ExecutorRuntime::reserve_storage(int cache_id, int partition,
                                       Bytes bytes) {
  if (env_.storage == nullptr) {
    // Legacy path (unit rigs construct EngineEnv without a StorageManager):
    // grant up to the remaining budget, the write's own overflow spills.
    const Bytes budget = env_.storage_budget;
    const Bytes granted =
        budget > 0 ? std::min(bytes, std::max<Bytes>(0, budget - storage_used_))
                   : bytes;
    storage_used_ += granted;
    return granted;
  }

  storage::BlockManager& bm = env_.storage->node(node_id_);
  const storage::BlockManager::Reservation res = bm.reserve(
      storage::BlockId{storage::BlockKind::kCachePartition, cache_id,
                       partition},
      bytes);
  // Apply the physical consequences of every eviction the policy decided:
  // update the cluster-wide directory and charge spill writes to this
  // node's disk so they contend with foreground I/O (nobody blocks on
  // them — Spark's block manager also writes evictions on the caller's
  // thread, but our task already accounted its own chunk).
  for (const storage::BlockManager::Evicted& ev : res.evicted) {
    if (ev.id.kind != storage::BlockKind::kCachePartition) continue;
    auto& part = env_.caches->partition(ev.id.id, ev.id.partition);
    if (ev.spilled) {
      part.spilled_bytes += ev.mem_bytes;
      part.mem_bytes = 0;
      if (ev.mem_bytes > 0) {
        node().disk().submit(ev.mem_bytes, true, [this, b = ev.mem_bytes] {
          io_.add_write(b);
          io_series_.add(env_.sim->now(), b);
        });
      }
    } else {
      part.mem_bytes = 0;
      part.spilled_bytes = 0;
      part.dropped = true;
    }
  }
  storage_used_ = bm.mem_used();
  return res.granted;
}

void ExecutorRuntime::launch(const TaskSpec& spec, const Stage& stage,
                             TaskDone on_done) {
  if (!alive_) {
    // LaunchTask message delivered to a dead executor (the kill raced the
    // message): fail immediately, charged to no one.
    env_.sim->schedule_after(0.0, [spec, on_done = std::move(on_done)] {
      TaskOutcome outcome;
      outcome.success = false;
      outcome.failure = TaskFailure::kExecutorLost;
      if (on_done) on_done(spec, outcome);
    });
    return;
  }
  ++running_;
  if (env_.event_log != nullptr) {
    env_.event_log->record(Event{EventKind::kTaskStart, env_.sim->now(), -1,
                                 stage.ordinal, spec.partition, node_id_,
                                 spec.input_bytes, {}});
  }

  auto run = std::make_unique<TaskRun>();
  TaskRun* raw = run.get();
  run->exec = this;
  run->spec = spec;
  run->on_done = std::move(on_done);
  run->cpu_per_byte =
      spec.input_bytes > 0
          ? spec.cpu_seconds / static_cast<double>(spec.input_bytes)
          : 0.0;
  run->out_per_byte = spec.input_bytes > 0
                          ? static_cast<double>(spec.output_bytes) /
                                static_cast<double>(spec.input_bytes)
                          : 0.0;
  run->cache_per_byte = spec.input_bytes > 0
                            ? static_cast<double>(spec.cache_bytes) /
                                  static_cast<double>(spec.input_bytes)
                            : 0.0;
  run->sink = stage.sink;
  run->out_shuffle_id = stage.out_shuffle_id;
  run->cache_out_id = stage.cache_out_id;
  const double failure_prob = node_id_ == env_.flaky_node
                                  ? env_.flaky_node_failure_prob
                                  : env_.task_failure_prob;
  if (failure_prob > 0.0 && failure_rng_.chance(failure_prob)) {
    run->will_fail = true;
    run->fail_after = std::max<Bytes>(
        1, static_cast<Bytes>(static_cast<double>(spec.input_bytes) *
                              failure_rng_.next_double()));
  }
  run->fetch_cap = stage.source == StageSource::kShuffle
                       ? std::max(1, env_.fetch_parallelism)
                       : 1;
  if (stage.source == StageSource::kShuffle) {
    run->spill_per_byte = stage.spill_fraction;
    run->scatter = stage.scatter;
  }

  // Extra DFS replicas: the next (replication-1) nodes after this one.
  if (stage.sink == StageSink::kDfsWrite && stage.out_replication > 1) {
    const int n = env_.cluster->size();
    for (int i = 1; i < std::min(stage.out_replication, n); ++i) {
      run->out_replica_nodes.push_back((node_id_ + i) % n);
    }
  }

  // Build the input plan.
  using Segment = TaskRun::Segment;
  using K = TaskRun::SegmentKind;
  switch (stage.source) {
    case StageSource::kDfs: {
      const dfs::FileInfo* file = env_.dfs->lookup(stage.input_path);
      assert(file != nullptr);
      const dfs::Block& block =
          file->blocks[static_cast<size_t>(spec.partition)];
      const int src = env_.dfs->choose_read_source(block, node_id_);
      run->segments.push_back(Segment{
          src == node_id_ ? K::kLocalDisk : K::kRemote, src, block.size});
      break;
    }
    case StageSource::kShuffle: {
      // Flow mode accumulates remote blocks per source node across the
      // consumed shuffles; one coalesced flow segment per source is emitted
      // after the loop, in the same rotation order.
      std::vector<std::vector<std::pair<int, Bytes>>> flow_blocks;
      if (env_.net_flow_batch) {
        flow_blocks.resize(static_cast<size_t>(env_.cluster->size()));
      }
      for (const int sid : stage.in_shuffle_ids) {
        // Empty reduce_slices = identity tiling → legacy fetch path
        // (bitwise identical plans with AQE off).
        const size_t sp = static_cast<size_t>(spec.partition);
        const std::vector<Bytes> plan =
            stage.reduce_slices.empty()
                ? env_.shuffles->fetch_plan(sid, spec.partition,
                                            stage.num_tasks)
                : env_.shuffles->fetch_plan_slice(
                      sid, stage.reduce_slices[sp].first,
                      stage.reduce_slices[sp].last,
                      stage.reduce_slices[sp].split_index,
                      stage.reduce_slices[sp].num_splits,
                      stage.reduce_partitions);
        // Local share first, then remote nodes in rotating order so fetch
        // load spreads evenly.
        for (const FetchShare& share : rotate_fetch_plan(plan, node_id_)) {
          if (share.src == node_id_) {
            // A slice of freshly written local map output is still in the
            // OS page cache.
            const Bytes cached = static_cast<Bytes>(
                static_cast<double>(share.bytes) *
                env_.shuffle_cache_fraction);
            if (cached > 0) {
              run->segments.push_back(Segment{K::kMemory, share.src, cached});
            }
            run->segments.push_back(
                Segment{K::kLocalDisk, share.src, share.bytes - cached});
          } else if (!env_.net_flow_batch) {
            // Remote map output is served by the source executor: subject to
            // seeded fetch drops and lost when that executor dies.
            run->segments.push_back(
                Segment{K::kRemote, share.src, share.bytes, sid, true});
          } else {
            flow_blocks[static_cast<size_t>(share.src)].emplace_back(
                sid, share.bytes);
          }
        }
      }
      if (env_.net_flow_batch) {
        const int n = env_.cluster->size();
        for (int i = 1; i < n; ++i) {
          const int src = (node_id_ + i) % n;
          auto& blocks = flow_blocks[static_cast<size_t>(src)];
          if (blocks.empty()) continue;
          Bytes total = 0;
          for (const auto& block : blocks) total += block.second;
          Segment seg{K::kRemote, src, total, /*shuffle_id=*/-1, true};
          seg.flow_blocks = std::move(blocks);
          run->segments.push_back(std::move(seg));
        }
      }
      break;
    }
    case StageSource::kCached: {
      const auto& part =
          env_.caches->partition(stage.in_cache_id, spec.partition);
      if (part.dropped) {
        // Evicted without spilling: the data is gone but (unlike executor
        // loss) its producer is still alive, so report a fetch failure and
        // let the driver recompute the partition from lineage. shuffle_id
        // stays -1; the stage's in_cache_id identifies what was lost.
        raw->aborting = true;
        raw->fail_kind = TaskFailure::kFetchFailed;
        raw->fail_fetch_src = part.node;
        raw->fail_fetch_sid = -1;
        if (env_.storage != nullptr && part.node >= 0) {
          env_.storage->node(part.node).touch(
              storage::BlockId{storage::BlockKind::kCachePartition,
                               stage.in_cache_id, spec.partition},
              /*mem_hit=*/false);
        }
        break;  // no segments: the empty-segments branch drains the abort
      }
      if (env_.storage != nullptr && part.node >= 0) {
        // Hit/miss accounting on the owning node: a hit is served entirely
        // from memory, a spilled tail forces a disk read.
        env_.storage->node(part.node).touch(
            storage::BlockId{storage::BlockKind::kCachePartition,
                             stage.in_cache_id, spec.partition},
            /*mem_hit=*/part.spilled_bytes == 0);
      }
      if (part.node == node_id_) {
        run->segments.push_back(Segment{K::kMemory, node_id_, part.mem_bytes});
        if (part.spilled_bytes > 0) {
          run->segments.push_back(
              Segment{K::kLocalDisk, node_id_, part.spilled_bytes});
        }
      } else {
        // Cached partitions live in the owning executor's process (block
        // manager): lost when it dies, and there is no lineage to rebuild
        // them here — shuffle_id stays -1 so the driver aborts the job.
        run->segments.push_back(
            Segment{K::kNetOnly, part.node, part.mem_bytes, -1, true});
        if (part.spilled_bytes > 0) {
          run->segments.push_back(
              Segment{K::kRemote, part.node, part.spilled_bytes, -1, true});
        }
      }
      break;
    }
    case StageSource::kNone:
      break;
  }

  active_.push_back(std::move(run));
  // Tasks with no input at all still take a scheduling round-trip.
  if (raw->segments.empty()) {
    env_.sim->schedule_after(0.0, [raw] {
      // A kill can land between launch and this callback.
      if (raw->aborting) {
        raw->maybe_finish_abort();
      } else {
        raw->flush_and_finish();
      }
    });
  } else {
    raw->start();
  }
}

void ExecutorRuntime::finish_task(TaskRun* run, const TaskOutcome& outcome) {
  --running_;
  const double now = env_.sim->now();
  const TaskSpec spec = run->spec;
  TaskDone on_done = std::move(run->on_done);

  active_.remove_if(
      [run](const std::unique_ptr<TaskRun>& p) { return p.get() == run; });

  if (env_.event_log != nullptr) {
    env_.event_log->record(Event{
        outcome.success ? EventKind::kTaskEnd : EventKind::kTaskFailed, now, -1,
        -1, spec.partition, node_id_, spec.input_bytes, {}});
  }
  if (outcome.success) {
    // Failed attempts neither advance the tuning interval nor count as
    // completions; the driver re-launches them.
    io_.task_completed();
    if (policy_) policy_->on_task_complete(now);
  }
  if (on_done) on_done(spec, outcome);
}

}  // namespace saex::engine
