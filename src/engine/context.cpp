#include "engine/context.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "common/format.h"
#include "common/log.h"
#include "metrics/histogram.h"

namespace saex::engine {

SparkContext::PolicyFactory policy_factory_from_config(
    const conf::Config& config) {
  const std::string policy = config.get_string("saex.executor.policy");
  const int io_threads = static_cast<int>(config.get_int("saex.static.ioThreads"));
  if (policy == "static") {
    return [io_threads](adaptive::Sensor&, adaptive::PoolEffector& pool,
                        adaptive::SchedulerNotifier notifier, int vcores) {
      return std::make_unique<adaptive::StaticIoPolicy>(
          pool, std::move(notifier), io_threads, vcores);
    };
  }
  if (policy == "dynamic") {
    // ControllerConfig is captured by value; vcores resolves maxThreads=0.
    conf::Config snapshot = config;
    return [snapshot](adaptive::Sensor& sensor, adaptive::PoolEffector& pool,
                      adaptive::SchedulerNotifier notifier, int vcores) {
      const auto cc = adaptive::ControllerConfig::from_config(snapshot, vcores);
      return std::make_unique<adaptive::DynamicPolicy>(cc, sensor, pool,
                                                       std::move(notifier));
    };
  }
  if (policy == "aimd") {
    conf::Config snapshot = config;
    return [snapshot](adaptive::Sensor& sensor, adaptive::PoolEffector& pool,
                      adaptive::SchedulerNotifier notifier, int vcores) {
      const auto cc = adaptive::ControllerConfig::from_config(snapshot, vcores);
      return std::make_unique<adaptive::AimdPolicy>(cc, sensor, pool,
                                                    std::move(notifier));
    };
  }
  if (policy != "default") {
    throw conf::ConfigError(
        strfmt::format("unknown saex.executor.policy '{}'", policy));
  }
  return [](adaptive::Sensor&, adaptive::PoolEffector& pool,
            adaptive::SchedulerNotifier notifier, int vcores) {
    return std::make_unique<adaptive::DefaultPolicy>(pool, std::move(notifier),
                                                     vcores);
  };
}

SparkContext::SparkContext(hw::Cluster& cluster, conf::Config config)
    : cluster_(&cluster), config_(std::move(config)) {
  event_log_.set_enabled(config_.get_bool("saex.eventLog.enabled"));
  dfs::Dfs::Options dfs_options;
  dfs_options.block_size = config_.get_bytes("spark.files.maxPartitionBytes");
  dfs_options.seed = cluster.spec().seed ^ 0x5a5a5a5aULL;
  dfs_ = std::make_unique<dfs::Dfs>(cluster, dfs_options);
  shuffles_ = std::make_unique<ShuffleManager>(cluster.size());
  caches_ = std::make_unique<CacheRegistry>();

  EngineEnv env;
  env.sim = &cluster.sim();
  env.cluster = &cluster;
  env.dfs = dfs_.get();
  env.shuffles = shuffles_.get();
  env.caches = caches_.get();

  // Per-node storage budget: an explicit saex.storage.memory override wins;
  // otherwise derive it from the (previously dormant) spark.memory.* /
  // spark.storage.* knobs, honoring the legacy-mode switch.
  Bytes storage_budget = config_.get_bytes("saex.storage.memory");
  if (storage_budget == 0) {
    const double mem =
        static_cast<double>(cluster.spec().memory_per_node);
    storage_budget = static_cast<Bytes>(
        config_.get_bool("spark.memory.useLegacyMode")
            ? mem * config_.get_double("spark.storage.memoryFraction")
            : mem * config_.get_double("spark.memory.fraction") *
                  config_.get_double("spark.memory.storageFraction"));
  }
  env.storage_budget = storage_budget;

  storage::BlockManager::Options bm_options;
  bm_options.memory_budget = storage_budget;
  bm_options.policy = config_.get_string("saex.storage.policy");
  bm_options.spill_on_evict = config_.get_bool("saex.storage.spillOnEvict");
  if (!storage::is_valid_eviction_policy(bm_options.policy)) {
    throw conf::ConfigError(strfmt::format(
        "unknown saex.storage.policy '{}' (valid: none, lru, clock, s3fifo, "
        "tinylfu)",
        bm_options.policy));
  }
  storage_ = std::make_unique<storage::StorageManager>(
      cluster.size(), bm_options, &metrics_);
  env.storage = storage_.get();
  shuffle_locality_ = config_.get_bool("saex.storage.shuffleLocality");
  m_recomputes_ = metrics_.counter_handle("storage/recomputes");

  aqe_ = aqe::AqeOptions::from_config(config_);
  if (aqe_.enabled && aqe_.tuner) tuner_ = std::make_unique<aqe::StageTuner>();
  m_replans_ = metrics_.counter_handle("aqe/replans");
  env.task_failure_prob = config_.get_double("saex.sim.taskFailureProb");
  env.flaky_node = static_cast<int>(config_.get_int("saex.sim.flakyNode"));
  env.flaky_node_failure_prob =
      config_.get_double("saex.sim.flakyNodeFailureProb");
  env.net_flow_batch = config_.get_bool("saex.net.flowBatch");
  env.event_log = &event_log_;

  // Fault truth exists even with injection off (then it is entirely
  // passive), so tests can kill executors directly.
  const fault::FaultSpec fault_spec = fault::FaultSpec::from_config(config_);
  fault_state_ = std::make_unique<fault::FaultState>(
      cluster.size(), cluster.spec().seed ^ fault_spec.seed,
      fault_spec.fetch_fail_prob, fault_spec.fetch_fail_node);
  env.fault = fault_state_.get();

  const int vcores = static_cast<int>(config_.get_int("spark.executor.cores"));
  std::vector<ExecutorRuntime*> raw;
  for (int n = 0; n < cluster.size(); ++n) {
    executors_.push_back(std::make_unique<ExecutorRuntime>(env, n, vcores));
    raw.push_back(executors_.back().get());
  }
  TaskScheduler::Options sched_options;
  sched_options.max_task_failures =
      static_cast<int>(config_.get_int("spark.task.maxFailures"));
  sched_options.speculation = config_.get_bool("spark.speculation");
  sched_options.speculation_multiplier =
      config_.get_double("spark.speculation.multiplier");
  sched_options.speculation_quantile =
      config_.get_double("spark.speculation.quantile");
  sched_options.speculation_interval =
      config_.get_duration_seconds("spark.speculation.interval");
  sched_options.locality_wait =
      config_.get_duration_seconds("spark.locality.wait");
  sched_options.blacklist_enabled = config_.get_bool("spark.blacklist.enabled");
  sched_options.max_failed_tasks_per_executor = static_cast<int>(
      config_.get_int("spark.blacklist.stage.maxFailedTasksPerExecutor"));
  sched_options.event_log = &event_log_;
  sched_options.metrics = &metrics_;
  scheduler_ = std::make_unique<TaskScheduler>(cluster.sim(), raw,
                                               sched_options);
  scheduler_->set_fetch_failure_hook(
      [this](uint64_t set_id, const Stage& stage, int shuffle_id, int src_node,
             const TaskSpec& spec) {
        return on_fetch_failure(set_id, shuffle_id, src_node,
                                stage.in_cache_id, spec.partition);
      });
  scheduler_->set_task_finish_hook([this](int64_t finished) {
    if (fault_plan_) fault_plan_->notify_task_finished(finished);
  });
  if (fault_spec.enabled) {
    fault::FaultPlan::Hooks hooks;
    hooks.kill_executor = [this](int node) { kill_executor(node); };
    hooks.rejoin_executor = [this](int node) { revive_executor(node); };
    hooks.node_alive = [this](int node) {
      return fault_state_->node_alive(node);
    };
    hooks.degrade_disk = [this](int node, double factor) {
      if (node < 0 || node >= cluster_->size()) {
        SAEX_WARN("ignoring disk degrade on node {}: cluster has nodes 0..{}",
                  node, cluster_->size() - 1);
        return;
      }
      cluster_->node(node).set_disk_speed_factor(factor);
      event_log_.record(Event{EventKind::kDiskDegraded, cluster_->sim().now(),
                              -1, -1, -1, node,
                              static_cast<int64_t>(factor * 100.0), {}});
    };
    fault_plan_ = std::make_unique<fault::FaultPlan>(fault_spec, cluster.sim(),
                                                     std::move(hooks));
    fault_plan_->arm();
  }

  dag_ = std::make_unique<DagScheduler>(
      *dfs_, static_cast<int>(config_.get_int("spark.default.parallelism")));

  policy_factory_ = policy_factory_from_config(config_);
  policy_name_ = config_.get_string("saex.executor.policy");
  install_policies();
}

SparkContext::~SparkContext() = default;

void SparkContext::set_policy_factory(PolicyFactory factory) {
  policy_factory_ = std::move(factory);
  policy_name_ = "custom";
  install_policies();
}

void SparkContext::install_policies() {
  for (auto& exec : executors_) {
    auto policy = policy_factory_(*exec, *exec,
                                  scheduler_->make_notifier(exec->node_id()),
                                  exec->virtual_cores());
    policy_name_ = policy->name();
    exec->set_policy(std::move(policy));
  }
}

std::vector<TaskSpec> SparkContext::make_tasks(const Stage& stage) const {
  std::vector<TaskSpec> tasks;
  tasks.reserve(static_cast<size_t>(stage.num_tasks));
  const double cpu_per_byte =
      stage.cpu_seconds_per_input_mib / static_cast<double>(kMiB);

  for (int p = 0; p < stage.num_tasks; ++p) {
    TaskSpec t;
    t.stage_uid = stage.uid;
    t.partition = p;
    switch (stage.source) {
      case StageSource::kDfs: {
        const dfs::FileInfo* file = dfs_->lookup(stage.input_path);
        assert(file != nullptr);
        const dfs::Block& block = file->blocks[static_cast<size_t>(p)];
        t.input_bytes = block.size;
        t.preferred_nodes = block.replicas;
        break;
      }
      case StageSource::kShuffle: {
        Bytes total = 0;
        std::vector<Bytes> per_node(static_cast<size_t>(cluster_->size()), 0);
        for (const int sid : stage.in_shuffle_ids) {
          // Empty reduce_slices = identity tiling → legacy fetch path
          // (bitwise identical plans with AQE off).
          const std::vector<Bytes> plan =
              stage.reduce_slices.empty()
                  ? shuffles_->fetch_plan(sid, p, stage.num_tasks)
                  : shuffles_->fetch_plan_slice(
                        sid, stage.reduce_slices[static_cast<size_t>(p)].first,
                        stage.reduce_slices[static_cast<size_t>(p)].last,
                        stage.reduce_slices[static_cast<size_t>(p)].split_index,
                        stage.reduce_slices[static_cast<size_t>(p)].num_splits,
                        stage.reduce_partitions);
          for (size_t n = 0; n < plan.size(); ++n) {
            total += plan[n];
            per_node[n] += plan[n];
          }
        }
        t.input_bytes = total;
        // Cache-locality-aware placement (saex.storage.shuffleLocality):
        // prefer the node whose block manager holds the largest share of
        // this task's fetch plan; delay scheduling (spark.locality.wait)
        // falls back to any node if the preferred one stays busy.
        if (shuffle_locality_ && total > 0) {
          size_t best = 0;
          for (size_t n = 1; n < per_node.size(); ++n) {
            if (per_node[n] > per_node[best]) best = n;
          }
          if (per_node[best] > 0) {
            t.preferred_nodes = {static_cast<int>(best)};
          }
        }
        break;
      }
      case StageSource::kCached: {
        const auto& part = caches_->partition(stage.in_cache_id, p);
        t.input_bytes = part.mem_bytes + part.spilled_bytes;
        if (part.node >= 0) t.preferred_nodes = {part.node};
        break;
      }
      case StageSource::kNone:
        break;
    }
    t.cpu_seconds = cpu_per_byte * static_cast<double>(t.input_bytes);
    t.output_bytes = static_cast<Bytes>(static_cast<double>(t.input_bytes) *
                                        stage.output_ratio);
    t.cache_bytes = static_cast<Bytes>(static_cast<double>(t.input_bytes) *
                                       stage.cache_ratio);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

void SparkContext::maybe_replan_stage(Stage& stage) {
  if (!aqe_.enabled || stage.source != StageSource::kShuffle) return;
  if (!stage.reduce_slices.empty()) return;  // already re-planned
  const int R =
      stage.reduce_partitions > 0 ? stage.reduce_partitions : stage.num_tasks;
  if (R <= 1) return;

  // Actual per-partition bytes, summed over the stage's input shuffles
  // (two for joins). Every producer has finished by now — run_job runs
  // stages sequentially, and submit_ready_stages gates on parent completion
  // — so these are committed map-output statistics, not estimates.
  std::vector<Bytes> bytes(static_cast<size_t>(R), 0);
  Bytes total = 0;
  for (const int sid : stage.in_shuffle_ids) {
    const std::vector<Bytes> part = shuffles_->reduce_partition_bytes(sid, R);
    for (int r = 0; r < R; ++r) {
      bytes[static_cast<size_t>(r)] += part[static_cast<size_t>(r)];
      total += part[static_cast<size_t>(r)];
    }
  }
  if (total == 0) return;

  // The tuner (when enabled) overrides the static coalesce target with the
  // argmin of its fitted per-task cost model; it keeps the static target
  // until the model has seen enough spread to be determined.
  aqe::AqeOptions opt = aqe_;
  if (opt.min_partitions == 0) {
    opt.min_partitions = std::max(
        1, static_cast<int>(config_.get_int("spark.default.parallelism")));
  }
  if (tuner_ != nullptr) {
    const int slots =
        static_cast<int>(executors_.size()) *
        static_cast<int>(config_.get_int("spark.executor.cores"));
    opt.target_partition_bytes =
        tuner_->choose_target(total, slots, opt.target_partition_bytes);
  }

  const aqe::AqePlan plan = aqe::plan_reduce_stage(bytes, opt);
  if (plan.identity) return;

  stage.reduce_partitions = R;
  stage.reduce_slices = plan.slices;
  stage.num_tasks = static_cast<int>(plan.slices.size());
  if (m_replans_) m_replans_.add(1.0);
  event_log_.record(Event{EventKind::kStageReplanned, cluster_->sim().now(),
                          -1, stage.ordinal, -1, -1, stage.num_tasks,
                          stage.name});
  SAEX_INFO(
      "AQE re-planned stage {} '{}': {} partitions -> {} tasks "
      "({} coalesced away, {} skew-split)",
      stage.ordinal, stage.name, R, stage.num_tasks, plan.merged_partitions,
      plan.split_partitions);
}

void SparkContext::tuner_observe_stage(const Stage& stage,
                                       const std::vector<double>& durations,
                                       const std::vector<Bytes>& task_bytes,
                                       double makespan) {
  if (tuner_ == nullptr || stage.source != StageSource::kShuffle) return;
  aqe::StageObservation obs;
  obs.durations = durations;
  obs.bytes = task_bytes;
  obs.pool_size = executors_.empty() ? 0 : executors_.front()->pool_size();
  obs.makespan = makespan;
  obs.total_bytes = stage.input_bytes;
  tuner_->observe_stage(obs);
}

void SparkContext::apply_tuner_pool_hint(const Stage& stage) {
  if (tuner_ == nullptr || stage.source != StageSource::kShuffle) return;
  if (tuner_->stages_observed() == 0) return;
  const int hint = tuner_->choose_pool_hint(executors_.front()->pool_size());
  if (hint <= 0) return;
  // Seed every executor's pool; the per-interval policy climbs from here.
  for (auto& exec : executors_) exec->set_pool_size(hint);
}

// ---------------------------------------------------------------------------
// Fault tolerance: executor loss and lineage recovery.
//
// Killing an executor loses everything its *process* held: registered
// shuffle map outputs and cached RDD partitions. DFS blocks live in the
// datanode and survive. Lost shuffle partitions are recomputed by
// resubmitting the producing stage for exactly those partitions (Spark's
// lineage resubmission); task sets that fetch from a recovering shuffle are
// parked (held) and resume when the rebuild lands. Lost cached partitions
// have no lineage here, so tasks reading them exhaust their retry budget and
// the job fails with a typed abort.
// ---------------------------------------------------------------------------

void SparkContext::kill_executor(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(executors_.size())) {
    SAEX_WARN("ignoring kill of executor {}: cluster has nodes 0..{}", node_id,
              executors_.size() - 1);
    return;
  }
  if (!fault_state_->node_alive(node_id)) return;  // idempotent
  const double now = cluster_->sim().now();
  SAEX_WARN("executor {} lost at t={:.3f}", node_id, now);
  fault_state_->mark_dead(node_id);
  event_log_.record(
      Event{EventKind::kExecutorLost, now, -1, -1, -1, node_id, 0, {}});
  if (node_fault_hook_) node_fault_hook_(node_id);
  // Order matters: stop offers first, then fail the running attempts, then
  // drop the map outputs so recovery sees the final loss.
  scheduler_->kill_executor(node_id);
  executors_[static_cast<size_t>(node_id)]->kill();
  const std::map<int, std::vector<int>> lost = shuffles_->on_node_lost(node_id);
  for (const auto& [shuffle_id, partitions] : lost) {
    recover_shuffle(shuffle_id, partitions);
  }
}

void SparkContext::revive_executor(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(executors_.size())) {
    SAEX_WARN("ignoring rejoin of executor {}: cluster has nodes 0..{}",
              node_id, executors_.size() - 1);
    return;
  }
  if (fault_state_->node_alive(node_id)) return;  // idempotent
  const double now = cluster_->sim().now();
  SAEX_WARN("executor {} rejoined at t={:.3f}", node_id, now);
  fault_state_->mark_alive(node_id);
  event_log_.record(
      Event{EventKind::kExecutorRevived, now, -1, -1, -1, node_id, 0, {}});
  // The runtime must be live before the scheduler revives the slot: revive's
  // try_assign may dispatch to the node in the same instant.
  executors_[static_cast<size_t>(node_id)]->revive();
  scheduler_->revive_executor(node_id);
}

void SparkContext::record_shuffle_producer(const Stage& stage) {
  if (stage.sink == StageSink::kShuffleWrite && stage.out_shuffle_id >= 0) {
    // Reduce-partition weights (ShuffleTraits::skew) must be registered
    // before any consumer plans its fetches; the producer is always
    // submitted — and hence recorded — first.
    shuffles_->set_reduce_skew(stage.out_shuffle_id, stage.out_skew);
    shuffle_producers_.insert_or_assign(stage.out_shuffle_id, stage);
  }
  // Cache lineage: remember who materializes each cache so partitions
  // dropped by eviction can be recomputed instead of aborting the job.
  if (stage.cache_out_id >= 0) {
    cache_producers_.insert_or_assign(stage.cache_out_id, stage);
  }
}

FetchFailureAction SparkContext::on_fetch_failure(uint64_t set_id,
                                                  int shuffle_id,
                                                  int src_node, int cache_id,
                                                  int partition) {
  if (shuffle_id < 0) {
    // Cached data. A partition dropped by eviction (owner still alive) has
    // lineage: park the set and recompute it. A partition lost with its
    // executor keeps the PR 2 semantics — charged, so the retry budget
    // bounds the job.
    if (cache_id >= 0 && caches_->has(cache_id) &&
        cache_producers_.count(cache_id) > 0 &&
        caches_->partition(cache_id, partition).dropped) {
      cache_held_sets_[cache_id].push_back(set_id);
      const auto it = recovering_caches_.find(cache_id);
      if (it == recovering_caches_.end() || it->second == 0) {
        recover_cache(cache_id, dropped_cache_partitions(cache_id));
      }
      return FetchFailureAction::kHold;
    }
    return FetchFailureAction::kCharge;
  }
  // Either way the failure is blamed on the source node — the health
  // breaker counts transient drops (flaky NIC) and dead-node fetches alike.
  if (node_fault_hook_ && src_node >= 0) node_fault_hook_(src_node);
  if (fault_state_->node_alive(src_node)) {
    // Transient seeded drop: the data is still there, charge and retry.
    return FetchFailureAction::kCharge;
  }
  const auto it = recovering_.find(shuffle_id);
  if (it != recovering_.end() && it->second > 0) {
    // Rebuild in flight: park the set; on_recovery_done releases it.
    held_sets_[shuffle_id].push_back(set_id);
    return FetchFailureAction::kHold;
  }
  // Recovery already finished (or the kill hook raced this status update):
  // a free retry re-plans its fetches against the rebuilt outputs.
  return FetchFailureAction::kRetry;
}

void SparkContext::recover_shuffle(int shuffle_id,
                                   const std::vector<int>& partitions) {
  const auto it = shuffle_producers_.find(shuffle_id);
  if (it == shuffle_producers_.end()) {
    SAEX_WARN("shuffle {} lost {} partitions but has no recorded producer",
              shuffle_id, partitions.size());
    return;
  }
  const Stage& producer = it->second;
  ++recovering_[shuffle_id];
  SAEX_WARN("resubmitting stage {} '{}' for {} lost partitions of shuffle {}",
            producer.ordinal, producer.name, partitions.size(), shuffle_id);
  event_log_.record(Event{EventKind::kStageResubmitted, cluster_->sim().now(),
                          -1, producer.ordinal, -1, -1,
                          static_cast<int64_t>(partitions.size()),
                          producer.name});

  // Park every running consumer *now*, not on its first fetch failure: once
  // on_node_lost dropped the dead node's commits, a newly launched reader
  // would plan its fetches from the surviving partial outputs and silently
  // read incomplete data (Spark's MetadataFetchFailed case).
  for (const uint64_t id : scheduler_->hold_sets_reading(shuffle_id)) {
    held_sets_[shuffle_id].push_back(id);
  }

  std::vector<TaskSpec> all = make_tasks(producer);
  std::vector<TaskSpec> tasks;
  tasks.reserve(partitions.size());
  for (const int p : partitions) {
    tasks.push_back(all[static_cast<size_t>(p)]);
  }
  // job_id -1 outranks every real job under FIFO, so the rebuild is not
  // starved by the very work that waits on it.
  scheduler_->submit_stage(
      producer, std::move(tasks), /*job_id=*/-1, "default",
      [this, shuffle_id](const TaskScheduler::TaskSetResult& result) {
        on_recovery_done(shuffle_id, result.failed);
      });
}

void SparkContext::on_recovery_done(int shuffle_id, bool failed) {
  const auto it = recovering_.find(shuffle_id);
  assert(it != recovering_.end() && "recovery finished for unknown shuffle");
  if (--it->second > 0) return;
  recovering_.erase(it);

  std::vector<uint64_t> held;
  if (const auto h = held_sets_.find(shuffle_id); h != held_sets_.end()) {
    held = std::move(h->second);
    held_sets_.erase(h);
  }
  if (failed) {
    SAEX_WARN("lineage recovery of shuffle {} failed; aborting dependents",
              shuffle_id);
    for (const uint64_t id : held) scheduler_->abort_set(id);
  } else {
    for (const uint64_t id : held) {
      // A set reading two recovering shuffles (a join) stays parked until the
      // last of them has been rebuilt.
      bool still_held = false;
      for (const auto& [sid, ids] : held_sets_) {
        for (const uint64_t other : ids) {
          if (other == id) {
            still_held = true;
            break;
          }
        }
        if (still_held) break;
      }
      if (!still_held) scheduler_->hold_set(id, false);
    }
    // Stages deferred because their input shuffle was rebuilding can go now.
    for (auto& [job_id, run] : jobs_) submit_ready_stages(*run);
  }
}

bool SparkContext::input_recovering(const Stage& stage) const {
  for (const int sid : stage.in_shuffle_ids) {
    if (recovering_.count(sid) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Evicted-block recompute: cache partitions dropped by the BlockManager
// (saex.storage.spillOnEvict=false) are rebuilt by resubmitting the
// producing stage for exactly the dropped partitions, mirroring the shuffle
// lineage path. Consumer sets that trip over a dropped partition are parked
// (kHold) and released when the rebuild lands. The recompute is one level
// deep: a producer whose own cached input was dropped as well is not
// recursively recovered (as in Spark, deep miss chains surface as retries).
// ---------------------------------------------------------------------------

std::vector<int> SparkContext::dropped_cache_partitions(int cache_id) const {
  std::vector<int> dropped;
  const auto it = dag_->caches().find(cache_id);
  if (it == dag_->caches().end()) return dropped;
  for (int p = 0; p < it->second.partitions; ++p) {
    if (caches_->partition(cache_id, p).dropped) dropped.push_back(p);
  }
  return dropped;
}

bool SparkContext::cache_recovering(const Stage& stage) const {
  return stage.source == StageSource::kCached &&
         recovering_caches_.count(stage.in_cache_id) > 0;
}

void SparkContext::maybe_recover_cache(const Stage& stage) {
  if (stage.source != StageSource::kCached) return;
  if (recovering_caches_.count(stage.in_cache_id) > 0) return;
  const std::vector<int> dropped =
      dropped_cache_partitions(stage.in_cache_id);
  if (dropped.empty()) return;
  recover_cache(stage.in_cache_id, dropped);
}

void SparkContext::recover_cache(int cache_id,
                                 const std::vector<int>& partitions) {
  if (partitions.empty()) return;
  const auto it = cache_producers_.find(cache_id);
  if (it == cache_producers_.end()) {
    SAEX_WARN("cache {} dropped {} partitions but has no recorded producer",
              cache_id, partitions.size());
    return;
  }
  const Stage& producer = it->second;
  ++recovering_caches_[cache_id];
  if (m_recomputes_) m_recomputes_.add(static_cast<double>(partitions.size()));
  SAEX_WARN(
      "resubmitting stage {} '{}' for {} evicted partitions of cache {}",
      producer.ordinal, producer.name, partitions.size(), cache_id);
  event_log_.record(Event{EventKind::kStageResubmitted, cluster_->sim().now(),
                          -1, producer.ordinal, -1, -1,
                          static_cast<int64_t>(partitions.size()),
                          producer.name});

  std::vector<TaskSpec> all = make_tasks(producer);
  std::vector<TaskSpec> tasks;
  tasks.reserve(partitions.size());
  for (const int p : partitions) {
    tasks.push_back(all[static_cast<size_t>(p)]);
  }
  // job_id -1: the rebuild outranks the work waiting on it under FIFO.
  scheduler_->submit_stage(
      producer, std::move(tasks), /*job_id=*/-1, "default",
      [this, cache_id](const TaskScheduler::TaskSetResult& result) {
        on_cache_recovery_done(cache_id, result.failed);
      });
}

void SparkContext::on_cache_recovery_done(int cache_id, bool failed) {
  const auto it = recovering_caches_.find(cache_id);
  assert(it != recovering_caches_.end() &&
         "recovery finished for unknown cache");
  if (--it->second > 0) return;
  recovering_caches_.erase(it);

  std::vector<uint64_t> held;
  if (const auto h = cache_held_sets_.find(cache_id);
      h != cache_held_sets_.end()) {
    held = std::move(h->second);
    cache_held_sets_.erase(h);
  }
  std::sort(held.begin(), held.end());
  held.erase(std::unique(held.begin(), held.end()), held.end());
  if (failed) {
    SAEX_WARN("recompute of cache {} failed; aborting dependents", cache_id);
    for (const uint64_t id : held) scheduler_->abort_set(id);
    return;
  }
  for (const uint64_t id : held) scheduler_->hold_set(id, false);
  // Stages deferred because their cached input was rebuilding can go now.
  for (auto& [job_id, run] : jobs_) submit_ready_stages(*run);
}

// ---------------------------------------------------------------------------
// Concurrent (event-driven) job submission — the saex::serve path.
//
// Instead of run_job()'s sequential stage loop, a JobRun tracks how many
// unfinished parents each stage has *within the job*; stages whose count is
// zero are submitted to the shared TaskScheduler immediately, and each
// stage-completion event unlocks its children. Stages of different jobs (and
// independent stages of one job) are therefore in flight together, arbitrated
// by the scheduler's FIFO/FAIR ordering.
//
// Per-stage rollups are window-based: cluster-wide counters are snapshotted
// at submit and diffed at completion, so with overlapping jobs a stage's
// disk/network bytes include the traffic of whatever else ran during its
// window. Utilizations are exact (busy-tracker integrals over the window).
// ---------------------------------------------------------------------------

struct SparkContext::JobRun {
  int job_id = 0;
  std::string pool;
  JobPlan plan;
  std::map<int, int> pending_parents;  // stage uid -> unfinished parents
  std::map<int, int> event_ordinal;    // stage uid -> application ordinal
  std::set<int> submitted;             // stage uids handed to the scheduler
  std::map<int, uint64_t> live_sets;   // stage uid -> in-flight task-set id
  int in_flight = 0;
  size_t stages_done = 0;
  JobReport report;
  std::function<void(JobReport)> on_done;

  // Per-stage baselines snapshotted at submit (keyed by stage uid).
  struct Baseline {
    double start_time = 0.0;
    Bytes net_base = 0;
    std::vector<Bytes> disk_read, disk_written;
    std::vector<double> blocked;
    std::vector<Bytes> io_bytes;
  };
  std::map<int, Baseline> baselines;
};

int SparkContext::submit_job(const Rdd& action, std::string app_name,
                             std::string pool,
                             std::function<void(JobReport)> on_done) {
  JobPlan plan = dag_->build(action);
  for (const auto& [cache_id, info] : dag_->caches()) {
    if (!caches_->has(cache_id)) caches_->init(cache_id, info.partitions);
  }

  const int job_id = job_counter_++;
  auto run = std::make_unique<JobRun>();
  run->job_id = job_id;
  run->pool = std::move(pool);
  run->plan = std::move(plan);
  run->on_done = std::move(on_done);
  run->report.app_name = std::move(app_name);
  run->report.policy_name = policy_name_;
  run->report.job_id = job_id;
  run->report.pool = run->pool;
  run->report.submit_time = cluster_->sim().now();

  // Count each stage's unfinished parents *within this plan*; parents built
  // by earlier jobs (reused shuffle/cache outputs) are already materialized.
  for (const Stage& stage : run->plan.stages) {
    int pending = 0;
    for (const int parent : stage.parent_uids) {
      if (run->plan.stage_by_uid(parent) != nullptr) ++pending;
    }
    run->pending_parents[stage.uid] = pending;
    if (stage.source == StageSource::kDfs &&
        run->report.input_bytes == 0) {
      run->report.input_bytes = stage.input_bytes;
    }
  }

  event_log_.record(Event{EventKind::kJobStart, run->report.submit_time,
                          job_id, -1, -1, -1, 0, run->report.app_name});

  JobRun& ref = *run;
  jobs_.emplace(job_id, std::move(run));
  submit_ready_stages(ref);
  return job_id;
}

void SparkContext::submit_ready_stages(JobRun& run) {
  if (run.report.failed) return;  // an aborted stage cancels the rest
  for (Stage& stage : run.plan.stages) {
    if (run.pending_parents.at(stage.uid) > 0 ||
        run.submitted.count(stage.uid) > 0) {
      continue;
    }
    // A stage fetching from a shuffle under lineage recovery would only
    // fail and park; defer it until on_recovery_done resubmits. Same for a
    // cached input whose dropped partitions are being recomputed.
    if (input_recovering(stage)) continue;
    maybe_recover_cache(stage);
    if (cache_recovering(stage)) continue;
    run.submitted.insert(stage.uid);
    submit_stage_of(run, stage);
  }
}

void SparkContext::submit_stage_of(JobRun& run, Stage& stage) {
  // Re-plan before anything observes the stage shape (the kStageStart event
  // below logs num_tasks; make_tasks sizes the task set).
  maybe_replan_stage(stage);
  sim::Simulation& sim = cluster_->sim();
  const double now = sim.now();
  const int app_ordinal = app_stage_counter_++;
  run.event_ordinal[stage.uid] = app_ordinal;

  JobRun::Baseline base;
  base.start_time = now;
  base.net_base = cluster_->network().total_bytes();
  for (auto& exec : executors_) {
    const hw::Node& node = cluster_->node(exec->node_id());
    base.disk_read.push_back(node.disk().total_bytes_read());
    base.disk_written.push_back(node.disk().total_bytes_written());
    base.blocked.push_back(exec->io_counters().blocked_seconds);
    base.io_bytes.push_back(exec->io_counters().bytes_total());
  }
  run.baselines.emplace(stage.uid, std::move(base));

  event_log_.record(Event{EventKind::kStageStart, now, run.job_id,
                          app_ordinal, -1, -1, stage.num_tasks, stage.name});
  record_shuffle_producer(stage);
  ++run.in_flight;
  const int uid = stage.uid;
  const int job_id = run.job_id;
  const uint64_t set_id = scheduler_->submit_stage(
      stage, make_tasks(stage), job_id, run.pool,
      [this, job_id, uid](const TaskScheduler::TaskSetResult& result) {
        const auto it = jobs_.find(job_id);
        assert(it != jobs_.end() && "stage completed for a finished job");
        JobRun& r = *it->second;
        r.live_sets.erase(uid);
        Stage* stage = nullptr;
        for (Stage& s : r.plan.stages) {
          if (s.uid == uid) stage = &s;
        }
        assert(stage != nullptr);
        on_stage_finished(r, *stage, result);
      });
  // on_done never fires synchronously from submit_stage (the first dispatch
  // crosses the driver->executor message latency), so the id lands before
  // any completion can erase it.
  run.live_sets.emplace(uid, set_id);
}

bool SparkContext::cancel_job(int job_id) {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  JobRun& run = *it->second;
  run.report.failed = true;
  run.report.cancelled = true;
  // Snapshot: each abort may synchronously fire its stage callback (no
  // copies in flight), mutating live_sets — and the last one finishes the
  // job and frees the JobRun.
  std::vector<uint64_t> sets;
  sets.reserve(run.live_sets.size());
  for (const auto& [uid, set_id] : run.live_sets) sets.push_back(set_id);
  for (const uint64_t set_id : sets) {
    if (jobs_.count(job_id) == 0) return true;  // finished mid-abort
    scheduler_->abort_set(set_id);
  }
  // Between stages (nothing in flight) the aborted job must still settle.
  if (const auto again = jobs_.find(job_id); again != jobs_.end()) {
    maybe_finish_job(*again->second);
  }
  return true;
}

void SparkContext::on_stage_finished(
    JobRun& run, Stage& stage, const TaskScheduler::TaskSetResult& result) {
  sim::Simulation& sim = cluster_->sim();
  const double stage_end = sim.now();
  --run.in_flight;
  ++run.stages_done;

  const int app_ordinal = run.event_ordinal.at(stage.uid);
  event_log_.record(Event{EventKind::kStageEnd, stage_end, run.job_id,
                          app_ordinal, -1, -1, 0, stage.name});

  if (result.first_launch_time >= 0.0 &&
      (run.report.first_launch_time < 0.0 ||
       result.first_launch_time < run.report.first_launch_time)) {
    run.report.first_launch_time = result.first_launch_time;
  }

  if (result.failed) {
    run.report.failed = true;
    SAEX_WARN("job {} stage {} aborted; failing the job", run.job_id,
              stage.ordinal);
  } else {
    // Register the produced output file so downstream stages can read it.
    if (stage.sink == StageSink::kDfsWrite && !dfs_->exists(stage.out_path)) {
      dfs_->create_output(stage.out_path, stage.output_bytes(), 0,
                          stage.out_replication);
    }
  }

  // Window-based stage rollup (see the submit_job comment block).
  const JobRun::Baseline& base = run.baselines.at(stage.uid);
  StageStats stats;
  stats.ordinal = stage.ordinal;
  stats.name = stage.name;
  stats.io_tagged = stage.io_tagged;
  stats.num_tasks = stage.num_tasks;
  stats.start_time = base.start_time;
  stats.end_time = stage_end;
  stats.input_bytes = stage.input_bytes;
  stats.net_bytes = cluster_->network().total_bytes() - base.net_base;

  const double dur = std::max(stage_end - base.start_time, 1e-9);
  double cpu_sum = 0.0, disk_sum = 0.0, iowait_sum = 0.0;
  for (size_t i = 0; i < executors_.size(); ++i) {
    ExecutorRuntime& exec = *executors_[i];
    const hw::Node& node = cluster_->node(exec.node_id());
    const double cpu_util =
        node.cpu().busy_tracker().utilization(base.start_time, stage_end);
    const double disk_util =
        node.disk().busy_tracker().utilization(base.start_time, stage_end);
    const double blocked =
        exec.io_counters().blocked_seconds - base.blocked[i];
    const double cores = static_cast<double>(node.cpu().cores());
    const double iowait =
        std::min(blocked / (cores * dur), std::max(0.0, 1.0 - cpu_util));
    cpu_sum += cpu_util;
    disk_sum += disk_util;
    iowait_sum += iowait;
    stats.disk_read += node.disk().total_bytes_read() - base.disk_read[i];
    stats.disk_written +=
        node.disk().total_bytes_written() - base.disk_written[i];

    // Unlike run_job (the figure path), the concurrent path keeps only the
    // cluster-wide rollups: JobServer retains every finished JobReport, so a
    // per-executor row here is O(cluster × stages) live memory *per job* —
    // ~1 MB/job on a 10k-node cluster, which OOMs a 100k-job serve_trace_xl
    // replay. Nothing on the serve path reads StageStats::executors.
    stats.threads_total += exec.pool_size();
  }
  const double n = static_cast<double>(executors_.size());
  stats.cpu_utilization = cpu_sum / n;
  stats.disk_utilization = disk_sum / n;
  stats.iowait_fraction = iowait_sum / n;

  metrics::Histogram durations(0.01, 1.15);
  for (const double d : result.durations) {
    durations.add(d);
    stats.task_seconds += d;
  }
  stats.task_p50 = durations.quantile(0.5);
  stats.task_p95 = durations.quantile(0.95);
  stats.task_max = durations.max();
  run.report.stages.push_back(std::move(stats));
  run.baselines.erase(stage.uid);

  // Unlock children and keep the runnable set saturated.
  if (!run.report.failed) {
    for (Stage& child : run.plan.stages) {
      for (const int parent : child.parent_uids) {
        if (parent == stage.uid) --run.pending_parents.at(child.uid);
      }
    }
    submit_ready_stages(run);
  }
  maybe_finish_job(run);
}

void SparkContext::maybe_finish_job(JobRun& run) {
  const bool all_done =
      !run.report.failed && run.stages_done == run.plan.stages.size();
  const bool aborted = run.report.failed && run.in_flight == 0;
  if (!all_done && !aborted) return;

  sim::Simulation& sim = cluster_->sim();
  run.report.finish_time = sim.now();
  run.report.total_runtime = run.report.finish_time - run.report.submit_time;
  run.report.events_processed = sim.processed();
  std::sort(run.report.stages.begin(), run.report.stages.end(),
            [](const StageStats& a, const StageStats& b) {
              return a.ordinal < b.ordinal;
            });
  for (const StageStats& s : run.report.stages) {
    run.report.total_disk_bytes += s.disk_read + s.disk_written;
  }
  event_log_.record(Event{EventKind::kJobEnd, sim.now(), run.job_id, -1, -1,
                          -1, 0, run.report.app_name});

  JobReport report = std::move(run.report);
  auto on_done = std::move(run.on_done);
  jobs_.erase(report.job_id);  // `run` is dangling from here on
  if (on_done) on_done(std::move(report));
}

JobReport SparkContext::run_job(const Rdd& action, std::string app_name) {
  // The DAG scheduler persists across jobs: cached RDDs and shuffle outputs
  // materialized by earlier jobs are reused, not recomputed.
  JobPlan plan = dag_->build(action);

  for (const auto& [cache_id, info] : dag_->caches()) {
    if (!caches_->has(cache_id)) caches_->init(cache_id, info.partitions);
  }

  sim::Simulation& sim = cluster_->sim();
  const int job_id = job_counter_++;

  JobReport report;
  report.app_name = std::move(app_name);
  report.policy_name = policy_name_;
  const double job_start = sim.now();
  event_log_.record(Event{EventKind::kJobStart, job_start, job_id, -1, -1, -1,
                          0, report.app_name});

  // Per-node snapshot baselines.
  struct Baseline {
    Bytes disk_read, disk_written;
    double blocked;
    Bytes io_bytes;
  };

  for (Stage& stage : plan.stages) {
    // A mid-stage executor kill may have left lineage recovery in flight;
    // a consumer stage must not plan its fetches until the rebuild lands.
    // Likewise a cached input with eviction-dropped partitions is rebuilt
    // before the reader launches (rather than parking every task on a miss).
    maybe_recover_cache(stage);
    while (input_recovering(stage) || cache_recovering(stage)) {
      if (!sim.step()) {
        throw std::runtime_error(strfmt::format(
            "stage {} deadlocked waiting for lineage recovery",
            stage.ordinal));
      }
    }
    // Re-plan before anything observes the stage shape: the consumed
    // shuffle's map outputs are fully committed at this point (stages run
    // sequentially here), which is exactly the AQE interception window.
    maybe_replan_stage(stage);
    const double stage_start = sim.now();

    // Stage start: every executor's policy (re)sizes its pool. The ordinal
    // is application-wide (continues across jobs) so per-stage policies see
    // the same numbering the paper's figures use.
    const adaptive::StageContext sctx{
        static_cast<int64_t>(job_id) * 1000 + stage.ordinal,
        app_stage_counter_++, stage.io_tagged};
    for (auto& exec : executors_) {
      exec->policy().on_stage_start(sctx, stage_start);
    }
    // AQE tuner's pool-size seed overrides the policy's opening width; the
    // policy's MAPE-K loop keeps adapting from the seed within the stage.
    apply_tuner_pool_hint(stage);

    std::vector<Baseline> base;
    Bytes net_base = cluster_->network().total_bytes();
    for (auto& exec : executors_) {
      const hw::Node& node = cluster_->node(exec->node_id());
      base.push_back(Baseline{node.disk().total_bytes_read(),
                              node.disk().total_bytes_written(),
                              exec->io_counters().blocked_seconds,
                              exec->io_counters().bytes_total()});
    }

    event_log_.record(Event{EventKind::kStageStart, stage_start, job_id,
                            sctx.stage_ordinal, -1, -1, stage.num_tasks,
                            stage.name});
    record_shuffle_producer(stage);
    bool done = false;
    std::vector<TaskSpec> tasks = make_tasks(stage);
    std::vector<Bytes> task_bytes;
    if (tuner_ != nullptr) {
      task_bytes.reserve(tasks.size());
      for (const TaskSpec& t : tasks) task_bytes.push_back(t.input_bytes);
    }
    scheduler_->run_stage(stage, std::move(tasks), [&done] { done = true; });
    uint64_t steps = 0;
    while (!done) {
      if (!sim.step()) {
        throw std::runtime_error(strfmt::format(
            "stage {} deadlocked: no pending events but tasks incomplete",
            stage.ordinal));
      }
      if ((++steps & 0xfffff) == 0) {
        SAEX_DEBUG("stage {}: {} steps, sim time {:.1f}s, pending {}",
                   stage.ordinal, steps, sim.now(), sim.pending());
      }
    }
    const double stage_end = sim.now();
    for (auto& exec : executors_) exec->policy().on_stage_end(stage_end);
    tuner_observe_stage(stage, scheduler_->completed_durations(), task_bytes,
                        stage_end - stage_start);
    event_log_.record(Event{EventKind::kStageEnd, stage_end, job_id,
                            sctx.stage_ordinal, -1, -1, 0, stage.name});

    if (scheduler_->stage_failed()) {
      throw StageAbortedError(
          stage.ordinal,
          strfmt::format(
              "stage {} aborted: a task exceeded spark.task.maxFailures",
              stage.ordinal));
    }

    // Register the produced output file so downstream stages could read it.
    if (stage.sink == StageSink::kDfsWrite && !dfs_->exists(stage.out_path)) {
      dfs_->create_output(stage.out_path, stage.output_bytes(), 0,
                          stage.out_replication);
    }

    // Roll up stage metrics.
    StageStats stats;
    stats.ordinal = stage.ordinal;
    stats.name = stage.name;
    stats.io_tagged = stage.io_tagged;
    stats.num_tasks = stage.num_tasks;
    stats.start_time = stage_start;
    stats.end_time = stage_end;
    stats.input_bytes = stage.input_bytes;
    stats.net_bytes = cluster_->network().total_bytes() - net_base;

    const double dur = std::max(stage_end - stage_start, 1e-9);
    double cpu_sum = 0.0, disk_sum = 0.0, iowait_sum = 0.0;
    for (size_t i = 0; i < executors_.size(); ++i) {
      ExecutorRuntime& exec = *executors_[i];
      const hw::Node& node = cluster_->node(exec.node_id());
      const double cpu_util =
          node.cpu().busy_tracker().utilization(stage_start, stage_end);
      const double disk_util =
          node.disk().busy_tracker().utilization(stage_start, stage_end);
      const double blocked =
          exec.io_counters().blocked_seconds - base[i].blocked;
      // mpstat-style iowait: cores idle while I/O is pending; bounded by the
      // idle fraction.
      const double cores = static_cast<double>(node.cpu().cores());
      const double iowait =
          std::min(blocked / (cores * dur), std::max(0.0, 1.0 - cpu_util));

      cpu_sum += cpu_util;
      disk_sum += disk_util;
      iowait_sum += iowait;
      stats.disk_read += node.disk().total_bytes_read() - base[i].disk_read;
      stats.disk_written +=
          node.disk().total_bytes_written() - base[i].disk_written;

      ExecutorStageStats es;
      es.node = exec.node_id();
      es.threads_settled = exec.pool_size();
      es.blocked_seconds = blocked;
      es.io_bytes = exec.io_counters().bytes_total() - base[i].io_bytes;
      stats.threads_total += es.threads_settled;
      stats.executors.push_back(es);
    }
    const double n = static_cast<double>(executors_.size());
    stats.cpu_utilization = cpu_sum / n;
    stats.disk_utilization = disk_sum / n;
    stats.iowait_fraction = iowait_sum / n;

    metrics::Histogram durations(0.01, 1.15);
    for (const double d : scheduler_->completed_durations()) durations.add(d);
    stats.task_p50 = durations.quantile(0.5);
    stats.task_p95 = durations.quantile(0.95);
    stats.task_max = durations.max();

    if (stage.source == StageSource::kDfs && report.input_bytes == 0) {
      report.input_bytes = stage.input_bytes;
    }
    report.stages.push_back(std::move(stats));

    SAEX_INFO("stage {} '{}' finished in {} (threads {}/{})", stage.ordinal,
              stage.name, format_duration(stage_end - stage_start),
              report.stages.back().threads_total,
              static_cast<int>(n) *
                  static_cast<int>(config_.get_int("spark.executor.cores")));
  }

  event_log_.record(Event{EventKind::kJobEnd, sim.now(), job_id, -1, -1, -1,
                          0, report.app_name});
  report.total_runtime = sim.now() - job_start;
  report.events_processed = sim.processed();
  for (const StageStats& s : report.stages) {
    report.total_disk_bytes += s.disk_read + s.disk_written;
  }
  return report;
}

}  // namespace saex::engine
