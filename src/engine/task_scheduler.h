// Driver-side task scheduler.
//
// Mirrors Spark's TaskSchedulerImpl: it tracks each executor's advertised
// pool size and currently assigned tasks, offers tasks locality-first, and
// assigns greedily as slots free up. All driver↔executor interactions cross
// a message boundary with a small latency, including the protocol extension
// the paper adds in §5.4: ThreadPoolResized(executor, newSize), without
// which the driver's free-core registry would diverge from the executor's
// actual capacity after an adaptive resize.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "adaptive/types.h"
#include "engine/event_log.h"
#include "engine/executor_runtime.h"
#include "engine/stage.h"
#include "sim/simulation.h"

namespace saex::engine {

class TaskScheduler {
 public:
  struct Options {
    double message_latency = 0.0005;
    // Fault tolerance (spark.task.maxFailures): attempts per task before the
    // stage is aborted.
    int max_task_failures = 4;
    // Speculative execution (spark.speculation.*): once `quantile` of the
    // stage's tasks finished, a task running longer than `multiplier` x the
    // median successful duration gets a duplicate attempt; the first
    // completion wins.
    bool speculation = false;
    double speculation_multiplier = 1.5;
    double speculation_quantile = 0.75;
    double speculation_interval = 0.1;  // spark.speculation.interval
    // Delay scheduling (spark.locality.wait): an executor defers stealing a
    // task that prefers other nodes until this long after the stage start.
    double locality_wait = 3.0;
    // Blacklisting (spark.blacklist.*): after this many failed attempts on
    // one executor within a stage, that executor gets no more of its tasks.
    bool blacklist_enabled = false;
    int max_failed_tasks_per_executor = 2;
    EventLog* event_log = nullptr;
  };

  TaskScheduler(sim::Simulation& sim, std::vector<ExecutorRuntime*> executors,
                Options options);
  // Separate overload: Options' default member initializers are not usable
  // as a default argument inside the enclosing class definition.
  TaskScheduler(sim::Simulation& sim, std::vector<ExecutorRuntime*> executors)
      : TaskScheduler(sim, std::move(executors), Options{}) {}

  /// Runs one stage to completion; only one stage may be in flight.
  /// Policies must have been notified of the stage start already (their
  /// initial pool sizes are read here). Tasks that fail are retried up to
  /// max_task_failures times; exhausting the budget aborts the stage
  /// (stage_failed() returns true when on_done fires).
  void run_stage(const Stage& stage, std::vector<TaskSpec> tasks,
                 std::function<void()> on_done);

  /// True when the last stage ended because a task ran out of attempts.
  bool stage_failed() const noexcept { return stage_failed_; }
  int speculative_launches() const noexcept { return speculative_launches_; }
  /// Executors currently blacklisted for the in-flight stage.
  int blacklisted_executors() const noexcept;
  /// Successful task durations of the last (or current) stage.
  const std::vector<double>& completed_durations() const noexcept {
    return completed_durations_;
  }

  /// The §5.4 protocol extension: executor → driver resize notification.
  /// Public for tests; normally invoked via make_notifier().
  void on_executor_resized(int node_id, int new_size);

  /// Builds the SchedulerNotifier an executor's policy calls on resize; it
  /// delivers on_executor_resized after the message latency.
  adaptive::SchedulerNotifier make_notifier(int node_id);

  int advertised_size(int node_id) const;
  int assigned_count(int node_id) const;

 private:
  struct ExecState {
    ExecutorRuntime* exec;
    int advertised = 0;
    int assigned = 0;
    int stage_failures = 0;  // failed attempts this stage (blacklisting)
    bool blacklisted = false;
  };

  struct TaskState {
    int attempts = 0;
    int running_copies = 0;
    bool done = false;
    double launch_time = 0.0;        // of the oldest running copy
    std::vector<size_t> copy_execs;  // executors currently running a copy
  };

  void try_assign();
  std::optional<size_t> pick_task_for(size_t exec_idx);
  void dispatch(size_t task_idx, size_t exec_idx, bool speculative);
  void on_task_finished(const TaskSpec& spec, size_t exec_idx, bool success);
  void maybe_finish_stage();
  void schedule_speculation_check();
  int total_assigned() const noexcept;

  sim::Simulation& sim_;
  std::vector<ExecState> execs_;
  Options options_;

  const Stage* stage_ = nullptr;
  double stage_start_time_ = 0.0;
  bool locality_timer_armed_ = false;
  std::vector<TaskSpec> tasks_;
  std::vector<TaskState> state_;
  std::vector<double> completed_durations_;
  size_t remaining_ = 0;
  bool stage_failed_ = false;
  int speculative_launches_ = 0;
  std::function<void()> on_done_;
};

}  // namespace saex::engine
