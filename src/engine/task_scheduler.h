// Driver-side task scheduler.
//
// Mirrors Spark's TaskSchedulerImpl: it tracks each executor's advertised
// pool size and currently assigned tasks, offers tasks locality-first, and
// assigns greedily as slots free up. All driver↔executor interactions cross
// a message boundary with a small latency, including the protocol extension
// the paper adds in §5.4: ThreadPoolResized(executor, newSize), without
// which the driver's free-core registry would diverge from the executor's
// actual capacity after an adaptive resize.
//
// Multi-job extension (saex::serve): any number of task sets — one per
// (job, stage) — may be in flight at once, exactly like Spark's TaskSetManagers.
// Free slots are offered to task sets in an order decided by the scheduling
// mode: FIFO (by job, then submission) or FAIR (named pools with weight and
// minShare, Spark's FairSchedulingAlgorithm). Executors can be deactivated /
// reactivated at runtime (dynamic allocation): inactive executors receive no
// offers but finish what they are running. The single-stage run_stage() API
// is retained for the sequential driver path and the existing tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/types.h"
#include "engine/event_log.h"
#include "engine/executor_runtime.h"
#include "engine/stage.h"
#include "metrics/registry.h"
#include "sim/simulation.h"

namespace saex::engine {

/// Cross-job slot arbitration (spark.scheduler.mode / saex.scheduler.mode).
enum class SchedulingMode { kFifo, kFair };

/// What the driver decides a fetch failure means (Spark's DAGScheduler
/// handling of FetchFailed): charge it like an ordinary failure (transient
/// drop, or unrecoverable cached data), retry for free, or retry for free
/// *after* parking the whole set while lineage recovery rebuilds the lost
/// map outputs.
enum class FetchFailureAction { kCharge, kRetry, kHold };

/// A FAIR scheduler pool (Spark's fairscheduler.xml entry): a task set in a
/// pool below its minShare outranks every satisfied pool; among satisfied
/// pools, the one with the lowest runningTasks/weight ratio goes first.
struct PoolSpec {
  std::string name = "default";
  int weight = 1;
  int min_share = 0;  // slots
};

class TaskScheduler {
 public:
  struct Options {
    double message_latency = 0.0005;
    // Fault tolerance (spark.task.maxFailures): attempts per task before the
    // stage is aborted.
    int max_task_failures = 4;
    // Speculative execution (spark.speculation.*): once `quantile` of the
    // stage's tasks finished, a task running longer than `multiplier` x the
    // median successful duration gets a duplicate attempt; the first
    // completion wins.
    bool speculation = false;
    double speculation_multiplier = 1.5;
    double speculation_quantile = 0.75;
    double speculation_interval = 0.1;  // spark.speculation.interval
    // Delay scheduling (spark.locality.wait): an executor defers stealing a
    // task that prefers other nodes until this long after the stage start.
    double locality_wait = 3.0;
    // Blacklisting (spark.blacklist.*): after this many failed attempts on
    // one executor within a stage, that executor gets no more of its tasks.
    bool blacklist_enabled = false;
    int max_failed_tasks_per_executor = 2;
    EventLog* event_log = nullptr;
    // Optional engine-level rollups (dispatched/finished/failed/speculative
    // counts). Handles are resolved once at construction; a null registry
    // costs nothing on the per-task path.
    metrics::Registry* metrics = nullptr;
  };

  /// What the driver learns when a task set (one stage of one job) drains.
  struct TaskSetResult {
    bool failed = false;  // a task exhausted spark.task.maxFailures
    int num_tasks = 0;
    std::vector<double> durations;   // successful task durations
    double submit_time = 0.0;        // when the set entered the scheduler
    double first_launch_time = -1.0; // first task dispatch (-1: never ran)
    double finish_time = 0.0;
    int speculative_launches = 0;
  };
  using TaskSetDone = std::function<void(const TaskSetResult&)>;

  /// Fired when an executor with no assigned tasks receives its first task
  /// of a set — the serve path uses it to (re)start the executor's adaptive
  /// policy for the stage it is about to work on.
  using ExecutorEngagedHook = std::function<void(int node_id, const Stage&)>;

  /// Consulted on every TaskFailure::kFetchFailed status update; the
  /// SparkContext (which knows shuffle lineage) decides the action. No hook
  /// installed means every fetch failure is charged.
  using FetchFailureHook = std::function<FetchFailureAction(
      uint64_t set_id, const Stage& stage, int shuffle_id, int src_node,
      const TaskSpec& spec)>;

  /// Fired after every task status update with the cumulative finished-task
  /// count — drives count-triggered fault injection (FaultPlan).
  using TaskFinishHook = std::function<void(int64_t finished)>;

  /// Fired after every task status update with the executing node and
  /// whether the attempt succeeded — probe feedback for the node-health
  /// circuit breaker (resilience::NodeHealthTracker). Executor-lost
  /// outcomes are NOT reported here: the node's death is attributed once
  /// via the kill path, not per stranded attempt.
  using TaskOutcomeHook = std::function<void(int node_id, bool success)>;

  TaskScheduler(sim::Simulation& sim, std::vector<ExecutorRuntime*> executors,
                Options options);
  // Separate overload: Options' default member initializers are not usable
  // as a default argument inside the enclosing class definition.
  TaskScheduler(sim::Simulation& sim, std::vector<ExecutorRuntime*> executors)
      : TaskScheduler(sim, std::move(executors), Options{}) {}

  // --- multi-job API -------------------------------------------------------

  void set_scheduling_mode(SchedulingMode mode) noexcept { mode_ = mode; }
  SchedulingMode scheduling_mode() const noexcept { return mode_; }
  /// Registers (or redefines) a FAIR pool. Unknown pools referenced by
  /// submit_stage fall back to weight 1 / minShare 0 (as Spark does).
  void define_pool(PoolSpec spec);
  const std::vector<PoolSpec>& pools() const noexcept { return pool_specs_; }

  /// Submits one stage's tasks as a concurrently schedulable task set;
  /// `on_done` fires (after the status-update latency) when every task
  /// succeeded or the set was aborted. Returns the task-set id.
  uint64_t submit_stage(const Stage& stage, std::vector<TaskSpec> tasks,
                        int job_id, std::string pool, TaskSetDone on_done);

  /// Marks an executor schedulable / unschedulable (dynamic allocation).
  /// Deactivation never kills running tasks; the executor just stops
  /// receiving offers.
  void set_executor_active(int node_id, bool active);
  bool executor_active(int node_id) const;
  int active_executor_count() const noexcept;

  /// Tasks not yet running (pending across all in-flight sets) — the
  /// dynamic-allocation backlog signal.
  int pending_task_count() const noexcept;
  int active_task_sets() const noexcept { return static_cast<int>(sets_.size()); }
  /// Currently running (dispatched) task copies in `pool`.
  int running_in_pool(const std::string& pool) const noexcept;

  void set_executor_engaged_hook(ExecutorEngagedHook hook) {
    engaged_hook_ = std::move(hook);
  }
  void set_fetch_failure_hook(FetchFailureHook hook) {
    fetch_hook_ = std::move(hook);
  }
  void set_task_finish_hook(TaskFinishHook hook) {
    task_finish_hook_ = std::move(hook);
  }
  void set_task_outcome_hook(TaskOutcomeHook hook) {
    task_outcome_hook_ = std::move(hook);
  }

  // --- fault tolerance -----------------------------------------------------

  /// Permanently removes an executor from scheduling (fault injection).
  /// Unlike deactivation this is irreversible: set_executor_active(id, true)
  /// on a dead executor is ignored. Running tasks are not touched here —
  /// killing the ExecutorRuntime makes them drain as kExecutorLost.
  void kill_executor(int node_id);
  bool executor_dead(int node_id) const;
  int dead_executor_count() const noexcept;

  /// Reverses kill_executor for a chaos rejoin: the node's fresh, empty
  /// executor becomes schedulable again (active, previous advertised size).
  /// A node that is not dead is left untouched.
  void revive_executor(int node_id);

  /// Health quarantine (resilience::NodeHealthTracker): a quarantined
  /// executor keeps its running tasks but receives no offers — like
  /// deactivation, but orthogonal to dynamic allocation's active flag so
  /// the two controllers cannot fight over one bit. Ignored for dead
  /// executors.
  void set_executor_quarantined(int node_id, bool quarantined);
  bool executor_quarantined(int node_id) const;
  int quarantined_executor_count() const noexcept;

  /// Parks / unparks a task set: a held set keeps its running copies but
  /// receives no new offers — used while lineage recovery rebuilds the
  /// shuffle outputs its tasks fetch.
  void hold_set(uint64_t id, bool held);
  /// Aborts a task set: pending tasks are dropped, in-flight copies drain,
  /// then on_done fires with result.failed = true.
  void abort_set(uint64_t id);
  /// Holds every running set whose stage reads `shuffle_id` and returns their
  /// ids. Called when that shuffle loses map outputs: launching further tasks
  /// would build fetch plans from the surviving partial outputs and silently
  /// read incomplete data (Spark's MetadataFetchFailed case).
  std::vector<uint64_t> hold_sets_reading(int shuffle_id);

  /// Fetch failures observed (before the driver's charge/retry/hold call).
  int64_t fetch_failures() const noexcept { return fetch_failures_; }
  /// Attempts that died with their executor (free retries).
  int64_t executor_lost_failures() const noexcept {
    return executor_lost_failures_;
  }

  // --- invariant counters (tests) -----------------------------------------

  /// Times a task was dispatched to an executor whose assigned count had
  /// already reached its advertised size, or to an inactive executor.
  /// Always 0 unless the slot accounting is broken.
  int64_t dispatch_overcommits() const noexcept { return dispatch_overcommits_; }
  int64_t tasks_dispatched() const noexcept { return tasks_dispatched_; }
  int64_t tasks_finished() const noexcept { return tasks_finished_; }

  // --- single-stage legacy API --------------------------------------------

  /// Runs one stage to completion; requires that no other task set is in
  /// flight. Policies must have been notified of the stage start already
  /// (their initial pool sizes are read here). Tasks that fail are retried
  /// up to max_task_failures times; exhausting the budget aborts the stage
  /// (stage_failed() returns true when on_done fires).
  void run_stage(const Stage& stage, std::vector<TaskSpec> tasks,
                 std::function<void()> on_done);

  /// True when the last run_stage() ended because a task ran out of attempts.
  bool stage_failed() const noexcept { return stage_failed_; }
  int speculative_launches() const noexcept { return speculative_launches_; }
  /// Executors currently blacklisted for any in-flight task set.
  int blacklisted_executors() const noexcept;
  /// Successful task durations of the last finished (or a current) set.
  const std::vector<double>& completed_durations() const noexcept {
    return completed_durations_;
  }

  /// The §5.4 protocol extension: executor → driver resize notification.
  /// Public for tests; normally invoked via make_notifier().
  void on_executor_resized(int node_id, int new_size);

  /// Builds the SchedulerNotifier an executor's policy calls on resize; it
  /// delivers on_executor_resized after the message latency.
  adaptive::SchedulerNotifier make_notifier(int node_id);

  int advertised_size(int node_id) const;
  int assigned_count(int node_id) const;

 private:
  struct ExecState {
    ExecutorRuntime* exec;
    int advertised = 0;
    int assigned = 0;
    bool active = true;
    bool dead = false;
    bool quarantined = false;  // health breaker open: no offers
  };

  struct TaskState {
    int attempts = 0;
    int running_copies = 0;
    bool done = false;
    double launch_time = 0.0;        // of the oldest running copy
    std::vector<size_t> copy_execs;  // executors currently running a copy
  };

  struct TaskSet {
    uint64_t id = 0;
    int job_id = 0;
    std::string pool;
    Stage stage;  // owned copy: callers need not keep theirs alive
    std::vector<TaskSpec> tasks;
    std::vector<TaskState> state;
    // partition -> index into tasks/state, directly indexed by partition
    // number (-1: not in this set). Recovery sets carry a partition *subset*,
    // so partition numbers cannot index state directly.
    std::vector<int32_t> task_index;
    // Indices of pending tasks (!done, no running copy), ascending — the
    // offer loop scans this instead of every task in the set.
    std::vector<int32_t> pending;
    size_t remaining = 0;
    int running = 0;  // dispatched copies (incl. in-flight launch messages)
    // Pending tasks with no locality preference — an O(1) "could any free
    // executor take a task from this set" test for the offer fast path.
    int pref_free_pending = 0;
    // Union of preferred nodes over pending tasks (ascending, deduped),
    // built lazily once per try_assign (stamped with the offer epoch). It
    // may over-approximate as tasks dispatch within one call; pick_task_for
    // re-validates, so stale entries cost a failed pick, never a wrong one.
    std::vector<int> pref_nodes;
    uint64_t pref_epoch = 0;
    bool failed = false;
    bool held = false;  // parked during lineage recovery
    bool locality_timer_armed = false;
    TaskSetResult result;
    TaskSetDone on_done;
    // Per-set blacklisting (spark.blacklist.stage.*), indexed by executor.
    std::vector<int> exec_failures;
    std::vector<bool> exec_blacklisted;

    size_t state_index(int partition) const noexcept {
      return static_cast<size_t>(task_index[static_cast<size_t>(partition)]);
    }
  };

  TaskSet* find_set(uint64_t id) noexcept;
  /// In-flight task sets in slot-offer order under the current scheduling
  /// mode; valid until the next submit/finish/erase.
  const std::vector<TaskSet*>& offer_order();
  void try_assign();
  // Exhaustive offer loop: every executor x every set. Kept for modes whose
  // eligibility is executor-specific (speculation copy placement, per-set
  // blacklists); also the semantic reference for try_assign_fast.
  void try_assign_scan();
  // Sparse offer loop producing the identical dispatch and event sequence:
  // only executors with free slots are visited (free_bits_), and only when
  // some set could actually hand them a task (pref_free_pending / locality
  // candidates). O(dispatches), not O(executors x sets).
  void try_assign_fast();
  bool offer_to(size_t exec_idx);
  bool set_wait_over(const TaskSet& set) const noexcept;
  bool any_generic_set() const noexcept;
  void build_candidates();
  const std::vector<int>& pref_union(TaskSet& set);
  void arm_locality_timer(TaskSet& set);
  void arm_deferred_timers();
  void pending_remove(TaskSet& set, size_t task_idx) noexcept;
  void pending_insert(TaskSet& set, size_t task_idx);
  void pending_clear(TaskSet& set) noexcept;
  void update_free_bit(size_t exec_idx) noexcept;
  bool exec_free(size_t exec_idx) const noexcept {
    return (free_bits_[exec_idx >> 6] >> (exec_idx & 63)) & 1u;
  }
  size_t next_free_exec(size_t from) const noexcept;
  int exec_index_of(int node_id) const noexcept;
  std::optional<size_t> pick_task_for(TaskSet& set, size_t exec_idx);
  void dispatch(TaskSet& set, size_t task_idx, size_t exec_idx,
                bool speculative);
  void on_task_finished(uint64_t set_id, const TaskSpec& spec, size_t exec_idx,
                        const TaskOutcome& outcome);
  void maybe_finish_set(TaskSet& set);
  void erase_set(uint64_t id) noexcept;
  void schedule_speculation_check();
  const PoolSpec& pool_spec(const std::string& name) const noexcept;
  int pool_running(const std::string& name) const noexcept;

  sim::Simulation& sim_;
  std::vector<ExecState> execs_;
  // Bit e set iff execs_[e] can accept a task (active, assigned <
  // advertised) — lets the offer loop skip straight to executors with free
  // slots instead of scanning all of them (a 10k-node cluster is mostly
  // idle or mostly full at any instant).
  std::vector<uint64_t> free_bits_;
  std::vector<int32_t> node_to_exec_;  // node id -> execs_ index (-1: none)
  // Pending tasks across all in-flight sets; 0 means an offer pass cannot
  // dispatch anything and try_assign returns without touching executors.
  int64_t pending_total_ = 0;
  uint64_t offer_epoch_ = 0;           // stamps per-set pref_nodes caches
  std::vector<size_t> cand_scratch_;   // reused by build_candidates()
  Options options_;
  SchedulingMode mode_ = SchedulingMode::kFifo;
  std::vector<PoolSpec> pool_specs_{PoolSpec{}};
  ExecutorEngagedHook engaged_hook_;
  FetchFailureHook fetch_hook_;
  TaskFinishHook task_finish_hook_;
  TaskOutcomeHook task_outcome_hook_;

  // In-flight task sets, sorted by ascending id (ids are handed out
  // monotonically, so submission order keeps the vector sorted; find is a
  // binary search). unique_ptr keeps TaskSet addresses stable across vector
  // mutations while offers hold references.
  std::vector<std::unique_ptr<TaskSet>> sets_;
  std::vector<TaskSet*> offer_scratch_;  // reused by offer_order()
  uint64_t next_set_id_ = 1;
  bool speculation_timer_armed_ = false;

  // Engine-level rollups (null handles when Options::metrics is unset).
  metrics::CounterHandle m_dispatched_;
  metrics::CounterHandle m_finished_;
  metrics::CounterHandle m_failed_;
  metrics::CounterHandle m_speculative_;
  metrics::CounterHandle m_resizes_;

  // Legacy single-stage view (last run_stage / last finished set).
  std::vector<double> completed_durations_;
  bool stage_failed_ = false;
  int speculative_launches_ = 0;

  int64_t dispatch_overcommits_ = 0;
  int64_t tasks_dispatched_ = 0;
  int64_t tasks_finished_ = 0;
  int64_t fetch_failures_ = 0;
  int64_t executor_lost_failures_ = 0;
};

}  // namespace saex::engine
