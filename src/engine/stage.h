// Physical stages and task specifications produced by the DAG scheduler.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace saex::engine {

enum class StageSource { kDfs, kShuffle, kCached, kNone };
enum class StageSink { kShuffleWrite, kDfsWrite, kDriver };

/// One physical reduce task of an AQE-re-planned shuffle stage: a contiguous
/// range [first, last] of the logical reduce partitions (partition
/// coalescing), or — when first == last and num_splits > 1 — sub-range
/// `split_index` of a skew-split hot partition. The identity tiling (one
/// slice per partition, no splits) is represented by an EMPTY slice list on
/// the Stage, which keeps the legacy fetch path bitwise intact.
struct ReduceSlice {
  int first = 0;
  int last = 0;
  int split_index = 0;
  int num_splits = 1;

  bool operator==(const ReduceSlice& o) const noexcept {
    return first == o.first && last == o.last &&
           split_index == o.split_index && num_splits == o.num_splits;
  }
};

struct Stage {
  int uid = 0;       // unique across the application
  int ordinal = 0;   // execution position within the job (paper's stage number)
  std::string name;
  bool io_tagged = false;  // §4: reads or writes the DFS

  StageSource source = StageSource::kNone;
  std::string input_path;              // kDfs
  std::vector<int> in_shuffle_ids;     // kShuffle (two for joins)
  int in_cache_id = -1;                // kCached

  int num_tasks = 0;
  Bytes input_bytes = 0;  // statically propagated total

  // Reduce-side physical traits of the consumed shuffle (see ShuffleTraits).
  double spill_fraction = 0.0;
  double scatter = 1.0;

  // AQE (src/aqe/): the LOGICAL reduce partition count of the consumed
  // shuffle (0 = num_tasks; set for kShuffle stages by the DAG scheduler so
  // it survives a re-plan that changes num_tasks), and the physical task
  // tiling chosen by the runtime re-planner. Empty slices = identity tiling
  // (one task per logical partition — the only shape that exists with AQE
  // off, and the legacy fetch-plan path is taken verbatim).
  int reduce_partitions = 0;
  std::vector<ReduceSlice> reduce_slices;
  // Zipf exponent of the produced shuffle's reduce-partition weights
  // (ShuffleTraits::skew of the boundary node; 0 = uniform). The driver
  // registers it with the ShuffleManager before the stage runs.
  double out_skew = 0.0;

  // Pipelined cost aggregate over the stage's narrow chain.
  double cpu_seconds_per_input_mib = 0.0;
  double output_ratio = 1.0;  // stage output bytes / stage input bytes

  // Mid-chain cache materialization (bytes relative to stage input).
  int cache_out_id = -1;
  double cache_ratio = 0.0;

  StageSink sink = StageSink::kDriver;
  int out_shuffle_id = -1;
  std::string out_path;
  int out_replication = 1;

  std::vector<int> parent_uids;

  Bytes output_bytes() const noexcept {
    return static_cast<Bytes>(static_cast<double>(input_bytes) * output_ratio);
  }
};

/// One schedulable unit: processes one partition of a stage.
struct TaskSpec {
  int stage_uid = 0;
  int partition = 0;
  Bytes input_bytes = 0;
  double cpu_seconds = 0.0;
  Bytes output_bytes = 0;
  Bytes cache_bytes = 0;
  // Preferred nodes (block replicas); empty = no locality preference.
  std::vector<int> preferred_nodes;
};

}  // namespace saex::engine
