#include "engine/report.h"

#include <sstream>

#include "common/format.h"
#include "common/table.h"

namespace saex::engine {

std::string JobReport::render() const {
  std::ostringstream out;
  out << strfmt::format("application: {}   policy: {}   runtime: {}\n",
                        app_name, policy_name, format_duration(total_runtime));
  out << strfmt::format("input: {}   total disk I/O: {} ({:.0f}% of input)\n",
                        format_bytes(input_bytes),
                        format_bytes(total_disk_bytes),
                        input_bytes > 0
                            ? 100.0 * static_cast<double>(total_disk_bytes) /
                                  static_cast<double>(input_bytes)
                            : 0.0);

  TextTable t({"stage", "name", "io", "tasks", "time", "threads", "cpu%",
               "disk%", "iowait%", "task p50/p95", "read", "written", "net"});
  for (const StageStats& s : stages) {
    t.add_row({strfmt::format("{}", s.ordinal), s.name,
               s.io_tagged ? "yes" : "no", strfmt::format("{}", s.num_tasks),
               format_duration(s.duration()),
               strfmt::format("{}", s.threads_total),
               format_percent(s.cpu_utilization),
               format_percent(s.disk_utilization),
               format_percent(s.iowait_fraction),
               strfmt::format("{:.1f}/{:.1f}s", s.task_p50, s.task_p95),
               format_bytes(s.disk_read),
               format_bytes(s.disk_written), format_bytes(s.net_bytes)});
  }
  out << t.render();
  return out.str();
}

std::string JobReport::to_csv() const {
  std::ostringstream out;
  out << "app,policy,stage,name,io_tagged,tasks,start_s,end_s,duration_s,"
         "threads_total,cpu_util,disk_util,iowait,task_p50_s,task_p95_s,"
         "disk_read_bytes,disk_written_bytes,net_bytes\n";
  for (const StageStats& s : stages) {
    std::string name = s.name;
    for (char& c : name) {
      if (c == ',') c = ';';
    }
    out << strfmt::format(
        "{},{},{},{},{},{},{:.3f},{:.3f},{:.3f},{},{:.4f},{:.4f},{:.4f},"
        "{:.3f},{:.3f},{},{},{}\n",
        app_name, policy_name, s.ordinal, name, s.io_tagged ? 1 : 0,
        s.num_tasks, s.start_time, s.end_time, s.duration(), s.threads_total,
        s.cpu_utilization, s.disk_utilization, s.iowait_fraction, s.task_p50,
        s.task_p95, s.disk_read, s.disk_written, s.net_bytes);
  }
  return out.str();
}

}  // namespace saex::engine
