#include "engine/event_log.h"

#include <fstream>
#include <sstream>

#include "common/format.h"

namespace saex::engine {

std::string_view event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kJobStart: return "JobStart";
    case EventKind::kJobEnd: return "JobEnd";
    case EventKind::kStageStart: return "StageStart";
    case EventKind::kStageEnd: return "StageEnd";
    case EventKind::kTaskStart: return "TaskStart";
    case EventKind::kTaskEnd: return "TaskEnd";
    case EventKind::kTaskFailed: return "TaskFailed";
    case EventKind::kPoolResize: return "PoolResize";
    case EventKind::kSpeculativeLaunch: return "SpeculativeLaunch";
    case EventKind::kJobSubmitted: return "JobSubmitted";
    case EventKind::kJobRejected: return "JobRejected";
    case EventKind::kJobDequeued: return "JobDequeued";
    case EventKind::kExecutorGranted: return "ExecutorGranted";
    case EventKind::kExecutorReleased: return "ExecutorReleased";
    case EventKind::kExecutorLost: return "ExecutorLost";
    case EventKind::kFetchFailed: return "FetchFailed";
    case EventKind::kStageResubmitted: return "StageResubmitted";
    case EventKind::kStageReplanned: return "StageReplanned";
    case EventKind::kDiskDegraded: return "DiskDegraded";
    case EventKind::kExecutorRevived: return "ExecutorRevived";
    case EventKind::kNodeQuarantined: return "NodeQuarantined";
    case EventKind::kNodeReinstated: return "NodeReinstated";
    case EventKind::kJobShed: return "JobShed";
    case EventKind::kJobCancelled: return "JobCancelled";
    case EventKind::kJobRetried: return "JobRetried";
  }
  return "?";
}

namespace {

// Minimal JSON string escaping (labels are engine-generated but may contain
// quotes from user-chosen op names).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt::format("\\u{:04}", static_cast<int>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Event> EventLog::of_kind(EventKind kind) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_json_lines() const {
  std::ostringstream out;
  for (const Event& e : events_) {
    out << strfmt::format(
        R"({{"event":"{}","time":{:.6f},"job":{},"stage":{},"partition":{},"node":{},"value":{},"label":"{}"}})",
        std::string(event_kind_name(e.kind)), e.time, e.job, e.stage,
        e.partition, e.node, e.value, escape(e.label));
    out << '\n';
  }
  return out.str();
}

std::string EventLog::to_chrome_trace() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out << ",\n";
    first = false;
    out << obj;
  };

  // Pair task starts with their ends per (stage, partition, node).
  struct Open {
    double start;
    size_t key;
  };
  std::vector<std::pair<uint64_t, double>> open_tasks;  // key -> start time
  auto task_key = [](const Event& e) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(e.stage)) << 40) ^
           (static_cast<uint64_t>(static_cast<uint32_t>(e.partition)) << 8) ^
           static_cast<uint64_t>(static_cast<uint32_t>(e.node));
  };

  for (const Event& e : events_) {
    const double us = e.time * 1e6;
    switch (e.kind) {
      case EventKind::kTaskStart:
        open_tasks.emplace_back(task_key(e), e.time);
        break;
      case EventKind::kTaskEnd:
      case EventKind::kTaskFailed: {
        double start = e.time;
        const uint64_t key = task_key(e);
        for (auto it = open_tasks.rbegin(); it != open_tasks.rend(); ++it) {
          if (it->first == key) {
            start = it->second;
            open_tasks.erase(std::next(it).base());
            break;
          }
        }
        emit(strfmt::format(
            R"({{"name":"s{}-p{}","cat":"task","ph":"X","ts":{:.1f},"dur":{:.1f},"pid":{},"tid":{}}})",
            e.stage, e.partition, start * 1e6, (e.time - start) * 1e6, e.node,
            e.partition % 64));
        break;
      }
      case EventKind::kPoolResize:
        emit(strfmt::format(
            R"({{"name":"pool size","ph":"C","ts":{:.1f},"pid":{},"args":{{"threads":{}}}}})",
            us, e.node, e.value));
        break;
      case EventKind::kStageStart:
      case EventKind::kJobStart:
        emit(strfmt::format(
            R"({{"name":"{}","cat":"stage","ph":"B","ts":{:.1f},"pid":0,"tid":0}})",
            escape(e.label.empty() ? std::string(event_kind_name(e.kind))
                                   : e.label),
            us));
        break;
      case EventKind::kStageEnd:
      case EventKind::kJobEnd:
        emit(strfmt::format(R"({{"ph":"E","ts":{:.1f},"pid":0,"tid":0}})", us));
        break;
      case EventKind::kSpeculativeLaunch:
        emit(strfmt::format(
            R"({{"name":"speculative s{}-p{}","ph":"i","ts":{:.1f},"pid":{},"tid":0,"s":"p"}})",
            e.stage, e.partition, us, e.node));
        break;
      case EventKind::kExecutorGranted:
      case EventKind::kExecutorReleased:
      case EventKind::kExecutorLost:
      case EventKind::kStageResubmitted:
      case EventKind::kStageReplanned:
      case EventKind::kDiskDegraded:
      case EventKind::kExecutorRevived:
      case EventKind::kNodeQuarantined:
      case EventKind::kNodeReinstated:
        emit(strfmt::format(
            R"({{"name":"{}","ph":"i","ts":{:.1f},"pid":{},"tid":0,"s":"p"}})",
            std::string(event_kind_name(e.kind)), us, e.node));
        break;
      case EventKind::kJobSubmitted:
      case EventKind::kJobRejected:
      case EventKind::kJobDequeued:
      case EventKind::kFetchFailed:
      case EventKind::kJobShed:
      case EventKind::kJobCancelled:
      case EventKind::kJobRetried:
        break;  // admission/fetch events carry no duration; JSON-lines has them
    }
  }
  out << "]\n";
  return out.str();
}

bool EventLog::write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace saex::engine
