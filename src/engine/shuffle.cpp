#include "engine/shuffle.h"

#include <cassert>

namespace saex::engine {

bool ShuffleManager::register_map_output(int shuffle_id, int node,
                                         int partition, Bytes bytes) {
  assert(node >= 0 && node < num_nodes_);
  auto& commits = commits_[shuffle_id];
  if (const auto it = commits.find(partition); it != commits.end()) {
    ++duplicate_commits_;
    return false;
  }
  commits.emplace(partition, std::make_pair(node, bytes));
  auto& per_node = outputs_[shuffle_id];
  per_node.resize(static_cast<size_t>(num_nodes_), 0);
  per_node[static_cast<size_t>(node)] += bytes;
  return true;
}

std::vector<Bytes> ShuffleManager::fetch_plan(int shuffle_id, int partition,
                                              int num_partitions) const {
  assert(partition >= 0 && partition < num_partitions);
  std::vector<Bytes> plan(static_cast<size_t>(num_nodes_), 0);
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) return plan;
  for (int n = 0; n < num_nodes_; ++n) {
    const Bytes total = it->second[static_cast<size_t>(n)];
    const Bytes base = total / num_partitions;
    const Bytes rem = total % num_partitions;
    plan[static_cast<size_t>(n)] = base + (partition < rem ? 1 : 0);
  }
  return plan;
}

std::map<int, std::vector<int>> ShuffleManager::on_node_lost(int node) {
  std::map<int, std::vector<int>> lost;
  for (auto& [sid, commits] : commits_) {
    auto& per_node = outputs_[sid];
    for (auto it = commits.begin(); it != commits.end();) {
      if (it->second.first == node) {
        per_node[static_cast<size_t>(node)] -= it->second.second;
        lost[sid].push_back(it->first);
        it = commits.erase(it);
      } else {
        ++it;
      }
    }
    assert(per_node[static_cast<size_t>(node)] == 0 &&
           "per-node total out of sync with partition commits");
  }
  return lost;
}

bool ShuffleManager::partition_committed(int shuffle_id,
                                         int partition) const noexcept {
  const auto it = commits_.find(shuffle_id);
  return it != commits_.end() &&
         it->second.find(partition) != it->second.end();
}

Bytes ShuffleManager::total_output(int shuffle_id) const noexcept {
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) return 0;
  Bytes total = 0;
  for (Bytes b : it->second) total += b;
  return total;
}

Bytes ShuffleManager::node_output(int shuffle_id, int node) const noexcept {
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) return 0;
  return it->second[static_cast<size_t>(node)];
}

}  // namespace saex::engine
