#include "engine/shuffle.h"

#include <cassert>

namespace saex::engine {

void ShuffleManager::register_map_output(int shuffle_id, int node, Bytes bytes) {
  assert(node >= 0 && node < num_nodes_);
  auto& per_node = outputs_[shuffle_id];
  per_node.resize(static_cast<size_t>(num_nodes_), 0);
  per_node[static_cast<size_t>(node)] += bytes;
}

std::vector<Bytes> ShuffleManager::fetch_plan(int shuffle_id, int partition,
                                              int num_partitions) const {
  assert(partition >= 0 && partition < num_partitions);
  std::vector<Bytes> plan(static_cast<size_t>(num_nodes_), 0);
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) return plan;
  for (int n = 0; n < num_nodes_; ++n) {
    const Bytes total = it->second[static_cast<size_t>(n)];
    const Bytes base = total / num_partitions;
    const Bytes rem = total % num_partitions;
    plan[static_cast<size_t>(n)] = base + (partition < rem ? 1 : 0);
  }
  return plan;
}

Bytes ShuffleManager::total_output(int shuffle_id) const noexcept {
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) return 0;
  Bytes total = 0;
  for (Bytes b : it->second) total += b;
  return total;
}

Bytes ShuffleManager::node_output(int shuffle_id, int node) const noexcept {
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) return 0;
  return it->second[static_cast<size_t>(node)];
}

}  // namespace saex::engine
