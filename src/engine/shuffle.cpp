#include "engine/shuffle.h"

#include <cassert>

#include "prof/profiler.h"

namespace saex::engine {

ShuffleManager::ShuffleState& ShuffleManager::state_for(int shuffle_id) {
  assert(shuffle_id >= 0);
  if (static_cast<size_t>(shuffle_id) >= shuffles_.size()) {
    shuffles_.resize(static_cast<size_t>(shuffle_id) + 1);
  }
  return shuffles_[static_cast<size_t>(shuffle_id)];
}

bool ShuffleManager::register_map_output(int shuffle_id, int node,
                                         int partition, Bytes bytes) {
  assert(node >= 0 && node < num_nodes_);
  assert(partition >= 0);
  ShuffleState& s = state_for(shuffle_id);
  if (!s.created) {
    s.created = true;
    s.per_node.assign(static_cast<size_t>(num_nodes_), 0);
  }
  if (static_cast<size_t>(partition) >= s.commit_node.size()) {
    s.commit_node.resize(static_cast<size_t>(partition) + 1, -1);
    s.commit_bytes.resize(static_cast<size_t>(partition) + 1, 0);
  }
  if (s.commit_node[static_cast<size_t>(partition)] >= 0) {
    ++duplicate_commits_;
    return false;
  }
  s.commit_node[static_cast<size_t>(partition)] = node;
  s.commit_bytes[static_cast<size_t>(partition)] = bytes;
  s.per_node[static_cast<size_t>(node)] += bytes;
  return true;
}

std::vector<Bytes> ShuffleManager::fetch_plan(int shuffle_id, int partition,
                                              int num_partitions) const {
  SAEX_PROF_SCOPE(kShuffle);
  assert(partition >= 0 && partition < num_partitions);
  std::vector<Bytes> plan(static_cast<size_t>(num_nodes_), 0);
  if (!has_shuffle(shuffle_id)) return plan;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  for (int n = 0; n < num_nodes_; ++n) {
    const Bytes total = s.per_node[static_cast<size_t>(n)];
    const Bytes base = total / num_partitions;
    const Bytes rem = total % num_partitions;
    plan[static_cast<size_t>(n)] = base + (partition < rem ? 1 : 0);
  }
  return plan;
}

std::map<int, std::vector<int>> ShuffleManager::on_node_lost(int node) {
  std::map<int, std::vector<int>> lost;
  for (size_t sid = 0; sid < shuffles_.size(); ++sid) {
    ShuffleState& s = shuffles_[sid];
    if (!s.created) continue;
    std::vector<int>* partitions = nullptr;
    for (size_t p = 0; p < s.commit_node.size(); ++p) {
      if (s.commit_node[p] != node) continue;
      s.per_node[static_cast<size_t>(node)] -= s.commit_bytes[p];
      s.commit_node[p] = -1;
      s.commit_bytes[p] = 0;
      if (partitions == nullptr) partitions = &lost[static_cast<int>(sid)];
      partitions->push_back(static_cast<int>(p));
    }
    assert(s.per_node[static_cast<size_t>(node)] == 0 &&
           "per-node total out of sync with partition commits");
  }
  return lost;
}

bool ShuffleManager::partition_committed(int shuffle_id,
                                         int partition) const noexcept {
  if (!has_shuffle(shuffle_id) || partition < 0) return false;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  return static_cast<size_t>(partition) < s.commit_node.size() &&
         s.commit_node[static_cast<size_t>(partition)] >= 0;
}

Bytes ShuffleManager::total_output(int shuffle_id) const noexcept {
  if (!has_shuffle(shuffle_id)) return 0;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  Bytes total = 0;
  for (Bytes b : s.per_node) total += b;
  return total;
}

Bytes ShuffleManager::node_output(int shuffle_id, int node) const noexcept {
  if (!has_shuffle(shuffle_id)) return 0;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  return s.per_node[static_cast<size_t>(node)];
}

}  // namespace saex::engine
