#include "engine/shuffle.h"

#include <cassert>
#include <cmath>

#include "prof/profiler.h"

namespace saex::engine {

std::vector<FetchShare> rotate_fetch_plan(const std::vector<Bytes>& plan,
                                          int node_id) {
  const int n = static_cast<int>(plan.size());
  std::vector<FetchShare> out;
  out.reserve(plan.size());
  for (int i = 0; i < n; ++i) {
    const int src = (node_id + i) % n;
    const Bytes bytes = plan[static_cast<size_t>(src)];
    if (bytes == 0) continue;
    out.push_back(FetchShare{src, bytes});
  }
  return out;
}

ShuffleManager::ShuffleState& ShuffleManager::state_for(int shuffle_id) {
  assert(shuffle_id >= 0);
  if (static_cast<size_t>(shuffle_id) >= shuffles_.size()) {
    shuffles_.resize(static_cast<size_t>(shuffle_id) + 1);
  }
  return shuffles_[static_cast<size_t>(shuffle_id)];
}

bool ShuffleManager::register_map_output(int shuffle_id, int node,
                                         int partition, Bytes bytes) {
  assert(node >= 0 && node < num_nodes_);
  assert(partition >= 0);
  ShuffleState& s = state_for(shuffle_id);
  if (!s.created) {
    s.created = true;
    s.per_node.assign(static_cast<size_t>(num_nodes_), 0);
  }
  if (static_cast<size_t>(partition) >= s.commit_node.size()) {
    s.commit_node.resize(static_cast<size_t>(partition) + 1, -1);
    s.commit_bytes.resize(static_cast<size_t>(partition) + 1, 0);
  }
  if (s.commit_node[static_cast<size_t>(partition)] >= 0) {
    ++duplicate_commits_;
    return false;
  }
  s.commit_node[static_cast<size_t>(partition)] = node;
  s.commit_bytes[static_cast<size_t>(partition)] = bytes;
  s.per_node[static_cast<size_t>(node)] += bytes;
  return true;
}

void ShuffleManager::set_reduce_skew(int shuffle_id, double alpha) {
  if (alpha <= 0.0) return;
  ShuffleState& s = state_for(shuffle_id);
  if (s.skew == alpha) return;
  s.skew = alpha;
  s.cum_w.clear();
}

double ShuffleManager::reduce_skew(int shuffle_id) const noexcept {
  if (shuffle_id < 0 || static_cast<size_t>(shuffle_id) >= shuffles_.size()) {
    return 0.0;
  }
  return shuffles_[static_cast<size_t>(shuffle_id)].skew;
}

void ShuffleManager::ensure_weights(const ShuffleState& s, int R) {
  if (static_cast<int>(s.cum_w.size()) == R + 1) return;
  s.cum_w.assign(static_cast<size_t>(R) + 1, 0.0);
  double total = 0.0;
  for (int r = 0; r < R; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s.skew);
    s.cum_w[static_cast<size_t>(r) + 1] = total;
  }
  for (int r = 1; r <= R; ++r) s.cum_w[static_cast<size_t>(r)] /= total;
  s.cum_w[static_cast<size_t>(R)] = 1.0;  // exact upper end despite rounding
}

Bytes ShuffleManager::cum_share(const ShuffleState& s, Bytes total, int upto,
                                int R) {
  if (upto <= 0) return 0;
  if (upto >= R) return total;
  if (s.skew <= 0.0) {
    // Uniform: the cumulative form of the historical base+remainder split
    // (base = total/R, partitions below total%R take one extra byte).
    return static_cast<Bytes>(upto) * (total / R) +
           std::min<Bytes>(upto, total % R);
  }
  ensure_weights(s, R);
  return static_cast<Bytes>(static_cast<double>(total) *
                            s.cum_w[static_cast<size_t>(upto)]);
}

std::vector<Bytes> ShuffleManager::fetch_plan(int shuffle_id, int partition,
                                              int num_partitions) const {
  SAEX_PROF_SCOPE(kShuffle);
  assert(partition >= 0 && partition < num_partitions);
  std::vector<Bytes> plan(static_cast<size_t>(num_nodes_), 0);
  if (!has_shuffle(shuffle_id)) return plan;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  for (int n = 0; n < num_nodes_; ++n) {
    const Bytes total = s.per_node[static_cast<size_t>(n)];
    plan[static_cast<size_t>(n)] =
        cum_share(s, total, partition + 1, num_partitions) -
        cum_share(s, total, partition, num_partitions);
  }
  return plan;
}

std::vector<Bytes> ShuffleManager::fetch_plan_slice(int shuffle_id, int first,
                                                    int last, int split_index,
                                                    int num_splits,
                                                    int num_partitions) const {
  SAEX_PROF_SCOPE(kShuffle);
  assert(first >= 0 && first <= last && last < num_partitions);
  assert(num_splits >= 1 && split_index >= 0 && split_index < num_splits);
  assert(num_splits == 1 || first == last);
  std::vector<Bytes> plan(static_cast<size_t>(num_nodes_), 0);
  if (!has_shuffle(shuffle_id)) return plan;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  for (int n = 0; n < num_nodes_; ++n) {
    const Bytes total = s.per_node[static_cast<size_t>(n)];
    const Bytes share = cum_share(s, total, last + 1, num_partitions) -
                        cum_share(s, total, first, num_partitions);
    if (num_splits == 1) {
      plan[static_cast<size_t>(n)] = share;
    } else {
      // Exact sub-range split of one partition's share: floor-difference
      // apportionment, so the num_splits sub-tasks sum to the share.
      const Bytes lo = share * static_cast<Bytes>(split_index) /
                       static_cast<Bytes>(num_splits);
      const Bytes hi = share * static_cast<Bytes>(split_index + 1) /
                       static_cast<Bytes>(num_splits);
      plan[static_cast<size_t>(n)] = hi - lo;
    }
  }
  return plan;
}

std::vector<Bytes> ShuffleManager::reduce_partition_bytes(
    int shuffle_id, int num_partitions) const {
  std::vector<Bytes> out(static_cast<size_t>(num_partitions), 0);
  if (!has_shuffle(shuffle_id)) return out;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  for (int n = 0; n < num_nodes_; ++n) {
    const Bytes total = s.per_node[static_cast<size_t>(n)];
    if (total == 0) continue;
    Bytes prev = 0;
    for (int r = 0; r < num_partitions; ++r) {
      const Bytes cum = cum_share(s, total, r + 1, num_partitions);
      out[static_cast<size_t>(r)] += cum - prev;
      prev = cum;
    }
  }
  return out;
}

std::vector<Bytes> ShuffleManager::map_partition_bytes(int shuffle_id) const {
  if (!has_shuffle(shuffle_id)) return {};
  return shuffles_[static_cast<size_t>(shuffle_id)].commit_bytes;
}

std::map<int, std::vector<int>> ShuffleManager::on_node_lost(int node) {
  std::map<int, std::vector<int>> lost;
  for (size_t sid = 0; sid < shuffles_.size(); ++sid) {
    ShuffleState& s = shuffles_[sid];
    if (!s.created) continue;
    std::vector<int>* partitions = nullptr;
    for (size_t p = 0; p < s.commit_node.size(); ++p) {
      if (s.commit_node[p] != node) continue;
      s.per_node[static_cast<size_t>(node)] -= s.commit_bytes[p];
      s.commit_node[p] = -1;
      s.commit_bytes[p] = 0;
      if (partitions == nullptr) partitions = &lost[static_cast<int>(sid)];
      partitions->push_back(static_cast<int>(p));
    }
    assert(s.per_node[static_cast<size_t>(node)] == 0 &&
           "per-node total out of sync with partition commits");
  }
  return lost;
}

bool ShuffleManager::partition_committed(int shuffle_id,
                                         int partition) const noexcept {
  if (!has_shuffle(shuffle_id) || partition < 0) return false;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  return static_cast<size_t>(partition) < s.commit_node.size() &&
         s.commit_node[static_cast<size_t>(partition)] >= 0;
}

Bytes ShuffleManager::total_output(int shuffle_id) const noexcept {
  if (!has_shuffle(shuffle_id)) return 0;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  Bytes total = 0;
  for (Bytes b : s.per_node) total += b;
  return total;
}

Bytes ShuffleManager::node_output(int shuffle_id, int node) const noexcept {
  if (!has_shuffle(shuffle_id)) return 0;
  const ShuffleState& s = shuffles_[static_cast<size_t>(shuffle_id)];
  return s.per_node[static_cast<size_t>(node)];
}

}  // namespace saex::engine
