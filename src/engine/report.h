// Per-stage and per-job measurement rollups — the quantities the paper's
// figures are drawn from.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace saex::engine {

struct ExecutorStageStats {
  int node = 0;
  int threads_settled = 0;       // pool size when the stage ended
  double blocked_seconds = 0.0;  // ε accrued during this stage
  Bytes io_bytes = 0;            // bytes moved by this executor's tasks
};

struct StageStats {
  int ordinal = 0;
  std::string name;
  bool io_tagged = false;
  int num_tasks = 0;
  double start_time = 0.0;
  double end_time = 0.0;

  Bytes input_bytes = 0;
  Bytes disk_read = 0;      // cluster-wide during the stage
  Bytes disk_written = 0;
  Bytes net_bytes = 0;

  double cpu_utilization = 0.0;   // mean over nodes (Fig. 1 bar height)
  double disk_utilization = 0.0;  // mean over nodes (Fig. 5)
  double iowait_fraction = 0.0;   // mpstat-style iowait (Fig. 1 color)

  int threads_total = 0;  // Σ executors' settled threads (Fig. 8 labels)
  // Σ successful task durations — the stage's slot-seconds (set on the
  // concurrent submit_job path; run_job leaves it 0).
  double task_seconds = 0.0;
  // Task duration distribution (successful attempts).
  double task_p50 = 0.0;
  double task_p95 = 0.0;
  double task_max = 0.0;
  std::vector<ExecutorStageStats> executors;

  double duration() const noexcept { return end_time - start_time; }
};

struct JobReport {
  std::string app_name;
  std::string policy_name;
  double total_runtime = 0.0;
  Bytes input_bytes = 0;
  Bytes total_disk_bytes = 0;  // Table 2's "I/O activity"
  // Cumulative kernel events the owning Simulation had processed when the
  // job finished (throughput accounting for BENCH_*.json trajectories).
  uint64_t events_processed = 0;
  std::vector<StageStats> stages;

  // Concurrent-submission bookkeeping (SparkContext::submit_job — the
  // saex::serve path). run_job() leaves these at their defaults.
  int job_id = -1;
  std::string pool;
  bool failed = false;          // a stage aborted (task out of attempts)
  bool cancelled = false;       // SparkContext::cancel_job (deadline)
  double submit_time = 0.0;
  double first_launch_time = -1.0;  // first task dispatch of any stage
  double finish_time = 0.0;

  /// Multi-line human-readable summary (stage table + totals).
  std::string render() const;

  /// Machine-readable per-stage rows (header + one line per stage) for
  /// spreadsheet/pandas analysis.
  std::string to_csv() const;
};

}  // namespace saex::engine
