// Per-node block storage: the executor-process memory that holds cached RDD
// partitions (and tracks disk-resident shuffle/spill blocks) under a bounded
// budget, mirroring Spark's BlockManager.
//
// The BlockManager is pure deterministic bookkeeping — it decides *what*
// happens (how many bytes of a write fit in memory, which committed blocks
// the eviction policy sacrifices to make room) and reports the consequences
// to the caller, which owns the physical side effects (charging spill writes
// to the simulated hw::Disk, updating the cluster-wide CacheRegistry,
// triggering lineage recompute for dropped blocks). That keeps this layer
// free of simulation dependencies and unit-testable on canned traces.
//
// Budget semantics by policy:
//   none           — no active eviction: a write is granted memory up to the
//                    remaining budget and its own overflow spills (the
//                    pre-BlockManager semantics, bit-for-bit).
//   lru/clock/...  — the policy evicts committed blocks to admit the write;
//                    victims spill to disk (spill_on_evict) or are dropped
//                    and must be recomputed from lineage.
//
// Blocks being written are pinned (never their own victim, never anyone
// else's) until commit(); reads touch() the policy so recency/frequency
// state reflects the access trace.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "metrics/registry.h"
#include "storage/eviction.h"

namespace saex::storage {

enum class BlockKind : uint8_t { kCachePartition = 0, kShuffleOutput = 1 };

/// Identity of a block: (kind, id, partition) packed into a BlockKey so
/// eviction policies stay POD-keyed. id is a cache id or shuffle id (< 2^27).
struct BlockId {
  BlockKind kind = BlockKind::kCachePartition;
  int id = 0;
  int partition = 0;

  BlockKey key() const noexcept {
    return (static_cast<BlockKey>(kind) << 59) |
           (static_cast<BlockKey>(static_cast<uint32_t>(id)) << 32) |
           static_cast<BlockKey>(static_cast<uint32_t>(partition));
  }
  static BlockId from_key(BlockKey key) noexcept {
    BlockId b;
    b.kind = static_cast<BlockKind>(key >> 59);
    b.id = static_cast<int>((key >> 32) & 0x7ffffff);
    b.partition = static_cast<int>(key & 0xffffffff);
    return b;
  }
};

class BlockManager {
 public:
  struct Options {
    Bytes memory_budget = 0;    // 0 = unbounded
    std::string policy = "none";
    bool spill_on_evict = true;  // false: victims are dropped (recompute)
  };

  /// One block evicted to make room for a reservation.
  struct Evicted {
    BlockId id;
    Bytes mem_bytes = 0;  // bytes that left memory
    bool spilled = false;  // true: moved to disk; false: dropped entirely
  };

  struct Reservation {
    Bytes granted = 0;             // bytes of the request admitted to memory
    std::vector<Evicted> evicted;  // consequences the caller must apply
  };

  /// `metrics` may be null (no counters). Per-node counter names:
  /// storage/node<N>/{hits,misses,evictions,evict_spill_bytes,
  /// evict_drop_bytes,recomputes}.
  BlockManager(int node_id, const Options& options,
               metrics::Registry* metrics);

  // --- write path ----------------------------------------------------------

  /// Grows `id`'s in-memory footprint by up to `bytes` (one chunk of an
  /// in-progress write), evicting committed blocks if the policy allows.
  /// The block is pinned until commit(). Ungranted bytes are the caller's
  /// to spill through its write channel.
  Reservation reserve(BlockId id, Bytes bytes);

  /// Adds disk-resident bytes for `id` (its spilled tail, or a shuffle
  /// block's map output file).
  void add_disk(BlockId id, Bytes bytes);

  /// Finishes a write: unpins the block and hands it to the eviction policy.
  void commit(BlockId id);

  // --- read path -----------------------------------------------------------

  /// Records a read of `id` for the hit/miss counters and the policy's
  /// recency/frequency state. `mem_hit` = the read was served entirely from
  /// memory (no disk segment, not dropped).
  void touch(BlockId id, bool mem_hit);

  // --- removal -------------------------------------------------------------

  /// Forgets one block (both tiers), e.g. when its cache is rebuilt.
  void drop(BlockId id);
  /// Executor death: every block this process held is gone.
  void drop_all();

  // --- introspection -------------------------------------------------------

  int node_id() const noexcept { return node_id_; }
  Bytes memory_budget() const noexcept { return options_.memory_budget; }
  Bytes mem_used() const noexcept { return mem_used_; }
  Bytes disk_used() const noexcept { return disk_used_; }
  const std::string& policy_name() const noexcept { return options_.policy; }
  bool spill_on_evict() const noexcept { return options_.spill_on_evict; }
  size_t num_blocks() const noexcept { return blocks_.size(); }

  int64_t hits() const noexcept { return hits_; }
  int64_t misses() const noexcept { return misses_; }
  int64_t evictions() const noexcept { return evictions_; }
  Bytes evicted_spill_bytes() const noexcept { return evict_spill_bytes_; }
  Bytes evicted_drop_bytes() const noexcept { return evict_drop_bytes_; }

 private:
  struct Block {
    Bytes mem_bytes = 0;
    Bytes disk_bytes = 0;
    bool pinned = false;  // write in progress: not evictable
  };

  Block& block(BlockKey key) { return blocks_[key]; }
  bool over_budget(Bytes incoming) const noexcept;

  int node_id_;
  Options options_;
  std::unique_ptr<EvictionPolicy> policy_;  // null for "none"
  std::map<BlockKey, Block> blocks_;
  Bytes mem_used_ = 0;
  Bytes disk_used_ = 0;

  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  Bytes evict_spill_bytes_ = 0;
  Bytes evict_drop_bytes_ = 0;

  metrics::CounterHandle m_hits_;
  metrics::CounterHandle m_misses_;
  metrics::CounterHandle m_evictions_;
  metrics::CounterHandle m_evict_spill_bytes_;
  metrics::CounterHandle m_evict_drop_bytes_;
};

/// Cluster-wide owner of one BlockManager per node, plus the aggregate
/// counters benches report.
class StorageManager {
 public:
  StorageManager(int num_nodes, const BlockManager::Options& options,
                 metrics::Registry* metrics);

  BlockManager& node(int node_id) {
    return *nodes_[static_cast<size_t>(node_id)];
  }
  const BlockManager& node(int node_id) const {
    return *nodes_[static_cast<size_t>(node_id)];
  }
  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  const std::string& policy_name() const noexcept { return policy_name_; }

  int64_t total_hits() const noexcept;
  int64_t total_misses() const noexcept;
  int64_t total_evictions() const noexcept;
  Bytes total_evicted_spill_bytes() const noexcept;
  /// hits / (hits + misses); 1.0 when no cached reads happened.
  double hit_rate() const noexcept;

 private:
  std::vector<std::unique_ptr<BlockManager>> nodes_;
  std::string policy_name_;
};

}  // namespace saex::storage
