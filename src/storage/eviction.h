// Pluggable block-eviction policies for the per-node BlockManager.
//
// A policy only tracks *identity and ordering* of resident blocks; sizes,
// budgets, pinning, and what eviction physically means (spill vs drop) are
// the BlockManager's business. That split keeps every policy a small,
// deterministic data structure that can be conformance-tested on canned
// access traces without touching the simulation.
//
// Four classic policies are provided behind one interface (selected via
// saex.storage.policy, cachelib-style single-choice configuration):
//   lru     — least recently used (list + index map)
//   clock   — second-chance FIFO (reference bits, sweeping hand)
//   s3fifo  — small/main/ghost FIFOs (Yang et al., SOSP'23): one-hit wonders
//             leave through the small queue without polluting the main one
//   tinylfu — frequency sketch with periodic aging; the coldest resident
//             block is evicted (W-TinyLFU's admission idea, simplified)
//
// All policies are strictly deterministic: same insert/access trace, same
// victim sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace saex::storage {

/// Opaque block identity (see block_manager.h for the encoding).
using BlockKey = uint64_t;

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual const char* name() const noexcept = 0;

  /// A new resident block. Keys are unique among resident blocks; inserting
  /// a key that is already tracked is a no-op access.
  virtual void on_insert(BlockKey key) = 0;
  /// The block was read (a cache hit).
  virtual void on_access(BlockKey key) = 0;
  /// The block left memory for reasons outside the policy (explicit drop,
  /// executor death, spill). Unknown keys are ignored.
  virtual void on_remove(BlockKey key) = 0;

  /// Selects the next victim, removes it from the policy's tracking, and
  /// returns it. Precondition: !empty().
  virtual BlockKey victim() = 0;

  virtual bool empty() const noexcept = 0;
  virtual size_t size() const noexcept = 0;
};

/// Valid saex.storage.policy values: "none" (no active eviction — overflow
/// of the *incoming* write spills, today's pre-BlockManager semantics) plus
/// the four real policies.
const std::vector<std::string>& eviction_policy_names();

/// True iff `name` is a valid saex.storage.policy value.
bool is_valid_eviction_policy(const std::string& name);

/// Builds the named policy; returns nullptr for "none". Throws
/// std::invalid_argument (listing the valid choices) for unknown names.
std::unique_ptr<EvictionPolicy> make_eviction_policy(const std::string& name);

}  // namespace saex::storage
