#include "storage/eviction.h"

#include <algorithm>
#include <cassert>
#include <list>
#include <map>
#include <stdexcept>

#include "common/format.h"

namespace saex::storage {

namespace {

// ---------------------------------------------------------------------------
// LRU: doubly-linked recency list (front = most recent) + key index.
// ---------------------------------------------------------------------------
class LruPolicy final : public EvictionPolicy {
 public:
  const char* name() const noexcept override { return "lru"; }

  void on_insert(BlockKey key) override {
    if (index_.count(key) > 0) {
      on_access(key);
      return;
    }
    order_.push_front(key);
    index_[key] = order_.begin();
  }

  void on_access(BlockKey key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }

  void on_remove(BlockKey key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  BlockKey victim() override {
    assert(!order_.empty());
    const BlockKey key = order_.back();
    order_.pop_back();
    index_.erase(key);
    return key;
  }

  bool empty() const noexcept override { return order_.empty(); }
  size_t size() const noexcept override { return order_.size(); }

 private:
  std::list<BlockKey> order_;
  std::map<BlockKey, std::list<BlockKey>::iterator> index_;
};

// ---------------------------------------------------------------------------
// Clock (second-chance FIFO): a circular list with one reference bit per
// block. The hand sweeps in insertion order; a set bit buys the block one
// more lap, a clear bit makes it the victim.
// ---------------------------------------------------------------------------
class ClockPolicy final : public EvictionPolicy {
 public:
  const char* name() const noexcept override { return "clock"; }

  void on_insert(BlockKey key) override {
    if (index_.count(key) > 0) {
      on_access(key);
      return;
    }
    // New blocks enter behind the hand (i.e. at the tail of the sweep
    // order), with their reference bit clear, as in classic CLOCK.
    const auto pos = ring_.insert(hand_valid() ? hand_ : ring_.end(),
                                  Entry{key, false});
    index_[key] = pos;
  }

  void on_access(BlockKey key) override {
    const auto it = index_.find(key);
    if (it != index_.end()) it->second->referenced = true;
  }

  void on_remove(BlockKey key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    erase(it->second);
    index_.erase(it);
  }

  BlockKey victim() override {
    assert(!ring_.empty());
    if (!hand_valid()) hand_ = ring_.begin();
    // Terminates: each pass clears one bit, and bits are only set by
    // accesses, which cannot happen mid-call.
    while (hand_->referenced) {
      hand_->referenced = false;
      advance();
    }
    const BlockKey key = hand_->key;
    auto doomed = hand_;
    advance();
    erase(doomed);
    index_.erase(key);
    return key;
  }

  bool empty() const noexcept override { return ring_.empty(); }
  size_t size() const noexcept override { return ring_.size(); }

 private:
  struct Entry {
    BlockKey key;
    bool referenced;
  };
  using Ring = std::list<Entry>;

  bool hand_valid() const { return hand_ != ring_.end(); }
  void advance() {
    ++hand_;
    if (hand_ == ring_.end()) hand_ = ring_.begin();
  }
  void erase(Ring::iterator pos) {
    if (hand_ == pos) advance();
    ring_.erase(pos);
    if (ring_.empty()) hand_ = ring_.end();
  }

  Ring ring_;
  Ring::iterator hand_ = ring_.end();
  std::map<BlockKey, Ring::iterator> index_;
};

// ---------------------------------------------------------------------------
// S3-FIFO (Yang et al., SOSP'23), simplified to block counts: a small
// probationary FIFO absorbs new blocks, the main FIFO holds blocks that
// proved themselves (re-accessed while in small, or re-inserted after a
// ghost hit), and a bounded ghost FIFO remembers recently evicted keys.
// One-hit wonders flow through small and out without disturbing main.
// ---------------------------------------------------------------------------
class S3FifoPolicy final : public EvictionPolicy {
 public:
  const char* name() const noexcept override { return "s3fifo"; }

  void on_insert(BlockKey key) override {
    if (auto it = entries_.find(key); it != entries_.end()) {
      it->second.freq = std::min(it->second.freq + 1, 3);
      return;
    }
    const bool ghost_hit =
        std::find(ghost_.begin(), ghost_.end(), key) != ghost_.end();
    if (ghost_hit) {
      ghost_.erase(std::remove(ghost_.begin(), ghost_.end(), key),
                   ghost_.end());
      main_.push_back(key);
      entries_[key] = {/*freq=*/0, /*in_main=*/true};
    } else {
      small_.push_back(key);
      entries_[key] = {/*freq=*/0, /*in_main=*/false};
    }
  }

  void on_access(BlockKey key) override {
    const auto it = entries_.find(key);
    if (it != entries_.end()) it->second.freq = std::min(it->second.freq + 1, 3);
  }

  void on_remove(BlockKey key) override {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return;
    auto& q = it->second.in_main ? main_ : small_;
    q.erase(std::remove(q.begin(), q.end(), key), q.end());
    entries_.erase(it);
  }

  BlockKey victim() override {
    assert(!entries_.empty());
    // Evict from small while it exceeds its 10% share (paper's S:M split);
    // otherwise from main. Re-accessed small blocks get promoted instead of
    // evicted; warm main blocks are demoted one frequency step and requeued.
    while (true) {
      const bool from_small =
          !small_.empty() &&
          (main_.empty() || small_.size() * 10 >= entries_.size());
      if (from_small) {
        const BlockKey key = small_.front();
        small_.pop_front();
        Entry& e = entries_.at(key);
        if (e.freq > 0) {  // promoted to main, not evicted
          e.freq = 0;
          e.in_main = true;
          main_.push_back(key);
          continue;
        }
        entries_.erase(key);
        remember_ghost(key);
        return key;
      }
      const BlockKey key = main_.front();
      main_.pop_front();
      Entry& e = entries_.at(key);
      if (e.freq > 0) {  // second chance with decayed frequency
        --e.freq;
        main_.push_back(key);
        continue;
      }
      entries_.erase(key);
      return key;
    }
  }

  bool empty() const noexcept override { return entries_.empty(); }
  size_t size() const noexcept override { return entries_.size(); }

 private:
  struct Entry {
    int freq = 0;  // capped at 3, as in the paper
    bool in_main = false;
  };

  void remember_ghost(BlockKey key) {
    ghost_.push_back(key);
    // Ghost capacity tracks the resident set (paper: |ghost| ~ |main|).
    const size_t cap = std::max<size_t>(8, entries_.size());
    while (ghost_.size() > cap) ghost_.pop_front();
  }

  std::list<BlockKey> small_;
  std::list<BlockKey> main_;
  std::list<BlockKey> ghost_;  // evicted-from-small keys only
  std::map<BlockKey, Entry> entries_;
};

// ---------------------------------------------------------------------------
// TinyLFU: an aged frequency estimate per key; the victim is the resident
// block with the lowest frequency (FIFO order breaks ties). Every
// `kSampleWindow` recorded events all counters halve, so stale popularity
// decays (the "reset" half of the TinyLFU sketch, with exact counters —
// block counts here are small enough not to need a count-min sketch).
// ---------------------------------------------------------------------------
class TinyLfuPolicy final : public EvictionPolicy {
 public:
  const char* name() const noexcept override { return "tinylfu"; }

  void on_insert(BlockKey key) override {
    record(key);
    if (std::find(fifo_.begin(), fifo_.end(), key) == fifo_.end()) {
      fifo_.push_back(key);
    }
  }

  void on_access(BlockKey key) override { record(key); }

  void on_remove(BlockKey key) override {
    fifo_.erase(std::remove(fifo_.begin(), fifo_.end(), key), fifo_.end());
  }

  BlockKey victim() override {
    assert(!fifo_.empty());
    auto coldest = fifo_.begin();
    uint32_t coldest_freq = freq_of(*coldest);
    for (auto it = std::next(fifo_.begin()); it != fifo_.end(); ++it) {
      const uint32_t f = freq_of(*it);
      if (f < coldest_freq) {  // strict: ties keep the oldest (FIFO) block
        coldest = it;
        coldest_freq = f;
      }
    }
    const BlockKey key = *coldest;
    fifo_.erase(coldest);
    return key;
  }

  bool empty() const noexcept override { return fifo_.empty(); }
  size_t size() const noexcept override { return fifo_.size(); }

 private:
  static constexpr uint64_t kSampleWindow = 1024;

  void record(BlockKey key) {
    ++freq_[key];
    if (++events_ >= kSampleWindow) {
      events_ = 0;
      for (auto it = freq_.begin(); it != freq_.end();) {
        it->second /= 2;
        it = it->second == 0 ? freq_.erase(it) : std::next(it);
      }
    }
  }

  uint32_t freq_of(BlockKey key) const {
    const auto it = freq_.find(key);
    return it == freq_.end() ? 0 : it->second;
  }

  std::list<BlockKey> fifo_;  // residents in insertion order
  std::map<BlockKey, uint32_t> freq_;
  uint64_t events_ = 0;
};

}  // namespace

const std::vector<std::string>& eviction_policy_names() {
  static const std::vector<std::string> names = {"none", "lru", "clock",
                                                 "s3fifo", "tinylfu"};
  return names;
}

bool is_valid_eviction_policy(const std::string& name) {
  const auto& names = eviction_policy_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(const std::string& name) {
  if (name == "none") return nullptr;
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "clock") return std::make_unique<ClockPolicy>();
  if (name == "s3fifo") return std::make_unique<S3FifoPolicy>();
  if (name == "tinylfu") return std::make_unique<TinyLfuPolicy>();
  throw std::invalid_argument(strfmt::format(
      "unknown eviction policy '{}' (valid: none, lru, clock, s3fifo, "
      "tinylfu)",
      name));
}

}  // namespace saex::storage
