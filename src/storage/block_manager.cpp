#include "storage/block_manager.h"

#include <cassert>

#include "common/format.h"
#include "prof/profiler.h"

namespace saex::storage {

BlockManager::BlockManager(int node_id, const Options& options,
                           metrics::Registry* metrics)
    : node_id_(node_id),
      options_(options),
      policy_(make_eviction_policy(options.policy)) {
  if (metrics != nullptr) {
    const std::string prefix = strfmt::format("storage/node{}/", node_id);
    m_hits_ = metrics->counter_handle(prefix + "hits");
    m_misses_ = metrics->counter_handle(prefix + "misses");
    m_evictions_ = metrics->counter_handle(prefix + "evictions");
    m_evict_spill_bytes_ = metrics->counter_handle(prefix + "evict_spill_bytes");
    m_evict_drop_bytes_ = metrics->counter_handle(prefix + "evict_drop_bytes");
  }
}

bool BlockManager::over_budget(Bytes incoming) const noexcept {
  return options_.memory_budget > 0 &&
         mem_used_ + incoming > options_.memory_budget;
}

BlockManager::Reservation BlockManager::reserve(BlockId id, Bytes bytes) {
  SAEX_PROF_SCOPE(kStorage);
  Reservation res;
  Block& b = block(id.key());
  b.pinned = true;

  // Active eviction: free committed blocks until the chunk fits (or nothing
  // evictable remains). The victim loop is bounded by the resident count:
  // victim() removes its pick from the policy, and skipped picks are stashed
  // outside it until the loop exits.
  if (policy_ != nullptr) {
    std::vector<BlockKey> skipped;
    while (over_budget(bytes) && !policy_->empty()) {
      const BlockKey vkey = policy_->victim();
      const auto it = blocks_.find(vkey);
      assert(it != blocks_.end() && "policy tracked an unknown block");
      Block& victim = it->second;
      const BlockId vid = BlockId::from_key(vkey);
      // Never evict blocks of the RDD currently being written (Spark's
      // MemoryStore rule): dropping a sibling partition to admit this one
      // would trigger a recompute of the very cache under construction —
      // a ping-pong that can cycle forever under tight budgets. Pinned
      // blocks (mid-write on this node) are likewise untouchable.
      if (victim.pinned || (id.kind == BlockKind::kCachePartition &&
                            vid.kind == id.kind && vid.id == id.id)) {
        skipped.push_back(vkey);
        continue;
      }
      Evicted ev;
      ev.id = vid;
      ev.mem_bytes = victim.mem_bytes;
      ev.spilled = options_.spill_on_evict;
      mem_used_ -= victim.mem_bytes;
      ++evictions_;
      if (m_evictions_) m_evictions_.increment();
      if (options_.spill_on_evict) {
        victim.disk_bytes += victim.mem_bytes;
        disk_used_ += victim.mem_bytes;
        evict_spill_bytes_ += victim.mem_bytes;
        if (m_evict_spill_bytes_) {
          m_evict_spill_bytes_.add(static_cast<double>(victim.mem_bytes));
        }
        victim.mem_bytes = 0;
      } else {
        evict_drop_bytes_ += victim.mem_bytes;
        if (m_evict_drop_bytes_) {
          m_evict_drop_bytes_.add(static_cast<double>(victim.mem_bytes));
        }
        disk_used_ -= victim.disk_bytes;
        blocks_.erase(it);
      }
      res.evicted.push_back(ev);
    }
    // Re-track the survivors in selection order (deterministic; they rejoin
    // at each policy's insertion point).
    for (const BlockKey key : skipped) policy_->on_insert(key);
  }

  // Grant whatever fits; the remainder is the caller's to spill. With
  // policy "none" this is exactly the legacy reserve_storage arithmetic.
  const Bytes room =
      options_.memory_budget > 0
          ? (mem_used_ < options_.memory_budget
                 ? options_.memory_budget - mem_used_
                 : 0)
          : bytes;
  res.granted = bytes < room ? bytes : room;
  b.mem_bytes += res.granted;
  mem_used_ += res.granted;
  return res;
}

void BlockManager::add_disk(BlockId id, Bytes bytes) {
  if (bytes == 0) return;
  Block& b = block(id.key());
  b.disk_bytes += bytes;
  disk_used_ += bytes;
}

void BlockManager::commit(BlockId id) {
  const auto it = blocks_.find(id.key());
  if (it == blocks_.end()) return;
  it->second.pinned = false;
  if (policy_ != nullptr && it->second.mem_bytes > 0) {
    policy_->on_insert(id.key());
  }
}

void BlockManager::touch(BlockId id, bool mem_hit) {
  SAEX_PROF_SCOPE(kStorage);
  if (mem_hit) {
    ++hits_;
    if (m_hits_) m_hits_.increment();
  } else {
    ++misses_;
    if (m_misses_) m_misses_.increment();
  }
  if (policy_ != nullptr) policy_->on_access(id.key());
}

void BlockManager::drop(BlockId id) {
  const auto it = blocks_.find(id.key());
  if (it == blocks_.end()) return;
  mem_used_ -= it->second.mem_bytes;
  disk_used_ -= it->second.disk_bytes;
  if (policy_ != nullptr) policy_->on_remove(id.key());
  blocks_.erase(it);
}

void BlockManager::drop_all() {
  for (const auto& [key, b] : blocks_) {
    if (policy_ != nullptr) policy_->on_remove(key);
  }
  blocks_.clear();
  mem_used_ = 0;
  disk_used_ = 0;
}

// ---------------------------------------------------------------------------
// StorageManager
// ---------------------------------------------------------------------------

StorageManager::StorageManager(int num_nodes,
                               const BlockManager::Options& options,
                               metrics::Registry* metrics)
    : policy_name_(options.policy) {
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    nodes_.push_back(std::make_unique<BlockManager>(n, options, metrics));
  }
}

int64_t StorageManager::total_hits() const noexcept {
  int64_t sum = 0;
  for (const auto& n : nodes_) sum += n->hits();
  return sum;
}

int64_t StorageManager::total_misses() const noexcept {
  int64_t sum = 0;
  for (const auto& n : nodes_) sum += n->misses();
  return sum;
}

int64_t StorageManager::total_evictions() const noexcept {
  int64_t sum = 0;
  for (const auto& n : nodes_) sum += n->evictions();
  return sum;
}

Bytes StorageManager::total_evicted_spill_bytes() const noexcept {
  Bytes sum = 0;
  for (const auto& n : nodes_) sum += n->evicted_spill_bytes();
  return sum;
}

double StorageManager::hit_rate() const noexcept {
  const int64_t h = total_hits();
  const int64_t m = total_misses();
  return h + m == 0 ? 1.0 : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace saex::storage
