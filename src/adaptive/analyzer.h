// [A]nalyze — hill climbing over the thread count (paper §5.2).
//
// The climber starts at c_min and doubles the pool size each interval (low
// settling time); when the analyzed metric worsens it rolls back one step
// and freezes for the rest of the stage. Ascending rather than descending
// because (1) Spark's scheduler has already queued `current size` tasks, so
// shrinking strands queued work, and (2) when c_max is the bad setting,
// starting there costs a full slow interval.
#pragma once

#include <optional>
#include <string>

#include "adaptive/monitor.h"
#include "adaptive/types.h"

namespace saex::adaptive {

struct Decision {
  enum class Action {
    kContinueClimb,  // set target_threads and open a new interval
    kRollback,       // set target_threads (previous size) and freeze
    kHold,           // keep current size and freeze (bound reached)
  };
  Action action = Action::kHold;
  int target_threads = 0;
  std::string reason;
};

class Analyzer {
 public:
  explicit Analyzer(ControllerConfig config) : config_(config) {}

  /// Pool size to explore first (c_min, or c_max when descending).
  int first_threads() const noexcept;

  /// Next exploration step from `current` (doubling/halving, clamped).
  int next_threads(int current) const noexcept;

  /// True when no further exploration step exists from `current`.
  bool at_bound(int current) const noexcept;

  /// The value being minimized for the configured metric.
  double metric_value(const IntervalReport& report) const noexcept;

  /// Compares the interval just measured against the previous one.
  Decision decide(const std::optional<IntervalReport>& previous,
                  const IntervalReport& current) const;

  const ControllerConfig& config() const noexcept { return config_; }

 private:
  ControllerConfig config_;
};

}  // namespace saex::adaptive
