// [K]nowledge base — the record the MAPE loop reads and writes.
//
// Stores, per stage, every measured interval and the final settled decision.
// Benches read it back to regenerate Fig. 6 (per-executor choices) and
// Fig. 7 (ε/µ/ζ per explored size); tests assert convergence through it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "adaptive/monitor.h"

namespace saex::adaptive {

struct StageRecord {
  std::vector<IntervalReport> intervals;  // in exploration order
  int settled_threads = 0;                // size in force when stage ended
  bool rolled_back = false;
  bool reached_bound = false;
};

class KnowledgeBase {
 public:
  void record_interval(int64_t stage_key, const IntervalReport& report) {
    stages_[stage_key].intervals.push_back(report);
  }

  void record_settled(int64_t stage_key, int threads, bool rolled_back,
                      bool reached_bound) {
    StageRecord& rec = stages_[stage_key];
    rec.settled_threads = threads;
    rec.rolled_back = rolled_back;
    rec.reached_bound = reached_bound;
  }

  const StageRecord* stage(int64_t stage_key) const noexcept {
    const auto it = stages_.find(stage_key);
    return it == stages_.end() ? nullptr : &it->second;
  }

  const std::map<int64_t, StageRecord>& stages() const noexcept { return stages_; }

 private:
  std::map<int64_t, StageRecord> stages_;
};

}  // namespace saex::adaptive
