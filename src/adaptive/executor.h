// [E]xecute — applies a plan to the managed resource through effectors.
#pragma once

#include "adaptive/planner.h"
#include "adaptive/types.h"

namespace saex::adaptive {

class PlanExecutor {
 public:
  PlanExecutor(PoolEffector& pool, SchedulerNotifier notifier)
      : pool_(&pool), notifier_(std::move(notifier)) {}

  /// Applies the resize and, when required, notifies the scheduler so its
  /// per-executor free-core registry matches the new pool size (§5.4).
  void apply(const Plan& plan);

 private:
  PoolEffector* pool_;
  SchedulerNotifier notifier_;
};

}  // namespace saex::adaptive
