// Thread-pool sizing policies the engine's executors are parameterized by.
//
//  * DefaultPolicy   — Spark's behaviour: pool size = virtual cores, always.
//  * StaticIoPolicy  — the paper's §4 static solution: a user-supplied size
//                      for I/O-tagged stages, default elsewhere.
//  * PerStagePolicy  — explicit size per stage ordinal; used to realize the
//                      "static BestFit" baseline and the sweep benches.
//  * DynamicPolicy   — the paper's §5 self-adaptive executors (MAPE-K).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "adaptive/controller.h"
#include "adaptive/types.h"

namespace saex::adaptive {

/// What a policy may know about the stage that is starting.
struct StageContext {
  int64_t stage_uid = 0;   // globally unique stage id
  int stage_ordinal = 0;   // 0-based position within the job
  bool io_tagged = false;  // structurally reads/writes the DFS (§4)
};

class ThreadPolicy {
 public:
  virtual ~ThreadPolicy() = default;
  virtual void on_stage_start(const StageContext& stage, double now) = 0;
  virtual void on_task_complete(double /*now*/) {}
  virtual void on_tick(double /*now*/) {}
  virtual void on_stage_end(double /*now*/) {}
  virtual std::string name() const = 0;

  /// Non-null only for DynamicPolicy; benches use it to read the KB.
  virtual const AdaptiveController* controller() const { return nullptr; }
};

class DefaultPolicy final : public ThreadPolicy {
 public:
  DefaultPolicy(PoolEffector& pool, SchedulerNotifier notifier,
                int default_threads);
  void on_stage_start(const StageContext& stage, double now) override;
  std::string name() const override { return "default"; }

 private:
  void apply(int threads);
  PoolEffector* pool_;
  SchedulerNotifier notifier_;
  int default_threads_;
};

class StaticIoPolicy final : public ThreadPolicy {
 public:
  StaticIoPolicy(PoolEffector& pool, SchedulerNotifier notifier,
                 int io_threads, int default_threads);
  void on_stage_start(const StageContext& stage, double now) override;
  std::string name() const override { return "static"; }

 private:
  void apply(int threads);
  PoolEffector* pool_;
  SchedulerNotifier notifier_;
  int io_threads_;
  int default_threads_;
};

class PerStagePolicy final : public ThreadPolicy {
 public:
  /// `threads_by_ordinal` misses fall back to `default_threads`.
  PerStagePolicy(PoolEffector& pool, SchedulerNotifier notifier,
                 std::map<int, int> threads_by_ordinal, int default_threads);
  void on_stage_start(const StageContext& stage, double now) override;
  std::string name() const override { return "per-stage"; }

 private:
  void apply(int threads);
  PoolEffector* pool_;
  SchedulerNotifier notifier_;
  std::map<int, int> threads_by_ordinal_;
  int default_threads_;
};

/// AIMD baseline (not from the paper): additive-increase /
/// multiplicative-decrease on interval throughput, never freezing. A
/// classic congestion-control transplant that the ablation bench compares
/// against the paper's hill climber — it reacts forever (no settling) and
/// probes in +1 steps, so it both converges slower and keeps oscillating.
class AimdPolicy final : public ThreadPolicy {
 public:
  AimdPolicy(ControllerConfig config, Sensor& sensor, PoolEffector& pool,
             SchedulerNotifier notifier);
  void on_stage_start(const StageContext& stage, double now) override;
  void on_task_complete(double now) override;
  std::string name() const override { return "aimd"; }

 private:
  void apply(int threads);

  ControllerConfig config_;
  Monitor monitor_;
  PoolEffector* pool_;
  SchedulerNotifier notifier_;
  int completions_ = 0;
  double prev_throughput_ = 0.0;
};

class DynamicPolicy final : public ThreadPolicy {
 public:
  DynamicPolicy(ControllerConfig config, Sensor& sensor, PoolEffector& pool,
                SchedulerNotifier notifier);
  void on_stage_start(const StageContext& stage, double now) override;
  void on_task_complete(double now) override;
  void on_tick(double now) override;
  void on_stage_end(double now) override;
  std::string name() const override { return "dynamic"; }
  const AdaptiveController* controller() const override { return &controller_; }

 private:
  AdaptiveController controller_;
};

}  // namespace saex::adaptive
