// The MAPE-K feedback loop tying Monitor→Analyze→Plan→Execute together over
// a shared knowledge base (paper §5, Kephart & Chess blueprint).
//
// Event-driven: the owning executor reports stage starts and task
// completions; in completions mode an interval I_j closes after j
// completions at pool size j, in fixed-time mode (ablation) after a wall
// clock period. After a rollback or reaching the bound the loop freezes
// until the next stage.
#pragma once

#include <cstdint>
#include <optional>

#include "adaptive/analyzer.h"
#include "adaptive/executor.h"
#include "adaptive/knowledge.h"
#include "adaptive/monitor.h"
#include "adaptive/planner.h"
#include "adaptive/types.h"

namespace saex::adaptive {

class AdaptiveController {
 public:
  AdaptiveController(ControllerConfig config, Sensor& sensor,
                     PoolEffector& pool, SchedulerNotifier notifier);

  /// Resets tuning for a new stage: pool -> c_min (c_max when descending),
  /// first interval opens.
  void on_stage_start(int64_t stage_key, double now);

  /// Completions-mode interval accounting.
  void on_task_complete(double now);

  /// Fixed-time-mode interval accounting; no-op in completions mode.
  void on_tick(double now);

  /// Finalizes the stage record (also called implicitly by the next
  /// on_stage_start).
  void on_stage_end(double now);

  bool frozen() const noexcept { return frozen_; }
  int64_t current_stage() const noexcept { return stage_key_; }
  const ControllerConfig& config() const noexcept { return analyzer_.config(); }
  const KnowledgeBase& knowledge() const noexcept { return knowledge_; }

 private:
  void close_interval_and_decide(double now);
  void settle(bool rolled_back, bool reached_bound);

  Monitor monitor_;
  Analyzer analyzer_;
  Planner planner_;
  PlanExecutor plan_executor_;
  PoolEffector* pool_;
  KnowledgeBase knowledge_;

  int64_t stage_key_ = -1;
  bool stage_open_ = false;
  bool frozen_ = true;
  int completions_in_interval_ = 0;
  double last_tick_ = 0.0;
  std::optional<IntervalReport> previous_;
  bool rolled_back_ = false;
  bool reached_bound_ = false;
};

}  // namespace saex::adaptive
