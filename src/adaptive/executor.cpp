#include "adaptive/executor.h"

namespace saex::adaptive {

void PlanExecutor::apply(const Plan& plan) {
  if (plan.resize) {
    pool_->set_pool_size(plan.set_size);
  }
  if (plan.notify_scheduler && notifier_) {
    notifier_(plan.set_size);
  }
}

}  // namespace saex::adaptive
