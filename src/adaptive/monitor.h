// [M]onitor — senses the managed thread pool over one tuning interval.
#pragma once

#include <algorithm>
#include <optional>

#include "adaptive/types.h"

namespace saex::adaptive {

/// Everything measured for one interval I_j (paper §5.1).
struct IntervalReport {
  int threads = 0;          // pool size j during this interval
  double start_time = 0.0;
  double end_time = 0.0;
  double epoll_wait = 0.0;  // ε_j: seconds blocked on I/O during the interval
  Bytes bytes = 0;          // bytes moved during the interval
  double disk_utilization = 0.0;
  uint64_t completions = 0;  // tasks completed within the interval

  double duration() const noexcept { return end_time - start_time; }

  /// Average fraction of pool-thread time spent blocked on I/O during the
  /// interval (can exceed 1 with overlapping read+write channels).
  double blocked_fraction() const noexcept {
    const double denom = static_cast<double>(threads) * duration();
    return denom > 0.0 ? epoll_wait / denom : 0.0;
  }

  /// µ_j in bytes/sec.
  double throughput() const noexcept {
    const double d = duration();
    return d > 0.0 ? static_cast<double>(bytes) / d : 0.0;
  }

  /// ζ_j = ε_j / µ_j (Eq. 1). Zero I/O yields ζ = 0: with neither wait time
  /// nor traffic the stage is not I/O-constrained at this size.
  ///
  /// ε is normalized per completed task before dividing by µ: interval I_j
  /// spans j completions, so its raw wait-time accumulation scales with j by
  /// construction and would bias every comparison toward smaller pools. The
  /// paper compares ζ across intervals of different j, which is only
  /// meaningful with the accumulation window held constant per unit of work.
  double congestion_index() const noexcept {
    const double mu = throughput();
    if (mu <= 0.0) return 0.0;
    const double per_task =
        epoll_wait / static_cast<double>(std::max<uint64_t>(completions, 1));
    return per_task / mu;
  }
};

class Monitor {
 public:
  explicit Monitor(Sensor& sensor) : sensor_(&sensor) {}

  /// Opens an interval at pool size `threads`.
  void begin_interval(double now, int threads);

  bool interval_open() const noexcept { return open_; }
  int interval_threads() const noexcept { return threads_; }

  /// Closes the interval and returns the filtered measurements.
  IntervalReport end_interval(double now);

 private:
  Sensor* sensor_;
  bool open_ = false;
  int threads_ = 0;
  double start_time_ = 0.0;
  IoSample start_sample_{};
};

}  // namespace saex::adaptive
