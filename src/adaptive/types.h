// Shared types of the MAPE-K control loop (paper §5).
//
// The controller is engine-agnostic: it senses through `Sensor` (simulated
// executors and the real procmon-based sampler both implement it) and acts
// through `PoolEffector` (the engine's simulated executor and the real
// pool::DynamicThreadPool both implement it). This mirrors the paper's
// drop-in-replacement claim: the same loop drives any thread pool that can
// report ε/µ and resize itself.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"

namespace saex::conf {
class Config;
}

namespace saex::adaptive {

/// Monotone accumulators read at interval boundaries; the Monitor diffs two
/// samples to obtain per-interval ε and bytes.
struct IoSample {
  double epoll_wait_seconds = 0.0;  // ε accumulator: time blocked on I/O
  Bytes bytes_total = 0;            // disk + shuffle bytes moved by tasks
  double disk_utilization = 0.0;    // windowed %util (ablation metric only)
  uint64_t tasks_completed = 0;     // completion counter (ε normalization)
};

class Sensor {
 public:
  virtual ~Sensor() = default;
  virtual IoSample sample() = 0;
};

class PoolEffector {
 public:
  virtual ~PoolEffector() = default;
  virtual void set_pool_size(int threads) = 0;
  virtual int pool_size() const = 0;
};

/// Which per-interval metric the analyzer minimizes (paper uses ζ = ε/µ;
/// the alternatives exist for the ablation study motivated in §5.2).
enum class Metric { kZeta, kEpollOnly, kDiskUtil };

/// Paper: interval I_j = j task completions at pool size j. Fixed-time
/// intervals are the ablation alternative.
enum class IntervalMode { kCompletions, kFixedTime };

struct ControllerConfig {
  int min_threads = 2;     // c_min (paper argues 1 never wins)
  int max_threads = 32;    // c_max = virtual cores
  double tolerance_lower = 0.98;  // improvement must beat prev by >= 2%
  double tolerance_upper = 1.10;  // worse than +10% triggers rollback
  // L3 guards (§5.2): when the interval moved almost no bytes, or the disk
  // was mostly idle, the stage is not I/O-constrained at this size — ζ
  // carries no contention signal and the climber keeps preferring more
  // threads ("if the input/output size or the disk utilization is too low to
  // justify using fewer threads, the performance metrics capture this").
  double min_throughput_bps = 1.0 * static_cast<double>(kMiB);
  double min_disk_utilization = 0.55;
  bool rollback = true;      // ablation: keep climbing on worse ζ
  bool descending = false;   // ablation: start at c_max and halve
  Metric metric = Metric::kZeta;
  IntervalMode interval_mode = IntervalMode::kCompletions;
  double fixed_interval_seconds = 5.0;

  /// Reads the saex.dynamic.* keys; `virtual_cores` resolves maxThreads=0.
  static ControllerConfig from_config(const conf::Config& config,
                                      int virtual_cores);
};

/// Hook used by the Plan/Execute phases to keep the driver's scheduler view
/// consistent (paper §5.3-5.4: the messaging protocol was extended so the
/// scheduler learns about pool resizes).
using SchedulerNotifier = std::function<void(int new_size)>;

}  // namespace saex::adaptive
