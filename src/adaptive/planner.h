// [P]lan — turns an analyzer decision into a consistent set of actions.
//
// Paper §5.3: resizing the pool inside the executor is trivial; the hard
// part is that the driver's scheduler tracks each executor's free cores and
// keeps assigning tasks against the old size. The plan therefore couples the
// resize with a scheduler notification whenever the size changes, preserving
// system integrity.
#pragma once

#include "adaptive/analyzer.h"

namespace saex::adaptive {

struct Plan {
  int set_size = 0;            // pool size to apply
  bool resize = false;         // size actually changes
  bool notify_scheduler = false;
  bool freeze = true;          // stop tuning until the stage ends
  bool open_new_interval = false;
};

class Planner {
 public:
  Plan plan(const Decision& decision, int current_size) const;
};

}  // namespace saex::adaptive
