#include "adaptive/controller.h"

#include "common/log.h"
#include "prof/profiler.h"
#include "conf/config.h"

namespace saex::adaptive {

ControllerConfig ControllerConfig::from_config(const conf::Config& config,
                                               int virtual_cores) {
  ControllerConfig c;
  c.min_threads = static_cast<int>(config.get_int("saex.dynamic.minThreads"));
  c.max_threads = static_cast<int>(config.get_int("saex.dynamic.maxThreads"));
  if (c.max_threads <= 0) c.max_threads = virtual_cores;
  c.tolerance_lower = config.get_double("saex.dynamic.toleranceLower");
  c.tolerance_upper = config.get_double("saex.dynamic.toleranceUpper");
  c.min_throughput_bps =
      static_cast<double>(config.get_bytes("saex.dynamic.minThroughput"));
  c.min_disk_utilization = config.get_double("saex.dynamic.minDiskUtil");
  c.rollback = config.get_bool("saex.dynamic.rollback");
  c.descending = config.get_bool("saex.dynamic.descending");
  const std::string metric = config.get_string("saex.dynamic.metric");
  c.metric = metric == "epoll"      ? Metric::kEpollOnly
             : metric == "diskutil" ? Metric::kDiskUtil
                                    : Metric::kZeta;
  const std::string mode = config.get_string("saex.dynamic.intervalMode");
  c.interval_mode =
      mode == "fixed" ? IntervalMode::kFixedTime : IntervalMode::kCompletions;
  c.fixed_interval_seconds =
      config.get_duration_seconds("saex.dynamic.fixedIntervalSeconds");
  return c;
}

AdaptiveController::AdaptiveController(ControllerConfig config, Sensor& sensor,
                                       PoolEffector& pool,
                                       SchedulerNotifier notifier)
    : monitor_(sensor),
      analyzer_(config),
      plan_executor_(pool, std::move(notifier)),
      pool_(&pool) {}

void AdaptiveController::on_stage_start(int64_t stage_key, double now) {
  if (stage_open_) on_stage_end(now);

  stage_key_ = stage_key;
  stage_open_ = true;
  frozen_ = false;
  previous_.reset();
  rolled_back_ = false;
  reached_bound_ = false;
  completions_in_interval_ = 0;
  last_tick_ = now;

  const int first = analyzer_.first_threads();
  Plan p;
  p.set_size = first;
  p.resize = pool_->pool_size() != first;
  p.notify_scheduler = p.resize;
  p.freeze = false;
  plan_executor_.apply(p);
  monitor_.begin_interval(now, first);
}

void AdaptiveController::on_task_complete(double now) {
  if (!stage_open_ || frozen_) return;
  if (analyzer_.config().interval_mode != IntervalMode::kCompletions) return;
  ++completions_in_interval_;
  // Paper §5.1: interval I_j ends once j tasks completed at pool size j.
  if (completions_in_interval_ >= monitor_.interval_threads()) {
    close_interval_and_decide(now);
  }
}

void AdaptiveController::on_tick(double now) {
  if (!stage_open_ || frozen_) return;
  if (analyzer_.config().interval_mode != IntervalMode::kFixedTime) return;
  if (now - last_tick_ + 1e-9 < analyzer_.config().fixed_interval_seconds) return;
  last_tick_ = now;
  close_interval_and_decide(now);
}

void AdaptiveController::close_interval_and_decide(double now) {
  SAEX_PROF_SCOPE(kAdaptive);
  const IntervalReport report = monitor_.end_interval(now);
  knowledge_.record_interval(stage_key_, report);

  const Decision decision = analyzer_.decide(previous_, report);
  SAEX_DEBUG("stage {}: interval j={} eps={:.3f}s mu={:.1f}MB/s zeta={:.5f} -> {}",
             stage_key_, report.threads, report.epoll_wait,
             report.throughput() / 1e6, report.congestion_index(),
             decision.reason);

  const Plan plan = planner_.plan(decision, report.threads);
  plan_executor_.apply(plan);

  if (plan.open_new_interval) {
    previous_ = report;
    completions_in_interval_ = 0;
    monitor_.begin_interval(now, plan.set_size);
  } else {
    frozen_ = true;
    settle(decision.action == Decision::Action::kRollback,
           decision.action == Decision::Action::kHold);
  }
}

void AdaptiveController::settle(bool rolled_back, bool reached_bound) {
  rolled_back_ = rolled_back;
  reached_bound_ = reached_bound;
  knowledge_.record_settled(stage_key_, pool_->pool_size(), rolled_back,
                            reached_bound);
}

void AdaptiveController::on_stage_end(double now) {
  if (!stage_open_) return;
  if (monitor_.interval_open()) {
    // Stage ran out of tasks mid-interval; keep the partial measurement for
    // the record but make no decision from it.
    const IntervalReport partial = monitor_.end_interval(now);
    if (partial.duration() > 0.0) knowledge_.record_interval(stage_key_, partial);
  }
  knowledge_.record_settled(stage_key_, pool_->pool_size(), rolled_back_,
                            reached_bound_);
  stage_open_ = false;
  frozen_ = true;
}

}  // namespace saex::adaptive
