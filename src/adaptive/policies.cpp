#include "adaptive/policies.h"

#include <algorithm>

namespace saex::adaptive {
namespace {

void apply_size(PoolEffector& pool, const SchedulerNotifier& notifier,
                int threads) {
  if (pool.pool_size() == threads) return;
  pool.set_pool_size(threads);
  if (notifier) notifier(threads);
}

}  // namespace

DefaultPolicy::DefaultPolicy(PoolEffector& pool, SchedulerNotifier notifier,
                             int default_threads)
    : pool_(&pool),
      notifier_(std::move(notifier)),
      default_threads_(default_threads) {}

void DefaultPolicy::on_stage_start(const StageContext& /*stage*/,
                                   double /*now*/) {
  apply_size(*pool_, notifier_, default_threads_);
}

StaticIoPolicy::StaticIoPolicy(PoolEffector& pool, SchedulerNotifier notifier,
                               int io_threads, int default_threads)
    : pool_(&pool),
      notifier_(std::move(notifier)),
      io_threads_(io_threads),
      default_threads_(default_threads) {}

void StaticIoPolicy::on_stage_start(const StageContext& stage, double /*now*/) {
  apply_size(*pool_, notifier_, stage.io_tagged ? io_threads_ : default_threads_);
}

PerStagePolicy::PerStagePolicy(PoolEffector& pool, SchedulerNotifier notifier,
                               std::map<int, int> threads_by_ordinal,
                               int default_threads)
    : pool_(&pool),
      notifier_(std::move(notifier)),
      threads_by_ordinal_(std::move(threads_by_ordinal)),
      default_threads_(default_threads) {}

void PerStagePolicy::on_stage_start(const StageContext& stage, double /*now*/) {
  const auto it = threads_by_ordinal_.find(stage.stage_ordinal);
  apply_size(*pool_, notifier_,
             it == threads_by_ordinal_.end() ? default_threads_ : it->second);
}

AimdPolicy::AimdPolicy(ControllerConfig config, Sensor& sensor,
                       PoolEffector& pool, SchedulerNotifier notifier)
    : config_(config),
      monitor_(sensor),
      pool_(&pool),
      notifier_(std::move(notifier)) {}

void AimdPolicy::apply(int threads) {
  threads = std::clamp(threads, config_.min_threads, config_.max_threads);
  apply_size(*pool_, notifier_, threads);
}

void AimdPolicy::on_stage_start(const StageContext& /*stage*/, double now) {
  // AIMD carries its size across stages (no per-stage reset) — part of why
  // it adapts poorly to stage changes.
  if (monitor_.interval_open()) (void)monitor_.end_interval(now);
  prev_throughput_ = 0.0;
  completions_ = 0;
  if (pool_->pool_size() < config_.min_threads ||
      pool_->pool_size() > config_.max_threads) {
    apply(config_.min_threads);
  }
  monitor_.begin_interval(now, pool_->pool_size());
}

void AimdPolicy::on_task_complete(double now) {
  if (!monitor_.interval_open()) monitor_.begin_interval(now, pool_->pool_size());
  if (++completions_ < pool_->pool_size()) return;
  completions_ = 0;
  const IntervalReport report = monitor_.end_interval(now);
  const double mu = report.throughput();
  if (prev_throughput_ > 0.0 && mu < 0.9 * prev_throughput_) {
    apply(pool_->pool_size() / 2);  // multiplicative decrease
  } else {
    apply(pool_->pool_size() + 1);  // additive increase
  }
  prev_throughput_ = mu;
  monitor_.begin_interval(now, pool_->pool_size());
}

DynamicPolicy::DynamicPolicy(ControllerConfig config, Sensor& sensor,
                             PoolEffector& pool, SchedulerNotifier notifier)
    : controller_(config, sensor, pool, std::move(notifier)) {}

void DynamicPolicy::on_stage_start(const StageContext& stage, double now) {
  controller_.on_stage_start(stage.stage_uid, now);
}

void DynamicPolicy::on_task_complete(double now) {
  controller_.on_task_complete(now);
}

void DynamicPolicy::on_tick(double now) { controller_.on_tick(now); }

void DynamicPolicy::on_stage_end(double now) { controller_.on_stage_end(now); }

}  // namespace saex::adaptive
