#include "adaptive/analyzer.h"
#include "common/format.h"

#include <algorithm>

namespace saex::adaptive {

int Analyzer::first_threads() const noexcept {
  return config_.descending ? config_.max_threads : config_.min_threads;
}

int Analyzer::next_threads(int current) const noexcept {
  if (config_.descending) {
    return std::max(current / 2, config_.min_threads);
  }
  return std::min(current * 2, config_.max_threads);
}

bool Analyzer::at_bound(int current) const noexcept {
  return next_threads(current) == current;
}

double Analyzer::metric_value(const IntervalReport& report) const noexcept {
  switch (config_.metric) {
    case Metric::kZeta:
      return report.congestion_index();
    case Metric::kEpollOnly:
      return report.epoll_wait;
    case Metric::kDiskUtil:
      // Utilization is maximized; minimize its complement. §5.2 explains why
      // this is a weak signal: near saturation all settings look alike.
      return 1.0 - report.disk_utilization;
  }
  return 0.0;
}

Decision Analyzer::decide(const std::optional<IntervalReport>& previous,
                          const IntervalReport& current) const {
  Decision d;

  if (!previous.has_value()) {
    if (at_bound(current.threads)) {
      d.action = Decision::Action::kHold;
      d.target_threads = current.threads;
      d.reason = "single feasible size";
    } else {
      d.action = Decision::Action::kContinueClimb;
      d.target_threads = next_threads(current.threads);
      d.reason = "first interval; keep exploring";
    }
    return d;
  }

  const double prev_value = metric_value(*previous);
  const double cur_value = metric_value(current);

  // L3 guard: with negligible I/O traffic — or a mostly idle disk AND tasks
  // that are not actually blocked — ζ carries no contention signal; a stage
  // this CPU-bound always prefers more threads. The blocked-time condition
  // matters because an idle disk can also mean a *network*-bound stage
  // (§5.2: ε and µ deliberately cover network I/O too), where climbing
  // further is exactly wrong.
  const bool low_io = (current.throughput() < config_.min_throughput_bps &&
                       previous->throughput() < config_.min_throughput_bps) ||
                      (current.disk_utilization < config_.min_disk_utilization &&
                       current.blocked_fraction() < 0.5);

  const bool improved = cur_value < config_.tolerance_lower * prev_value;
  const bool worsened = cur_value > config_.tolerance_upper * prev_value;

  if (!low_io && worsened && config_.rollback) {
    d.action = Decision::Action::kRollback;
    // One exploration step back down. After a normal climb this equals the
    // previous interval's size (the paper's c_j/2); after a fast-climb it
    // lands midway rather than overshooting all the way back.
    d.target_threads = config_.descending
                           ? std::min(current.threads * 2, config_.max_threads)
                           : std::max(current.threads / 2, config_.min_threads);
    d.reason = saex::strfmt::format(
        "metric worsened ({:.4g} -> {:.4g}); rollback to {}", prev_value,
        cur_value, d.target_threads);
    return d;
  }

  // Improved, indifferent, low-I/O, or rollback disabled (ablation): keep
  // climbing until the bound.
  if (at_bound(current.threads)) {
    d.action = Decision::Action::kHold;
    d.target_threads = current.threads;
    d.reason = "bound reached";
    return d;
  }
  d.action = Decision::Action::kContinueClimb;
  // When the disk is demonstrably idle no contention is possible at the
  // next size either, so the climber takes a double step: the settling-time
  // argument that justifies doubling (§5.2) justifies quadrupling here.
  d.target_threads = low_io ? next_threads(next_threads(current.threads))
                            : next_threads(current.threads);
  d.reason = low_io         ? "negligible I/O; fast-climb"
             : improved     ? "metric improved; keep climbing"
             : worsened     ? "worsened but rollback disabled (ablation)"
                            : "indifferent; prefer parallelism";
  return d;
}

}  // namespace saex::adaptive
