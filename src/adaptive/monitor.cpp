#include "adaptive/monitor.h"

#include <cassert>

namespace saex::adaptive {

void Monitor::begin_interval(double now, int threads) {
  assert(!open_ && "previous interval still open");
  open_ = true;
  threads_ = threads;
  start_time_ = now;
  start_sample_ = sensor_->sample();
}

IntervalReport Monitor::end_interval(double now) {
  assert(open_ && "no interval open");
  open_ = false;
  const IoSample end = sensor_->sample();
  IntervalReport report;
  report.threads = threads_;
  report.start_time = start_time_;
  report.end_time = now;
  report.epoll_wait = end.epoll_wait_seconds - start_sample_.epoll_wait_seconds;
  report.bytes = end.bytes_total - start_sample_.bytes_total;
  report.disk_utilization = end.disk_utilization;
  report.completions = end.tasks_completed - start_sample_.tasks_completed;
  return report;
}

}  // namespace saex::adaptive
