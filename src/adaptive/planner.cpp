#include "adaptive/planner.h"

namespace saex::adaptive {

Plan Planner::plan(const Decision& decision, int current_size) const {
  Plan p;
  p.set_size = decision.target_threads;
  p.resize = decision.target_threads != current_size;
  // Every effective resize must reach the scheduler, or its free-core
  // accounting diverges from the executor's actual capacity.
  p.notify_scheduler = p.resize;
  switch (decision.action) {
    case Decision::Action::kContinueClimb:
      p.freeze = false;
      p.open_new_interval = true;
      break;
    case Decision::Action::kRollback:
    case Decision::Action::kHold:
      p.freeze = true;
      p.open_new_interval = false;
      break;
  }
  return p;
}

}  // namespace saex::adaptive
