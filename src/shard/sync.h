// Conservative time-window synchronization for parallel shard kernels.
//
// Classic Chandy–Misra–Bryant reasoning: a shard may safely process every
// event with timestamp < T + L, where T is the minimum next-event time across
// all shards and L is the lookahead — the minimum delay before any shard can
// causally affect another. In this codebase cross-shard influence can only
// travel through hw::Network transfers, whose setup latency bounds L from
// below; a sharded serve run routes each job entirely onto one shard, so no
// cross-shard channels exist at all and L is effectively infinite — every
// kernel runs to completion independently (the fast path, one window).
//
// A finite lookahead (forced via saex.shard.window, or derived from the
// network latency if cross-shard channels are ever registered) produces the
// general protocol: all kernels advance to the horizon min-next-event + L,
// barrier, recompute, repeat. Because shards share no mutable state inside a
// window, the outcome is bitwise-identical for any worker count and any
// window size — which the tests assert.
#pragma once

#include <limits>
#include <vector>

#include "sim/simulation.h"

namespace saex::shard {

class TimeWindowRunner {
 public:
  struct Options {
    /// Lookahead L in simulated seconds. +infinity (the default when no
    /// cross-shard channels exist) collapses the protocol to one window in
    /// which every kernel drains independently.
    double lookahead = std::numeric_limits<double>::infinity();
    /// OS worker threads advancing kernels; <= 1 runs them serially in shard
    /// order on the caller's thread.
    int workers = 1;
  };

  struct Result {
    int windows = 0;        // synchronization rounds executed
    uint64_t events = 0;    // total events processed across kernels
  };

  /// Advances every kernel in lookahead-bounded windows until all are
  /// drained. Kernels must share no mutable state (each shard owns its
  /// cluster, contexts, and RNG streams).
  static Result run(const std::vector<sim::Simulation*>& sims,
                    const Options& options);
};

}  // namespace saex::shard
