#include "shard/sync.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "harness/harness.h"

namespace saex::shard {

TimeWindowRunner::Result TimeWindowRunner::run(
    const std::vector<sim::Simulation*>& sims, const Options& options) {
  Result result;
  if (sims.empty()) return result;
  const int workers =
      std::min<int>(std::max(options.workers, 1), static_cast<int>(sims.size()));

  for (;;) {
    // Global safe horizon: no kernel holds an event earlier than t_min, so
    // every kernel may process up to t_min + lookahead without risking a
    // causality violation from a peer.
    double t_min = std::numeric_limits<double>::infinity();
    for (sim::Simulation* sim : sims) {
      t_min = std::min(t_min, sim->next_time());
    }
    if (std::isinf(t_min)) break;  // all kernels drained

    const bool unbounded = std::isinf(options.lookahead);
    const double horizon = unbounded ? 0.0 : t_min + options.lookahead;
    ++result.windows;

    std::vector<std::function<int()>> tasks;
    tasks.reserve(sims.size());
    for (sim::Simulation* sim : sims) {
      tasks.push_back([sim, unbounded, horizon]() -> int {
        if (unbounded) {
          sim->run();
        } else {
          sim->run_until(horizon);
        }
        return 0;
      });
    }
    // run_ordered is a barrier: every kernel reaches the horizon before the
    // next window's t_min is computed. Kernels are independent, so the
    // result is the same for any worker count.
    harness::run_ordered<int>(std::move(tasks), workers);
    if (unbounded) break;  // one window drained everything
  }

  for (sim::Simulation* sim : sims) result.events += sim->processed();
  return result;
}

}  // namespace saex::shard
