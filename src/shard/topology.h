// Shard topology: a static, contiguous partition of the cluster's nodes into
// per-shard sub-clusters, each driven by its own scheduler and event kernel.
//
// Shards are as even as possible: with N nodes and S shards the first
// N mod S shards get one extra node. Node ids are global in user-facing
// surfaces (CLI flags, fault injection) and translated to shard-local ids at
// the boundary, so a 10k-node scenario reads identically whether it runs on
// one kernel or sixteen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conf/config.h"

namespace saex::shard {

/// Parsed saex.shard.* options.
struct ShardOptions {
  int count = 1;             // saex.shard.count: drivers/kernels
  int workers = 1;           // saex.shard.workers: OS threads advancing them
  std::string placement = "hash";  // saex.shard.placement: hash | least | rr
  double window = 0.0;       // saex.shard.window: >0 forces a finite lookahead

  /// Reads and validates saex.shard.*; throws conf::ConfigError on a count or
  /// worker count < 1, an unknown placement policy, or a negative window.
  static ShardOptions from_config(const conf::Config& config);
};

class ShardTopology {
 public:
  /// Partitions `total_nodes` nodes into `shard_count` contiguous shards.
  /// Throws conf::ConfigError if the count is < 1 or exceeds the node count.
  ShardTopology(int total_nodes, int shard_count);

  int shards() const noexcept { return shard_count_; }
  int total_nodes() const noexcept { return total_nodes_; }

  /// Nodes owned by `shard`.
  int shard_size(int shard) const noexcept {
    return begin_[static_cast<size_t>(shard) + 1] -
           begin_[static_cast<size_t>(shard)];
  }
  /// First global node id owned by `shard`.
  int shard_begin(int shard) const noexcept {
    return begin_[static_cast<size_t>(shard)];
  }
  /// Owning shard of a global node id (O(1): ranges are near-uniform).
  int shard_of(int global_node) const noexcept;
  /// Global node id -> id within its owning shard's sub-cluster.
  int local_node(int global_node) const noexcept {
    return global_node - shard_begin(shard_of(global_node));
  }
  /// Inverse of local_node.
  int global_node(int shard, int local) const noexcept {
    return shard_begin(shard) + local;
  }

 private:
  int total_nodes_ = 0;
  int shard_count_ = 0;
  std::vector<int> begin_;  // size shards+1; begin_[s]..begin_[s+1) is shard s
};

}  // namespace saex::shard
