// Cross-shard job router: places each trace job on one shard before the run
// starts, deterministically under a seed.
//
// Policies:
//   hash   — seeded hash of the client name; a tenant keeps session affinity
//            with one shard, so per-client quotas stay exact.
//   least  — greedy least-estimated-load in arrival order using a relative
//            workload cost model; ties break to the lowest shard id.
//   rr     — round-robin by trace job id.
//
// All three are pure functions of (trace, shard count, policy, seed): the
// placement never reads simulation state, so the sharded run is reproducible
// and the router itself cannot introduce nondeterminism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/trace.h"

namespace saex::shard {

class JobRouter {
 public:
  /// Throws conf::ConfigError on an unknown placement policy.
  JobRouter(int shards, std::string placement, uint64_t seed);

  /// Shard id per trace job, indexed by position in `trace`.
  std::vector<int> route(const std::vector<serve::TraceJob>& trace) const;

  /// Relative service-cost estimate used by least-loaded placement (scan is
  /// the unit; shuffle-heavy big-table jobs cost an order of magnitude more).
  static double workload_cost(const std::string& workload) noexcept;

 private:
  int shards_;
  std::string placement_;
  uint64_t seed_;
};

}  // namespace saex::shard
