#include "shard/router.h"

#include <algorithm>

#include "common/format.h"
#include "conf/config.h"

namespace saex::shard {
namespace {

uint64_t fnv1a(std::string_view s) noexcept {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// splitmix64 finalizer: decorrelates the seeded client hash so shard
// assignment is uniform even for sequential client names ("client0"..).
uint64_t mix(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

JobRouter::JobRouter(int shards, std::string placement, uint64_t seed)
    : shards_(shards), placement_(std::move(placement)), seed_(seed) {
  if (placement_ != "hash" && placement_ != "least" && placement_ != "rr") {
    throw conf::ConfigError(strfmt::format(
        "unknown shard placement '{}' (valid: hash, least, rr)", placement_));
  }
}

double JobRouter::workload_cost(const std::string& workload) noexcept {
  if (workload == "scan") return 1.0;
  if (workload == "aggregation") return 2.0;
  if (workload == "sort") return 10.0;
  if (workload == "join") return 12.0;
  return 1.0;
}

std::vector<int> JobRouter::route(
    const std::vector<serve::TraceJob>& trace) const {
  std::vector<int> placement(trace.size(), 0);
  if (shards_ <= 1) return placement;

  if (placement_ == "rr") {
    for (size_t i = 0; i < trace.size(); ++i) {
      placement[i] = static_cast<int>(trace[i].id % shards_);
    }
    return placement;
  }
  if (placement_ == "hash") {
    for (size_t i = 0; i < trace.size(); ++i) {
      placement[i] = static_cast<int>(mix(fnv1a(trace[i].client) ^ seed_) %
                                      static_cast<uint64_t>(shards_));
    }
    return placement;
  }
  // least: greedy in arrival order over estimated outstanding cost.
  std::vector<double> load(static_cast<size_t>(shards_), 0.0);
  for (size_t i = 0; i < trace.size(); ++i) {
    int best = 0;
    for (int s = 1; s < shards_; ++s) {
      if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    placement[i] = best;
    load[static_cast<size_t>(best)] += workload_cost(trace[i].workload);
  }
  return placement;
}

}  // namespace saex::shard
