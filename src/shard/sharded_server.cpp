#include "shard/sharded_server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/format.h"
#include "common/table.h"
#include "common/units.h"
#include "fault/fault.h"

namespace saex::shard {

ShardedServer::ShardedServer(const hw::ClusterSpec& spec,
                             const conf::Config& config)
    : config_(config),
      options_(ShardOptions::from_config(config)),
      topology_(spec.num_nodes, options_.count),
      spec_(spec) {
  shards_.reserve(static_cast<size_t>(options_.count));
  for (int s = 0; s < options_.count; ++s) {
    Shard shard;
    hw::ClusterSpec sub = spec;
    sub.num_nodes = topology_.shard_size(s);
    // base seed + shard id: shard 0 of a 1-shard run reproduces the serial
    // cluster exactly; distinct shards draw distinct heterogeneity streams.
    sub.seed = spec.seed + static_cast<uint64_t>(s);
    shard.cluster = std::make_unique<hw::Cluster>(sub);
    shard.ctx = std::make_unique<engine::SparkContext>(*shard.cluster,
                                                       shard_config(s));
    shard.server = std::make_unique<serve::JobServer>(*shard.ctx);
    shards_.push_back(std::move(shard));
  }
}

ShardedServer::~ShardedServer() = default;

conf::Config ShardedServer::shard_config(int shard) const {
  conf::Config config = config_;
  // Fault flags name GLOBAL node ids; the owning shard sees the local id,
  // every other shard sees the fault disabled. (killAfterTasks counts tasks
  // on the owning shard's scheduler.)
  for (const char* key : {"saex.fault.killNode", "saex.fault.slowNode"}) {
    const int node = static_cast<int>(config.get_int(key));
    if (node < 0 || node >= topology_.total_nodes()) continue;
    config.set_int(key, topology_.shard_of(node) == shard
                            ? topology_.local_node(node)
                            : -1);
  }
  // fetchFailNode needs its own treatment: -1 does not disable the injection
  // (it means "drop fetches from ANY source"), so a shard that does not own
  // the targeted node must zero the probability instead.
  if (const int node = static_cast<int>(config.get_int("saex.fault.fetchFailNode"));
      node >= 0 && node < topology_.total_nodes()) {
    if (topology_.shard_of(node) == shard) {
      config.set_int("saex.fault.fetchFailNode", topology_.local_node(node));
    } else {
      config.set_int("saex.fault.fetchFailNode", -1);
      config.set_double("saex.fault.fetchFailProb", 0.0);
    }
  }
  // The chaos timeline also names global node ids: each shard keeps only
  // the events for its own nodes, rewritten to local ids. Timestamps are
  // untouched, so the merged schedule replays the global one exactly.
  if (const std::string chaos = config.get_string("saex.fault.chaos");
      !chaos.empty()) {
    std::vector<fault::ChaosEvent> local;
    for (const fault::ChaosEvent& ev : fault::parse_chaos(chaos)) {
      if (ev.node < 0 || ev.node >= topology_.total_nodes()) continue;
      if (topology_.shard_of(ev.node) != shard) continue;
      fault::ChaosEvent copy = ev;
      copy.node = topology_.local_node(ev.node);
      local.push_back(copy);
    }
    config.set("saex.fault.chaos", fault::format_chaos(local));
  }
  // Per-job task counts should match the shard's core count, not the whole
  // cluster's; untouched when unset (and exact at one shard).
  if (config.is_set("spark.default.parallelism")) {
    const int64_t p = config.get_int("spark.default.parallelism");
    config.set_int(
        "spark.default.parallelism",
        std::max<int64_t>(1, p * topology_.shard_size(shard) /
                                 topology_.total_nodes()));
  }
  return config;
}

double ShardedServer::lookahead() const noexcept {
  return options_.window > 0.0 ? options_.window
                               : std::numeric_limits<double>::infinity();
}

ShardedServeReport ShardedServer::replay(
    const std::vector<serve::TraceJob>& trace,
    const serve::TraceOptions& trace_options) {
  const int num_shards = topology_.shards();
  const JobRouter router(num_shards, options_.placement, trace_options.seed);

  ShardedServeReport out;
  out.placement = router.route(trace);
  out.placement_policy = options_.placement;
  out.workers = options_.workers;
  out.lookahead = lookahead();

  // Split the trace; jobs keep their global ids and arrival times.
  std::vector<std::vector<serve::TraceJob>> sub(
      static_cast<size_t>(num_shards));
  for (size_t i = 0; i < trace.size(); ++i) {
    sub[static_cast<size_t>(out.placement[i])].push_back(trace[i]);
  }

  // Schedule every shard's inputs and arrival events WITHOUT draining —
  // mirrors JobServer::replay up to (but not including) drain(), so a
  // 1-shard run replays the exact serial event sequence.
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    serve::load_trace_inputs(*shard.ctx, trace_options);
    sim::Simulation& sim = shard.cluster->sim();
    serve::JobServer* server = shard.server.get();
    for (const serve::TraceJob& job : sub[static_cast<size_t>(s)]) {
      const serve::TraceJob copy = job;
      sim.schedule_at(job.arrival_time, [server, copy] {
        server->submit(strfmt::format("{}#{}", copy.workload, copy.id),
                       copy.client, copy.pool,
                       [copy](engine::SparkContext& ctx) {
                         return serve::build_trace_job(ctx, copy);
                       },
                       copy.deadline);
      });
    }
  }

  // Advance all shard kernels to completion in conservative time windows.
  TimeWindowRunner::Options ropts;
  ropts.lookahead = out.lookahead;
  ropts.workers = options_.workers;
  std::vector<sim::Simulation*> sims;
  sims.reserve(shards_.size());
  for (Shard& shard : shards_) sims.push_back(&shard.cluster->sim());
  const TimeWindowRunner::Result run = TimeWindowRunner::run(sims, ropts);
  out.windows = run.windows;
  out.events = run.events;

  // Per-shard reports (drain() on an empty kernel only aggregates).
  out.shards.reserve(shards_.size());
  out.stats.reserve(shards_.size());
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    out.shards.push_back(shard.server->drain());
    ShardStats stats;
    stats.shard = s;
    stats.nodes = topology_.shard_size(s);
    stats.jobs = static_cast<int>(sub[static_cast<size_t>(s)].size());
    stats.events = shard.cluster->sim().processed();
    out.stats.push_back(stats);
  }

  // Merge records back into global submission order. Shard s's j-th record
  // is sub[s][j]'s outcome (per-shard submission order follows the FIFO
  // arrival schedule), so a cursor walk re-labels them with global ids.
  std::vector<serve::JobRecord> merged(trace.size());
  std::vector<size_t> cursor(static_cast<size_t>(num_shards), 0);
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto s = static_cast<size_t>(out.placement[i]);
    merged[i] = out.shards[s].jobs[cursor[s]++];
    merged[i].submission_id = static_cast<int>(i);
  }
  out.merged = serve::build_serve_report(
      std::move(merged), shards_[0].server->options().mode,
      shards_[0].ctx->scheduler().pools());
  for (const serve::ServeReport& report : out.shards) {
    out.merged.executors_granted += report.executors_granted;
    out.merged.executors_released += report.executors_released;
    out.merged.executors_lost += report.executors_lost;
    out.merged.quarantines += report.quarantines;
    out.merged.probes += report.probes;
    out.merged.reinstatements += report.reinstatements;
  }
  return out;
}

std::string ShardedServeReport::render() const {
  std::ostringstream out;
  out << merged.render() << "\n\n";
  out << strfmt::format(
      "shards {}  workers {}  placement {}  lookahead {}  windows {}"
      "  events {}\n",
      static_cast<int>(shards.size()), workers, placement_policy,
      std::isinf(lookahead) ? std::string("unbounded")
                            : format_duration(lookahead),
      windows, static_cast<int64_t>(events));
  TextTable table({"shard", "nodes", "jobs", "events"});
  for (const ShardStats& s : stats) {
    table.add_row({strfmt::format("{}", s.shard), strfmt::format("{}", s.nodes),
                   strfmt::format("{}", s.jobs),
                   strfmt::format("{}", static_cast<int64_t>(s.events))});
  }
  out << table.render();
  return out.str();
}

}  // namespace saex::shard
