// Sharded serve path: S independent driver/scheduler/kernel stacks behind one
// job router, advanced together by the conservative time-window runner.
//
// Each shard owns a contiguous slice of the cluster (its own hw::Cluster,
// sim::Simulation, SparkContext, and JobServer), seeded deterministically as
// base seed + shard id. A trace job is routed whole onto one shard, runs
// there exactly as it would on a stand-alone cluster of that size, and the
// per-shard records are merged back into one ServeReport in global trace-id
// order using the same aggregation code as the serial path — so the merged
// report of a 1-shard run is bitwise-identical to JobServer::replay, and an
// S-shard run is bitwise-identical across any worker count.
//
// Global node ids in fault-injection config (saex.fault.killNode / slowNode)
// are translated to the owning shard's local id; other shards see the fault
// disabled. spark.default.parallelism is scaled to each shard's share of the
// nodes so per-job task counts match the shard's core count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "conf/config.h"
#include "engine/context.h"
#include "hw/cluster.h"
#include "serve/job_server.h"
#include "shard/router.h"
#include "shard/sync.h"
#include "shard/topology.h"

namespace saex::shard {

/// Per-shard run summary for the report footer.
struct ShardStats {
  int shard = 0;
  int nodes = 0;
  int jobs = 0;         // trace jobs routed here
  uint64_t events = 0;  // events processed by this shard's kernel
};

struct ShardedServeReport {
  /// Aggregated exactly like a serial ServeReport (records in trace-id
  /// order, same rollup code); executor counters are summed across shards.
  serve::ServeReport merged;
  std::vector<serve::ServeReport> shards;  // per-shard reports, by shard id
  std::vector<ShardStats> stats;
  std::vector<int> placement;  // trace job id -> shard
  std::string placement_policy;
  double lookahead = 0.0;  // +inf = unbounded (no cross-shard channels)
  int windows = 0;         // time-window rounds executed
  int workers = 0;
  uint64_t events = 0;     // total events across shard kernels

  /// merged.render() plus a per-shard footer table.
  std::string render() const;
  std::string render_jobs() const { return merged.render_jobs(); }
};

class ShardedServer {
 public:
  /// `spec` describes the WHOLE cluster; it is sliced into
  /// saex.shard.count sub-clusters. Throws conf::ConfigError on invalid
  /// saex.shard.* settings (including count > spec.num_nodes).
  ShardedServer(const hw::ClusterSpec& spec, const conf::Config& config);
  ~ShardedServer();

  /// Routes the trace across shards, advances all shard kernels to
  /// completion (on saex.shard.workers threads), and merges the reports.
  ShardedServeReport replay(const std::vector<serve::TraceJob>& trace,
                            const serve::TraceOptions& trace_options = {});

  const ShardTopology& topology() const noexcept { return topology_; }
  const ShardOptions& options() const noexcept { return options_; }
  /// Shard-local context (event log, metrics) for export after a replay.
  engine::SparkContext& context(int shard) noexcept {
    return *shards_[static_cast<size_t>(shard)].ctx;
  }

 private:
  struct Shard {
    std::unique_ptr<hw::Cluster> cluster;
    std::unique_ptr<engine::SparkContext> ctx;
    std::unique_ptr<serve::JobServer> server;
  };

  /// Per-shard config: global fault node ids -> local, parallelism scaled.
  conf::Config shard_config(int shard) const;
  /// Lookahead for the window runner: the saex.shard.window override if set,
  /// else unbounded (jobs never span shards, so no cross-shard channel can
  /// carry an event; were one registered, spec_.network.latency would bound
  /// the lookahead from below).
  double lookahead() const noexcept;

  conf::Config config_;
  ShardOptions options_;
  ShardTopology topology_;
  hw::ClusterSpec spec_;
  std::vector<Shard> shards_;
};

}  // namespace saex::shard
