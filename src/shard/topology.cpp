#include "shard/topology.h"

#include "common/format.h"

namespace saex::shard {

ShardOptions ShardOptions::from_config(const conf::Config& config) {
  ShardOptions o;
  o.count = static_cast<int>(config.get_int("saex.shard.count"));
  o.workers = static_cast<int>(config.get_int("saex.shard.workers"));
  o.placement = config.get_string("saex.shard.placement");
  o.window = config.get_duration_seconds("saex.shard.window");
  if (o.count < 1) {
    throw conf::ConfigError(
        strfmt::format("saex.shard.count must be >= 1 (got {})", o.count));
  }
  if (o.workers < 1) {
    throw conf::ConfigError(
        strfmt::format("saex.shard.workers must be >= 1 (got {})", o.workers));
  }
  if (o.placement != "hash" && o.placement != "least" && o.placement != "rr") {
    throw conf::ConfigError(strfmt::format(
        "saex.shard.placement '{}' (valid: hash, least, rr)", o.placement));
  }
  if (o.window < 0.0) {
    throw conf::ConfigError("saex.shard.window must be >= 0");
  }
  return o;
}

ShardTopology::ShardTopology(int total_nodes, int shard_count)
    : total_nodes_(total_nodes), shard_count_(shard_count) {
  if (shard_count < 1) {
    throw conf::ConfigError(
        strfmt::format("shard count must be >= 1 (got {})", shard_count));
  }
  if (shard_count > total_nodes) {
    throw conf::ConfigError(strfmt::format(
        "shard count {} exceeds cluster size {}", shard_count, total_nodes));
  }
  begin_.reserve(static_cast<size_t>(shard_count) + 1);
  const int base = total_nodes / shard_count;
  const int extra = total_nodes % shard_count;
  int at = 0;
  for (int s = 0; s < shard_count; ++s) {
    begin_.push_back(at);
    at += base + (s < extra ? 1 : 0);
  }
  begin_.push_back(at);
}

int ShardTopology::shard_of(int global_node) const noexcept {
  const int base = total_nodes_ / shard_count_;
  const int extra = total_nodes_ % shard_count_;
  const int fat_span = extra * (base + 1);  // first `extra` shards are larger
  if (global_node < fat_span) return global_node / (base + 1);
  return extra + (global_node - fat_span) / base;
}

}  // namespace saex::shard
