#include "harness/harness.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace saex::harness {

int resolve_jobs(int requested) noexcept {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace detail {

void run_indexed(std::size_t count, int jobs,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = count;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        // Keep the lowest-index failure so the parallel run reports the
        // same error a serial run would have hit first.
        const std::lock_guard lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  const std::size_t n_workers =
      std::min(static_cast<std::size_t>(jobs), count);
  std::vector<std::thread> threads;
  threads.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail
}  // namespace saex::harness
