// Parallel experiment harness.
//
// Independent (config, seed) simulation runs share no mutable state — each
// builds its own Cluster, Simulation, and SparkContext — so sweeping them is
// embarrassingly parallel. run_ordered() fans tasks out over a fixed worker
// pool and returns results indexed by submission order, which makes a
// parallel sweep bitwise-identical to the serial loop it replaces: the i-th
// result is always the i-th task's return value, and each task's simulation
// is a pure function of its inputs.
//
// jobs <= 1 runs the tasks in order on the caller's thread (no pool), so
// serial behavior is exactly the pre-harness code path.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace saex::harness {

/// Resolves a --jobs style request: n >= 1 is taken as-is, anything else
/// (0, negative) selects the hardware concurrency.
int resolve_jobs(int requested) noexcept;

namespace detail {
/// Runs body(0) .. body(count-1) on min(jobs, count) worker threads; each
/// index runs exactly once. Rethrows the first task exception (by index
/// order) after all workers drain. jobs <= 1 degenerates to a serial loop.
void run_indexed(std::size_t count, int jobs,
                 const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Runs every task and returns their results in submission order.
/// R must be default-constructible and movable (engine::JobReport,
/// serve::ServeReport, and friends all are).
template <typename R>
std::vector<R> run_ordered(std::vector<std::function<R()>> tasks, int jobs) {
  std::vector<R> out(tasks.size());
  detail::run_indexed(tasks.size(), jobs,
                      [&](std::size_t i) { out[i] = tasks[i](); });
  return out;
}

}  // namespace saex::harness
