// Live sampling over /proc: turns two snapshots into the rates and
// fractions the paper's figures are built from (iowait%, CPU%, disk
// throughput, device utilization). Used by the real-thread-pool example;
// the simulation provides the same quantities from its own accounting.
#pragma once

#include <optional>
#include <string>

#include "procmon/procfs.h"

namespace saex::procmon {

struct SystemSnapshot {
  CpuTimes cpu;
  std::map<std::string, DiskStats> disks;
  std::optional<ProcessIo> self_io;
  double wall_seconds = 0.0;  // monotonic timestamp
};

struct SystemDelta {
  double interval_seconds = 0.0;
  double cpu_busy_fraction = 0.0;
  double cpu_iowait_fraction = 0.0;
  double disk_read_bps = 0.0;    // summed over monitored devices
  double disk_write_bps = 0.0;
  double disk_utilization = 0.0;  // max over devices, iostat %util
  double self_read_bps = 0.0;
  double self_write_bps = 0.0;
};

class Sampler {
 public:
  /// `proc_root` is overridable for tests ("/proc" in production).
  explicit Sampler(std::string proc_root = "/proc");

  /// Reads /proc/stat, /proc/diskstats, /proc/self/io now.
  SystemSnapshot snapshot() const;

  /// Rates between two snapshots (b after a).
  static SystemDelta delta(const SystemSnapshot& a, const SystemSnapshot& b);

 private:
  std::string proc_root_;
};

}  // namespace saex::procmon
