#include "procmon/procfs.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace saex::procmon {
namespace {

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

uint64_t to_u64(std::string_view s) {
  uint64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

template <typename Fn>
void for_each_line(std::string_view content, Fn&& fn) {
  size_t pos = 0;
  while (pos < content.size()) {
    size_t end = content.find('\n', pos);
    if (end == std::string_view::npos) end = content.size();
    fn(content.substr(pos, end - pos));
    pos = end + 1;
  }
}

}  // namespace

std::optional<CpuTimes> parse_proc_stat(std::string_view content) {
  std::optional<CpuTimes> result;
  for_each_line(content, [&](std::string_view line) {
    if (result || !line.starts_with("cpu ")) return;
    const auto fields = split_ws(line);
    if (fields.size() < 5) return;
    CpuTimes t;
    t.user = to_u64(fields[1]);
    t.nice = to_u64(fields[2]);
    t.system = to_u64(fields[3]);
    t.idle = to_u64(fields[4]);
    if (fields.size() > 5) t.iowait = to_u64(fields[5]);
    if (fields.size() > 6) t.irq = to_u64(fields[6]);
    if (fields.size() > 7) t.softirq = to_u64(fields[7]);
    if (fields.size() > 8) t.steal = to_u64(fields[8]);
    result = t;
  });
  return result;
}

std::map<std::string, DiskStats> parse_diskstats(std::string_view content) {
  std::map<std::string, DiskStats> out;
  for_each_line(content, [&](std::string_view line) {
    const auto f = split_ws(line);
    // major minor name reads reads_merged sectors_read ms_reading writes
    // writes_merged sectors_written ms_writing io_in_progress io_ticks
    // time_in_queue [...]
    if (f.size() < 14) return;
    DiskStats d;
    d.reads_completed = to_u64(f[3]);
    d.sectors_read = to_u64(f[5]);
    d.writes_completed = to_u64(f[7]);
    d.sectors_written = to_u64(f[9]);
    d.io_in_progress = to_u64(f[11]);
    d.io_ticks_ms = to_u64(f[12]);
    d.time_in_queue_ms = to_u64(f[13]);
    out.emplace(std::string(f[2]), d);
  });
  return out;
}

std::map<std::string, NetDevStats> parse_net_dev(std::string_view content) {
  std::map<std::string, NetDevStats> out;
  for_each_line(content, [&](std::string_view line) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return;  // header lines
    std::string_view name = line.substr(0, colon);
    const auto start = name.find_first_not_of(' ');
    if (start == std::string_view::npos) return;
    name = name.substr(start);
    const auto f = split_ws(line.substr(colon + 1));
    // rx: bytes packets errs drop fifo frame compressed multicast
    // tx: bytes packets errs drop fifo colls carrier compressed
    if (f.size() < 16) return;
    NetDevStats d;
    d.rx_bytes = to_u64(f[0]);
    d.rx_packets = to_u64(f[1]);
    d.rx_errors = to_u64(f[2]);
    d.rx_dropped = to_u64(f[3]);
    d.tx_bytes = to_u64(f[8]);
    d.tx_packets = to_u64(f[9]);
    d.tx_errors = to_u64(f[10]);
    d.tx_dropped = to_u64(f[11]);
    out.emplace(std::string(name), d);
  });
  return out;
}

std::optional<ProcessIo> parse_proc_io(std::string_view content) {
  ProcessIo io;
  bool any = false;
  for_each_line(content, [&](std::string_view line) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return;
    const std::string_view key = line.substr(0, colon);
    std::string_view rest = line.substr(colon + 1);
    const size_t value_start = rest.find_first_not_of(' ');
    if (value_start == std::string_view::npos) return;
    const uint64_t value = to_u64(rest.substr(value_start));
    if (key == "rchar") {
      io.rchar = value;
      any = true;
    } else if (key == "wchar") {
      io.wchar = value;
      any = true;
    } else if (key == "read_bytes") {
      io.read_bytes = value;
      any = true;
    } else if (key == "write_bytes") {
      io.write_bytes = value;
      any = true;
    }
  });
  if (!any) return std::nullopt;
  return io;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace saex::procmon
