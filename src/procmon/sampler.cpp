#include "procmon/sampler.h"

#include <algorithm>
#include <cctype>
#include <chrono>

namespace saex::procmon {

Sampler::Sampler(std::string proc_root) : proc_root_(std::move(proc_root)) {}

SystemSnapshot Sampler::snapshot() const {
  SystemSnapshot snap;
  if (const auto cpu = parse_proc_stat(read_file(proc_root_ + "/stat"))) {
    snap.cpu = *cpu;
  }
  snap.disks = parse_diskstats(read_file(proc_root_ + "/diskstats"));
  snap.self_io = parse_proc_io(read_file(proc_root_ + "/self/io"));
  snap.wall_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return snap;
}

SystemDelta Sampler::delta(const SystemSnapshot& a, const SystemSnapshot& b) {
  SystemDelta d;
  d.interval_seconds = b.wall_seconds - a.wall_seconds;
  if (d.interval_seconds <= 0.0) return d;

  const auto total = static_cast<double>(b.cpu.total() - a.cpu.total());
  if (total > 0.0) {
    d.cpu_busy_fraction = static_cast<double>(b.cpu.busy() - a.cpu.busy()) / total;
    d.cpu_iowait_fraction =
        static_cast<double>(b.cpu.iowait - a.cpu.iowait) / total;
  }

  for (const auto& [name, cur] : b.disks) {
    const auto prev_it = a.disks.find(name);
    if (prev_it == a.disks.end()) continue;
    const DiskStats& prev = prev_it->second;
    // Skip partitions: heuristic — partitions end in a digit following a
    // letter (sda1, nvme0n1p2 handled via 'p' rule below).
    if (!name.empty() && std::isdigit(static_cast<unsigned char>(name.back())) &&
        name.find("nvme") == std::string::npos) {
      continue;
    }
    d.disk_read_bps += static_cast<double>(cur.bytes_read() - prev.bytes_read()) /
                       d.interval_seconds;
    d.disk_write_bps +=
        static_cast<double>(cur.bytes_written() - prev.bytes_written()) /
        d.interval_seconds;
    const double util =
        static_cast<double>(cur.io_ticks_ms - prev.io_ticks_ms) / 1000.0 /
        d.interval_seconds;
    d.disk_utilization = std::max(d.disk_utilization, std::min(util, 1.0));
  }

  if (a.self_io && b.self_io) {
    d.self_read_bps =
        static_cast<double>(b.self_io->read_bytes - a.self_io->read_bytes) /
        d.interval_seconds;
    d.self_write_bps =
        static_cast<double>(b.self_io->write_bytes - a.self_io->write_bytes) /
        d.interval_seconds;
  }
  return d;
}

}  // namespace saex::procmon
