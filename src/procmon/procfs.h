// Parsers for the Linux /proc interfaces the paper's monitoring relies on
// (mpstat reads /proc/stat, iostat reads /proc/diskstats, per-process I/O
// comes from /proc/<pid>/io). Parsing is pure (string -> struct) so it is
// unit-testable with fixtures; live sampling lives in sampler.h.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace saex::procmon {

/// Aggregate CPU jiffies from the "cpu " line of /proc/stat.
struct CpuTimes {
  uint64_t user = 0;
  uint64_t nice = 0;
  uint64_t system = 0;
  uint64_t idle = 0;
  uint64_t iowait = 0;
  uint64_t irq = 0;
  uint64_t softirq = 0;
  uint64_t steal = 0;

  uint64_t total() const noexcept {
    return user + nice + system + idle + iowait + irq + softirq + steal;
  }
  uint64_t busy() const noexcept { return total() - idle - iowait; }
};

/// Parses /proc/stat content; returns nullopt if no aggregate cpu line.
std::optional<CpuTimes> parse_proc_stat(std::string_view content);

/// One device row of /proc/diskstats.
struct DiskStats {
  uint64_t reads_completed = 0;
  uint64_t sectors_read = 0;   // 512-byte sectors
  uint64_t writes_completed = 0;
  uint64_t sectors_written = 0;
  uint64_t io_in_progress = 0;
  uint64_t io_ticks_ms = 0;       // time the device had I/O in flight
  uint64_t time_in_queue_ms = 0;  // weighted: per-request queue+service time

  uint64_t bytes_read() const noexcept { return sectors_read * 512; }
  uint64_t bytes_written() const noexcept { return sectors_written * 512; }
};

/// Parses /proc/diskstats into device-name -> stats.
std::map<std::string, DiskStats> parse_diskstats(std::string_view content);

/// One interface row of /proc/net/dev.
struct NetDevStats {
  uint64_t rx_bytes = 0;
  uint64_t rx_packets = 0;
  uint64_t rx_errors = 0;
  uint64_t rx_dropped = 0;
  uint64_t tx_bytes = 0;
  uint64_t tx_packets = 0;
  uint64_t tx_errors = 0;
  uint64_t tx_dropped = 0;
};

/// Parses /proc/net/dev into interface-name -> stats (loopback included).
std::map<std::string, NetDevStats> parse_net_dev(std::string_view content);

/// /proc/<pid>/io counters.
struct ProcessIo {
  uint64_t rchar = 0;
  uint64_t wchar = 0;
  uint64_t read_bytes = 0;   // actually hit storage
  uint64_t write_bytes = 0;
};

std::optional<ProcessIo> parse_proc_io(std::string_view content);

/// Reads a whole (small) file; empty string on failure.
std::string read_file(const std::string& path);

}  // namespace saex::procmon
