// HiBench graph workload: NWeight (n-hop neighbourhood weights).
//
// The extreme Table 2 row: +3553% I/O on a 0.28 GiB input, because each hop
// multiplies the candidate-path table before it is re-shuffled.
#include <algorithm>

#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec nweight(Bytes input) {
  WorkloadSpec spec;
  spec.name = "nweight";
  spec.type = "graph";
  spec.input_size = input;
  spec.paper_io_ratio = 36.5;  // Table 2: 10.23 GiB on 0.28 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/nweight/in")) {
      dfs.load_input("/nweight/in", input, std::min(ctx.cluster().size(), 4));
    }
    const engine::Rdd out =
        ctx.text_file("/nweight/in")
            .flat_map("expandHop1", {0.50, 6.0})
            .reduce_by_key("combineHop1", {0.15, 1.0}, 1.0)
            .flat_map("expandHop2", {0.30, 1.5})
            .reduce_by_key("combineHop2", {0.15, 1.0}, 1.0)
            .map("weights", {0.10, 0.55})
            .save_as_text_file("/nweight/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

}  // namespace saex::workloads
