// HiBench SQL workloads: Aggregation, Join, Scan (all over the "bigdata"
// uservisits/rankings tables, 17.87 GiB).
//
// Aggregation and Join are the paper's examples of limitation L3: their
// read stages are I/O-tagged but CPU-heavy (Fig. 1: 46% / 68% CPU), so the
// static solution's reduced thread counts only starve the CPU — the default
// is already best there, and only the dynamic solution finds the remaining
// gains in the later stages.
#include <algorithm>

#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec aggregation(Bytes input) {
  WorkloadSpec spec;
  spec.name = "aggregation";
  spec.type = "sql";
  spec.input_size = input;
  spec.paper_io_ratio = 2.09;  // Table 2: 37.44 GiB on 17.87 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/agg/in")) {
      dfs.load_input("/agg/in", input, std::min(ctx.cluster().size(), 4), mib(4));
    }
    // SELECT sourceIP, SUM(adRevenue) GROUP BY sourceIP: the scan stage
    // parses every row (expensive) and pre-aggregates down to ~28%.
    const engine::Rdd out =
        ctx.text_file("/agg/in")
            .map("scan+partialAgg", {1.9, 0.55})
            .reduce_by_key("groupBy", {0.02, 1.0}, 1.0, 0, {0.35, 1.3})
            .map("finalAgg", {0.5, 0.90})
            .save_as_text_file("/agg/out", 2);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec join(Bytes input) {
  WorkloadSpec spec;
  spec.name = "join";
  spec.type = "sql";
  spec.input_size = input;
  spec.paper_io_ratio = 1.18;  // Table 2: 21.06 GiB on 17.87 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    // uservisits is the large fact table, rankings the small one.
    const Bytes visits = static_cast<Bytes>(static_cast<double>(input) * 0.78);
    const Bytes rankings = input - visits;
    if (!dfs.exists("/join/uservisits")) {
      dfs.load_input("/join/uservisits", visits, std::min(ctx.cluster().size(), 4),
                     mib(4));
      dfs.load_input("/join/rankings", rankings, std::min(ctx.cluster().size(), 4),
                     mib(4));
    }

    // Both scan stages are CPU-heavy row parsers with selective predicates.
    const engine::Rdd uv = ctx.text_file("/join/uservisits")
                               .map("scanUserVisits", {2.2, 0.10});
    const engine::Rdd rk = ctx.text_file("/join/rankings")
                               .map("scanRankings", {1.6, 0.35});
    const engine::Rdd out =
        uv.join(rk, "hashJoin", {0.5, 1.0}, /*output_ratio=*/0.55, 0,
            {0.3, 1.5})
            .save_as_text_file("/join/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec scan(Bytes input) {
  WorkloadSpec spec;
  spec.name = "scan";
  spec.type = "sql";
  spec.input_size = input;
  spec.paper_io_ratio = 6.30;  // Table 2: 112.56 GiB on 17.87 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/scan/in")) {
      dfs.load_input("/scan/in", input, std::min(ctx.cluster().size(), 4));
    }
    // SELECT * re-materializes the table as expanded text (ratio > 1) and
    // the output is replicated 3× — hence the paper's +530% I/O activity.
    const engine::Rdd out = ctx.text_file("/scan/in")
                                .map("projectRows", {0.05, 1.74})
                                .save_as_text_file("/scan/out", 3);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

}  // namespace saex::workloads
