// Additional HiBench workloads beyond the paper's Table 2 set — useful for
// exercising the engine and the adaptive executors on more shapes:
//
//   wordcount  — the classic micro benchmark: read-heavy map, tiny shuffle
//   sort       — like Terasort without the sampling job
//   kmeans     — iterative ML: cached points, tiny per-iteration shuffles
#include <algorithm>

#include "common/format.h"
#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec wordcount(Bytes input) {
  WorkloadSpec spec;
  spec.name = "wordcount";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 1.1;  // not in Table 2; read-dominated

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/wordcount/in")) {
      dfs.load_input("/wordcount/in", input, std::min(ctx.cluster().size(), 4));
    }
    // Tokenize + per-partition combine crushes the data before the shuffle.
    const engine::Rdd out =
        ctx.text_file("/wordcount/in")
            .flat_map("tokenize", {0.25, 1.0})
            .reduce_by_key("countByWord", {0.10, 1.0}, 0.03)
            .map("format", {0.02, 1.0})
            .save_as_text_file("/wordcount/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec sort(Bytes input) {
  WorkloadSpec spec;
  spec.name = "sort";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 3.0;

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/sort/in")) {
      dfs.load_input("/sort/in", input, std::min(ctx.cluster().size(), 4));
    }
    const engine::Rdd out = ctx.text_file("/sort/in")
                                .sort_by_key("sortByKey", {0.04, 1.0})
                                .save_as_text_file("/sort/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec kmeans(Bytes input, int iterations) {
  WorkloadSpec spec;
  spec.name = "kmeans";
  spec.type = "ml";
  spec.input_size = input;
  spec.paper_io_ratio = 1.2;  // cached after the first pass

  spec.build = [input, iterations](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/kmeans/in")) {
      dfs.load_input("/kmeans/in", input, std::min(ctx.cluster().size(), 4));
    }
    const engine::Rdd points =
        ctx.text_file("/kmeans/in").map("parseVectors", {0.15, 1.0}).cache();

    // Each iteration is its own job: assign points to centroids (CPU-heavy
    // over the cached set) and aggregate the tiny per-centroid sums.
    std::vector<engine::Rdd> actions;
    for (int i = 1; i <= iterations; ++i) {
      actions.push_back(
          points.map(strfmt::format("assign-{}", i), {0.30, 0.0005})
              .reduce_by_key(strfmt::format("centroids-{}", i), {0.01, 1.0},
                             1.0, /*num_partitions=*/8)
              .collect(strfmt::format("update-{}", i)));
    }
    return actions;
  };
  return spec;
}

WorkloadSpec cache_churn(Bytes per_cache, int num_caches, int rounds) {
  WorkloadSpec spec;
  spec.name = "cachechurn";
  spec.type = "storage";
  spec.input_size = per_cache * static_cast<Bytes>(num_caches);
  spec.paper_io_ratio = 1.0;

  spec.build = [per_cache, num_caches, rounds](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    std::vector<engine::Rdd> caches;
    caches.reserve(static_cast<size_t>(num_caches));
    for (int i = 0; i < num_caches; ++i) {
      const std::string in = strfmt::format("/churn/in{}", i);
      if (!dfs.exists(in)) {
        // Small blocks: 16 partitions per cache regardless of size, so the
        // cached blocks spread across the cluster and per-node budgets see
        // real multi-block contention.
        dfs.load_input(in, per_cache, std::min(ctx.cluster().size(), 4),
                       std::max<Bytes>(mib(1), per_cache / 16));
      }
      caches.push_back(ctx.text_file(in)
                           .map(strfmt::format("parse-{}", i), {0.10, 1.0})
                           .cache());
    }

    auto scan = [&caches](int i, const std::string& tag) {
      return caches[static_cast<size_t>(i)]
          .map(strfmt::format("scan-{}-{}", i, tag), {0.08, 0.001})
          .collect(strfmt::format("agg-{}-{}", i, tag));
    };

    // Hot phase: cache 0 is materialized and re-read until it is clearly
    // the frequent block set. Then a pollution phase streams the cold
    // caches through exactly once — the shape where recency and frequency
    // disagree: LRU sacrifices the hot-but-not-recent cache 0 to one-hit
    // wonders, while frequency-aware policies (tinylfu, s3fifo's small
    // queue, clock's reference bits) let the scan pass through.
    std::vector<engine::Rdd> actions;
    actions.push_back(scan(0, "warm0"));
    for (int h = 0; h < 3; ++h) {
      actions.push_back(scan(0, strfmt::format("hot{}", h)));
    }
    for (int i = 1; i < num_caches; ++i) {
      actions.push_back(scan(i, strfmt::format("warm{}", i)));
    }
    // Skewed read rounds: cache 0 is read twice per round, the rest once —
    // a policy that keeps the hot cache resident wins on hit rate.
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < num_caches; ++i) {
        actions.push_back(scan(i, strfmt::format("r{}", r)));
        if (i == 0) actions.push_back(scan(0, strfmt::format("r{}b", r)));
      }
    }
    return actions;
  };
  return spec;
}

}  // namespace saex::workloads
