// Additional HiBench workloads beyond the paper's Table 2 set — useful for
// exercising the engine and the adaptive executors on more shapes:
//
//   wordcount  — the classic micro benchmark: read-heavy map, tiny shuffle
//   sort       — like Terasort without the sampling job
//   kmeans     — iterative ML: cached points, tiny per-iteration shuffles
#include <algorithm>

#include "common/format.h"
#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec wordcount(Bytes input) {
  WorkloadSpec spec;
  spec.name = "wordcount";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 1.1;  // not in Table 2; read-dominated

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/wordcount/in")) {
      dfs.load_input("/wordcount/in", input, std::min(ctx.cluster().size(), 4));
    }
    // Tokenize + per-partition combine crushes the data before the shuffle.
    const engine::Rdd out =
        ctx.text_file("/wordcount/in")
            .flat_map("tokenize", {0.25, 1.0})
            .reduce_by_key("countByWord", {0.10, 1.0}, 0.03)
            .map("format", {0.02, 1.0})
            .save_as_text_file("/wordcount/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec sort(Bytes input) {
  WorkloadSpec spec;
  spec.name = "sort";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 3.0;

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/sort/in")) {
      dfs.load_input("/sort/in", input, std::min(ctx.cluster().size(), 4));
    }
    const engine::Rdd out = ctx.text_file("/sort/in")
                                .sort_by_key("sortByKey", {0.04, 1.0})
                                .save_as_text_file("/sort/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec kmeans(Bytes input, int iterations) {
  WorkloadSpec spec;
  spec.name = "kmeans";
  spec.type = "ml";
  spec.input_size = input;
  spec.paper_io_ratio = 1.2;  // cached after the first pass

  spec.build = [input, iterations](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/kmeans/in")) {
      dfs.load_input("/kmeans/in", input, std::min(ctx.cluster().size(), 4));
    }
    const engine::Rdd points =
        ctx.text_file("/kmeans/in").map("parseVectors", {0.15, 1.0}).cache();

    // Each iteration is its own job: assign points to centroids (CPU-heavy
    // over the cached set) and aggregate the tiny per-centroid sums.
    std::vector<engine::Rdd> actions;
    for (int i = 1; i <= iterations; ++i) {
      actions.push_back(
          points.map(strfmt::format("assign-{}", i), {0.30, 0.0005})
              .reduce_by_key(strfmt::format("centroids-{}", i), {0.01, 1.0},
                             1.0, /*num_partitions=*/8)
              .collect(strfmt::format("update-{}", i)));
    }
    return actions;
  };
  return spec;
}

}  // namespace saex::workloads
