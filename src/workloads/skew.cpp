// AQE-shape workloads (not part of the preset iteration lists, like
// cache_churn):
//
//   skewshuffle — reduce-side hot partition: the shuffle's reduce-partition
//       weights follow a Zipf law (ShuffleTraits::skew), so one partition
//       receives a large share of every map output and serializes the
//       reduce stage. The shape AQE's skew splitting exists for.
//   tinyparts   — thousands of near-empty reduce partitions on a modest
//       input: per-task fixed costs (driver<->executor messaging, dispatch
//       granularity) dominate useful work. The shape AQE's partition
//       coalescing exists for.
#include <algorithm>

#include "common/format.h"
#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec skewshuffle(Bytes input, int partitions, double alpha) {
  WorkloadSpec spec;
  spec.name = "skewshuffle";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 3.0;  // not in Table 2; full shuffle + reduced write

  spec.build = [input, partitions, alpha](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/skew/in")) {
      dfs.load_input("/skew/in", input, std::min(ctx.cluster().size(), 4));
    }
    // Full-size shuffle whose reduce partitioning is Zipf(alpha)-weighted:
    // partition 0 alone receives roughly a third of the bytes at the
    // default alpha, so without splitting the reduce stage ends when that
    // one task does.
    const engine::Rdd out =
        ctx.text_file("/skew/in")
            .map("parse", {0.05, 1.0})
            .reduce_by_key("skewGroup", {0.08, 1.0}, 1.0, partitions,
                           engine::ShuffleTraits{0.4, 1.0, alpha})
            .map("aggregate", {0.12, 0.05})
            .save_as_text_file("/skew/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec tinyparts(Bytes input, int partitions) {
  WorkloadSpec spec;
  spec.name = "tinyparts";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 2.0;

  spec.build = [input, partitions](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/tiny/in")) {
      // 32 MiB blocks: enough map tasks to keep the cluster busy, so the
      // over-partitioned REDUCE stage is what dominates the makespan.
      dfs.load_input("/tiny/in", input, std::min(ctx.cluster().size(), 4),
                     mib(32));
    }
    // The over-partitioned aggregation: each reduce partition carries only
    // a few hundred KiB, so the stage pays thousands of fixed per-task
    // costs for milliseconds of useful work each.
    const engine::Rdd out = ctx.text_file("/tiny/in")
                                .map("parse", {0.04, 1.0})
                                .reduce_by_key("manyParts", {0.05, 1.0}, 1.0,
                                               partitions)
                                .map("fold", {0.05, 0.01})
                                .collect("sink");
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

}  // namespace saex::workloads
