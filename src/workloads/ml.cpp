// HiBench machine-learning workloads: Bayes, LDA, SVM (Table 2 rows).
#include "common/format.h"
#include <algorithm>

#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec bayes(Bytes input) {
  WorkloadSpec spec;
  spec.name = "bayes";
  spec.type = "ml";
  spec.input_size = input;
  spec.paper_io_ratio = 2.80;  // Table 2: 9.80 GiB on 3.50 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/bayes/in")) {
      dfs.load_input("/bayes/in", input, std::min(ctx.cluster().size(), 4));
    }
    const engine::Rdd out =
        ctx.text_file("/bayes/in")
            .flat_map("tokenize", {0.20, 0.70})
            .reduce_by_key("termCounts", {0.06, 1.0}, 1.0)
            .map("trainModel", {0.25, 0.75})
            .save_as_text_file("/bayes/model", 2);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec lda(Bytes input) {
  WorkloadSpec spec;
  spec.name = "lda";
  spec.type = "ml";
  spec.input_size = input;
  spec.paper_io_ratio = 6.08;  // Table 2: 3.83 GiB on 0.63 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/lda/in")) {
      dfs.load_input("/lda/in", input, std::min(ctx.cluster().size(), 4));
    }
    engine::Rdd x = ctx.text_file("/lda/in")
                        .map("vectorize", {0.30, 0.86})
                        .reduce_by_key("emStep-1", {0.25, 1.0}, 1.0);
    for (int i = 2; i <= 3; ++i) {
      x = x.reduce_by_key(strfmt::format("emStep-{}", i), {0.25, 1.0}, 1.0);
    }
    const engine::Rdd out =
        x.map("topics", {0.10, 0.30}).save_as_text_file("/lda/model", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

WorkloadSpec svm(Bytes input) {
  WorkloadSpec spec;
  spec.name = "svm";
  spec.type = "ml";
  spec.input_size = input;
  spec.paper_io_ratio = 1.90;  // Table 2: 203.92 GiB on 107.29 GiB

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/svm/in")) {
      dfs.load_input("/svm/in", input, std::min(ctx.cluster().size(), 4));
    }
    // The training set is cached but exceeds the storage budget, so a large
    // fraction spills; every gradient pass re-reads the spilled part from
    // disk. This is the paper's "any stage could use the disk for spilling
    // the cached data in memory" case (limitation L2).
    const engine::Rdd data =
        ctx.text_file("/svm/in").map("parsePoints", {0.10, 1.0}).cache();

    std::vector<engine::Rdd> actions;
    for (int i = 1; i <= 2; ++i) {
      actions.push_back(
          data.map(strfmt::format("gradient-{}", i), {0.35, 0.0002})
              .reduce_by_key(strfmt::format("aggregate-{}", i), {0.01, 1.0},
                             1.0, /*num_partitions=*/8)
              .collect(strfmt::format("model-update-{}", i)));
    }
    return actions;
  };
  return spec;
}

}  // namespace saex::workloads
