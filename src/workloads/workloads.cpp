#include "workloads/workloads.h"

namespace saex::workloads {

std::vector<WorkloadSpec> table2_workloads() {
  return {aggregation(), bayes(),   join(), lda(), nweight(),
          pagerank(),    scan(),    terasort(), svm()};
}

std::vector<WorkloadSpec> extra_workloads() {
  return {wordcount(), sort(), kmeans()};
}

namespace {

engine::JobReport run_impl(const WorkloadSpec& spec, hw::Cluster& cluster,
                           conf::Config config,
                           engine::SparkContext::PolicyFactory factory) {
  engine::SparkContext ctx(cluster, std::move(config));
  if (factory) ctx.set_policy_factory(std::move(factory));

  const std::vector<engine::Rdd> actions = spec.build(ctx);
  engine::JobReport merged;
  bool first = true;
  for (const engine::Rdd& action : actions) {
    engine::JobReport r = ctx.run_job(action, spec.name);
    if (first) {
      merged = std::move(r);
      first = false;
    } else {
      merged.total_runtime += r.total_runtime;
      merged.total_disk_bytes += r.total_disk_bytes;
      merged.events_processed = r.events_processed;  // cumulative per sim
      for (engine::StageStats& s : r.stages) {
        merged.stages.push_back(std::move(s));
      }
    }
  }
  // Re-number stages so the application has one contiguous stage list.
  for (size_t i = 0; i < merged.stages.size(); ++i) {
    merged.stages[i].ordinal = static_cast<int>(i);
  }
  merged.app_name = spec.name;
  merged.input_bytes = spec.input_size;
  return merged;
}

}  // namespace

engine::JobReport run(const WorkloadSpec& spec, hw::Cluster& cluster,
                      conf::Config config) {
  return run_impl(spec, cluster, std::move(config), nullptr);
}

engine::JobReport run_with_policy(const WorkloadSpec& spec,
                                  hw::Cluster& cluster, conf::Config config,
                                  engine::SparkContext::PolicyFactory factory) {
  return run_impl(spec, cluster, std::move(config), std::move(factory));
}

}  // namespace saex::workloads
