// Terasort (HiBench micro, 120 GB). The paper's primary workload: three
// stages, all I/O-tagged (§4), very low CPU (Fig. 1: 6/15/9%).
//
//  stage 0  sampling job: full input scan feeding the range partitioner
//           (read-only, result to driver)
//  stage 1  map: read input, range-partition, shuffle-write everything
//  stage 2  reduce: fetch shuffle, merge, write sorted output
#include <algorithm>

#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec terasort(Bytes input) {
  WorkloadSpec spec;
  spec.name = "terasort";
  spec.type = "micro";
  spec.input_size = input;
  spec.paper_io_ratio = 3.84;  // Table 2: 429.35 GiB on 111.75 GiB input

  spec.build = [input](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/terasort/in")) {
      dfs.load_input("/terasort/in", input, std::min(ctx.cluster().size(), 4));
    }

    // Job 1: range-partitioner sampling. HiBench's generated partitioner
    // scans the input once; CPU per record is tiny (checksum + key parse).
    const engine::Rdd sample = ctx.text_file("/terasort/in")
                                   .map("sampleKeys", {0.018, 1.0})
                                   .collect("rangeBounds");

    // Job 2: the sort itself. sortByKey moves every byte through the
    // shuffle; the reduce side merges (cheap) and writes the output.
    const engine::Rdd sorted =
        ctx.text_file("/terasort/in")
            .sort_by_key("sortByKey", {0.045, 1.0})
            .map("merge", {0.028, 1.0})
            .save_as_text_file("/terasort/out", /*replication=*/1);

    return std::vector<engine::Rdd>{sample, sorted};
  };
  return spec;
}

}  // namespace saex::workloads
