// PageRank (HiBench websearch, "gigantic": 18.56 GiB edges).
//
// Paper structure: a data-ingestion stage (I/O-tagged via textFile), a
// series of shuffle-heavy iteration stages that the static solution cannot
// tag (limitation L2 — they read/write the disk through the shuffle without
// expressing I/O), and a final output stage (tagged via saveAsTextFile).
// Table 2: 128.3 GiB of I/O on 18.56 GiB input (+591%); the shuffle stages
// move ~65 GiB read / ~59 GiB written in aggregate.
#include "common/format.h"
#include <algorithm>

#include "workloads/workloads.h"

namespace saex::workloads {

WorkloadSpec pagerank(Bytes input, int iterations) {
  WorkloadSpec spec;
  spec.name = "pagerank";
  spec.type = "websearch";
  spec.input_size = input;
  spec.paper_io_ratio = 6.91;  // Table 2: 128.3 GiB on 18.56 GiB

  spec.build = [input, iterations](engine::SparkContext& ctx) {
    auto& dfs = ctx.dfs();
    if (!dfs.exists("/pagerank/in")) {
      dfs.load_input("/pagerank/in", input, std::min(ctx.cluster().size(), 4));
    }

    // Ingestion: parse the edge list into (src, [dst]) adjacency; CPU-heavy
    // (Fig. 1 shows ~61% CPU in stage 0), emits ~65% of the input into the
    // first shuffle.
    engine::Rdd x = ctx.text_file("/pagerank/in")
                        .map("buildLinks", {0.30, 0.72})
                        .reduce_by_key("groupEdges", {0.05, 1.0}, 1.0, 0,
                                       {0.45, 1.8});

    // Iterations: join contributions with ranks and re-aggregate; each is a
    // full shuffle of the contribution table.
    for (int i = 1; i <= iterations; ++i) {
      x = x.reduce_by_key(strfmt::format("iteration-{}", i), {0.05, 1.0},
                          1.0, 0, {0.45, 1.8});
    }

    // Ranks are small relative to the contribution table.
    const engine::Rdd out = x.map("computeRanks", {0.05, 0.18})
                                .save_as_text_file("/pagerank/out", 1);
    return std::vector<engine::Rdd>{out};
  };
  return spec;
}

}  // namespace saex::workloads
