// HiBench-equivalent workload definitions (paper §6.1, Tables 2–3).
//
// Each workload is a plan builder over the engine plus the input files it
// needs. Per-operator CPU costs and size ratios are calibrated against the
// paper's published characterization — Table 2's I/O-activity multipliers
// and Fig. 1's per-stage CPU/iowait profiles — so runtimes, utilizations and
// the adaptive controller's behaviour are *outputs* of the simulation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "engine/context.h"

namespace saex::workloads {

struct WorkloadSpec {
  std::string name;
  std::string type;        // Table 3: micro / sql / websearch / ml / graph
  Bytes input_size = 0;
  double paper_io_ratio = 0.0;  // Table 2: I/O activity / input size

  /// Loads inputs into the context's DFS (replication = cluster size, as in
  /// §6.1) and returns the job actions to execute in order. Spark
  /// applications may consist of several jobs (e.g. Terasort's sampling
  /// pass); their stages concatenate into the application's stage list.
  std::function<std::vector<engine::Rdd>(engine::SparkContext&)> build;
};

/// HiBench presets sized as in the paper.
WorkloadSpec terasort(Bytes input = gib(111.75));
WorkloadSpec pagerank(Bytes input = gib(18.56), int iterations = 4);
WorkloadSpec aggregation(Bytes input = gib(17.87));
WorkloadSpec join(Bytes input = gib(17.87));
WorkloadSpec scan(Bytes input = gib(17.87));
WorkloadSpec bayes(Bytes input = gib(3.50));
WorkloadSpec lda(Bytes input = gib(0.63));
WorkloadSpec nweight(Bytes input = gib(0.28));
WorkloadSpec svm(Bytes input = gib(107.29));

/// The nine applications of Table 2, in the paper's order.
std::vector<WorkloadSpec> table2_workloads();

/// Extension workloads beyond the paper's set (HiBench classics).
WorkloadSpec wordcount(Bytes input = gib(32));
WorkloadSpec sort(Bytes input = gib(32));
WorkloadSpec kmeans(Bytes input = gib(16), int iterations = 3);
std::vector<WorkloadSpec> extra_workloads();

/// Storage-layer stressor (not part of the preset lists): `num_caches`
/// cached RDDs of `per_cache` bytes each contend for the per-node budget,
/// then `rounds` of skewed re-reads (cache 0 hottest, Zipf-ish) measure how
/// well the eviction policy kept the hot set resident. Built for the
/// cache_policies bench and the storage tests; with an unbounded budget it
/// degenerates to plain cached scans.
WorkloadSpec cache_churn(Bytes per_cache = gib(1), int num_caches = 4,
                         int rounds = 3);

/// AQE stressors (not part of the preset lists; see src/workloads/skew.cpp):
/// a Zipf-skewed shuffle whose hot reduce partition serializes the stage,
/// and an over-partitioned aggregation drowning in per-task fixed costs.
WorkloadSpec skewshuffle(Bytes input = gib(8), int partitions = 64,
                         double alpha = 1.2);
WorkloadSpec tinyparts(Bytes input = gib(2), int partitions = 8192);

/// Runs a workload application (all of its jobs) on a fresh context and
/// returns the merged report.
engine::JobReport run(const WorkloadSpec& spec, hw::Cluster& cluster,
                      conf::Config config);

/// Same, but installing a custom policy factory before running (used by the
/// static-sweep and BestFit benches).
engine::JobReport run_with_policy(const WorkloadSpec& spec,
                                  hw::Cluster& cluster, conf::Config config,
                                  engine::SparkContext::PolicyFactory factory);

}  // namespace saex::workloads
