#include "resilience/resilience.h"

#include <algorithm>

#include "common/rng.h"

namespace saex::resilience {

RetryPolicy RetryPolicy::from_config(const conf::Config& config) {
  RetryPolicy p;
  p.max_retries = static_cast<int>(config.get_int("saex.serve.maxRetries"));
  p.backoff = config.get_duration_seconds("saex.serve.retryBackoff");
  p.backoff_max = config.get_duration_seconds("saex.serve.retryBackoffMax");
  p.jitter = config.get_double("saex.serve.retryJitter");
  return p;
}

double RetryPolicy::delay(uint64_t seed, int submission_id, int attempt) const {
  double base = backoff;
  for (int i = 1; i < attempt && base < backoff_max; ++i) base *= 2.0;
  base = std::min(base, backoff_max);
  if (jitter <= 0.0) return base;
  const double u = Rng(seed)
                       .fork("serve.retry")
                       .fork(static_cast<uint64_t>(submission_id))
                       .fork(static_cast<uint64_t>(attempt))
                       .next_double();
  return base * (1.0 + jitter * u);
}

}  // namespace saex::resilience
