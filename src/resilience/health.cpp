#include "resilience/health.h"

#include <cassert>

#include "common/log.h"

namespace saex::resilience {

HealthOptions HealthOptions::from_config(const conf::Config& config) {
  HealthOptions h;
  h.enabled = config.get_bool("saex.resilience.quarantine");
  h.threshold =
      static_cast<int>(config.get_int("saex.resilience.quarantineThreshold"));
  h.window = config.get_duration_seconds("saex.resilience.quarantineWindow");
  h.cooldown =
      config.get_duration_seconds("saex.resilience.quarantineCooldown");
  return h;
}

NodeHealthTracker::NodeHealthTracker(int num_nodes, HealthOptions options,
                                     sim::Simulation& sim, Hooks hooks)
    : options_(options),
      sim_(sim),
      hooks_(std::move(hooks)),
      nodes_(static_cast<size_t>(num_nodes)) {}

bool NodeHealthTracker::quarantined(int node) const noexcept {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return false;
  return nodes_[static_cast<size_t>(node)].state == State::kOpen;
}

void NodeHealthTracker::record_fault(int node) {
  if (!options_.enabled) return;
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return;
  NodeHealth& health = nodes_[static_cast<size_t>(node)];
  switch (health.state) {
    case State::kOpen:
      return;  // already quarantined; nothing new to learn
    case State::kHalfOpen:
      open_breaker(node);  // still flapping — back to quarantine
      return;
    case State::kClosed:
      break;
  }
  const double now = sim_.now();
  health.fault_times.push_back(now);
  while (!health.fault_times.empty() &&
         health.fault_times.front() < now - options_.window) {
    health.fault_times.pop_front();
  }
  if (static_cast<int>(health.fault_times.size()) >= options_.threshold) {
    open_breaker(node);
  }
}

void NodeHealthTracker::record_task_outcome(int node, bool success) {
  if (!options_.enabled) return;
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return;
  NodeHealth& health = nodes_[static_cast<size_t>(node)];
  if (health.state != State::kHalfOpen) return;
  if (success) {
    health.state = State::kClosed;
    health.fault_times.clear();
    ++reinstatements_;
    SAEX_INFO("health: node {} probe succeeded, breaker closed at {:.3f}s",
              node, sim_.now());
  } else {
    open_breaker(node);
  }
}

void NodeHealthTracker::open_breaker(int node) {
  NodeHealth& health = nodes_[static_cast<size_t>(node)];
  health.state = State::kOpen;
  health.fault_times.clear();
  ++quarantines_;
  const uint64_t epoch = ++health.epoch;
  SAEX_INFO("health: quarantining node {} for {:.1f}s at {:.3f}s", node,
            options_.cooldown, sim_.now());
  if (hooks_.quarantine) hooks_.quarantine(node);
  sim_.schedule_after(options_.cooldown, [this, node, epoch] {
    NodeHealth& h = nodes_[static_cast<size_t>(node)];
    // A re-open while this timer was pending bumped the epoch; that newer
    // quarantine runs on its own timer.
    if (h.epoch != epoch || h.state != State::kOpen) return;
    h.state = State::kHalfOpen;
    ++probes_;
    SAEX_INFO("health: node {} half-open (probing) at {:.3f}s", node,
              sim_.now());
    if (hooks_.reinstate) hooks_.reinstate(node);
  });
}

}  // namespace saex::resilience
