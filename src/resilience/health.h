// Per-node health circuit breaker (saex.resilience.*).
//
// Each node runs the classic three-state breaker:
//
//            >= threshold faults within window
//   closed ────────────────────────────────────▶ open (quarantined)
//     ▲                                            │ cooldown elapses
//     │ probe task succeeds                        ▼
//     └──────────────────────────────────── half-open (probing)
//                    probe task fails / new fault ──▶ open again
//
// Faults are executor-lost and shuffle-fetch-failure events attributed to a
// node (fed by SparkContext's node-fault hook); probe feedback is the first
// task outcome observed on the node after reinstatement. While open, the
// node is excluded from scheduler offers and dynamic-allocation grants via
// the quarantine/reinstate hooks. All transitions ride the simulation clock,
// so quarantine decisions replay bitwise from the seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "conf/config.h"
#include "sim/simulation.h"

namespace saex::resilience {

struct HealthOptions {
  bool enabled = false;   // saex.resilience.quarantine
  int threshold = 3;      // saex.resilience.quarantineThreshold
  double window = 30.0;   // saex.resilience.quarantineWindow (seconds)
  double cooldown = 60.0; // saex.resilience.quarantineCooldown (seconds)

  static HealthOptions from_config(const conf::Config& config);
};

class NodeHealthTracker {
 public:
  struct Hooks {
    /// Open: exclude the node from offers (TaskScheduler quarantine flag).
    std::function<void(int node)> quarantine;
    /// Half-open: make the node schedulable again so a probe task can land.
    std::function<void(int node)> reinstate;
  };

  NodeHealthTracker(int num_nodes, HealthOptions options, sim::Simulation& sim,
                    Hooks hooks);

  /// An executor-lost or fetch-failure event attributed to `node`. In the
  /// closed state this may trip the breaker; in half-open it re-opens
  /// immediately (the node is still flapping); in open it is ignored.
  void record_fault(int node);

  /// Task outcome observed on `node` — probe feedback. Only meaningful in
  /// half-open: success closes the breaker (fault history cleared), failure
  /// re-opens it for another cooldown.
  void record_task_outcome(int node, bool success);

  bool quarantined(int node) const noexcept;

  int64_t quarantines() const noexcept { return quarantines_; }
  int64_t probes() const noexcept { return probes_; }
  int64_t reinstatements() const noexcept { return reinstatements_; }

 private:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct NodeHealth {
    State state = State::kClosed;
    std::deque<double> fault_times;  // within the sliding window
    uint64_t epoch = 0;  // stamps cooldown timers so stale ones are inert
  };

  void open_breaker(int node);

  HealthOptions options_;
  sim::Simulation& sim_;
  Hooks hooks_;
  std::vector<NodeHealth> nodes_;
  int64_t quarantines_ = 0;
  int64_t probes_ = 0;
  int64_t reinstatements_ = 0;
};

}  // namespace saex::resilience
