// saex::resilience — serve-layer resilience building blocks.
//
// Two ingredients, both deterministic under the run's seed (see
// docs/FAULT_MODEL.md):
//
//  * RetryPolicy       — seeded exponential backoff + jitter for failed job
//    re-submission (saex.serve.maxRetries / retryBackoff / retryBackoffMax /
//    retryJitter). The jitter draw is a pure function of
//    (seed, submission id, attempt), NOT of global draw order, so a sharded
//    replay and a rerun produce bitwise-identical schedules.
//  * NodeHealthTracker — per-node circuit breaker (health.h) quarantining
//    flapping nodes out of scheduler offers and dynamic allocation.
//
// The serve layer (serve::JobServer) wires both through the engine; this
// module depends on nothing above the simulation kernel.
#pragma once

#include <cstdint>

#include "conf/config.h"

namespace saex::resilience {

/// Seeded retry with exponential backoff + jitter. Inert at the defaults
/// (max_retries = 0: a failed job settles as failed on its first attempt).
struct RetryPolicy {
  int max_retries = 0;      // saex.serve.maxRetries
  double backoff = 1.0;     // saex.serve.retryBackoff (base delay, seconds)
  double backoff_max = 30.0;  // saex.serve.retryBackoffMax (cap)
  double jitter = 0.5;      // saex.serve.retryJitter (fraction of the base)

  static RetryPolicy from_config(const conf::Config& config);

  /// Delay before re-enqueueing retry `attempt` (1-based: the first retry
  /// is attempt 1) of submission `submission_id`:
  ///
  ///   min(backoff_max, backoff * 2^(attempt-1)) * (1 + jitter * u)
  ///
  /// where u ~ U[0,1) is drawn from an Rng forked off `seed` by submission
  /// id and attempt — no shared stream, so concurrent retries of different
  /// jobs cannot perturb each other's delays.
  double delay(uint64_t seed, int submission_id, int attempt) const;
};

}  // namespace saex::resilience
