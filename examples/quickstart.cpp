// Quickstart: run Terasort on a simulated 4-node DAS-5-like cluster under
// the three executor policies the paper compares (default / static /
// dynamic) and print the per-stage reports.
//
//   ./examples/quickstart [seed]
//
// Expected outcome (paper §6.2): the default policy — 32 threads, one per
// virtual core — oversubscribes the HDDs; both tuned policies finish much
// faster, with per-stage thread counts settling near the disk's sweet spot.
#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace saex;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  for (const char* policy : {"default", "static", "dynamic"}) {
    hw::ClusterSpec spec = hw::ClusterSpec::das5(4);
    spec.seed = seed;
    hw::Cluster cluster(spec);

    conf::Config config;
    config.set("saex.executor.policy", policy);
    config.set_int("saex.static.ioThreads", 8);

    const workloads::WorkloadSpec terasort = workloads::terasort();
    const engine::JobReport report =
        workloads::run(terasort, cluster, config);

    std::printf("==== policy: %s ====\n%s\n", policy, report.render().c_str());
  }
  return 0;
}
