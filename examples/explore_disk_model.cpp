// Explore the storage-device model that drives everything: throughput and
// per-request latency of the HDD/SSD capacity curves under k concurrent
// streams, plus the effect of node heterogeneity.
//
//   ./examples/explore_disk_model
//
// Useful when adapting the simulator to your own hardware: pick base_bw /
// ncq / fragmentation parameters until this table matches an fio sweep of
// your device, and the engine-level behaviour follows.
#include <cstdio>
#include <functional>

#include "common/format.h"
#include "common/table.h"
#include "common/units.h"
#include "hw/cluster.h"
#include "hw/disk.h"
#include "sim/simulation.h"

using namespace saex;

namespace {

// Aggregate throughput of k closed-loop readers, measured in simulation.
double measure(const hw::DiskParams& params, int k, bool write) {
  sim::Simulation sim;
  hw::Disk disk(sim, params, "probe");
  const Bytes per_stream = mib(256);
  const Bytes chunk = mib(4);
  int done = 0;
  std::function<void(Bytes)> pump = [&](Bytes left) {
    if (left <= 0) {
      ++done;
      return;
    }
    disk.submit(chunk, write, [&pump, left, chunk] { pump(left - chunk); });
  };
  for (int s = 0; s < k; ++s) pump(per_stream);
  const double elapsed = sim.run();
  return static_cast<double>(per_stream) * k / elapsed;
}

}  // namespace

int main() {
  std::printf("device capacity curves (calibrated against the paper's "
              "Fig. 12 throughput series)\n\n");

  for (const bool ssd : {false, true}) {
    const hw::DiskParams params =
        ssd ? hw::DiskParams::ssd() : hw::DiskParams::hdd();
    sim::Simulation sim;
    hw::Disk disk(sim, params, "probe");

    std::printf("%s (base %s)\n", ssd ? "SSD" : "HDD",
                format_rate(params.base_bw).c_str());
    TextTable t({"streams", "C(k) model", "measured read", "measured write",
                 "per-request latency", "curve"});
    double peak = 0;
    for (int k : {1, 2, 4, 8, 16, 32, 64}) peak = std::max(peak, disk.capacity_at(k));
    for (const int k : {1, 2, 4, 8, 16, 32, 64}) {
      const double model = disk.capacity_at(k);
      const double read = measure(params, k, false);
      const double write = measure(params, k, true);
      const double latency =
          static_cast<double>(mib(4)) / (model / k);  // seconds per 4 MiB
      t.add_row({strfmt::format("{}", k), format_rate(model),
                 format_rate(read), format_rate(write),
                 strfmt::format("{:.1f} ms", latency * 1e3),
                 ascii_bar(model, peak, 26)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("heterogeneity: the same device at the speed factors a 44-node "
              "cluster draws (Fig. 3)\n");
  hw::ClusterSpec spec = hw::ClusterSpec::das5(8);
  hw::Cluster cluster(spec);
  for (int n = 0; n < cluster.size(); ++n) {
    const double f = cluster.node(n).disk_speed_factor();
    std::printf("  %s  factor %.3f  %s\n", cluster.node(n).hostname().c_str(),
                f, ascii_bar(f, 1.2, 30).c_str());
  }
  return 0;
}
