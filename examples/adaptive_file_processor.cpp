// The paper's contribution on REAL threads: a pool::DynamicThreadPool
// processes a directory of files while the MAPE-K AdaptiveController —
// the exact same controller the simulated executors use — senses live
// /proc counters and resizes the pool between "stages".
//
//   ./examples/adaptive_file_processor [work_dir] [files] [file_mib]
//
// A RealIoSensor adapts procmon samples to the controller's IoSample:
//   ε  <- cumulative iowait seconds from /proc/stat (the strace-epoll proxy)
//   µ  <- cumulative read+write bytes from /proc/self/io
// The PoolEffector is the thread pool itself. Watch the controller explore
// 2 -> 4 -> 8 ... and freeze after a rollback or at the bound; on a fast
// local disk (or page cache) the stage is CPU-bound and it climbs to c_max.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <vector>

#include "adaptive/controller.h"
#include "common/format.h"
#include "common/units.h"
#include "pool/dynamic_thread_pool.h"
#include "procmon/sampler.h"

namespace {

using namespace saex;

class RealIoSensor final : public adaptive::Sensor {
 public:
  adaptive::IoSample sample() override {
    const procmon::SystemSnapshot snap = sampler_.snapshot();
    adaptive::IoSample s;
    // iowait jiffies -> seconds (USER_HZ is 100 on virtually all systems).
    s.epoll_wait_seconds = static_cast<double>(snap.cpu.iowait) / 100.0;
    if (snap.self_io) {
      s.bytes_total = static_cast<Bytes>(snap.self_io->read_bytes +
                                         snap.self_io->write_bytes +
                                         snap.self_io->rchar / 16);
    }
    if (!snap.disks.empty()) {
      // Instantaneous utilization needs a delta; use the queue depth as a
      // cheap live proxy so the L3 guard has something to look at.
      double util = 0.0;
      for (const auto& [name, d] : snap.disks) {
        util = std::max(util, d.io_in_progress > 0 ? 0.9 : 0.1);
      }
      s.disk_utilization = util;
    }
    s.tasks_completed = completed_->load(std::memory_order_relaxed);
    return s;
  }

  void bind_completions(const std::atomic<uint64_t>* counter) {
    completed_ = counter;
  }

 private:
  procmon::Sampler sampler_;
  const std::atomic<uint64_t>* completed_ = nullptr;
};

class PoolAdapter final : public adaptive::PoolEffector {
 public:
  explicit PoolAdapter(pool::DynamicThreadPool& pool) : pool_(&pool) {}
  void set_pool_size(int threads) override { pool_->set_pool_size(threads); }
  int pool_size() const override { return pool_->pool_size(); }

 private:
  pool::DynamicThreadPool* pool_;
};

uint64_t checksum_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  uint64_t h = 1469598103934665603ull;
  std::vector<char> buf(1 << 16);
  while (in.read(buf.data(), static_cast<std::streamsize>(buf.size())) ||
         in.gcount() > 0) {
    for (std::streamsize i = 0; i < in.gcount(); ++i) {
      h ^= static_cast<unsigned char>(buf[static_cast<size_t>(i)]);
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const fs::path dir = argc > 1 ? argv[1] : "/tmp/saex-demo";
  const int num_files = argc > 2 ? std::atoi(argv[2]) : 48;
  const int file_mib = argc > 3 ? std::atoi(argv[3]) : 4;

  std::printf("preparing %d files of %d MiB under %s ...\n", num_files,
              file_mib, dir.c_str());
  fs::create_directories(dir);
  std::vector<fs::path> files;
  for (int i = 0; i < num_files; ++i) {
    const fs::path p = dir / strfmt::format("part-{:05}", i);
    if (!fs::exists(p) || fs::file_size(p) != static_cast<uintmax_t>(file_mib) * kMiB) {
      std::ofstream out(p, std::ios::binary);
      std::vector<char> block(static_cast<size_t>(kMiB), 'x');
      for (int m = 0; m < file_mib; ++m) {
        block[0] = static_cast<char>(i + m);
        out.write(block.data(), static_cast<std::streamsize>(block.size()));
      }
    }
    files.push_back(p);
  }

  pool::DynamicThreadPool pool(2);
  PoolAdapter effector(pool);
  RealIoSensor sensor;
  std::atomic<uint64_t> completed{0};
  sensor.bind_completions(&completed);

  adaptive::ControllerConfig config;
  config.min_threads = 2;
  config.max_threads =
      std::max(8, static_cast<int>(std::thread::hardware_concurrency()));
  adaptive::AdaptiveController controller(
      config, sensor, effector, [](int threads) {
        std::printf("  [notify] scheduler told the pool is now %d threads\n",
                    threads);
      });

  // The controller is single-threaded by design (in Spark it runs on the
  // executor's event loop); worker threads funnel completions through a lock.
  std::mutex controller_mutex;
  auto wall = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  std::printf("stage 'checksum-all-files' starting (c_min=%d, c_max=%d)\n",
              config.min_threads, config.max_threads);
  const double t0 = wall();
  controller.on_stage_start(/*stage_key=*/1, t0);

  std::atomic<uint64_t> total_hash{0};
  for (const fs::path& p : files) {
    pool.submit([&, p] {
      total_hash.fetch_xor(checksum_file(p), std::memory_order_relaxed);
      completed.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard lock(controller_mutex);
      controller.on_task_complete(wall());
    });
  }
  pool.wait_idle();
  controller.on_stage_end(wall());

  std::printf("done in %.2fs; checksum %016llx; pool settled at %d threads\n",
              wall() - t0, static_cast<unsigned long long>(total_hash.load()),
              pool.pool_size());

  const auto* record = controller.knowledge().stage(1);
  if (record != nullptr) {
    std::printf("\ncontroller intervals (MAPE-K knowledge base):\n");
    for (const auto& iv : record->intervals) {
      std::printf("  j=%2d  %5.2fs  eps=%7.3fs  mu=%9s  zeta=%.3g\n",
                  iv.threads, iv.duration(), iv.epoll_wait,
                  format_rate(iv.throughput()).c_str(),
                  iv.congestion_index());
    }
    std::printf("  settled=%d rolled_back=%s reached_bound=%s\n",
                record->settled_threads, record->rolled_back ? "yes" : "no",
                record->reached_bound ? "yes" : "no");
  }
  return 0;
}
