// Building your own workload against the public engine API: a clickstream
// sessionization pipeline (scan + filter + join + aggregate + save), run
// under the three executor policies.
//
//   ./examples/custom_workload [events_gib] [profiles_gib]
//
// This is what a downstream user does to evaluate whether self-adaptive
// executors would help their job: describe the pipeline's per-operator cost
// model (CPU per MiB, size ratios, shuffle traits), then compare policies
// on a cluster model matching their hardware.
#include <cstdio>
#include <cstdlib>

#include "engine/context.h"

using namespace saex;

namespace {

engine::JobReport run_pipeline(const char* policy, double events_gib,
                               double profiles_gib) {
  hw::Cluster cluster(hw::ClusterSpec::das5(4));
  conf::Config config;
  config.set("saex.executor.policy", policy);
  config.set_int("saex.static.ioThreads", 8);
  engine::SparkContext ctx(cluster, std::move(config));

  auto& dfs = ctx.dfs();
  dfs.load_input("/clicks/events", gib(events_gib), 4, mib(32));
  dfs.load_input("/clicks/profiles", gib(profiles_gib), 4, mib(32));

  // Parse raw click events: JSON decoding is expensive, and bots are
  // filtered out early.
  const engine::Rdd events = ctx.text_file("/clicks/events")
                                 .map("parseJson", {0.30, 0.8})
                                 .filter("dropBots", 0.7, 0.05);

  // User profiles: a smaller dimension table.
  const engine::Rdd profiles =
      ctx.text_file("/clicks/profiles").map("parseProfiles", {0.25, 1.0});

  // Sessionize: join events with profiles, group into sessions, write the
  // session table. The grouping is a hash aggregation -> it spills.
  const engine::Rdd sessions =
      events
          .join(profiles, "joinProfiles", {0.10, 1.0}, 1.0, 0,
                engine::ShuffleTraits{0.5, 1.6})
          .reduce_by_key("sessionize", {0.08, 1.0}, 0.9, 0,
                         engine::ShuffleTraits{0.6, 1.8})
          .map("formatSessions", {0.04, 0.9})
          .save_as_text_file("/clicks/sessions", 2);

  return ctx.run_job(sessions, "sessionize");
}

}  // namespace

int main(int argc, char** argv) {
  const double events_gib = argc > 1 ? std::atof(argv[1]) : 12.0;
  const double profiles_gib = argc > 2 ? std::atof(argv[2]) : 2.0;

  std::printf("clickstream sessionization: %.1f GiB events + %.1f GiB "
              "profiles on a 4-node cluster\n\n",
              events_gib, profiles_gib);

  double default_runtime = 0.0;
  for (const char* policy : {"default", "static", "dynamic"}) {
    const engine::JobReport report =
        run_pipeline(policy, events_gib, profiles_gib);
    if (default_runtime == 0.0) default_runtime = report.total_runtime;
    std::printf("%s\n", report.render().c_str());
    std::printf("=> %s: %s (%.1f%% vs default)\n\n", policy,
                format_duration(report.total_runtime).c_str(),
                100.0 * (default_runtime - report.total_runtime) /
                    default_runtime);
  }
  std::printf(
      "Reading the reports: stages whose disk%% is high and cpu%% low are\n"
      "contention-prone; the dynamic policy trims their thread counts, while\n"
      "CPU-heavy scan stages stay at the default.\n");
  return 0;
}
