// cache_policies — storage-layer sweep: eviction policy x memory budget on
// an iterative cached workload (workloads::cache_churn: several cached RDDs
// contending for the per-node budget, then skewed re-read rounds).
//
// For every (policy, budget) cell the bench reports the storage hit rate,
// eviction/spill volume, and the application makespan in simulated seconds —
// the end-to-end cost of each policy's victim choices (a miss is a disk read
// or, with spillOnEvict=false, a lineage recompute). Two invariants are
// asserted every run:
//
//   determinism — the same (seed, policy, budget) cell run twice produces
//                 bitwise-identical JobReports
//   unbounded   — with a budget nothing overflows, every policy reproduces
//                 policy "none" (the pre-BlockManager goldens) byte for byte
//
// `--json BENCH_storage.json` emits the machine-readable record guarded by
// tools/check_bench.py (events/sec trajectory, like the other perf benches).
//
// Usage: cache_policies [--smoke] [--json <path>]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "storage/eviction.h"

namespace {

using namespace saexbench;
using Clock = std::chrono::steady_clock;

struct CellResult {
  std::string name;
  double wall_seconds = 0.0;   // real time
  uint64_t events = 0;         // simulation events processed
  double makespan = 0.0;       // simulated seconds, all jobs back to back
  double hit_rate = 1.0;
  int64_t evictions = 0;
  Bytes spilled = 0;
  std::string renders;         // concatenated JobReports (determinism guard)
};

workloads::WorkloadSpec churn_spec(bool smoke) {
  // Full: 6 x 1 GiB cached RDDs, 4 read rounds. Smoke: 4 x 512 MiB, 3
  // rounds — same contention shape, sized so fixed per-job costs amortize
  // comparably to the full run (check_bench compares events/sec).
  return smoke ? workloads::cache_churn(mib(512), 4, 3)
               : workloads::cache_churn(gib(1), 6, 4);
}

CellResult run_cell(const std::string& name, const std::string& policy,
                    Bytes budget_per_node, bool smoke) {
  const auto t0 = Clock::now();

  hw::ClusterSpec cs = hw::ClusterSpec::das5(4);
  cs.seed = 42;
  hw::Cluster cluster(cs);
  conf::Config config;
  config.set_int("spark.default.parallelism", 64);
  config.set("saex.storage.policy", policy);
  config.set("saex.storage.memory", strfmt::format("{}", budget_per_node));
  engine::SparkContext ctx(cluster, std::move(config));

  const workloads::WorkloadSpec spec = churn_spec(smoke);
  CellResult r;
  r.name = name;
  for (const engine::Rdd& action : spec.build(ctx)) {
    const engine::JobReport report = ctx.run_job(action, spec.name);
    r.events = report.events_processed;  // cumulative simulation counter
    r.renders += report.render();
    r.renders += "\n";
  }
  r.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.makespan = cluster.sim().now();
  r.hit_rate = ctx.storage().hit_rate();
  r.evictions = ctx.storage().total_evictions();
  r.spilled = ctx.storage().total_evicted_spill_bytes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::string json_path = json_path_arg(argc, argv);

  print_title("cache_policies",
              "eviction policy x memory budget sweep on an iterative cached "
              "workload (hit rate + makespan per cell)",
              "bounded budgets: higher hit rate tracks lower makespan; "
              "unbounded budget: every policy == policy none, bitwise");

  const workloads::WorkloadSpec probe = churn_spec(smoke);
  // Per-node bytes the workload wants cached; budgets are slices of it.
  const Bytes cached_per_node = probe.input_size / 4;
  struct BudgetTag {
    const char* tag;
    Bytes bytes;
  };
  const std::vector<BudgetTag> budgets = {
      {"25", cached_per_node / 4},
      {"50", cached_per_node / 2},
      {"inf", gib(1024)},
  };

  BenchJson out;
  std::printf("%-20s %10s %9s %10s %11s %12s\n", "scenario", "budget",
              "hit rate", "evictions", "spilled", "makespan");
  std::vector<CellResult> inf_cells;
  double sweep_wall = 0.0;
  uint64_t sweep_events = 0;
  int rc = 0;
  for (const std::string& policy : storage::eviction_policy_names()) {
    for (const BudgetTag& b : budgets) {
      const std::string name = strfmt::format("cache_{}_{}", policy, b.tag);
      const CellResult r = run_cell(name, policy, b.bytes, smoke);
      sweep_wall += r.wall_seconds;
      sweep_events += r.events;
      std::printf("%-20s %10s %8.1f%% %10lld %11s %10.1fs\n", r.name.c_str(),
                  format_bytes(b.bytes).c_str(), r.hit_rate * 100.0,
                  static_cast<long long>(r.evictions),
                  format_bytes(r.spilled).c_str(), r.makespan);
      if (std::string(b.tag) == "inf") inf_cells.push_back(r);
    }
  }
  // One aggregate perf row: the individual cells are milliseconds each, too
  // small for a stable events/sec trajectory on their own.
  out.record("cache_sweep", sweep_wall, sweep_events);

  // Guard 1: unbounded budget reproduces policy "none" for every policy.
  for (const CellResult& r : inf_cells) {
    if (r.renders != inf_cells.front().renders) {
      std::fprintf(stderr,
                   "FAIL: %s diverges from %s under an unbounded budget\n",
                   r.name.c_str(), inf_cells.front().name.c_str());
      rc = 1;
    }
  }
  std::printf("unbounded-budget guard: %s\n",
              rc == 0 ? "all policies reproduce policy none bitwise" : "FAIL");

  // Guard 2: a bounded cell re-run is bitwise deterministic.
  const CellResult d1 = run_cell("det", "lru", budgets[0].bytes, smoke);
  const CellResult d2 = run_cell("det", "lru", budgets[0].bytes, smoke);
  if (d1.renders != d2.renders || d1.evictions != d2.evictions) {
    std::fprintf(stderr, "FAIL: lru/25%% cell is not deterministic\n");
    rc = 1;
  }
  std::printf("determinism guard: %s\n",
              rc == 0 ? "repeat run bitwise identical" : "FAIL");

  if (!json_path.empty()) {
    const bool ok = out.write("cache_policies", json_path);
    std::printf("%s %s\n", ok ? "wrote" : "FAILED to write", json_path.c_str());
    if (!ok) return 1;
  }
  return rc;
}
