// Fault recovery bench (extension beyond the paper's figures):
//
//   (a) speculative execution vs a 1-slow-node straggler on Terasort —
//       first-result-wins copies must cut the makespan by >= 25%,
//   (b) executor-kill recovery — same seed, same kill, run twice under each
//       executor policy (default / static / dynamic): the event streams must
//       be bitwise identical and every policy must finish the job,
//   (c) under the same kill, the paper's dynamic self-adaptive policy must
//       beat Spark's default thread configuration.
//
// Exit code is non-zero if any criterion fails. `--smoke` shrinks the inputs
// for CI; `--json <path>` emits the machine-readable (name, wall seconds,
// events, events/sec) record guarded by tools/check_bench.py.
#include <chrono>
#include <cstring>

#include "bench_common.h"

namespace {

using namespace saexbench;

bool g_smoke = false;
int g_failures = 0;
BenchJson g_json;

using Clock = std::chrono::steady_clock;

void check(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

struct AppResult {
  double runtime = 0.0;   // simulated seconds
  double wall = 0.0;      // host seconds
  uint64_t processed = 0; // simulation events processed
  bool failed = false;
  std::string events;  // full event log, one JSON object per line
};

// Mirrors workloads::run() but keeps the context so the event log (the
// determinism witness) survives the run.
AppResult run_app(const workloads::WorkloadSpec& spec,
                  const std::map<std::string, std::string>& overrides) {
  hw::ClusterSpec cs = hw::ClusterSpec::das5(4);
  cs.slow_disk_prob = 0.0;  // stragglers come from injection only
  hw::Cluster cluster(cs);

  conf::Config config;
  // nodes x 32 as on the testbed: the thread-policy comparison needs real
  // per-node I/O contention, which lower parallelism would hide.
  config.set_int("spark.default.parallelism", 128);
  for (const auto& [k, v] : overrides) config.set(k, v);

  engine::SparkContext ctx(cluster, std::move(config));
  AppResult out;
  const auto t0 = Clock::now();
  try {
    for (const engine::Rdd& action : spec.build(ctx)) {
      const engine::JobReport report = ctx.run_job(action, spec.name);
      out.runtime += report.total_runtime;
      out.processed += report.events_processed;
    }
  } catch (const engine::StageAbortedError& e) {
    std::printf("  job failed: %s\n", e.what());
    out.failed = true;
  }
  out.wall = std::chrono::duration<double>(Clock::now() - t0).count();
  out.events = ctx.event_log().to_json_lines();
  return out;
}

workloads::WorkloadSpec app() {
  return workloads::terasort(g_smoke ? gib(4) : gib(32));
}

void bench_speculation() {
  std::printf("\n-- speculation vs a 1-slow-node straggler (Terasort) --\n");
  const std::map<std::string, std::string> straggler = {
      {"saex.fault.enabled", "true"},
      {"saex.fault.slowNode", "1"},
      {"saex.fault.slowFactor", "0.15"},
      {"saex.fault.slowTime", "0"},
  };
  auto with_speculation = straggler;
  with_speculation["spark.speculation"] = "true";
  with_speculation["spark.speculation.multiplier"] = "1.3";
  with_speculation["spark.speculation.quantile"] = "0.6";

  const AppResult off = run_app(app(), straggler);
  const AppResult on = run_app(app(), with_speculation);
  g_json.record("fault_straggler", off.wall, off.processed);
  g_json.record("fault_straggler_spec", on.wall, on.processed);
  const double gain = 100.0 * (off.runtime - on.runtime) / off.runtime;

  TextTable t({"speculation", "makespan", "vs off"});
  t.add_row({"off", format_duration(off.runtime), "-"});
  t.add_row({"on", format_duration(on.runtime),
             strfmt::format("-{:.1f}%", gain)});
  std::printf("%s", t.render().c_str());
  check(!off.failed && !on.failed, "straggler runs finish");
  check(gain >= 25.0,
        strfmt::format("speculation cuts the straggler makespan by >=25% "
                       "(measured {:.1f}%)",
                       gain));
}

void bench_kill_recovery() {
  std::printf("\n-- executor-kill recovery: determinism per policy --\n");
  const std::map<std::string, std::string> kill = {
      {"saex.fault.enabled", "true"},
      {"saex.fault.killNode", "2"},
      {"saex.fault.killAfterTasks", g_smoke ? "20" : "80"},
  };

  TextTable t({"policy", "makespan", "replay"});
  std::map<std::string, double> runtime;
  for (const std::string policy : {"default", "static", "dynamic"}) {
    auto overrides = kill;
    overrides["saex.executor.policy"] = policy;
    const AppResult a = run_app(app(), overrides);
    const AppResult b = run_app(app(), overrides);
    g_json.record("fault_kill_" + policy, a.wall, a.processed);
    const bool identical = !a.failed && !b.failed && a.runtime == b.runtime &&
                           a.events == b.events;
    runtime[policy] = a.runtime;
    t.add_row({policy, format_duration(a.runtime),
               identical ? "bitwise identical" : "DIVERGED"});
    check(!a.failed, policy + ": job survives the executor kill");
    check(identical, policy + ": kill replay is bitwise deterministic");
  }
  std::printf("%s", t.render().c_str());

  check(runtime["dynamic"] < runtime["default"],
        strfmt::format("dynamic beats default under the kill ({} vs {})",
                       format_duration(runtime["dynamic"]),
                       format_duration(runtime["default"])));
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = has_flag(argc, argv, "--smoke");
  const std::string json_path = json_path_arg(argc, argv);

  print_title("Fault recovery",
              "speculation vs stragglers; lineage recovery after an executor "
              "kill",
              "speculation gains >=25% on a 1-slow-node Terasort; kill "
              "recovery is bitwise seed-stable under default/static/dynamic; "
              "dynamic beats default under faults");
  if (g_smoke) std::printf("(smoke inputs)\n");

  bench_speculation();
  bench_kill_recovery();

  int rc = g_failures == 0 ? 0 : 1;
  if (!json_path.empty()) {
    const bool ok = g_json.write("fault_recovery", json_path);
    std::printf("%s %s\n", ok ? "wrote" : "FAILED to write", json_path.c_str());
    if (!ok) rc = 1;
  }
  std::printf("\n%d criterion failure(s)\n", g_failures);
  return rc;
}
