// serve_shard — sharded serve-path throughput bench over `serve_trace_xl`,
// a heavy-tailed (Pareto-arrival) multi-tenant trace at driver-breaking
// scale: 10'000 nodes and 100'000 jobs in full mode (256 nodes / 2'000 jobs
// for --smoke). `--json BENCH_serve.json` emits the machine-readable record
// guarded by tools/check_bench.py in CI (see docs/PERFORMANCE.md and
// docs/SCALING.md).
//
// Scenarios:
//   serve_xl_serial  the whole trace on ONE driver/scheduler/event kernel
//                    (--shards 1): every per-event cost scales with the full
//                    cluster (offer walks, executor refresh, pool sorts)
//   serve_xl_shard4  the same trace routed across 4 shards advanced by 4
//                    workers (--shards 4 --workers 4): each kernel pays
//                    quarter-cluster constants, and kernels advance
//                    concurrently
//
// Determinism is asserted in-bench, not just in ctest: the 4-shard merged
// report must be bitwise-identical between 4 workers and 1 worker. Full mode
// additionally enforces the scaling acceptance bar: serve_xl_shard4 must
// reach >= 3x serve_xl_serial events/s.
//
// Usage: serve_shard [--smoke] [--json <path>]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "shard/sharded_server.h"

namespace {

using namespace saexbench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

serve::TraceOptions xl_trace(bool smoke) {
  serve::TraceOptions t;
  t.num_jobs = smoke ? 2'000 : 100'000;
  // Heavy-tailed gaps: long quiet spells and dense arrival storms, scaled so
  // the server stays saturated for the whole run.
  t.arrival = "pareto";
  t.pareto_shape = 1.5;
  t.mean_interarrival = smoke ? 0.05 : 0.01;
  t.num_clients = 64;
  t.seed = 42;
  t.small_input = mib(64);
  t.big_input = mib(128);
  t.dim_input = mib(32);
  return t;
}

int xl_nodes(bool smoke) { return smoke ? 256 : 10'000; }

conf::Config xl_config(bool smoke, int shards, int workers) {
  conf::Config c;
  c.set_int("spark.default.parallelism", smoke ? 64 : 128);
  c.set("saex.scheduler.mode", "FAIR");
  c.set("saex.scheduler.pools", "interactive:3:16,batch:1:0");
  c.set_int("saex.serve.maxConcurrentJobs", 64);
  c.set_int("saex.serve.maxQueuedJobs", 1 << 20);
  c.set_int("saex.shard.count", shards);
  c.set_int("saex.shard.workers", workers);
  c.set("saex.shard.placement", "least");
  // 100k jobs × several task events each is tens of GB of live event log;
  // nothing exports it here.
  c.set_bool("saex.eventLog.enabled", false);
  return c;
}

struct XlRun {
  double wall = 0.0;
  uint64_t events = 0;
  int finished = 0;
  std::string merged;  // merged report bytes (determinism witness)
};

XlRun run_xl(bool smoke, int shards, int workers) {
  const serve::TraceOptions t = xl_trace(smoke);
  hw::ClusterSpec cs = hw::ClusterSpec::das5(xl_nodes(smoke));
  cs.seed = t.seed;

  shard::ShardedServer server(cs, xl_config(smoke, shards, workers));
  const auto t0 = Clock::now();
  const shard::ShardedServeReport report =
      server.replay(serve::make_trace(t), t);

  XlRun run;
  run.wall = seconds_since(t0);
  run.events = report.events;
  run.finished = report.merged.finished;
  run.merged = report.merged.render() + "\n" + report.render_jobs();
  return run;
}

void report_row(BenchJson& out, const std::string& name, const XlRun& run) {
  out.record(name, run.wall, run.events);
  std::printf("%-16s %10.3fs  %12llu events  %12.0f events/s\n", name.c_str(),
              run.wall, static_cast<unsigned long long>(run.events),
              run.wall > 0 ? static_cast<double>(run.events) / run.wall : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::string json_path = json_path_arg(argc, argv);
  const int jobs = xl_trace(smoke).num_jobs;

  print_title("serve_shard",
              "sharded serve path on the heavy-tailed serve_trace_xl trace "
              "(router + per-shard kernels + time-window runner)",
              "4-shard merged report bitwise-identical across worker counts; "
              "full mode: serve_xl_shard4 >= 3x serve_xl_serial WALL speedup");

  BenchJson out;
  const XlRun serial = run_xl(smoke, /*shards=*/1, /*workers=*/1);
  report_row(out, "serve_xl_serial", serial);
  const XlRun shard4 = run_xl(smoke, /*shards=*/4, /*workers=*/4);
  report_row(out, "serve_xl_shard4", shard4);

  int rc = 0;
  if (serial.finished != jobs || shard4.finished != jobs) {
    std::printf("FAIL: not all jobs finished (serial %d, shard4 %d, want %d)\n",
                serial.finished, shard4.finished, jobs);
    rc = 1;
  }

  // Determinism witness: the merged report is a pure function of the
  // scenario (trace, shard count, seed) — the worker count must not leak in.
  const XlRun shard4_w1 = run_xl(smoke, /*shards=*/4, /*workers=*/1);
  if (shard4.merged != shard4_w1.merged) {
    std::printf("FAIL: 4-shard merged report differs between 4 workers and "
                "1 worker\n");
    rc = 1;
  } else {
    std::printf("determinism: 4-shard merged report identical for 4 and 1 "
                "workers (%zu bytes)\n", shard4.merged.size());
  }

  // The two scenarios do NOT process the same event total: each shard kernel
  // advances only its quarter of the cluster, so shard4's per-event work is
  // cheaper AND its event count is smaller than serial's. events/s therefore
  // understates the shard win; the honest scaling number is the wall-clock
  // ratio on the identical trace. Both are recorded; the >=3x CI bar guards
  // wall_speedup_vs_serial (see tools/check_bench.py guards).
  const double serial_eps =
      serial.wall > 0 ? static_cast<double>(serial.events) / serial.wall : 0;
  const double shard4_eps =
      shard4.wall > 0 ? static_cast<double>(shard4.events) / shard4.wall : 0;
  const double eps_ratio = serial_eps > 0 ? shard4_eps / serial_eps : 0;
  const double wall_speedup = shard4.wall > 0 ? serial.wall / shard4.wall : 0;
  out.set_metric("serve_xl_shard4", "wall_speedup_vs_serial", wall_speedup);
  std::printf("scaling: serve_xl_shard4 wall speedup %.2fx over "
              "serve_xl_serial (same trace; this is the guarded metric)\n",
              wall_speedup);
  std::printf("         events/s ratio %.2fx — NOT comparable (serial "
              "processed %llu events, shard4 %llu)\n",
              eps_ratio, static_cast<unsigned long long>(serial.events),
              static_cast<unsigned long long>(shard4.events));
  if (!smoke) {
    out.guard_min_value("wall_speedup_vs_serial", "serve_xl_shard4", 3.0);
    if (wall_speedup < 3.0) {
      std::printf("FAIL: full-mode scaling bar is 3.0x wall speedup\n");
      rc = 1;
    }
  }

  if (!json_path.empty()) {
    const bool ok = out.write("serve_shard", json_path);
    std::printf("%s %s\n", ok ? "wrote" : "FAILED to write", json_path.c_str());
    if (!ok) rc = 1;
  }
  return rc;
}
