// engine_perf — engine-layer hot-path throughput bench. Tracks the perf
// trajectory of the driver-side machinery that sits above the event kernel:
// `--json BENCH_engine.json` emits the machine-readable record future PRs
// extend (see docs/PERFORMANCE.md).
//
// Scenarios:
//   sched_churn     task-lifecycle churn: hundreds of small concurrent jobs
//                   through SparkContext::submit_job on one shared
//                   TaskScheduler — offer loop, pending-list maintenance,
//                   task-set create/erase, metric-handle increments
//   metrics_storm   counter/gauge increment storm through pre-resolved
//                   handles on a populated registry (the serve path's
//                   per-event rollup pattern)
//   serve_trace     64-node cluster replaying a 1000-job multi-tenant trace
//                   through the JobServer (FAIR pools + admission control),
//                   the scale where scheduler/metrics bookkeeping dominates
//
// Events: sched_churn and serve_trace report simulation events processed;
// metrics_storm reports handle operations.
//
// Usage: engine_perf [--smoke] [--json <path>]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/registry.h"
#include "serve/job_server.h"

namespace {

using namespace saexbench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void report_row(BenchJson& out, const std::string& name, double wall,
                uint64_t events) {
  out.record(name, wall, events);
  std::printf("%-14s %10.3fs  %12llu events  %12.0f events/s\n", name.c_str(),
              wall, static_cast<unsigned long long>(events),
              wall > 0 ? static_cast<double>(events) / wall : 0.0);
}

// Many tiny concurrent jobs over one shared input: every job is one 32-task
// scan stage, so the run is dominated by task-set bookkeeping (submit,
// offer, dispatch, status update, erase), not by simulated I/O.
void bench_sched_churn(bool smoke, BenchJson& out) {
  const int num_jobs = smoke ? 60 : 600;

  hw::ClusterSpec cs = hw::ClusterSpec::das5(8);
  cs.seed = 42;
  hw::Cluster cluster(cs);
  conf::Config config;
  config.set_int("spark.default.parallelism", 32);
  engine::SparkContext ctx(cluster, std::move(config));
  // 32 x 8 MiB blocks -> 32 tasks per job.
  ctx.dfs().load_input("/churn/in", mib(256), 3, mib(8));

  int done = 0;
  for (int j = 0; j < num_jobs; ++j) {
    const engine::Rdd job = ctx.text_file("/churn/in")
                                .filter("probe", 0.01)
                                .collect();
    ctx.submit_job(job, strfmt::format("churn{}", j), "default",
                   [&done](engine::JobReport) { ++done; });
  }
  const auto t0 = Clock::now();
  cluster.sim().run();
  report_row(out, "sched_churn", seconds_since(t0), cluster.sim().processed());
  if (done != num_jobs) {
    std::printf("sched_churn: only %d/%d jobs completed\n", done, num_jobs);
  }
}

// The serve path's rollup pattern: a registry already holding a few hundred
// names, hammered through pre-resolved handles. Measures the steady-state
// cost the handle API was introduced to reach (no string hashing or map
// walks per increment).
void bench_metrics_storm(bool smoke, BenchJson& out) {
  const uint64_t ops = smoke ? 2'000'000 : 50'000'000;

  metrics::Registry reg;
  // Populate with a realistic name set so handle resolution happens against
  // a non-trivial registry (64 pools x 3 rollups + assorted engine names).
  std::vector<metrics::CounterHandle> counters;
  std::vector<metrics::GaugeHandle> gauges;
  for (int p = 0; p < 64; ++p) {
    counters.push_back(
        reg.counter_handle(strfmt::format("serve/pool/{}/jobs", p)));
    counters.push_back(
        reg.counter_handle(strfmt::format("serve/pool/{}/slot_seconds", p)));
    counters.push_back(
        reg.counter_handle(strfmt::format("serve/pool/{}/queue_wait", p)));
    gauges.push_back(reg.gauge_handle(strfmt::format("serve/pool/{}/depth", p)));
  }
  const auto t0 = Clock::now();
  const size_t nc = counters.size();
  const size_t ng = gauges.size();
  for (uint64_t i = 0; i < ops; ++i) {
    counters[i % nc].increment();
    if ((i & 15) == 0) gauges[i % ng].set(static_cast<double>(i & 255));
  }
  const double wall = seconds_since(t0);
  report_row(out, "metrics_storm", wall, ops);
  // Keep the totals observable so the loop cannot be optimized away.
  double sum = 0;
  for (const auto& h : counters) sum += static_cast<double>(h.value());
  if (sum != static_cast<double>(ops)) {
    std::printf("metrics_storm: unexpected counter sum %.0f (want %llu)\n",
                sum, static_cast<unsigned long long>(ops));
  }
}

// A 64-node cluster replaying a bursty 1000-job trace (smoke: 8 nodes, 100
// jobs): the multi-tenant configuration where the scheduler's offer loop,
// FAIR pool sort, and per-pool metric rollups run at their highest rates.
void bench_serve_trace(bool smoke, BenchJson& out) {
  serve::TraceOptions t;
  t.num_jobs = smoke ? 100 : 1000;
  t.mean_interarrival = smoke ? 1.0 : 0.25;
  t.num_clients = 8;
  t.seed = 42;
  t.small_input = mib(256);
  t.big_input = gib(1.0);
  t.dim_input = mib(128);

  hw::ClusterSpec cs = hw::ClusterSpec::das5(smoke ? 8 : 64);
  cs.seed = t.seed;
  hw::Cluster cluster(cs);

  conf::Config config;
  config.set_int("spark.default.parallelism", 64);
  config.set("saex.scheduler.mode", "FAIR");
  config.set("saex.scheduler.pools", "interactive:3:16,batch:1:0");
  config.set_int("saex.serve.maxConcurrentJobs", 32);
  config.set_int("saex.serve.maxQueuedJobs", 1024);

  engine::SparkContext ctx(cluster, std::move(config));
  serve::JobServer server(ctx);
  const auto t0 = Clock::now();
  const serve::ServeReport report = server.replay(serve::make_trace(t), t);
  const double wall = seconds_since(t0);
  report_row(out, "serve_trace", wall, cluster.sim().processed());
  if (report.finished != t.num_jobs) {
    std::printf("serve_trace: %d/%d jobs finished (%d rejected, %d failed)\n",
                report.finished, t.num_jobs,
                report.rejected_queue_full + report.rejected_client_quota,
                report.failed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::string json_path = json_path_arg(argc, argv);

  print_title("engine_perf",
              "engine-layer throughput (task-lifecycle churn, metrics storm, "
              "64-node serve trace)",
              "events/sec must not regress vs the recorded BENCH_engine.json "
              "trajectory");

  BenchJson out;
  bench_sched_churn(smoke, out);
  bench_metrics_storm(smoke, out);
  bench_serve_trace(smoke, out);

  if (!json_path.empty()) {
    const bool ok = out.write("engine_perf", json_path);
    std::printf("%s %s\n", ok ? "wrote" : "FAILED to write", json_path.c_str());
    if (!ok) return 1;
  }
  return 0;
}
