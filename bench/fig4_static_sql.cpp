// Figure 4: the static solution on the SQL applications (Aggregation, Join)
// — the workloads where reduced thread counts only hurt (limitation L3).
#include "bench_common.h"

int main() {
  using namespace saexbench;

  print_title(
      "Figure 4", "static solution on SQL applications (Aggregation, Join)",
      "monotone: every reduced thread count is worse than the default, and "
      "2 threads is drastically worse (paper Fig. 4: default best for both; "
      "2 threads ≈ 2.3x default for Aggregation, ≈ 4.5x for Join)");

  for (const auto& spec : {workloads::aggregation(), workloads::join()}) {
    auto sweep = static_sweep(spec);
    const double def = sweep.at(32).total_runtime;
    std::printf("\n%s\n", spec.name.c_str());
    TextTable t({"threads (I/O stages)", "runtime", "vs default", "bar"});
    double prev = 0.0;
    bool monotone = true;
    for (const int threads : {32, 16, 8, 4, 2}) {
      const double rt = sweep.at(threads).total_runtime;
      if (rt + 1e-9 < prev) monotone = false;
      prev = rt;
      t.add_row({threads == 32 ? "32 (default)" : strfmt::format("{}", threads),
                 format_duration(rt), percent_delta(def, rt),
                 ascii_bar(rt, sweep.at(2).total_runtime, 36)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("shape (default best, worsening monotonically): %s\n",
                monotone ? "OK" : "VIOLATED");
  }
  return 0;
}
