// Figure 10: the static solution on HDDs vs SSDs (Terasort).
//
// SSDs sustain full random access at uniform latency, so they tolerate far
// more concurrent streams: the read stage is best at the default thread
// count, the shuffle-write stage prefers a mildly reduced count (erase-
// before-write overhead), and the overall static gains shrink from ~47% to
// ~20%.
#include "bench_common.h"

int main() {
  using namespace saexbench;

  print_title(
      "Figure 10", "static solution on Terasort: HDD vs SSD",
      "HDD: deep U-shape, intermediate count wins by ~40-50%. SSD: curve "
      "nearly flat, best gain much smaller (paper 20.2%), stage-0 best at "
      "the default count");

  for (const bool ssd : {false, true}) {
    RunOptions base;
    base.ssd = ssd;
    auto sweep = static_sweep(workloads::terasort(), base);
    const double def = sweep.at(32).total_runtime;
    double best = def;
    int best_threads = 32;
    std::printf("\n%s\n", ssd ? "SSD" : "HDD");
    TextTable t({"threads (I/O stages)", "runtime", "vs default",
                 "stage times"});
    for (const int threads : {32, 16, 8, 4, 2}) {
      const auto& r = sweep.at(threads);
      if (r.total_runtime < best) {
        best = r.total_runtime;
        best_threads = threads;
      }
      std::string stage_times;
      for (const auto& s : r.stages) {
        stage_times += format_duration(s.duration()) + " ";
      }
      t.add_row({threads == 32 ? "32 (default)" : strfmt::format("{}", threads),
                 format_duration(r.total_runtime),
                 percent_delta(def, r.total_runtime), stage_times});
    }
    std::printf("%s", t.render().c_str());

    // Per-stage best (the paper reports HDD 4/8/8 vs SSD 32/16/8).
    const auto bf = best_fit_from_sweep(sweep);
    std::string bf_str;
    for (const auto& [ordinal, threads] : bf) {
      bf_str += strfmt::format("s{}={} ", ordinal, threads);
    }
    std::printf("per-stage best: %s   best uniform: %d (-%s)\n", bf_str.c_str(),
                best_threads,
                percent_delta(def, best).c_str());
  }
  std::printf(
      "\npaper: HDD bestfit (4,8,8) -47.5%%; SSD bestfit (32,16,8) -20.2%%\n");
  return 0;
}
