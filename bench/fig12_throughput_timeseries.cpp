// Figure 12: I/O throughput over time for Terasort stages 0 and 1, per
// static thread count, on HDD and SSD (executor 0's per-second series).
#include "bench_common.h"

int main() {
  using namespace saexbench;

  print_title(
      "Figure 12", "I/O throughput time series (Terasort stages 0-1, HDD/SSD)",
      "HDD: mean throughput varies strongly across thread counts (peak at "
      "4-8, default lowest); SSD: curves nearly uniform across counts and "
      "higher in absolute terms");

  const auto spec = workloads::terasort();

  for (const bool ssd : {false, true}) {
    std::printf("\n---- %s ----\n", ssd ? "SSD" : "HDD");
    std::map<int, std::vector<double>> means_per_stage;  // stage -> per-t mean

    for (const int threads : {32, 16, 8, 4, 2}) {
      // Fresh cluster per run; capture executor 0's 1-second rate series and
      // the stage boundaries.
      hw::ClusterSpec cs = ssd ? hw::ClusterSpec::das5_ssd(4) : hw::ClusterSpec::das5(4);
      hw::Cluster cluster(cs);
      conf::Config config;
      config.set("saex.executor.policy", "static");
      config.set_int("saex.static.ioThreads", threads);
      engine::SparkContext ctx(cluster, std::move(config));
      const auto actions = spec.build(ctx);
      std::vector<engine::StageStats> stages;
      for (const auto& a : actions) {
        auto r = ctx.run_job(a, spec.name);
        for (auto& s : r.stages) stages.push_back(s);
      }

      const auto rates = ctx.executor(0).io_series().rates();
      for (int stage = 0; stage < 2; ++stage) {
        const auto& s = stages[static_cast<size_t>(stage)];
        const size_t from = static_cast<size_t>(s.start_time);
        const size_t to =
            std::min(rates.size(), static_cast<size_t>(s.end_time) + 1);
        std::vector<double> window(rates.begin() + static_cast<long>(from),
                                   rates.begin() + static_cast<long>(to));
        double mean = 0;
        for (const double v : window) mean += v;
        mean /= std::max<size_t>(window.size(), 1);
        means_per_stage[stage].push_back(mean);

        // Downsample the window for a readable sparkline.
        std::vector<double> plot;
        const size_t step = std::max<size_t>(1, window.size() / 48);
        for (size_t i = 0; i < window.size(); i += step) plot.push_back(window[i]);
        std::printf("stage %d, %2d threads: mean %8s  %s\n", stage, threads,
                    format_rate(mean).c_str(), sparkline(plot).c_str());
      }
    }

    for (int stage = 0; stage < 2; ++stage) {
      const auto& means = means_per_stage[stage];
      double lo = means[0], hi = means[0];
      for (const double m : means) {
        lo = std::min(lo, m);
        hi = std::max(hi, m);
      }
      const double spread = (hi - lo) / hi;
      std::printf("stage %d mean-throughput spread across thread counts: %.0f%%"
                  " (%s: paper shows %s)\n",
                  stage, spread * 100, ssd ? "SSD" : "HDD",
                  ssd ? "nearly uniform curves" : "strong variation, peak at 4");
    }
  }
  return 0;
}
